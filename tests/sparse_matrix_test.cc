#include "linalg/sparse_matrix.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace wfms::linalg {
namespace {

TEST(SparseMatrixTest, BuilderMergesDuplicates) {
  SparseMatrixBuilder b(2, 2);
  b.Add(0, 0, 1.0);
  b.Add(0, 0, 2.5);
  b.Add(1, 1, -1.0);
  const SparseMatrix m = b.Build();
  EXPECT_EQ(m.num_nonzeros(), 2u);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(m.At(1, 1), -1.0);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 0.0);
}

TEST(SparseMatrixTest, DuplicatesCancellingToZeroAreDropped) {
  SparseMatrixBuilder b(1, 1);
  b.Add(0, 0, 2.0);
  b.Add(0, 0, -2.0);
  const SparseMatrix m = b.Build();
  EXPECT_EQ(m.num_nonzeros(), 0u);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.0);
}

TEST(SparseMatrixTest, ExplicitZerosIgnored) {
  SparseMatrixBuilder b(2, 2);
  b.Add(0, 1, 0.0);
  EXPECT_EQ(b.Build().num_nonzeros(), 0u);
}

TEST(SparseMatrixTest, FromDenseRoundTrip) {
  DenseMatrix d{{1, 0, 2}, {0, 0, 0}, {3, 4, 0}};
  const SparseMatrix s = SparseMatrix::FromDense(d);
  EXPECT_EQ(s.num_nonzeros(), 4u);
  EXPECT_DOUBLE_EQ(s.ToDense().MaxAbsDiff(d), 0.0);
}

TEST(SparseMatrixTest, MultiplyMatchesDense) {
  Rng rng(5);
  const size_t n = 30;
  DenseMatrix d(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) {
      if (rng.NextBernoulli(0.15)) d.At(r, c) = rng.NextDouble(-2, 2);
    }
  }
  const SparseMatrix s = SparseMatrix::FromDense(d);
  Vector x(n);
  for (auto& v : x) v = rng.NextDouble(-1, 1);

  const Vector dy = d.Multiply(x);
  const Vector sy = s.Multiply(x);
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(sy[i], dy[i], 1e-12);

  const Vector dyt = d.MultiplyTransposed(x);
  const Vector syt = s.MultiplyTransposed(x);
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(syt[i], dyt[i], 1e-12);
}

TEST(SparseMatrixTest, TransposedMatchesDenseTranspose) {
  DenseMatrix d{{1, 2, 0}, {0, 3, 4}};
  const SparseMatrix st = SparseMatrix::FromDense(d).Transposed();
  EXPECT_EQ(st.rows(), 3u);
  EXPECT_EQ(st.cols(), 2u);
  EXPECT_DOUBLE_EQ(st.ToDense().MaxAbsDiff(d.Transposed()), 0.0);
}

TEST(SparseMatrixTest, AtHandlesMissingEntries) {
  SparseMatrixBuilder b(3, 3);
  b.Add(1, 0, 7.0);
  b.Add(1, 2, 8.0);
  const SparseMatrix m = b.Build();
  EXPECT_DOUBLE_EQ(m.At(1, 0), 7.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 8.0);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.At(2, 2), 0.0);
}

TEST(SparseMatrixTest, DropToleranceFiltersSmallEntries) {
  DenseMatrix d{{1e-15, 1.0}, {0.5, 1e-14}};
  const SparseMatrix s = SparseMatrix::FromDense(d, 1e-12);
  EXPECT_EQ(s.num_nonzeros(), 2u);
}

TEST(SparseMatrixTest, EmptyMatrixMultiplies) {
  SparseMatrixBuilder b(3, 3);
  const SparseMatrix m = b.Build();
  const Vector y = m.Multiply({1, 2, 3});
  for (double v : y) EXPECT_DOUBLE_EQ(v, 0.0);
}

}  // namespace
}  // namespace wfms::linalg

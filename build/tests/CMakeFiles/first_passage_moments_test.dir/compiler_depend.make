# Empty compiler generated dependencies file for first_passage_moments_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libwfms_workflow.a"
)

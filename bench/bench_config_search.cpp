// E7 — §7.2 configuration search: greedy heuristic vs exhaustive optimum
// vs simulated annealing on the EP scenario and the benchmark mix, at a
// range of goal strictness levels: recommended configuration, cost,
// number of model evaluations, and wall-clock time.

#include <chrono>
#include <cstdio>

#include "configtool/tool.h"
#include "workflow/scenarios.h"

namespace {

double MillisSince(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  using namespace wfms;

  struct GoalLevel {
    const char* name;
    double max_waiting;       // minutes
    double min_availability;
  };
  const GoalLevel levels[] = {
      {"lenient", 0.2, 0.999},
      {"medium", 0.05, 0.99999},
      {"strict", 0.02, 0.999999},
  };

  for (const bool benchmark_mix : {false, true}) {
    Result<workflow::Environment> env =
        benchmark_mix ? workflow::BenchmarkEnvironment(0.6, 0.2, 0.1)
                      : workflow::EpEnvironment(1.5);
    if (!env.ok()) return 1;
    auto tool = configtool::ConfigurationTool::Create(*env);
    if (!tool.ok()) return 1;
    configtool::SearchConstraints constraints;
    constraints.max_replicas.assign(env->num_server_types(),
                                    benchmark_mix ? 4 : 5);

    std::printf("E7 (%s): greedy vs exhaustive vs annealing\n",
                benchmark_mix ? "benchmark mix, 5 types" : "EP, 3 types");
    std::printf("%-8s %-12s %-16s %5s %6s %9s\n", "goals", "method",
                "config", "cost", "evals", "time[ms]");
    for (const GoalLevel& level : levels) {
      configtool::Goals goals;
      goals.max_waiting_time = level.max_waiting;
      goals.min_availability = level.min_availability;

      auto t0 = std::chrono::steady_clock::now();
      auto greedy = tool->GreedyMinCost(goals, constraints);
      const double greedy_ms = MillisSince(t0);

      t0 = std::chrono::steady_clock::now();
      auto exhaustive = tool->ExhaustiveMinCost(goals, constraints);
      const double exhaustive_ms = MillisSince(t0);

      configtool::AnnealingOptions annealing;
      annealing.iterations = benchmark_mix ? 300 : 400;
      t0 = std::chrono::steady_clock::now();
      auto annealed = tool->AnnealingMinCost(goals, constraints,
                                             configtool::CostModel::Uniform(),
                                             annealing);
      const double annealing_ms = MillisSince(t0);

      t0 = std::chrono::steady_clock::now();
      auto bnb = tool->BranchAndBoundMinCost(goals, constraints);
      const double bnb_ms = MillisSince(t0);

      const auto print_row = [&](const char* method,
                                 const Result<configtool::SearchResult>& r,
                                 double ms) {
        if (!r.ok()) {
          std::printf("%-8s %-12s search failed: %s\n", level.name, method,
                      r.status().ToString().c_str());
          return;
        }
        std::printf("%-8s %-12s %-16s %5.0f %6d %9.1f%s\n", level.name,
                    method, r->config.ToString().c_str(), r->cost,
                    r->evaluations, ms,
                    r->satisfied ? "" : "  (goals unreachable)");
      };
      print_row("greedy", greedy, greedy_ms);
      print_row("exhaustive", exhaustive, exhaustive_ms);
      print_row("annealing", annealed, annealing_ms);
      print_row("bnb", bnb, bnb_ms);
    }
    std::printf("\n");
  }
  std::printf("expected shape: greedy matches the exhaustive optimum cost "
              "(within one server) at a fraction of the evaluations.\n");
  return 0;
}

// Minimal leveled logging and check macros used throughout the library.
#ifndef WFMS_COMMON_LOGGING_H_
#define WFMS_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace wfms {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Process-wide minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log line and emits it (to stderr) on destruction.
/// Fatal messages abort the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

/// Discards everything streamed into it; used for disabled DCHECKs.
class NullLog {
 public:
  template <typename T>
  NullLog& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace wfms

#define WFMS_LOG(level)                                              \
  ::wfms::internal::LogMessage(::wfms::LogLevel::k##level, __FILE__, \
                               __LINE__)

/// Aborts with a message when `condition` is false. Active in all builds:
/// the checks guard numerical invariants whose violation would silently
/// corrupt model results.
#define WFMS_CHECK(condition)                                        \
  (condition) ? static_cast<void>(0)                                 \
              : static_cast<void>(                                   \
                    WFMS_LOG(Fatal) << "Check failed: " #condition " ")

#define WFMS_CHECK_BINOP(lhs, rhs, op)                                   \
  ((lhs)op(rhs)) ? static_cast<void>(0)                                  \
                 : static_cast<void>(WFMS_LOG(Fatal)                     \
                                     << "Check failed: " #lhs " " #op    \
                                        " " #rhs " (" << (lhs) << " vs " \
                                     << (rhs) << ") ")

#define WFMS_CHECK_EQ(lhs, rhs) WFMS_CHECK_BINOP(lhs, rhs, ==)
#define WFMS_CHECK_NE(lhs, rhs) WFMS_CHECK_BINOP(lhs, rhs, !=)
#define WFMS_CHECK_LT(lhs, rhs) WFMS_CHECK_BINOP(lhs, rhs, <)
#define WFMS_CHECK_LE(lhs, rhs) WFMS_CHECK_BINOP(lhs, rhs, <=)
#define WFMS_CHECK_GT(lhs, rhs) WFMS_CHECK_BINOP(lhs, rhs, >)
#define WFMS_CHECK_GE(lhs, rhs) WFMS_CHECK_BINOP(lhs, rhs, >=)

#ifdef NDEBUG
#define WFMS_DCHECK(condition) \
  while (false) ::wfms::internal::NullLog() << !(condition)
#else
#define WFMS_DCHECK(condition) WFMS_CHECK(condition)
#endif

#endif  // WFMS_COMMON_LOGGING_H_

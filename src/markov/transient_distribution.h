// Time-dependent transient analysis of the workflow CTMC: the state
// distribution at an absolute time t via uniformization with Poisson
// weighting. The headline application is *deadline analysis*: the
// probability that a workflow instance has completed (been absorbed)
// within a deadline — a natural extension of the paper's mean-turnaround
// metric (§4.1) to quantiles of the turnaround distribution.
#ifndef WFMS_MARKOV_TRANSIENT_DISTRIBUTION_H_
#define WFMS_MARKOV_TRANSIENT_DISTRIBUTION_H_

#include "common/result.h"
#include "linalg/vector.h"
#include "markov/absorbing_ctmc.h"

namespace wfms::markov {

struct TransientOptions {
  /// Poisson tail mass at which the uniformization series is truncated.
  double tail_tolerance = 1e-12;
  int max_terms = 2000000;
};

/// State distribution at time t, starting from the chain's initial state:
///   p(t) = sum_z Poisson(v t; z) * e_0 P~^z
/// where P~ is the uniformized one-step matrix and v the uniformization
/// rate. t must be >= 0.
Result<linalg::Vector> TransientDistribution(
    const AbsorbingCtmc& chain, double t,
    const TransientOptions& options = {});

/// P(workflow completed within t) = transient probability mass in the
/// absorbing state at time t. Monotone non-decreasing in t.
Result<double> CompletionProbabilityByTime(
    const AbsorbingCtmc& chain, double t,
    const TransientOptions& options = {});

/// Smallest t (within `tolerance`, by bisection over [0, upper_bound])
/// such that the completion probability is >= quantile. Useful for
/// reporting e.g. the 95th percentile turnaround.
Result<double> TurnaroundQuantile(const AbsorbingCtmc& chain,
                                  double quantile,
                                  double tolerance = 1e-3,
                                  const TransientOptions& options = {});

}  // namespace wfms::markov

#endif  // WFMS_MARKOV_TRANSIENT_DISTRIBUTION_H_

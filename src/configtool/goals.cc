#include "configtool/goals.h"

#include <string>

namespace wfms::configtool {

Status Goals::Validate(size_t num_types) const {
  if (!(max_waiting_time > 0.0)) {
    return Status::InvalidArgument("waiting-time threshold must be positive");
  }
  if (min_availability < 0.0 || min_availability >= 1.0) {
    return Status::InvalidArgument("availability goal must be in [0, 1)");
  }
  if (!per_type_max_waiting.empty() &&
      per_type_max_waiting.size() != num_types) {
    return Status::InvalidArgument(
        "per-type waiting thresholds must match the server type count");
  }
  if (max_saturation_probability < 0.0 || max_saturation_probability > 1.0) {
    return Status::InvalidArgument(
        "saturation probability bound must be in [0, 1]");
  }
  for (const auto& [workflow, bound] : max_instance_delay) {
    if (!(bound > 0.0)) {
      return Status::InvalidArgument("instance-delay bound for workflow '" +
                                     workflow + "' must be positive");
    }
  }
  if (survive_sites < 0 || survive_sites > 1) {
    return Status::InvalidArgument(
        "survive-sites supports 0 (off) or 1 (any single site loss)");
  }
  if (degraded_min_availability >= 1.0) {
    return Status::InvalidArgument(
        "degraded availability goal must be below 1");
  }
  return Status::OK();
}

double Goals::WaitingThreshold(size_t x) const {
  if (x < per_type_max_waiting.size() && per_type_max_waiting[x] > 0.0) {
    return per_type_max_waiting[x];
  }
  return max_waiting_time;
}

double CostModel::Cost(const std::vector<int>& replicas) const {
  double total = 0.0;
  for (size_t x = 0; x < replicas.size(); ++x) {
    const double unit =
        x < per_server_cost.size() ? per_server_cost[x] : 1.0;
    total += unit * replicas[x];
  }
  return total;
}

Status CostModel::Validate(size_t num_types) const {
  if (!per_server_cost.empty() && per_server_cost.size() != num_types) {
    return Status::InvalidArgument(
        "per-server costs must match the server type count");
  }
  for (double c : per_server_cost) {
    if (!(c > 0.0)) {
      return Status::InvalidArgument("per-server costs must be positive");
    }
  }
  return Status::OK();
}

}  // namespace wfms::configtool

# Empty dependencies file for ecommerce_configuration.
# This may be replaced when dependencies are built.

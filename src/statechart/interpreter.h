// Functional execution of state charts with ECA-rule semantics — the
// role Mentor-lite (the authors' prototype, [16][24]) plays in the paper:
// an engine that actually *runs* the specification, as opposed to the
// stochastic abstraction used by the assessment models.
//
// Semantics implemented (a pragmatic subset of Harel statecharts matching
// this library's chart model, where each chart has exactly one active
// state):
//  * A transition of the current state fires on DeliverEvent(e) when its
//    rule's event is `e` (or empty) and its condition evaluates to true
//    under the current condition context; among several enabled
//    transitions the first in declaration order fires (deterministic).
//  * Actions: st!(activity) records an activity start request, tr!(c) /
//    fs!(c) set condition variables, ev!(e) raises an internal event that
//    is processed in FIFO order by RunToQuiescence().
//  * Composite states spawn one child interpreter per orthogonal
//    subchart; delivered events are broadcast to all active children
//    first; the composite state's own transitions become eligible once
//    every child has reached its final state.
//  * Conditions are conjunctions of (possibly negated) boolean variables:
//    "A", "!A", "A&!B". Unset variables read as false.
#ifndef WFMS_STATECHART_INTERPRETER_H_
#define WFMS_STATECHART_INTERPRETER_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "statechart/model.h"

namespace wfms::statechart {

/// Parsed form of one action token.
struct ParsedAction {
  enum class Kind { kStartActivity, kSetTrue, kSetFalse, kRaiseEvent };
  Kind kind = Kind::kStartActivity;
  std::string argument;
};

/// Parses "st!(x)", "tr!(c)", "fs!(c)", "ev!(e)".
Result<ParsedAction> ParseAction(const std::string& text);

/// Boolean condition variables shared by a workflow instance (the paper's
/// "variables that are relevant for the control and data flow").
class ConditionContext {
 public:
  bool Get(const std::string& name) const;
  void Set(const std::string& name, bool value);
  size_t size() const { return values_.size(); }

 private:
  std::map<std::string, bool> values_;
};

/// Evaluates a conjunction of possibly-negated variables ("A&!B&C").
/// An empty expression is true.
Result<bool> EvaluateCondition(const std::string& expression,
                               const ConditionContext& context);

/// Executes one chart instance. Shares the condition context and the
/// event queue with nested child interpreters (orthogonal components see
/// the same variables and broadcast events, per the statechart
/// semantics).
class ChartInterpreter {
 public:
  /// `registry` supplies subcharts for composite states; it and `chart`
  /// must outlive the interpreter.
  ChartInterpreter(const ChartRegistry* registry, const StateChart* chart);

  /// Enters the initial state. Must be called exactly once.
  Status Start();

  const std::string& current_state() const { return current_; }
  bool finished() const;

  ConditionContext& context() { return *context_; }
  const ConditionContext& context() const { return *context_; }

  /// Delivers an external event and processes all internally raised
  /// events until no transition can fire. Returns the number of
  /// transitions fired (0 if the event enabled nothing).
  Result<int> DeliverEvent(const std::string& event);

  /// Activities requested by st!(...) actions so far, in order.
  const std::vector<std::string>& started_activities() const {
    return *started_activities_;
  }
  /// States entered so far (this chart only, excluding children).
  const std::vector<std::string>& trace() const { return trace_; }

 private:
  // Child constructor sharing instance-wide state.
  ChartInterpreter(const ChartRegistry* registry, const StateChart* chart,
                   std::shared_ptr<ConditionContext> context,
                   std::shared_ptr<std::deque<std::string>> event_queue,
                   std::shared_ptr<std::vector<std::string>> activities);

  /// Attempts to fire one transition for `event` (possibly ""), routing
  /// to children first. Returns true if something fired anywhere.
  Result<bool> Dispatch(const std::string& event);
  Status EnterState(const std::string& name);
  Status ExecuteActions(const EcaRule& rule);
  bool ChildrenFinished() const;

  const ChartRegistry* registry_;
  const StateChart* chart_;
  std::shared_ptr<ConditionContext> context_;
  std::shared_ptr<std::deque<std::string>> event_queue_;
  std::shared_ptr<std::vector<std::string>> started_activities_;
  std::string current_;
  bool started_ = false;
  std::vector<std::unique_ptr<ChartInterpreter>> children_;
  std::vector<std::string> trace_;
};

}  // namespace wfms::statechart

#endif  // WFMS_STATECHART_INTERPRETER_H_

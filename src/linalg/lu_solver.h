// Dense LU factorization with partial pivoting. This is the exact reference
// solver: the paper prescribes Gauss-Seidel for its linear systems, and the
// test suite cross-checks the iterative solvers against LU.
#ifndef WFMS_LINALG_LU_SOLVER_H_
#define WFMS_LINALG_LU_SOLVER_H_

#include <vector>

#include "common/result.h"
#include "linalg/dense_matrix.h"
#include "linalg/vector.h"

namespace wfms::linalg {

/// PA = LU factorization of a square matrix.
class LuDecomposition {
 public:
  /// Factorizes `a`. Fails with NumericError if the matrix is singular to
  /// working precision.
  static Result<LuDecomposition> Compute(const DenseMatrix& a);

  /// Solves A x = b for one right-hand side.
  Result<Vector> Solve(const Vector& b) const;

  /// Solves A X = B column-wise.
  Result<DenseMatrix> Solve(const DenseMatrix& b) const;

  /// Returns A^{-1}.
  Result<DenseMatrix> Inverse() const;

  /// det(A), with the sign of the pivot permutation applied.
  double Determinant() const;

  size_t size() const { return lu_.rows(); }

 private:
  LuDecomposition(DenseMatrix lu, std::vector<size_t> perm, int sign)
      : lu_(std::move(lu)), perm_(std::move(perm)), perm_sign_(sign) {}

  DenseMatrix lu_;            // L (unit lower) and U packed together
  std::vector<size_t> perm_;  // row permutation
  int perm_sign_ = 1;
};

/// Convenience: factorize and solve in one call.
Result<Vector> LuSolve(const DenseMatrix& a, const Vector& b);

}  // namespace wfms::linalg

#endif  // WFMS_LINALG_LU_SOLVER_H_

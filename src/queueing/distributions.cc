#include "queueing/distributions.h"

#include <string>

namespace wfms::queueing {

ServiceMoments ExponentialService(double mean) {
  return {mean, 2.0 * mean * mean};
}

ServiceMoments DeterministicService(double mean) {
  return {mean, mean * mean};
}

Result<ServiceMoments> ErlangService(int stages, double mean) {
  if (stages < 1) return Status::InvalidArgument("stages must be >= 1");
  return ServiceFromMeanScv(mean, 1.0 / stages);
}

Result<ServiceMoments> ServiceFromMeanScv(double mean, double scv) {
  if (!(mean > 0.0)) return Status::InvalidArgument("mean must be positive");
  if (scv < 0.0) return Status::InvalidArgument("SCV must be non-negative");
  return ServiceMoments{mean, (scv + 1.0) * mean * mean};
}

ServiceMoments ShiftService(const ServiceMoments& moments, double shift) {
  if (shift <= 0.0) return moments;
  return ServiceMoments{
      moments.mean + shift,
      moments.second_moment + 2.0 * shift * moments.mean + shift * shift};
}

Result<ServiceMoments> MixServices(const std::vector<double>& weights,
                                   const std::vector<ServiceMoments>& parts) {
  if (weights.size() != parts.size() || parts.empty()) {
    return Status::InvalidArgument("weights/parts size mismatch or empty");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) return Status::InvalidArgument("negative mixture weight");
    total += w;
  }
  if (!(total > 0.0)) {
    return Status::InvalidArgument("mixture weights sum to zero");
  }
  ServiceMoments mixed;
  for (size_t i = 0; i < parts.size(); ++i) {
    const double p = weights[i] / total;
    mixed.mean += p * parts[i].mean;
    mixed.second_moment += p * parts[i].second_moment;
  }
  return mixed;
}

Status ValidateMoments(const ServiceMoments& moments) {
  if (!(moments.mean > 0.0)) {
    return Status::InvalidArgument("service mean must be positive, got " +
                                   std::to_string(moments.mean));
  }
  if (moments.second_moment < moments.mean * moments.mean - 1e-12) {
    return Status::InvalidArgument(
        "second moment below mean^2 violates Cauchy-Schwarz");
  }
  return Status::OK();
}

}  // namespace wfms::queueing

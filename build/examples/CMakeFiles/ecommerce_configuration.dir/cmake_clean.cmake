file(REMOVE_RECURSE
  "CMakeFiles/ecommerce_configuration.dir/ecommerce_configuration.cpp.o"
  "CMakeFiles/ecommerce_configuration.dir/ecommerce_configuration.cpp.o.d"
  "ecommerce_configuration"
  "ecommerce_configuration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecommerce_configuration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// The performability model of §6: a Markov reward model over the
// availability CTMC of §5, where the reward of system state X is the
// waiting-time vector the performance model of §4 predicts when only X_x
// servers of each type are up. The paper's metric is
//
//   W^Y = sum_i w^i * pi_i,
//
// which is undefined for states where the system is down (some X_x = 0)
// or a server type is saturated (rho >= 1, infinite M/G/1 wait). Policy
// (documented in DESIGN.md): waiting times are conditioned on the
// *operational* states; the probabilities of down states and of saturated
// states are reported separately. Optionally, saturated states contribute
// a finite penalty waiting time instead of being excluded.
#ifndef WFMS_PERFORMABILITY_PERFORMABILITY_MODEL_H_
#define WFMS_PERFORMABILITY_PERFORMABILITY_MODEL_H_

#include <vector>

#include "avail/availability_model.h"
#include "common/result.h"
#include "linalg/vector.h"
#include "perf/performance_model.h"
#include "workflow/configuration.h"
#include "workflow/environment.h"

namespace wfms::performability {

enum class SaturationPolicy {
  /// Condition W^Y on states that are up *and* stable; report the
  /// probability mass of saturated states separately.
  kConditionOnStable,
  /// Saturated server types contribute `penalty_waiting_time`; W^Y is then
  /// conditioned on up states only.
  kPenalty,
};

struct PerformabilityOptions {
  avail::AvailabilityOptions availability;
  perf::AnalysisOptions analysis;
  SaturationPolicy saturation_policy = SaturationPolicy::kConditionOnStable;
  /// Used by SaturationPolicy::kPenalty (model time units).
  double penalty_waiting_time = 60.0;
};

struct PerformabilityReport {
  /// W^Y: expected waiting time per server type with failures and repairs
  /// taken into account (conditioned per the saturation policy).
  linalg::Vector expected_waiting;
  /// Largest entry of expected_waiting — the paper's acceptance test
  /// compares this against the tolerance threshold.
  double max_expected_waiting = 0.0;
  /// Waiting times with every configured server up (no degradation).
  linalg::Vector full_config_waiting;
  /// Probability the WFMS is down (identical to the availability model's
  /// unavailability).
  double prob_down = 0.0;
  /// Probability the WFMS is up but at least one server type is saturated
  /// by the redistributed load.
  double prob_saturated = 0.0;
  /// Probability the WFMS is up, stable, but running with fewer servers
  /// than configured.
  double prob_degraded = 0.0;
  double availability = 0.0;
  /// Stationary distribution of the availability CTMC, indexed by the
  /// mixed-radix encoding of the evaluated configuration's state space
  /// (reconstructable via MixedRadixSpace::Create(config.replicas)). Kept
  /// so the configuration search can warm-start neighbor solves.
  linalg::Vector avail_state_probabilities;
  /// Sweeps the steady-state solver needed (0 for direct/product-form);
  /// lets benches quantify the warm-start win.
  int solver_iterations = 0;
  /// Method that solved the availability CTMC (kAuto when the product-form
  /// path ran and no CTMC solve happened) and its diagnostics; surfaced so
  /// the search and wfmsctl can report how hard a candidate was.
  markov::SteadyStateMethod avail_solver_method =
      markov::SteadyStateMethod::kAuto;
  SolveDiagnostics avail_solver_diagnostics;
  /// Cascade rungs the availability solve attempted (1 for an explicit
  /// single-method solve, 0 when no CTMC solve ran). Fed to the daemon's
  /// flight recorder; not part of the cache fingerprint or checkpoint
  /// codec — a restored report legitimately reads 0 (no solve ran to
  /// produce the warm answer).
  int solver_rungs = 0;
};

class PerformabilityModel {
 public:
  /// Builds the underlying performance and availability models once; the
  /// environment must outlive the model.
  static Result<PerformabilityModel> Create(
      const workflow::Environment& env,
      const PerformabilityOptions& options = {});

  /// Evaluates W^Y and the degradation probabilities for a configuration.
  /// `avail_guess` optionally warm-starts the availability steady-state
  /// solve (a distribution over this configuration's state space, e.g. a
  /// neighbor's `avail_state_probabilities` carried over with
  /// markov::ProjectDistribution); it never changes the result beyond
  /// solver round-off. `solver_override`, when non-null, replaces the
  /// configured availability steady-state solver options for this call —
  /// used by the fault-isolated search to retry a numerically failed
  /// candidate with the exact LU rung. Evaluate is const and safe to call
  /// concurrently.
  /// Site-placed configurations (config.has_sites() in a multi-site
  /// environment) take the geo path: communication-server service moments
  /// are inflated by the mean cross-site latency of the placement, states
  /// are decoded through the coverage structure function (only replicas in
  /// the serving component count toward each type's effective up-count),
  /// and `contingency` optionally conditions the whole evaluation on a
  /// site loss / partition scenario. Passing a non-trivial contingency for
  /// a single-site configuration is an error.
  Result<PerformabilityReport> Evaluate(
      const workflow::Configuration& config,
      const linalg::Vector* avail_guess = nullptr,
      const markov::SteadyStateOptions* solver_override = nullptr,
      const avail::SiteContingency* contingency = nullptr) const;

  const perf::PerformanceModel& performance() const { return perf_; }
  const avail::AvailabilityModel& availability() const { return avail_; }
  const PerformabilityOptions& options() const { return options_; }

 private:
  PerformabilityModel(perf::PerformanceModel perf,
                      avail::AvailabilityModel availability,
                      PerformabilityOptions options)
      : perf_(std::move(perf)),
        avail_(std::move(availability)),
        options_(options) {}

  Result<PerformabilityReport> EvaluateSitePath(
      const workflow::Configuration& config,
      const avail::SiteContingency& contingency,
      const markov::SteadyStateOptions* solver_override) const;

  perf::PerformanceModel perf_;
  avail::AvailabilityModel avail_;
  PerformabilityOptions options_;
};

}  // namespace wfms::performability

#endif  // WFMS_PERFORMABILITY_PERFORMABILITY_MODEL_H_

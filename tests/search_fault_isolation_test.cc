// Fault-isolated configuration search: a candidate whose availability
// solve fails numerically must become data (SearchResult::
// failed_candidates) rather than aborting the search, and a search-level
// deadline must return a best-so-far result with a DeadlineExceeded
// termination status.
#include "configtool/tool.h"

#include <gtest/gtest.h>

#include "workflow/scenarios.h"

namespace wfms::configtool {
namespace {

using workflow::Configuration;

// Solver options that starve the iterative rungs (2 total iterations) and
// cap the dense LU rescue at 26 states. Every configuration in the
// [1,2]^3 box has prod(Y_x + 1) <= 18 states except (2,2,2) with 27:
// that one candidate terminally fails with a numerical cause while all
// others are rescued by the exact LU rung.
performability::PerformabilityOptions StarvedSolverOptions() {
  performability::PerformabilityOptions options;
  options.availability.solver.budget.max_total_iterations = 2;
  options.availability.solver.max_dense_states = 26;
  return options;
}

Goals ModestGoals() {
  Goals goals;
  goals.max_waiting_time = 10.0;
  goals.min_availability = 0.9995;
  return goals;
}

TEST(SearchFaultIsolationTest, DivergingCandidateIsReportedNotFatal) {
  auto env = workflow::EpEnvironment();
  ASSERT_TRUE(env.ok());
  auto tool = ConfigurationTool::Create(*env, StarvedSolverOptions());
  ASSERT_TRUE(tool.ok()) << tool.status();

  SearchConstraints constraints;
  constraints.max_replicas = {2, 2, 2};
  auto result = tool->ExhaustiveMinCost(ModestGoals(), constraints);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->termination.ok());
  EXPECT_TRUE(result->satisfied);

  ASSERT_EQ(result->failed_candidates.size(), 1u);
  const FailedCandidate& failed = result->failed_candidates[0];
  EXPECT_EQ(failed.config.replicas, (std::vector<int>{2, 2, 2}));
  EXPECT_TRUE(failed.numerical);
  EXPECT_EQ(failed.error.code(), StatusCode::kNumericError)
      << failed.error;
  // The LU retry is gated by the same dense cap that failed the first
  // attempt, so it must not have run.
  EXPECT_FALSE(failed.retried_exact);

  // The winner itself was rescued by the cascade's LU rung.
  EXPECT_EQ(result->assessment.performability.avail_solver_method,
            markov::SteadyStateMethod::kLu);

  // Same winner as a search whose constraints exclude the failing
  // candidate (the winner (1,2,2) lies inside the smaller box).
  auto excluded_tool =
      ConfigurationTool::Create(*env, StarvedSolverOptions());
  ASSERT_TRUE(excluded_tool.ok());
  SearchConstraints excluded = constraints;
  excluded.max_replicas = {1, 2, 2};
  auto reference = excluded_tool->ExhaustiveMinCost(ModestGoals(), excluded);
  ASSERT_TRUE(reference.ok()) << reference.status();
  EXPECT_TRUE(reference->satisfied);
  EXPECT_TRUE(reference->failed_candidates.empty());
  EXPECT_EQ(result->config.replicas, reference->config.replicas);
  EXPECT_DOUBLE_EQ(result->cost, reference->cost);
}

TEST(SearchFaultIsolationTest, EveryStrategySurvivesTheFailingCandidate) {
  auto env = workflow::EpEnvironment();
  ASSERT_TRUE(env.ok());
  auto tool = ConfigurationTool::Create(*env, StarvedSolverOptions());
  ASSERT_TRUE(tool.ok());
  SearchConstraints constraints;
  constraints.max_replicas = {2, 2, 2};
  const Goals goals = ModestGoals();

  auto greedy = tool->GreedyMinCost(goals, constraints);
  ASSERT_TRUE(greedy.ok()) << greedy.status();
  auto annealing = tool->AnnealingMinCost(goals, constraints);
  ASSERT_TRUE(annealing.ok()) << annealing.status();
  auto bnb = tool->BranchAndBoundMinCost(goals, constraints);
  ASSERT_TRUE(bnb.ok()) << bnb.status();
  // Strategies that touch (2,2,2) record it; none abort. Branch-and-bound
  // probes the all-max bound first, so it must have seen the failure.
  ASSERT_EQ(bnb->failed_candidates.size(), 1u);
  EXPECT_EQ(bnb->failed_candidates[0].config.replicas,
            (std::vector<int>{2, 2, 2}));
  EXPECT_TRUE(bnb->satisfied);
}

TEST(SearchFaultIsolationTest, BatchAssessmentIsolatesFailures) {
  auto env = workflow::EpEnvironment();
  ASSERT_TRUE(env.ok());
  auto tool = ConfigurationTool::Create(*env, StarvedSolverOptions());
  ASSERT_TRUE(tool.ok());
  const std::vector<Configuration> configs = {
      Configuration({1, 2, 2}), Configuration({2, 2, 2})};
  auto batch = tool->AssessBatch(configs, ModestGoals());
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(batch->size(), 2u);
  EXPECT_TRUE((*batch)[0].error.ok());
  EXPECT_FALSE((*batch)[1].error.ok());
  EXPECT_TRUE((*batch)[1].numerical_failure);
  EXPECT_FALSE((*batch)[1].Satisfies());
}

TEST(SearchFaultIsolationTest, DeadlineReturnsBestSoFar) {
  auto env = workflow::EpEnvironment();
  ASSERT_TRUE(env.ok());
  auto tool = ConfigurationTool::Create(*env);
  ASSERT_TRUE(tool.ok());
  SearchConstraints constraints;
  constraints.max_replicas = {3, 3, 3};
  SearchOptions search;
  search.deadline_seconds = 1e-9;  // expires before the first wave
  auto result = tool->ExhaustiveMinCost(ModestGoals(), constraints,
                                        CostModel::Uniform(), search);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->termination.code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(result->satisfied);

  // An unlimited deadline leaves termination OK.
  search.deadline_seconds = 0.0;
  auto full = tool->ExhaustiveMinCost(ModestGoals(), constraints,
                                      CostModel::Uniform(), search);
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(full->termination.ok());
  EXPECT_TRUE(full->satisfied);
}

}  // namespace
}  // namespace wfms::configtool

// Simulator checkpoint/replay-cursor guarantees (DESIGN.md "Checkpointing
// and recovery"): a resumed run replays the interrupted trajectory to the
// same statistics, validates the saved cursor word for word, and rejects
// cursors from other scenarios.
#include "sim/checkpoint.h"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "workflow/scenarios.h"

namespace wfms::sim {
namespace {

using workflow::Environment;

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("wfms_sim_checkpoint_test_") + name))
      .string();
}

Environment MakeEnv() {
  auto env = workflow::EpEnvironment(1.0);
  EXPECT_TRUE(env.ok());
  return *std::move(env);
}

SimulationOptions BaseOptions() {
  SimulationOptions options;
  options.config.replicas = {2, 2, 3};
  options.duration = 2000.0;
  options.warmup = 200.0;
  options.seed = 17;
  return options;
}

Result<SimulationResult> RunSim(const Environment& env,
                                const SimulationOptions& options) {
  auto sim = Simulator::Create(env, options);
  if (!sim.ok()) return sim.status();
  return sim->Run();
}

void ExpectSameStatistics(const SimulationResult& a,
                          const SimulationResult& b) {
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.observed_availability, b.observed_availability);
  ASSERT_EQ(a.servers.size(), b.servers.size());
  for (size_t x = 0; x < a.servers.size(); ++x) {
    EXPECT_EQ(a.servers[x].waiting_time.mean(),
              b.servers[x].waiting_time.mean());
    EXPECT_EQ(a.servers[x].completed_requests,
              b.servers[x].completed_requests);
    EXPECT_EQ(a.utilization[x], b.utilization[x]);
  }
  ASSERT_EQ(a.workflows.size(), b.workflows.size());
  for (const auto& [name, wf] : a.workflows) {
    const auto it = b.workflows.find(name);
    ASSERT_NE(it, b.workflows.end()) << name;
    EXPECT_EQ(wf.completed, it->second.completed);
    EXPECT_EQ(wf.turnaround.mean(), it->second.turnaround.mean());
  }
}

TEST(SimCheckpointTest, ResumedRunReplaysToIdenticalStatistics) {
  const Environment env = MakeEnv();
  SimulationOptions options = BaseOptions();
  auto baseline = RunSim(env, options);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  const std::string path = TempPath("resume");
  options.checkpoint_path = path;
  options.checkpoint_every_events = 500;
  auto checkpointed = RunSim(env, options);
  ASSERT_TRUE(checkpointed.ok()) << checkpointed.status();
  // Checkpointing happens outside the event queue: statistics unchanged.
  ExpectSameStatistics(*baseline, *checkpointed);
  ASSERT_TRUE(std::filesystem::exists(path));

  // Resume validates the saved cursor mid-replay and finishes identically.
  options.resume = true;
  auto resumed = RunSim(env, options);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  ExpectSameStatistics(*baseline, *resumed);
  std::remove(path.c_str());
}

TEST(SimCheckpointTest, CancelWritesResumableCheckpoint) {
  const Environment env = MakeEnv();
  SimulationOptions options = BaseOptions();
  auto baseline = RunSim(env, options);
  ASSERT_TRUE(baseline.ok());

  const std::string path = TempPath("cancel");
  std::atomic<bool> cancel{true};  // cancel at the first event boundary
  options.checkpoint_path = path;
  options.checkpoint_every_events = 500;
  options.cancel = &cancel;
  auto cancelled = RunSim(env, options);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);
  ASSERT_TRUE(std::filesystem::exists(path));

  // The final on-cancel checkpoint is a valid resume point.
  options.cancel = nullptr;
  options.resume = true;
  auto resumed = RunSim(env, options);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  ExpectSameStatistics(*baseline, *resumed);
  std::remove(path.c_str());
}

TEST(SimCheckpointTest, LoadAndFaultScheduleResumeIsBitIdentical) {
  // load_schedule x fault_schedule: checkpoints land *inside* a scripted
  // crash window and between load phases (every 300 events over a 3000+
  // minute horizon), so the saved cursor carries mid-window pool state and
  // a shifted arrival rate. The resumed replay must validate that cursor
  // and finish with bit-identical statistics.
  const Environment env = MakeEnv();
  SimulationOptions options = BaseOptions();
  options.duration = 4000.0;
  options.warmup = 300.0;
  auto faults = ParseFaultSchedule(
      "at 1000 crash engine 0\nat 2600 repair engine 0\n"
      "at 3000 outage app\nat 3200 restore app\n",
      env.servers);
  ASSERT_TRUE(faults.ok()) << faults.status();
  options.faults = *faults;
  auto load = ParseLoadSchedule(
      "at 800 scale-all 2.5\nat 2000 rate EP 0.4\nat 3500 scale EP 3\n",
      env.workflows);
  ASSERT_TRUE(load.ok()) << load.status();
  options.load = *load;

  auto baseline = RunSim(env, options);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  const std::string path = TempPath("load_fault");
  options.checkpoint_path = path;
  options.checkpoint_every_events = 300;
  auto checkpointed = RunSim(env, options);
  ASSERT_TRUE(checkpointed.ok()) << checkpointed.status();
  ExpectSameStatistics(*baseline, *checkpointed);

  options.resume = true;
  auto resumed = RunSim(env, options);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  ExpectSameStatistics(*baseline, *resumed);

  // The fingerprint covers the load schedule: a cursor from a different
  // workload phase plan must be refused, not silently replayed.
  SimulationOptions other_load = options;
  other_load.load.events[0].value = 3.0;
  auto rejected = RunSim(env, other_load);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(SimCheckpointTest, FingerprintMismatchIsRejectedBeforeReplay) {
  const Environment env = MakeEnv();
  SimulationOptions options = BaseOptions();
  const std::string path = TempPath("stale");
  options.checkpoint_path = path;
  options.checkpoint_every_events = 500;
  ASSERT_TRUE(RunSim(env, options).ok());

  options.resume = true;
  options.seed = 99;  // different trajectory: the cursor must be refused
  auto rejected = RunSim(env, options);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(rejected.status().message().find("hash mismatch"),
            std::string::npos)
      << rejected.status();
  std::remove(path.c_str());
}

TEST(SimCheckpointTest, FingerprintCoversFaultSchedule) {
  const Environment env = MakeEnv();
  SimulationOptions a = BaseOptions();
  SimulationOptions b = a;
  b.faults.events.push_back({100.0, FaultAction::kCrash, 0, 0});
  EXPECT_NE(SimulationFingerprint(env, a), SimulationFingerprint(env, b));
  SimulationOptions c = a;
  c.dispatch = DispatchPolicy::kPerInstanceBinding;
  EXPECT_NE(SimulationFingerprint(env, a), SimulationFingerprint(env, c));
  // Checkpoint plumbing itself does not change the trajectory.
  SimulationOptions d = a;
  d.checkpoint_path = "/elsewhere.wfsn";
  d.checkpoint_every_events = 123;
  d.resume = true;
  EXPECT_EQ(SimulationFingerprint(env, a), SimulationFingerprint(env, d));
}

TEST(SimCheckpointTest, VerifyReplayCursorNamesTheDivergingField) {
  SimulationCheckpoint saved;
  saved.events_executed = 10;
  saved.sim_time = 5.0;
  saved.master_rng = {1, 2, 3, 4};
  saved.pool_up = {2, 2};
  SimulationCheckpoint replayed = saved;
  EXPECT_TRUE(VerifyReplayCursor(saved, replayed).ok());

  replayed.master_rng[2] ^= 0x10;
  auto diverged = VerifyReplayCursor(saved, replayed);
  ASSERT_FALSE(diverged.ok());
  EXPECT_EQ(diverged.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(diverged.message().find("master_rng"), std::string::npos)
      << diverged;

  replayed = saved;
  replayed.pool_up = {2, 1};
  diverged = VerifyReplayCursor(saved, replayed);
  ASSERT_FALSE(diverged.ok());
  EXPECT_NE(diverged.message().find("pool_up"), std::string::npos);
}

TEST(SimCheckpointTest, CheckpointStateRoundTripsThroughDisk) {
  SimulationCheckpoint state;
  state.fingerprint = 0xABCDEF;
  state.events_executed = 12345;
  state.sim_time = 678.901;
  state.next_instance_id = 42;
  state.pending_events = 17;
  state.master_rng = {11, 22, 33, 44};
  state.pool_rngs = {{1, 2, 3, 4}, {5, 6, 7, 8}};
  state.pool_up = {2, 3};
  state.pool_busy = {1, 0};
  state.pool_parked = {0, 5};

  const std::string path = TempPath("roundtrip");
  ASSERT_TRUE(WriteSimulationCheckpoint(path, state).ok());
  auto loaded = ReadSimulationCheckpoint(path, state.fingerprint);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->events_executed, state.events_executed);
  EXPECT_EQ(loaded->sim_time, state.sim_time);
  EXPECT_EQ(loaded->next_instance_id, state.next_instance_id);
  EXPECT_EQ(loaded->pending_events, state.pending_events);
  EXPECT_EQ(loaded->master_rng, state.master_rng);
  EXPECT_EQ(loaded->pool_rngs, state.pool_rngs);
  EXPECT_EQ(loaded->pool_up, state.pool_up);
  EXPECT_EQ(loaded->pool_busy, state.pool_busy);
  EXPECT_EQ(loaded->pool_parked, state.pool_parked);
  EXPECT_TRUE(VerifyReplayCursor(state, *loaded).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wfms::sim

file(REMOVE_RECURSE
  "CMakeFiles/transient_distribution_test.dir/transient_distribution_test.cc.o"
  "CMakeFiles/transient_distribution_test.dir/transient_distribution_test.cc.o.d"
  "transient_distribution_test"
  "transient_distribution_test.pdb"
  "transient_distribution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transient_distribution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

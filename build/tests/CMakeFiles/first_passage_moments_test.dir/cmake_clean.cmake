file(REMOVE_RECURSE
  "CMakeFiles/first_passage_moments_test.dir/first_passage_moments_test.cc.o"
  "CMakeFiles/first_passage_moments_test.dir/first_passage_moments_test.cc.o.d"
  "first_passage_moments_test"
  "first_passage_moments_test.pdb"
  "first_passage_moments_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/first_passage_moments_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

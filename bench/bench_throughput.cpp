// E4 — §4.3 maximum sustainable throughput: how many workflow instances
// per minute the benchmark mix sustains under growing replication, and
// which server type saturates first (the bottleneck shifts as its type is
// replicated).

#include <cstdio>

#include "perf/performance_model.h"
#include "workflow/scenarios.h"

int main() {
  using namespace wfms;
  auto env = workflow::BenchmarkEnvironment();
  if (!env.ok()) return 1;
  auto model = perf::PerformanceModel::Create(*env);
  if (!model.ok()) return 1;

  std::printf("E4: maximum sustainable throughput vs configuration "
              "(benchmark mix: EP + Loan + Claim)\n\n");
  std::printf("aggregate request rates l_x (req/min): ");
  for (size_t x = 0; x < env->num_server_types(); ++x) {
    std::printf("%s=%.2f ", env->servers.type(x).name.c_str(),
                model->total_request_rates()[x]);
  }
  std::printf("\n\n%-16s %10s %18s %-12s\n", "config", "mix scale",
              "workflows/min", "bottleneck");

  const workflow::Configuration configs[] = {
      workflow::Configuration({1, 1, 1, 1, 1}),
      workflow::Configuration({1, 1, 1, 2, 1}),
      workflow::Configuration({1, 1, 1, 2, 2}),
      workflow::Configuration({1, 2, 1, 2, 2}),
      workflow::Configuration({1, 2, 1, 4, 2}),
      workflow::Configuration({2, 2, 2, 4, 2}),
      workflow::Configuration({2, 4, 2, 8, 4}),
      workflow::Configuration({4, 8, 4, 16, 8}),
  };
  for (const auto& config : configs) {
    auto report = model->MaxSustainableThroughput(config);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    std::printf("%-16s %10.3f %18.3f %-12s\n", config.ToString().c_str(),
                report->max_mix_scale, report->max_workflows_per_time_unit,
                env->servers.type(report->bottleneck).name.c_str());
  }
  std::printf("\nexpected shape: throughput scales ~linearly when the "
              "bottleneck type is replicated, then the bottleneck moves.\n");
  return 0;
}

// Compressed sparse row (CSR) matrix with a coordinate-format builder.
// Availability CTMCs have state spaces of size prod(Y_x + 1); with, say,
// 6 server types replicated 4-way that is 15625 states, where dense storage
// and O(n^3) factorization become wasteful — the generator has only
// O(n * k) nonzeros.
#ifndef WFMS_LINALG_SPARSE_MATRIX_H_
#define WFMS_LINALG_SPARSE_MATRIX_H_

#include <cstddef>
#include <vector>

#include "linalg/dense_matrix.h"
#include "linalg/vector.h"

namespace wfms::linalg {

class SparseMatrix;

/// Accumulates (row, col, value) triplets; duplicate entries are summed on
/// Build(), which is convenient when assembling generator matrices where a
/// diagonal element receives many -rate contributions.
class SparseMatrixBuilder {
 public:
  SparseMatrixBuilder(size_t rows, size_t cols);

  void Add(size_t row, size_t col, double value);
  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  /// Pre-sizes the triplet store for `nnz_hint` entries. Generator
  /// assembly knows its nonzero count up front (one entry per transition);
  /// reserving avoids the realloc churn of growing a multi-hundred-KB
  /// vector in doubling steps.
  void Reserve(size_t nnz_hint);

  /// Incremental coalescing watermark: once the triplet store reaches this
  /// many entries, duplicates are merged in place (sort + sum) and the
  /// watermark moves to twice the compacted size, so repeated compactions
  /// stay amortized O(log) over an assembly. Duplicate-heavy assembly
  /// (e.g. quotient construction, where many source arcs fold onto one
  /// block pair) then peaks at ~2x the *distinct*-entry count instead of
  /// the raw insertion count. Compaction regroups the partial sums of
  /// duplicates, so the default watermark is set far above every
  /// small-chain assembly in the codebase, keeping those builds
  /// bit-identical; million-state assemblies opt in via this setter.
  void SetCoalesceWatermark(size_t watermark);

  /// Sorts, merges duplicates (dropping exact zeros), and produces the CSR
  /// matrix. The builder is left empty but keeps its capacity.
  SparseMatrix Build() &;
  /// Rvalue overload: consumes the builder, releasing the triplet storage
  /// with it — the single-use assembly path.
  SparseMatrix Build() &&;

 private:
  struct Triplet {
    size_t row;
    size_t col;
    double value;
  };

  /// Sorts the triplets by (row, col) and sums duplicates in place.
  void Compact();

  size_t rows_;
  size_t cols_;
  std::vector<Triplet> triplets_;
  /// Default: 4M triplets (~96 MB) — above every small-chain assembly, so
  /// compaction never reorders their duplicate sums.
  size_t coalesce_watermark_ = size_t{1} << 22;
};

class SparseMatrix {
 public:
  SparseMatrix() = default;

  static SparseMatrix FromDense(const DenseMatrix& dense,
                                double drop_tolerance = 0.0);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t num_nonzeros() const { return values_.size(); }

  /// y = A x.
  Vector Multiply(const Vector& x) const;
  /// y = A^T x  (used for pi Q = 0 formulated as Q^T pi^T = 0).
  Vector MultiplyTransposed(const Vector& x) const;
  /// In-place variant: *out = A^T x, reusing out's storage. out must not
  /// alias x. The iterative solvers call this once per sweep; reusing the
  /// scratch vector keeps the inner loop allocation-free.
  void MultiplyTransposed(const Vector& x, Vector* out) const;

  SparseMatrix Transposed() const;
  DenseMatrix ToDense() const;

  /// Entry lookup by binary search within the row; O(log nnz_row).
  double At(size_t row, size_t col) const;

  // CSR internals, exposed for the iterative solvers.
  const std::vector<size_t>& row_offsets() const { return row_offsets_; }
  const std::vector<size_t>& col_indices() const { return col_indices_; }
  const std::vector<double>& values() const { return values_; }

 private:
  friend class SparseMatrixBuilder;

  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<size_t> row_offsets_;  // size rows_+1
  std::vector<size_t> col_indices_;  // size nnz, sorted within each row
  std::vector<double> values_;       // size nnz
};

}  // namespace wfms::linalg

#endif  // WFMS_LINALG_SPARSE_MATRIX_H_

# Simulator checkpoint/resume through the CLI: a checkpointed run and a
# resumed run (which replays and validates the saved cursor) must print
# byte-identical statistics, and a checkpoint from another scenario must
# be refused.
set(CK ${WORKDIR}/sim_resume.wfsn)
file(REMOVE ${CK})

execute_process(
  COMMAND ${WFMSCTL} simulate --scenario ep --config 2,2,3
          --duration 3000 --seed 5 --checkpoint=${CK}
          --checkpoint-events=2000
  OUTPUT_VARIABLE base_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "checkpointed simulate failed: ${rc}")
endif()
if(NOT EXISTS ${CK})
  message(FATAL_ERROR "no simulation checkpoint written")
endif()

execute_process(
  COMMAND ${WFMSCTL} simulate --scenario ep --config 2,2,3
          --duration 3000 --seed 5 --checkpoint=${CK}
          --checkpoint-events=2000 --resume
  OUTPUT_VARIABLE resume_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resumed simulate failed: ${rc}")
endif()
if(NOT base_out STREQUAL resume_out)
  message(FATAL_ERROR "resumed statistics differ from the baseline:\n"
          "--- baseline ---\n${base_out}\n--- resumed ---\n${resume_out}")
endif()

# A different seed is a different trajectory: the cursor must be refused.
execute_process(
  COMMAND ${WFMSCTL} simulate --scenario ep --config 2,2,3
          --duration 3000 --seed 6 --checkpoint=${CK} --resume
  ERROR_VARIABLE stale_err RESULT_VARIABLE rc)
if(NOT rc EQUAL 4)
  message(FATAL_ERROR "stale sim checkpoint accepted (exit ${rc})")
endif()
if(NOT stale_err MATCHES "hash mismatch")
  message(FATAL_ERROR "stale rejection lacks fingerprint detail: ${stale_err}")
endif()
file(REMOVE ${CK})

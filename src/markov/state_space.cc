#include "markov/state_space.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <unordered_map>

#include "common/logging.h"

namespace wfms::markov {

Result<MixedRadixSpace> MixedRadixSpace::Create(std::vector<int> bounds) {
  if (bounds.empty()) {
    return Status::InvalidArgument("state space needs at least one dimension");
  }
  size_t size = 1;
  for (int b : bounds) {
    if (b < 0) return Status::InvalidArgument("bounds must be non-negative");
    const auto radix = static_cast<size_t>(b) + 1;
    if (size > std::numeric_limits<size_t>::max() / radix) {
      return Status::OutOfRange("state space size overflows");
    }
    size *= radix;
  }
  if (size > (size_t{1} << 28)) {
    return Status::OutOfRange(
        "state space too large to analyze (" + std::to_string(size) +
        " states)");
  }
  return MixedRadixSpace(std::move(bounds));
}

MixedRadixSpace::MixedRadixSpace(std::vector<int> bounds)
    : bounds_(std::move(bounds)) {
  place_values_.resize(bounds_.size());
  size_ = 1;
  for (size_t j = 0; j < bounds_.size(); ++j) {
    place_values_[j] = size_;
    size_ *= static_cast<size_t>(bounds_[j]) + 1;
  }
}

Result<size_t> MixedRadixSpace::Encode(const StateVector& state) const {
  if (state.size() != bounds_.size()) {
    return Status::InvalidArgument("state vector dimension mismatch");
  }
  for (size_t j = 0; j < state.size(); ++j) {
    if (state[j] < 0 || state[j] > bounds_[j]) {
      return Status::OutOfRange("component " + std::to_string(j) +
                                " out of bounds");
    }
  }
  return EncodeUnchecked(state);
}

size_t MixedRadixSpace::EncodeUnchecked(const StateVector& state) const {
  size_t index = 0;
  for (size_t j = 0; j < state.size(); ++j) {
    index += static_cast<size_t>(state[j]) * place_values_[j];
  }
  return index;
}

Result<StateVector> MixedRadixSpace::Decode(size_t index) const {
  if (index >= size_) return Status::OutOfRange("state index out of range");
  StateVector state(bounds_.size());
  for (size_t j = 0; j < bounds_.size(); ++j) {
    const size_t radix = static_cast<size_t>(bounds_[j]) + 1;
    state[j] = static_cast<int>(index % radix);
    index /= radix;
  }
  return state;
}

size_t MixedRadixSpace::Neighbor(size_t index, size_t dim, int delta) const {
  WFMS_DCHECK(dim < bounds_.size());
  const int value = Component(index, dim);
  const int next = value + delta;
  if (next < 0 || next > bounds_[dim]) return SIZE_MAX;
  return index + static_cast<size_t>(delta) * place_values_[dim];
}

int MixedRadixSpace::Component(size_t index, size_t dim) const {
  WFMS_DCHECK(dim < bounds_.size());
  const size_t radix = static_cast<size_t>(bounds_[dim]) + 1;
  return static_cast<int>((index / place_values_[dim]) % radix);
}

Result<std::vector<uint32_t>> ExchangeableStateLabels(
    const MixedRadixSpace& space, const std::vector<uint64_t>& dim_signature) {
  const size_t k = space.num_dimensions();
  if (dim_signature.size() != k) {
    return Status::InvalidArgument(
        "exchangeable labels: one signature per dimension required");
  }
  // Group dimensions by signature; each group must be bound-homogeneous.
  std::vector<size_t> order(k);
  for (size_t j = 0; j < k; ++j) order[j] = j;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return dim_signature[a] < dim_signature[b];
  });
  std::vector<std::vector<size_t>> classes;
  for (size_t idx = 0; idx < k; ++idx) {
    const size_t j = order[idx];
    if (idx == 0 || dim_signature[j] != dim_signature[order[idx - 1]]) {
      classes.emplace_back();
    } else if (space.bound(j) != space.bound(order[idx - 1])) {
      return Status::InvalidArgument(
          "exchangeable labels: dimensions with equal signatures must have "
          "equal bounds");
    }
    classes.back().push_back(j);
  }

  std::vector<uint32_t> labels(space.size());
  std::unordered_map<size_t, uint32_t> dense;
  dense.reserve(space.size() / 2 + 1);
  StateVector state(k);
  std::vector<int> sorted_class;
  for (size_t i = 0; i < space.size(); ++i) {
    for (size_t j = 0; j < k; ++j) state[j] = space.Component(i, j);
    for (const auto& cls : classes) {
      if (cls.size() < 2) continue;
      sorted_class.clear();
      for (size_t j : cls) sorted_class.push_back(state[j]);
      std::sort(sorted_class.begin(), sorted_class.end());
      for (size_t c = 0; c < cls.size(); ++c) state[cls[c]] = sorted_class[c];
    }
    const size_t canonical = space.EncodeUnchecked(state);
    const auto [it, inserted] =
        dense.emplace(canonical, static_cast<uint32_t>(dense.size()));
    labels[i] = it->second;
  }
  return labels;
}

Result<linalg::Vector> ProjectDistribution(const MixedRadixSpace& from,
                                           const linalg::Vector& pi,
                                           const MixedRadixSpace& to) {
  const size_t k = to.num_dimensions();
  if (from.num_dimensions() != k) {
    return Status::InvalidArgument(
        "projection requires spaces of equal dimension");
  }
  if (pi.size() != from.size()) {
    return Status::InvalidArgument("projection: distribution size mismatch");
  }
  linalg::Vector guess(to.size(), 0.0);
  StateVector clamped(k);
  double sum = 0.0;
  for (size_t i = 0; i < to.size(); ++i) {
    for (size_t x = 0; x < k; ++x) {
      clamped[x] = std::min(to.Component(i, x), from.bound(x));
    }
    const double mass = pi[from.EncodeUnchecked(clamped)];
    guess[i] = mass;
    sum += mass;
  }
  if (!(sum > 0.0) || !std::isfinite(sum)) {
    return Status::NumericError("projection produced an empty distribution");
  }
  for (double& g : guess) g /= sum;
  return guess;
}

std::string MixedRadixSpace::ToString(size_t index) const {
  std::ostringstream os;
  os << "(";
  for (size_t j = 0; j < bounds_.size(); ++j) {
    if (j > 0) os << ",";
    os << Component(index, j);
  }
  os << ")";
  return os.str();
}

}  // namespace wfms::markov

file(REMOVE_RECURSE
  "CMakeFiles/to_ctmc_test.dir/to_ctmc_test.cc.o"
  "CMakeFiles/to_ctmc_test.dir/to_ctmc_test.cc.o.d"
  "to_ctmc_test"
  "to_ctmc_test.pdb"
  "to_ctmc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/to_ctmc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

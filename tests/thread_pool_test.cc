#include "common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <future>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace wfms {
namespace {

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<int> order;
  pool.ParallelFor(5, [&](size_t i) { order.push_back(static_cast<int>(i)); });
  // One lane: indices are claimed by the caller in order, no races.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> counts(kN);
  pool.ParallelFor(kN, [&](size_t i) { counts[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroAndOneElement) {
  ThreadPool pool(3);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, SubmitReturnsFutureValue) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { return 6 * 7; });
  ASSERT_TRUE(future.ok()) << future.status();
  EXPECT_EQ(future->get(), 42);
}

TEST(ThreadPoolTest, SubmitInlineWhenSingleThreaded) {
  ThreadPool pool(1);
  auto future = pool.Submit([] { return std::string("inline"); });
  ASSERT_TRUE(future.ok()) << future.status();
  EXPECT_EQ(future->get(), "inline");
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      ASSERT_TRUE(pool.Submit([&done] { done.fetch_add(1); }).ok());
    }
  }  // pool destruction joins workers after the queue is drained
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasksAndResolvesFutures) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    auto submitted = pool.Submit([&done, i] {
      done.fetch_add(1);
      return i;
    });
    ASSERT_TRUE(submitted.ok()) << submitted.status();
    futures.push_back(*std::move(submitted));
  }
  pool.Shutdown();
  // Every task queued before Shutdown ran and its future resolved.
  EXPECT_EQ(done.load(), 64);
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(futures[static_cast<size_t>(i)].get(), i);
  }
}

TEST(ThreadPoolTest, SubmitAfterShutdownReturnsErrorNotCrash) {
  ThreadPool pool(2);
  pool.Shutdown();
  auto rejected = pool.Submit([] { return 1; });
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(3);
  auto future = pool.Submit([] { return 7; });
  ASSERT_TRUE(future.ok());
  pool.Shutdown();
  pool.Shutdown();  // second call is a no-op, not a double-join
  EXPECT_EQ(future->get(), 7);
}

TEST(ThreadPoolTest, SubmitAfterShutdownSingleThreadedDoesNotRunInline) {
  ThreadPool pool(1);
  pool.Shutdown();
  bool ran = false;
  auto rejected = pool.Submit([&ran] { ran = true; });
  EXPECT_FALSE(rejected.ok());
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ParallelSumMatchesSequential) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<double> out(kN, 0.0);
  pool.ParallelFor(kN, [&](size_t i) {
    out[i] = static_cast<double>(i) * 0.5;
  });
  const double sum = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 0.5 * (kN - 1) * kN / 2.0);
}

TEST(ThreadPoolTest, DefaultThreadCountHonorsEnvOverride) {
  ::setenv("WFMS_NUM_THREADS", "3", /*overwrite=*/1);
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), 3u);
  ::setenv("WFMS_NUM_THREADS", "0", 1);  // non-positive: fall back
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
  ::setenv("WFMS_NUM_THREADS", "garbage", 1);
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
  ::unsetenv("WFMS_NUM_THREADS");
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

TEST(ThreadPoolTest, WorkerMaySubmitIntoItsOwnPool) {
  // One outer task blocks on an inner task; the second worker picks the
  // inner one up. (Blocking every lane on queued work would deadlock —
  // the searches only ever wait for futures from the caller thread.)
  ThreadPool pool(3);
  std::atomic<int> inner{0};
  auto outer = pool.Submit([&] {
    auto future = pool.Submit([&inner] { inner.fetch_add(1); });
    ASSERT_TRUE(future.ok());
    future->wait();
  });
  ASSERT_TRUE(outer.ok());
  (*outer).wait();
  EXPECT_EQ(inner.load(), 1);
}

}  // namespace
}  // namespace wfms

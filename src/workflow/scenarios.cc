#include "workflow/scenarios.h"

#include "statechart/parser.h"

namespace wfms::workflow {

namespace {

constexpr char kEpDsl[] = R"(
# Electronic purchase workflow (paper Fig. 3), top-level chart.
chart EP
  state NewOrder activity=new_order residence=5
  state CreditCardCheck activity=cc_check residence=1
  compound Shipment subcharts=Notify,Delivery
  state SendInvoice activity=send_invoice residence=2
  state CollectPayment activity=collect_payment residence=1440
  state ChargeCreditCard activity=charge_cc residence=1
  state EPExit activity=finish residence=0.5
  initial NewOrder
  final EPExit
  trans NewOrder -> CreditCardCheck prob=0.5 event=NewOrder_DONE cond=PayByCreditCard action=st!(cc_check)
  trans NewOrder -> Shipment prob=0.5 event=NewOrder_DONE cond=!PayByCreditCard
  trans CreditCardCheck -> EPExit prob=0.1 event=CreditCardCheck_DONE cond=CardInvalid
  trans CreditCardCheck -> Shipment prob=0.9 event=CreditCardCheck_DONE cond=!CardInvalid
  trans Shipment -> ChargeCreditCard prob=0.5 cond=PayByCreditCard
  trans Shipment -> SendInvoice prob=0.5 cond=!PayByCreditCard
  trans SendInvoice -> CollectPayment prob=1 event=SendInvoice_DONE action=st!(collect_payment)
  trans CollectPayment -> SendInvoice prob=0.2 event=PaymentOverdue action=st!(send_invoice)
  trans CollectPayment -> EPExit prob=0.8 event=PaymentReceived
  trans ChargeCreditCard -> EPExit prob=1 event=ChargeCreditCard_DONE
end

# Orthogonal component 1 of Shipment (paper: Notify_SC).
chart Notify
  state PrepareNotice activity=prepare_notice residence=1
  state SendNotice activity=send_notice residence=2
  initial PrepareNotice
  final SendNotice
  trans PrepareNotice -> SendNotice prob=1 event=PrepareNotice_DONE
end

# Orthogonal component 2 of Shipment (paper: Delivery_SC).
chart Delivery
  state PickItems activity=pick_items residence=30
  state PackItems activity=pack_items residence=20
  state ShipItems activity=ship_items residence=2880
  initial PickItems
  final ShipItems
  trans PickItems -> PackItems prob=1 event=PickItems_DONE
  trans PackItems -> PickItems prob=0.1 cond=ItemsMissing
  trans PackItems -> ShipItems prob=0.9 cond=!ItemsMissing
end
)";

constexpr char kLoanDsl[] = R"(
# Loan approval workflow: document-check loop plus risk assessment.
chart Loan
  state SubmitApplication activity=submit_application residence=10
  state CheckDocuments activity=check_documents residence=5
  state RequestMoreDocs activity=request_more_docs residence=2880
  state RiskAssessment activity=risk_assessment residence=15
  state ApproveLoan activity=approve_loan residence=30
  state NotifyDecision activity=notify_decision residence=1
  initial SubmitApplication
  final NotifyDecision
  trans SubmitApplication -> CheckDocuments prob=1 event=Submit_DONE
  trans CheckDocuments -> RequestMoreDocs prob=0.3 cond=DocsIncomplete
  trans CheckDocuments -> RiskAssessment prob=0.7 cond=!DocsIncomplete
  trans RequestMoreDocs -> CheckDocuments prob=1 event=DocsArrived
  trans RiskAssessment -> ApproveLoan prob=0.6 cond=RiskAcceptable
  trans RiskAssessment -> NotifyDecision prob=0.4 cond=!RiskAcceptable
  trans ApproveLoan -> NotifyDecision prob=1 event=Approve_DONE
end
)";

constexpr char kClaimDsl[] = R"(
# Insurance claim workflow: parallel damage review and fraud check.
chart Claim
  state ReceiveClaim activity=receive_claim residence=2
  compound Assess subcharts=DamageReview,FraudCheck
  state Settle activity=settle_claim residence=5
  state CloseClaim activity=close_claim residence=1
  initial ReceiveClaim
  final CloseClaim
  trans ReceiveClaim -> Assess prob=1 event=Receive_DONE
  trans Assess -> Settle prob=0.85 cond=ClaimValid
  trans Assess -> CloseClaim prob=0.15 cond=!ClaimValid
  trans Settle -> CloseClaim prob=1 event=Settle_DONE
end

chart DamageReview
  state AssignAdjuster activity=assign_adjuster residence=5
  state Inspect activity=inspect_damage residence=1440
  state WriteReport activity=write_report residence=30
  initial AssignAdjuster
  final WriteReport
  trans AssignAdjuster -> Inspect prob=1
  trans Inspect -> WriteReport prob=1
end

chart FraudCheck
  state AutoScreen activity=auto_screen residence=1
  state DeepCheck activity=deep_check residence=720
  state FraudExit activity=fraud_exit residence=0.5
  initial AutoScreen
  final FraudExit
  trans AutoScreen -> DeepCheck prob=0.2 cond=Suspicious
  trans AutoScreen -> FraudExit prob=0.8 cond=!Suspicious
  trans DeepCheck -> FraudExit prob=1
end
)";

/// Fig. 1 request-count patterns (comm, engine, app ordering is
/// scenario-specific; these helpers are written for a given index layout).
struct LoadPattern {
  double engine;
  double comm;
  double app;
};
constexpr LoadPattern kAutomated{3, 2, 3};    // first part of Fig. 1
constexpr LoadPattern kInteractive{3, 2, 0};  // second part of Fig. 1

}  // namespace

const char* EpChartsDsl() { return kEpDsl; }
const char* LoanChartsDsl() { return kLoanDsl; }
const char* ClaimChartsDsl() { return kClaimDsl; }

Result<Environment> EpEnvironment(double arrival_rate) {
  Environment env;
  WFMS_ASSIGN_OR_RETURN(env.charts, statechart::ParseCharts(kEpDsl));

  // Three server types, §5.2 rates. Index layout: 0 comm, 1 engine, 2 app.
  WFMS_RETURN_NOT_OK(env.servers
                         .AddServerType({"comm",
                                         ServerKind::kCommunicationServer,
                                         queueing::ExponentialService(0.005),
                                         kCommFailureRate, kRepairRate})
                         .status());
  WFMS_RETURN_NOT_OK(env.servers
                         .AddServerType({"engine", ServerKind::kWorkflowEngine,
                                         queueing::ExponentialService(0.02),
                                         kEngineFailureRate, kRepairRate})
                         .status());
  WFMS_RETURN_NOT_OK(
      env.servers
          .AddServerType({"app", ServerKind::kApplicationServer,
                          *queueing::ServiceFromMeanScv(0.05, 2.0),
                          kAppFailureRate, kRepairRate})
          .status());

  const auto set_load = [&env](const std::string& activity,
                               const LoadPattern& pattern) {
    return env.loads.SetLoad(activity,
                             {pattern.comm, pattern.engine, pattern.app});
  };
  // Interactive activities run on client machines (no app server involved).
  WFMS_RETURN_NOT_OK(set_load("new_order", kInteractive));
  WFMS_RETURN_NOT_OK(set_load("cc_check", kAutomated));
  WFMS_RETURN_NOT_OK(set_load("prepare_notice", kAutomated));
  WFMS_RETURN_NOT_OK(set_load("send_notice", kAutomated));
  WFMS_RETURN_NOT_OK(set_load("pick_items", kInteractive));
  WFMS_RETURN_NOT_OK(set_load("pack_items", kInteractive));
  WFMS_RETURN_NOT_OK(set_load("ship_items", kAutomated));
  WFMS_RETURN_NOT_OK(set_load("send_invoice", kAutomated));
  WFMS_RETURN_NOT_OK(set_load("collect_payment", kAutomated));
  WFMS_RETURN_NOT_OK(set_load("charge_cc", kAutomated));
  WFMS_RETURN_NOT_OK(set_load("finish", kAutomated));

  env.workflows.push_back({"EP", "EP", arrival_rate});
  WFMS_RETURN_NOT_OK(env.Validate());
  return env;
}

Result<Environment> GeoEpEnvironment(double arrival_rate,
                                     double cross_site_latency) {
  WFMS_ASSIGN_OR_RETURN(Environment env, EpEnvironment(arrival_rate));
  Site eu;
  eu.name = "EU";
  eu.failure_rate = 1.0 / 525600.0;  // one whole-site loss per year
  eu.repair_rate = 1.0 / 60.0;       // restored in an hour
  Site us = eu;
  us.name = "US";
  env.topology.sites.push_back(std::move(eu));
  env.topology.sites.push_back(std::move(us));
  env.topology.latency = {0.0, cross_site_latency,  //
                          cross_site_latency, 0.0};
  env.topology.partition_rate = 1.0 / 43200.0;  // about once a month
  env.topology.heal_rate = 1.0 / 20.0;          // heals in ~20 min
  WFMS_RETURN_NOT_OK(env.Validate());
  return env;
}

Result<Environment> BenchmarkEnvironment(double ep_rate, double loan_rate,
                                         double claim_rate) {
  Environment env;
  const std::string dsl = std::string(kEpDsl) + kLoanDsl + kClaimDsl;
  WFMS_ASSIGN_OR_RETURN(env.charts, statechart::ParseCharts(dsl));

  // Index layout: 0 comm, 1 eng-order, 2 eng-fin, 3 app-db, 4 app-doc.
  WFMS_RETURN_NOT_OK(env.servers
                         .AddServerType({"comm",
                                         ServerKind::kCommunicationServer,
                                         queueing::ExponentialService(0.005),
                                         kCommFailureRate, kRepairRate})
                         .status());
  WFMS_RETURN_NOT_OK(
      env.servers
          .AddServerType({"eng-order", ServerKind::kWorkflowEngine,
                          queueing::ExponentialService(0.02),
                          kEngineFailureRate, kRepairRate})
          .status());
  WFMS_RETURN_NOT_OK(
      env.servers
          .AddServerType({"eng-fin", ServerKind::kWorkflowEngine,
                          queueing::ExponentialService(0.03),
                          kEngineFailureRate, kRepairRate})
          .status());
  WFMS_RETURN_NOT_OK(
      env.servers
          .AddServerType({"app-db", ServerKind::kApplicationServer,
                          *queueing::ServiceFromMeanScv(0.05, 2.0),
                          kAppFailureRate, kRepairRate})
          .status());
  WFMS_RETURN_NOT_OK(
      env.servers
          .AddServerType({"app-doc", ServerKind::kApplicationServer,
                          *queueing::ServiceFromMeanScv(0.08, 3.0),
                          kAppFailureRate, kRepairRate})
          .status());

  // Load vectors (comm, eng-order, eng-fin, app-db, app-doc).
  const auto order_auto = [](double scale = 1.0) {
    return linalg::Vector{2 * scale, 3 * scale, 0, 3 * scale, 0};
  };
  const auto order_inter = []() { return linalg::Vector{2, 3, 0, 0, 0}; };
  const auto fin_auto_db = [](double scale = 1.0) {
    return linalg::Vector{2 * scale, 0, 3 * scale, 3 * scale, 0};
  };
  const auto fin_auto_doc = [](double scale = 1.0) {
    return linalg::Vector{2 * scale, 0, 3 * scale, 0, 3 * scale};
  };
  const auto fin_inter = []() { return linalg::Vector{2, 0, 3, 0, 0}; };

  // EP activities: order engine + OLTP database.
  WFMS_RETURN_NOT_OK(env.loads.SetLoad("new_order", order_inter()));
  WFMS_RETURN_NOT_OK(env.loads.SetLoad("cc_check", order_auto()));
  WFMS_RETURN_NOT_OK(env.loads.SetLoad("prepare_notice", order_auto()));
  WFMS_RETURN_NOT_OK(env.loads.SetLoad("send_notice", order_auto()));
  WFMS_RETURN_NOT_OK(env.loads.SetLoad("pick_items", order_inter()));
  WFMS_RETURN_NOT_OK(env.loads.SetLoad("pack_items", order_inter()));
  WFMS_RETURN_NOT_OK(env.loads.SetLoad("ship_items", order_auto()));
  WFMS_RETURN_NOT_OK(env.loads.SetLoad("send_invoice", order_auto()));
  WFMS_RETURN_NOT_OK(env.loads.SetLoad("collect_payment", order_auto()));
  WFMS_RETURN_NOT_OK(env.loads.SetLoad("charge_cc", order_auto()));
  WFMS_RETURN_NOT_OK(env.loads.SetLoad("finish", order_auto()));

  // Loan activities: finance engine; risk assessment is database-heavy,
  // document handling hits the document server.
  WFMS_RETURN_NOT_OK(env.loads.SetLoad("submit_application", fin_inter()));
  WFMS_RETURN_NOT_OK(env.loads.SetLoad("check_documents", fin_auto_doc()));
  WFMS_RETURN_NOT_OK(env.loads.SetLoad("request_more_docs", fin_inter()));
  WFMS_RETURN_NOT_OK(env.loads.SetLoad("risk_assessment", fin_auto_db(2.0)));
  WFMS_RETURN_NOT_OK(env.loads.SetLoad("approve_loan", fin_inter()));
  WFMS_RETURN_NOT_OK(env.loads.SetLoad("notify_decision", fin_auto_db()));

  // Claim activities.
  WFMS_RETURN_NOT_OK(env.loads.SetLoad("receive_claim", fin_auto_db()));
  WFMS_RETURN_NOT_OK(env.loads.SetLoad("assign_adjuster", fin_auto_db()));
  WFMS_RETURN_NOT_OK(env.loads.SetLoad("inspect_damage", fin_inter()));
  WFMS_RETURN_NOT_OK(env.loads.SetLoad("write_report", fin_auto_doc()));
  WFMS_RETURN_NOT_OK(env.loads.SetLoad("auto_screen", fin_auto_db()));
  WFMS_RETURN_NOT_OK(env.loads.SetLoad("deep_check", fin_auto_doc(2.0)));
  WFMS_RETURN_NOT_OK(env.loads.SetLoad("fraud_exit", fin_auto_db()));
  WFMS_RETURN_NOT_OK(env.loads.SetLoad("settle_claim", fin_auto_db()));
  WFMS_RETURN_NOT_OK(env.loads.SetLoad("close_claim", fin_auto_db()));

  env.workflows.push_back({"EP", "EP", ep_rate});
  env.workflows.push_back({"Loan", "Loan", loan_rate});
  env.workflows.push_back({"Claim", "Claim", claim_rate});
  WFMS_RETURN_NOT_OK(env.Validate());
  return env;
}

}  // namespace wfms::workflow

// Crash-safe snapshot I/O: the on-disk substrate of the checkpoint/resume
// subsystem (configtool search checkpoints, simulator replay cursors; see
// DESIGN.md "Checkpointing and recovery").
//
// A snapshot file is
//
//   magic "WFSN" | format u32 | kind u32 | payload length u64 | payload
//   | CRC32 u32 over everything before the footer
//
// written atomically: the bytes go to a temp file in the same directory,
// are fsync'd, and are renamed over the destination (followed by a
// directory fsync), so a reader never observes a half-written snapshot —
// either the old file, the new file, or (on first write) no file at all.
// A torn, truncated, or bit-flipped file is rejected by the CRC/length
// checks with a descriptive Status, never interpreted.
//
// Payloads are encoded with a small tag-length-value codec: every field is
//
//   tag u32 | length u64 | value bytes
//
// read back strictly in writing order (a tag mismatch reports both tags),
// so format drift between writer and reader versions is detected rather
// than misparsed. All integers are little-endian fixed-width; doubles are
// bit-cast to u64 so round-trips are bit-exact.
#ifndef WFMS_COMMON_SNAPSHOT_H_
#define WFMS_COMMON_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace wfms {

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `bytes`.
uint32_t Crc32(std::string_view bytes);

/// FNV-1a 64-bit hash — the fingerprint primitive used to key checkpoints
/// to the environment/goals/options they were taken under.
uint64_t Fnv1a64(std::string_view bytes);
/// Chains another chunk onto an existing FNV-1a state (start from
/// kFnv1a64Seed).
uint64_t Fnv1a64(std::string_view bytes, uint64_t state);
inline constexpr uint64_t kFnv1a64Seed = 0xCBF29CE484222325ULL;

/// Appends TLV fields to a payload buffer.
class SnapshotWriter {
 public:
  void U32(uint32_t tag, uint32_t value);
  void U64(uint32_t tag, uint64_t value);
  void I64(uint32_t tag, int64_t value);
  void F64(uint32_t tag, double value);
  void Str(uint32_t tag, std::string_view value);
  void VecF64(uint32_t tag, const std::vector<double>& value);
  void VecI32(uint32_t tag, const std::vector<int>& value);
  void VecU64(uint32_t tag, const uint64_t* data, size_t n);

  const std::string& payload() const { return payload_; }
  std::string Take() { return std::move(payload_); }

 private:
  void Field(uint32_t tag, std::string_view value);
  std::string payload_;
};

/// Reads TLV fields back in writing order. Every accessor validates the
/// expected tag and the value length; errors name the offending tag and
/// offset so corruption reports are actionable.
class SnapshotReader {
 public:
  explicit SnapshotReader(std::string_view payload) : payload_(payload) {}

  Result<uint32_t> U32(uint32_t tag);
  Result<uint64_t> U64(uint32_t tag);
  Result<int64_t> I64(uint32_t tag);
  Result<double> F64(uint32_t tag);
  Result<std::string> Str(uint32_t tag);
  Result<std::vector<double>> VecF64(uint32_t tag);
  Result<std::vector<int>> VecI32(uint32_t tag);
  Result<std::vector<uint64_t>> VecU64(uint32_t tag);

  /// True when every field has been consumed.
  bool AtEnd() const { return offset_ == payload_.size(); }

 private:
  Result<std::string_view> Field(uint32_t tag);

  std::string_view payload_;
  size_t offset_ = 0;
};

/// Writes `bytes` to `path` atomically (temp file + fsync + rename +
/// directory fsync).
Status AtomicWriteFile(const std::string& path, std::string_view bytes);

/// Reads a whole file; NotFound when it does not exist.
Result<std::string> ReadFileBytes(const std::string& path);

/// Current snapshot container format version.
inline constexpr uint32_t kSnapshotFormatVersion = 1;

/// Payload kinds, so a search checkpoint is never misread as a simulation
/// checkpoint (and vice versa).
enum class SnapshotKind : uint32_t {
  kSearchCheckpoint = 1,
  kSimulationCheckpoint = 2,
  /// The wfmsd daemon's shared assessment cache (see src/service),
  /// persisted so a restarted daemon answers warm.
  kServiceCache = 3,
};

/// Frames `payload` in the header/CRC container and writes it atomically.
Status WriteSnapshotFile(const std::string& path, SnapshotKind kind,
                         std::string_view payload);

/// Reads and validates a snapshot file: magic, container version within
/// [1, kSnapshotFormatVersion], kind, payload length, CRC. Each failure
/// mode is named in the Status ("truncated", "CRC mismatch",
/// "unsupported snapshot format version", "wrong snapshot kind", ...).
Result<std::string> ReadSnapshotFile(const std::string& path,
                                     SnapshotKind kind);

}  // namespace wfms

#endif  // WFMS_COMMON_SNAPSHOT_H_

// Small string helpers shared by the DSL parser and report writers.
#ifndef WFMS_COMMON_STRING_UTIL_H_
#define WFMS_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace wfms {

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Splits on `sep`, optionally dropping empty pieces.
std::vector<std::string> SplitString(std::string_view s, char sep,
                                     bool skip_empty = false);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Parses a double; returns false on trailing garbage or empty input.
bool ParseDouble(std::string_view s, double* out);
/// Parses a non-negative integer; returns false on trailing garbage.
bool ParseInt(std::string_view s, int* out);

/// Joins the elements of `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

}  // namespace wfms

#endif  // WFMS_COMMON_STRING_UTIL_H_

#include "common/metrics.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <limits>
#include <sstream>

#include "common/logging.h"

namespace wfms::metrics {

namespace {

// %.17g round-trips doubles; JSON has no Infinity/NaN literals, so clamp
// non-finite values to the largest finite double (metrics should never
// produce them, but a malformed export must not poison the whole file).
void AppendJsonNumber(std::string& out, double value) {
  if (std::isnan(value)) value = 0.0;
  if (std::isinf(value)) {
    value = value > 0 ? std::numeric_limits<double>::max()
                      : std::numeric_limits<double>::lowest();
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

void AppendPromNumber(std::string& out, double value) {
  // Prometheus accepts +Inf/-Inf/NaN spellings.
  if (std::isnan(value)) {
    out += "NaN";
  } else if (std::isinf(value)) {
    out += value > 0 ? "+Inf" : "-Inf";
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out += buf;
  }
}

// Exemplar trace ids are caller-supplied strings; escape defensively even
// though well-behaved callers only pass lowercase hex.
void AppendJsonString(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string PromEscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string PromEscapeHelp(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void Gauge::Add(double delta) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void Gauge::UpdateMax(double value) {
  double current = value_.load(std::memory_order_relaxed);
  while (current < value && !value_.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

int Histogram::BucketIndex(double value) {
  if (!(value > 0.0)) return 0;  // zero, negative, or NaN
  int exponent = 0;
  const double fraction = std::frexp(value, &exponent);  // in [0.5, 1)
  if (exponent <= kMinExponent) return 1;  // underflow: lowest finite bucket
  if (exponent > kMaxExponent) return kNumBuckets - 1;  // overflow
  int sub = static_cast<int>((fraction - 0.5) * 2.0 * kSubBucketsPerOctave);
  sub = std::min(sub, kSubBucketsPerOctave - 1);
  return 1 + (exponent - 1 - kMinExponent) * kSubBucketsPerOctave + sub;
}

double Histogram::BucketLowerBound(int index) {
  if (index <= 0) return 0.0;
  if (index >= kNumBuckets - 1) return std::ldexp(1.0, kMaxExponent);
  const int linear = index - 1;
  const int exponent = kMinExponent + linear / kSubBucketsPerOctave;
  const int sub = linear % kSubBucketsPerOctave;
  return std::ldexp(0.5 + sub / (2.0 * kSubBucketsPerOctave), exponent + 1);
}

double Histogram::BucketUpperBound(int index) {
  if (index <= 0) return 0.0;
  if (index >= kNumBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return BucketLowerBound(index + 1);
}

void Histogram::Observe(double value, std::string_view exemplar_trace_id) {
  Observe(value);
  if (exemplar_trace_id.empty()) return;
  // Cheap pre-check outside the lock: only a new (or tied) maximum can
  // replace the exemplar, so sub-maximal observations never contend.
  if (value < max_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(exemplar_mutex_);
  if (exemplar_trace_id_.empty() || value >= exemplar_value_) {
    exemplar_value_ = value;
    exemplar_trace_id_.assign(exemplar_trace_id.data(),
                              exemplar_trace_id.size());
  }
}

std::string Histogram::exemplar_trace_id() const {
  std::lock_guard<std::mutex> lock(exemplar_mutex_);
  return exemplar_trace_id_;
}

double Histogram::exemplar_value() const {
  std::lock_guard<std::mutex> lock(exemplar_mutex_);
  return exemplar_value_;
}

void Histogram::Observe(double value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);

  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }

  if (!any_.exchange(true, std::memory_order_relaxed)) {
    // First observation seeds both extremes; racing observers fall through
    // to the CAS loops below, which only tighten the bounds.
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  }
  double current_min = min_.load(std::memory_order_relaxed);
  while (value < current_min &&
         !min_.compare_exchange_weak(current_min, value,
                                     std::memory_order_relaxed)) {
  }
  double current_max = max_.load(std::memory_order_relaxed);
  while (value > current_max &&
         !max_.compare_exchange_weak(current_max, value,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::min() const {
  return any_.load(std::memory_order_relaxed)
             ? min_.load(std::memory_order_relaxed)
             : 0.0;
}

double Histogram::max() const {
  return any_.load(std::memory_order_relaxed)
             ? max_.load(std::memory_order_relaxed)
             : 0.0;
}

double Histogram::Quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  // Per-bucket counts are read without a barrier; a concurrent Observe may
  // or may not be visible, which only shifts the estimate by one sample.
  std::array<uint64_t, kNumBuckets> counts;
  uint64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;

  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (counts[i] == 0) continue;
    const double next = cumulative + static_cast<double>(counts[i]);
    if (next >= target) {
      const double lo = BucketLowerBound(i);
      double hi = BucketUpperBound(i);
      const double observed_min = min();
      const double observed_max = max();
      if (std::isinf(hi)) hi = std::max(observed_max, lo);
      const double fraction =
          counts[i] == 0 ? 0.0
                         : (target - cumulative) / static_cast<double>(counts[i]);
      const double estimate = lo + (hi - lo) * std::clamp(fraction, 0.0, 1.0);
      // Clamp to the exactly-tracked observed range: a sample quantile can
      // never leave [min, max], but the interpolation can when every
      // observation sits in a magnitude-clamped edge bucket whose nominal
      // bounds don't contain it.
      return std::clamp(estimate, observed_min, observed_max);
    }
    cumulative = next;
  }
  return max();
}

std::vector<HistogramBucket> Histogram::NonEmptyBuckets() const {
  std::vector<HistogramBucket> out;
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    out.push_back(HistogramBucket{BucketUpperBound(i), n});
  }
  return out;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  any_.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(exemplar_mutex_);
  exemplar_trace_id_.clear();
  exemplar_value_ = 0.0;
}

uint64_t MetricsSnapshot::counter(std::string_view name,
                                  uint64_t fallback) const {
  const auto it = counters.find(std::string(name));
  return it == counters.end() ? fallback : it->second;
}

double MetricsSnapshot::gauge(std::string_view name, double fallback) const {
  const auto it = gauges.find(std::string(name));
  return it == gauges.end() ? fallback : it->second;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    std::string_view name) const {
  const auto it = histograms.find(std::string(name));
  return it == histograms.end() ? nullptr : &it->second;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out;
  out.reserve(1024);
  out += "{\n  \"schema_version\": 2,\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": ";
    AppendJsonNumber(out, value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": {\n";
    out += "      \"count\": " + std::to_string(h.count) + ",\n";
    out += "      \"sum\": ";
    AppendJsonNumber(out, h.sum);
    out += ",\n      \"min\": ";
    AppendJsonNumber(out, h.min);
    out += ",\n      \"max\": ";
    AppendJsonNumber(out, h.max);
    out += ",\n      \"p50\": ";
    AppendJsonNumber(out, h.p50);
    out += ",\n      \"p90\": ";
    AppendJsonNumber(out, h.p90);
    out += ",\n      \"p99\": ";
    AppendJsonNumber(out, h.p99);
    out += ",\n      \"p999\": ";
    AppendJsonNumber(out, h.p999);
    out += ",\n      \"buckets\": [";
    bool first_bucket = true;
    for (const HistogramBucket& bucket : h.buckets) {
      out += first_bucket ? "\n" : ",\n";
      first_bucket = false;
      out += "        {\"le\": ";
      if (std::isinf(bucket.upper_bound)) {
        // JSON has no Infinity literal; the overflow bucket's bound is the
        // string "+Inf", matching the Prometheus spelling.
        out += "\"+Inf\"";
      } else {
        AppendJsonNumber(out, bucket.upper_bound);
      }
      out += ", \"count\": " + std::to_string(bucket.count) + "}";
    }
    out += first_bucket ? "]" : "\n      ]";
    if (!h.exemplar_trace_id.empty()) {
      out += ",\n      \"exemplar\": {\"trace_id\": ";
      AppendJsonString(out, h.exemplar_trace_id);
      out += ", \"value\": ";
      AppendJsonNumber(out, h.exemplar_value);
      out += "}";
    }
    out += "\n    }";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  out.reserve(1024);
  const auto header = [this, &out](const std::string& name,
                                   const char* kind) {
    const auto it = help.find(name);
    out += "# HELP " + name + " ";
    if (it != help.end()) {
      out += PromEscapeHelp(it->second);
    } else {
      // A HELP line is mandatory-in-spirit for scrapers; metrics without a
      // registered string get a generic one.
      out += std::string("wfms ") + kind;
    }
    out += "\n# TYPE " + name + " " + kind + "\n";
  };
  for (const auto& [name, value] : counters) {
    header(name, "counter");
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    header(name, "gauge");
    out += name + " ";
    AppendPromNumber(out, value);
    out += "\n";
  }
  for (const auto& [name, h] : histograms) {
    header(name, "histogram");
    uint64_t cumulative = 0;
    bool has_inf = false;
    for (const HistogramBucket& bucket : h.buckets) {
      cumulative += bucket.count;
      std::string le;
      AppendPromNumber(le, bucket.upper_bound);
      out += name + "_bucket{le=\"" + PromEscapeLabelValue(le) + "\"} " +
             std::to_string(cumulative) + "\n";
      if (std::isinf(bucket.upper_bound)) has_inf = true;
    }
    if (!has_inf) {
      out += name + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) +
             "\n";
    }
    out += name + "_sum ";
    AppendPromNumber(out, h.sum);
    out += "\n";
    out += name + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked: handles cached across the process (including in static
  // destructors and detached threads) must never dangle.
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

std::string MetricsRegistry::SanitizeName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  // push_back instead of assigning a literal: GCC 12's -Wrestrict sees a
  // potential self-overlap in the literal assignment and -Werror trips on
  // the false positive (GCC PR105329).
  if (out.empty()) out.push_back('_');
  if (out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

MetricsRegistry::Shard& MetricsRegistry::ShardFor(std::string_view name) {
  return shards_[std::hash<std::string_view>{}(name) % kNumShards];
}

template <typename T>
T& MetricsRegistry::GetMetric(std::string_view name,
                              std::unique_ptr<T> Entry::* member,
                              const char* kind) {
  const std::string sanitized = SanitizeName(name);
  Shard& shard = ShardFor(sanitized);
  std::lock_guard<std::mutex> lock(shard.mutex);
  Entry& entry = shard.metrics[sanitized];
  if (!(entry.*member)) {
    if (entry.counter || entry.gauge || entry.histogram) {
      WFMS_LOG(Fatal) << "metric '" << sanitized
                      << "' already registered as a different kind "
                      << "(requested " << kind << ")";
    }
    entry.*member = std::make_unique<T>();
  }
  return *(entry.*member);
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  return GetMetric<Counter>(name, &Entry::counter, "counter");
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  return GetMetric<Gauge>(name, &Entry::gauge, "gauge");
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  return GetMetric<Histogram>(name, &Entry::histogram, "histogram");
}

void MetricsRegistry::SetHelp(std::string_view name, std::string_view help) {
  const std::string sanitized = SanitizeName(name);
  Shard& shard = ShardFor(sanitized);
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.help[sanitized] = std::string(help);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [name, entry] : shard.metrics) {
      if (entry.counter) {
        snapshot.counters[name] = entry.counter->value();
      } else if (entry.gauge) {
        snapshot.gauges[name] = entry.gauge->value();
      } else if (entry.histogram) {
        HistogramSnapshot h;
        h.count = entry.histogram->count();
        h.sum = entry.histogram->sum();
        h.min = entry.histogram->min();
        h.max = entry.histogram->max();
        h.p50 = entry.histogram->Quantile(0.50);
        h.p90 = entry.histogram->Quantile(0.90);
        h.p99 = entry.histogram->Quantile(0.99);
        h.p999 = entry.histogram->Quantile(0.999);
        h.buckets = entry.histogram->NonEmptyBuckets();
        h.exemplar_trace_id = entry.histogram->exemplar_trace_id();
        h.exemplar_value = entry.histogram->exemplar_value();
        snapshot.histograms[name] = std::move(h);
      }
    }
    for (const auto& [name, text] : shard.help) {
      if (shard.metrics.find(name) != shard.metrics.end()) {
        snapshot.help[name] = text;
      }
    }
  }
  return snapshot;
}

void MetricsRegistry::ResetAll() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto& [name, entry] : shard.metrics) {
      (void)name;
      if (entry.counter) entry.counter->Reset();
      if (entry.gauge) entry.gauge->Reset();
      if (entry.histogram) entry.histogram->Reset();
    }
  }
}

}  // namespace wfms::metrics

// Cache-blocked, SIMD-assisted, thread-parallel SpMV kernels over the CSR
// storage of SparseMatrix — the compute core of the sparse-first steady-state
// engine. Large availability CTMCs (10^6 states, ~2k nonzeros per row) spend
// essentially all solve time in y = A x (power iteration, residual
// validation) and the scatter-form y = A^T x (inflow accumulation), so these
// kernels are built around three ideas:
//
//  1. *Row panels.* Rows are grouped into panels balanced by nonzero count
//     (not row count), so thread-pool lanes get equal work even when the
//     nonzero distribution is skewed. Panels are sized so a panel's slice of
//     y plus its gathered x entries stay L2-resident.
//  2. *SIMD inner loop, reassociation-free.* The gather + multiply half of
//     the row kernel is vectorizable and is written so the compiler can use
//     vector loads for values/columns; the *additions* stay in ascending
//     column order with a single running accumulator. This is deliberate:
//     the engine's contract is bit-identical results vs. the scalar
//     reference kernel (see spmv_kernel_test.cc), which forbids the
//     reassociating multi-accumulator reductions classic SIMD SpMV uses.
//     Gather bandwidth, not FLOPs, bounds these kernels, so the trade costs
//     little and buys exact reproducibility across lane counts.
//  3. *Transposed multiply without materializing A^T.* The scatter form
//     walks A's CSR rows and accumulates into y[col]; Q^T is never built.
//     In parallel, a *fixed* panel decomposition (independent of the lane
//     count) scatters into per-panel partial vectors, reduced in panel
//     order — deterministic for a given matrix whatever the pool size, but
//     the partial-sum association differs from the sequential order, so the
//     parallel path is near-identical (not bit-identical) to the reference.
//     Callers on the bit-exact contract pass pool == nullptr; the
//     steady-state engine only passes a pool above its large-chain
//     threshold, where no bit-exactness is pinned.
//
// All entry points fall back to the scalar reference loop when no pool is
// supplied (or the pool has one lane), so small-chain results never depend
// on the execution configuration.
#ifndef WFMS_LINALG_SPMV_H_
#define WFMS_LINALG_SPMV_H_

#include <cstddef>
#include <vector>

#include "common/thread_pool.h"
#include "linalg/sparse_matrix.h"
#include "linalg/vector.h"

namespace wfms::linalg {

/// Row-panel decomposition of a CSR matrix: panel p covers rows
/// [starts[p], starts[p+1]), chosen so panels carry roughly equal nonzero
/// counts and at most `max_panel_nnz` each.
struct RowPanels {
  std::vector<size_t> starts;  // size num_panels + 1
  size_t num_panels() const { return starts.empty() ? 0 : starts.size() - 1; }
};

/// Builds a nonzero-balanced panel decomposition. `target_panels` is
/// typically a small multiple of the lane count; panels are additionally
/// capped near `max_panel_nnz` nonzeros (default sized so a panel's value +
/// index streams fit in a 512 KiB L2 slice).
RowPanels BuildRowPanels(const SparseMatrix& a, size_t target_panels,
                         size_t max_panel_nnz = 32768);

/// Reusable scratch for the parallel transposed multiply: per-lane partial
/// output vectors. Reusing a workspace across sweeps keeps the inner loops
/// allocation-free; the buffers grow on demand and are never shrunk.
class SpmvWorkspace {
 public:
  /// Returns `lanes` buffers of size `n` each, zeroed.
  std::vector<Vector>& PartialBuffers(size_t lanes, size_t n);

 private:
  std::vector<Vector> partials_;
};

/// y = A x with the blocked/SIMD row kernel, parallel over row panels when
/// `pool` has more than one lane. Bit-identical to SparseMatrix::Multiply
/// for every pool configuration. `y` is resized to a.rows().
void BlockedMultiply(const SparseMatrix& a, const Vector& x, Vector* y,
                     ThreadPool* pool = nullptr);

/// y = A^T x in scatter form (A^T is never materialized), parallel via
/// fixed-count per-panel partials reduced in panel order. Bit-identical to
/// SparseMatrix::MultiplyTransposed when `pool` is null or single-lane;
/// with a multi-lane pool the result is deterministic and lane-count
/// independent but associates partial sums differently (see file header).
/// `workspace` may be null (scratch is then allocated per call).
void BlockedMultiplyTransposed(const SparseMatrix& a, const Vector& x,
                               Vector* y, SpmvWorkspace* workspace = nullptr,
                               ThreadPool* pool = nullptr);

/// Scalar reference kernels: the exact loops the blocked/SIMD paths must
/// reproduce bit-for-bit. Exposed for the kernel equivalence tests.
void ReferenceMultiply(const SparseMatrix& a, const Vector& x, Vector* y);
void ReferenceMultiplyTransposed(const SparseMatrix& a, const Vector& x,
                                 Vector* y);

/// The shared CSR row kernel: dot product of row entries [begin, end) with
/// the gathered x, additions in ascending entry order (one running
/// accumulator — bit-identical to the naive loop), multiplies unrolled
/// 4-wide so gathers and products overlap. Inlined into both the SpMV
/// paths and the Gauss-Seidel/SOR sweeps of the steady-state engine.
inline double CsrRowDot(const double* values, const size_t* cols,
                        size_t begin, size_t end, const double* x) {
  double sum = 0.0;
  size_t k = begin;
  const size_t tail = begin + ((end - begin) & ~size_t{3});
#pragma GCC ivdep
  for (; k < tail; k += 4) {
    const double p0 = values[k] * x[cols[k]];
    const double p1 = values[k + 1] * x[cols[k + 1]];
    const double p2 = values[k + 2] * x[cols[k + 2]];
    const double p3 = values[k + 3] * x[cols[k + 3]];
    // Adds stay sequential: ((sum + p0) + p1) + ... — reassociating them
    // into lane partials would break bit-identity with the scalar kernel.
    sum = (((sum + p0) + p1) + p2) + p3;
  }
  for (; k < end; ++k) {
    sum += values[k] * x[cols[k]];
  }
  return sum;
}

}  // namespace wfms::linalg

#endif  // WFMS_LINALG_SPMV_H_

#include "sim/event_queue.h"

#include "common/logging.h"

namespace wfms::sim {

void EventQueue::ScheduleAt(double time, Action action) {
  WFMS_DCHECK(time >= now_);
  queue_.push(Event{time, next_seq_++, std::move(action)});
  if (queue_.size() > peak_pending_) peak_pending_ = queue_.size();
}

void EventQueue::ScheduleAfter(double delay, Action action) {
  WFMS_DCHECK(delay >= 0.0);
  ScheduleAt(now_ + delay, std::move(action));
}

int64_t EventQueue::RunUntil(double end_time) {
  return RunUntil(end_time, Observer());
}

int64_t EventQueue::RunUntil(double end_time, const Observer& observer) {
  int64_t executed = 0;
  while (!queue_.empty() && queue_.top().time <= end_time) {
    // Move the action out before popping; the action may schedule events.
    Event event = queue_.top();
    queue_.pop();
    now_ = event.time;
    event.action();
    ++executed;
    if (observer && !observer(executed)) return executed;
  }
  if (now_ < end_time) now_ = end_time;
  return executed;
}

void EventQueue::Clear() {
  while (!queue_.empty()) queue_.pop();
}

}  // namespace wfms::sim

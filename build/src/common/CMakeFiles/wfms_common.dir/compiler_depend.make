# Empty compiler generated dependencies file for wfms_common.
# This may be replaced when dependencies are built.

// Per-workflow-type analysis (§4.1-§4.2 of the paper): mean turnaround
// time R_t via first-passage analysis, and the expected number of service
// requests r_{x,t} per server type via the Markov reward model, including
// the hierarchical treatment of (parallel) subworkflows of §4.2.2: a
// composite state contributes the *sum* of its subworkflows' expected
// requests and resides for the *maximum* of their turnaround times.
#ifndef WFMS_PERF_WORKFLOW_ANALYSIS_H_
#define WFMS_PERF_WORKFLOW_ANALYSIS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "linalg/dense_matrix.h"
#include "linalg/vector.h"
#include "markov/absorbing_ctmc.h"
#include "statechart/to_ctmc.h"
#include "workflow/environment.h"

namespace wfms::perf {

enum class LoadMethod {
  /// Uniformization + taboo probabilities (§4.2.1) — the paper's method.
  kMarkovReward,
  /// Exact expected visit counts via the embedded chain's fundamental
  /// matrix; used as the validation baseline.
  kEmbeddedChain,
};

struct AnalysisOptions {
  LoadMethod method = LoadMethod::kMarkovReward;
  /// Residual absorption mass at which the reward summation stops.
  double residual_mass_threshold = 1e-12;
  statechart::MappingOptions mapping;
};

/// Configuration-independent analysis of one workflow type.
struct WorkflowAnalysis {
  std::string workflow_type;
  std::string chart;
  /// Mean turnaround time R_t (model time units).
  double turnaround_time = 0.0;
  /// r_{x,t}: expected service requests per server type x for one instance.
  linalg::Vector expected_requests;
  /// The mapped top-level CTMC (one state per chart state + s_A).
  markov::AbsorbingCtmc chain;
  /// Descriptors of the non-absorbing states.
  std::vector<statechart::MappedState> states;
  /// Entry-load matrix: state_loads(x, s) = service requests on server
  /// type x per entry of chain state s (composite states already carry
  /// their subworkflows' aggregate requests, §4.2.2).
  linalg::DenseMatrix state_loads;
  /// Expected number of entries per chain state (from the embedded chain).
  linalg::Vector state_visits;
};

/// Analyzes the chart of `spec` against the environment's load table.
Result<WorkflowAnalysis> AnalyzeWorkflow(const workflow::Environment& env,
                                         const workflow::WorkflowTypeSpec& spec,
                                         const AnalysisOptions& options = {});

}  // namespace wfms::perf

#endif  // WFMS_PERF_WORKFLOW_ANALYSIS_H_

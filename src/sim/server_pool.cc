#include "sim/server_pool.h"

#include <cmath>

#include "common/logging.h"

namespace wfms::sim {

ServerPool::ServerPool(EventQueue* queue, Rng rng, int servers,
                       queueing::ServiceMoments service, double fail_rate,
                       double repair_rate, double warmup_end)
    : queue_(queue),
      rng_(rng),
      servers_(static_cast<size_t>(servers)),
      service_(service),
      service_scv_(service.scv()),
      fail_rate_(fail_rate),
      repair_rate_(repair_rate),
      warmup_end_(warmup_end),
      up_count_(servers) {
  WFMS_CHECK_GE(servers, 1);
}

void ServerPool::Start() {
  if (fail_rate_ > 0.0 && repair_rate_ > 0.0) {
    for (size_t i = 0; i < servers_.size(); ++i) ScheduleFailure(i);
  }
  // Drop warmup-period gauge history so time averages cover the measured
  // window only.
  queue_->ScheduleAt(warmup_end_, [this] {
    stats_.up_servers = TimeWeightedStats();
    stats_.busy_servers = TimeWeightedStats();
    UpdateGauges();
  });
  UpdateGauges();
}

void ServerPool::Submit() {
  Dispatch(Request{queue_->now(), false});
}

void ServerPool::SubmitKeyed(uint64_t key) {
  DispatchTo(static_cast<size_t>(key % servers_.size()),
             Request{queue_->now(), false});
}

void ServerPool::DispatchTo(size_t preferred, Request request) {
  // Home server first; linear probing over up servers as failover.
  for (size_t step = 0; step < servers_.size(); ++step) {
    const size_t i = (preferred + step) % servers_.size();
    Server& server = servers_[i];
    if (!server.up) continue;
    if (!server.busy) {
      server.current = request;
      BeginService(i);
    } else {
      server.queue.push_back(request);
    }
    return;
  }
  parked_.push_back(request);  // whole type down
}

void ServerPool::Dispatch(Request request) {
  if (up_count_ == 0) {
    parked_.push_back(request);
    return;
  }
  // Round-robin over up servers.
  for (size_t step = 0; step < servers_.size(); ++step) {
    const size_t i = next_server_;
    next_server_ = (next_server_ + 1) % servers_.size();
    Server& server = servers_[i];
    if (!server.up) continue;
    if (!server.busy) {
      server.current = request;
      BeginService(i);
    } else {
      server.queue.push_back(request);
    }
    return;
  }
  parked_.push_back(request);  // unreachable unless up_count_ lied
}

void ServerPool::BeginService(size_t server_index) {
  Server& server = servers_[server_index];
  WFMS_DCHECK(server.up);
  WFMS_DCHECK(!server.busy);
  server.busy = true;
  ++busy_count_;
  if (!server.current.started) {
    server.current.started = true;
    if (queue_->now() >= warmup_end_) {
      stats_.waiting_time.Add(queue_->now() - server.current.arrival_time);
    }
  }
  const double service_time = DrawServiceTime();
  if (queue_->now() >= warmup_end_) stats_.service_time.Add(service_time);
  if (service_callback_) service_callback_(service_time);
  const uint64_t epoch = server.service_epoch;
  queue_->ScheduleAfter(service_time, [this, server_index, epoch] {
    CompleteService(server_index, epoch);
  });
  UpdateGauges();
}

void ServerPool::CompleteService(size_t server_index, uint64_t epoch) {
  Server& server = servers_[server_index];
  if (server.service_epoch != epoch || !server.up) {
    return;  // stale completion from before a failover
  }
  WFMS_DCHECK(server.busy);
  server.busy = false;
  --busy_count_;
  if (queue_->now() >= warmup_end_) ++stats_.completed_requests;
  if (!server.queue.empty()) {
    server.current = server.queue.front();
    server.queue.pop_front();
    BeginService(server_index);
  } else if (!parked_.empty()) {
    server.current = parked_.front();
    parked_.pop_front();
    BeginService(server_index);
  } else {
    UpdateGauges();
  }
}

void ServerPool::ScheduleFailure(size_t server_index) {
  queue_->ScheduleAfter(rng_.NextExponential(fail_rate_),
                        [this, server_index] { FailServer(server_index); });
}

bool ServerPool::FailNow(size_t server_index) {
  Server& server = servers_[server_index];
  if (!server.up) return false;
  server.up = false;
  --up_count_;
  ++server.service_epoch;  // invalidate any in-flight completion
  std::deque<Request> displaced;
  if (server.busy) {
    server.busy = false;
    --busy_count_;
    displaced.push_back(server.current);
    ++stats_.failovers;
  }
  displaced.insert(displaced.end(), server.queue.begin(), server.queue.end());
  server.queue.clear();
  stats_.requeued += static_cast<int64_t>(displaced.size());
  UpdateGauges();
  if (up_change_callback_) up_change_callback_();
  // Failover: redistribute to surviving servers (or park).
  for (Request& request : displaced) Dispatch(request);
  return true;
}

bool ServerPool::RepairNow(size_t server_index) {
  Server& server = servers_[server_index];
  if (server.up) return false;
  server.up = true;
  ++up_count_;
  UpdateGauges();
  if (up_change_callback_) up_change_callback_();
  while (!parked_.empty() && !server.busy) {
    server.current = parked_.front();
    parked_.pop_front();
    BeginService(server_index);
  }
  return true;
}

void ServerPool::FailServer(size_t server_index) {
  if (!FailNow(server_index)) return;
  queue_->ScheduleAfter(rng_.NextExponential(repair_rate_),
                        [this, server_index] { RepairServer(server_index); });
}

void ServerPool::RepairServer(size_t server_index) {
  WFMS_DCHECK(!servers_[server_index].up);
  RepairNow(server_index);
  ScheduleFailure(server_index);
}

void ServerPool::ForceFail(size_t server_index) {
  FailNow(server_index);
}

void ServerPool::ForceRepair(size_t server_index) {
  RepairNow(server_index);
}

void ServerPool::ForceTypeOutage() {
  for (size_t i = 0; i < servers_.size(); ++i) FailNow(i);
}

void ServerPool::ForceTypeRestore() {
  for (size_t i = 0; i < servers_.size(); ++i) RepairNow(i);
}

double ServerPool::DrawServiceTime() {
  if (service_scv_ < 1e-12) return service_.mean;
  // Lognormal matching the first two moments; the M/G/1 formulas depend on
  // exactly these, so the analytic comparison is apples-to-apples.
  return rng_.NextLognormalByMoments(service_.mean, service_scv_);
}

void ServerPool::UpdateGauges() {
  stats_.up_servers.Update(queue_->now(), up_count_);
  stats_.busy_servers.Update(queue_->now(), busy_count_);
}

void ServerPool::FinishStats() {
  stats_.up_servers.Finish(queue_->now());
  stats_.busy_servers.Finish(queue_->now());
}

}  // namespace wfms::sim

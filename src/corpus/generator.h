// Seeded, recipe-style workflow generator (DESIGN.md §14), in the spirit
// of WfCommons' WfChef/WfBench: a Recipe names a graph pattern plus size,
// shape, and service-time parameters, and generation is a pure function of
// the recipe — the same recipe (seed included) always yields the same DAG
// and the same WfCommons JSON bytes.
//
// Patterns:
//  - chain:          t0 -> t1 -> ... -> t(n-1).
//  - fork_join:      repeated stages of one fork task fanning out to
//                    f ~ U[fan_out_min, fan_out_max] parallel tasks that
//                    join into one barrier task.
//  - diamond_ladder: rungs of width w ~ U[fan_out_min, fan_out_max] with
//                    full bipartite edges between consecutive rungs,
//                    framed by an entry and an exit task.
//  - tree_reduce:    leaves reduced level by level, each reducer consuming
//                    f ~ U[fan_out_min, fan_out_max] nodes, down to one
//                    root.
//
// All patterns keep adding structure until the task count reaches
// `num_tasks` (so the count is a floor, not an approximation), unless
// `max_depth` > 0 caps the number of levels first.
#ifndef WFMS_CORPUS_GENERATOR_H_
#define WFMS_CORPUS_GENERATOR_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"
#include "corpus/dag.h"

namespace wfms::corpus {

enum class Pattern { kChain, kForkJoin, kDiamondLadder, kTreeReduce };
enum class ServiceDist { kLognormal, kPareto };

const char* PatternName(Pattern pattern);
Result<Pattern> PatternFromName(const std::string& name);
const char* ServiceDistName(ServiceDist dist);
Result<ServiceDist> ServiceDistFromName(const std::string& name);

struct Recipe {
  /// Workflow name; empty derives "<pattern>-<num_tasks>-s<seed>".
  std::string name;
  Pattern pattern = Pattern::kChain;
  /// Minimum number of tasks (see header comment).
  size_t num_tasks = 16;
  uint64_t seed = 42;
  /// Task runtime distribution across tasks: mean (minutes) and squared
  /// coefficient of variation of the sampled runtimes.
  ServiceDist service_dist = ServiceDist::kLognormal;
  double service_mean = 2.0;
  double service_scv = 4.0;
  /// Bounds on sampled fan-outs / rung widths (patterns other than chain).
  size_t fan_out_min = 2;
  size_t fan_out_max = 8;
  /// Cap on the number of DAG levels; 0 = unbounded.
  size_t max_depth = 0;
  /// Mean bytes of file transfer per task (exponentially distributed).
  double data_mean_bytes = 16.0 * 1024 * 1024;

  Status Validate() const;
};

/// Generates the DAG of a recipe. Deterministic per recipe; the result has
/// passed TaskDag::Validate().
Result<TaskDag> GenerateDag(const Recipe& recipe);

/// Serializes a DAG to the WfCommons-style JSON the importer accepts
/// (deterministic bytes; ParseWfCommons round-trips it).
std::string EmitWfCommons(const TaskDag& dag);

}  // namespace wfms::corpus

#endif  // WFMS_CORPUS_GENERATOR_H_

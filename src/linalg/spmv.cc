#include "linalg/spmv.h"

#include <algorithm>

#include "common/logging.h"

namespace wfms::linalg {

namespace {

/// Scatter kernel for one row panel: y[col] += value * x[row], rows in
/// ascending order. Identical statement order to the sequential reference
/// restricted to [row_begin, row_end).
inline void ScatterPanel(const SparseMatrix& a, const Vector& x, double* y,
                         size_t row_begin, size_t row_end) {
  const auto& offsets = a.row_offsets();
  const auto& cols = a.col_indices();
  const auto& values = a.values();
  for (size_t r = row_begin; r < row_end; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const size_t end = offsets[r + 1];
#pragma GCC ivdep
    for (size_t k = offsets[r]; k < end; ++k) {
      y[cols[k]] += values[k] * xr;
    }
  }
}

}  // namespace

RowPanels BuildRowPanels(const SparseMatrix& a, size_t target_panels,
                         size_t max_panel_nnz) {
  RowPanels panels;
  const size_t n = a.rows();
  panels.starts.push_back(0);
  if (n == 0) return panels;
  target_panels = std::max<size_t>(1, target_panels);
  max_panel_nnz = std::max<size_t>(1, max_panel_nnz);
  const size_t nnz = a.num_nonzeros();
  const size_t per_panel =
      std::min(max_panel_nnz, std::max<size_t>(1, nnz / target_panels));
  const auto& offsets = a.row_offsets();
  size_t panel_start_nnz = 0;
  for (size_t r = 0; r < n; ++r) {
    if (offsets[r + 1] - panel_start_nnz >= per_panel && r + 1 < n) {
      panels.starts.push_back(r + 1);
      panel_start_nnz = offsets[r + 1];
    }
  }
  panels.starts.push_back(n);
  return panels;
}

std::vector<Vector>& SpmvWorkspace::PartialBuffers(size_t lanes, size_t n) {
  if (partials_.size() < lanes) partials_.resize(lanes);
  for (size_t i = 0; i < lanes; ++i) {
    partials_[i].assign(n, 0.0);
  }
  return partials_;
}

void ReferenceMultiply(const SparseMatrix& a, const Vector& x, Vector* y) {
  WFMS_CHECK_EQ(x.size(), a.cols());
  y->assign(a.rows(), 0.0);
  const auto& offsets = a.row_offsets();
  const auto& cols = a.col_indices();
  const auto& values = a.values();
  for (size_t r = 0; r < a.rows(); ++r) {
    double sum = 0.0;
    for (size_t k = offsets[r]; k < offsets[r + 1]; ++k) {
      sum += values[k] * x[cols[k]];
    }
    (*y)[r] = sum;
  }
}

void ReferenceMultiplyTransposed(const SparseMatrix& a, const Vector& x,
                                 Vector* y) {
  WFMS_CHECK_EQ(x.size(), a.rows());
  y->assign(a.cols(), 0.0);
  ScatterPanel(a, x, y->data(), 0, a.rows());
}

void BlockedMultiply(const SparseMatrix& a, const Vector& x, Vector* y,
                     ThreadPool* pool) {
  WFMS_CHECK_EQ(x.size(), a.cols());
  WFMS_DCHECK(y != &x);
  y->assign(a.rows(), 0.0);
  const auto& offsets = a.row_offsets();
  const auto& cols = a.col_indices();
  const auto& values = a.values();
  const double* xp = x.data();
  double* yp = y->data();

  const size_t lanes = pool != nullptr ? pool->num_threads() : 1;
  auto run_rows = [&](size_t row_begin, size_t row_end) {
    for (size_t r = row_begin; r < row_end; ++r) {
      yp[r] = CsrRowDot(values.data(), cols.data(), offsets[r],
                        offsets[r + 1], xp);
    }
  };
  if (lanes <= 1 || a.rows() < 2) {
    run_rows(0, a.rows());
    return;
  }
  // Each row's result is produced by exactly one lane with the same inner
  // order, so parallelism cannot change bits here.
  const RowPanels panels = BuildRowPanels(a, lanes * 4);
  pool->ParallelFor(panels.num_panels(), [&](size_t p) {
    run_rows(panels.starts[p], panels.starts[p + 1]);
  });
}

void BlockedMultiplyTransposed(const SparseMatrix& a, const Vector& x,
                               Vector* y, SpmvWorkspace* workspace,
                               ThreadPool* pool) {
  WFMS_CHECK_EQ(x.size(), a.rows());
  WFMS_DCHECK(y != &x);
  const size_t n = a.cols();
  const size_t lanes = pool != nullptr ? pool->num_threads() : 1;
  if (lanes <= 1 || a.rows() < 2) {
    // Sequential blocked scatter: panels processed in order, accumulating
    // directly into y — the global row-major addition order is exactly the
    // reference's, so this path is bit-identical to it.
    y->assign(n, 0.0);
    ScatterPanel(a, x, y->data(), 0, a.rows());
    return;
  }
  // Parallel scatter: a *fixed* panel decomposition (independent of the
  // lane count) scatters into per-panel partial vectors, reduced in panel
  // order over disjoint column ranges. The result is deterministic for a
  // given matrix whatever the pool size, but the partial-sum association
  // differs from the sequential order — callers on the bit-exact contract
  // (small chains) must pass pool == nullptr. Memory: kScatterPanels * n
  // doubles of scratch, reused across calls via `workspace`.
  constexpr size_t kScatterPanels = 16;
  const RowPanels panels = BuildRowPanels(a, kScatterPanels,
                                          /*max_panel_nnz=*/~size_t{0});
  const size_t p_count = panels.num_panels();
  SpmvWorkspace local;
  SpmvWorkspace& ws = workspace != nullptr ? *workspace : local;
  std::vector<Vector>& partials = ws.PartialBuffers(p_count, n);
  pool->ParallelFor(p_count, [&](size_t p) {
    ScatterPanel(a, x, partials[p].data(), panels.starts[p],
                 panels.starts[p + 1]);
  });
  y->assign(n, 0.0);
  double* yp = y->data();
  const size_t chunk = std::max<size_t>(1, n / (lanes * 4));
  const size_t num_chunks = (n + chunk - 1) / chunk;
  pool->ParallelFor(num_chunks, [&](size_t c) {
    const size_t begin = c * chunk;
    const size_t end = std::min(n, begin + chunk);
    for (size_t p = 0; p < p_count; ++p) {
      const double* src = partials[p].data();
#pragma GCC ivdep
      for (size_t i = begin; i < end; ++i) yp[i] += src[i];
    }
  });
}

}  // namespace wfms::linalg

#include "corpus/dag.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace wfms::corpus {

namespace {

bool IsIdentifier(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                    (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return true;
}

bool IsReserved(const std::string& name) {
  return name == "init" || name == "done" || name == "exit";
}

}  // namespace

Status TaskDag::Validate() const {
  if (name.empty()) {
    return Status::InvalidArgument("workflow name must not be empty");
  }
  if (tasks.empty()) {
    return Status::InvalidArgument("workflow '" + name + "' has no tasks");
  }
  std::set<std::string> seen;
  for (const Task& t : tasks) {
    if (!IsIdentifier(t.name)) {
      return Status::InvalidArgument(
          "task '" + t.name +
          "': name must be a non-empty [A-Za-z0-9_] identifier");
    }
    if (IsReserved(t.name)) {
      return Status::InvalidArgument("task '" + t.name +
                                     "': name is reserved for compiled "
                                     "control states");
    }
    if (!seen.insert(t.name).second) {
      return Status::InvalidArgument("task '" + t.name +
                                     "': duplicate task name");
    }
    if (!std::isfinite(t.runtime) || t.runtime <= 0.0) {
      return Status::InvalidArgument(
          "task '" + t.name + "': runtime must be finite and positive");
    }
    if (!std::isfinite(t.runtime_scv) || t.runtime_scv < 0.0) {
      return Status::InvalidArgument(
          "task '" + t.name + "': runtime SCV must be finite and >= 0");
    }
    if (!std::isfinite(t.data_bytes) || t.data_bytes < 0.0) {
      return Status::InvalidArgument(
          "task '" + t.name + "': data bytes must be finite and >= 0");
    }
  }
  for (size_t i = 0; i < tasks.size(); ++i) {
    std::set<size_t> edge_seen;
    for (size_t p : tasks[i].parents) {
      if (p >= tasks.size()) {
        return Status::InvalidArgument("task '" + tasks[i].name +
                                       "': parent index out of range");
      }
      if (p == i) {
        return Status::InvalidArgument("task '" + tasks[i].name +
                                       "': depends on itself");
      }
      if (!edge_seen.insert(p).second) {
        return Status::InvalidArgument("task '" + tasks[i].name +
                                       "': duplicate parent '" +
                                       tasks[p].name + "'");
      }
    }
  }
  const Result<std::vector<size_t>> levels = Levels();
  return levels.ok() ? Status::OK() : levels.status();
}

Result<std::vector<size_t>> TaskDag::Levels() const {
  // Kahn's algorithm over parent edges; each task's level is one past its
  // deepest parent (longest path from a root).
  const size_t n = tasks.size();
  std::vector<size_t> indegree(n, 0);
  for (size_t i = 0; i < n; ++i) indegree[i] = tasks[i].parents.size();
  const std::vector<std::vector<size_t>> children = Children();
  std::vector<size_t> levels(n, 0);
  std::vector<size_t> frontier;
  for (size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) frontier.push_back(i);
  }
  size_t processed = 0;
  while (!frontier.empty()) {
    std::vector<size_t> next;
    for (size_t i : frontier) {
      ++processed;
      for (size_t c : children[i]) {
        levels[c] = std::max(levels[c], levels[i] + 1);
        if (--indegree[c] == 0) next.push_back(c);
      }
    }
    frontier = std::move(next);
  }
  if (processed != n) {
    // Some task never reached indegree 0: it sits on (or behind) a cycle.
    for (size_t i = 0; i < n; ++i) {
      if (indegree[i] > 0) {
        return Status::ParseError("cycle detected involving task '" +
                                  tasks[i].name + "'");
      }
    }
  }
  return levels;
}

Result<size_t> TaskDag::Depth() const {
  if (tasks.empty()) return size_t{0};
  WFMS_ASSIGN_OR_RETURN(const std::vector<size_t> levels, Levels());
  size_t depth = 0;
  for (size_t l : levels) depth = std::max(depth, l + 1);
  return depth;
}

size_t TaskDag::MaxFanOut() const {
  std::vector<size_t> out(tasks.size(), 0);
  size_t max_degree = 0;
  for (const Task& t : tasks) {
    max_degree = std::max(max_degree, t.parents.size());
    for (size_t p : t.parents) ++out[p];
  }
  for (size_t d : out) max_degree = std::max(max_degree, d);
  return max_degree;
}

std::vector<std::vector<size_t>> TaskDag::Children() const {
  std::vector<std::vector<size_t>> children(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    for (size_t p : tasks[i].parents) children[p].push_back(i);
  }
  return children;
}

}  // namespace wfms::corpus

#include "common/string_util.h"

#include <gtest/gtest.h>

namespace wfms {
namespace {

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  abc \t\n"), "abc");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" a b "), "a b");
}

TEST(StringUtilTest, SplitBasic) {
  const auto parts = SplitString("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, SplitKeepsEmpties) {
  const auto parts = SplitString(",a,,b,", ',');
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[4], "");
}

TEST(StringUtilTest, SplitSkipsEmpties) {
  const auto parts = SplitString(",a,,b,", ',', /*skip_empty=*/true);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(StringUtilTest, SplitEmptyString) {
  EXPECT_EQ(SplitString("", ',').size(), 1u);
  EXPECT_EQ(SplitString("", ',', true).size(), 0u);
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("workflow", "work"));
  EXPECT_FALSE(StartsWith("work", "workflow"));
  EXPECT_TRUE(EndsWith("model.dsl", ".dsl"));
  EXPECT_FALSE(EndsWith("model", ".dsl"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringUtilTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble("  -1e-3 ", &v));
  EXPECT_DOUBLE_EQ(v, -1e-3);
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
}

TEST(StringUtilTest, ParseInt) {
  int v = 0;
  EXPECT_TRUE(ParseInt("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt(" -7 ", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(ParseInt("4.2", &v));
  EXPECT_FALSE(ParseInt("", &v));
}

TEST(StringUtilTest, JoinStrings) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"only"}, ","), "only");
}

}  // namespace
}  // namespace wfms

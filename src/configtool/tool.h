// The configuration tool of §7: assessment of candidate configurations
// against performability goals and search for a (near-)minimum-cost
// configuration. Three search strategies:
//  - Greedy (§7.2): interleaves the availability and performability
//    criteria, adding one replica of the most critical server type at a
//    time — the paper's first-version heuristic.
//  - Exhaustive: enumerates the constrained configuration space and
//    returns the cheapest satisfying configuration — the optimality
//    baseline the greedy result is benchmarked against.
//  - Simulated annealing: the "full-fledged mathematical optimization"
//    the paper names as the eventual successor of the greedy heuristic.
//
// Throughput layer (see DESIGN.md "Concurrency model"): candidate
// assessments are memoized in a thread-safe cache keyed by the replication
// vector, fanned out across a fixed-size thread pool via AssessBatch, and
// the iterative availability solves on the greedy path are warm-started
// from the parent configuration's stationary vector. Search results are
// bit-identical whatever the thread count: parallel waves are reduced in
// candidate-index order, never completion order.
#ifndef WFMS_CONFIGTOOL_TOOL_H_
#define WFMS_CONFIGTOOL_TOOL_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "configtool/goals.h"
#include "performability/performability_model.h"
#include "workflow/configuration.h"
#include "workflow/environment.h"

namespace wfms::configtool {

/// Bounds on the search space; also expresses the paper's "specific
/// constraints such as limiting or fixing the degree of replication of
/// particular server types" (fix type x by setting min == max).
struct SearchConstraints {
  std::vector<int> min_replicas;  // empty: all 1
  std::vector<int> max_replicas;  // empty: all 8

  int MinFor(size_t x) const {
    return x < min_replicas.size() ? min_replicas[x] : 1;
  }
  int MaxFor(size_t x) const {
    return x < max_replicas.size() ? max_replicas[x] : 8;
  }
  Status Validate(size_t num_types) const;
};

/// Bounds on the per-site placement search (GreedySiteMinCost). Placement
/// vectors are type-major: entry x * num_sites + a is the replica count of
/// server type x at site a.
struct SiteSearchConstraints {
  /// Minimum replicas per (type, site); empty means all 0. Expresses data
  /// residency or anchoring constraints ("the EU site always keeps one
  /// workflow server").
  std::vector<int> min_per_site;
  /// Upper bound on the *total* replicas of each server type across all
  /// sites.
  int max_per_type = 8;

  int MinFor(size_t x, size_t a, size_t num_sites) const {
    const size_t i = x * num_sites + a;
    return i < min_per_site.size() ? min_per_site[i] : 0;
  }
  Status Validate(size_t num_types, size_t num_sites) const;
};

/// Verdict of one contingency (single-site loss or two-way partition)
/// re-evaluation against the degraded goals (DESIGN.md §12).
struct ContingencyAssessment {
  avail::SiteContingency contingency;
  /// Human-readable form ("site EU down", "partition EU|US").
  std::string label;
  double availability = 0.0;
  double max_expected_waiting = 0.0;
  /// Both degraded goals hold under this contingency.
  bool satisfied = false;
};

/// Verdict of one configuration against the goals.
struct Assessment {
  workflow::Configuration config;
  performability::PerformabilityReport performability;
  double cost = 0.0;
  bool meets_waiting_goal = false;
  bool meets_availability_goal = false;
  bool meets_saturation_goal = false;
  bool meets_instance_delay_goal = true;
  /// Per-contingency verdicts when the goals ask for survivability and the
  /// configuration is site-placed; empty otherwise. Each contingency's
  /// report is memoized under its own cache fingerprint.
  std::vector<ContingencyAssessment> contingencies;
  /// False when any requested contingency misses the degraded goals.
  /// Vacuously true for single-site configurations (survivability is a
  /// property of a placement; classic searches are unaffected).
  bool meets_survivability_goal = true;
  /// Expected queueing delay per workflow-type instance under W^Y
  /// (aligned with the environment's workflow list).
  linalg::Vector instance_delays;
  /// Fault isolation (see DESIGN.md "Failure handling"): when the model
  /// evaluation failed, the cause lands here instead of aborting the
  /// search, `performability` is empty, and Satisfies() is false — the
  /// candidate is infeasible-with-cause.
  Status error;
  /// The failure was numerical (solver divergence/non-convergence) rather
  /// than structural.
  bool numerical_failure = false;
  /// A retry with the exact LU solver ran (either rescuing the assessment
  /// or, when `error` is still set, also failing).
  bool retried_exact = false;

  bool Satisfies() const {
    return error.ok() && meets_waiting_goal && meets_availability_goal &&
           meets_saturation_goal && meets_instance_delay_goal &&
           meets_survivability_goal;
  }
};

/// A candidate whose assessment terminally failed during a search.
struct FailedCandidate {
  workflow::Configuration config;
  Status error;               // the terminal cause
  bool numerical = false;     // solver trouble, not a structural problem
  bool retried_exact = false;  // the LU retry also ran and failed
};

/// Search-level execution controls, orthogonal to goals and constraints.
struct SearchOptions {
  /// Wall-clock cap for the whole search; <= 0 means unlimited. On expiry
  /// the search stops at the next wave/step boundary and returns its
  /// best-so-far with SearchResult::termination set to DeadlineExceeded.
  double deadline_seconds = 0.0;
  /// Absolute variant of `deadline_seconds`: when set (non-epoch), the
  /// search expires at this monotonic instant regardless of when it
  /// started — the daemon charges queue wait against the request's
  /// deadline this way. When unset, the strategies derive it from
  /// `deadline_seconds` at search entry.
  std::chrono::steady_clock::time_point deadline_point{};
  /// With a deadline in force, also bound each candidate's availability
  /// steady-state solve by the wall-clock remaining when its assessment
  /// starts (SolveBudget::max_wall_time_seconds) — the deadline is
  /// enforced *inside* a solve, not only between candidates, so one slow
  /// solve cannot overshoot it. A deadline-bounded solve failure is
  /// transient: it is never negatively cached and never retried with the
  /// exact solver (the candidate re-assesses cleanly on resume). No
  /// effect without a deadline; on by default.
  bool deadline_bounds_solver = true;
  /// Retry a numerically failed candidate once with the exact LU solver
  /// (honoring the configured max_dense_states) before declaring it
  /// failed.
  bool retry_numerical_failures = true;
  /// Cooperative cancellation (e.g. a SIGINT/SIGTERM flag), polled at the
  /// same wave/step boundaries as the deadline. When it reads true the
  /// search stops and returns its best-so-far with termination set to
  /// Cancelled — the caller can then write a final checkpoint.
  const std::atomic<bool>* cancel = nullptr;
  /// Periodic checkpoint hook, invoked on the search thread at wave/step
  /// boundaries (never mid-assessment, never concurrently with itself) at
  /// most once per checkpoint_interval_seconds. Typically writes the
  /// assessment cache to disk via configtool/checkpoint.h.
  std::function<void()> on_checkpoint;
  /// Minimum seconds between on_checkpoint invocations; 0 fires at every
  /// boundary.
  double checkpoint_interval_seconds = 0.0;
  /// Request-trace context the search runs under (DESIGN.md §13): the
  /// daemon sets it from the request's `trace` field, and the search
  /// re-parents it into every candidate's SolveBudget so the solver spans
  /// attach under the search span. Carried explicitly — never through a
  /// thread-local — so pool workers cannot mix contexts across requests.
  trace::TraceContext trace;
};

struct SearchResult {
  /// The recommended configuration (the cheapest satisfying one found; if
  /// `satisfied` is false, the best-effort final candidate).
  workflow::Configuration config;
  double cost = 0.0;
  bool satisfied = false;
  /// Number of candidate configurations evaluated by the search logic
  /// (speculative cache prefills are not counted).
  int evaluations = 0;
  /// Of `evaluations`, how many were served from the assessment cache.
  /// An execution statistic: unlike every other field it may legitimately
  /// vary with the thread count and with prior searches on the same tool.
  int cache_hits = 0;
  /// Candidates whose assessment terminally failed (deduplicated, in the
  /// order the search first encountered them). The search continues around
  /// them; they are never recommended.
  std::vector<FailedCandidate> failed_candidates;
  /// OK for a complete search; DeadlineExceeded when the search stopped at
  /// SearchOptions::deadline_seconds and `config` is only best-so-far.
  Status termination;
  Assessment assessment;
};

struct AnnealingOptions {
  uint64_t seed = 42;
  int iterations = 2000;
  double initial_temperature = 4.0;
  double cooling = 0.995;
  /// Penalty weight for goal violations (makes infeasible configurations
  /// strictly worse than any feasible one in the sampled space).
  double infeasibility_penalty = 1000.0;
};

class ConfigurationTool {
 public:
  /// The environment must outlive the tool.
  static Result<ConfigurationTool> Create(
      const workflow::Environment& env,
      const performability::PerformabilityOptions& options = {});

  ConfigurationTool(ConfigurationTool&&) noexcept;
  ConfigurationTool& operator=(ConfigurationTool&&) noexcept;
  ConfigurationTool(const ConfigurationTool&) = delete;
  ConfigurationTool& operator=(const ConfigurationTool&) = delete;
  ~ConfigurationTool();

  /// Evaluates one candidate configuration against the goals (§7.1: "for
  /// a given system configuration"). Memoized: the goal-independent
  /// performability report is cached per replication vector, so repeated
  /// assessments of the same configuration — even under different goals or
  /// cost models — skip the CTMC construction and solve entirely.
  Result<Assessment> Assess(const workflow::Configuration& config,
                            const Goals& goals,
                            const CostModel& cost = CostModel::Uniform()) const;

  /// Assess with a per-request absolute deadline (the wfmsd daemon's
  /// entry point): the availability solve is budget-bounded by the wall
  /// clock remaining at call time (SearchOptions::deadline_bounds_solver
  /// semantics) and fault-isolated — terminal failures come back as an
  /// Assessment with `error` set. A deadline expiry surfaces as
  /// `error` = DeadlineExceeded and is never negatively cached, so a
  /// retry after the load spike re-solves cleanly. `trace` (optional)
  /// parents the assessment's solver spans under the request's trace.
  Result<Assessment> AssessWithDeadline(
      const workflow::Configuration& config, const Goals& goals,
      std::chrono::steady_clock::time_point deadline_point,
      const CostModel& cost = CostModel::Uniform(),
      const trace::TraceContext& trace = {}) const;

  /// Assesses a batch of candidates, fanning the model evaluations out
  /// across the tool's thread pool. The returned vector is index-aligned
  /// with `configs`; entry i is bit-identical to what a sequential
  /// Assess(configs[i], ...) would produce. Fault-isolated: a candidate
  /// whose model evaluation fails numerically comes back with
  /// Assessment::error set instead of failing the batch; only structural
  /// errors (invalid goals/cost/configuration) abort, with the first
  /// (lowest-index) one winning deterministically.
  Result<std::vector<Assessment>> AssessBatch(
      std::span<const workflow::Configuration> configs, const Goals& goals,
      const CostModel& cost = CostModel::Uniform()) const;

  /// §7.2 greedy heuristic. Iterative availability solves along the chain
  /// of grown configurations are warm-started from the parent's stationary
  /// vector; with a multi-lane pool the admissible neighbor frontier of
  /// each step is assessed in parallel ahead of the pick. A growth step
  /// whose candidate fails assessment excludes that server type for the
  /// step and re-picks the next most critical one.
  Result<SearchResult> GreedyMinCost(
      const Goals& goals, const SearchConstraints& constraints = {},
      const CostModel& cost = CostModel::Uniform(),
      const SearchOptions& search = {}) const;

  /// Exhaustive minimum-cost search over the constrained space; candidates
  /// are drained in fixed-size enumeration-ordered waves that the pool
  /// assesses concurrently. Failed candidates are skipped (recorded in
  /// SearchResult::failed_candidates).
  Result<SearchResult> ExhaustiveMinCost(
      const Goals& goals, const SearchConstraints& constraints = {},
      const CostModel& cost = CostModel::Uniform(),
      const SearchOptions& search = {}) const;

  /// Simulated-annealing search. Proposal evaluation is pipelined: while
  /// a proposal is assessed, both possible successor proposals (accept and
  /// reject branch) are speculatively prefilled into the cache. A proposal
  /// that fails assessment is rejected like any uphill move.
  Result<SearchResult> AnnealingMinCost(
      const Goals& goals, const SearchConstraints& constraints = {},
      const CostModel& cost = CostModel::Uniform(),
      const AnnealingOptions& annealing = {},
      const SearchOptions& search = {}) const;

  /// Branch-and-bound search (the other "full-fledged" optimizer the
  /// paper names): best-first expansion in cost order with monotonicity
  /// pruning — adding a replica never hurts either goal, so (a) the first
  /// satisfying configuration dequeued is cost-optimal, and (b) if even
  /// the all-max configuration fails, the search aborts immediately.
  /// Exact like ExhaustiveMinCost but typically evaluates far fewer
  /// candidates. The cost-ordered frontier is drained in equal-cost waves
  /// assessed in parallel. When the all-max feasibility probe itself fails
  /// assessment, the early abort is skipped (the bound is unverified) and
  /// lattice exhaustion returns a best-effort unsatisfied result instead
  /// of an internal error.
  Result<SearchResult> BranchAndBoundMinCost(
      const Goals& goals, const SearchConstraints& constraints = {},
      const CostModel& cost = CostModel::Uniform(),
      const SearchOptions& search = {}) const;

  /// Greedy minimum-cost search over per-site placements (DESIGN.md §12):
  /// grows one replica of one (type, site) pair per step, assessing every
  /// admissible +1 neighbor in parallel and picking deterministically —
  /// a satisfying candidate with the lowest cost (then lowest (type, site)
  /// index) wins; otherwise the candidate with the smallest remaining goal
  /// violation (survivability contingencies included). Requires a
  /// multi-site environment; honors `goals.survive_sites` /
  /// `goals.survive_partitions` via the per-contingency re-assessment in
  /// Assess. Deadline/cancel are polled at step boundaries.
  Result<SearchResult> GreedySiteMinCost(
      const Goals& goals, const SiteSearchConstraints& constraints = {},
      const CostModel& cost = CostModel::Uniform(),
      const SearchOptions& search = {}) const;

  /// Human-readable recommendation (§7.1's "recommendations" component).
  std::string RenderRecommendation(const SearchResult& result) const;

  const performability::PerformabilityModel& model() const { return model_; }

  /// Execution lanes used by AssessBatch and the search strategies.
  /// 1 (the deterministic reference mode) runs everything inline on the
  /// calling thread; n > 1 spawns n - 1 pool workers. Defaults to
  /// ThreadPool::DefaultThreadCount(), so WFMS_NUM_THREADS=1 pins the
  /// whole process to sequential assessment. Not safe to call concurrently
  /// with a running search.
  void set_num_threads(size_t n);
  size_t num_threads() const { return num_threads_; }

  struct CacheStats {
    size_t entries = 0;
    size_t hits = 0;
    size_t misses = 0;
    /// Reports dropped by the LRU bound (0 with unlimited limits).
    size_t evictions = 0;
    /// Estimated bytes held by the memoized reports.
    size_t bytes = 0;
  };
  CacheStats cache_stats() const;
  /// True when a memoized report for `replicas` is resident right now.
  /// The daemon's cache-only degraded mode probes this to answer from the
  /// cache without ever starting a solve. Does not touch LRU recency and
  /// counts neither a hit nor a miss.
  bool HasCachedAssessment(const std::vector<int>& replicas) const;
  /// Drops every memoized assessment (e.g. to benchmark cold paths).
  void ClearAssessmentCache();

  /// Budget for the memoized-report cache. Unlimited by default (one-shot
  /// searches want every assessment kept); a long-lived daemon sets a
  /// bound so the cache cannot grow without limit. When either bound is
  /// exceeded the least-recently-used report is evicted (counted by the
  /// `wfms_configtool_cache_evictions_total` metric). Eviction only costs
  /// recomputation — results are bit-identical whatever the cache holds
  /// (the PR-1 invariant). Negative failure entries are a few bytes each
  /// and stay unbounded.
  struct CacheLimits {
    size_t max_entries = 0;  // 0 = unlimited
    size_t max_bytes = 0;    // 0 = unlimited (estimated footprint)
  };
  /// Applies `limits` and immediately evicts down to the new budget.
  /// Thread-safe (takes the cache lock).
  void set_cache_limits(const CacheLimits& limits);

  /// A terminally failed evaluation as stored in the negative cache.
  struct CachedFailure {
    Status error;
    bool numerical = false;
    bool retried_exact = false;
  };
  /// The memoized assessment state, externalized. This is the search's
  /// durable progress: every report (and negative failure entry) a resumed
  /// search finds here is a cache hit it does not have to re-solve, so a
  /// deterministic re-run through a restored dump fast-forwards to where
  /// the dumped run stopped (see configtool/checkpoint.h and DESIGN.md
  /// "Checkpointing and recovery").
  struct CacheDump {
    std::vector<std::pair<std::vector<int>,
                          performability::PerformabilityReport>>
        reports;
    std::vector<std::pair<std::vector<int>, CachedFailure>> failures;
  };
  /// Copies the cache contents in deterministic (key) order.
  CacheDump DumpAssessmentCache() const;
  /// Merges a dump into the cache (existing entries win, like any other
  /// insert race). Logically const for the same reason Assess is: the
  /// cache holds pure functions of the environment.
  void RestoreAssessmentCache(const CacheDump& dump) const;

 private:
  struct AssessmentCache;

  ConfigurationTool(const workflow::Environment* env,
                    performability::PerformabilityModel model);

  /// Cache-aware assessment core. `avail_guess` optionally warm-starts the
  /// availability solve on a miss; `cache_hit` (optional) reports whether
  /// the report came from the cache. `solver_override`, when non-null,
  /// replaces the configured availability solver options for a miss (used
  /// to bound a solve by a search deadline).
  Result<Assessment> AssessInternal(
      const workflow::Configuration& config, const Goals& goals,
      const CostModel& cost, const linalg::Vector* avail_guess,
      bool* cache_hit,
      const markov::SteadyStateOptions* solver_override = nullptr) const;
  /// Fault-isolating wrapper around AssessInternal: a numerical evaluation
  /// failure is retried once with the exact LU solver (when
  /// `search.retry_numerical_failures` and the state space fits the
  /// configured dense cap) and, if terminal, returned as an Assessment
  /// with `error` set rather than a Status. Terminal failures are
  /// negatively cached; deadline-bounded solve expiries are not (they are
  /// a property of the budget, not the candidate). Structural errors
  /// (invalid goals/cost/configuration) still surface as Status.
  Result<Assessment> AssessIsolated(const workflow::Configuration& config,
                                    const Goals& goals, const CostModel& cost,
                                    const linalg::Vector* avail_guess,
                                    const SearchOptions& search,
                                    bool* cache_hit) const;
  /// AssessIsolated + SearchResult accounting (evaluations, cache hits,
  /// failed_candidates).
  Result<Assessment> AssessCounted(const workflow::Configuration& config,
                                   const Goals& goals, const CostModel& cost,
                                   const linalg::Vector* avail_guess,
                                   const SearchOptions& search,
                                   SearchResult* result) const;
  /// Batch core used by the searches; adds hit counts and failed
  /// candidates to *result.
  Result<std::vector<Assessment>> AssessBatchInternal(
      std::span<const workflow::Configuration> configs, const Goals& goals,
      const CostModel& cost, const SearchOptions& search,
      SearchResult* result) const;
  /// Derives goal verdicts and instance delays from a memoized report.
  Assessment BuildAssessment(const workflow::Configuration& config,
                             performability::PerformabilityReport report,
                             const Goals& goals, const CostModel& cost) const;
  /// When the goals ask for survivability and `assessment->config` is
  /// site-placed, re-evaluates every requested contingency (each memoized
  /// under its own cache fingerprint: CacheKey() ++ {-2, down_mask,
  /// part_mask}) and fills `contingencies` / `meets_survivability_goal`.
  /// No-op otherwise.
  Status ApplySurvivability(
      Assessment* assessment, const Goals& goals,
      const markov::SteadyStateOptions* solver_override) const;
  /// Speculatively assesses every admissible +1 neighbor of `config` on
  /// the pool (warm-started from `parent`), blocking until the cache holds
  /// them all. No-op with a single lane.
  void PrefetchNeighborFrontier(const workflow::Configuration& config,
                                const Assessment& parent, const Goals& goals,
                                const CostModel& cost,
                                const SearchConstraints& constraints) const;

  /// Degree of goal violation for annealing (0 when satisfied).
  double ViolationMeasure(const Assessment& assessment,
                          const Goals& goals) const;

  ThreadPool& pool() const;

  const workflow::Environment* env_;
  performability::PerformabilityModel model_;
  size_t num_threads_;
  std::unique_ptr<AssessmentCache> cache_;
  /// Lazily constructed; declared last so that in-flight speculative tasks
  /// drain (pool destruction joins workers) while the model and cache are
  /// still alive.
  mutable std::unique_ptr<ThreadPool> pool_;
};

}  // namespace wfms::configtool

#endif  // WFMS_CONFIGTOOL_TOOL_H_

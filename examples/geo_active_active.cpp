// Two-region active/active deployment (DESIGN.md §12): the EP workflow
// placed across the EU and US sites, assessed against survivability goals
// (every single-site loss and the EU|US partition must still meet the
// degraded targets), then the per-site placement search asked for the
// cheapest placement that achieves this.
//
// Build & run:  ./build/examples/geo_active_active

#include <cstdio>

#include "configtool/tool.h"
#include "workflow/configuration.h"
#include "workflow/scenarios.h"

int main() {
  using namespace wfms;

  auto env = workflow::GeoEpEnvironment();
  if (!env.ok()) {
    std::fprintf(stderr, "environment: %s\n", env.status().ToString().c_str());
    return 1;
  }
  auto tool = configtool::ConfigurationTool::Create(*env);
  if (!tool.ok()) {
    std::fprintf(stderr, "tool: %s\n", tool.status().ToString().c_str());
    return 1;
  }
  tool->set_num_threads(1);  // deterministic evaluation counts

  // Goals: the usual steady-state targets, plus survivability — under any
  // one-site loss or a WAN partition, the degraded targets must still
  // hold (a region loss may justify slower responses, not an outage).
  configtool::Goals goals;
  goals.max_waiting_time = 0.2;
  goals.min_availability = 0.999;
  goals.survive_sites = 1;
  goals.survive_partitions = true;
  goals.degraded_max_waiting_time = 0.2;
  goals.degraded_min_availability = 0.995;

  // Active/active: every server type present in both regions.
  const auto placement =
      workflow::Configuration::FromSiteCounts({1, 1, 1, 1, 2, 2}, 2);
  auto assessment = tool->Assess(placement, goals);
  if (!assessment.ok()) {
    std::fprintf(stderr, "assess: %s\n",
                 assessment.status().ToString().c_str());
    return 1;
  }
  std::printf("Placement %s: cost %.0f, availability %.8f\n",
              placement.ToString().c_str(), assessment->cost,
              assessment->performability.availability);
  for (const auto& c : assessment->contingencies) {
    std::printf("  %-18s availability %.8f  %s\n", c.label.c_str(),
                c.availability, c.satisfied ? "ok" : "VIOLATED");
  }
  std::printf("  survivability: %s\n\n",
              assessment->meets_survivability_goal ? "met" : "NOT met");

  // The placement search grows one (type, site) replica at a time, with
  // per-site coverage moves so a one-site-down contingency can be lifted.
  auto result = tool->GreedySiteMinCost(goals);
  if (!result.ok()) {
    std::fprintf(stderr, "search: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("Recommended placement %s: cost %.0f, %s (%d evaluations)\n",
              result->config.ToString().c_str(), result->cost,
              result->satisfied ? "goals met" : "goals NOT met",
              result->evaluations);
  return 0;
}

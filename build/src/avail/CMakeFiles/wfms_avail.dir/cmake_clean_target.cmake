file(REMOVE_RECURSE
  "libwfms_avail.a"
)

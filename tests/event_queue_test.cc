#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace wfms::sim {
namespace {

TEST(EventQueueTest, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(3.0, [&] { order.push_back(3); });
  q.ScheduleAt(1.0, [&] { order.push_back(1); });
  q.ScheduleAt(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.RunUntil(10.0), 3);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 10.0);
}

TEST(EventQueueTest, FifoAmongEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.ScheduleAt(1.0, [&order, i] { order.push_back(i); });
  }
  q.RunUntil(2.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, RunUntilBoundaryInclusive) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(5.0, [&] { ++fired; });
  q.ScheduleAt(5.0001, [&] { ++fired; });
  EXPECT_EQ(q.RunUntil(5.0), 1);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
  // The remaining event is still pending.
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.RunUntil(6.0), 1);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, EventsScheduleEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 4) q.ScheduleAfter(1.0, chain);
  };
  q.ScheduleAt(0.0, chain);
  q.RunUntil(100.0);
  EXPECT_EQ(count, 4);
  EXPECT_DOUBLE_EQ(q.now(), 100.0);
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentClock) {
  EventQueue q;
  double fired_at = -1.0;
  q.ScheduleAt(2.0, [&] {
    q.ScheduleAfter(3.0, [&] { fired_at = q.now(); });
  });
  q.RunUntil(10.0);
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(EventQueueTest, ClearDropsPending) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(1.0, [&] { ++fired; });
  q.Clear();
  EXPECT_EQ(q.pending(), 0u);
  q.RunUntil(5.0);
  EXPECT_EQ(fired, 0);
}

TEST(EventQueueTest, ClockNeverMovesBackwards) {
  EventQueue q;
  q.ScheduleAt(4.0, [] {});
  q.RunUntil(10.0);
  EXPECT_DOUBLE_EQ(q.now(), 10.0);
  q.RunUntil(3.0);  // lower end time: clock stays
  EXPECT_DOUBLE_EQ(q.now(), 10.0);
}

}  // namespace
}  // namespace wfms::sim

// Online statistics accumulators used by the simulator and the calibration
// component: sample moments, confidence intervals, time-weighted averages,
// and fixed-bucket histograms.
#ifndef WFMS_COMMON_STATISTICS_H_
#define WFMS_COMMON_STATISTICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace wfms {

/// Accumulates sample mean / variance / extrema with Welford's algorithm.
class RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& other);
  void Reset();

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than 2 samples).
  double variance() const;
  double stddev() const;
  /// Second raw moment E[X^2] (0 for no samples).
  double second_moment() const;
  /// Squared coefficient of variation Var/Mean^2 (0 if mean is 0).
  double scv() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return count_ > 0 ? mean_ * static_cast<double>(count_) : 0.0; }

  /// Half-width of the normal-approximation confidence interval at the
  /// given confidence level (supported: 0.90, 0.95, 0.99).
  double ConfidenceHalfWidth(double level = 0.95) const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Time-weighted average of a piecewise-constant signal, e.g. the number of
/// busy servers or queue length over simulated time.
class TimeWeightedStats {
 public:
  /// Records that the signal had `value` from the last update until `now`.
  void Update(double now, double value);
  /// Closes the observation window at `now` using the last recorded value.
  void Finish(double now);

  double time_average() const;
  double total_time() const { return total_time_; }

 private:
  bool started_ = false;
  double last_time_ = 0.0;
  double last_value_ = 0.0;
  double weighted_sum_ = 0.0;
  double total_time_ = 0.0;
};

/// Fixed-width bucket histogram over [lo, hi) with overflow/underflow bins.
class Histogram {
 public:
  Histogram(double lo, double hi, int buckets);

  void Add(double x);
  int64_t total_count() const { return total_; }
  int64_t bucket_count(int i) const { return counts_[static_cast<size_t>(i)]; }
  int num_buckets() const { return static_cast<int>(counts_.size()); }
  int64_t underflow() const { return underflow_; }
  int64_t overflow() const { return overflow_; }
  /// Approximate quantile by linear interpolation within buckets.
  double Quantile(double q) const;
  std::string ToString(int max_width = 40) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<int64_t> counts_;
  int64_t underflow_ = 0;
  int64_t overflow_ = 0;
  int64_t total_ = 0;
};

}  // namespace wfms

#endif  // WFMS_COMMON_STATISTICS_H_

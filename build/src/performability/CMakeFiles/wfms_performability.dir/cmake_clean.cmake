file(REMOVE_RECURSE
  "CMakeFiles/wfms_performability.dir/performability_model.cc.o"
  "CMakeFiles/wfms_performability.dir/performability_model.cc.o.d"
  "libwfms_performability.a"
  "libwfms_performability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfms_performability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "perf/performance_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "queueing/mg1.h"
#include "statechart/parser.h"
#include "workflow/scenarios.h"

namespace wfms::perf {
namespace {

using workflow::Configuration;
using workflow::Environment;

Environment MakeEpEnv(double rate = 0.5) {
  auto env = workflow::EpEnvironment(rate);
  EXPECT_TRUE(env.ok());
  return *std::move(env);
}

/// A minimal single-activity environment with exactly known analytics:
/// one state (H = 4) inducing (1, 2) requests on two server types.
Environment MakeTinyEnv(double arrival_rate) {
  Environment env;
  auto charts = statechart::ParseCharts(R"(
chart T
  state Work activity=work residence=4
  state Done activity=done residence=1
  initial Work
  final Done
  trans Work -> Done prob=1
end
)");
  EXPECT_TRUE(charts.ok());
  env.charts = *std::move(charts);
  EXPECT_TRUE(env.servers
                  .AddServerType({"engine", workflow::ServerKind::kWorkflowEngine,
                                  queueing::ExponentialService(0.1), 0.001,
                                  0.1})
                  .ok());
  EXPECT_TRUE(
      env.servers
          .AddServerType({"app", workflow::ServerKind::kApplicationServer,
                          queueing::ExponentialService(0.2), 0.001, 0.1})
          .ok());
  EXPECT_TRUE(env.loads.SetLoad("work", {1, 2}).ok());
  EXPECT_TRUE(env.loads.SetLoad("done", {1, 0}).ok());
  env.workflows.push_back({"T", "T", arrival_rate});
  EXPECT_TRUE(env.Validate().ok());
  return env;
}

TEST(WorkflowAnalysisTest, TinyWorkflowExactValues) {
  const Environment env = MakeTinyEnv(0.5);
  auto analysis = AnalyzeWorkflow(env, env.workflows[0]);
  ASSERT_TRUE(analysis.ok()) << analysis.status();
  EXPECT_NEAR(analysis->turnaround_time, 5.0, 1e-9);
  ASSERT_EQ(analysis->expected_requests.size(), 2u);
  // Work once (1,2) + Done once (1,0).
  EXPECT_NEAR(analysis->expected_requests[0], 2.0, 1e-9);
  EXPECT_NEAR(analysis->expected_requests[1], 2.0, 1e-9);
}

TEST(WorkflowAnalysisTest, RewardAndEmbeddedChainMethodsAgreeOnEp) {
  const Environment env = MakeEpEnv();
  AnalysisOptions reward_opts;
  reward_opts.method = LoadMethod::kMarkovReward;
  AnalysisOptions exact_opts;
  exact_opts.method = LoadMethod::kEmbeddedChain;
  auto reward = AnalyzeWorkflow(env, env.workflows[0], reward_opts);
  auto exact = AnalyzeWorkflow(env, env.workflows[0], exact_opts);
  ASSERT_TRUE(reward.ok()) << reward.status();
  ASSERT_TRUE(exact.ok());
  for (size_t x = 0; x < 3; ++x) {
    EXPECT_NEAR(reward->expected_requests[x], exact->expected_requests[x],
                1e-6 * exact->expected_requests[x]);
  }
}

TEST(WorkflowAnalysisTest, EpEngineRequestsMatchHandComputation) {
  // Engine requests: every activity sends 3 requests to the engine
  // (Fig. 1, both patterns), so r_engine = 3 * expected activity
  // executions. Executions: top level 1 + .5 + .475 + .59375*2 + 1 = 4.1625
  // plus Shipment entries (.95) * (Notify 2 + Delivery (2/0.9 + 1)).
  const Environment env = MakeEpEnv();
  auto analysis = AnalyzeWorkflow(env, env.workflows[0]);
  ASSERT_TRUE(analysis.ok());
  const double shipment_activities = 2.0 + (2.0 / 0.9 + 1.0);
  const double executions = 4.1625 + 0.95 * shipment_activities;
  EXPECT_NEAR(analysis->expected_requests[1], 3.0 * executions, 1e-6);
  // Comm server: 2 requests per activity.
  EXPECT_NEAR(analysis->expected_requests[0], 2.0 * executions, 1e-6);
}

TEST(WorkflowAnalysisTest, CompositeStateCarriesSubworkflowLoad) {
  const Environment env = MakeEpEnv();
  auto analysis = AnalyzeWorkflow(env, env.workflows[0]);
  ASSERT_TRUE(analysis.ok());
  const size_t shipment = *analysis->chain.StateIndex("Shipment");
  // Engine load of the Shipment state = 3 * (2 + 2/0.9 + 1) requests.
  EXPECT_NEAR(analysis->state_loads.At(1, shipment),
              3.0 * (2.0 + 2.0 / 0.9 + 1.0), 1e-6);
}

TEST(PerformanceModelTest, TotalRatesAreArrivalTimesRequests) {
  const Environment env = MakeTinyEnv(0.25);
  auto model = PerformanceModel::Create(env);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_NEAR(model->total_request_rates()[0], 0.25 * 2.0, 1e-12);
  EXPECT_NEAR(model->total_request_rates()[1], 0.25 * 2.0, 1e-12);
}

TEST(PerformanceModelTest, ActiveInstancesLittlesLaw) {
  const Environment env = MakeTinyEnv(0.4);
  auto model = PerformanceModel::Create(env);
  ASSERT_TRUE(model.ok());
  const auto active = model->ActiveInstances();
  ASSERT_EQ(active.size(), 1u);
  EXPECT_NEAR(active[0], 0.4 * 5.0, 1e-9);
}

TEST(PerformanceModelTest, WaitingTimesMatchDirectMg1) {
  const Environment env = MakeTinyEnv(0.5);
  auto model = PerformanceModel::Create(env);
  ASSERT_TRUE(model.ok());
  auto report = model->EvaluateWaitingTimes(Configuration({1, 1}));
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->servers.size(), 2u);
  // Engine: rate 1/min, service Exp(0.1).
  auto direct = queueing::Mg1Metrics(1.0, queueing::ExponentialService(0.1));
  ASSERT_TRUE(direct.ok());
  EXPECT_NEAR(report->servers[0].mean_waiting_time,
              direct->mean_waiting_time, 1e-12);
  EXPECT_NEAR(report->servers[0].utilization, 0.1, 1e-12);
  EXPECT_FALSE(report->any_saturated);
}

TEST(PerformanceModelTest, ReplicationReducesWaiting) {
  const Environment env = MakeEpEnv(1.0);
  auto model = PerformanceModel::Create(env);
  ASSERT_TRUE(model.ok());
  auto one = model->EvaluateWaitingTimes(Configuration({1, 1, 1}));
  auto two = model->EvaluateWaitingTimes(Configuration({2, 2, 2}));
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(two.ok());
  for (size_t x = 0; x < 3; ++x) {
    EXPECT_LT(two->servers[x].mean_waiting_time,
              one->servers[x].mean_waiting_time);
    EXPECT_NEAR(two->servers[x].per_server_rate,
                one->servers[x].per_server_rate / 2.0, 1e-9);
  }
}

TEST(PerformanceModelTest, SaturationDetected) {
  // Crank the arrival rate until the engine saturates on one server.
  const Environment env = MakeEpEnv(3.0);
  auto model = PerformanceModel::Create(env);
  ASSERT_TRUE(model.ok());
  auto report = model->EvaluateWaitingTimes(Configuration({1, 1, 1}));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->any_saturated);
  EXPECT_TRUE(std::isinf(report->max_waiting_time));
  // Replication resolves it.
  auto fixed = model->EvaluateWaitingTimes(Configuration({1, 3, 3}));
  ASSERT_TRUE(fixed.ok());
  EXPECT_FALSE(fixed->any_saturated);
}

TEST(PerformanceModelTest, DegradedStateRaisesWaiting) {
  const Environment env = MakeEpEnv(1.0);
  auto model = PerformanceModel::Create(env);
  ASSERT_TRUE(model.ok());
  auto full = model->EvaluateWaitingTimesForState({2, 2, 2});
  auto degraded = model->EvaluateWaitingTimesForState({2, 1, 2});
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(degraded.ok());
  EXPECT_GT(degraded->servers[1].mean_waiting_time,
            full->servers[1].mean_waiting_time);
  EXPECT_DOUBLE_EQ(degraded->servers[0].mean_waiting_time,
                   full->servers[0].mean_waiting_time);
}

TEST(PerformanceModelTest, DownStateRejected) {
  const Environment env = MakeEpEnv();
  auto model = PerformanceModel::Create(env);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->EvaluateWaitingTimesForState({1, 0, 1}).ok());
  EXPECT_FALSE(model->EvaluateWaitingTimesForState({1, 1}).ok());
}

TEST(PerformanceModelTest, ThroughputBottleneckAndScaling) {
  const Environment env = MakeEpEnv(0.5);
  auto model = PerformanceModel::Create(env);
  ASSERT_TRUE(model.ok());
  auto base = model->MaxSustainableThroughput(Configuration({1, 1, 1}));
  ASSERT_TRUE(base.ok()) << base.status();
  EXPECT_GT(base->max_workflows_per_time_unit, 0.0);
  // EP on one server each: the app server (slowest per-request service)
  // is the busiest resource.
  EXPECT_EQ(base->bottleneck, 2u);
  // Adding a server to the bottleneck increases throughput...
  Configuration more({1, 1, 2});
  auto scaled = model->MaxSustainableThroughput(more);
  ASSERT_TRUE(scaled.ok());
  EXPECT_GT(scaled->max_workflows_per_time_unit,
            base->max_workflows_per_time_unit);
  // ...while adding one to a non-bottleneck type does not.
  auto useless = model->MaxSustainableThroughput(Configuration({2, 1, 1}));
  ASSERT_TRUE(useless.ok());
  EXPECT_NEAR(useless->max_workflows_per_time_unit,
              base->max_workflows_per_time_unit, 1e-9);
}

TEST(PerformanceModelTest, ThroughputConsistentWithSaturation) {
  // At exactly the max sustainable mix scale the utilization of the
  // bottleneck hits 1; slightly below it the system is stable.
  const Environment base_env = MakeEpEnv(0.5);
  auto model = PerformanceModel::Create(base_env);
  ASSERT_TRUE(model.ok());
  auto report = model->MaxSustainableThroughput(Configuration({1, 1, 1}));
  ASSERT_TRUE(report.ok());
  const double safe_rate = 0.5 * report->max_mix_scale * 0.99;
  const Environment safe_env = MakeEpEnv(safe_rate);
  auto safe_model = PerformanceModel::Create(safe_env);
  ASSERT_TRUE(safe_model.ok());
  auto waiting = safe_model->EvaluateWaitingTimes(Configuration({1, 1, 1}));
  ASSERT_TRUE(waiting.ok());
  EXPECT_FALSE(waiting->any_saturated);
  EXPECT_GT(waiting->servers[report->bottleneck].utilization, 0.95);
}

TEST(PerformanceModelTest, ColocationAggregatesLoad) {
  const Environment env = MakeEpEnv(0.5);
  auto model = PerformanceModel::Create(env);
  ASSERT_TRUE(model.ok());
  // All three types on a single computer.
  ColocationGroup all;
  all.server_types = {0, 1, 2};
  all.computers = 1;
  auto report = model->EvaluateColocated({all});
  ASSERT_TRUE(report.ok()) << report.status();
  // Every member reports the same shared queue.
  EXPECT_DOUBLE_EQ(report->servers[0].mean_waiting_time,
                   report->servers[1].mean_waiting_time);
  // The shared computer carries more load than any dedicated server.
  auto dedicated = model->EvaluateWaitingTimes(Configuration({1, 1, 1}));
  ASSERT_TRUE(dedicated.ok());
  EXPECT_GT(report->servers[1].mean_waiting_time,
            dedicated->servers[0].mean_waiting_time);
}

TEST(PerformanceModelTest, ColocationValidation) {
  const Environment env = MakeEpEnv();
  auto model = PerformanceModel::Create(env);
  ASSERT_TRUE(model.ok());
  // Missing type.
  ColocationGroup g01;
  g01.server_types = {0, 1};
  EXPECT_FALSE(model->EvaluateColocated({g01}).ok());
  // Duplicate type.
  ColocationGroup g012{{0, 1, 2}, 1};
  ColocationGroup dup{{2}, 1};
  EXPECT_FALSE(model->EvaluateColocated({g012, dup}).ok());
  // Bad computer count.
  ColocationGroup zero{{0, 1, 2}, 0};
  EXPECT_FALSE(model->EvaluateColocated({zero}).ok());
  // Out-of-range type.
  ColocationGroup oob{{0, 1, 7}, 1};
  EXPECT_FALSE(model->EvaluateColocated({oob}).ok());
}

TEST(PerformanceModelTest, ColocationSeparateGroupsMatchDedicatedServers) {
  const Environment env = MakeEpEnv(0.5);
  auto model = PerformanceModel::Create(env);
  ASSERT_TRUE(model.ok());
  std::vector<ColocationGroup> separate{{{0}, 1}, {{1}, 1}, {{2}, 1}};
  auto colocated = model->EvaluateColocated(separate);
  auto dedicated = model->EvaluateWaitingTimes(Configuration({1, 1, 1}));
  ASSERT_TRUE(colocated.ok());
  ASSERT_TRUE(dedicated.ok());
  for (size_t x = 0; x < 3; ++x) {
    EXPECT_NEAR(colocated->servers[x].mean_waiting_time,
                dedicated->servers[x].mean_waiting_time, 1e-12);
  }
}

TEST(PerformanceModelTest, BenchmarkMixAnalyzesAllTypes) {
  auto env = workflow::BenchmarkEnvironment();
  ASSERT_TRUE(env.ok());
  auto model = PerformanceModel::Create(*env);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_EQ(model->workflows().size(), 3u);
  for (const WorkflowAnalysis& w : model->workflows()) {
    EXPECT_GT(w.turnaround_time, 0.0) << w.workflow_type;
  }
  // Every server type receives load from the mix.
  for (double rate : model->total_request_rates()) {
    EXPECT_GT(rate, 0.0);
  }
}

}  // namespace
}  // namespace wfms::perf

// The server performance model of §4.3-§4.4: aggregate request arrival
// rates per server type over the whole workflow mix, per-server load under
// a given replication configuration, maximum sustainable throughput, and
// M/G/1 mean waiting times — including the degraded case where only
// X_x <= Y_x servers of type x are up (needed by the performability model
// of §6) and the generalized case of multiple server types co-located on
// shared computers.
#ifndef WFMS_PERF_PERFORMANCE_MODEL_H_
#define WFMS_PERF_PERFORMANCE_MODEL_H_

#include <limits>
#include <string>
#include <vector>

#include "common/result.h"
#include "linalg/vector.h"
#include "markov/state_space.h"
#include "perf/workflow_analysis.h"
#include "workflow/configuration.h"
#include "workflow/environment.h"

namespace wfms::perf {

/// Waiting-time assessment of one server type under some number of
/// available servers.
struct ServerTypeMetrics {
  std::string server_type;
  int available_servers = 0;
  double total_arrival_rate = 0.0;   // l_x, requests per time unit
  double per_server_rate = 0.0;      // l~_x = l_x / X_x
  double utilization = 0.0;          // rho_x = l~_x * b_x
  bool saturated = false;            // rho_x >= 1
  /// Mean waiting time w_x (infinity when saturated).
  double mean_waiting_time = std::numeric_limits<double>::infinity();
};

struct WaitingTimeReport {
  std::vector<ServerTypeMetrics> servers;
  bool any_saturated = false;
  /// Largest finite waiting time; infinity if any type saturated.
  double max_waiting_time = 0.0;
};

struct ThroughputReport {
  /// Factor by which the current workflow mix could be scaled before the
  /// first server type saturates.
  double max_mix_scale = 0.0;
  /// Maximum sustainable throughput in workflow instances per time unit,
  /// preserving the mix proportions (§4.3).
  double max_workflows_per_time_unit = 0.0;
  /// Index of the server type that saturates first.
  size_t bottleneck = 0;
  /// Per-type request capacity Y_x / b_x and current arrival rate l_x.
  linalg::Vector capacity;
  linalg::Vector arrival_rates;
};

/// A group of server types sharing the same pool of computers (§4.4
/// generalization).
struct ColocationGroup {
  std::vector<size_t> server_types;
  int computers = 1;
};

/// Heterogeneous replicas of one server type (§4.4's closing note: "could
/// be extended to the heterogeneous case by adjusting the service times
/// on a per computer basis"): each server has a speed factor, service
/// times scale as b / speed, and the load is split proportionally to
/// speed so every replica runs at equal utilization.
struct HeterogeneousPool {
  /// speed_factors[i] > 0 is the relative speed of server i; 1.0 = the
  /// registry's nominal service time.
  std::vector<double> speed_factors;
};

class PerformanceModel {
 public:
  /// Analyzes every workflow type of the environment (R_t and r_{x,t} are
  /// configuration-independent, so this happens once).
  static Result<PerformanceModel> Create(const workflow::Environment& env,
                                         const AnalysisOptions& options = {});

  const std::vector<WorkflowAnalysis>& workflows() const {
    return workflows_;
  }
  const workflow::Environment& environment() const { return *env_; }

  /// l_x = sum_t xi_t * r_{x,t} (§4.3) for the environment's arrival rates.
  const linalg::Vector& total_request_rates() const { return request_rates_; }

  /// Mean number of concurrently active instances per workflow type
  /// (Little's law: N_t = xi_t * R_t).
  linalg::Vector ActiveInstances() const;

  /// §4.4 under a full configuration: every server of type x is up.
  Result<WaitingTimeReport> EvaluateWaitingTimes(
      const workflow::Configuration& config) const;

  /// §6 degraded mode: X_x servers of type x are up (all X_x >= 1). The
  /// full load is redistributed over the remaining servers.
  Result<WaitingTimeReport> EvaluateWaitingTimesForState(
      const markov::StateVector& available) const;

  /// §4.3 maximum sustainable throughput for a configuration.
  Result<ThroughputReport> MaxSustainableThroughput(
      const workflow::Configuration& config) const;

  /// Expected total queueing delay accumulated by one instance of each
  /// workflow type under `config`: D_t = sum_x r_{x,t} * w_x — the
  /// workflow-level view of §4.4's "responsiveness as perceived by human
  /// users". Entries are infinity when a server type the workflow uses is
  /// saturated.
  Result<linalg::Vector> PerInstanceQueueingDelay(
      const workflow::Configuration& config) const;

  /// §4.4 generalized case: server types co-located on shared computers.
  /// Arrival rates of co-located types are summed and their service-time
  /// distributions mixed; every group member reports the common queue's
  /// waiting time. Groups must partition all server types.
  Result<WaitingTimeReport> EvaluateColocated(
      const std::vector<ColocationGroup>& groups) const;

  /// Heterogeneous case: pools[x] describes the replicas of server type x
  /// (pools.size() == #server types; the replica count is the size of the
  /// speed vector). Load is split proportionally to speed; the report's
  /// mean waiting time per type is the request-weighted mean over its
  /// replicas, and `utilization` is the (equal) per-replica utilization.
  Result<WaitingTimeReport> EvaluateHeterogeneous(
      const std::vector<HeterogeneousPool>& pools) const;

 private:
  PerformanceModel(const workflow::Environment* env,
                   std::vector<WorkflowAnalysis> workflows,
                   linalg::Vector request_rates)
      : env_(env),
        workflows_(std::move(workflows)),
        request_rates_(std::move(request_rates)) {}

  const workflow::Environment* env_;  // not owned; must outlive the model
  std::vector<WorkflowAnalysis> workflows_;
  linalg::Vector request_rates_;
};

}  // namespace wfms::perf

#endif  // WFMS_PERF_PERFORMANCE_MODEL_H_

#include "markov/ctmc_transient.h"

#include <cmath>

#include "linalg/sparse_matrix.h"
#include "linalg/spmv.h"

namespace wfms::markov {

using linalg::SparseMatrix;
using linalg::Vector;

Result<Vector> CtmcTransientDistribution(const Ctmc& chain, const Vector& p0,
                                         double t,
                                         const CtmcTransientOptions& options) {
  const size_t n = chain.num_states();
  if (p0.size() != n) {
    return Status::InvalidArgument("initial distribution size mismatch");
  }
  double sum = 0.0;
  for (double v : p0) {
    if (v < -1e-12) {
      return Status::InvalidArgument("initial distribution has negatives");
    }
    sum += v;
  }
  if (std::fabs(sum - 1.0) > 1e-9) {
    return Status::InvalidArgument("initial distribution must sum to 1");
  }
  if (t < 0.0 || !std::isfinite(t)) {
    return Status::InvalidArgument("time must be finite and non-negative");
  }
  if (t == 0.0) return p0;

  if (chain.MaxExitRate() * 1.05 <= 0.0) return p0;  // no transitions at all
  const double lambda = chain.UniformizationRate();
  const double vt = lambda * t;

  // Past the large-chain threshold the uniformized step runs matrix-free on
  // the blocked scatter kernel; below it the materialized P keeps the
  // original arithmetic bit-for-bit.
  const bool matrix_free = n >= options.large_chain_threshold;
  SparseMatrix u_matrix;
  if (!matrix_free) u_matrix = chain.UniformizedMatrix();
  const double* exit_rates = chain.exit_rates().data();
  linalg::SpmvWorkspace workspace;
  Vector scratch;

  Vector p = p0;
  Vector result(n, 0.0);
  double log_weight = -vt;
  double accumulated = 0.0;
  for (int z = 0; z < options.max_terms; ++z) {
    const double weight = std::exp(log_weight);
    if (weight > 0.0) {
      for (size_t i = 0; i < n; ++i) result[i] += weight * p[i];
      accumulated += weight;
    }
    const bool tail_reached = 1.0 - accumulated < options.tail_tolerance;
    const bool past_mode_underflow =
        static_cast<double>(z) > vt && weight < 1e-17;
    if (tail_reached || past_mode_underflow) {
      const double tail = std::max(0.0, 1.0 - accumulated);
      for (size_t i = 0; i < n; ++i) result[i] += tail * p[i];
      return result;
    }
    if (matrix_free) {
      // p' = p P = p + (p Q)/lambda from the off-diagonal CSR and the exit
      // rates; one scratch vector is reused across every Poisson term.
      linalg::BlockedMultiplyTransposed(chain.rates(), p, &scratch, &workspace,
                                        options.pool);
      for (size_t i = 0; i < n; ++i) {
        scratch[i] = p[i] + (scratch[i] - p[i] * exit_rates[i]) / lambda;
      }
      p.swap(scratch);
    } else {
      p = u_matrix.MultiplyTransposed(p);
    }
    log_weight += std::log(vt) - std::log(static_cast<double>(z) + 1.0);
  }
  return Status::NumericError("CTMC uniformization did not converge");
}

}  // namespace wfms::markov

#!/usr/bin/env python3
"""Validates wfmsctl observability exports. Stdlib only.

Commands:

  validate --schema SCHEMA.json DOC.json
      Structural validation against a checked-in schema (the JSON-Schema
      subset used by tools/schemas/), plus semantic checks keyed off the
      schema's title: metric names follow the wfms_<module>_<name>
      convention, histogram bucket counts sum to the total count,
      quantiles are ordered and inside [min, max], trace events are
      timestamp-sorted with non-negative durations.

  cross-check --stderr STDERR.txt --metrics METRICS.json
      Asserts that the cache accounting `wfmsctl recommend --verbose`
      printed to stderr matches the counters in --metrics-out exactly.
      Both are sourced from the same registry, so any mismatch is a bug.

Exit code 0 on success, 1 with a message on the first failure.
"""

import argparse
import json
import re
import sys

METRIC_NAME = re.compile(r"^wfms_[a-z0-9_:]+$")


def fail(message):
    print(f"check_observability: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


# ---------------------------------------------------------------------------
# JSON-Schema subset: type, enum, minimum, pattern, required, properties,
# additionalProperties, patternProperties, items. Enough for the schemas
# in tools/schemas/; extend as they grow.

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
    "null": type(None),
}


def _check_type(value, expected, path):
    names = expected if isinstance(expected, list) else [expected]
    for name in names:
        python_type = _TYPES[name]
        if isinstance(value, python_type) and not (
            name in ("number", "integer") and isinstance(value, bool)
        ):
            return
    fail(f"{path}: expected {expected}, got {type(value).__name__}")


def validate_schema(value, schema, path="$"):
    if "type" in schema:
        _check_type(value, schema["type"], path)
    if "enum" in schema and value not in schema["enum"]:
        fail(f"{path}: {value!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)):
        if value < schema["minimum"]:
            fail(f"{path}: {value} < minimum {schema['minimum']}")
    if "pattern" in schema and isinstance(value, str):
        if not re.search(schema["pattern"], value):
            fail(f"{path}: {value!r} does not match {schema['pattern']!r}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                fail(f"{path}: missing required key '{key}'")
        properties = schema.get("properties", {})
        patterns = {
            re.compile(p): s
            for p, s in schema.get("patternProperties", {}).items()
        }
        allow_extra = schema.get("additionalProperties", True)
        for key, child in value.items():
            if key in properties:
                validate_schema(child, properties[key], f"{path}.{key}")
                continue
            matched = False
            for pattern, subschema in patterns.items():
                if pattern.search(key):
                    validate_schema(child, subschema, f"{path}.{key}")
                    matched = True
                    break
            if not matched and allow_extra is False:
                fail(f"{path}: unexpected key '{key}'")
    if isinstance(value, list) and "items" in schema:
        for i, child in enumerate(value):
            validate_schema(child, schema["items"], f"{path}[{i}]")


# ---------------------------------------------------------------------------
# Semantic checks beyond structure.


def check_metrics_semantics(doc):
    version = doc["schema_version"]
    for section in ("counters", "gauges", "histograms"):
        for name in doc[section]:
            if not METRIC_NAME.match(name):
                fail(
                    f"{section}.{name}: name breaks the wfms_<module>_<name>"
                    " convention"
                )
    for name, hist in doc["histograms"].items():
        bucket_total = sum(b["count"] for b in hist["buckets"])
        if bucket_total != hist["count"]:
            fail(
                f"histograms.{name}: bucket counts sum to {bucket_total},"
                f" count is {hist['count']}"
            )
        for bucket in hist["buckets"]:
            le = bucket["le"]
            if isinstance(le, str) and le != "+Inf":
                fail(f"histograms.{name}: string le must be '+Inf', got {le!r}")
        if version >= 2 and "p999" not in hist:
            fail(f"histograms.{name}: schema_version {version} requires p999")
        if hist["count"] > 0:
            if not hist["min"] <= hist["p50"] <= hist["p90"] <= hist["p99"] <= hist["max"]:
                fail(
                    f"histograms.{name}: quantiles out of order or outside"
                    f" [min, max]: min={hist['min']} p50={hist['p50']}"
                    f" p90={hist['p90']} p99={hist['p99']} max={hist['max']}"
                )
            if "p999" in hist and not hist["p99"] <= hist["p999"] <= hist["max"]:
                fail(
                    f"histograms.{name}: p999 out of order:"
                    f" p99={hist['p99']} p999={hist['p999']} max={hist['max']}"
                )
            if "exemplar" in hist:
                value = hist["exemplar"]["value"]
                if not hist["min"] <= value <= hist["max"]:
                    fail(
                        f"histograms.{name}: exemplar value {value} outside"
                        f" [{hist['min']}, {hist['max']}]"
                    )
    print(
        f"check_observability: metrics OK ({len(doc['counters'])} counters,"
        f" {len(doc['gauges'])} gauges, {len(doc['histograms'])} histograms,"
        f" schema_version {version})"
    )


def check_trace_semantics(doc):
    events = doc["traceEvents"]
    previous_ts = 0.0
    for i, event in enumerate(events):
        if event["ts"] < previous_ts:
            fail(f"traceEvents[{i}]: timestamps are not sorted")
        previous_ts = event["ts"]
        if event["ph"] == "X" and "dur" not in event:
            fail(f"traceEvents[{i}]: complete event without dur")
    print(f"check_observability: trace OK ({len(events)} events)")


def check_flight_recorder_semantics(doc):
    records = doc["records"]
    if doc["total_recorded"] < len(records):
        fail(
            f"total_recorded {doc['total_recorded']} < {len(records)}"
            " retained records"
        )
    previous_seq = None
    for i, record in enumerate(records):
        seq = record["seq"]
        if previous_seq is not None and seq >= previous_seq:
            fail(f"records[{i}]: not newest-first (seq {seq} after {previous_seq})")
        previous_seq = seq
        phase_sum = sum(p["seconds"] for p in record["phases"])
        # Phases are disjoint sub-intervals of the request's wall time; a
        # small epsilon absorbs clock-read ordering between the phase
        # timers and the record's own elapsed timer.
        if phase_sum > record["elapsed_seconds"] + 1e-3:
            fail(
                f"records[{i}] (trace {record['trace_id']}): phases sum to"
                f" {phase_sum}s, elapsed is {record['elapsed_seconds']}s"
            )
    print(
        f"check_observability: flight recorder OK ({len(records)} records,"
        f" {doc['total_recorded']} total recorded)"
    )


def cmd_validate(args):
    with open(args.schema, encoding="utf-8") as f:
        schema = json.load(f)
    with open(args.doc, encoding="utf-8") as f:
        doc = json.load(f)
    validate_schema(doc, schema)
    title = schema.get("title", "")
    if "metrics" in title:
        check_metrics_semantics(doc)
    elif "flight" in title:
        check_flight_recorder_semantics(doc)
    elif "trace" in title:
        check_trace_semantics(doc)
    else:
        print("check_observability: structural validation OK")


# ---------------------------------------------------------------------------
# --verbose stderr vs --metrics-out cross-check.

CACHE_LINE = re.compile(
    r"cache: (\d+) entries, (\d+) hits, (\d+) misses "
    r"\((\d+) of (\d+) evaluations served from cache\)"
)
FAILED_LINE = re.compile(r"failed candidates \((\d+)\):")


def cmd_cross_check(args):
    with open(args.stderr, encoding="utf-8") as f:
        stderr_text = f.read()
    with open(args.metrics, encoding="utf-8") as f:
        doc = json.load(f)
    counters = doc["counters"]
    gauges = doc["gauges"]

    match = CACHE_LINE.search(stderr_text)
    if not match:
        fail(f"no 'cache: ...' line in {args.stderr} (was --verbose passed?)")
    entries, hits, misses, search_hits, assessed = map(int, match.groups())
    expected = [
        ("cache entries", entries, int(gauges.get("wfms_configtool_cache_entries", 0))),
        ("cache hits", hits, counters.get("wfms_configtool_cache_hits_total", 0)),
        ("cache misses", misses, counters.get("wfms_configtool_cache_misses_total", 0)),
        ("search cache hits", search_hits,
         counters.get("wfms_configtool_search_cache_hits_total", 0)),
        ("candidates assessed", assessed,
         counters.get("wfms_configtool_candidates_assessed_total", 0)),
    ]
    failed_match = FAILED_LINE.search(stderr_text)
    stderr_failed = int(failed_match.group(1)) if failed_match else 0
    expected.append(
        ("failed candidates", stderr_failed,
         counters.get("wfms_configtool_candidates_failed_total", 0))
    )
    for label, from_stderr, from_metrics in expected:
        if from_stderr != from_metrics:
            fail(
                f"{label}: --verbose stderr says {from_stderr},"
                f" --metrics-out says {from_metrics}"
            )
    print(
        "check_observability: cross-check OK"
        f" ({assessed} assessed, {search_hits} cache hits,"
        f" {stderr_failed} failed)"
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    validate = sub.add_parser("validate")
    validate.add_argument("--schema", required=True)
    validate.add_argument("doc")
    validate.set_defaults(func=cmd_validate)
    cross = sub.add_parser("cross-check")
    cross.add_argument("--stderr", required=True)
    cross.add_argument("--metrics", required=True)
    cross.set_defaults(func=cmd_cross_check)
    args = parser.parse_args()
    args.func(args)


if __name__ == "__main__":
    main()

#include "configtool/tool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <queue>
#include <set>
#include <sstream>

#include "common/metrics.h"
#include "common/random.h"
#include "common/time_units.h"
#include "common/trace.h"
#include "markov/state_space.h"

namespace wfms::configtool {

using workflow::Configuration;

namespace {

// Registry handles for the search pipeline, resolved once. Cache-level
// counters are mirrored at the exact sites that maintain the per-tool
// CacheStats atomics, so stderr accounting and --metrics-out exports are
// two views of the same increments and can never disagree.
metrics::Counter& CacheHitsTotal() {
  static metrics::Counter& counter = metrics::MetricsRegistry::Global()
      .GetCounter("wfms_configtool_cache_hits_total");
  return counter;
}
metrics::Counter& CacheMissesTotal() {
  static metrics::Counter& counter = metrics::MetricsRegistry::Global()
      .GetCounter("wfms_configtool_cache_misses_total");
  return counter;
}
metrics::Gauge& CacheEntriesGauge() {
  static metrics::Gauge& gauge = metrics::MetricsRegistry::Global()
      .GetGauge("wfms_configtool_cache_entries");
  return gauge;
}
metrics::Counter& CacheEvictionsTotal() {
  static metrics::Counter& counter = metrics::MetricsRegistry::Global()
      .GetCounter("wfms_configtool_cache_evictions_total");
  return counter;
}
metrics::Counter& CandidatesAssessedTotal() {
  static metrics::Counter& counter = metrics::MetricsRegistry::Global()
      .GetCounter("wfms_configtool_candidates_assessed_total");
  return counter;
}
metrics::Counter& SearchCacheHitsTotal() {
  static metrics::Counter& counter = metrics::MetricsRegistry::Global()
      .GetCounter("wfms_configtool_search_cache_hits_total");
  return counter;
}
metrics::Counter& CandidatesFailedTotal() {
  static metrics::Counter& counter = metrics::MetricsRegistry::Global()
      .GetCounter("wfms_configtool_candidates_failed_total");
  return counter;
}
metrics::Counter& CandidatesPrunedTotal() {
  static metrics::Counter& counter = metrics::MetricsRegistry::Global()
      .GetCounter("wfms_configtool_candidates_pruned_total");
  return counter;
}
metrics::Histogram& AssessmentSeconds() {
  static metrics::Histogram& histogram = metrics::MetricsRegistry::Global()
      .GetHistogram("wfms_configtool_assessment_seconds");
  return histogram;
}
metrics::Gauge& FrontierDepthGauge() {
  static metrics::Gauge& gauge = metrics::MetricsRegistry::Global()
      .GetGauge("wfms_configtool_frontier_depth");
  return gauge;
}

}  // namespace

Status SearchConstraints::Validate(size_t num_types) const {
  if (!min_replicas.empty() && min_replicas.size() != num_types) {
    return Status::InvalidArgument("min_replicas size mismatch");
  }
  if (!max_replicas.empty() && max_replicas.size() != num_types) {
    return Status::InvalidArgument("max_replicas size mismatch");
  }
  for (size_t x = 0; x < num_types; ++x) {
    if (MinFor(x) < 1) {
      return Status::InvalidArgument("minimum replication must be >= 1");
    }
    if (MaxFor(x) < MinFor(x)) {
      return Status::InvalidArgument(
          "max replication below min for server type " + std::to_string(x));
    }
  }
  return Status::OK();
}

Status SiteSearchConstraints::Validate(size_t num_types,
                                       size_t num_sites) const {
  if (num_sites == 0) {
    return Status::InvalidArgument(
        "site placement search needs a multi-site environment");
  }
  if (!min_per_site.empty() &&
      min_per_site.size() != num_types * num_sites) {
    return Status::InvalidArgument(
        "min_per_site must have num_types * num_sites entries");
  }
  if (max_per_type < 1) {
    return Status::InvalidArgument("max replicas per type must be >= 1");
  }
  for (size_t x = 0; x < num_types; ++x) {
    int total = 0;
    for (size_t a = 0; a < num_sites; ++a) {
      const int m = MinFor(x, a, num_sites);
      if (m < 0) {
        return Status::InvalidArgument(
            "per-site minimum placement must be >= 0");
      }
      total += m;
    }
    if (total > max_per_type) {
      return Status::InvalidArgument(
          "per-site minimums for server type " + std::to_string(x) +
          " exceed the per-type maximum of " + std::to_string(max_per_type));
    }
  }
  return Status::OK();
}

/// Memoized goal-independent assessments, keyed by the replication vector.
/// The report for a configuration is a pure function of the environment, so
/// cache hits are exact, not approximations. Guarded by a mutex: entries are
/// small (the report plus the availability stationary vector) and the solves
/// they save dominate the lock by orders of magnitude.
struct ConfigurationTool::AssessmentCache {
  /// A terminally failed evaluation, negatively cached so repeated
  /// encounters of the same bad candidate stay cheap and deterministic.
  struct FailureEntry {
    Status error;
    bool numerical = false;
    bool retried_exact = false;
  };

  struct Entry;
  using EntryMap = std::map<std::vector<int>, Entry>;

  /// A memoized report plus its LRU bookkeeping. The recency list holds
  /// map iterators (stable under insert/erase of other keys); front =
  /// most recently used.
  struct Entry {
    performability::PerformabilityReport report;
    std::list<EntryMap::iterator>::iterator lru_it;
    size_t bytes = 0;
  };

  mutable std::mutex mutex;
  EntryMap entries;
  std::list<EntryMap::iterator> lru;
  size_t total_bytes = 0;
  CacheLimits limits;
  size_t evictions = 0;
  std::map<std::vector<int>, FailureEntry> failures;
  std::atomic<size_t> hits{0};
  std::atomic<size_t> misses{0};

  /// Estimated resident footprint of one memoized report: the three
  /// per-type vectors, the stationary vector (the dominant term), the key,
  /// and a fixed allowance for map/list/struct overhead.
  static size_t EntryBytes(const std::vector<int>& key,
                           const performability::PerformabilityReport& r) {
    return 256 + key.size() * sizeof(int) +
           (r.expected_waiting.size() + r.full_config_waiting.size() +
            r.avail_state_probabilities.size()) *
               sizeof(double);
  }

  bool OverBudget() const {
    return (limits.max_entries > 0 && entries.size() > limits.max_entries) ||
           (limits.max_bytes > 0 && total_bytes > limits.max_bytes);
  }

  /// Drops least-recently-used reports until the budget holds. Always
  /// keeps at least one entry, so the report just inserted survives long
  /// enough to be returned (budgets smaller than a single report would
  /// otherwise make Insert useless). Caller holds the lock.
  void EvictToBudget() {
    while (OverBudget() && entries.size() > 1) {
      EntryMap::iterator victim = lru.back();
      lru.pop_back();
      total_bytes -= victim->second.bytes;
      entries.erase(victim);
      ++evictions;
      CacheEvictionsTotal().Increment();
    }
    CacheEntriesGauge().Set(static_cast<double>(entries.size()));
  }

  /// Marks `it` most recently used. Caller holds the lock.
  void Touch(EntryMap::iterator it) {
    lru.splice(lru.begin(), lru, it->second.lru_it);
  }

  /// Returns a copy of the entry, if present, refreshing its recency.
  std::optional<performability::PerformabilityReport> Lookup(
      const std::vector<int>& key) {
    std::lock_guard<std::mutex> lock(mutex);
    auto it = entries.find(key);
    if (it == entries.end()) return std::nullopt;
    Touch(it);
    return it->second.report;
  }

  /// Inserts unless another thread won the race; returns the stored entry.
  performability::PerformabilityReport Insert(
      const std::vector<int>& key,
      performability::PerformabilityReport report) {
    std::lock_guard<std::mutex> lock(mutex);
    auto [it, inserted] = entries.try_emplace(key);
    if (inserted) {
      it->second.report = std::move(report);
      it->second.bytes = EntryBytes(key, it->second.report);
      lru.push_front(it);
      it->second.lru_it = lru.begin();
      total_bytes += it->second.bytes;
      EvictToBudget();
    } else {
      Touch(it);
    }
    return it->second.report;
  }

  std::optional<FailureEntry> LookupFailure(const std::vector<int>& key) {
    std::lock_guard<std::mutex> lock(mutex);
    auto it = failures.find(key);
    if (it == failures.end()) return std::nullopt;
    return it->second;
  }

  FailureEntry InsertFailure(const std::vector<int>& key,
                             FailureEntry entry) {
    std::lock_guard<std::mutex> lock(mutex);
    auto [it, inserted] = failures.try_emplace(key, std::move(entry));
    return it->second;
  }
};

ConfigurationTool::ConfigurationTool(const workflow::Environment* env,
                                     performability::PerformabilityModel model)
    : env_(env),
      model_(std::move(model)),
      num_threads_(ThreadPool::DefaultThreadCount()),
      cache_(std::make_unique<AssessmentCache>()) {}

ConfigurationTool::ConfigurationTool(ConfigurationTool&&) noexcept = default;
ConfigurationTool& ConfigurationTool::operator=(ConfigurationTool&&) noexcept =
    default;
ConfigurationTool::~ConfigurationTool() = default;

Result<ConfigurationTool> ConfigurationTool::Create(
    const workflow::Environment& env,
    const performability::PerformabilityOptions& options) {
  WFMS_ASSIGN_OR_RETURN(performability::PerformabilityModel model,
                        performability::PerformabilityModel::Create(env,
                                                                    options));
  return ConfigurationTool(&env, std::move(model));
}

void ConfigurationTool::set_num_threads(size_t n) {
  num_threads_ = std::max<size_t>(1, n);
  pool_.reset();
}

ThreadPool& ConfigurationTool::pool() const {
  // Guarded: the daemon assesses on the same tool from many worker
  // threads, so first-use construction must not race (the cache mutex is
  // a convenient always-present lock; the fast path after construction is
  // one uncontended acquire).
  std::lock_guard<std::mutex> lock(cache_->mutex);
  if (!pool_) pool_ = std::make_unique<ThreadPool>(num_threads_);
  return *pool_;
}

ConfigurationTool::CacheStats ConfigurationTool::cache_stats() const {
  CacheStats stats;
  {
    std::lock_guard<std::mutex> lock(cache_->mutex);
    stats.entries = cache_->entries.size();
    stats.evictions = cache_->evictions;
    stats.bytes = cache_->total_bytes;
  }
  stats.hits = cache_->hits.load();
  stats.misses = cache_->misses.load();
  return stats;
}

bool ConfigurationTool::HasCachedAssessment(
    const std::vector<int>& replicas) const {
  std::lock_guard<std::mutex> lock(cache_->mutex);
  return cache_->entries.find(replicas) != cache_->entries.end();
}

void ConfigurationTool::ClearAssessmentCache() {
  std::lock_guard<std::mutex> lock(cache_->mutex);
  cache_->entries.clear();
  cache_->lru.clear();
  cache_->total_bytes = 0;
  cache_->failures.clear();
  CacheEntriesGauge().Set(0.0);
}

void ConfigurationTool::set_cache_limits(const CacheLimits& limits) {
  std::lock_guard<std::mutex> lock(cache_->mutex);
  cache_->limits = limits;
  cache_->EvictToBudget();
}

ConfigurationTool::CacheDump ConfigurationTool::DumpAssessmentCache() const {
  CacheDump dump;
  std::lock_guard<std::mutex> lock(cache_->mutex);
  dump.reports.reserve(cache_->entries.size());
  for (const auto& [key, entry] : cache_->entries) {
    dump.reports.emplace_back(key, entry.report);
  }
  dump.failures.reserve(cache_->failures.size());
  for (const auto& [key, failure] : cache_->failures) {
    dump.failures.emplace_back(
        key, CachedFailure{failure.error, failure.numerical,
                           failure.retried_exact});
  }
  return dump;
}

void ConfigurationTool::RestoreAssessmentCache(const CacheDump& dump) const {
  std::lock_guard<std::mutex> lock(cache_->mutex);
  for (const auto& [key, report] : dump.reports) {
    auto [it, inserted] = cache_->entries.try_emplace(key);
    if (!inserted) continue;  // existing entries win, like any insert race
    it->second.report = report;
    it->second.bytes = AssessmentCache::EntryBytes(key, report);
    cache_->lru.push_front(it);
    it->second.lru_it = cache_->lru.begin();
    cache_->total_bytes += it->second.bytes;
  }
  for (const auto& [key, failure] : dump.failures) {
    cache_->failures.try_emplace(
        key, AssessmentCache::FailureEntry{failure.error, failure.numerical,
                                           failure.retried_exact});
  }
  cache_->EvictToBudget();
}

Assessment ConfigurationTool::BuildAssessment(
    const Configuration& config, performability::PerformabilityReport report,
    const Goals& goals, const CostModel& cost) const {
  const size_t k = env_->num_server_types();
  Assessment assessment;
  assessment.config = config;
  assessment.performability = std::move(report);
  assessment.cost = cost.Cost(config.replicas);
  assessment.meets_waiting_goal = true;
  for (size_t x = 0; x < k; ++x) {
    const double w = assessment.performability.expected_waiting[x];
    if (!(w <= goals.WaitingThreshold(x))) {  // NaN/inf fail too
      assessment.meets_waiting_goal = false;
    }
  }
  assessment.meets_availability_goal =
      assessment.performability.availability >= goals.min_availability;
  assessment.meets_saturation_goal =
      assessment.performability.prob_saturated <=
      goals.max_saturation_probability;

  // §7.1's workflow-type-specific refinement: per-instance queueing delay
  // under the performability waiting times W^Y.
  const auto& workflows = model_.performance().workflows();
  assessment.instance_delays.assign(workflows.size(), 0.0);
  for (size_t t = 0; t < workflows.size(); ++t) {
    double delay = 0.0;
    for (size_t x = 0; x < k; ++x) {
      const double requests = workflows[t].expected_requests[x];
      if (requests > 0.0) {
        delay += requests * assessment.performability.expected_waiting[x];
      }
    }
    assessment.instance_delays[t] = delay;
    const auto bound = goals.max_instance_delay.find(
        workflows[t].workflow_type);
    if (bound != goals.max_instance_delay.end() &&
        !(delay <= bound->second)) {
      assessment.meets_instance_delay_goal = false;
    }
  }
  return assessment;
}

Result<Assessment> ConfigurationTool::AssessInternal(
    const Configuration& config, const Goals& goals, const CostModel& cost,
    const linalg::Vector* avail_guess, bool* cache_hit,
    const markov::SteadyStateOptions* solver_override) const {
  const size_t k = env_->num_server_types();
  WFMS_RETURN_NOT_OK(goals.Validate(k));
  WFMS_RETURN_NOT_OK(cost.Validate(k));
  WFMS_RETURN_NOT_OK(config.Validate(k));

  if (cache_hit != nullptr) *cache_hit = false;
  // Site-placed configurations key the cache by replicas ++ {-1} ++
  // site_counts, so a placement and its aggregate never collide.
  const std::vector<int> key = config.CacheKey();
  if (auto cached = cache_->Lookup(key)) {
    cache_->hits.fetch_add(1);
    CacheHitsTotal().Increment();
    if (cache_hit != nullptr) *cache_hit = true;
    Assessment assessment =
        BuildAssessment(config, *std::move(cached), goals, cost);
    WFMS_RETURN_NOT_OK(
        ApplySurvivability(&assessment, goals, solver_override));
    return assessment;
  }
  cache_->misses.fetch_add(1);
  CacheMissesTotal().Increment();
  trace::TraceSpan span("configtool/assess", "configtool",
                        solver_override != nullptr
                            ? solver_override->budget.trace
                            : trace::TraceContext{});
  // Re-parent the solver's context under this span so the steady-state
  // solve appears as a child of the assessment in the merged trace tree.
  markov::SteadyStateOptions reparented;
  if (solver_override != nullptr && solver_override->budget.trace.valid()) {
    reparented = *solver_override;
    reparented.budget.trace = span.context();
    solver_override = &reparented;
  }
  const auto eval_start = std::chrono::steady_clock::now();
  WFMS_ASSIGN_OR_RETURN(performability::PerformabilityReport report,
                        model_.Evaluate(config, avail_guess, solver_override));
  AssessmentSeconds().Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    eval_start)
          .count());
  report = cache_->Insert(key, std::move(report));
  Assessment assessment =
      BuildAssessment(config, std::move(report), goals, cost);
  WFMS_RETURN_NOT_OK(ApplySurvivability(&assessment, goals, solver_override));
  return assessment;
}

Status ConfigurationTool::ApplySurvivability(
    Assessment* assessment, const Goals& goals,
    const markov::SteadyStateOptions* solver_override) const {
  const workflow::Configuration& config = assessment->config;
  if (!goals.wants_survivability() ||
      !model_.availability().site_mode(config)) {
    return Status::OK();
  }
  const workflow::SiteTopology& topology = model_.availability().topology();
  const size_t s = topology.num_sites();

  // Enumerate the requested contingencies in a fixed order: every
  // single-site loss first, then every two-way partition.
  std::vector<avail::SiteContingency> contingencies;
  if (goals.survive_sites > 0) {
    for (size_t a = 0; a < s; ++a) {
      avail::SiteContingency c;
      c.down_sites = uint64_t{1} << a;
      contingencies.push_back(c);
    }
  }
  if (goals.survive_partitions) {
    for (size_t a = 0; a < s; ++a) {
      for (size_t b = a + 1; b < s; ++b) {
        avail::SiteContingency c;
        c.partitioned_pairs = uint64_t{1} << workflow::PairIndex(a, b, s);
        contingencies.push_back(c);
      }
    }
  }

  const double degraded_wait = goals.DegradedWaitingThreshold();
  const double degraded_avail = goals.DegradedAvailabilityGoal();
  assessment->contingencies.clear();
  assessment->contingencies.reserve(contingencies.size());
  assessment->meets_survivability_goal = true;
  for (const avail::SiteContingency& contingency : contingencies) {
    // Each contingency's report is memoized under its own fingerprint:
    // the configuration key extended by a -2 marker and the two masks.
    std::vector<int> key = config.CacheKey();
    key.push_back(-2);
    key.push_back(static_cast<int>(contingency.down_sites));
    key.push_back(static_cast<int>(contingency.partitioned_pairs));
    performability::PerformabilityReport report;
    if (auto cached = cache_->Lookup(key)) {
      cache_->hits.fetch_add(1);
      CacheHitsTotal().Increment();
      report = *std::move(cached);
    } else {
      cache_->misses.fetch_add(1);
      CacheMissesTotal().Increment();
      WFMS_ASSIGN_OR_RETURN(
          report, model_.Evaluate(config, /*avail_guess=*/nullptr,
                                  solver_override, &contingency));
      report = cache_->Insert(key, std::move(report));
    }
    ContingencyAssessment verdict;
    verdict.contingency = contingency;
    verdict.label = contingency.ToString(topology);
    verdict.availability = report.availability;
    verdict.max_expected_waiting = report.max_expected_waiting;
    verdict.satisfied = report.availability >= degraded_avail &&
                        report.max_expected_waiting <= degraded_wait;
    if (!verdict.satisfied) assessment->meets_survivability_goal = false;
    assessment->contingencies.push_back(std::move(verdict));
  }
  return Status::OK();
}

namespace {

/// Errors a search must survive: numerical solver trouble and internal
/// model failures. Structural errors (invalid goals, configs, constraints)
/// mean the caller is holding the tool wrong and still abort.
bool IsIsolatableFailure(StatusCode code) {
  return code == StatusCode::kNumericError ||
         code == StatusCode::kFailedPrecondition ||
         code == StatusCode::kInternal;
}

/// Infeasible-with-cause assessment for a candidate whose evaluation
/// terminally failed. Every goal flag is false so Satisfies() is false and
/// the greedy availability pick still fires.
Assessment FailedAssessment(const Configuration& config, const CostModel& cost,
                            Status error, bool numerical, bool retried) {
  Assessment assessment;
  assessment.config = config;
  assessment.cost = cost.Cost(config.replicas);
  assessment.meets_instance_delay_goal = false;
  assessment.error = std::move(error);
  assessment.numerical_failure = numerical;
  assessment.retried_exact = retried;
  return assessment;
}

/// Records a terminal failure on the search result, deduplicated by
/// replication vector (the same candidate can be re-encountered across
/// waves via the negative cache).
void AppendFailure(const Assessment& assessment, SearchResult* result) {
  if (result == nullptr || assessment.error.ok()) return;
  for (const FailedCandidate& seen : result->failed_candidates) {
    if (seen.config.replicas == assessment.config.replicas) return;
  }
  // Counted here — the site that builds the --verbose failure list — so
  // the exported counter equals the number of causes printed.
  CandidatesFailedTotal().Increment();
  result->failed_candidates.push_back({assessment.config, assessment.error,
                                       assessment.numerical_failure,
                                       assessment.retried_exact});
}

/// True when the availability state space of `config` fits the dense-LU
/// cap, i.e. an exact retry is worth attempting.
bool FitsDenseCap(const Configuration& config, size_t cap) {
  if (cap == 0) return false;
  // Site-placed state spaces carry extra site/partition dimensions the
  // replica product below does not see; skip the exact retry for them.
  if (config.has_sites()) return false;
  size_t states = 1;
  for (int r : config.replicas) {
    states *= static_cast<size_t>(r) + 1;
    if (states > cap) return false;
  }
  return true;
}

/// Wall-clock deadline for a whole search, checked at wave/step
/// boundaries. An absolute `deadline_point` (set by the daemon, or derived
/// from `deadline_seconds` at strategy entry) takes precedence over the
/// relative form so queue wait already charged stays charged.
class SearchDeadline {
 public:
  explicit SearchDeadline(const SearchOptions& search)
      : seconds_(search.deadline_seconds) {
    const auto now = std::chrono::steady_clock::now();
    if (search.deadline_point != std::chrono::steady_clock::time_point{}) {
      active_ = true;
      deadline_ = search.deadline_point;
      if (seconds_ <= 0.0) {
        seconds_ = std::chrono::duration<double>(deadline_ - now).count();
      }
    } else if (seconds_ > 0.0) {
      active_ = true;
      deadline_ = now + std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(seconds_));
    }
  }

  bool Expired() const {
    return active_ && std::chrono::steady_clock::now() >= deadline_;
  }

  /// Marks the result as deadline-terminated; the caller then returns its
  /// best-so-far.
  void Terminate(const char* strategy, SearchResult* result) const {
    result->termination = Status::DeadlineExceeded(
        std::string(strategy) + " search hit its deadline of " +
        std::to_string(seconds_) + "s after " +
        std::to_string(result->evaluations) +
        " evaluations; result is best-so-far");
  }

 private:
  double seconds_;
  bool active_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

/// Copy of `search` with `deadline_point` materialized from
/// `deadline_seconds` (when only the relative form was given). Each
/// strategy normalizes once at entry so per-candidate solver bounding in
/// AssessIsolated sees the same absolute instant the boundary checks do.
SearchOptions NormalizedDeadline(const SearchOptions& search_in) {
  SearchOptions search = search_in;
  if (search.deadline_point == std::chrono::steady_clock::time_point{} &&
      search.deadline_seconds > 0.0) {
    search.deadline_point =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(search.deadline_seconds));
  }
  return search;
}

/// Everything a search does at a wave/step boundary besides the search
/// itself: poll the deadline, poll cooperative cancellation, and fire the
/// periodic checkpoint hook. Exactly one instance per search invocation,
/// used from the search thread only.
class SearchBoundary {
 public:
  explicit SearchBoundary(const SearchOptions& search)
      : search_(search),
        deadline_(search),
        last_checkpoint_(std::chrono::steady_clock::now()) {}

  /// True when the search must stop now (cancelled or out of time);
  /// `result->termination` is then set and the caller returns its
  /// best-so-far. Otherwise fires the checkpoint hook when it is due.
  bool ShouldStop(const char* strategy, SearchResult* result) {
    if (search_.cancel != nullptr &&
        search_.cancel->load(std::memory_order_relaxed)) {
      result->termination = Status::Cancelled(
          std::string(strategy) + " search cancelled after " +
          std::to_string(result->evaluations) +
          " evaluations; result is best-so-far");
      return true;
    }
    if (deadline_.Expired()) {
      deadline_.Terminate(strategy, result);
      return true;
    }
    if (search_.on_checkpoint) {
      const auto now = std::chrono::steady_clock::now();
      if (std::chrono::duration<double>(now - last_checkpoint_).count() >=
          search_.checkpoint_interval_seconds) {
        search_.on_checkpoint();
        last_checkpoint_ = std::chrono::steady_clock::now();
      }
    }
    return false;
  }

 private:
  const SearchOptions& search_;
  SearchDeadline deadline_;
  std::chrono::steady_clock::time_point last_checkpoint_;
};

/// Per-strategy search accounting: opens a trace span for the whole search
/// and, on scope exit (any return path), bumps the strategy's search and
/// evaluation counters from the accumulating SearchResult.
class SearchScope {
 public:
  SearchScope(const char* strategy, const SearchResult* result,
              const trace::TraceContext& trace = {})
      : span_(std::string("configtool/") + strategy + "_search",
              "configtool", trace),
        strategy_(strategy),
        result_(result) {}

  /// Context for spans under this search (candidate solves).
  trace::TraceContext context() const { return span_.context(); }

  ~SearchScope() {
    auto& registry = metrics::MetricsRegistry::Global();
    const std::string prefix = std::string("wfms_configtool_") + strategy_;
    registry.GetCounter(prefix + "_searches_total").Increment();
    if (result_->evaluations > 0) {
      registry.GetCounter(prefix + "_evaluations_total")
          .Increment(static_cast<uint64_t>(result_->evaluations));
    }
  }

  SearchScope(const SearchScope&) = delete;
  SearchScope& operator=(const SearchScope&) = delete;

 private:
  trace::TraceSpan span_;
  const char* strategy_;
  const SearchResult* result_;
};

}  // namespace

Result<Assessment> ConfigurationTool::AssessIsolated(
    const Configuration& config, const Goals& goals, const CostModel& cost,
    const linalg::Vector* avail_guess, const SearchOptions& search,
    bool* cache_hit) const {
  const size_t k = env_->num_server_types();
  WFMS_RETURN_NOT_OK(goals.Validate(k));
  WFMS_RETURN_NOT_OK(cost.Validate(k));
  WFMS_RETURN_NOT_OK(config.Validate(k));

  if (cache_hit != nullptr) *cache_hit = false;
  if (auto failed = cache_->LookupFailure(config.CacheKey())) {
    cache_->hits.fetch_add(1);
    CacheHitsTotal().Increment();
    if (cache_hit != nullptr) *cache_hit = true;
    return FailedAssessment(config, cost, std::move(failed->error),
                            failed->numerical, failed->retried_exact);
  }

  // With a deadline in force, bound the candidate's steady-state solve by
  // the wall clock remaining right now: the deadline is enforced *inside*
  // a solve, not just between candidates, so one heavyweight candidate
  // cannot overshoot the whole search's budget.
  markov::SteadyStateOptions bounded_solver;
  const markov::SteadyStateOptions* solver_override = nullptr;
  if (search.deadline_bounds_solver &&
      search.deadline_point != std::chrono::steady_clock::time_point{}) {
    const double remaining =
        std::chrono::duration<double>(search.deadline_point -
                                      std::chrono::steady_clock::now())
            .count();
    // Floor at 1ms: the boundary check will stop the search; the solve
    // itself still gets a sliver so an instant cache-adjacent candidate
    // can complete.
    const double cap = std::max(remaining, 1e-3);
    bounded_solver = model_.options().availability.solver;
    if (bounded_solver.budget.max_wall_time_seconds <= 0.0 ||
        cap < bounded_solver.budget.max_wall_time_seconds) {
      bounded_solver.budget.max_wall_time_seconds = cap;
    }
    solver_override = &bounded_solver;
  }
  // A traced request takes the override path even without a deadline so
  // the context reaches the steady-state solver.
  if (search.trace.valid()) {
    if (solver_override == nullptr) {
      bounded_solver = model_.options().availability.solver;
      solver_override = &bounded_solver;
    }
    bounded_solver.budget.trace = search.trace;
  }

  auto assessed = AssessInternal(config, goals, cost, avail_guess, cache_hit,
                                 solver_override);
  if (assessed.ok()) return assessed;
  Status cause = assessed.status();
  if (solver_override != nullptr &&
      cause.code() == StatusCode::kDeadlineExceeded) {
    // The *deadline we imposed* expired mid-solve. That says nothing about
    // the candidate itself, so it is returned as an isolated failure but
    // never negatively cached and never retried with the exact solver — a
    // resumed or re-issued search re-assesses it cleanly.
    return FailedAssessment(config, cost, std::move(cause),
                            /*numerical=*/false, /*retried=*/false);
  }
  if (!IsIsolatableFailure(cause.code())) return cause;

  const bool numerical = cause.code() == StatusCode::kNumericError;
  bool retried = false;
  if (numerical && search.retry_numerical_failures &&
      FitsDenseCap(config,
                   model_.options().availability.solver.max_dense_states)) {
    retried = true;
    markov::SteadyStateOptions lu_options =
        model_.options().availability.solver;
    lu_options.method = markov::SteadyStateMethod::kLu;
    lu_options.budget = {};
    lu_options.budget.trace = search.trace;  // survive the budget reset
    auto exact = model_.Evaluate(config, /*avail_guess=*/nullptr, &lu_options);
    if (exact.ok()) {
      auto report = cache_->Insert(config.CacheKey(), *std::move(exact));
      Assessment assessment =
          BuildAssessment(config, std::move(report), goals, cost);
      assessment.retried_exact = true;
      Status applied = ApplySurvivability(&assessment, goals, &lu_options);
      if (!applied.ok()) {
        cause = applied.WithContext("after exact LU retry");
      } else {
        return assessment;
      }
    } else {
      cause = exact.status().WithContext("exact LU retry also failed; first " +
                                         cause.ToString());
    }
  }
  auto stored = cache_->InsertFailure(config.CacheKey(),
                                      {std::move(cause), numerical, retried});
  return FailedAssessment(config, cost, std::move(stored.error),
                          stored.numerical, stored.retried_exact);
}

Result<Assessment> ConfigurationTool::AssessCounted(
    const Configuration& config, const Goals& goals, const CostModel& cost,
    const linalg::Vector* avail_guess, const SearchOptions& search,
    SearchResult* result) const {
  bool hit = false;
  WFMS_ASSIGN_OR_RETURN(
      Assessment assessment,
      AssessIsolated(config, goals, cost, avail_guess, search, &hit));
  ++result->evaluations;
  if (hit) ++result->cache_hits;
  CandidatesAssessedTotal().Increment();
  if (hit) SearchCacheHitsTotal().Increment();
  AppendFailure(assessment, result);
  return assessment;
}

Result<Assessment> ConfigurationTool::Assess(const Configuration& config,
                                             const Goals& goals,
                                             const CostModel& cost) const {
  return AssessInternal(config, goals, cost, /*avail_guess=*/nullptr,
                        /*cache_hit=*/nullptr);
}

Result<Assessment> ConfigurationTool::AssessWithDeadline(
    const Configuration& config, const Goals& goals,
    std::chrono::steady_clock::time_point deadline_point,
    const CostModel& cost, const trace::TraceContext& trace) const {
  SearchOptions search;
  search.deadline_point = deadline_point;
  search.trace = trace;
  return AssessIsolated(config, goals, cost, /*avail_guess=*/nullptr, search,
                        /*cache_hit=*/nullptr);
}

Result<std::vector<Assessment>> ConfigurationTool::AssessBatchInternal(
    std::span<const Configuration> configs, const Goals& goals,
    const CostModel& cost, const SearchOptions& search,
    SearchResult* result) const {
  const size_t n = configs.size();
  std::vector<std::optional<Assessment>> slots(n);
  std::vector<Status> errors(n, Status::OK());
  std::atomic<int> hits{0};
  pool().ParallelFor(n, [&](size_t i) {
    bool hit = false;
    auto assessed = AssessIsolated(configs[i], goals, cost,
                                   /*avail_guess=*/nullptr, search, &hit);
    if (assessed.ok()) {
      slots[i] = *std::move(assessed);
    } else {
      errors[i] = assessed.status();
    }
    if (hit) hits.fetch_add(1);
  });
  // Reduce in candidate-index order (first structural error wins
  // deterministically; isolated failures are data and get recorded in the
  // same order).
  std::vector<Assessment> assessments;
  assessments.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!errors[i].ok()) {
      return errors[i].WithContext("assessing candidate " +
                                   configs[i].ToString());
    }
    AppendFailure(*slots[i], result);
    assessments.push_back(*std::move(slots[i]));
  }
  if (result != nullptr) {
    result->evaluations += static_cast<int>(n);
    result->cache_hits += hits.load();
    CandidatesAssessedTotal().Increment(n);
    if (hits.load() > 0) {
      SearchCacheHitsTotal().Increment(static_cast<uint64_t>(hits.load()));
    }
  }
  return assessments;
}

Result<std::vector<Assessment>> ConfigurationTool::AssessBatch(
    std::span<const Configuration> configs, const Goals& goals,
    const CostModel& cost) const {
  return AssessBatchInternal(configs, goals, cost, SearchOptions{},
                             /*result=*/nullptr);
}

double ConfigurationTool::ViolationMeasure(const Assessment& assessment,
                                           const Goals& goals) const {
  const size_t k = env_->num_server_types();
  // A failed assessment carries no waiting-time data; treat it as worse
  // than any real violation so the annealer never settles on it.
  if (!assessment.error.ok() ||
      assessment.performability.expected_waiting.size() < k) {
    return 100.0;
  }
  double violation = 0.0;
  for (size_t x = 0; x < k; ++x) {
    const double w = assessment.performability.expected_waiting[x];
    const double threshold = goals.WaitingThreshold(x);
    if (std::isinf(w) || std::isnan(w)) {
      violation += 10.0;
    } else if (w > threshold) {
      violation += (w - threshold) / threshold;
    }
  }
  const double unavail_goal = 1.0 - goals.min_availability;
  const double unavail = 1.0 - assessment.performability.availability;
  if (unavail > unavail_goal && unavail_goal > 0.0) {
    violation += std::log10(unavail / unavail_goal);
  }
  if (assessment.performability.prob_saturated >
      goals.max_saturation_probability) {
    violation += assessment.performability.prob_saturated -
                 goals.max_saturation_probability;
  }
  const auto& workflows = model_.performance().workflows();
  for (size_t t = 0; t < workflows.size() &&
                     t < assessment.instance_delays.size();
       ++t) {
    const auto bound =
        goals.max_instance_delay.find(workflows[t].workflow_type);
    if (bound == goals.max_instance_delay.end()) continue;
    const double delay = assessment.instance_delays[t];
    if (std::isinf(delay) || std::isnan(delay)) {
      violation += 10.0;
    } else if (delay > bound->second) {
      violation += (delay - bound->second) / bound->second;
    }
  }
  // Survivability: each contingency that misses its degraded goals adds
  // its own shortfall, so placements that survive more contingencies rank
  // strictly better even while none fully satisfies.
  const double degraded_wait = goals.DegradedWaitingThreshold();
  const double degraded_unavail = 1.0 - goals.DegradedAvailabilityGoal();
  for (const ContingencyAssessment& c : assessment.contingencies) {
    if (c.satisfied) continue;
    const double w = c.max_expected_waiting;
    if (std::isinf(w) || std::isnan(w)) {
      violation += 10.0;
    } else if (w > degraded_wait) {
      violation += (w - degraded_wait) / degraded_wait;
    }
    const double unavail = 1.0 - c.availability;
    if (unavail > degraded_unavail && degraded_unavail > 0.0) {
      violation += std::log10(unavail / degraded_unavail);
    } else if (degraded_unavail <= 0.0 && unavail > 0.0) {
      violation += 1.0;
    }
  }
  return violation;
}

namespace {

Configuration MinimalConfig(const SearchConstraints& constraints, size_t k) {
  Configuration config;
  config.replicas.resize(k);
  for (size_t x = 0; x < k; ++x) config.replicas[x] = constraints.MinFor(x);
  return config;
}

/// Projects `parent`'s availability stationary vector onto the state space
/// of `child`; empty on any failure (the caller then cold-starts).
linalg::Vector WarmStartGuess(const Assessment& parent,
                              const Configuration& child) {
  const linalg::Vector& parent_pi =
      parent.performability.avail_state_probabilities;
  if (parent_pi.empty()) return {};
  // Site-placed state spaces are not the replica mixed-radix space the
  // projection below assumes; the site path cold-starts instead.
  if (parent.config.has_sites() || child.has_sites()) return {};
  auto parent_space = markov::MixedRadixSpace::Create(parent.config.replicas);
  auto child_space = markov::MixedRadixSpace::Create(child.replicas);
  if (!parent_space.ok() || !child_space.ok()) return {};
  auto guess = markov::ProjectDistribution(*parent_space, parent_pi,
                                           *child_space);
  if (!guess.ok()) return {};
  return *std::move(guess);
}

/// Candidates the exhaustive search drains per parallel wave. Fixed (never
/// derived from the thread count) so that evaluation counts — and thus
/// SearchResult — are identical across pool sizes.
constexpr size_t kExhaustiveWaveSize = 32;
/// Upper bound on an equal-cost branch-and-bound wave, for the same reason.
constexpr size_t kBnbWaveSize = 16;

}  // namespace

void ConfigurationTool::PrefetchNeighborFrontier(
    const Configuration& config, const Assessment& parent, const Goals& goals,
    const CostModel& cost, const SearchConstraints& constraints) const {
  if (num_threads_ <= 1) return;
  trace::TraceSpan span("configtool/prefetch_frontier", "configtool");
  const size_t k = env_->num_server_types();
  std::vector<std::future<void>> pending;
  pending.reserve(k);
  for (size_t x = 0; x < k; ++x) {
    if (config.replicas[x] >= constraints.MaxFor(x)) continue;
    Configuration child = config;
    ++child.replicas[x];
    auto submitted = pool().Submit([this, child = std::move(child), &parent,
                                    &goals, &cost]() {
      // Same warm start the sequential path would use, so a later cache
      // hit is bit-identical to the miss it replaces.
      const linalg::Vector guess = WarmStartGuess(parent, child);
      // Errors surface when the search assesses the candidate for real.
      auto speculative = AssessInternal(
          child, goals, cost, guess.empty() ? nullptr : &guess,
          /*cache_hit=*/nullptr);
      (void)speculative;
    });
    // A pool already shutting down just skips the speculation.
    if (submitted.ok()) pending.push_back(*std::move(submitted));
  }
  // Block until the frontier is resident: the subsequent pick must hit the
  // cache deterministically rather than race the prefill.
  for (auto& future : pending) future.wait();
}

Result<SearchResult> ConfigurationTool::GreedyMinCost(
    const Goals& goals, const SearchConstraints& constraints,
    const CostModel& cost, const SearchOptions& search_in) const {
  SearchOptions search = NormalizedDeadline(search_in);
  const size_t k = env_->num_server_types();
  WFMS_RETURN_NOT_OK(constraints.Validate(k));
  Configuration config = MinimalConfig(constraints, k);

  int budget = 0;  // total replicas that can still be added
  for (size_t x = 0; x < k; ++x) {
    budget += constraints.MaxFor(x) - constraints.MinFor(x);
  }

  SearchResult result;
  SearchScope scope("greedy", &result, search.trace);
  search.trace = scope.context();
  SearchBoundary boundary(search);
  WFMS_ASSIGN_OR_RETURN(
      Assessment assessment,
      AssessCounted(config, goals, cost, /*avail_guess=*/nullptr, search,
                    &result));

  // Assesses the one-replica-added successor, reusing the parent's
  // availability distribution as the iterative solver's starting point.
  const auto assess_child = [&](const Configuration& child,
                                const Assessment& parent) {
    const linalg::Vector guess = WarmStartGuess(parent, child);
    return AssessCounted(child, goals, cost,
                         guess.empty() ? nullptr : &guess, search, &result);
  };

  // Fault isolation: a step's candidate failing assessment excludes that
  // server type for the step; the next most critical type is tried. The
  // failure is already recorded in result.failed_candidates.
  const auto try_grow = [&](size_t pick) -> Result<bool> {
    Configuration child = config;
    ++child.replicas[pick];
    WFMS_ASSIGN_OR_RETURN(Assessment next, assess_child(child, assessment));
    if (!next.error.ok()) return false;
    config = std::move(child);
    assessment = std::move(next);
    --budget;
    return true;
  };

  // §7.2: consider the availability and the performability criterion in an
  // interleaved manner, re-evaluating after every added replica so the
  // configuration is never oversized.
  while (!assessment.Satisfies() && budget > 0) {
    if (boundary.ShouldStop("greedy", &result)) break;
    bool added = false;
    PrefetchNeighborFrontier(config, assessment, goals, cost, constraints);

    if (!assessment.meets_availability_goal) {
      // Most critical type for availability: the one whose probability of
      // being completely down is largest (i.e. the weakest link).
      std::set<size_t> excluded;
      while (true) {
        double worst = -1.0;
        size_t pick = SIZE_MAX;
        for (size_t x = 0; x < k; ++x) {
          if (config.replicas[x] >= constraints.MaxFor(x)) continue;
          if (excluded.count(x) != 0) continue;
          auto dist = model_.availability().PerTypeDistribution(
              x, config.replicas[x]);
          if (!dist.ok()) return dist.status();
          const double down = (*dist)[0];
          if (down > worst) {
            worst = down;
            pick = x;
          }
        }
        if (pick == SIZE_MAX) break;
        WFMS_ASSIGN_OR_RETURN(bool grown, try_grow(pick));
        if (grown) {
          added = true;
          break;
        }
        excluded.insert(pick);
      }
      if (assessment.Satisfies()) break;
    }

    if (assessment.error.ok() &&
        (!assessment.meets_waiting_goal || !assessment.meets_saturation_goal ||
         !assessment.meets_instance_delay_goal)) {
      // Most critical type for responsiveness: the one with the largest
      // relative waiting-time violation (saturated types first, then by
      // utilization). A pure instance-delay violation steers toward the
      // type contributing the most delay to the violating workflows.
      const auto& workflows = model_.performance().workflows();
      std::set<size_t> excluded;
      while (true) {
        double worst = -1.0;
        size_t pick = SIZE_MAX;
        for (size_t x = 0; x < k; ++x) {
          if (config.replicas[x] >= constraints.MaxFor(x)) continue;
          if (excluded.count(x) != 0) continue;
          const double w = assessment.performability.expected_waiting[x];
          double score =
              std::isinf(w) || std::isnan(w)
                  ? 1e12 + assessment.performability.full_config_waiting[x]
                  : w / goals.WaitingThreshold(x);
          if (!assessment.meets_instance_delay_goal && std::isfinite(w)) {
            for (size_t t = 0; t < workflows.size(); ++t) {
              const auto bound = goals.max_instance_delay.find(
                  workflows[t].workflow_type);
              if (bound == goals.max_instance_delay.end()) continue;
              if (assessment.instance_delays[t] <= bound->second) continue;
              score += workflows[t].expected_requests[x] * w / bound->second;
            }
          }
          if (score > worst) {
            worst = score;
            pick = x;
          }
        }
        if (pick == SIZE_MAX) break;
        WFMS_ASSIGN_OR_RETURN(bool grown, try_grow(pick));
        if (grown) {
          added = true;
          break;
        }
        excluded.insert(pick);
      }
    }

    if (!added) break;  // every critical type is capped or failed
  }

  result.config = config;
  result.cost = cost.Cost(config.replicas);
  result.satisfied = assessment.Satisfies();
  result.assessment = std::move(assessment);
  return result;
}

Result<SearchResult> ConfigurationTool::GreedySiteMinCost(
    const Goals& goals, const SiteSearchConstraints& constraints,
    const CostModel& cost, const SearchOptions& search_in) const {
  SearchOptions search = NormalizedDeadline(search_in);
  const size_t k = env_->num_server_types();
  const workflow::SiteTopology& topology = model_.availability().topology();
  const size_t s = topology.num_sites();
  if (s == 0) {
    return Status::InvalidArgument(
        "site placement search needs an environment with a sites section");
  }
  WFMS_RETURN_NOT_OK(constraints.Validate(k, s));

  // Start from the per-site minimums, raising each all-zero type to one
  // replica at the lowest site index so the configuration is valid.
  std::vector<int> counts(k * s, 0);
  for (size_t x = 0; x < k; ++x) {
    int total = 0;
    for (size_t a = 0; a < s; ++a) {
      counts[x * s + a] = constraints.MinFor(x, a, s);
      total += counts[x * s + a];
    }
    if (total == 0) counts[x * s] = 1;
  }
  Configuration config = Configuration::FromSiteCounts(std::move(counts), s);

  SearchResult result;
  SearchScope scope("greedy_site", &result, search.trace);
  search.trace = scope.context();
  SearchBoundary boundary(search);
  WFMS_ASSIGN_OR_RETURN(
      Assessment assessment,
      AssessCounted(config, goals, cost, /*avail_guess=*/nullptr, search,
                    &result));

  while (!assessment.Satisfies()) {
    if (boundary.ShouldStop("greedy-site", &result)) break;
    // Admissible +1 neighbors: one more replica of type x at site a,
    // subject to the per-type total cap. Enumerated (type, site)-ascending
    // so index order is the deterministic tie-break below.
    std::vector<Configuration> wave;
    wave.reserve(k * s);
    for (size_t x = 0; x < k; ++x) {
      if (config.replicas[x] >= constraints.max_per_type) continue;
      for (size_t a = 0; a < s; ++a) {
        std::vector<int> next = config.site_counts;
        ++next[x * s + a];
        wave.push_back(Configuration::FromSiteCounts(std::move(next), s));
      }
    }
    // Coverage moves: a single +1 can never lift a contingency whose
    // surviving component is missing a whole server type (its availability
    // stays 0 however many replicas the covered types gain), so the +1
    // landscape is flat exactly where survivability needs progress. Per
    // site, also offer the smallest move that completes coverage there:
    // one replica of every type the site lacks.
    if (goals.wants_survivability()) {
      for (size_t a = 0; a < s; ++a) {
        std::vector<int> next = config.site_counts;
        bool changed = false;
        bool feasible = true;
        for (size_t x = 0; x < k; ++x) {
          if (next[x * s + a] > 0) continue;
          if (config.replicas[x] >= constraints.max_per_type) {
            feasible = false;
            break;
          }
          ++next[x * s + a];
          changed = true;
        }
        if (feasible && changed) {
          wave.push_back(Configuration::FromSiteCounts(std::move(next), s));
        }
      }
    }
    if (wave.empty()) break;  // every type is at its cap
    WFMS_ASSIGN_OR_RETURN(
        std::vector<Assessment> assessed,
        AssessBatchInternal(wave, goals, cost, search, &result));
    // Pick: a satisfying candidate with the lowest cost wins; otherwise
    // the candidate with the smallest remaining goal violation
    // (survivability contingencies included). Strict comparisons keep the
    // lowest (type, site) index on ties.
    size_t pick = SIZE_MAX;
    bool pick_satisfies = false;
    double pick_cost = 0.0;
    double pick_violation = 0.0;
    for (size_t i = 0; i < assessed.size(); ++i) {
      if (!assessed[i].error.ok()) continue;  // recorded and skipped
      const bool satisfies = assessed[i].Satisfies();
      const double violation = ViolationMeasure(assessed[i], goals);
      const bool better =
          pick == SIZE_MAX || (satisfies && !pick_satisfies) ||
          (satisfies == pick_satisfies &&
           (satisfies ? assessed[i].cost < pick_cost
                      : violation < pick_violation));
      if (better) {
        pick = i;
        pick_satisfies = satisfies;
        pick_cost = assessed[i].cost;
        pick_violation = violation;
      }
    }
    if (pick == SIZE_MAX) break;  // the whole frontier failed assessment
    config = wave[pick];
    assessment = std::move(assessed[pick]);
  }

  result.config = config;
  result.cost = cost.Cost(config.replicas);
  result.satisfied = assessment.Satisfies();
  result.assessment = std::move(assessment);
  return result;
}

Result<SearchResult> ConfigurationTool::ExhaustiveMinCost(
    const Goals& goals, const SearchConstraints& constraints,
    const CostModel& cost, const SearchOptions& search_in) const {
  SearchOptions search = NormalizedDeadline(search_in);
  const size_t k = env_->num_server_types();
  WFMS_RETURN_NOT_OK(constraints.Validate(k));

  SearchResult result;
  SearchScope scope("exhaustive", &result, search.trace);
  search.trace = scope.context();
  SearchBoundary boundary(search);
  bool have_best = false;
  Configuration best;
  double best_cost = 0.0;

  Configuration current = MinimalConfig(constraints, k);
  Assessment best_assessment;
  best_assessment.config = current;
  Assessment last_assessment = best_assessment;

  // Mixed-radix enumeration, drained in fixed-size waves the pool assesses
  // concurrently. The incumbent filter uses the best cost as of the wave
  // start; the reduction below walks the wave in enumeration order, so the
  // recommended configuration is the same as the fully sequential sweep's.
  std::vector<Configuration> wave;
  wave.reserve(kExhaustiveWaveSize);
  bool enumeration_done = false;
  while (!enumeration_done) {
    if (boundary.ShouldStop("exhaustive", &result)) break;
    wave.clear();
    while (wave.size() < kExhaustiveWaveSize && !enumeration_done) {
      if (!have_best || cost.Cost(current.replicas) < best_cost) {
        wave.push_back(current);
      } else {
        CandidatesPrunedTotal().Increment();  // dominated by the incumbent
      }
      size_t x = 0;
      for (; x < k; ++x) {
        if (current.replicas[x] < constraints.MaxFor(x)) {
          ++current.replicas[x];
          for (size_t y = 0; y < x; ++y) {
            current.replicas[y] = constraints.MinFor(y);
          }
          break;
        }
      }
      if (x == k) enumeration_done = true;  // wrapped: enumeration over
    }
    if (wave.empty()) continue;
    WFMS_ASSIGN_OR_RETURN(
        std::vector<Assessment> assessed,
        AssessBatchInternal(wave, goals, cost, search, &result));
    for (size_t i = 0; i < assessed.size(); ++i) {
      if (assessed[i].Satisfies() &&
          (!have_best || assessed[i].cost < best_cost)) {
        have_best = true;
        best = wave[i];
        best_cost = assessed[i].cost;
        best_assessment = std::move(assessed[i]);
      }
    }
    if (!have_best) last_assessment = std::move(assessed.back());
  }

  if (have_best) {
    result.config = best;
    result.cost = best_cost;
    result.satisfied = true;
    result.assessment = std::move(best_assessment);
  } else {
    result.config = MinimalConfig(constraints, k);
    result.cost = cost.Cost(result.config.replicas);
    result.satisfied = false;
    result.assessment = std::move(last_assessment);
  }
  return result;
}

Result<SearchResult> ConfigurationTool::AnnealingMinCost(
    const Goals& goals, const SearchConstraints& constraints,
    const CostModel& cost, const AnnealingOptions& annealing,
    const SearchOptions& search_in) const {
  SearchOptions search = NormalizedDeadline(search_in);
  const size_t k = env_->num_server_types();
  WFMS_RETURN_NOT_OK(constraints.Validate(k));

  // Pre-drawn proposal stream: one (type, direction, acceptance-uniform)
  // triple per iteration, consumed unconditionally. Making the stream
  // independent of the acceptance outcomes lets iteration i speculatively
  // prefill the cache for both possible successors of iteration i + 1
  // while proposal i itself is being assessed (the pipelining below).
  struct Move {
    size_t type;
    int delta;
    double uniform;
  };
  Rng rng(annealing.seed);
  std::vector<Move> moves(static_cast<size_t>(annealing.iterations));
  for (Move& move : moves) {
    move.type = rng.NextUint64(k);
    move.delta = rng.NextBernoulli(0.5) ? 1 : -1;
    move.uniform = rng.NextDouble();
  }
  const auto apply = [&](const Configuration& base,
                         const Move& move) -> std::optional<Configuration> {
    Configuration next = base;
    next.replicas[move.type] += move.delta;
    if (next.replicas[move.type] < constraints.MinFor(move.type) ||
        next.replicas[move.type] > constraints.MaxFor(move.type)) {
      return std::nullopt;
    }
    return next;
  };

  const auto objective = [&](const Assessment& assessment) {
    return assessment.cost +
           annealing.infeasibility_penalty *
               ViolationMeasure(assessment, goals);
  };

  SearchResult result;
  SearchScope scope("annealing", &result, search.trace);
  search.trace = scope.context();
  SearchBoundary boundary(search);
  Configuration current = MinimalConfig(constraints, k);
  WFMS_ASSIGN_OR_RETURN(
      Assessment current_assessment,
      AssessCounted(current, goals, cost, /*avail_guess=*/nullptr, search,
                    &result));
  double current_objective = objective(current_assessment);

  bool have_best = current_assessment.Satisfies();
  Configuration best = current;
  double best_cost = current_assessment.cost;
  Assessment best_assessment = current_assessment;

  std::vector<std::future<void>> pipeline;
  const auto prefill = [&](std::optional<Configuration> candidate) {
    if (!candidate.has_value()) return;
    auto submitted =
        pool().Submit([this, config = *std::move(candidate), &goals, &cost]() {
          auto speculative = AssessInternal(config, goals, cost,
                                            /*avail_guess=*/nullptr,
                                            /*cache_hit=*/nullptr);
          (void)speculative;
        });
    // A pool already shutting down just skips the speculation.
    if (submitted.ok()) pipeline.push_back(*std::move(submitted));
  };

  double temperature = annealing.initial_temperature;
  for (size_t iter = 0; iter < moves.size(); ++iter) {
    if (boundary.ShouldStop("annealing", &result)) break;
    const std::optional<Configuration> proposal = apply(current, moves[iter]);
    if (!proposal.has_value()) continue;

    // Pipeline: while this proposal is assessed, stage both possible
    // next-iteration proposals (cache prefills, not evaluations).
    if (num_threads_ > 1 && iter + 1 < moves.size()) {
      prefill(apply(*proposal, moves[iter + 1]));  // accept branch
      prefill(apply(current, moves[iter + 1]));    // reject branch
    }

    WFMS_ASSIGN_OR_RETURN(
        Assessment assessment,
        AssessCounted(*proposal, goals, cost, /*avail_guess=*/nullptr, search,
                      &result));
    if (!assessment.error.ok()) {
      // Failed assessment: rejected like any uphill move (recorded in
      // result.failed_candidates by AssessCounted).
      temperature *= annealing.cooling;
      continue;
    }
    const double proposal_objective = objective(assessment);
    const double diff = proposal_objective - current_objective;
    if (diff <= 0.0 ||
        moves[iter].uniform <
            std::exp(-diff / std::max(temperature, 1e-9))) {
      current = *proposal;
      current_objective = proposal_objective;
      if (assessment.Satisfies() &&
          (!have_best || assessment.cost < best_cost)) {
        have_best = true;
        best = *proposal;
        best_cost = assessment.cost;
        best_assessment = assessment;
      }
      current_assessment = std::move(assessment);
    }
    temperature *= annealing.cooling;
  }
  for (auto& future : pipeline) future.wait();

  if (have_best) {
    result.config = best;
    result.cost = best_cost;
    result.satisfied = true;
    result.assessment = std::move(best_assessment);
  } else {
    result.config = current;
    result.cost = current_assessment.cost;
    result.satisfied = false;
    result.assessment = std::move(current_assessment);
  }
  return result;
}

Result<SearchResult> ConfigurationTool::BranchAndBoundMinCost(
    const Goals& goals, const SearchConstraints& constraints,
    const CostModel& cost, const SearchOptions& search_in) const {
  SearchOptions search = NormalizedDeadline(search_in);
  const size_t k = env_->num_server_types();
  WFMS_RETURN_NOT_OK(constraints.Validate(k));
  SearchResult result;
  SearchScope scope("branch_and_bound", &result, search.trace);
  search.trace = scope.context();
  SearchBoundary boundary(search);

  // Feasibility bound: if the most generous configuration fails, nothing
  // in the box can succeed (goals are monotone in replication). When the
  // probe itself fails assessment the bound is unverified: the early abort
  // is skipped and lattice exhaustion below degrades to a best-effort
  // unsatisfied result instead of an internal error.
  Configuration max_config;
  max_config.replicas.resize(k);
  for (size_t x = 0; x < k; ++x) max_config.replicas[x] = constraints.MaxFor(x);
  WFMS_ASSIGN_OR_RETURN(
      Assessment max_assessment,
      AssessCounted(max_config, goals, cost, /*avail_guess=*/nullptr, search,
                    &result));
  const bool bound_verified = max_assessment.error.ok();
  if (bound_verified && !max_assessment.Satisfies()) {
    result.config = max_config;
    result.cost = max_assessment.cost;
    result.satisfied = false;
    result.assessment = std::move(max_assessment);
    return result;
  }

  // Best-first search in cost order over the lattice of configurations.
  // Each node expands by adding one replica to one type; because the cost
  // model is additive with positive per-server costs, nodes are dequeued
  // in nondecreasing cost, so the first satisfying node is optimal. The
  // frontier is drained in equal-cost waves (bounded, sorted by replica
  // vector) that the pool assesses concurrently; any satisfying member of
  // a wave ties the sequential optimum on cost, and taking the first in
  // sorted order keeps the recommendation deterministic.
  struct Node {
    double cost;
    std::vector<int> replicas;
    bool operator>(const Node& other) const { return cost > other.cost; }
  };
  std::priority_queue<Node, std::vector<Node>, std::greater<Node>> frontier;
  std::set<std::vector<int>> visited;
  const Configuration minimal = MinimalConfig(constraints, k);
  frontier.push({cost.Cost(minimal.replicas), minimal.replicas});
  visited.insert(minimal.replicas);

  std::vector<Configuration> wave;
  wave.reserve(kBnbWaveSize);
  Assessment last_assessment = max_assessment;
  while (!frontier.empty()) {
    if (boundary.ShouldStop("branch-and-bound", &result)) {
      result.config = max_config;
      result.cost = cost.Cost(max_config.replicas);
      result.satisfied = false;
      result.assessment = std::move(last_assessment);
      return result;
    }
    FrontierDepthGauge().Set(static_cast<double>(frontier.size()));
    const double wave_cost = frontier.top().cost;
    wave.clear();
    while (!frontier.empty() && wave.size() < kBnbWaveSize &&
           frontier.top().cost == wave_cost) {
      wave.emplace_back(frontier.top().replicas);
      frontier.pop();
    }
    std::sort(wave.begin(), wave.end(),
              [](const Configuration& a, const Configuration& b) {
                return a.replicas < b.replicas;
              });
    WFMS_ASSIGN_OR_RETURN(
        std::vector<Assessment> assessed,
        AssessBatchInternal(wave, goals, cost, search, &result));
    for (size_t i = 0; i < assessed.size(); ++i) {
      if (assessed[i].Satisfies()) {
        result.config = wave[i];
        result.cost = assessed[i].cost;
        result.satisfied = true;
        result.assessment = std::move(assessed[i]);
        return result;
      }
    }
    last_assessment = std::move(assessed.back());
    for (const Configuration& node : wave) {
      for (size_t x = 0; x < k; ++x) {
        if (node.replicas[x] >= constraints.MaxFor(x)) continue;
        std::vector<int> next = node.replicas;
        ++next[x];
        if (visited.insert(next).second) {
          frontier.push({cost.Cost(next), std::move(next)});
        }
      }
    }
  }
  if (bound_verified) {
    return Status::Internal(
        "branch-and-bound exhausted the lattice despite a feasible maximum");
  }
  // The feasibility probe failed assessment, so exhaustion without a
  // satisfying candidate is a legitimate outcome: report best-effort.
  result.config = max_config;
  result.cost = cost.Cost(max_config.replicas);
  result.satisfied = false;
  result.assessment = std::move(last_assessment);
  return result;
}

std::string ConfigurationTool::RenderRecommendation(
    const SearchResult& result) const {
  std::ostringstream os;
  os << (result.satisfied ? "Recommended configuration "
                          : "No satisfying configuration found; best "
                            "candidate ")
     << result.config.ToString() << " (cost " << result.cost << ", "
     << result.evaluations << " evaluations)\n";
  const auto& waiting = result.assessment.performability.expected_waiting;
  const workflow::SiteTopology& topology = env_->topology;
  const bool sited = result.config.has_sites() && !topology.empty();
  for (size_t x = 0; x < env_->num_server_types(); ++x) {
    os << "  " << env_->servers.type(x).name << ": " << result.config.replicas[x]
       << " server(s)";
    if (sited) {
      os << " [";
      const size_t s = topology.num_sites();
      for (size_t a = 0; a < s; ++a) {
        if (a > 0) os << ", ";
        os << topology.sites[a].name << "="
           << result.config.SiteCount(x, a);
      }
      os << "]";
    }
    os << ", W = ";
    if (x >= waiting.size()) {
      os << "unknown";  // the final assessment failed; no waiting data
    } else if (std::isinf(waiting[x])) {
      os << "saturated";
    } else {
      os << FormatMinutes(waiting[x]);
    }
    os << "\n";
  }
  if (result.assessment.error.ok()) {
    os << "  availability: "
       << result.assessment.performability.availability << " (downtime "
       << FormatMinutes(UnavailabilityToDowntimeMinutesPerYear(
              1.0 - result.assessment.performability.availability))
       << "/year)\n";
  } else {
    os << "  assessment failed: " << result.assessment.error.ToString()
       << "\n";
  }
  if (!result.assessment.contingencies.empty()) {
    os << "  survivability:\n";
    for (const ContingencyAssessment& c : result.assessment.contingencies) {
      os << "    " << c.label << ": availability " << c.availability
         << ", W = ";
      if (std::isinf(c.max_expected_waiting)) {
        os << "saturated";
      } else {
        os << FormatMinutes(c.max_expected_waiting);
      }
      os << (c.satisfied ? " [ok]" : " [violated]") << "\n";
    }
  }
  if (!result.failed_candidates.empty()) {
    os << "  " << result.failed_candidates.size()
       << " candidate(s) failed assessment and were skipped:\n";
    for (const FailedCandidate& failed : result.failed_candidates) {
      os << "    " << failed.config.ToString() << ": "
         << failed.error.ToString()
         << (failed.retried_exact ? " [after exact LU retry]" : "") << "\n";
    }
  }
  if (!result.termination.ok()) {
    os << "  note: " << result.termination.ToString() << "\n";
  }
  return os.str();
}

}  // namespace wfms::configtool

#include "workflow/configuration.h"

#include <sstream>

namespace wfms::workflow {

Status Configuration::Validate(size_t num_types) const {
  if (replicas.size() != num_types) {
    return Status::InvalidArgument(
        "configuration has " + std::to_string(replicas.size()) +
        " entries, expected " + std::to_string(num_types));
  }
  for (size_t x = 0; x < replicas.size(); ++x) {
    if (replicas[x] < 1) {
      return Status::InvalidArgument("server type " + std::to_string(x) +
                                     " needs at least one replica");
    }
  }
  return Status::OK();
}

std::string Configuration::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < replicas.size(); ++i) {
    if (i > 0) os << ",";
    os << replicas[i];
  }
  os << ")";
  return os.str();
}

}  // namespace wfms::workflow

#include "statechart/parser.h"

#include <optional>
#include <sstream>
#include <vector>

#include "common/string_util.h"
#include "statechart/builder.h"

namespace wfms::statechart {

namespace {

/// Splits a line into whitespace-separated tokens.
std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i > start) tokens.emplace_back(line.substr(start, i - start));
  }
  return tokens;
}

Status LineError(int line_no, const std::string& message) {
  return Status::ParseError("line " + std::to_string(line_no) + ": " +
                            message);
}

/// Parsed key=value attributes; `action` may repeat.
struct Attributes {
  std::map<std::string, std::string> single;
  std::vector<std::string> actions;
};

Result<Attributes> ParseAttributes(const std::vector<std::string>& tokens,
                                   size_t first, int line_no) {
  Attributes attrs;
  for (size_t i = first; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    const size_t eq = tok.find('=');
    if (eq == std::string::npos || eq == 0) {
      return LineError(line_no, "expected key=value, got '" + tok + "'");
    }
    const std::string key = tok.substr(0, eq);
    const std::string value = tok.substr(eq + 1);
    if (key == "action") {
      attrs.actions.push_back(value);
    } else if (!attrs.single.emplace(key, value).second) {
      return LineError(line_no, "duplicate attribute '" + key + "'");
    }
  }
  return attrs;
}

Result<double> RequireDouble(const Attributes& attrs, const std::string& key,
                             int line_no) {
  const auto it = attrs.single.find(key);
  if (it == attrs.single.end()) {
    return LineError(line_no, "missing attribute '" + key + "'");
  }
  double value = 0.0;
  if (!ParseDouble(it->second, &value)) {
    return LineError(line_no, "attribute '" + key + "' is not a number");
  }
  return value;
}

std::string GetOr(const Attributes& attrs, const std::string& key,
                  const std::string& fallback) {
  const auto it = attrs.single.find(key);
  return it == attrs.single.end() ? fallback : it->second;
}

}  // namespace

Result<ChartRegistry> ParseCharts(std::string_view text) {
  ChartRegistry registry;
  std::optional<ChartBuilder> builder;
  std::string current_chart;

  int line_no = 0;
  std::istringstream stream{std::string(text)};
  std::string raw_line;
  while (std::getline(stream, raw_line)) {
    ++line_no;
    std::string_view line = StripWhitespace(raw_line);
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> tokens = Tokenize(line);
    const std::string& keyword = tokens[0];

    if (keyword == "chart") {
      if (builder.has_value()) {
        return LineError(line_no, "nested 'chart' (missing 'end'?)");
      }
      if (tokens.size() != 2) {
        return LineError(line_no, "usage: chart NAME");
      }
      current_chart = tokens[1];
      builder.emplace(current_chart);
      continue;
    }
    if (!builder.has_value()) {
      return LineError(line_no, "'" + keyword + "' outside of a chart block");
    }

    if (keyword == "end") {
      if (tokens.size() != 1) return LineError(line_no, "usage: end");
      auto chart = builder->Build();
      if (!chart.ok()) {
        return chart.status().WithContext("line " + std::to_string(line_no));
      }
      WFMS_RETURN_NOT_OK(registry.AddChart(*std::move(chart)));
      builder.reset();
    } else if (keyword == "state") {
      if (tokens.size() < 2) {
        return LineError(line_no, "usage: state NAME key=value...");
      }
      WFMS_ASSIGN_OR_RETURN(Attributes attrs,
                            ParseAttributes(tokens, 2, line_no));
      WFMS_ASSIGN_OR_RETURN(double residence,
                            RequireDouble(attrs, "residence", line_no));
      builder->AddActivityState(tokens[1], GetOr(attrs, "activity", ""),
                                residence);
    } else if (keyword == "compound") {
      if (tokens.size() < 2) {
        return LineError(line_no, "usage: compound NAME subcharts=A,B");
      }
      WFMS_ASSIGN_OR_RETURN(Attributes attrs,
                            ParseAttributes(tokens, 2, line_no));
      const std::string subs = GetOr(attrs, "subcharts", "");
      if (subs.empty()) {
        return LineError(line_no, "compound state needs subcharts=...");
      }
      builder->AddCompositeState(tokens[1],
                                 SplitString(subs, ',', /*skip_empty=*/true));
    } else if (keyword == "initial") {
      if (tokens.size() != 2) return LineError(line_no, "usage: initial NAME");
      builder->SetInitial(tokens[1]);
    } else if (keyword == "final") {
      if (tokens.size() != 2) return LineError(line_no, "usage: final NAME");
      builder->SetFinal(tokens[1]);
    } else if (keyword == "trans") {
      if (tokens.size() < 4 || tokens[2] != "->") {
        return LineError(line_no, "usage: trans FROM -> TO key=value...");
      }
      WFMS_ASSIGN_OR_RETURN(Attributes attrs,
                            ParseAttributes(tokens, 4, line_no));
      double prob = 1.0;
      if (attrs.single.count("prob") > 0) {
        WFMS_ASSIGN_OR_RETURN(prob, RequireDouble(attrs, "prob", line_no));
      }
      EcaRule rule;
      rule.event = GetOr(attrs, "event", "");
      rule.condition = GetOr(attrs, "cond", "");
      rule.actions = attrs.actions;
      builder->AddTransition(tokens[1], tokens[3], prob, std::move(rule));
    } else {
      return LineError(line_no, "unknown keyword '" + keyword + "'");
    }
  }
  if (builder.has_value()) {
    return Status::ParseError("chart '" + current_chart +
                              "' not closed with 'end'");
  }
  if (registry.size() == 0) {
    return Status::ParseError("document contains no charts");
  }
  WFMS_RETURN_NOT_OK(registry.ValidateReferences());
  return registry;
}

Result<StateChart> ParseSingleChart(std::string_view text) {
  WFMS_ASSIGN_OR_RETURN(ChartRegistry registry, ParseCharts(text));
  if (registry.size() != 1) {
    return Status::ParseError("expected exactly one chart, found " +
                              std::to_string(registry.size()));
  }
  const std::string name = registry.ChartNames()[0];
  WFMS_ASSIGN_OR_RETURN(const StateChart* chart, registry.GetChart(name));
  return *chart;  // copy out of the registry
}

}  // namespace wfms::statechart

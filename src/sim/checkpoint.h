// Crash-safe checkpointing for the discrete-event simulator (see
// DESIGN.md "Checkpointing and recovery").
//
// The simulator's live state is a priority queue of closures — not
// serializable. What *is* durable is the run's determinism: given the
// same environment, options, and seed, the event sequence is bit-identical
// (FIFO tie-breaking, per-pool split RNG streams). A checkpoint is
// therefore a *replay cursor*: the number of events executed, the clock,
// the master and per-pool RNG states, pool occupancy (up/busy/parked),
// the pending-event count, and the next instance id — everything needed
// to recognize "the replay has reached exactly the state the crashed run
// was in". Resume re-runs the simulation from t=0 and, at the saved
// cursor, verifies the live state against the checkpoint word for word:
// a match proves the resumed run is replaying the crashed run's
// trajectory (and will finish with its exact statistics); a mismatch —
// wrong binary version, different option, cosmic-ray file damage that
// slipped past the CRC — fails loudly with the first diverging field.
//
// A fingerprint of the environment and every option that shapes the event
// stream keys the checkpoint, so a cursor from a different scenario,
// seed, or fault schedule is rejected before any replay happens.
#ifndef WFMS_SIM_CHECKPOINT_H_
#define WFMS_SIM_CHECKPOINT_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "sim/simulator.h"
#include "workflow/environment.h"

namespace wfms::sim {

/// The replay cursor: a word-for-word image of the simulator's
/// deterministic state at an event boundary.
struct SimulationCheckpoint {
  uint64_t fingerprint = 0;
  int64_t events_executed = 0;
  double sim_time = 0.0;
  int64_t next_instance_id = 0;
  uint64_t pending_events = 0;
  std::array<uint64_t, 4> master_rng{};
  /// Per server type, aligned with the environment's registry.
  std::vector<std::array<uint64_t, 4>> pool_rngs;
  std::vector<int> pool_up;
  std::vector<int> pool_busy;
  std::vector<int> pool_parked;
};

/// Hash of the environment plus every SimulationOptions field that shapes
/// the event stream (config, dispatch, duration, warmup, seed, failure
/// switches, fault schedule). Checkpoint-only options (path, cadence,
/// resume, cancel) and audit-trail recording are excluded: they never
/// change the trajectory.
uint64_t SimulationFingerprint(const workflow::Environment& env,
                               const SimulationOptions& options);

/// Atomically writes `state` to `path`.
Status WriteSimulationCheckpoint(const std::string& path,
                                 const SimulationCheckpoint& state);

/// Loads and validates a checkpoint; a fingerprint mismatch is a
/// FailedPrecondition naming both hashes.
Result<SimulationCheckpoint> ReadSimulationCheckpoint(const std::string& path,
                                                      uint64_t fingerprint);

/// Compares the saved cursor against the live state captured when the
/// replay reached saved.events_executed. OK iff every field matches
/// bit-for-bit; otherwise FailedPrecondition naming the first diverging
/// field and both values.
Status VerifyReplayCursor(const SimulationCheckpoint& saved,
                          const SimulationCheckpoint& replayed);

}  // namespace wfms::sim

#endif  // WFMS_SIM_CHECKPOINT_H_

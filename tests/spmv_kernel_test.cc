// Equivalence sweep for the blocked/SIMD SpMV kernels: on hundreds of
// random sparse matrices, the blocked forward multiply must match the
// scalar reference bit-for-bit under every pool configuration, and the
// sequential transposed scatter must match its reference bit-for-bit.
// The parallel transposed scatter is pinned to a weaker contract —
// deterministic and lane-count independent (fixed panel decomposition) —
// which is also exercised here.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "linalg/sparse_matrix.h"
#include "linalg/spmv.h"
#include "linalg/vector.h"

namespace wfms::linalg {
namespace {

struct RandomProblem {
  SparseMatrix a;
};

/// Random rectangular sparse matrix with ragged rows (including empty
/// ones) and values spanning several orders of magnitude, so accumulation
/// order differences would actually show up in the low bits.
RandomProblem MakeProblem(uint64_t seed) {
  Rng rng(seed);
  const size_t rows = 1 + rng.NextUint64(60);
  const size_t cols = 1 + rng.NextUint64(60);
  SparseMatrixBuilder builder(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    if (rng.NextBernoulli(0.1)) continue;  // empty row
    const size_t nnz = 1 + rng.NextUint64(cols);
    for (size_t k = 0; k < nnz; ++k) {
      const double magnitude = std::pow(10.0, rng.NextDouble(-6.0, 6.0));
      const double value = rng.NextBernoulli(0.5) ? magnitude : -magnitude;
      builder.Add(r, rng.NextUint64(cols), value);
    }
  }
  return RandomProblem{std::move(builder).Build()};
}

TEST(SpmvKernelTest, BlockedMultiplyMatchesReferenceBitForBit) {
  for (uint64_t trial = 0; trial < 200; ++trial) {
    RandomProblem p = MakeProblem(1000 + trial);
    Rng rng(5000 + trial);
    Vector x(p.a.cols());
    for (double& v : x) v = rng.NextDouble(-3.0, 3.0);

    Vector reference;
    ReferenceMultiply(p.a, x, &reference);

    Vector sequential;
    BlockedMultiply(p.a, x, &sequential);
    ASSERT_EQ(sequential.size(), reference.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(sequential[i], reference[i])
          << "trial " << trial << " row " << i << " (sequential)";
    }

    // Per-row ownership makes the parallel path bit-identical too, for
    // any lane count.
    ThreadPool pool(1 + trial % 7);
    Vector parallel;
    BlockedMultiply(p.a, x, &parallel, &pool);
    for (size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(parallel[i], reference[i])
          << "trial " << trial << " row " << i << " (parallel)";
    }
  }
}

TEST(SpmvKernelTest, SequentialTransposedMatchesReferenceBitForBit) {
  for (uint64_t trial = 0; trial < 200; ++trial) {
    RandomProblem p = MakeProblem(2000 + trial);
    Rng rng(7000 + trial);
    Vector x(p.a.rows());
    for (double& v : x) {
      v = rng.NextBernoulli(0.15) ? 0.0 : rng.NextDouble(-3.0, 3.0);
    }

    Vector reference;
    ReferenceMultiplyTransposed(p.a, x, &reference);

    // And the reference itself must agree with the historical member
    // function the solvers used before this engine existed.
    const Vector historical = p.a.MultiplyTransposed(x);
    ASSERT_EQ(historical.size(), reference.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(historical[i], reference[i]) << "trial " << trial;
    }

    Vector sequential;
    BlockedMultiplyTransposed(p.a, x, &sequential);
    ASSERT_EQ(sequential.size(), reference.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(sequential[i], reference[i])
          << "trial " << trial << " col " << i;
    }
  }
}

TEST(SpmvKernelTest, ParallelTransposedIsLaneCountIndependent) {
  for (uint64_t trial = 0; trial < 50; ++trial) {
    RandomProblem p = MakeProblem(3000 + trial);
    Rng rng(9000 + trial);
    Vector x(p.a.rows());
    for (double& v : x) v = rng.NextDouble(-3.0, 3.0);

    ThreadPool pool_a(2), pool_b(7);
    SpmvWorkspace ws_a, ws_b;
    Vector with_2, with_7;
    BlockedMultiplyTransposed(p.a, x, &with_2, &ws_a, &pool_a);
    BlockedMultiplyTransposed(p.a, x, &with_7, &ws_b, &pool_b);
    ASSERT_EQ(with_2.size(), with_7.size());
    for (size_t i = 0; i < with_2.size(); ++i) {
      // The fixed panel decomposition makes the association identical for
      // every lane count, so this comparison is exact, not approximate.
      ASSERT_EQ(with_2[i], with_7[i]) << "trial " << trial << " col " << i;
    }

    // And the parallel result stays numerically equivalent to the
    // reference (same sums up to reassociation round-off).
    Vector reference;
    ReferenceMultiplyTransposed(p.a, x, &reference);
    for (size_t i = 0; i < reference.size(); ++i) {
      const double scale = std::max(1.0, std::fabs(reference[i]));
      ASSERT_NEAR(with_2[i], reference[i], 1e-9 * scale)
          << "trial " << trial << " col " << i;
    }
  }
}

TEST(SpmvKernelTest, PanelsCoverAllRowsInOrder) {
  for (uint64_t trial = 0; trial < 50; ++trial) {
    RandomProblem p = MakeProblem(4000 + trial);
    const RowPanels panels = BuildRowPanels(p.a, 1 + trial % 9);
    ASSERT_GE(panels.num_panels(), 1u);
    EXPECT_EQ(panels.starts.front(), 0u);
    EXPECT_EQ(panels.starts.back(), p.a.rows());
    for (size_t i = 1; i < panels.starts.size(); ++i) {
      EXPECT_LE(panels.starts[i - 1], panels.starts[i]);
    }
  }
}

}  // namespace
}  // namespace wfms::linalg

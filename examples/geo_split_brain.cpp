// Split-brain showcase (the ISSUE acceptance scenario): a placement that
// meets every steady-state goal but dies the moment the WAN partitions —
// all engines in the EU, all application servers in the US — versus the
// survivable placement the per-site search recommends under
// --survive-sites=1 with degraded goals. The analytic partition
// contingency is then cross-checked against a simulated replay that pins
// the partition for the whole run (overlay mode: the random per-replica
// failure processes stay on).
//
// Build & run:  ./build/examples/geo_split_brain

#include <cstdio>

#include "avail/availability_model.h"
#include "configtool/tool.h"
#include "sim/fault_schedule.h"
#include "sim/simulator.h"
#include "workflow/configuration.h"
#include "workflow/scenarios.h"

namespace {

double SimulateUnderPartition(const wfms::workflow::Environment& env,
                              const wfms::workflow::Configuration& config) {
  using namespace wfms;
  auto schedule = sim::ParseFaultSchedule("mode overlay\nat 0 partition EU|US\n",
                                          env.servers, &env.topology);
  if (!schedule.ok()) return -1.0;
  sim::SimulationOptions options;
  options.config = config;
  options.duration = 20000.0;
  options.warmup = 1000.0;
  options.seed = 7;
  options.enable_failures = true;
  options.faults = *schedule;
  auto simulator = sim::Simulator::Create(env, options);
  if (!simulator.ok()) return -1.0;
  auto result = simulator->Run();
  if (!result.ok()) return -1.0;
  return result->observed_availability;
}

}  // namespace

int main() {
  using namespace wfms;

  auto env = workflow::GeoEpEnvironment();
  if (!env.ok()) {
    std::fprintf(stderr, "environment: %s\n", env.status().ToString().c_str());
    return 1;
  }
  auto tool = configtool::ConfigurationTool::Create(*env);
  if (!tool.ok()) {
    std::fprintf(stderr, "tool: %s\n", tool.status().ToString().c_str());
    return 1;
  }
  tool->set_num_threads(1);  // deterministic evaluation counts

  configtool::Goals goals;
  goals.max_waiting_time = 0.2;
  goals.min_availability = 0.999;
  goals.survive_sites = 1;
  goals.survive_partitions = true;
  goals.degraded_max_waiting_time = 0.2;
  goals.degraded_min_availability = 0.995;

  // The baseline looks healthy in steady state...
  const auto baseline =
      workflow::Configuration::FromSiteCounts({1, 1, 2, 0, 0, 2}, 2);
  auto assessment = tool->Assess(baseline, goals);
  if (!assessment.ok()) {
    std::fprintf(stderr, "assess: %s\n",
                 assessment.status().ToString().c_str());
    return 1;
  }
  std::printf("Baseline %s: availability %.8f, waiting goal %s\n",
              baseline.ToString().c_str(),
              assessment->performability.availability,
              assessment->meets_waiting_goal ? "met" : "NOT met");
  // ...but no side of a partition hosts every server type:
  for (const auto& c : assessment->contingencies) {
    std::printf("  %-18s availability %.8f  %s\n", c.label.c_str(),
                c.availability, c.satisfied ? "ok" : "VIOLATED");
  }

  // The placement search fixes it (per-site coverage moves make the
  // one-site-down contingencies reachable from any starting placement).
  auto result = tool->GreedySiteMinCost(goals);
  if (!result.ok()) {
    std::fprintf(stderr, "search: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("\nRecommended %s: cost %.0f, %s (%d evaluations)\n",
              result->config.ToString().c_str(), result->cost,
              result->satisfied ? "degraded goals met under every contingency"
                                : "goals NOT met",
              result->evaluations);

  // Cross-check: analytic partition contingency vs a simulated replay
  // with the partition pinned for the whole horizon.
  auto model =
      avail::AvailabilityModel::Create(env->servers, {}, &env->topology);
  if (!model.ok()) {
    std::fprintf(stderr, "model: %s\n", model.status().ToString().c_str());
    return 1;
  }
  avail::SiteContingency partition;
  partition.partitioned_pairs = 0b1;
  for (const workflow::Configuration& config : {baseline, result->config}) {
    auto analytic = model->EvaluateSites(config, partition);
    if (!analytic.ok()) {
      std::fprintf(stderr, "analytic: %s\n",
                   analytic.status().ToString().c_str());
      return 1;
    }
    const double simulated = SimulateUnderPartition(*env, config);
    std::printf("Partitioned %s: analytic availability %.6f, "
                "simulated replay %.6f\n",
                config.ToString().c_str(), analytic->availability, simulated);
  }
  return 0;
}

# Empty dependencies file for wfms_perf.
# This may be replaced when dependencies are built.

# Empty dependencies file for wfms_statechart.
# This may be replaced when dependencies are built.

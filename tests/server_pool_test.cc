#include "sim/server_pool.h"

#include <gtest/gtest.h>

#include <cmath>

#include "queueing/mg1.h"

namespace wfms::sim {
namespace {

/// Drives Poisson arrivals at `rate` into the pool until `duration`.
void DrivePoisson(EventQueue* queue, ServerPool* pool, Rng* rng, double rate,
                  double duration) {
  auto arrive = std::make_shared<std::function<void()>>();
  *arrive = [=]() {
    pool->Submit();
    const double next = queue->now() + rng->NextExponential(rate);
    if (next <= duration) queue->ScheduleAt(next, *arrive);
  };
  queue->ScheduleAt(rng->NextExponential(rate), *arrive);
}

TEST(ServerPoolTest, Mm1WaitingMatchesTheory) {
  EventQueue queue;
  Rng rng(11);
  const double rate = 0.8;
  const auto service = queueing::ExponentialService(1.0);
  ServerPool pool(&queue, rng.Split(), 1, service, 0.0, 0.0,
                  /*warmup_end=*/2000.0);
  pool.Start();
  DrivePoisson(&queue, &pool, &rng, rate, 100000.0);
  queue.RunUntil(100000.0);
  pool.FinishStats();

  auto theory = queueing::Mg1Metrics(rate, service);
  ASSERT_TRUE(theory.ok());
  EXPECT_GT(pool.stats().waiting_time.count(), 50000);
  EXPECT_NEAR(pool.stats().waiting_time.mean(), theory->mean_waiting_time,
              0.12 * theory->mean_waiting_time);
  EXPECT_NEAR(pool.stats().busy_servers.time_average(), theory->utilization,
              0.02);
  EXPECT_NEAR(pool.stats().service_time.mean(), 1.0, 0.02);
}

TEST(ServerPoolTest, DeterministicServiceMatchesMd1) {
  EventQueue queue;
  Rng rng(13);
  const double rate = 0.7;
  const auto service = queueing::DeterministicService(1.0);
  ServerPool pool(&queue, rng.Split(), 1, service, 0.0, 0.0, 1000.0);
  pool.Start();
  DrivePoisson(&queue, &pool, &rng, rate, 60000.0);
  queue.RunUntil(60000.0);
  pool.FinishStats();
  auto theory = queueing::Mg1Metrics(rate, service);
  ASSERT_TRUE(theory.ok());
  EXPECT_NEAR(pool.stats().waiting_time.mean(), theory->mean_waiting_time,
              0.1 * theory->mean_waiting_time);
  // Every drawn service time is exactly the mean.
  EXPECT_NEAR(pool.stats().service_time.stddev(), 0.0, 1e-12);
}

TEST(ServerPoolTest, HighVarianceServiceWaitsLonger) {
  const double rate = 0.6;
  double waits[2] = {0, 0};
  const queueing::ServiceMoments services[2] = {
      queueing::ExponentialService(1.0),
      *queueing::ServiceFromMeanScv(1.0, 4.0)};
  for (int v = 0; v < 2; ++v) {
    EventQueue queue;
    Rng rng(17);
    ServerPool pool(&queue, rng.Split(), 1, services[v], 0.0, 0.0, 1000.0);
    pool.Start();
    DrivePoisson(&queue, &pool, &rng, rate, 120000.0);
    queue.RunUntil(120000.0);
    pool.FinishStats();
    waits[v] = pool.stats().waiting_time.mean();
  }
  EXPECT_GT(waits[1], waits[0] * 1.5);
}

TEST(ServerPoolTest, TwoServersShareRoundRobin) {
  EventQueue queue;
  Rng rng(19);
  const double rate = 1.2;
  const auto service = queueing::ExponentialService(1.0);
  ServerPool pool(&queue, rng.Split(), 2, service, 0.0, 0.0, 1000.0);
  pool.Start();
  DrivePoisson(&queue, &pool, &rng, rate, 60000.0);
  queue.RunUntil(60000.0);
  pool.FinishStats();
  // Offered load 1.2 on two servers: busy average approx 1.2.
  EXPECT_NEAR(pool.stats().busy_servers.time_average(), 1.2, 0.05);
  EXPECT_EQ(pool.up_count(), 2);
}

TEST(ServerPoolTest, FailuresReduceUptimeAndTriggerFailover) {
  EventQueue queue;
  Rng rng(23);
  // Fast failure/repair cycle so statistics converge quickly:
  // MTTF 50, MTTR 10 -> per-server availability 5/6.
  const double fail = 1.0 / 50.0;
  const double repair = 1.0 / 10.0;
  ServerPool pool(&queue, rng.Split(), 2, queueing::ExponentialService(0.5),
                  fail, repair, 2000.0);
  pool.Start();
  DrivePoisson(&queue, &pool, &rng, 1.0, 100000.0);
  queue.RunUntil(100000.0);
  pool.FinishStats();
  const double per_server_avail = repair / (fail + repair);
  EXPECT_NEAR(pool.stats().up_servers.time_average(), 2.0 * per_server_avail,
              0.05);
  EXPECT_GT(pool.stats().failovers, 0);
  // Work still completes.
  EXPECT_GT(pool.stats().completed_requests, 90000 * 0.9);
}

TEST(ServerPoolTest, ParkedRequestsSurviveTotalOutage) {
  EventQueue queue;
  Rng rng(29);
  ServerPool pool(&queue, rng.Split(), 1, queueing::ExponentialService(0.1),
                  1.0 / 20.0, 1.0 / 5.0, 0.0);
  pool.Start();
  DrivePoisson(&queue, &pool, &rng, 2.0, 20000.0);
  queue.RunUntil(30000.0);  // drain period
  pool.FinishStats();
  // All submitted requests are eventually served despite outages.
  EXPECT_GT(pool.stats().completed_requests, 39000);
  EXPECT_LT(pool.stats().up_servers.time_average(), 1.0);
}

TEST(ServerPoolTest, CallbacksFire) {
  EventQueue queue;
  Rng rng(31);
  ServerPool pool(&queue, rng.Split(), 1, queueing::ExponentialService(0.5),
                  1.0 / 30.0, 1.0 / 5.0, 0.0);
  int up_changes = 0;
  int services = 0;
  pool.SetUpChangeCallback([&] { ++up_changes; });
  pool.SetServiceCallback([&](double t) {
    EXPECT_GT(t, 0.0);
    ++services;
  });
  pool.Start();
  DrivePoisson(&queue, &pool, &rng, 0.5, 5000.0);
  queue.RunUntil(5000.0);
  EXPECT_GT(up_changes, 10);
  EXPECT_GT(services, 1000);
}

}  // namespace
}  // namespace wfms::sim

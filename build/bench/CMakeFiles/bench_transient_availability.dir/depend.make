# Empty dependencies file for bench_transient_availability.
# This may be replaced when dependencies are built.

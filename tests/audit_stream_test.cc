// The bounded MPSC audit stream: FIFO ordering, backpressure vs drop
// semantics, close/drain protocol, and producer/consumer concurrency
// (this test is part of the TSan selection — see .github/workflows/ci.yml).
#include "adapt/audit_stream.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace wfms::adapt {
namespace {

AuditEvent Arrival(double time) {
  workflow::ArrivalRecord record;
  record.workflow_type = "EP";
  record.arrival_time = time;
  return record;
}

TEST(AuditStreamTest, EventTimeCoversEveryAlternative) {
  EXPECT_DOUBLE_EQ(EventTime(Arrival(1.5)), 1.5);
  workflow::StateVisitRecord visit;
  visit.leave_time = 2.5;
  EXPECT_DOUBLE_EQ(EventTime(AuditEvent(visit)), 2.5);
  workflow::ServiceRecord service;
  service.time = 3.5;
  EXPECT_DOUBLE_EQ(EventTime(AuditEvent(service)), 3.5);
  workflow::CompletionRecord completion;
  completion.end_time = 4.5;
  EXPECT_DOUBLE_EQ(EventTime(AuditEvent(completion)), 4.5);
  workflow::ServerCountRecord count;
  count.time = 5.5;
  EXPECT_DOUBLE_EQ(EventTime(AuditEvent(count)), 5.5);
}

TEST(AuditStreamTest, FifoOrderSingleProducer) {
  AuditStream stream(128);
  for (int i = 0; i < 100; ++i) stream.Publish(Arrival(i));
  std::vector<AuditEvent> out;
  EXPECT_EQ(stream.Drain(&out), 100u);
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(EventTime(out[i]), i);
  EXPECT_EQ(stream.published(), 100u);
  EXPECT_EQ(stream.dropped(), 0u);
}

TEST(AuditStreamTest, TryPublishDropsWhenFull) {
  AuditStream stream(4, AuditStream::Overflow::kDropNewest);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(stream.TryPublish(Arrival(i)));
  EXPECT_FALSE(stream.TryPublish(Arrival(4)));
  EXPECT_FALSE(stream.TryPublish(Arrival(5)));
  EXPECT_EQ(stream.size(), 4u);
  EXPECT_EQ(stream.published(), 4u);
  EXPECT_EQ(stream.dropped(), 2u);
  // Draining frees capacity again.
  std::vector<AuditEvent> out;
  stream.Drain(&out, 2);
  EXPECT_TRUE(stream.TryPublish(Arrival(6)));
}

TEST(AuditStreamTest, SinkInterfaceHonorsOverflowPolicy) {
  AuditStream lossy(1, AuditStream::Overflow::kDropNewest);
  workflow::AuditSink& sink = lossy;
  sink.OnArrival({"EP", 1.0});
  sink.OnArrival({"EP", 2.0});  // dropped, must not block
  EXPECT_EQ(lossy.published(), 1u);
  EXPECT_EQ(lossy.dropped(), 1u);
}

TEST(AuditStreamTest, PublishAfterCloseDrops) {
  AuditStream stream(8);
  stream.Publish(Arrival(1.0));
  stream.Close();
  EXPECT_TRUE(stream.closed());
  stream.Publish(Arrival(2.0));  // must not block
  EXPECT_FALSE(stream.TryPublish(Arrival(3.0)));
  EXPECT_EQ(stream.published(), 1u);
  EXPECT_EQ(stream.dropped(), 2u);
  // Queued events survive the close.
  std::vector<AuditEvent> out;
  EXPECT_EQ(stream.WaitDrain(&out), 1u);
  EXPECT_EQ(stream.WaitDrain(&out), 0u);  // closed and empty: terminate
}

TEST(AuditStreamTest, PublishBlocksUntilConsumerDrains) {
  AuditStream stream(2);
  stream.Publish(Arrival(0.0));
  stream.Publish(Arrival(1.0));
  std::thread producer([&stream] {
    stream.Publish(Arrival(2.0));  // blocks until the drain below
    stream.Close();
  });
  std::vector<AuditEvent> out;
  while (out.size() < 3) stream.WaitDrain(&out);
  producer.join();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(EventTime(out[2]), 2.0);
  EXPECT_EQ(stream.dropped(), 0u);
}

TEST(AuditStreamTest, WaitDrainBlocksUntilPublish) {
  AuditStream stream(8);
  std::thread producer([&stream] { stream.Publish(Arrival(7.0)); });
  std::vector<AuditEvent> out;
  EXPECT_EQ(stream.WaitDrain(&out), 1u);  // blocks until the publish lands
  producer.join();
  EXPECT_DOUBLE_EQ(EventTime(out[0]), 7.0);
}

// The MPSC contract under contention: several producers block against a
// tiny queue while one consumer drains; nothing is lost or duplicated and
// per-producer order is preserved. This is the TSan workhorse.
TEST(AuditStreamTest, MultiProducerLosslessUnderBackpressure) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  AuditStream stream(8);  // far smaller than the event count
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&stream, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        // Encode (producer, sequence) in the timestamp.
        stream.Publish(Arrival(p * 1000000.0 + i));
      }
    });
  }
  std::thread closer([&producers, &stream] {
    for (auto& t : producers) t.join();
    stream.Close();
  });
  std::vector<AuditEvent> out;
  while (stream.WaitDrain(&out) > 0) {
  }
  closer.join();
  ASSERT_EQ(out.size(), static_cast<size_t>(kProducers * kPerProducer));
  // Per-producer FIFO: sequence numbers strictly increase.
  std::vector<int> next(kProducers, 0);
  for (const AuditEvent& event : out) {
    const double time = EventTime(event);
    const int producer = static_cast<int>(time / 1000000.0);
    const int sequence = static_cast<int>(time - producer * 1000000.0);
    ASSERT_LT(producer, kProducers);
    EXPECT_EQ(sequence, next[producer]);
    ++next[producer];
  }
  EXPECT_EQ(stream.published(), static_cast<uint64_t>(kProducers * kPerProducer));
  EXPECT_EQ(stream.dropped(), 0u);
}

// Lossy mode under contention: published + dropped must account for every
// attempt, with no torn counters.
TEST(AuditStreamTest, MultiProducerDropAccounting) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 300;
  AuditStream stream(16, AuditStream::Overflow::kDropNewest);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&stream] {
      workflow::AuditSink& sink = stream;
      for (int i = 0; i < kPerProducer; ++i) sink.OnArrival({"EP", 1.0});
    });
  }
  std::vector<AuditEvent> out;
  size_t drained = 0;
  // Concurrent consumer; stops when producers are done and queue is empty.
  std::thread consumer([&] {
    while (!stream.closed() || stream.size() > 0) {
      out.clear();
      drained += stream.Drain(&out);
    }
  });
  for (auto& t : producers) t.join();
  stream.Close();
  consumer.join();
  out.clear();
  drained += stream.Drain(&out);
  EXPECT_EQ(stream.published() + stream.dropped(),
            static_cast<uint64_t>(kProducers * kPerProducer));
  EXPECT_EQ(drained, stream.published());
}

}  // namespace
}  // namespace wfms::adapt

#include "performability/performability_model.h"

#include <chrono>
#include <cmath>
#include <limits>

#include "common/metrics.h"
#include "common/trace.h"
#include "queueing/mg1.h"

namespace wfms::performability {

using linalg::Vector;
using workflow::Configuration;

Result<PerformabilityModel> PerformabilityModel::Create(
    const workflow::Environment& env, const PerformabilityOptions& options) {
  WFMS_ASSIGN_OR_RETURN(perf::PerformanceModel perf,
                        perf::PerformanceModel::Create(env, options.analysis));
  WFMS_ASSIGN_OR_RETURN(
      avail::AvailabilityModel availability,
      avail::AvailabilityModel::Create(env.servers, options.availability,
                                       &env.topology));
  return PerformabilityModel(std::move(perf), std::move(availability),
                             options);
}

Result<PerformabilityReport> PerformabilityModel::Evaluate(
    const Configuration& config, const linalg::Vector* avail_guess,
    const markov::SteadyStateOptions* solver_override,
    const avail::SiteContingency* contingency) const {
  if (avail_.site_mode(config)) {
    (void)avail_guess;  // site state spaces have their own shape
    return EvaluateSitePath(
        config, contingency != nullptr ? *contingency : avail::SiteContingency{},
        solver_override);
  }
  if (contingency != nullptr && !contingency->none()) {
    return Status::InvalidArgument(
        "site contingency supplied for a single-site configuration");
  }
  auto& registry = metrics::MetricsRegistry::Global();
  static metrics::Counter& evaluations =
      registry.GetCounter("wfms_performability_evaluations_total");
  static metrics::Histogram& evaluate_seconds =
      registry.GetHistogram("wfms_performability_evaluate_seconds");
  evaluations.Increment();
  trace::TraceSpan span("performability/evaluate", "performability");
  const auto start = std::chrono::steady_clock::now();

  const workflow::Environment& env = perf_.environment();
  const size_t k = env.num_server_types();
  WFMS_RETURN_NOT_OK(config.Validate(k));

  WFMS_ASSIGN_OR_RETURN(
      avail::AvailabilityReport avail_report,
      avail_.Evaluate(config, avail_guess, solver_override));

  // Per-type waiting time depends only on that type's up-count; tabulate
  // w_x(c) for c = 1..Y_x once (c = 0 marks "down", NaN).
  constexpr double kSaturatedMarker =
      std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> wait_table(k);
  const Vector& rates = perf_.total_request_rates();
  for (size_t x = 0; x < k; ++x) {
    wait_table[x].resize(static_cast<size_t>(config.replicas[x]) + 1, 0.0);
    for (int c = 1; c <= config.replicas[x]; ++c) {
      const double per_server = rates[x] / static_cast<double>(c);
      auto queue =
          queueing::Mg1Metrics(per_server, env.servers.type(x).service);
      if (queue.ok()) {
        wait_table[x][static_cast<size_t>(c)] = queue->mean_waiting_time;
      } else if (queue.status().code() == StatusCode::kFailedPrecondition) {
        wait_table[x][static_cast<size_t>(c)] = kSaturatedMarker;
      } else {
        return queue.status();
      }
    }
  }

  PerformabilityReport report;
  report.availability = avail_report.availability;
  report.prob_down = avail_report.unavailability;
  report.solver_iterations = avail_report.solver_iterations;
  report.avail_solver_method = avail_report.solver_method;
  report.avail_solver_diagnostics = avail_report.solver_diagnostics;
  report.solver_rungs =
      !avail_report.solver_attempts.empty()
          ? static_cast<int>(avail_report.solver_attempts.size())
          : (avail_report.solver_method != markov::SteadyStateMethod::kAuto
                 ? 1
                 : 0);
  report.full_config_waiting.assign(k, 0.0);
  for (size_t x = 0; x < k; ++x) {
    report.full_config_waiting[x] =
        wait_table[x][static_cast<size_t>(config.replicas[x])];
  }

  // MRM accumulation over the availability CTMC's steady state (§6).
  Vector weighted(k, 0.0);
  double accumulated_mass = 0.0;
  const auto& space = avail_report.space;
  for (size_t i = 0; i < space.size(); ++i) {
    const double pi = avail_report.state_probabilities[i];
    if (pi <= 0.0) continue;
    bool down = false;
    bool saturated = false;
    bool degraded = false;
    for (size_t x = 0; x < k && !down; ++x) {
      const int c = space.Component(i, x);
      if (c == 0) {
        down = true;
      } else {
        if (std::isinf(wait_table[x][static_cast<size_t>(c)])) {
          saturated = true;
        }
        if (c < config.replicas[x]) degraded = true;
      }
    }
    if (down) continue;  // accounted for by prob_down
    if (saturated) {
      report.prob_saturated += pi;
      if (options_.saturation_policy == SaturationPolicy::kConditionOnStable) {
        continue;
      }
    } else if (degraded) {
      report.prob_degraded += pi;
    }
    for (size_t x = 0; x < k; ++x) {
      const auto c = static_cast<size_t>(space.Component(i, x));
      const double w = wait_table[x][c];
      weighted[x] += pi * (std::isinf(w) ? options_.penalty_waiting_time : w);
    }
    accumulated_mass += pi;
  }

  report.avail_state_probabilities = std::move(avail_report.state_probabilities);
  report.expected_waiting.assign(k,
                                 std::numeric_limits<double>::infinity());
  report.max_expected_waiting = std::numeric_limits<double>::infinity();
  if (accumulated_mass > 0.0) {
    report.max_expected_waiting = 0.0;
    for (size_t x = 0; x < k; ++x) {
      report.expected_waiting[x] = weighted[x] / accumulated_mass;
      report.max_expected_waiting =
          std::max(report.max_expected_waiting, report.expected_waiting[x]);
    }
  }
  evaluate_seconds.Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  return report;
}

Result<PerformabilityReport> PerformabilityModel::EvaluateSitePath(
    const Configuration& config, const avail::SiteContingency& contingency,
    const markov::SteadyStateOptions* solver_override) const {
  auto& registry = metrics::MetricsRegistry::Global();
  static metrics::Counter& evaluations =
      registry.GetCounter("wfms_performability_site_evaluations_total");
  static metrics::Histogram& evaluate_seconds =
      registry.GetHistogram("wfms_performability_evaluate_seconds");
  evaluations.Increment();
  trace::TraceSpan span("performability/evaluate_sites", "performability");
  const auto start = std::chrono::steady_clock::now();

  const workflow::Environment& env = perf_.environment();
  const size_t k = env.num_server_types();
  const size_t s = env.topology.num_sites();
  WFMS_RETURN_NOT_OK(config.ValidateSites(k, s));

  WFMS_ASSIGN_OR_RETURN(
      avail::AvailabilityReport avail_report,
      avail_.EvaluateSites(config, contingency, solver_override));
  const avail::SiteStateLayout& layout = avail_report.site_layout;

  // Per-type waiting time depends only on the type's *effective* up-count
  // (replicas inside the serving component); tabulate w_x(c) for
  // c = 1..Y_x once. Communication servers pay the mean cross-site latency
  // of the placement as a deterministic service-time shift (a constant
  // across CTMC states — the per-state routing detail is below the
  // resolution of the M/G/1 layer and documented in DESIGN.md §12).
  constexpr double kSaturatedMarker =
      std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> wait_table(k);
  const Vector& rates = perf_.total_request_rates();
  for (size_t x = 0; x < k; ++x) {
    queueing::ServiceMoments moments = env.servers.type(x).service;
    if (env.servers.type(x).kind ==
        workflow::ServerKind::kCommunicationServer) {
      moments = queueing::ShiftService(
          moments, workflow::MeanCrossSiteLatency(env.topology,
                                                  config.site_counts, x));
    }
    wait_table[x].resize(static_cast<size_t>(config.replicas[x]) + 1, 0.0);
    for (int c = 1; c <= config.replicas[x]; ++c) {
      const double per_server = rates[x] / static_cast<double>(c);
      auto queue = queueing::Mg1Metrics(per_server, moments);
      if (queue.ok()) {
        wait_table[x][static_cast<size_t>(c)] = queue->mean_waiting_time;
      } else if (queue.status().code() == StatusCode::kFailedPrecondition) {
        wait_table[x][static_cast<size_t>(c)] = kSaturatedMarker;
      } else {
        return queue.status();
      }
    }
  }

  PerformabilityReport report;
  report.availability = avail_report.availability;
  report.prob_down = avail_report.unavailability;
  report.solver_iterations = avail_report.solver_iterations;
  report.avail_solver_method = avail_report.solver_method;
  report.avail_solver_diagnostics = avail_report.solver_diagnostics;
  report.solver_rungs =
      !avail_report.solver_attempts.empty()
          ? static_cast<int>(avail_report.solver_attempts.size())
          : (avail_report.solver_method != markov::SteadyStateMethod::kAuto
                 ? 1
                 : 0);
  report.full_config_waiting.assign(k, 0.0);
  for (size_t x = 0; x < k; ++x) {
    report.full_config_waiting[x] =
        wait_table[x][static_cast<size_t>(config.replicas[x])];
  }

  // MRM accumulation: each state's reward uses the per-type up-counts
  // summed over the serving component only; states with no covering
  // component are down.
  Vector weighted(k, 0.0);
  double accumulated_mass = 0.0;
  const auto& space = avail_report.space;
  std::vector<int> up_counts(k * s, 0);
  std::vector<size_t> effective(k, 0);
  for (size_t i = 0; i < space.size(); ++i) {
    const double pi = avail_report.state_probabilities[i];
    if (pi <= 0.0) continue;
    for (size_t d = 0; d < k * s; ++d) {
      up_counts[d] = space.Component(i, d);
    }
    const uint64_t serving = workflow::ServingComponent(
        k, s, up_counts.data(), layout.UpSites(space, i),
        layout.Partitions(space, i));
    if (serving == 0) continue;  // down; accounted for by prob_down
    bool saturated = false;
    bool degraded = false;
    for (size_t x = 0; x < k; ++x) {
      size_t c = 0;
      for (size_t a = 0; a < s; ++a) {
        if (serving & (uint64_t{1} << a)) {
          c += static_cast<size_t>(up_counts[x * s + a]);
        }
      }
      effective[x] = c;  // >= 1: the serving component covers every type
      if (std::isinf(wait_table[x][c])) saturated = true;
      if (c < static_cast<size_t>(config.replicas[x])) degraded = true;
    }
    if (saturated) {
      report.prob_saturated += pi;
      if (options_.saturation_policy ==
          SaturationPolicy::kConditionOnStable) {
        continue;
      }
    } else if (degraded) {
      report.prob_degraded += pi;
    }
    for (size_t x = 0; x < k; ++x) {
      const double w = wait_table[x][effective[x]];
      weighted[x] += pi * (std::isinf(w) ? options_.penalty_waiting_time : w);
    }
    accumulated_mass += pi;
  }

  report.avail_state_probabilities =
      std::move(avail_report.state_probabilities);
  report.expected_waiting.assign(k,
                                 std::numeric_limits<double>::infinity());
  report.max_expected_waiting = std::numeric_limits<double>::infinity();
  if (accumulated_mass > 0.0) {
    report.max_expected_waiting = 0.0;
    for (size_t x = 0; x < k; ++x) {
      report.expected_waiting[x] = weighted[x] / accumulated_mass;
      report.max_expected_waiting =
          std::max(report.max_expected_waiting, report.expected_waiting[x]);
    }
  }
  evaluate_seconds.Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  return report;
}

}  // namespace wfms::performability

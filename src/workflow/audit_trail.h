// Audit trails: the record stream an operational WFMS (here: the
// simulator) emits, from which the configuration tool's calibration
// component (§7.1) re-estimates transition probabilities, state residence
// times, service-time moments, and arrival rates.
#ifndef WFMS_WORKFLOW_AUDIT_TRAIL_H_
#define WFMS_WORKFLOW_AUDIT_TRAIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace wfms::workflow {

/// One state visit of one workflow instance.
struct StateVisitRecord {
  std::string chart;        // chart the state belongs to
  int64_t instance_id = 0;  // workflow instance
  std::string state;        // state entered
  double enter_time = 0.0;
  double leave_time = 0.0;
  /// State entered next within the same chart; empty when the chart
  /// finished (transition into the artificial absorbing state).
  std::string next_state;
};

/// One service request processed by a server.
struct ServiceRecord {
  size_t server_type = 0;
  double service_time = 0.0;  // busy time, excluding queueing delay
  double time = 0.0;          // service start (model time)
};

/// One workflow instance arrival (for arrival-rate estimation).
struct ArrivalRecord {
  std::string workflow_type;
  double arrival_time = 0.0;
};

/// One workflow instance completion (observed turnaround).
struct CompletionRecord {
  std::string workflow_type;
  double start_time = 0.0;
  double end_time = 0.0;
};

/// The up-replica count of one server type changed (failure/repair
/// observation for online failure- and repair-rate estimation).
struct ServerCountRecord {
  size_t server_type = 0;
  int up = 0;          // replicas currently up
  int configured = 0;  // replication degree Y_x
  double time = 0.0;
};

/// Receiver of audit records as they happen — the online-monitoring hook
/// of §7.1. The recorded AuditTrail is the offline counterpart; a sink
/// additionally sees instance completions and server up/down transitions,
/// which a batch trail does not carry. Callbacks run synchronously on the
/// emitting (simulator) thread; implementations decide whether to buffer,
/// forward, or drop (see adapt/audit_stream.h).
class AuditSink {
 public:
  virtual ~AuditSink() = default;
  virtual void OnStateVisit(const StateVisitRecord& record) = 0;
  virtual void OnService(const ServiceRecord& record) = 0;
  virtual void OnArrival(const ArrivalRecord& record) = 0;
  virtual void OnCompletion(const CompletionRecord& record) = 0;
  virtual void OnServerCount(const ServerCountRecord& record) = 0;
};

class AuditTrail {
 public:
  void RecordStateVisit(StateVisitRecord record);
  void RecordService(ServiceRecord record);
  void RecordArrival(ArrivalRecord record);

  const std::vector<StateVisitRecord>& state_visits() const {
    return state_visits_;
  }
  const std::vector<ServiceRecord>& services() const { return services_; }
  const std::vector<ArrivalRecord>& arrivals() const { return arrivals_; }

  size_t size() const {
    return state_visits_.size() + services_.size() + arrivals_.size();
  }
  void Clear();

  /// Serializes to a CSV-ish text format and parses it back; lets examples
  /// persist trails across runs.
  std::string Serialize() const;
  static Result<AuditTrail> Deserialize(const std::string& text);

 private:
  std::vector<StateVisitRecord> state_visits_;
  std::vector<ServiceRecord> services_;
  std::vector<ArrivalRecord> arrivals_;
};

}  // namespace wfms::workflow

#endif  // WFMS_WORKFLOW_AUDIT_TRAIL_H_

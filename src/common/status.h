// Status: error propagation without exceptions, in the style of
// Arrow/RocksDB. Public APIs that can fail return Status or Result<T>
// (see result.h) instead of throwing.
#ifndef WFMS_COMMON_STATUS_H_
#define WFMS_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace wfms {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kNumericError,      // divergence, singular matrix, non-convergence
  kParseError,        // statechart DSL / scenario file syntax errors
  kDeadlineExceeded,  // a search/solve hit its wall-clock deadline
  kCancelled,         // cooperatively stopped (e.g. SIGINT-driven search)
  kUnimplemented,
  kInternal,
  // Appended (not inserted) so persisted status codes in existing
  // checkpoints keep their numeric values.
  kUnavailable,       // transient overload: shed request, full queue, ...
};

/// Returns a human-readable name for a status code, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// A Status carries a code and, when not OK, a message describing the error.
/// OK statuses carry no allocation; error statuses allocate a small state
/// block. Copyable and movable; moved-from statuses are OK.
class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string msg);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&& other) noexcept = default;
  Status& operator=(Status&& other) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NumericError(std::string msg) {
    return Status(StatusCode::kNumericError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// Message text; empty for OK statuses.
  const std::string& message() const;

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Prepends context to the message of an error status; no-op on OK.
  Status WithContext(const std::string& context) const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::unique_ptr<State> state_;  // nullptr == OK
};

std::ostream& operator<<(std::ostream& os, const Status& s);

}  // namespace wfms

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define WFMS_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::wfms::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (false)

/// Assigns the value of a Result<T> expression to `lhs`, returning the error
/// status from the enclosing function on failure.
#define WFMS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).ValueUnsafe();

#define WFMS_ASSIGN_OR_RETURN(lhs, rexpr) \
  WFMS_ASSIGN_OR_RETURN_IMPL(             \
      WFMS_CONCAT_NAME(_result_, __COUNTER__), lhs, rexpr)

#define WFMS_CONCAT_NAME_INNER(a, b) a##b
#define WFMS_CONCAT_NAME(a, b) WFMS_CONCAT_NAME_INNER(a, b)

#endif  // WFMS_COMMON_STATUS_H_

#!/usr/bin/env bash
# Checkpoint integrity: a truncated, bit-flipped, or stale checkpoint must
# be rejected with a descriptive error (exit 4), never silently replayed.
#
# usage: checkpoint_corruption_test.sh <wfmsctl> <workdir>
set -u

WFMSCTL="$1"
WORKDIR="$2"
CK="$WORKDIR/corruption.wfsn"
ERR="$WORKDIR/corruption.err"
ARGS=(recommend --scenario ep --method greedy --max-replicas 4)

fail() { echo "FAIL: $1"; [ -f "$ERR" ] && cat "$ERR"; exit 1; }

make_checkpoint() {
  rm -f "$CK"
  "$WFMSCTL" "${ARGS[@]}" --checkpoint="$CK" --checkpoint-interval=0 \
    > /dev/null 2>&1
  [ -f "$CK" ] || fail "no checkpoint produced"
}

expect_rejected() {  # <label> <grep-pattern>
  "$WFMSCTL" "${ARGS[@]}" --checkpoint="$CK" --resume > /dev/null 2> "$ERR"
  local rc=$?
  if [ "$rc" -ne 4 ]; then
    fail "$1: expected exit 4 (rejected checkpoint), got $rc"
  fi
  if ! grep -qi "$2" "$ERR"; then
    fail "$1: error does not mention '$2'"
  fi
}

# 1. Truncation (a torn write the atomic rename is meant to prevent).
make_checkpoint
size=$(wc -c < "$CK")
head -c $((size / 2)) "$CK" > "$CK.tmp" && mv "$CK.tmp" "$CK"
expect_rejected "truncated checkpoint" "truncat"

# 2. Single bit flip in the payload: caught by the CRC footer.
make_checkpoint
offset=25  # inside the payload (after the 20-byte header)
byte=$(od -An -tu1 -j "$offset" -N 1 "$CK" | tr -d ' ')
flipped=$((byte ^ 1))
printf "$(printf '\\%03o' "$flipped")" | \
  dd of="$CK" bs=1 seek="$offset" conv=notrunc 2> /dev/null
expect_rejected "bit-flipped checkpoint" "CRC"

# 3. Stale checkpoint: same file, different goals => fingerprint mismatch.
make_checkpoint
"$WFMSCTL" "${ARGS[@]}" --max-wait 0.2 --checkpoint="$CK" --resume \
  > /dev/null 2> "$ERR"
rc=$?
[ "$rc" -eq 4 ] || fail "stale checkpoint: expected exit 4, got $rc"
grep -qi "hash mismatch" "$ERR" || fail "stale: no fingerprint message"

# 4. Wrong kind: a search must refuse a simulation checkpoint.
rm -f "$CK"
"$WFMSCTL" simulate --scenario ep --config 2,2,3 --duration 2000 \
  --checkpoint="$CK" --checkpoint-events=500 > /dev/null 2>&1 || \
  fail "simulate with checkpointing failed"
expect_rejected "wrong snapshot kind" "kind"

rm -f "$CK" "$ERR"
echo "PASS: truncation, bit flip, staleness, and kind mismatch all rejected"

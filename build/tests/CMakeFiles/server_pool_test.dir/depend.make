# Empty dependencies file for server_pool_test.
# This may be replaced when dependencies are built.

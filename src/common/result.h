// Result<T>: value-or-Status, in the style of arrow::Result / absl::StatusOr.
#ifndef WFMS_COMMON_RESULT_H_
#define WFMS_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace wfms {

/// Holds either a value of type T or an error Status. A Result constructed
/// from an OK Status is a programming error and is converted to an Internal
/// error. Access to the value of an error Result aborts in debug builds.
template <typename T>
class Result {
 public:
  /// Constructs an error Result. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }
  /// Constructs a Result holding a value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }
  /// Moves the value out without checking; caller must have checked ok().
  T ValueUnsafe() && { return std::move(*value_); }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T operator*() && { return std::move(*this).ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;  // OK iff value_ holds a value
  std::optional<T> value_;
};

}  // namespace wfms

#endif  // WFMS_COMMON_RESULT_H_

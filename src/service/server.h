// The wfmsd socket server: accepts newline-delimited-JSON protocol
// connections on one TCP port, answers `GET /metrics` HTTP scrapes on the
// same port, and executes admitted requests on a bounded worker pool
// behind the admission controller (see DESIGN.md "Service architecture").
//
// Threading model:
//  - one accept thread (poll on the listen socket + an internal self-pipe
//    used for shutdown wakeup),
//  - one reader thread per connection (blocking line reads; responses are
//    written under a per-connection mutex, so pipelined requests answer
//    out of order by design — the protocol's `id` matches them up),
//  - a ThreadPool of worker lanes with a bounded Submit queue executing
//    Backend::Handle. The admission ladder reads the pool's queue depth;
//    the pool bound is the backstop behind it (a Submit rejection also
//    answers `rejected-overloaded`).
//
// Graceful shutdown (SIGTERM semantics): RequestStop() is async-signal-
// safe (one write to the self-pipe). The accept thread stops accepting,
// every connection is shut down for reading, in-flight and queued
// requests run to completion and their responses are written, a final
// cache snapshot is persisted, and Wait() returns OK — no admitted
// request is ever dropped by a drain.
#ifndef WFMS_SERVICE_SERVER_H_
#define WFMS_SERVICE_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "service/admission.h"
#include "service/backend.h"
#include "service/flight_recorder.h"

namespace wfms::service {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; the bound port is reported by port().
  int port = 0;
  /// Worker lanes executing requests. Clamped to >= 2 so requests never
  /// run inline on a connection's reader thread.
  size_t num_workers = 4;
  /// Submit-queue bound of the worker pool; also the base of the
  /// admission ladder (AdmissionOptions::max_queue is overwritten with
  /// this value).
  size_t max_queue = 64;
  AdmissionOptions admission;
  BackendOptions backend;
  /// Cache-snapshot policy: < 0 never persists, 0 persists after every
  /// cache-changing request (chaos-test mode: a SIGKILL at any instant
  /// loses at most the requests still in flight), > 0 persists at most
  /// that often (seconds).
  double snapshot_interval_seconds = -1.0;
  /// A request line longer than this answers `error` and closes the
  /// connection (a line that long cannot be resynchronized reliably).
  size_t max_line_bytes = 1u << 20;
  /// Lame-duck window after a stop request: readers keep consuming
  /// request lines the client already sent for this long, so a drain
  /// races with neither the network nor the kernel's receive buffer.
  double drain_grace_seconds = 0.5;
  /// Flight recorder (DESIGN.md §13): retained per-request records,
  /// served at `GET /debug/requests`.
  size_t flight_recorder_capacity = 1024;
  /// Non-empty: the recorder is dumped here (best-effort JSON) on the
  /// graceful-drain path and after each cache snapshot. Never written on
  /// the request path — a SIGKILL loses it by design.
  std::string flight_recorder_path;
  /// > 0: any request slower than this (milliseconds, arrival to
  /// response) logs its full phase breakdown to stderr.
  double slow_request_ms = 0.0;
};

class Server {
 public:
  explicit Server(const ServerOptions& options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, loads the cache snapshot (warm restart), and spawns
  /// the accept thread. On return the server is answering requests.
  Status Start();

  /// The bound port (after Start); the ephemeral-port answer.
  int port() const { return port_; }

  /// Asks the server to stop. Async-signal-safe: one write(2) on an
  /// internal pipe. Idempotent.
  void RequestStop();

  /// Blocks until a stop is requested, then drains: stops accepting,
  /// completes every admitted request, writes the final cache snapshot,
  /// and tears the worker pool down. Call once, after Start().
  Status Wait();

  Backend& backend() { return *backend_; }

  const FlightRecorder& flight_recorder() const { return recorder_; }

 private:
  struct Connection;

  void AcceptLoop();
  /// Registers an accepted socket and spawns its reader thread.
  void AdoptClient(int client);
  void ServeConnection(std::shared_ptr<Connection> conn);
  /// Consumes complete lines (or one HTTP exchange) from `buffer`. Sets
  /// `*one_shot` when the connection must stop reading: an HTTP scrape
  /// was answered, or a poison (oversized) line forced a close.
  void ConsumeBuffer(const std::shared_ptr<Connection>& conn,
                     std::string& buffer, bool* one_shot);
  /// Handles one protocol line: parse, admit, submit; every path writes
  /// exactly one response.
  void HandleLine(const std::shared_ptr<Connection>& conn,
                  std::string line);
  /// Answers an HTTP GET (metrics scrape) and closes the connection.
  void ServeHttp(const std::shared_ptr<Connection>& conn,
                 const std::string& first_line);
  /// The response-write site for lines that never became a request (e.g.
  /// oversized input): renders, writes, and does the per-disposition
  /// accounting the load driver cross-checks.
  void WriteResponse(const std::shared_ptr<Connection>& conn,
                     const Response& response);
  /// The single exit path for every parsed request: accounts the
  /// disposition, commits the flight-recorder record (and slow-request
  /// log) *before* the rendered response hits the wire — a client that
  /// scrapes /debug/requests right after its response must find its own
  /// record — then writes. Accounting happens even when the client hung
  /// up.
  void Respond(const std::shared_ptr<Connection>& conn,
               const Response& response, const std::string& tenant,
               const char* op, const RequestTelemetry& telemetry,
               std::chrono::steady_clock::time_point arrival,
               size_t bytes_in);
  /// Commits one flight-recorder record and emits the slow-request log
  /// line when the request overshot `slow_request_ms`.
  void CommitRecord(const std::string& tenant, const char* op,
                    const Response& response,
                    const RequestTelemetry& telemetry,
                    std::chrono::steady_clock::time_point arrival,
                    size_t bytes_in, size_t bytes_out);
  void MaybeSnapshot();
  /// Best-effort recorder dump to `flight_recorder_path` (no-op when
  /// unset); failures log a warning and are otherwise ignored.
  void DumpFlightRecorder();
  /// Joins finished connection threads (called from the accept loop).
  void ReapConnections();

  ServerOptions options_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  int port_ = 0;
  std::atomic<bool> stopping_{false};

  std::unique_ptr<Backend> backend_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<ThreadPool> pool_;
  FlightRecorder recorder_;

  std::thread accept_thread_;
  std::mutex conn_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;

  std::mutex snapshot_mutex_;
  std::chrono::steady_clock::time_point last_snapshot_{};
};

}  // namespace wfms::service

#endif  // WFMS_SERVICE_SERVER_H_

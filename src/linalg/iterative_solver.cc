#include "linalg/iterative_solver.h"

#include <chrono>
#include <cmath>

#include "common/logging.h"
#include "linalg/spmv.h"

namespace wfms::linalg {

namespace {

/// Finds the position of each row's diagonal element in the CSR arrays.
/// Fails if some diagonal entry is structurally zero.
Result<std::vector<size_t>> LocateDiagonals(const SparseMatrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("iterative solve requires a square matrix");
  }
  std::vector<size_t> diag(a.rows());
  const auto& offsets = a.row_offsets();
  const auto& cols = a.col_indices();
  const auto& values = a.values();
  for (size_t r = 0; r < a.rows(); ++r) {
    bool found = false;
    for (size_t k = offsets[r]; k < offsets[r + 1]; ++k) {
      if (cols[k] == r) {
        if (values[k] == 0.0) break;
        diag[r] = k;
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::NumericError("zero diagonal at row " + std::to_string(r));
    }
  }
  return diag;
}

double ResidualInf(const SparseMatrix& a, const Vector& b, const Vector& x) {
  // Fused row-dot residual: no Ax vector is materialized. CsrRowDot keeps
  // the additions in CSR entry order, so the residual is bit-identical to
  // the Multiply-based form this replaces.
  const auto& offsets = a.row_offsets();
  const auto& cols = a.col_indices();
  const auto& values = a.values();
  double m = 0.0;
  for (size_t r = 0; r < a.rows(); ++r) {
    const double ax = CsrRowDot(values.data(), cols.data(), offsets[r],
                                offsets[r + 1], x.data());
    m = std::max(m, std::fabs(ax - b[r]));
  }
  return m;
}

/// Shared stall/wall-time bookkeeping for the iteration loops. Wall time is
/// sampled only at stall checkpoints (every `stall_window` iterations, or
/// every 64 when stalling is disabled) to keep the per-iteration cost nil.
class ProgressMonitor {
 public:
  explicit ProgressMonitor(const IterativeOptions& options)
      : options_(options),
        check_every_(options.stall_window > 0 ? options.stall_window : 64),
        start_(std::chrono::steady_clock::now()) {}

  /// Call once per iteration with the latest iterate change. Returns true
  /// when the solve should give up; `diagnostics->stalled` distinguishes a
  /// detected stall from wall-time exhaustion (all flags stay false).
  bool ShouldStop(int iteration, double change, SolveDiagnostics* diagnostics) {
    if (iteration % check_every_ != 0) return false;
    if (options_.stall_window > 0) {
      if (have_checkpoint_ &&
          !(change < options_.stall_decay * checkpoint_change_)) {
        diagnostics->stalled = true;
        return true;
      }
      checkpoint_change_ = change;
      have_checkpoint_ = true;
    }
    return options_.max_wall_time_seconds > 0.0 &&
           ElapsedSeconds() >= options_.max_wall_time_seconds;
  }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  const IterativeOptions& options_;
  int check_every_;
  std::chrono::steady_clock::time_point start_;
  bool have_checkpoint_ = false;
  double checkpoint_change_ = 0.0;
};

}  // namespace

Result<IterativeStats> JacobiSolve(const SparseMatrix& a, const Vector& b,
                                   Vector* x, const IterativeOptions& options) {
  if (b.size() != a.rows() || x->size() != a.cols()) {
    return Status::InvalidArgument("Jacobi: dimension mismatch");
  }
  WFMS_ASSIGN_OR_RETURN(std::vector<size_t> diag, LocateDiagonals(a));
  const auto& offsets = a.row_offsets();
  const auto& cols = a.col_indices();
  const auto& values = a.values();

  IterativeStats stats;
  ProgressMonitor monitor(options);
  Vector next(x->size());
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    for (size_t r = 0; r < a.rows(); ++r) {
      double sum = b[r];
      for (size_t k = offsets[r]; k < offsets[r + 1]; ++k) {
        if (k == diag[r]) continue;
        sum -= values[k] * (*x)[cols[k]];
      }
      next[r] = sum / values[diag[r]];
    }
    const double change = MaxAbsDiff(next, *x);
    x->swap(next);
    stats.iterations = iter;
    if (change < options.tolerance) {
      stats.final_residual = ResidualInf(a, b, *x);
      if (stats.final_residual < options.tolerance * 10) {
        stats.converged = true;
        break;
      }
    }
    if (!std::isfinite(change)) {
      stats.diverged = true;
      break;
    }
    if (monitor.ShouldStop(iter, change, &stats)) break;
  }
  if (!stats.converged) stats.final_residual = ResidualInf(a, b, *x);
  stats.wall_time_seconds = monitor.ElapsedSeconds();
  return stats;
}

namespace {

/// Shared implementation of Gauss-Seidel (omega == 1) and SOR.
Result<IterativeStats> SweepSolve(const SparseMatrix& a, const Vector& b,
                                  Vector* x, const IterativeOptions& options,
                                  double omega) {
  if (b.size() != a.rows() || x->size() != a.cols()) {
    return Status::InvalidArgument("Gauss-Seidel/SOR: dimension mismatch");
  }
  if (omega <= 0.0 || omega >= 2.0) {
    return Status::InvalidArgument("SOR omega must be in (0, 2)");
  }
  WFMS_ASSIGN_OR_RETURN(std::vector<size_t> diag, LocateDiagonals(a));
  const auto& offsets = a.row_offsets();
  const auto& cols = a.col_indices();
  const auto& values = a.values();

  IterativeStats stats;
  ProgressMonitor monitor(options);
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    double change = 0.0;
    for (size_t r = 0; r < a.rows(); ++r) {
      double sum = b[r];
      for (size_t k = offsets[r]; k < offsets[r + 1]; ++k) {
        if (k == diag[r]) continue;
        sum -= values[k] * (*x)[cols[k]];
      }
      const double gs_value = sum / values[diag[r]];
      const double new_value = (*x)[r] + omega * (gs_value - (*x)[r]);
      change = std::max(change, std::fabs(new_value - (*x)[r]));
      (*x)[r] = new_value;
    }
    stats.iterations = iter;
    if (change < options.tolerance) {
      stats.final_residual = ResidualInf(a, b, *x);
      if (stats.final_residual < options.tolerance * 10) {
        stats.converged = true;
        break;
      }
    }
    if (!std::isfinite(change)) {
      stats.diverged = true;
      break;
    }
    if (monitor.ShouldStop(iter, change, &stats)) break;
  }
  if (!stats.converged) stats.final_residual = ResidualInf(a, b, *x);
  stats.wall_time_seconds = monitor.ElapsedSeconds();
  return stats;
}

}  // namespace

Result<IterativeStats> GaussSeidelSolve(const SparseMatrix& a, const Vector& b,
                                        Vector* x,
                                        const IterativeOptions& options) {
  return SweepSolve(a, b, x, options, 1.0);
}

Result<IterativeStats> SorSolve(const SparseMatrix& a, const Vector& b,
                                Vector* x, const IterativeOptions& options) {
  return SweepSolve(a, b, x, options, options.omega);
}

Result<IterativeStats> PowerIterationStationary(
    const SparseMatrix& p, Vector* pi, const IterativeOptions& options) {
  if (p.rows() != p.cols()) {
    return Status::InvalidArgument("power iteration requires a square matrix");
  }
  if (pi->size() != p.rows()) {
    return Status::InvalidArgument("power iteration: pi size mismatch");
  }
  if (Sum(*pi) == 0.0) {
    return Status::InvalidArgument("power iteration: zero initial vector");
  }
  NormalizeL1(pi);
  IterativeStats stats;
  ProgressMonitor monitor(options);
  Vector next;  // scratch, reused across sweeps
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    p.MultiplyTransposed(*pi, &next);  // next = pi P
    const double s = Sum(next);
    stats.iterations = iter;
    if (!(s > 0.0) || !std::isfinite(s)) {
      stats.diverged = true;
      break;
    }
    Scale(1.0 / s, &next);
    const double change = MaxAbsDiff(next, *pi);
    pi->swap(next);
    stats.final_residual = change;
    if (change < options.tolerance) {
      stats.converged = true;
      break;
    }
    if (monitor.ShouldStop(iter, change, &stats)) break;
  }
  stats.wall_time_seconds = monitor.ElapsedSeconds();
  return stats;
}

}  // namespace wfms::linalg

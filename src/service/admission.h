// Admission control and graceful degradation for wfmsd (see DESIGN.md
// "Service architecture").
//
// Two mechanisms compose:
//  - Per-tenant token buckets: each tenant refills at `tenant_rate`
//    requests/second up to a burst of `tenant_burst`; a tenant that is
//    out of tokens is shed with `rejected-overloaded` no matter how idle
//    the server is, so one aggressive client cannot starve the rest.
//  - A queue-load degradation ladder, evaluated against the worker pool's
//    queue depth at admission time:
//        level 0  (< level1_fraction of the bound)   full fidelity
//        level 1  (>= level1_fraction)  downgrade: exhaustive/annealing/
//                 bnb searches fall back to greedy, budgets tighten,
//                 autotune is shed
//        level 2  (>= level2_fraction)  cache-only: assess answers only
//                 from the memoization cache (a miss is shed), recommend
//                 is shed
//        shed     (queue full)          rejected-overloaded
//    Degradation is about *bounded* response times under overload: every
//    admitted request still terminates in one of the protocol's four
//    dispositions, and the daemon never queues without bound.
#ifndef WFMS_SERVICE_ADMISSION_H_
#define WFMS_SERVICE_ADMISSION_H_

#include <chrono>
#include <map>
#include <mutex>
#include <string>

namespace wfms::service {

/// Classic token bucket on the monotonic clock. Thread-compatible; the
/// admission controller serializes access.
class TokenBucket {
 public:
  /// `rate` tokens/second, capacity `burst`; starts full.
  TokenBucket(double rate, double burst,
              std::chrono::steady_clock::time_point now)
      : rate_(rate), burst_(burst), tokens_(burst), last_(now) {}

  bool TryAcquire(std::chrono::steady_clock::time_point now) {
    const double elapsed =
        std::chrono::duration<double>(now - last_).count();
    last_ = now;
    tokens_ = tokens_ + elapsed * rate_;
    if (tokens_ > burst_) tokens_ = burst_;
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  double tokens() const { return tokens_; }

 private:
  double rate_;
  double burst_;
  double tokens_;
  std::chrono::steady_clock::time_point last_;
};

struct AdmissionOptions {
  /// Worker-pool queue bound the ladder fractions are relative to; must
  /// match the ThreadPool's max_queue. 0 disables the ladder (always
  /// level 0) — only for tests.
  size_t max_queue = 64;
  /// Tenant quota; rate <= 0 disables per-tenant throttling.
  double tenant_rate = 0.0;
  double tenant_burst = 0.0;
  /// Ladder thresholds as fractions of max_queue.
  double level1_fraction = 0.5;
  double level2_fraction = 0.75;
};

struct AdmissionDecision {
  bool admitted = true;
  /// 0 = full fidelity, 1 = downgrade, 2 = cache-only.
  int degrade_level = 0;
  /// Human-readable cause when shed or degraded.
  std::string reason;
};

/// Thread-safe. Exports wfms_service_degrade_level (gauge, the last
/// decision's level), wfms_service_shed_total and
/// wfms_service_tenant_throttled_total (counters).
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options);

  /// Decides one request's fate given the worker queue depth right now.
  AdmissionDecision Admit(const std::string& tenant, size_t queue_depth,
                          std::chrono::steady_clock::time_point now);

 private:
  AdmissionOptions options_;
  std::mutex mutex_;
  std::map<std::string, TokenBucket> buckets_;
};

}  // namespace wfms::service

#endif  // WFMS_SERVICE_ADMISSION_H_

// Iterative linear solvers on CSR matrices: Jacobi, Gauss-Seidel (the
// method the paper prescribes for both the first-passage and steady-state
// systems), and SOR. Also power iteration for the dominant left eigenvector
// of a stochastic matrix, used as the robust fallback for steady-state
// analysis of large availability CTMCs.
//
// Robustness contract: structural problems (dimension mismatch, zero
// diagonal, bad omega) are Status errors; *numerical* outcomes — converged,
// diverged (NaN/Inf), stalled, or out of iterations — are data, reported in
// the returned SolveDiagnostics so callers such as the steady-state
// degradation cascade can react without string-matching error messages.
#ifndef WFMS_LINALG_ITERATIVE_SOLVER_H_
#define WFMS_LINALG_ITERATIVE_SOLVER_H_

#include <string>

#include "common/result.h"
#include "common/solve_diagnostics.h"
#include "linalg/sparse_matrix.h"
#include "linalg/vector.h"

namespace wfms::linalg {

struct IterativeOptions {
  int max_iterations = 20000;
  /// Convergence when the infinity norm of the iterate change and of the
  /// residual both drop below this.
  double tolerance = 1e-12;
  /// SOR relaxation factor in (0, 2); 1.0 degenerates to Gauss-Seidel.
  double omega = 1.0;
  /// Stall detection: every `stall_window` iterations the iterate change is
  /// compared against the change one window earlier; if it has not shrunk
  /// by at least a factor of `stall_decay`, the solve stops with
  /// diagnostics.stalled set. 0 disables (the default — standalone solves
  /// keep their full iteration budget).
  int stall_window = 0;
  double stall_decay = 0.5;
  /// Wall-clock cap in seconds, checked periodically; <= 0 disables.
  double max_wall_time_seconds = 0.0;
};

/// Per-solve outcome record; see common/solve_diagnostics.h.
using IterativeStats = SolveDiagnostics;

/// Solves A x = b by Jacobi iteration. A must have nonzero diagonal.
/// `x` carries the initial guess in and the solution out.
Result<IterativeStats> JacobiSolve(const SparseMatrix& a, const Vector& b,
                                   Vector* x,
                                   const IterativeOptions& options = {});

/// Solves A x = b by Gauss-Seidel (forward sweeps).
Result<IterativeStats> GaussSeidelSolve(const SparseMatrix& a, const Vector& b,
                                        Vector* x,
                                        const IterativeOptions& options = {});

/// Solves A x = b by successive over-relaxation with options.omega.
Result<IterativeStats> SorSolve(const SparseMatrix& a, const Vector& b,
                                Vector* x,
                                const IterativeOptions& options = {});

/// Computes the stationary distribution pi = pi P of a row-stochastic
/// matrix P by power iteration with L1 renormalization. `pi` carries the
/// initial guess (need not be normalized; must have a nonzero sum).
Result<IterativeStats> PowerIterationStationary(
    const SparseMatrix& p, Vector* pi, const IterativeOptions& options = {});

}  // namespace wfms::linalg

#endif  // WFMS_LINALG_ITERATIVE_SOLVER_H_

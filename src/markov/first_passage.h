// Mean first-passage times into the absorbing state (§4.1 of the paper):
// solving  -v_i m_iA + sum_{j != A, j != i} q_ij m_jA = -1  for all i != A.
// The solution from the initial state is the workflow's mean turnaround
// time R_t.
#ifndef WFMS_MARKOV_FIRST_PASSAGE_H_
#define WFMS_MARKOV_FIRST_PASSAGE_H_

#include "common/result.h"
#include "linalg/vector.h"
#include "markov/absorbing_ctmc.h"

namespace wfms::markov {

enum class FirstPassageMethod {
  kLu,           // exact dense factorization
  kGaussSeidel,  // the method the paper prescribes
};

/// Solves the first-passage system. Returns m_iA for every state (the entry
/// for the absorbing state itself is 0).
Result<linalg::Vector> MeanFirstPassageTimes(
    const AbsorbingCtmc& chain,
    FirstPassageMethod method = FirstPassageMethod::kLu);

/// Mean turnaround time R_t = m_{0A}: expected time from the initial state
/// to absorption.
Result<double> MeanTurnaroundTime(
    const AbsorbingCtmc& chain,
    FirstPassageMethod method = FirstPassageMethod::kLu);

}  // namespace wfms::markov

#endif  // WFMS_MARKOV_FIRST_PASSAGE_H_

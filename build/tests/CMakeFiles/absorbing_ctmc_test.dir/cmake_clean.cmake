file(REMOVE_RECURSE
  "CMakeFiles/absorbing_ctmc_test.dir/absorbing_ctmc_test.cc.o"
  "CMakeFiles/absorbing_ctmc_test.dir/absorbing_ctmc_test.cc.o.d"
  "absorbing_ctmc_test"
  "absorbing_ctmc_test.pdb"
  "absorbing_ctmc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/absorbing_ctmc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

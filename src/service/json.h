// Source-compatibility forwarder: the JSON codec moved to common/json.h
// so the corpus engine (src/corpus) can parse WfCommons documents without
// linking the service library. Existing service code and clients keep
// spelling the types wfms::service::Json / wfms::service::JsonEscape.
#ifndef WFMS_SERVICE_JSON_H_
#define WFMS_SERVICE_JSON_H_

#include "common/json.h"

namespace wfms::service {

using wfms::Json;
using wfms::JsonEscape;

}  // namespace wfms::service

#endif  // WFMS_SERVICE_JSON_H_

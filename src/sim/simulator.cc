#include "sim/simulator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "sim/checkpoint.h"

namespace wfms::sim {

using statechart::ChartState;
using statechart::StateChart;

Result<Simulator> Simulator::Create(const workflow::Environment& env,
                                    SimulationOptions options) {
  WFMS_RETURN_NOT_OK(env.Validate());
  WFMS_RETURN_NOT_OK(options.config.Validate(env.num_server_types()));
  if (!(options.duration > options.warmup) || options.warmup < 0.0) {
    return Status::InvalidArgument(
        "simulation needs 0 <= warmup < duration");
  }
  if (options.config.has_sites()) {
    WFMS_RETURN_NOT_OK(options.config.ValidateSites(
        env.num_server_types(), env.topology.num_sites()));
  }
  WFMS_RETURN_NOT_OK(options.faults.Validate(
      options.config, env.num_server_types(), &env.topology));
  WFMS_RETURN_NOT_OK(options.load.Validate(env.workflows.size()));
  return Simulator(&env, std::move(options));
}

void Simulator::UpdateAvailabilityGauge() {
  bool up = true;
  if (site_up_.empty()) {
    for (const auto& pool : pools_) {
      if (pool->AllDown()) {
        up = false;
        break;
      }
    }
  } else {
    // Multi-site: available iff a serving connected component exists.
    // Replicas attribute to sites via the site-major block mapping; the
    // site/partition masks come from the scripted site trajectory.
    const size_t k = env_->num_server_types();
    const size_t s = env_->topology.num_sites();
    std::vector<int> up_counts(k * s, 0);
    uint64_t up_sites = 0;
    uint64_t partitioned = 0;
    for (size_t a = 0; a < s; ++a) {
      if (site_up_[a]) up_sites |= uint64_t{1} << a;
    }
    for (size_t p = 0; p < pair_partitioned_.size(); ++p) {
      if (pair_partitioned_[p]) partitioned |= uint64_t{1} << p;
    }
    for (size_t x = 0; x < k; ++x) {
      size_t g = 0;
      for (size_t a = 0; a < s; ++a) {
        const int placed = options_.config.SiteCount(x, a);
        for (int i = 0; i < placed; ++i, ++g) {
          if (pools_[x]->ServerUp(g)) ++up_counts[x * s + a];
        }
      }
    }
    up = workflow::ServingComponent(k, s, up_counts.data(), up_sites,
                                    partitioned) != 0;
  }
  all_up_.Update(queue_.now(), up ? 1.0 : 0.0);
}

void Simulator::ForceSiteReplicas(size_t site, bool up) {
  const size_t k = env_->num_server_types();
  const size_t s = env_->topology.num_sites();
  for (size_t x = 0; x < k; ++x) {
    size_t g = 0;
    for (size_t a = 0; a < s; ++a) {
      const int placed = options_.config.SiteCount(x, a);
      if (a != site) {
        g += static_cast<size_t>(placed);
        continue;
      }
      for (int i = 0; i < placed; ++i, ++g) {
        if (up) {
          pools_[x]->ForceRepair(g);
        } else {
          pools_[x]->ForceFail(g);
        }
      }
    }
  }
}

void Simulator::ApplySiteFaultEvent(const FaultEvent& event) {
  const size_t s = env_->topology.num_sites();
  switch (event.action) {
    case FaultAction::kSiteCrash:
      site_up_[event.site_a] = 0;
      // Overlay mode prescribes the coverage mask only; the replicas keep
      // their own (random) failure processes.
      if (!options_.faults.overlay) ForceSiteReplicas(event.site_a, false);
      break;
    case FaultAction::kSiteRepair:
      site_up_[event.site_a] = 1;
      if (!options_.faults.overlay) ForceSiteReplicas(event.site_a, true);
      break;
    case FaultAction::kPartition:
      pair_partitioned_[workflow::PairIndex(
          std::min(event.site_a, event.site_b),
          std::max(event.site_a, event.site_b), s)] = 1;
      break;
    case FaultAction::kHeal:
      pair_partitioned_[workflow::PairIndex(
          std::min(event.site_a, event.site_b),
          std::max(event.site_a, event.site_b), s)] = 0;
      break;
    default:
      break;
  }
  // ForceFail/ForceRepair only fire the gauge when an up-count changes;
  // mask flips (overlay, partitions) must refresh it explicitly.
  UpdateAvailabilityGauge();
}

void Simulator::ScheduleArrival(size_t workflow_index) {
  const double rate = arrival_rates_[workflow_index];
  if (rate <= 0.0) {
    // The chain stops; a later load event raising the rate restarts it.
    arrival_pending_[workflow_index] = 0;
    return;
  }
  arrival_pending_[workflow_index] = 1;
  queue_.ScheduleAfter(rng_.NextExponential(rate), [this, workflow_index] {
    const workflow::WorkflowTypeSpec& wf = env_->workflows[workflow_index];
    const int64_t instance = next_instance_id_++;
    const double start_time = queue_.now();
    WorkflowTypeResult& wf_result = result_.workflows[wf.name];
    ++wf_result.started;
    if (options_.record_audit_trail) {
      result_.trail.RecordArrival({wf.name, start_time});
    }
    if (options_.sink != nullptr) {
      options_.sink->OnArrival({wf.name, start_time});
    }
    const StateChart* chart = *env_->charts.GetChart(wf.chart);
    StartChart(chart, instance, [this, workflow_index, start_time] {
      const workflow::WorkflowTypeSpec& done_wf =
          env_->workflows[workflow_index];
      WorkflowTypeResult& stats = result_.workflows[done_wf.name];
      ++stats.completed;
      if (start_time >= options_.warmup) {
        stats.turnaround.Add(queue_.now() - start_time);
      }
      if (options_.sink != nullptr) {
        options_.sink->OnCompletion({done_wf.name, start_time, queue_.now()});
      }
    });
    ScheduleArrival(workflow_index);
  });
}

void Simulator::ApplyLoadEvent(const LoadEvent& event) {
  const auto set_rate = [this](size_t t, double rate) {
    arrival_rates_[t] = rate;
    if (rate > 0.0 && !arrival_pending_[t]) ScheduleArrival(t);
  };
  switch (event.action) {
    case LoadAction::kSetRate:
      set_rate(event.workflow, event.value);
      break;
    case LoadAction::kScale:
      set_rate(event.workflow, arrival_rates_[event.workflow] * event.value);
      break;
    case LoadAction::kScaleAll:
      for (size_t t = 0; t < arrival_rates_.size(); ++t) {
        set_rate(t, arrival_rates_[t] * event.value);
      }
      break;
  }
}

void Simulator::StartChart(const StateChart* chart, int64_t instance,
                           std::function<void()> on_complete) {
  const size_t initial = *chart->StateIndex(chart->initial_state());
  EnterState(chart, initial, instance,
             std::make_shared<std::function<void()>>(std::move(on_complete)));
}

void Simulator::EnterState(
    const StateChart* chart, size_t state_index, int64_t instance,
    std::shared_ptr<std::function<void()>> on_complete) {
  const ChartState& state = chart->state(state_index);
  const double enter_time = queue_.now();

  if (state.kind == statechart::StateKind::kComposite) {
    // Orthogonal components: start all subcharts, join when all finish.
    auto remaining = std::make_shared<int>(
        static_cast<int>(state.subcharts.size()));
    for (const std::string& sub : state.subcharts) {
      const StateChart* subchart = *env_->charts.GetChart(sub);
      StartChart(subchart, instance,
                 [this, chart, state_index, instance, enter_time,
                  on_complete, remaining] {
        if (--*remaining == 0) {
          LeaveState(chart, state_index, instance, enter_time, on_complete);
        }
      });
    }
    return;
  }

  double residence = 0.0;
  if (state.residence_time > 0.0) {
    residence = options_.exponential_residence
                    ? rng_.NextExponential(1.0 / state.residence_time)
                    : state.residence_time;
  }
  if (!state.activity.empty()) IssueRequests(state, residence, instance);
  queue_.ScheduleAfter(residence, [this, chart, state_index, instance,
                                   enter_time, on_complete] {
    LeaveState(chart, state_index, instance, enter_time, on_complete);
  });
}

void Simulator::LeaveState(
    const StateChart* chart, size_t state_index, int64_t instance,
    double enter_time, std::shared_ptr<std::function<void()>> on_complete) {
  const ChartState& state = chart->state(state_index);
  std::string next_name;
  const bool is_final = state.name == chart->final_state();
  size_t next_index = 0;
  if (!is_final) {
    const auto outgoing = chart->OutgoingTransitions(state.name);
    WFMS_CHECK(!outgoing.empty());
    std::vector<double> weights(outgoing.size());
    for (size_t i = 0; i < outgoing.size(); ++i) {
      weights[i] = outgoing[i]->probability;
    }
    const int pick = rng_.NextDiscrete(weights.data(),
                                       static_cast<int>(weights.size()));
    next_name = outgoing[static_cast<size_t>(pick)]->to;
    next_index = *chart->StateIndex(next_name);
  }
  if (options_.record_audit_trail) {
    result_.trail.RecordStateVisit({chart->name(), instance, state.name,
                                    enter_time, queue_.now(), next_name});
  }
  if (options_.sink != nullptr) {
    options_.sink->OnStateVisit({chart->name(), instance, state.name,
                                 enter_time, queue_.now(), next_name});
  }
  if (is_final) {
    (*on_complete)();
  } else {
    EnterState(chart, next_index, instance, std::move(on_complete));
  }
}

void Simulator::IssueRequests(const ChartState& state, double residence,
                              int64_t instance) {
  const linalg::Vector load =
      env_->loads.LoadOf(state.activity, env_->num_server_types());
  const bool bind = options_.dispatch == DispatchPolicy::kPerInstanceBinding;
  for (size_t x = 0; x < load.size(); ++x) {
    // Fractional request counts are realized in expectation.
    int count = static_cast<int>(std::floor(load[x]));
    const double frac = load[x] - count;
    if (frac > 0.0 && rng_.NextBernoulli(frac)) ++count;
    for (int i = 0; i < count; ++i) {
      // Requests spread uniformly over the activity's residence ("a
      // processing load is induced during the entire activity", §4.2).
      const double offset = residence > 0.0 ? rng_.NextDouble() * residence
                                            : 0.0;
      queue_.ScheduleAfter(offset, [this, x, bind, instance] {
        if (bind) {
          pools_[x]->SubmitKeyed(static_cast<uint64_t>(instance));
        } else {
          pools_[x]->Submit();
        }
      });
    }
  }
}

Result<SimulationResult> Simulator::Run() {
  const size_t k = env_->num_server_types();
  // A scripted schedule supersedes the random failure/repair processes:
  // with both rates zero the pools never schedule a random event, so the
  // run is a deterministic replay of the schedule. Overlay mode is the
  // exception: its site-level events coexist with the random replica
  // processes (the analytic/simulated contingency cross-check needs both).
  const bool scripted = !options_.faults.empty() && !options_.faults.overlay;
  const bool site_mode =
      !env_->topology.empty() && options_.config.has_sites();
  if (site_mode) {
    site_up_.assign(env_->topology.num_sites(), 1);
    pair_partitioned_.assign(
        workflow::PairCount(env_->topology.num_sites()), 0);
  } else {
    site_up_.clear();
    pair_partitioned_.clear();
  }
  pools_.clear();
  pools_.reserve(k);
  for (size_t x = 0; x < k; ++x) {
    const workflow::ServerType& type = env_->servers.type(x);
    const bool random_faults = options_.enable_failures && !scripted;
    pools_.push_back(std::make_unique<ServerPool>(
        &queue_, rng_.Split(), options_.config.replicas[x], type.service,
        random_faults ? type.failure_rate : 0.0,
        random_faults ? type.repair_rate : 0.0,
        options_.warmup));
    const size_t type_index = x;
    pools_.back()->SetUpChangeCallback([this, type_index] {
      UpdateAvailabilityGauge();
      if (options_.sink != nullptr) {
        options_.sink->OnServerCount(
            {type_index, pools_[type_index]->up_count(),
             options_.config.replicas[type_index], queue_.now()});
      }
    });
    if (options_.record_audit_trail || options_.sink != nullptr) {
      pools_.back()->SetServiceCallback([this, type_index](double service) {
        if (options_.record_audit_trail) {
          result_.trail.RecordService({type_index, service, queue_.now()});
        }
        if (options_.sink != nullptr) {
          options_.sink->OnService({type_index, service, queue_.now()});
        }
      });
    }
  }
  for (auto& pool : pools_) pool->Start();
  if (options_.sink != nullptr) {
    // Initial up counts so the consumer can integrate up-time from t = 0.
    for (size_t x = 0; x < k; ++x) {
      options_.sink->OnServerCount({x, pools_[x]->up_count(),
                                    options_.config.replicas[x],
                                    queue_.now()});
    }
  }
  for (const FaultEvent& event : options_.faults.Sorted()) {
    queue_.ScheduleAt(event.time, [this, event] {
      if (IsSiteAction(event.action)) {
        ApplySiteFaultEvent(event);
        return;
      }
      ServerPool& pool = *pools_[event.server_type];
      switch (event.action) {
        case FaultAction::kCrash:
          pool.ForceFail(static_cast<size_t>(event.server_index));
          break;
        case FaultAction::kRepair:
          pool.ForceRepair(static_cast<size_t>(event.server_index));
          break;
        case FaultAction::kTypeOutage:
          pool.ForceTypeOutage();
          break;
        case FaultAction::kTypeRestore:
          pool.ForceTypeRestore();
          break;
        default:
          break;  // site actions handled above
      }
    });
  }
  UpdateAvailabilityGauge();
  queue_.ScheduleAt(options_.warmup, [this] {
    all_up_ = TimeWeightedStats();
    UpdateAvailabilityGauge();
  });

  arrival_rates_.clear();
  arrival_pending_.assign(env_->workflows.size(), 0);
  for (const workflow::WorkflowTypeSpec& wf : env_->workflows) {
    arrival_rates_.push_back(wf.arrival_rate);
  }
  for (const LoadEvent& event : options_.load.Sorted()) {
    queue_.ScheduleAt(event.time, [this, event] { ApplyLoadEvent(event); });
  }
  for (size_t t = 0; t < env_->workflows.size(); ++t) ScheduleArrival(t);

  // Checkpoint/resume plumbing (DESIGN.md "Checkpointing and recovery").
  // Everything happens at event boundaries outside the queue, so the event
  // sequence is bit-identical to an unobserved run.
  const bool checkpointing = !options_.checkpoint_path.empty();
  uint64_t fingerprint = 0;
  SimulationCheckpoint resume_target;
  bool awaiting_cursor = false;
  if (checkpointing) {
    fingerprint = SimulationFingerprint(*env_, options_);
    if (options_.resume) {
      auto loaded =
          ReadSimulationCheckpoint(options_.checkpoint_path, fingerprint);
      if (loaded.ok()) {
        resume_target = *std::move(loaded);
        awaiting_cursor = true;
      } else if (loaded.status().code() != StatusCode::kNotFound) {
        return loaded.status();  // corrupt or stale: never replayed past
      }
      // NotFound: nothing to resume; run from scratch.
    }
  }
  const auto capture = [&](int64_t executed) {
    SimulationCheckpoint state;
    state.fingerprint = fingerprint;
    state.events_executed = executed;
    state.sim_time = queue_.now();
    state.next_instance_id = next_instance_id_;
    state.pending_events = queue_.pending();
    state.master_rng = rng_.SaveState();
    for (const auto& pool : pools_) {
      state.pool_rngs.push_back(pool->RngState());
      state.pool_up.push_back(pool->up_count());
      state.pool_busy.push_back(pool->busy_count());
      state.pool_parked.push_back(static_cast<int>(pool->parked_count()));
    }
    return state;
  };
  Status boundary_error;
  bool cancelled = false;
  const int64_t cadence = options_.checkpoint_every_events;
  const EventQueue::Observer observer = [&](int64_t executed) {
    if (awaiting_cursor && executed == resume_target.events_executed) {
      // The replay has reached the crashed run's cursor: the live state
      // must match it word for word, proving this run retraces — and will
      // complete — the interrupted trajectory.
      boundary_error = VerifyReplayCursor(resume_target, capture(executed));
      if (!boundary_error.ok()) return false;
      awaiting_cursor = false;
    }
    if (options_.cancel != nullptr &&
        options_.cancel->load(std::memory_order_relaxed)) {
      cancelled = true;
      return false;
    }
    if (checkpointing && cadence > 0 && executed % cadence == 0) {
      boundary_error =
          WriteSimulationCheckpoint(options_.checkpoint_path,
                                    capture(executed));
      if (!boundary_error.ok()) return false;
    }
    return true;
  };
  const bool observed =
      checkpointing || options_.cancel != nullptr || awaiting_cursor;
  const auto loop_start = std::chrono::steady_clock::now();
  {
    trace::TraceSpan span("sim/event_loop", "sim", options_.trace);
    result_.events_executed =
        observed ? queue_.RunUntil(options_.duration, observer)
                 : queue_.RunUntil(options_.duration);
  }
  const double loop_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    loop_start)
          .count();
  WFMS_RETURN_NOT_OK(boundary_error);
  if (cancelled) {
    std::string message = "simulation cancelled after " +
                          std::to_string(result_.events_executed) +
                          " events (t=" + std::to_string(queue_.now()) + ")";
    if (checkpointing) {
      WFMS_RETURN_NOT_OK(WriteSimulationCheckpoint(
          options_.checkpoint_path, capture(result_.events_executed)));
      message += "; checkpoint written to " + options_.checkpoint_path;
    }
    return Status::Cancelled(std::move(message));
  }
  if (awaiting_cursor) {
    return Status::FailedPrecondition(
        "checkpoint cursor (event " +
        std::to_string(resume_target.events_executed) +
        ") lies beyond the end of the run (" +
        std::to_string(result_.events_executed) +
        " events) — the checkpoint does not belong to this scenario");
  }

  for (auto& pool : pools_) pool->FinishStats();
  all_up_.Finish(queue_.now());
  result_.observed_availability = all_up_.time_average();
  result_.servers.clear();
  result_.utilization.clear();
  for (size_t x = 0; x < k; ++x) {
    result_.servers.push_back(pools_[x]->stats());
    result_.utilization.push_back(
        pools_[x]->stats().busy_servers.time_average() /
        options_.config.replicas[x]);
  }

  auto& registry = metrics::MetricsRegistry::Global();
  static metrics::Counter& runs =
      registry.GetCounter("wfms_sim_runs_total");
  static metrics::Counter& events =
      registry.GetCounter("wfms_sim_events_total");
  static metrics::Gauge& events_per_second =
      registry.GetGauge("wfms_sim_events_per_second");
  static metrics::Gauge& queue_peak =
      registry.GetGauge("wfms_sim_event_queue_peak");
  runs.Increment();
  if (result_.events_executed > 0) {
    events.Increment(static_cast<uint64_t>(result_.events_executed));
  }
  if (loop_seconds > 0.0) {
    events_per_second.Set(
        static_cast<double>(result_.events_executed) / loop_seconds);
  }
  queue_peak.UpdateMax(static_cast<double>(queue_.peak_pending()));
  for (size_t x = 0; x < k; ++x) {
    // Per-pool gauges are registered by (sanitized) server-type name; the
    // handful of types per environment keeps the lookup cost negligible.
    registry
        .GetGauge("wfms_sim_pool_busy_fraction_" +
                  env_->servers.type(x).name)
        .Set(result_.utilization[x]);
  }

  queue_.Clear();
  return std::move(result_);
}

}  // namespace wfms::sim

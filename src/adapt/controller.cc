#include "adapt/controller.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/snapshot.h"
#include "common/trace.h"
#include "configtool/checkpoint.h"
#include "workflow/environment_io.h"

namespace wfms::adapt {

namespace {

metrics::Counter& EvaluationsCounter() {
  static metrics::Counter& counter = metrics::MetricsRegistry::Global()
      .GetCounter("wfms_adapt_evaluations_total");
  return counter;
}

metrics::Counter& TriggersCounter() {
  static metrics::Counter& counter = metrics::MetricsRegistry::Global()
      .GetCounter("wfms_adapt_triggers_total");
  return counter;
}

metrics::Counter& SearchesCounter() {
  static metrics::Counter& counter = metrics::MetricsRegistry::Global()
      .GetCounter("wfms_adapt_searches_total");
  return counter;
}

metrics::Counter& ReconfigurationsCounter() {
  static metrics::Counter& counter = metrics::MetricsRegistry::Global()
      .GetCounter("wfms_adapt_reconfigurations_total");
  return counter;
}

metrics::Gauge& MarginGauge() {
  static metrics::Gauge& gauge = metrics::MetricsRegistry::Global().GetGauge(
      "wfms_adapt_predicted_margin");
  return gauge;
}

metrics::Gauge& DriftScoreGauge() {
  static metrics::Gauge& gauge = metrics::MetricsRegistry::Global().GetGauge(
      "wfms_adapt_drift_score_peak");
  return gauge;
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::ostringstream os;
  for (size_t i = 0; i < names.size(); ++i) os << (i ? "," : "") << names[i];
  return os.str();
}

}  // namespace

const char* SearchMethodName(SearchMethod method) {
  switch (method) {
    case SearchMethod::kGreedy:
      return "greedy";
    case SearchMethod::kExhaustive:
      return "exhaustive";
    case SearchMethod::kAnnealing:
      return "annealing";
    case SearchMethod::kBranchAndBound:
      return "branch-and-bound";
  }
  return "greedy";
}

Result<SearchMethod> ParseSearchMethod(const std::string& name) {
  if (name == "greedy") return SearchMethod::kGreedy;
  if (name == "exhaustive") return SearchMethod::kExhaustive;
  if (name == "annealing") return SearchMethod::kAnnealing;
  if (name == "branch-and-bound" || name == "bnb") {
    return SearchMethod::kBranchAndBound;
  }
  return Status::InvalidArgument(
      "unknown search method '" + name +
      "' (expected greedy, exhaustive, annealing, or branch-and-bound)");
}

std::string ReconfigurationPlan::ToString() const {
  std::ostringstream os;
  os << from.ToString() << " -> " << to.ToString() << " (delta";
  for (size_t i = 0; i < delta.size(); ++i) {
    os << (i ? "," : " ") << (delta[i] >= 0 ? "+" : "") << delta[i];
  }
  os << "; cost " << old_cost << " -> " << new_cost << ", migration "
     << migration_cost << "; predicted margin "
     << predicted.Min() << (predicted_satisfied ? ", goals met" : ", goals NOT met")
     << ")";
  return os.str();
}

ReconfigurationController::ReconfigurationController(
    const workflow::Environment* designed, workflow::Configuration initial,
    ControllerOptions options, OnlineCalibratorOptions calibrator_options)
    : designed_(designed),
      options_(std::move(options)),
      current_(std::move(initial)),
      calibrator_(designed, calibrator_options) {
  WFMS_CHECK(designed_ != nullptr);
  Rebaseline(*designed_);
}

void ReconfigurationController::Observe(const AuditEvent& event) {
  calibrator_.Consume(event);
}

void ReconfigurationController::Rebaseline(
    const workflow::Environment& regime) {
  monitors_.clear();
  for (const auto& wf : regime.workflows) {
    DriftMonitor monitor;
    monitor.name = "arrival:" + wf.name;
    monitor.baseline = wf.arrival_rate;
    monitor.detector = PageHinkleyDetector(options_.drift);
    monitors_.push_back(std::move(monitor));
  }
  for (size_t i = 0; i < regime.servers.size(); ++i) {
    DriftMonitor monitor;
    monitor.name = "service:" + regime.servers.type(i).name;
    monitor.baseline = regime.servers.type(i).service.mean;
    monitor.detector = PageHinkleyDetector(options_.drift);
    monitors_.push_back(std::move(monitor));
  }
}

GoalMargins ReconfigurationController::MarginsOf(
    const configtool::Assessment& assessment) const {
  GoalMargins margins;
  margins.waiting = 1.0;
  const linalg::Vector& waiting = assessment.performability.expected_waiting;
  for (size_t x = 0; x < waiting.size(); ++x) {
    const double threshold = options_.goals.WaitingThreshold(x);
    if (threshold <= 0.0) continue;
    margins.waiting =
        std::min(margins.waiting, (threshold - waiting[x]) / threshold);
  }
  const double headroom = 1.0 - options_.goals.min_availability;
  margins.availability =
      (assessment.performability.availability - options_.goals.min_availability) /
      (headroom > 0.0 ? headroom : 1.0);
  return margins;
}

bool ReconfigurationController::DetectTriggers(double now,
                                               ControllerDecision* decision) {
  double peak_score = 0.0;
  size_t monitor_index = 0;
  for (const auto& wf : designed_->workflows) {
    const WorkflowEstimate estimate = calibrator_.EstimateFor(wf.name);
    DriftMonitor& monitor = monitors_[monitor_index++];
    if (estimate.arrivals >= options_.min_observations) {
      if (monitor.Observe(estimate.arrival_rate)) {
        decision->drifted.push_back(monitor.name);
      }
      peak_score = std::max(peak_score, monitor.detector.score());
    }
  }
  for (size_t x = 0; x < designed_->servers.size(); ++x) {
    const DecayedMoments& moments = calibrator_.ServiceMoments(x);
    DriftMonitor& monitor = monitors_[monitor_index++];
    if (moments.effective_samples(now) >=
        static_cast<double>(options_.min_observations)) {
      if (monitor.Observe(moments.mean())) {
        decision->drifted.push_back(monitor.name);
      }
      peak_score = std::max(peak_score, monitor.detector.score());
    }
  }
  DriftScoreGauge().UpdateMax(peak_score);

  std::ostringstream reason;
  if (!decision->drifted.empty()) {
    reason << "drift in [" << JoinNames(decision->drifted) << "]";
  }
  if (options_.max_turnaround > 0.0) {
    for (const auto& wf : designed_->workflows) {
      const WorkflowEstimate estimate = calibrator_.EstimateFor(wf.name);
      if (estimate.completions < options_.min_observations) continue;
      // Violation only when the SLO sits outside the confidence interval —
      // a noisy mean alone does not page the controller.
      if (estimate.turnaround_mean - estimate.turnaround_half_width >
          options_.max_turnaround) {
        decision->goal_violation = true;
        if (reason.tellp() > 0) reason << "; ";
        reason << "turnaround SLO violated for '" << wf.name << "' ("
               << estimate.turnaround_mean << " > " << options_.max_turnaround
               << ")";
      }
    }
  }
  const double observed_availability = calibrator_.ObservedAvailability();
  if (observed_availability < options_.goals.min_availability) {
    decision->goal_violation = true;
    if (reason.tellp() > 0) reason << "; ";
    reason << "observed availability " << observed_availability
           << " below goal " << options_.goals.min_availability;
  }
  decision->trigger_reason = reason.str();
  return !decision->drifted.empty() || decision->goal_violation;
}

Status ReconfigurationController::RunSearch(double now,
                                            ControllerDecision* decision) {
  trace::TraceSpan span("adapt/search", "adapt", options_.trace);
  SearchesCounter().Increment();
  decision->searched = true;

  WFMS_ASSIGN_OR_RETURN(workflow::Environment regime,
                        calibrator_.RebuildEnvironment());
  WFMS_RETURN_NOT_OK(regime.Validate());

  WFMS_ASSIGN_OR_RETURN(configtool::ConfigurationTool tool,
                        configtool::ConfigurationTool::Create(regime));

  // Cache carryover: while the rebuilt environment is unchanged (hash of
  // its serialized form), every assessment from earlier control periods is
  // a free cache hit in this one.
  const uint64_t fingerprint =
      Fnv1a64(workflow::SerializeEnvironment(regime));
  if (cache_.has_value() && cache_fingerprint_ == fingerprint) {
    tool.RestoreAssessmentCache(*cache_);
  }

  const char* method_name = SearchMethodName(options_.method);
  configtool::SearchOptions search_options;
  search_options.deadline_seconds = options_.search_deadline_seconds;
  search_options.trace = span.context();
  uint64_t search_fingerprint = 0;
  if (!options_.checkpoint_path.empty()) {
    search_fingerprint = configtool::SearchFingerprint(
        regime, options_.goals, options_.constraints, options_.cost,
        method_name,
        options_.method == SearchMethod::kAnnealing ? &options_.annealing
                                                    : nullptr);
    // A stale or missing checkpoint is not an error for the loop — the
    // search simply starts cold.
    auto resumed = configtool::ResumeSearchFrom(
        tool, options_.checkpoint_path, search_fingerprint, method_name);
    (void)resumed;
    search_options.on_checkpoint = [&tool, search_fingerprint, method_name,
                                    this] {
      Status status = configtool::WriteSearchCheckpoint(
          options_.checkpoint_path, tool, search_fingerprint, method_name);
      if (!status.ok()) {
        WFMS_LOG(Warning) << "adapt: checkpoint write failed: "
                          << status.ToString();
      }
    };
  }

  WFMS_ASSIGN_OR_RETURN(
      configtool::Assessment current_assessment,
      tool.Assess(current_, options_.goals, options_.cost));
  const GoalMargins current_margins = MarginsOf(current_assessment);

  Result<configtool::SearchResult> search = [&] {
    switch (options_.method) {
      case SearchMethod::kExhaustive:
        return tool.ExhaustiveMinCost(options_.goals, options_.constraints,
                                      options_.cost, search_options);
      case SearchMethod::kAnnealing:
        return tool.AnnealingMinCost(options_.goals, options_.constraints,
                                     options_.cost, options_.annealing,
                                     search_options);
      case SearchMethod::kBranchAndBound:
        return tool.BranchAndBoundMinCost(options_.goals, options_.constraints,
                                          options_.cost, search_options);
      case SearchMethod::kGreedy:
      default:
        return tool.GreedyMinCost(options_.goals, options_.constraints,
                                  options_.cost, search_options);
    }
  }();
  WFMS_RETURN_NOT_OK(search.status());

  cache_ = tool.DumpAssessmentCache();
  cache_fingerprint_ = fingerprint;
  if (!options_.checkpoint_path.empty()) {
    Status status = configtool::WriteSearchCheckpoint(
        options_.checkpoint_path, tool, search_fingerprint, method_name,
        &*search);
    if (!status.ok()) {
      WFMS_LOG(Warning) << "adapt: final checkpoint write failed: "
                        << status.ToString();
    }
  }

  ReconfigurationPlan& plan = decision->plan;
  plan.from = current_;
  plan.to = search->config;
  plan.old_cost = options_.cost.Cost(current_.replicas);
  plan.new_cost = search->cost;
  plan.predicted = MarginsOf(search->assessment);
  plan.predicted_satisfied = search->satisfied;
  plan.search_evaluations = search->evaluations;
  plan.search_cache_hits = search->cache_hits;
  plan.delta.assign(search->config.replicas.size(), 0);
  for (size_t x = 0; x < plan.delta.size(); ++x) {
    const int before =
        x < current_.replicas.size() ? current_.replicas[x] : 0;
    plan.delta[x] = search->config.replicas[x] - before;
    if (plan.delta[x] > 0) plan.replicas_added += plan.delta[x];
    if (plan.delta[x] < 0) plan.replicas_removed -= plan.delta[x];
  }
  plan.migration_cost =
      options_.migration_cost_per_server *
      static_cast<double>(plan.replicas_added + plan.replicas_removed);
  MarginGauge().Set(plan.predicted.Min());

  // --- Gate the plan ----------------------------------------------------
  const bool same_config = search->config == current_;
  if (!search->satisfied) {
    decision->reason =
        "search found no satisfying configuration within constraints; "
        "holding " + current_.ToString();
    // Re-baseline so a persistent but unfixable regime does not fire a
    // search at every period.
    Rebaseline(regime);
    return Status::OK();
  }
  if (same_config) {
    decision->reason = "current configuration " + current_.ToString() +
                       " remains the recommendation; re-baselining";
    Rebaseline(regime);
    return Status::OK();
  }
  const bool grows = plan.new_cost > plan.old_cost;
  if (grows) {
    const bool current_ok = current_assessment.Satisfies() &&
                            !decision->goal_violation &&
                            current_margins.Min() >= options_.min_margin_gain;
    if (current_ok) {
      decision->reason =
          "grow plan not applied: current configuration still meets goals "
          "with margin " + std::to_string(current_margins.Min());
      return Status::OK();
    }
  } else {
    const double saving = plan.old_cost - plan.new_cost;
    if (saving < options_.min_margin_gain + plan.migration_cost) {
      decision->reason =
          "shrink plan not applied: saving " + std::to_string(saving) +
          " does not cover migration cost " +
          std::to_string(plan.migration_cost);
      return Status::OK();
    }
  }

  // --- Apply ------------------------------------------------------------
  decision->reconfigured = true;
  decision->reason = "reconfigured: " + plan.ToString();
  current_ = search->config;
  have_reconfigured_ = true;
  last_reconfig_time_ = now;
  consecutive_triggers_ = 0;
  ReconfigurationsCounter().Increment();
  // The old regime's statistics describe the old configuration; start the
  // next control period clean and re-baseline drift on the new regime.
  calibrator_.ResetEstimators();
  Rebaseline(regime);
  return Status::OK();
}

Result<ControllerDecision> ReconfigurationController::Evaluate(double now) {
  trace::TraceSpan span("adapt/evaluate", "adapt", options_.trace);
  EvaluationsCounter().Increment();
  ControllerDecision decision;
  decision.time = now;

  const bool triggered = DetectTriggers(now, &decision);
  if (triggered) {
    TriggersCounter().Increment();
    ++consecutive_triggers_;
  } else {
    consecutive_triggers_ = 0;
  }
  decision.consecutive_triggers = consecutive_triggers_;

  if (!triggered) {
    decision.reason = "no drift, goals met";
    decisions_.push_back(decision);
    return decisions_.back();
  }
  if (consecutive_triggers_ < options_.hysteresis) {
    decision.reason = "trigger below hysteresis (" +
                      std::to_string(consecutive_triggers_) + "/" +
                      std::to_string(options_.hysteresis) + "): " +
                      decision.trigger_reason;
    decisions_.push_back(decision);
    return decisions_.back();
  }
  if (have_reconfigured_ &&
      now - last_reconfig_time_ < options_.cooldown) {
    decision.reason = "in cooldown (" +
                      std::to_string(now - last_reconfig_time_) + " of " +
                      std::to_string(options_.cooldown) + "): " +
                      decision.trigger_reason;
    decisions_.push_back(decision);
    return decisions_.back();
  }

  WFMS_RETURN_NOT_OK(RunSearch(now, &decision));
  decisions_.push_back(decision);
  return decisions_.back();
}

std::vector<ReconfigurationPlan> ReconfigurationController::applied_plans()
    const {
  std::vector<ReconfigurationPlan> plans;
  for (const auto& decision : decisions_) {
    if (decision.reconfigured) plans.push_back(decision.plan);
  }
  return plans;
}

}  // namespace wfms::adapt

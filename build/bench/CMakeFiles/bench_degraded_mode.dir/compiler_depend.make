# Empty compiler generated dependencies file for bench_degraded_mode.
# This may be replaced when dependencies are built.

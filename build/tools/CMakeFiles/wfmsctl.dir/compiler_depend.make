# Empty compiler generated dependencies file for wfmsctl.
# This may be replaced when dependencies are built.

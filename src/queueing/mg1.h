// Single-server queueing formulas: M/G/1 (Pollaczek-Khinchine, the model
// the paper uses for each server replica in §4.4), plus M/M/1 and M/M/c as
// special cases used for cross-validation against the simulator.
#ifndef WFMS_QUEUEING_MG1_H_
#define WFMS_QUEUEING_MG1_H_

#include "common/result.h"
#include "queueing/distributions.h"

namespace wfms::queueing {

struct QueueMetrics {
  double utilization = 0.0;        // rho = lambda * E[S]
  double mean_waiting_time = 0.0;  // time in queue, excluding service
  double mean_response_time = 0.0; // waiting + service
  double mean_queue_length = 0.0;  // jobs waiting (Little: lambda * W)
  double mean_jobs_in_system = 0.0;
};

/// M/G/1 with Poisson arrivals `arrival_rate` and the given service
/// moments. Fails with FailedPrecondition when rho >= 1 (saturated):
///   W = lambda * E[S^2] / (2 (1 - rho))        [paper §4.4]
Result<QueueMetrics> Mg1Metrics(double arrival_rate,
                                const ServiceMoments& service);

/// M/M/1 closed form (special case of M/G/1 with exponential service).
Result<QueueMetrics> Mm1Metrics(double arrival_rate, double service_mean);

/// M/M/c: c parallel exponential servers fed by one queue; waiting time via
/// the Erlang-C formula. Provided as an *alternative* replication model to
/// the paper's "c independent M/G/1 queues" — benches compare both.
Result<QueueMetrics> MmcMetrics(double arrival_rate, double service_mean,
                                int servers);

/// Erlang-C: probability an arrival must wait in an M/M/c queue.
Result<double> ErlangC(double offered_load, int servers);

}  // namespace wfms::queueing

#endif  // WFMS_QUEUEING_MG1_H_

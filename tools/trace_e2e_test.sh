#!/usr/bin/env bash
# End-to-end distributed tracing (DESIGN.md §13): one wfmsctl assess
# against a live wfmsd stitches into a single trace tree across both
# processes.
#   1. boot wfmsd with --trace-out, --flight-recorder and a 0.001 ms
#      slow-request threshold (everything is "slow": the forensics log
#      path runs on every request);
#   2. `wfmsctl assess --connect --verbose --trace-out` mints the trace
#      client-side; the daemon echoes the same id back;
#   3. the live /debug/requests scrape carries the record for that id,
#      phases summing within the recorded wall time (checked by
#      check_observability.py);
#   4. SIGTERM drain writes the server trace and the flight-recorder
#      dump; both validate against their checked-in schemas;
#   5. the merged client+server Chrome-trace JSON holds one tree: the
#      client root span, the server's service/admission and
#      service/assess spans parented on it, and a markov solver span
#      parented on service/assess — all under the one trace id.
#
# usage: trace_e2e_test.sh <wfmsd> <wfmsctl> <workdir>
set -u

WFMSD="$1"
WFMSCTL="$2"
WORKDIR="$3/trace_e2e_test"
TOOLS_DIR="$(cd "$(dirname "$0")" && pwd)"

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"

if ! command -v python3 > /dev/null; then
  echo "SKIP: python3 not available" >&2
  exit 0
fi

DAEMON_PID=""
cleanup() {
  if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2> /dev/null; then
    kill -9 "$DAEMON_PID" 2> /dev/null
  fi
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*"
  echo "--- daemon stderr ---"
  cat "$WORKDIR/wfmsd.err" 2> /dev/null
  exit 1
}

echo "== boot with tracing on"
"$WFMSD" --port 0 \
  --trace-out "$WORKDIR/server_trace.json" \
  --flight-recorder "$WORKDIR/requests_dump.json" \
  --slow-request-ms 0.001 \
  > "$WORKDIR/wfmsd.out" 2> "$WORKDIR/wfmsd.err" &
DAEMON_PID=$!
PORT=""
for _ in $(seq 100); do
  PORT=$(sed -n 's/^wfmsd: listening on .*:\([0-9]*\)$/\1/p' \
    "$WORKDIR/wfmsd.out" 2> /dev/null)
  [ -n "$PORT" ] && break
  kill -0 "$DAEMON_PID" 2> /dev/null || fail "daemon died during startup"
  sleep 0.1
done
[ -n "$PORT" ] || fail "no listening handshake on stdout"

echo "== traced remote assess"
"$WFMSCTL" assess --connect "127.0.0.1:$PORT" --config 2,2,3 \
  --max-wait 0.05 --min-avail 0.99 --verbose \
  --trace-out "$WORKDIR/client_trace.json" \
  > "$WORKDIR/assess.json" 2> "$WORKDIR/assess.err" \
  || fail "remote assess exited $?"
TRACE_ID=$(sed -n 's/^wfmsctl: trace \([0-9a-f]\{32\}\)$/\1/p' \
  "$WORKDIR/assess.err")
[ -n "$TRACE_ID" ] || fail "no trace id on --verbose stderr"
echo "trace id: $TRACE_ID"
[ -s "$WORKDIR/client_trace.json" ] || fail "client trace not written"

echo "== live /debug/requests carries the record"
python3 - "$PORT" "$WORKDIR" "$TRACE_ID" << 'EOF' || exit 1
import json, socket, sys

port, workdir, trace_id = int(sys.argv[1]), sys.argv[2], sys.argv[3]
s = socket.create_connection(("127.0.0.1", port), timeout=30)
s.sendall(b"GET /debug/requests HTTP/1.0\r\n\r\n")
data = b""
while True:
    chunk = s.recv(65536)
    if not chunk:
        break
    data += chunk
s.close()
head, _, body = data.partition(b"\r\n\r\n")
if not head.startswith(b"HTTP/1.1 200"):
    print("FAIL: /debug/requests answered %s" % head.split(b"\r\n")[0])
    sys.exit(1)
with open(workdir + "/requests_live.json", "wb") as f:
    f.write(body)
doc = json.loads(body)
mine = [r for r in doc["records"] if r["trace_id"] == trace_id]
if len(mine) != 1:
    print("FAIL: %d records for trace %s" % (len(mine), trace_id))
    sys.exit(1)
record = mine[0]
if record["op"] != "assess" or record["disposition"] != "completed":
    print("FAIL: unexpected record %r" % record)
    sys.exit(1)
if record["cache_hit"]:
    print("FAIL: first assess cannot be a cache hit")
    sys.exit(1)
if record["solver_rungs"] < 1:
    print("FAIL: uncached assess reports no solver rungs")
    sys.exit(1)
names = [p["name"] for p in record["phases"]]
for phase in ("queue", "resolve_scenario", "execute"):
    if phase not in names:
        print("FAIL: phase %r missing from %r" % (phase, names))
        sys.exit(1)
print("record ok: phases %r" % names)
EOF
[ $? -eq 0 ] || fail "/debug/requests check failed"
python3 "$TOOLS_DIR/check_observability.py" validate \
  --schema "$TOOLS_DIR/schemas/flight_recorder_schema.json" \
  "$WORKDIR/requests_live.json" || fail "live scrape fails the schema"

echo "== slow-request forensics on stderr"
grep -q "slow request trace=$TRACE_ID" "$WORKDIR/wfmsd.err" \
  || fail "no slow-request log line for trace $TRACE_ID"

echo "== SIGTERM drain writes trace + recorder dump"
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
rc=$?
DAEMON_PID=""
[ "$rc" -eq 0 ] || fail "daemon exited $rc after SIGTERM (want 0)"
[ -s "$WORKDIR/server_trace.json" ] || fail "server trace not written"
[ -s "$WORKDIR/requests_dump.json" ] || fail "recorder dump not written"
python3 "$TOOLS_DIR/check_observability.py" validate \
  --schema "$TOOLS_DIR/schemas/flight_recorder_schema.json" \
  "$WORKDIR/requests_dump.json" || fail "recorder dump fails the schema"
for doc in client_trace server_trace; do
  python3 "$TOOLS_DIR/check_observability.py" validate \
    --schema "$TOOLS_DIR/schemas/trace_schema.json" \
    "$WORKDIR/$doc.json" || fail "$doc fails the trace schema"
done

echo "== merged trace forms one tree"
python3 - "$WORKDIR" "$TRACE_ID" << 'EOF' || exit 1
import json, sys

workdir, trace_id = sys.argv[1], sys.argv[2]

def load(name):
    with open("%s/%s" % (workdir, name), encoding="utf-8") as f:
        return json.load(f)["traceEvents"]

def fail(msg):
    print("FAIL: " + msg)
    sys.exit(1)

client = load("client_trace.json")
server = load("server_trace.json")

def in_trace(events):
    return [e for e in events
            if e.get("args", {}).get("trace_id") == trace_id]

client_mine = in_trace(client)
roots = [e for e in client_mine if e["name"] == "wfmsctl/assess"]
if len(roots) != 1:
    fail("client trace has %d wfmsctl/assess root spans" % len(roots))
root = roots[0]
if "parent_span_id" in root["args"]:
    fail("client root span has a parent")
root_span = root["args"]["span_id"]

server_mine = in_trace(server)
by_name = {}
for e in server_mine:
    by_name.setdefault(e["name"], []).append(e)
for name in ("service/admission", "service/assess"):
    spans = by_name.get(name, [])
    if len(spans) != 1:
        fail("server trace has %d %s spans for the trace" % (len(spans), name))
    if spans[0]["args"].get("parent_span_id") != root_span:
        fail("%s is not parented on the client root span" % name)
assess_span = by_name["service/assess"][0]["args"]["span_id"]
solve = [e for e in server_mine if e["name"].startswith("markov/")]
if not solve:
    fail("no markov solver span under the trace; server spans: %r"
         % sorted(by_name))
parents = {e["args"].get("parent_span_id") for e in solve}
server_span_ids = {e["args"]["span_id"] for e in server_mine}
if not all(p in server_span_ids for p in parents):
    fail("a solver span dangles outside the server tree: %r" % parents)
reachable = {assess_span}
grew = True
while grew:
    grew = False
    for e in server_mine:
        a = e["args"]
        if a.get("parent_span_id") in reachable and a["span_id"] not in reachable:
            reachable.add(a["span_id"])
            grew = True
if not any(e["args"]["span_id"] in reachable for e in solve):
    fail("no solver span reachable from service/assess")

merged = sorted(client + server, key=lambda e: e["ts"])
with open(workdir + "/merged_trace.json", "w", encoding="utf-8") as f:
    json.dump({"traceEvents": merged, "displayTimeUnit": "ms"}, f)
print("one tree: root %s -> service/assess %s -> %d solver span(s)"
      % (root_span, assess_span, len(solve)))
EOF
[ $? -eq 0 ] || fail "merged trace check failed"
python3 "$TOOLS_DIR/check_observability.py" validate \
  --schema "$TOOLS_DIR/schemas/trace_schema.json" \
  "$WORKDIR/merged_trace.json" || fail "merged trace fails the schema"

echo "PASS"

// E14 — corpus engine scalability: generated workflows from 16 to 1024
// tasks (chain and fork_join patterns) run the full corpus pipeline —
// generate, compile to an environment, build the performability tool, and
// assess the all-ones configuration — with per-stage wall times and peak
// RSS recorded. The committed BENCH_corpus.json pins wall time against
// workflow size so a compile- or solve-path regression shows up as a
// trajectory diff.
//
// Usage: bench_corpus [--benchmark_format=json] [--max_tasks=N]
// JSON mode emits a machine-readable array on stdout (one object per
// measurement) for regression tracking.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "configtool/tool.h"
#include "corpus/compile.h"
#include "corpus/generator.h"
#include "perf/workflow_analysis.h"

namespace {

using wfms::corpus::GenerateDag;
using wfms::corpus::Pattern;
using wfms::corpus::Recipe;

double MillisSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Peak resident set size of this process in MiB (VmHWM, Linux; 0 when
/// unavailable). Monotone over the process lifetime, so later rows
/// dominate earlier ones.
double PeakRssMiB() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0.0;
  char line[256];
  long kib = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %ld kB", &kib) == 1) break;
  }
  std::fclose(f);
  return static_cast<double>(kib) / 1024.0;
}

struct Measurement {
  std::string pattern;
  size_t requested_tasks = 0;
  size_t tasks = 0;
  size_t chart_states = 0;
  size_t server_types = 0;
  double generate_ms = 0.0;
  double compile_ms = 0.0;
  double build_ms = 0.0;  // ConfigurationTool::Create (model construction)
  double solve_ms = 0.0;  // Assess of the all-ones configuration
  double max_expected_waiting = 0.0;
  double availability = 0.0;
  double peak_rss_mib = 0.0;
};

wfms::Result<Measurement> RunOne(Pattern pattern, size_t num_tasks) {
  Recipe recipe;
  recipe.pattern = pattern;
  recipe.num_tasks = num_tasks;
  recipe.seed = 42 + num_tasks;
  recipe.service_scv = 4.0;

  Measurement m;
  m.pattern = wfms::corpus::PatternName(pattern);
  m.requested_tasks = num_tasks;

  const auto generate_start = std::chrono::steady_clock::now();
  WFMS_ASSIGN_OR_RETURN(const wfms::corpus::TaskDag dag, GenerateDag(recipe));
  m.generate_ms = MillisSince(generate_start);
  m.tasks = dag.tasks.size();

  const auto compile_start = std::chrono::steady_clock::now();
  WFMS_ASSIGN_OR_RETURN(const wfms::workflow::Environment env,
                        wfms::corpus::CompileDag(dag));
  m.compile_ms = MillisSince(compile_start);
  m.server_types = env.servers.size();
  for (const std::string& name : env.charts.ChartNames()) {
    m.chart_states += (*env.charts.GetChart(name))->num_states();
  }

  wfms::performability::PerformabilityOptions options;
  // Same method as the sweep runner: exact expected-visit loads (the
  // uniformized reward summation does not converge on stiff corpus
  // charts; see src/corpus/sweep.cc).
  options.analysis.method = wfms::perf::LoadMethod::kEmbeddedChain;
  const auto build_start = std::chrono::steady_clock::now();
  WFMS_ASSIGN_OR_RETURN(
      wfms::configtool::ConfigurationTool tool,
      wfms::configtool::ConfigurationTool::Create(env, options));
  tool.set_num_threads(1);
  m.build_ms = MillisSince(build_start);

  const wfms::workflow::Configuration config =
      wfms::workflow::Configuration::Ones(env.servers.size());
  wfms::configtool::Goals goals;  // defaults; satisfaction is not the point
  const auto solve_start = std::chrono::steady_clock::now();
  WFMS_ASSIGN_OR_RETURN(const wfms::configtool::Assessment assessment,
                        tool.Assess(config, goals));
  m.solve_ms = MillisSince(solve_start);
  WFMS_RETURN_NOT_OK(assessment.error);
  m.max_expected_waiting = assessment.performability.max_expected_waiting;
  m.availability = assessment.performability.availability;
  m.peak_rss_mib = PeakRssMiB();
  return m;
}

void EmitJson(const std::vector<Measurement>& measurements) {
  std::printf("[\n");
  for (size_t i = 0; i < measurements.size(); ++i) {
    const Measurement& m = measurements[i];
    std::printf(
        "  {\"pattern\": \"%s\", \"requested_tasks\": %zu, \"tasks\": %zu, "
        "\"chart_states\": %zu, \"server_types\": %zu, "
        "\"generate_ms\": %.3f, \"compile_ms\": %.3f, \"build_ms\": %.3f, "
        "\"solve_ms\": %.3f, \"max_expected_waiting\": %.6f, "
        "\"availability\": %.12f, \"peak_rss_mib\": %.1f}%s\n",
        m.pattern.c_str(), m.requested_tasks, m.tasks, m.chart_states,
        m.server_types, m.generate_ms, m.compile_ms, m.build_ms, m.solve_ms,
        m.max_expected_waiting, m.availability, m.peak_rss_mib,
        i + 1 < measurements.size() ? "," : "");
  }
  std::printf("]\n");
}

void EmitTable(const std::vector<Measurement>& measurements) {
  std::printf("E14 — corpus pipeline trajectory (generate + compile + "
              "build + assess, all-ones config)\n");
  std::printf("%12s %8s %8s %8s %6s %8s %8s %8s %8s %10s\n", "pattern",
              "req", "tasks", "states", "types", "gen_ms", "comp_ms",
              "build_ms", "solve_ms", "rss_mib");
  for (const Measurement& m : measurements) {
    std::printf("%12s %8zu %8zu %8zu %6zu %8.2f %8.2f %8.2f %8.2f %10.1f\n",
                m.pattern.c_str(), m.requested_tasks, m.tasks,
                m.chart_states, m.server_types, m.generate_ms, m.compile_ms,
                m.build_ms, m.solve_ms, m.peak_rss_mib);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  size_t max_tasks = 1024;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--benchmark_format=json") == 0) {
      json = true;
    } else if (std::strncmp(arg, "--max_tasks=", 12) == 0) {
      max_tasks = static_cast<size_t>(std::strtoull(arg + 12, nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return 2;
    }
  }

  std::vector<Measurement> measurements;
  for (const Pattern pattern : {Pattern::kChain, Pattern::kForkJoin}) {
    for (size_t tasks = 16; tasks <= max_tasks; tasks *= 2) {
      auto m = RunOne(pattern, tasks);
      if (!m.ok()) {
        std::fprintf(stderr, "bench_corpus: %s/%zu failed: %s\n",
                     wfms::corpus::PatternName(pattern), tasks,
                     m.status().ToString().c_str());
        return 1;
      }
      measurements.push_back(*std::move(m));
    }
  }

  if (json) {
    EmitJson(measurements);
  } else {
    EmitTable(measurements);
  }
  return 0;
}

# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(wfmsctl_analyze "/root/repo/build/tools/wfmsctl" "analyze" "--scenario" "ep")
set_tests_properties(wfmsctl_analyze PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(wfmsctl_assess "/root/repo/build/tools/wfmsctl" "assess" "--scenario" "ep" "--config" "2,2,3")
set_tests_properties(wfmsctl_assess PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(wfmsctl_recommend "/root/repo/build/tools/wfmsctl" "recommend" "--scenario" "benchmark" "--method" "greedy" "--max-wait" "0.1" "--min-avail" "0.9999")
set_tests_properties(wfmsctl_recommend PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(wfmsctl_simulate "/root/repo/build/tools/wfmsctl" "simulate" "--scenario" "ep" "--config" "1,2,2" "--duration" "5000" "--no-failures")
set_tests_properties(wfmsctl_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(wfmsctl_usage "/root/repo/build/tools/wfmsctl")
set_tests_properties(wfmsctl_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(wfmsctl_trail_roundtrip "/usr/bin/cmake" "-DWFMSCTL=/root/repo/build/tools/wfmsctl" "-DWORKDIR=/root/repo/build/tools" "-P" "/root/repo/tools/trail_roundtrip_test.cmake")
set_tests_properties(wfmsctl_trail_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")

#include "common/solve_diagnostics.h"

#include <cstdio>

namespace wfms {

std::string SolveDiagnostics::ToString() const {
  const char* verdict = converged ? "converged"
                        : diverged ? "diverged"
                        : stalled  ? "stalled"
                                   : "did not converge";
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer),
                "%s in %d iterations (residual %.3g, %.3g ms)", verdict,
                iterations, final_residual, wall_time_seconds * 1e3);
  return buffer;
}

}  // namespace wfms

file(REMOVE_RECURSE
  "CMakeFiles/lu_solver_test.dir/lu_solver_test.cc.o"
  "CMakeFiles/lu_solver_test.dir/lu_solver_test.cc.o.d"
  "lu_solver_test"
  "lu_solver_test.pdb"
  "lu_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lu_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

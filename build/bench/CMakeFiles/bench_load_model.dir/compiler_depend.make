# Empty compiler generated dependencies file for bench_load_model.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/property_models_test.dir/property_models_test.cc.o"
  "CMakeFiles/property_models_test.dir/property_models_test.cc.o.d"
  "property_models_test"
  "property_models_test.pdb"
  "property_models_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

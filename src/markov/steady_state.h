// Steady-state analysis of an ergodic CTMC (§5.2 of the paper): solving
// pi Q = 0 with sum(pi) = 1. Methods:
//  - kGaussSeidel: the paper's prescription — sweep pi_j = (sum_{i != j}
//    pi_i q_ij) / exit_rate_j with in-place updates and per-sweep
//    renormalization (classical Gauss-Seidel for Markov chains).
//  - kSor: the same sweep with over-relaxation; omega is either fixed
//    (options.sor_omega) or derived adaptively from the observed
//    Gauss-Seidel convergence rate.
//  - kPower: power iteration on the uniformized DTMC; robust for large
//    sparse chains where Gauss-Seidel may stall.
//  - kLu: exact dense solve of the transposed system with one equation
//    replaced by the normalization constraint; the reference for tests.
//  - kCascade (and kAuto, its alias): the degradation cascade — Gauss-
//    Seidel, then SOR with adaptive relaxation, then power iteration, then
//    dense LU, falling through on stall, divergence, or failed residual
//    validation, under a shared SolveBudget. Every rung's outcome is
//    recorded in SteadyStateResult::attempts.
#ifndef WFMS_MARKOV_STEADY_STATE_H_
#define WFMS_MARKOV_STEADY_STATE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/solve_diagnostics.h"
#include "common/thread_pool.h"
#include "linalg/vector.h"
#include "markov/ctmc.h"

namespace wfms::markov {

enum class SteadyStateMethod { kAuto, kGaussSeidel, kSor, kLu, kPower,
                               kCascade };

/// Human-readable method name, e.g. "gauss-seidel".
const char* SteadyStateMethodName(SteadyStateMethod method);

/// Lumping-based model reduction (see markov/lumping.h):
///  - kOff: never attempted — every solve is bit-identical to the direct
///    sparse path (the default, and the contract the regression suite
///    pins).
///  - kAuto: attempted once the chain reaches `lumping_min_states`; small
///    chains keep the direct path untouched.
///  - kOn: always attempted (used by tests and the bench harness).
/// A lumped solve returns the exact stationary vector of the full chain
/// (uniform within blocks, which exact lumpability guarantees) and is
/// residual-validated against the full generator; on any validation miss
/// the solver transparently falls back to the direct path.
enum class LumpingMode { kOff, kAuto, kOn };

/// Human-readable mode name: "off" | "auto" | "on".
const char* LumpingModeName(LumpingMode mode);

struct SteadyStateOptions {
  SteadyStateMethod method = SteadyStateMethod::kAuto;
  /// Per-rung iteration cap for the iterative methods (further bounded by
  /// `budget`, which is shared across cascade rungs).
  int max_iterations = 100000;
  double tolerance = 1e-13;
  /// SOR relaxation factor; 0 derives omega from the observed Gauss-Seidel
  /// convergence rate (cascade) or uses 1.5 (explicit kSor).
  double sor_omega = 0.0;
  /// Total budget (wall time + iterations) shared by all cascade rungs.
  /// The terminal LU rung is iteration-free and always attempted when the
  /// chain fits `max_dense_states`, even with the budget exhausted — the
  /// cascade's contract is an exact answer as last resort. Default:
  /// unlimited.
  SolveBudget budget;
  /// Largest chain the dense LU rung will accept; 0 disables LU entirely.
  size_t max_dense_states = 4096;
  /// Stall detection for the cascade's iterative rungs: every
  /// `stall_window` iterations the iterate change must have shrunk by
  /// `stall_decay`, else the rung is abandoned. 0 means "cascade default"
  /// (200) for kCascade/kAuto and "disabled" for the explicit methods,
  /// which keep their full iteration budget.
  int stall_window = 0;
  double stall_decay = 0.5;
  /// Optional warm start for the iterative methods (ignored by kLu): a
  /// non-owning pointer to an initial guess for pi. Used by the
  /// configuration search, where neighbor configurations differ by one
  /// replica and the parent's stationary vector — projected onto the new
  /// state space — is already close to the solution. The guess must stay
  /// alive for the duration of the solve; it is L1-normalized internally
  /// and silently ignored if its size mismatches the chain or its sum is
  /// not positive and finite.
  const linalg::Vector* initial_guess = nullptr;
  /// Model-reduction mode; see LumpingMode. kOff preserves bit-identical
  /// behavior for every chain.
  LumpingMode lumping = LumpingMode::kOff;
  /// kAuto attempts lumping only at or above this state count; kOn ignores
  /// it (always attempts), kOff never attempts.
  size_t lumping_min_states = 32768;
  /// Optional seed partition for the lumping pass: states with different
  /// labels are never merged, and refinement starts from this coarse guess
  /// instead of the one-block partition (see
  /// markov::ExchangeableStateLabels). Non-owning; must outlive the solve.
  /// Size must match the chain or the seed is an error.
  const std::vector<uint32_t>* lumping_seed = nullptr;
  /// Non-owning thread pool for the blocked SpMV kernels (power-iteration
  /// rung, residual validation) on chains at or above
  /// `large_chain_threshold`. When null, a transient pool is created for
  /// large chains; small chains always run the sequential kernels, which
  /// are bit-identical to the scalar reference.
  ThreadPool* pool = nullptr;
  /// At or above this state count the solve engages the large-chain paths:
  /// forward/backward alternating Gauss-Seidel sweeps, the matrix-free
  /// uniformized power rung (P = I + Q/lambda applied without building P),
  /// and pool-parallel kernels. These change floating-point rounding, so
  /// the threshold guarantees every pre-existing (small) solve stays
  /// bit-identical. Results above the threshold are still deterministic
  /// for a given chain regardless of lane count.
  size_t large_chain_threshold = 65536;
};

/// One rung of the degradation cascade and how it fared.
struct CascadeAttempt {
  SteadyStateMethod method = SteadyStateMethod::kGaussSeidel;
  SolveDiagnostics diagnostics;
};

struct SteadyStateResult {
  linalg::Vector pi;
  /// Total iterations consumed, summed across cascade rungs (0 for LU).
  int iterations = 0;
  /// True when the answer came from any rung after the first.
  bool used_fallback = false;
  /// The method that actually produced `pi`.
  SteadyStateMethod method_used = SteadyStateMethod::kGaussSeidel;
  /// Diagnostics of the successful solve.
  SolveDiagnostics diagnostics;
  /// Cascade only: every rung attempted, in order, including the winner.
  std::vector<CascadeAttempt> attempts;
  /// True when the answer came from a lumped (quotient) solve.
  bool lumping_applied = false;
  /// Quotient state count when lumping_applied (0 otherwise).
  size_t lumped_states = 0;
};

/// Computes the stationary distribution. The chain must be irreducible
/// (every state positive recurrent); reducible chains yield either a
/// numerical failure or a distribution with zero entries, which is reported
/// as an error.
Result<SteadyStateResult> SolveSteadyState(
    const Ctmc& chain, const SteadyStateOptions& options = {});

}  // namespace wfms::markov

#endif  // WFMS_MARKOV_STEADY_STATE_H_

// The reconfiguration controller and the closed autotune loop: trigger
// detection, hysteresis, cooldown, plan gating, and the end-to-end
// monitor → calibrate → assess → reconfigure cycle on simulated load.
#include "adapt/controller.h"

#include <gtest/gtest.h>


#include "adapt/autotune.h"
#include "sim/load_schedule.h"
#include "workflow/scenarios.h"

namespace wfms::adapt {
namespace {

using workflow::Configuration;
using workflow::Environment;

Environment Ep(double rate = 0.5) {
  auto env = workflow::EpEnvironment(rate);
  EXPECT_TRUE(env.ok()) << env.status();
  return *std::move(env);
}


ControllerOptions TestOptions() {
  ControllerOptions options;
  options.goals.max_waiting_time = 0.05;
  options.goals.min_availability = 0.99;
  options.hysteresis = 1;
  options.cooldown = 0.0;
  options.drift.min_samples = 3;
  options.drift.lambda = 0.5;
  return options;
}

OnlineCalibratorOptions TestCalibrator() {
  OnlineCalibratorOptions options;
  options.window = 500.0;
  options.tau = 250.0;
  return options;
}

/// Feeds evenly spaced EP arrivals at `rate` over [t0, t1).
void FeedArrivals(ReconfigurationController* controller, double t0, double t1,
                  double rate) {
  for (double t = t0; t < t1; t += 1.0 / rate) {
    controller->Observe(workflow::ArrivalRecord{"EP", t});
  }
}

/// Feeds `n` completions ending in [t0, t1) with the given turnaround.
void FeedCompletions(ReconfigurationController* controller, double t0,
                     double t1, int n, double turnaround) {
  const double step = (t1 - t0) / n;
  for (int i = 0; i < n; ++i) {
    const double end = t0 + i * step;
    controller->Observe(
        workflow::CompletionRecord{"EP", end - turnaround, end});
  }
}

TEST(SearchMethodTest, NamesRoundTrip) {
  for (SearchMethod method :
       {SearchMethod::kGreedy, SearchMethod::kExhaustive,
        SearchMethod::kAnnealing, SearchMethod::kBranchAndBound}) {
    auto parsed = ParseSearchMethod(SearchMethodName(method));
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(*parsed, method);
  }
  auto bnb = ParseSearchMethod("bnb");
  ASSERT_TRUE(bnb.ok());
  EXPECT_EQ(*bnb, SearchMethod::kBranchAndBound);
  EXPECT_FALSE(ParseSearchMethod("gradient-descent").ok());
}

TEST(ControllerTest, SteadyLoadNeverSearches) {
  const Environment env = Ep(0.5);
  ReconfigurationController controller(&env, Configuration({1, 1, 2}),
                                       TestOptions(), TestCalibrator());
  for (int epoch = 0; epoch < 5; ++epoch) {
    FeedArrivals(&controller, epoch * 500.0, (epoch + 1) * 500.0, 0.5);
    auto decision = controller.Evaluate((epoch + 1) * 500.0);
    ASSERT_TRUE(decision.ok()) << decision.status();
    EXPECT_TRUE(decision->drifted.empty());
    EXPECT_FALSE(decision->goal_violation);
    EXPECT_FALSE(decision->searched);
    EXPECT_FALSE(decision->reconfigured);
    EXPECT_EQ(decision->consecutive_triggers, 0);
  }
  EXPECT_EQ(controller.current_config(), Configuration({1, 1, 2}));
  EXPECT_TRUE(controller.applied_plans().empty());
  EXPECT_EQ(controller.decisions().size(), 5u);
}

TEST(ControllerTest, ArrivalSurgeGrowsConfiguration) {
  const Environment env = Ep(0.5);
  const Configuration initial({1, 1, 2});
  ReconfigurationController controller(&env, initial, TestOptions(),
                                       TestCalibrator());
  // Establish the baseline regime, then quadruple the arrival rate.
  double t = 0.0;
  for (int epoch = 0; epoch < 3; ++epoch, t += 500.0) {
    FeedArrivals(&controller, t, t + 500.0, 0.5);
    ASSERT_TRUE(controller.Evaluate(t + 500.0).ok());
  }
  bool reconfigured = false;
  for (int epoch = 0; epoch < 6 && !reconfigured; ++epoch, t += 500.0) {
    FeedArrivals(&controller, t, t + 500.0, 2.0);
    auto decision = controller.Evaluate(t + 500.0);
    ASSERT_TRUE(decision.ok()) << decision.status();
    reconfigured = decision->reconfigured;
    if (reconfigured) {
      EXPECT_FALSE(decision->drifted.empty());
      EXPECT_TRUE(decision->searched);
      EXPECT_TRUE(decision->plan.predicted_satisfied);
      EXPECT_GT(decision->plan.replicas_added, 0);
      EXPECT_FALSE(decision->plan.ToString().empty());
    }
  }
  ASSERT_TRUE(reconfigured);
  // The new configuration serves 4x the load: strictly more replicas,
  // component-wise no smaller.
  const Configuration& current = controller.current_config();
  EXPECT_GT(current.total_servers(), initial.total_servers());
  for (size_t x = 0; x < initial.replicas.size(); ++x) {
    EXPECT_GE(current.replicas[x], initial.replicas[x]);
  }
  ASSERT_EQ(controller.applied_plans().size(), 1u);
  EXPECT_EQ(controller.applied_plans()[0].to, current);
}

TEST(ControllerTest, TurnaroundSloViolationTriggersSearch) {
  const Environment env = Ep(0.5);
  ControllerOptions options = TestOptions();
  options.max_turnaround = 100.0;
  ReconfigurationController controller(&env, Configuration({1, 1, 1}),
                                       options, TestCalibrator());
  FeedArrivals(&controller, 0.0, 500.0, 0.5);
  FeedCompletions(&controller, 400.0, 500.0, 50, 300.0);  // 3x the SLO
  auto decision = controller.Evaluate(500.0);
  ASSERT_TRUE(decision.ok()) << decision.status();
  EXPECT_TRUE(decision->goal_violation);
  EXPECT_NE(decision->trigger_reason.find("turnaround"), std::string::npos)
      << decision->trigger_reason;
  EXPECT_TRUE(decision->searched);
}

TEST(ControllerTest, HysteresisRequiresConsecutiveTriggers) {
  const Environment env = Ep(0.5);
  ControllerOptions options = TestOptions();
  options.max_turnaround = 100.0;
  options.hysteresis = 2;
  ReconfigurationController controller(&env, Configuration({1, 1, 1}),
                                       options, TestCalibrator());
  FeedCompletions(&controller, 400.0, 500.0, 50, 300.0);
  auto first = controller.Evaluate(500.0);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->goal_violation);
  EXPECT_EQ(first->consecutive_triggers, 1);
  EXPECT_FALSE(first->searched);  // below the hysteresis threshold

  FeedCompletions(&controller, 900.0, 1000.0, 50, 300.0);
  auto second = controller.Evaluate(1000.0);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->consecutive_triggers, 2);
  EXPECT_TRUE(second->searched);
}

TEST(ControllerTest, CooldownBlocksBackToBackReconfigurations) {
  const Environment env = Ep(0.5);
  ControllerOptions options = TestOptions();
  options.max_turnaround = 100.0;
  options.cooldown = 10000.0;
  ReconfigurationController controller(&env, Configuration({1, 1, 1}),
                                       options, TestCalibrator());
  FeedCompletions(&controller, 400.0, 500.0, 50, 300.0);
  auto first = controller.Evaluate(500.0);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->reconfigured);  // (1,1,1) misses the goals: grow

  // The violation persists, but the cooldown window must hold the line.
  FeedCompletions(&controller, 900.0, 1000.0, 50, 300.0);
  auto second = controller.Evaluate(1000.0);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->goal_violation);
  EXPECT_FALSE(second->searched);
  EXPECT_FALSE(second->reconfigured);
  EXPECT_EQ(controller.applied_plans().size(), 1u);
}

AutotuneOptions BaseAutotune(const Configuration& initial) {
  AutotuneOptions options;
  options.initial = initial;
  options.duration = 6000.0;
  options.epoch = 1000.0;
  options.seed = 7;
  options.enable_failures = false;
  options.controller = TestOptions();
  options.controller.max_turnaround = 250.0;
  options.controller.hysteresis = 1;
  options.calibrator.window = 2000.0;
  options.calibrator.tau = 1000.0;
  return options;
}

TEST(AutotuneTest, SteadyLoadHoldsConfiguration) {
  const Environment env = Ep(0.5);
  // Start from the recommended configuration for the designed load: the
  // control run must never reconfigure.
  auto report = RunAutotune(env, BaseAutotune(Configuration({1, 1, 2})));
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->reconfigurations, 0);
  EXPECT_EQ(report->final_config, Configuration({1, 1, 2}));
  EXPECT_EQ(report->epochs.size(), 6u);
  EXPECT_GT(report->events_total, 0u);
  EXPECT_EQ(report->dropped_total, 0u);
  for (const EpochReport& epoch : report->epochs) {
    EXPECT_EQ(epoch.config, Configuration({1, 1, 2}));
    EXPECT_FALSE(epoch.decision.reconfigured);
  }
}

TEST(AutotuneTest, LoadDoublingGrowsConfiguration) {
  const Environment env = Ep(0.5);
  AutotuneOptions options = BaseAutotune(Configuration({1, 1, 2}));
  options.duration = 8000.0;
  options.load.events = {{2500.0, sim::LoadAction::kScaleAll, 0, 2.0}};
  auto report = RunAutotune(env, options);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_GE(report->reconfigurations, 1);
  // Strictly more capacity, component-wise no smaller, goals predicted
  // met again under the doubled load.
  EXPECT_GT(report->final_config.total_servers(), 4);
  for (size_t x = 0; x < 3; ++x) {
    EXPECT_GE(report->final_config.replicas[x],
              Configuration({1, 1, 2}).replicas[x]);
  }
  bool found_plan = false;
  for (const EpochReport& epoch : report->epochs) {
    if (epoch.decision.reconfigured) {
      EXPECT_TRUE(epoch.decision.plan.predicted_satisfied);
      EXPECT_GE(epoch.start, 2500.0 - options.epoch);  // after the shift
      found_plan = true;
      break;
    }
  }
  EXPECT_TRUE(found_plan);
}

TEST(AutotuneTest, RunsAreDeterministic) {
  const Environment env = Ep(0.5);
  AutotuneOptions options = BaseAutotune(Configuration({1, 1, 1}));
  options.load.events = {{2000.0, sim::LoadAction::kScaleAll, 0, 2.0}};
  options.controller.max_turnaround = 150.0;
  auto a = RunAutotune(env, options);
  auto b = RunAutotune(env, options);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(a->events_total, b->events_total);
  EXPECT_EQ(a->reconfigurations, b->reconfigurations);
  EXPECT_EQ(a->final_config, b->final_config);
  ASSERT_EQ(a->epochs.size(), b->epochs.size());
  for (size_t i = 0; i < a->epochs.size(); ++i) {
    EXPECT_EQ(a->epochs[i].events, b->epochs[i].events);
    EXPECT_EQ(a->epochs[i].config, b->epochs[i].config);
    EXPECT_DOUBLE_EQ(a->epochs[i].observed_turnaround,
                     b->epochs[i].observed_turnaround);
  }
  EXPECT_EQ(a->ToString(), b->ToString());
}

}  // namespace
}  // namespace wfms::adapt

file(REMOVE_RECURSE
  "CMakeFiles/iterative_solver_test.dir/iterative_solver_test.cc.o"
  "CMakeFiles/iterative_solver_test.dir/iterative_solver_test.cc.o.d"
  "iterative_solver_test"
  "iterative_solver_test.pdb"
  "iterative_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iterative_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "sim/fault_schedule.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "common/string_util.h"

namespace wfms::sim {

const char* FaultActionName(FaultAction action) {
  switch (action) {
    case FaultAction::kCrash:
      return "crash";
    case FaultAction::kRepair:
      return "repair";
    case FaultAction::kTypeOutage:
      return "outage";
    case FaultAction::kTypeRestore:
      return "restore";
    case FaultAction::kSiteCrash:
      return "site-crash";
    case FaultAction::kSiteRepair:
      return "site-repair";
    case FaultAction::kPartition:
      return "partition";
    case FaultAction::kHeal:
      return "heal";
  }
  return "unknown";
}

bool IsSiteAction(FaultAction action) {
  return action == FaultAction::kSiteCrash ||
         action == FaultAction::kSiteRepair ||
         action == FaultAction::kPartition || action == FaultAction::kHeal;
}

Status FaultSchedule::Validate(const workflow::Configuration& config,
                               size_t num_types,
                               const workflow::SiteTopology* topology) const {
  WFMS_RETURN_NOT_OK(config.Validate(num_types));
  const size_t num_sites =
      topology != nullptr ? topology->num_sites() : 0;
  for (size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& event = events[i];
    const std::string where = "fault event " + std::to_string(i + 1);
    if (!std::isfinite(event.time) || event.time < 0.0) {
      return Status::InvalidArgument(where +
                                     ": time must be finite and >= 0");
    }
    if (IsSiteAction(event.action)) {
      if (num_sites == 0) {
        return Status::InvalidArgument(
            where + ": '" + FaultActionName(event.action) +
            "' needs an environment with a sites section");
      }
      if (!config.has_sites()) {
        return Status::InvalidArgument(
            where + ": '" + FaultActionName(event.action) +
            "' needs a site-placed configuration");
      }
      if (event.site_a >= num_sites ||
          ((event.action == FaultAction::kPartition ||
            event.action == FaultAction::kHeal) &&
           (event.site_b >= num_sites || event.site_a == event.site_b))) {
        return Status::InvalidArgument(where + ": site index out of range");
      }
      continue;
    }
    if (overlay) {
      return Status::InvalidArgument(
          where + ": overlay mode permits only site-level events "
                  "(site-crash, site-repair, partition, heal), got '" +
          FaultActionName(event.action) + "'");
    }
    if (event.server_type >= num_types) {
      return Status::InvalidArgument(
          where + ": server type index " +
          std::to_string(event.server_type) + " out of range (have " +
          std::to_string(num_types) + " types)");
    }
    if (event.action == FaultAction::kCrash ||
        event.action == FaultAction::kRepair) {
      if (event.server_index < 0 ||
          event.server_index >= config.replicas[event.server_type]) {
        return Status::InvalidArgument(
            where + ": replica index " + std::to_string(event.server_index) +
            " out of range for a type replicated " +
            std::to_string(config.replicas[event.server_type]) + " times");
      }
    }
  }
  return Status::OK();
}

std::vector<FaultEvent> FaultSchedule::Sorted() const {
  std::vector<FaultEvent> sorted = events;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time < b.time;
                   });
  return sorted;
}

Result<double> FaultSchedule::PrescribedAvailability(
    const workflow::Configuration& config, size_t num_types, double warmup,
    double duration, const workflow::SiteTopology* topology) const {
  WFMS_RETURN_NOT_OK(Validate(config, num_types, topology));
  if (!(duration > warmup) || warmup < 0.0) {
    return Status::InvalidArgument(
        "prescribed availability needs 0 <= warmup < duration");
  }
  const bool site_mode =
      topology != nullptr && !topology->empty() && config.has_sites();
  const size_t s = site_mode ? topology->num_sites() : 0;
  if (site_mode) WFMS_RETURN_NOT_OK(config.ValidateSites(num_types, s));

  // Replay over per-replica up flags (plus site/partition masks in site
  // mode), integrating the availability indicator over the window.
  std::vector<std::vector<char>> up(num_types);
  std::vector<int> up_counts(num_types);
  for (size_t x = 0; x < num_types; ++x) {
    up[x].assign(static_cast<size_t>(config.replicas[x]), 1);
    up_counts[x] = config.replicas[x];
  }
  uint64_t up_sites =
      s > 0 ? ((uint64_t{1} << s) - 1) : 0;
  uint64_t partitioned = 0;
  std::vector<int> site_up_counts;  // per (type, site), site mode only

  const auto available = [&] {
    if (!site_mode) {
      for (size_t x = 0; x < num_types; ++x) {
        if (up_counts[x] == 0) return false;
      }
      return true;
    }
    // Attribute the per-replica flags back to sites via the site-major
    // block mapping, then ask the coverage structure function.
    site_up_counts.assign(num_types * s, 0);
    for (size_t x = 0; x < num_types; ++x) {
      size_t g = 0;
      for (size_t a = 0; a < s; ++a) {
        const int placed = config.SiteCount(x, a);
        for (int i = 0; i < placed; ++i, ++g) {
          site_up_counts[x * s + a] += up[x][g];
        }
      }
    }
    return workflow::ServingComponent(num_types, s, site_up_counts.data(),
                                      up_sites, partitioned) != 0;
  };

  // One whole site's replica block per type, forced to `value` (the
  // non-overlay site-crash/site-repair mechanics).
  const auto force_site = [&](size_t site, char value) {
    for (size_t x = 0; x < num_types; ++x) {
      size_t g = 0;
      for (size_t a = 0; a < s; ++a) {
        const int placed = config.SiteCount(x, a);
        if (a != site) {
          g += static_cast<size_t>(placed);
          continue;
        }
        for (int i = 0; i < placed; ++i, ++g) {
          if (up[x][g] != value) {
            up[x][g] = value;
            up_counts[x] += value ? 1 : -1;
          }
        }
      }
    }
  };

  double uptime = 0.0;
  double cursor = warmup;
  bool currently_up = available();  // full configuration before any event
  for (const FaultEvent& event : Sorted()) {
    if (event.time >= duration) break;
    if (event.time > cursor && currently_up) uptime += event.time - cursor;
    cursor = std::max(cursor, event.time);
    switch (event.action) {
      case FaultAction::kCrash: {
        char& flag = up[event.server_type][
            static_cast<size_t>(event.server_index)];
        if (flag) {
          flag = 0;
          --up_counts[event.server_type];
        }
        break;
      }
      case FaultAction::kRepair: {
        char& flag = up[event.server_type][
            static_cast<size_t>(event.server_index)];
        if (!flag) {
          flag = 1;
          ++up_counts[event.server_type];
        }
        break;
      }
      case FaultAction::kTypeOutage:
        up[event.server_type].assign(up[event.server_type].size(), 0);
        up_counts[event.server_type] = 0;
        break;
      case FaultAction::kTypeRestore:
        up[event.server_type].assign(up[event.server_type].size(), 1);
        up_counts[event.server_type] =
            static_cast<int>(up[event.server_type].size());
        break;
      case FaultAction::kSiteCrash:
        up_sites &= ~(uint64_t{1} << event.site_a);
        if (!overlay) force_site(event.site_a, 0);
        break;
      case FaultAction::kSiteRepair:
        up_sites |= uint64_t{1} << event.site_a;
        if (!overlay) force_site(event.site_a, 1);
        break;
      case FaultAction::kPartition:
        partitioned |= uint64_t{1} << workflow::PairIndex(
            std::min(event.site_a, event.site_b),
            std::max(event.site_a, event.site_b), s);
        break;
      case FaultAction::kHeal:
        partitioned &= ~(uint64_t{1} << workflow::PairIndex(
            std::min(event.site_a, event.site_b),
            std::max(event.site_a, event.site_b), s));
        break;
    }
    currently_up = available();
  }
  if (currently_up && duration > cursor) uptime += duration - cursor;
  return uptime / (duration - warmup);
}

Result<FaultSchedule> ParseFaultSchedule(
    const std::string& text, const workflow::ServerTypeRegistry& servers,
    const workflow::SiteTopology* topology) {
  FaultSchedule schedule;
  const std::vector<std::string> lines = SplitString(text, '\n');
  // Hardening state: the schedule must be chronological, and a replica or
  // site crashed by the script must be repaired before it crashes again.
  double last_time = 0.0;
  bool have_time = false;
  std::set<std::pair<size_t, int>> crashed_replicas;
  std::set<size_t> crashed_sites;
  for (size_t lineno = 0; lineno < lines.size(); ++lineno) {
    std::string_view line = StripWhitespace(lines[lineno]);
    const auto fail = [&](const std::string& why) {
      return Status::ParseError("fault schedule line " +
                                std::to_string(lineno + 1) + ": " + why);
    };
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> tokens =
        SplitString(line, ' ', /*skip_empty=*/true);
    if (tokens[0] == "mode") {
      if (tokens.size() != 2 || tokens[1] != "overlay") {
        return fail("expected 'mode overlay'");
      }
      schedule.overlay = true;
      continue;
    }
    if (tokens.size() < 4 || tokens[0] != "at") {
      return fail(
          "expected 'at <time> crash|repair|outage|restore <server-type> "
          "[replica-index]', a site directive ('at <time> "
          "site-crash|site-repair <site>', 'at <time> partition|heal "
          "<A>|<B>'), or 'mode overlay'");
    }
    FaultEvent event;
    if (!ParseDouble(tokens[1], &event.time)) {
      return fail("bad time '" + tokens[1] + "'");
    }
    if (have_time && event.time < last_time) {
      return fail("out-of-order timestamp " + tokens[1] +
                  " (previous event was at " + std::to_string(last_time) +
                  "; schedules must be chronological)");
    }
    last_time = event.time;
    have_time = true;
    const std::string& verb = tokens[2];
    const auto resolve_site = [&](const std::string& name,
                                  size_t* index) -> Status {
      if (topology == nullptr || topology->empty()) {
        return fail("'" + verb +
                    "' needs an environment with a sites section");
      }
      auto resolved = topology->IndexOf(name);
      if (!resolved.ok()) {
        return fail("unknown site '" + name + "'");
      }
      *index = *resolved;
      return Status::OK();
    };
    if (verb == "crash" || verb == "repair") {
      event.action =
          verb == "crash" ? FaultAction::kCrash : FaultAction::kRepair;
    } else if (verb == "outage") {
      event.action = FaultAction::kTypeOutage;
    } else if (verb == "restore") {
      event.action = FaultAction::kTypeRestore;
    } else if (verb == "site-crash" || verb == "site-repair") {
      event.action = verb == "site-crash" ? FaultAction::kSiteCrash
                                          : FaultAction::kSiteRepair;
      if (tokens.size() > 4) return fail("trailing tokens");
      WFMS_RETURN_NOT_OK(resolve_site(tokens[3], &event.site_a));
      if (event.action == FaultAction::kSiteCrash) {
        if (!crashed_sites.insert(event.site_a).second) {
          return fail("overlapping crash window: site '" + tokens[3] +
                      "' is already down (no intervening site-repair)");
        }
      } else {
        crashed_sites.erase(event.site_a);
      }
      schedule.events.push_back(event);
      continue;
    } else if (verb == "partition" || verb == "heal") {
      event.action =
          verb == "partition" ? FaultAction::kPartition : FaultAction::kHeal;
      if (tokens.size() > 4) return fail("trailing tokens");
      const std::vector<std::string> pair = SplitString(tokens[3], '|');
      if (pair.size() != 2 || pair[0].empty() || pair[1].empty()) {
        return fail("'" + verb + "' wants '<site>|<site>', got '" +
                    tokens[3] + "'");
      }
      WFMS_RETURN_NOT_OK(resolve_site(pair[0], &event.site_a));
      WFMS_RETURN_NOT_OK(resolve_site(pair[1], &event.site_b));
      if (event.site_a == event.site_b) {
        return fail("a site cannot be partitioned from itself");
      }
      schedule.events.push_back(event);
      continue;
    } else {
      return fail("unknown action '" + verb +
                  "' (want crash, repair, outage, restore, site-crash, "
                  "site-repair, partition, or heal)");
    }
    auto type_index = servers.IndexOf(tokens[3]);
    if (!type_index.ok()) {
      return fail("unknown server type '" + tokens[3] + "'");
    }
    event.server_type = *type_index;
    if (tokens.size() >= 5) {
      if (event.action == FaultAction::kTypeOutage ||
          event.action == FaultAction::kTypeRestore) {
        return fail("'" + verb + "' takes no replica index");
      }
      if (!ParseInt(tokens[4], &event.server_index)) {
        return fail("bad replica index '" + tokens[4] + "'");
      }
    }
    if (tokens.size() > 5) return fail("trailing tokens");
    if (event.action == FaultAction::kCrash) {
      const std::pair<size_t, int> replica{event.server_type,
                                           event.server_index};
      if (!crashed_replicas.insert(replica).second) {
        return fail("overlapping crash window: " + tokens[3] + " replica " +
                    std::to_string(event.server_index) +
                    " is already down (no intervening repair)");
      }
    } else if (event.action == FaultAction::kRepair) {
      crashed_replicas.erase({event.server_type, event.server_index});
    }
    schedule.events.push_back(event);
  }
  return schedule;
}

}  // namespace wfms::sim

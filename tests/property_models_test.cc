// Property sweeps over the assessment models: monotonicity and
// consistency laws that must hold for any environment/configuration, plus
// randomized environments exercising the full model stack.

#include <gtest/gtest.h>

#include <cmath>

#include "avail/availability_model.h"
#include "common/random.h"
#include "configtool/tool.h"
#include "perf/performance_model.h"
#include "performability/performability_model.h"
#include "statechart/builder.h"
#include "workflow/scenarios.h"

namespace wfms {
namespace {

using workflow::Configuration;
using workflow::Environment;

/// Random environment: a linear workflow of 2-6 activity states with
/// random residences/loads over 2-4 server types, with a random loop.
Environment MakeRandomEnvironment(uint64_t seed) {
  Rng rng(seed);
  const int num_states = 2 + static_cast<int>(rng.NextUint64(5));
  const size_t num_types = 2 + rng.NextUint64(3);

  statechart::ChartBuilder builder("W");
  std::vector<std::string> names;
  for (int i = 0; i < num_states; ++i) {
    // Two-step name builds dodge a GCC 12 -Wrestrict false positive on
    // the fused literal+number concatenation (GCC PR105329).
    std::string name(1, 's');
    name += std::to_string(i);
    names.push_back(std::move(name));
    std::string activity("act");
    activity += std::to_string(i);
    builder.AddActivityState(names.back(), activity,
                             rng.NextDouble(0.5, 20.0));
  }
  builder.SetInitial(names.front()).SetFinal(names.back());
  for (int i = 0; i + 1 < num_states; ++i) {
    if (i > 0 && rng.NextBernoulli(0.4)) {
      const double back = rng.NextDouble(0.05, 0.4);
      builder.AddTransition(names[static_cast<size_t>(i)],
                            names[static_cast<size_t>(i - 1)], back);
      builder.AddTransition(names[static_cast<size_t>(i)],
                            names[static_cast<size_t>(i + 1)], 1.0 - back);
    } else {
      builder.AddTransition(names[static_cast<size_t>(i)],
                            names[static_cast<size_t>(i + 1)], 1.0);
    }
  }
  auto chart = builder.Build();
  EXPECT_TRUE(chart.ok()) << chart.status();

  Environment env;
  EXPECT_TRUE(env.charts.AddChart(*std::move(chart)).ok());
  for (size_t x = 0; x < num_types; ++x) {
    EXPECT_TRUE(env.servers
                    .AddServerType(
                        {"srv" + std::to_string(x),
                         workflow::ServerKind::kWorkflowEngine,
                         queueing::ExponentialService(
                             rng.NextDouble(0.005, 0.05)),
                         1.0 / rng.NextDouble(500.0, 50000.0),
                         1.0 / rng.NextDouble(5.0, 30.0)})
                    .ok());
  }
  for (int i = 0; i < num_states; ++i) {
    linalg::Vector load(num_types, 0.0);
    for (size_t x = 0; x < num_types; ++x) {
      load[x] = static_cast<double>(rng.NextUint64(4));
    }
    load[rng.NextUint64(num_types)] += 1.0;  // at least some load
    EXPECT_TRUE(
        env.loads.SetLoad("act" + std::to_string(i), std::move(load)).ok());
  }
  env.workflows.push_back({"W", "W", rng.NextDouble(0.05, 0.4)});
  EXPECT_TRUE(env.Validate().ok());
  return env;
}

class RandomEnvironmentProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomEnvironmentProperty, LoadBalanceLaw) {
  // The total request rate must equal arrival rate x expected requests,
  // and per-server rates must sum back to the total for any config.
  const Environment env = MakeRandomEnvironment(7000 + GetParam());
  auto model = perf::PerformanceModel::Create(env);
  ASSERT_TRUE(model.ok()) << model.status();
  const auto& analysis = model->workflows()[0];
  for (size_t x = 0; x < env.num_server_types(); ++x) {
    EXPECT_NEAR(model->total_request_rates()[x],
                env.workflows[0].arrival_rate * analysis.expected_requests[x],
                1e-9);
  }
  Configuration config = Configuration::Uniform(env.num_server_types(), 3);
  auto report = model->EvaluateWaitingTimes(config);
  ASSERT_TRUE(report.ok());
  for (size_t x = 0; x < env.num_server_types(); ++x) {
    EXPECT_NEAR(report->servers[x].per_server_rate * 3.0,
                report->servers[x].total_arrival_rate, 1e-9);
  }
}

TEST_P(RandomEnvironmentProperty, WaitingMonotoneInReplication) {
  const Environment env = MakeRandomEnvironment(8000 + GetParam());
  auto model = perf::PerformanceModel::Create(env);
  ASSERT_TRUE(model.ok());
  const size_t k = env.num_server_types();
  double prev_max = std::numeric_limits<double>::infinity();
  for (int y = 1; y <= 4; ++y) {
    auto report = model->EvaluateWaitingTimes(Configuration::Uniform(k, y));
    ASSERT_TRUE(report.ok());
    if (!report->any_saturated) {
      EXPECT_LE(report->max_waiting_time, prev_max + 1e-12);
      prev_max = report->max_waiting_time;
    }
  }
}

TEST_P(RandomEnvironmentProperty, ThroughputMonotoneInReplication) {
  const Environment env = MakeRandomEnvironment(9000 + GetParam());
  auto model = perf::PerformanceModel::Create(env);
  ASSERT_TRUE(model.ok());
  const size_t k = env.num_server_types();
  double prev = 0.0;
  for (int y = 1; y <= 4; ++y) {
    auto report =
        model->MaxSustainableThroughput(Configuration::Uniform(k, y));
    ASSERT_TRUE(report.ok());
    EXPECT_GE(report->max_workflows_per_time_unit, prev - 1e-12);
    // Uniform replication scales capacity linearly.
    prev = report->max_workflows_per_time_unit;
  }
}

TEST_P(RandomEnvironmentProperty, AvailabilityMonotoneAndProductForm) {
  const Environment env = MakeRandomEnvironment(10000 + GetParam());
  auto model = avail::AvailabilityModel::Create(env.servers);
  ASSERT_TRUE(model.ok());
  const size_t k = env.num_server_types();
  double prev_unavail = 1.0;
  for (int y = 1; y <= 3; ++y) {
    const Configuration config = Configuration::Uniform(k, y);
    auto report = model->Evaluate(config);
    ASSERT_TRUE(report.ok());
    EXPECT_LT(report->unavailability, prev_unavail);
    prev_unavail = report->unavailability;
    // CTMC vs product form.
    auto product = model->ProductFormStateProbabilities(config, report->space);
    ASSERT_TRUE(product.ok());
    for (size_t i = 0; i < product->size(); ++i) {
      EXPECT_NEAR(report->state_probabilities[i], (*product)[i], 1e-8);
    }
  }
}

TEST_P(RandomEnvironmentProperty, PerformabilityDominatesFailureFree) {
  const Environment env = MakeRandomEnvironment(11000 + GetParam());
  auto model = performability::PerformabilityModel::Create(env);
  ASSERT_TRUE(model.ok());
  const size_t k = env.num_server_types();
  auto report = model->Evaluate(Configuration::Uniform(k, 2));
  ASSERT_TRUE(report.ok());
  for (size_t x = 0; x < k; ++x) {
    if (!std::isinf(report->full_config_waiting[x])) {
      EXPECT_GE(report->expected_waiting[x],
                report->full_config_waiting[x] * (1.0 - 1e-9));
    }
  }
  EXPECT_GE(report->availability, 0.0);
  EXPECT_LE(report->availability, 1.0);
  EXPECT_LE(report->prob_down + report->prob_saturated +
                report->prob_degraded,
            1.0 + 1e-9);
}

TEST_P(RandomEnvironmentProperty, GreedyNeverBeatenByMoreThanOneServer) {
  const Environment env = MakeRandomEnvironment(12000 + GetParam());
  auto tool = configtool::ConfigurationTool::Create(env);
  ASSERT_TRUE(tool.ok());
  configtool::Goals goals;
  goals.max_waiting_time = 0.08;
  goals.min_availability = 0.9999;
  configtool::SearchConstraints constraints;
  constraints.max_replicas.assign(env.num_server_types(), 4);
  auto greedy = tool->GreedyMinCost(goals, constraints);
  auto optimal = tool->ExhaustiveMinCost(goals, constraints);
  ASSERT_TRUE(greedy.ok());
  ASSERT_TRUE(optimal.ok());
  EXPECT_EQ(greedy->satisfied, optimal->satisfied);
  if (optimal->satisfied) {
    EXPECT_LE(greedy->cost, optimal->cost + 1.0);
    EXPECT_LE(greedy->evaluations, optimal->evaluations);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomEnvironmentProperty,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace wfms

#include "linalg/sparse_matrix.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace wfms::linalg {

SparseMatrixBuilder::SparseMatrixBuilder(size_t rows, size_t cols)
    : rows_(rows), cols_(cols) {}

void SparseMatrixBuilder::Add(size_t row, size_t col, double value) {
  WFMS_DCHECK(row < rows_);
  WFMS_DCHECK(col < cols_);
  if (value == 0.0) return;
  triplets_.push_back({row, col, value});
  if (triplets_.size() >= coalesce_watermark_) Compact();
}

void SparseMatrixBuilder::Reserve(size_t nnz_hint) {
  triplets_.reserve(nnz_hint);
}

void SparseMatrixBuilder::SetCoalesceWatermark(size_t watermark) {
  coalesce_watermark_ = std::max<size_t>(1, watermark);
  if (triplets_.size() >= coalesce_watermark_) Compact();
}

void SparseMatrixBuilder::Compact() {
  std::sort(triplets_.begin(), triplets_.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  size_t out = 0;
  for (size_t i = 0; i < triplets_.size();) {
    Triplet merged = triplets_[i++];
    while (i < triplets_.size() && triplets_[i].row == merged.row &&
           triplets_[i].col == merged.col) {
      merged.value += triplets_[i++].value;
    }
    // Exact-zero sums are kept: dropping them here while Build() drops them
    // again would be harmless, but keeping Compact a pure regrouping makes
    // it composable with any number of later insertions to the same slot.
    triplets_[out++] = merged;
  }
  triplets_.resize(out);
  // Next compaction only once the store doubles again, so an assembly with
  // few duplicates pays at most O(log n) compaction sorts.
  coalesce_watermark_ = std::max(coalesce_watermark_, 2 * triplets_.size());
}

SparseMatrix SparseMatrixBuilder::Build() & {
  std::sort(triplets_.begin(), triplets_.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  SparseMatrix m;
  m.rows_ = rows_;
  m.cols_ = cols_;
  m.row_offsets_.assign(rows_ + 1, 0);
  m.col_indices_.reserve(triplets_.size());
  m.values_.reserve(triplets_.size());

  // Merge duplicates.
  size_t i = 0;
  while (i < triplets_.size()) {
    const size_t row = triplets_[i].row;
    const size_t col = triplets_[i].col;
    double sum = 0.0;
    while (i < triplets_.size() && triplets_[i].row == row &&
           triplets_[i].col == col) {
      sum += triplets_[i].value;
      ++i;
    }
    if (sum != 0.0) {
      m.col_indices_.push_back(col);
      m.values_.push_back(sum);
      ++m.row_offsets_[row + 1];
    }
  }
  for (size_t r = 0; r < rows_; ++r) {
    m.row_offsets_[r + 1] += m.row_offsets_[r];
  }
  triplets_.clear();
  return m;
}

SparseMatrix SparseMatrixBuilder::Build() && {
  SparseMatrix m = Build();
  triplets_.shrink_to_fit();
  return m;
}

SparseMatrix SparseMatrix::FromDense(const DenseMatrix& dense,
                                     double drop_tolerance) {
  SparseMatrixBuilder builder(dense.rows(), dense.cols());
  for (size_t r = 0; r < dense.rows(); ++r) {
    for (size_t c = 0; c < dense.cols(); ++c) {
      const double v = dense.At(r, c);
      if (std::fabs(v) > drop_tolerance) builder.Add(r, c, v);
    }
  }
  return builder.Build();
}

Vector SparseMatrix::Multiply(const Vector& x) const {
  WFMS_CHECK_EQ(x.size(), cols_);
  Vector y(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      sum += values_[k] * x[col_indices_[k]];
    }
    y[r] = sum;
  }
  return y;
}

Vector SparseMatrix::MultiplyTransposed(const Vector& x) const {
  Vector y;
  MultiplyTransposed(x, &y);
  return y;
}

void SparseMatrix::MultiplyTransposed(const Vector& x, Vector* out) const {
  WFMS_CHECK_EQ(x.size(), rows_);
  WFMS_DCHECK(out != &x);
  out->assign(cols_, 0.0);
  Vector& y = *out;
  for (size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      y[col_indices_[k]] += values_[k] * xr;
    }
  }
}

SparseMatrix SparseMatrix::Transposed() const {
  SparseMatrixBuilder builder(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      builder.Add(col_indices_[k], r, values_[k]);
    }
  }
  return builder.Build();
}

DenseMatrix SparseMatrix::ToDense() const {
  DenseMatrix out(rows_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      out.At(r, col_indices_[k]) = values_[k];
    }
  }
  return out;
}

double SparseMatrix::At(size_t row, size_t col) const {
  WFMS_DCHECK(row < rows_);
  WFMS_DCHECK(col < cols_);
  const auto begin = col_indices_.begin() +
                     static_cast<std::ptrdiff_t>(row_offsets_[row]);
  const auto end = col_indices_.begin() +
                   static_cast<std::ptrdiff_t>(row_offsets_[row + 1]);
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return 0.0;
  return values_[static_cast<size_t>(it - col_indices_.begin())];
}

}  // namespace wfms::linalg

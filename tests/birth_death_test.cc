#include "markov/birth_death.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/time_units.h"

namespace wfms::markov {
namespace {

using linalg::Vector;

TEST(BirthDeathTest, TwoStateClosedForm) {
  auto pi = BirthDeathSteadyState(Vector{2.0}, Vector{8.0});
  ASSERT_TRUE(pi.ok());
  EXPECT_NEAR((*pi)[0], 0.8, 1e-12);
  EXPECT_NEAR((*pi)[1], 0.2, 1e-12);
}

TEST(BirthDeathTest, TruncatedMm1Geometric) {
  // Constant birth rate lambda, death rate mu: geometric with rho =
  // lambda/mu.
  const double rho = 0.5;
  auto pi = BirthDeathSteadyState(Vector{1.0, 1.0, 1.0},
                                  Vector{2.0, 2.0, 2.0});
  ASSERT_TRUE(pi.ok());
  const double norm = 1.0 + rho + rho * rho + rho * rho * rho;
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR((*pi)[j], std::pow(rho, static_cast<double>(j)) / norm,
                1e-12);
  }
}

TEST(BirthDeathTest, Validation) {
  EXPECT_FALSE(BirthDeathSteadyState(Vector{}, Vector{}).ok());
  EXPECT_FALSE(BirthDeathSteadyState(Vector{1.0}, Vector{1.0, 1.0}).ok());
  EXPECT_FALSE(BirthDeathSteadyState(Vector{0.0}, Vector{1.0}).ok());
  EXPECT_FALSE(BirthDeathSteadyState(Vector{1.0}, Vector{-1.0}).ok());
}

TEST(ReplicatedServerTest, SingleServerAvailability) {
  // One server: availability = mu / (lambda + mu).
  const double lambda = 1.0 / kMinutesPerDay;
  const double mu = 1.0 / 10.0;
  auto pi = ReplicatedServerAvailability(1, lambda, mu);
  ASSERT_TRUE(pi.ok());
  ASSERT_EQ(pi->size(), 2u);
  EXPECT_NEAR((*pi)[1], mu / (lambda + mu), 1e-12);
  EXPECT_NEAR((*pi)[0], lambda / (lambda + mu), 1e-12);
}

TEST(ReplicatedServerTest, IndependentReplicasAreBinomial) {
  // With independent failure/repair, the number of up servers is
  // Binomial(Y, a) with a = mu/(lambda+mu).
  const double lambda = 0.01;
  const double mu = 0.1;
  const double a = mu / (lambda + mu);
  const int y = 3;
  auto pi = ReplicatedServerAvailability(y, lambda, mu);
  ASSERT_TRUE(pi.ok());
  const double binom[] = {
      std::pow(1 - a, 3), 3 * a * std::pow(1 - a, 2), 3 * a * a * (1 - a),
      std::pow(a, 3)};
  for (int j = 0; j <= y; ++j) {
    EXPECT_NEAR((*pi)[static_cast<size_t>(j)], binom[j], 1e-12) << "j=" << j;
  }
}

TEST(ReplicatedServerTest, PaperDowntimeOneOfEach) {
  // §5.2: single application server failing daily, repaired in 10 min
  // contributes ~ lambda/(lambda+mu) of downtime.
  auto pi = ReplicatedServerAvailability(1, 1.0 / kMinutesPerDay, 0.1);
  ASSERT_TRUE(pi.ok());
  const double downtime_per_year =
      UnavailabilityToDowntimeMinutesPerYear((*pi)[0]) / 60.0;  // hours
  EXPECT_NEAR(downtime_per_year, 60.4, 0.5);  // ~60 h/yr of the total 71
}

TEST(ReplicatedServerTest, ReplicationShrinksUnavailabilityGeometrically) {
  const double lambda = 1.0 / kMinutesPerDay;
  const double mu = 0.1;
  double prev_unavail = 1.0;
  for (int y = 1; y <= 4; ++y) {
    auto pi = ReplicatedServerAvailability(y, lambda, mu);
    ASSERT_TRUE(pi.ok());
    const double unavail = (*pi)[0];
    EXPECT_LT(unavail, prev_unavail * 0.02)
        << "replication " << y << " should cut unavailability by ~lambda/mu";
    prev_unavail = unavail;
  }
}

TEST(ReplicatedServerTest, Validation) {
  EXPECT_FALSE(ReplicatedServerAvailability(0, 1.0, 1.0).ok());
  EXPECT_FALSE(ReplicatedServerAvailability(2, 0.0, 1.0).ok());
  EXPECT_FALSE(ReplicatedServerAvailability(2, 1.0, -1.0).ok());
}

}  // namespace
}  // namespace wfms::markov

// Deterministic pseudo-random number generation for the simulator.
//
// We implement xoshiro256** (Blackman & Vigna) rather than relying on
// std::mt19937 so that streams are cheap to split per simulated entity and
// results are bit-reproducible across standard library implementations.
#ifndef WFMS_COMMON_RANDOM_H_
#define WFMS_COMMON_RANDOM_H_

#include <array>
#include <cstdint>

namespace wfms {

/// xoshiro256** generator. Satisfies the UniformRandomBitGenerator
/// concept so it can also feed <random> distributions if desired.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds via SplitMix64 so that nearby seeds yield unrelated streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  uint64_t operator()() { return Next(); }
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();
  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);
  /// Uniform integer in [0, n).  n must be > 0.
  uint64_t NextUint64(uint64_t n);

  /// Exponentially distributed sample with the given rate (mean 1/rate).
  double NextExponential(double rate);
  /// Erlang-k sample (sum of k exponentials with the given per-stage rate).
  double NextErlang(int k, double rate);
  /// Standard normal via Box–Muller (used for lognormal service times).
  double NextNormal();
  /// Lognormal with the given mean and squared coefficient of variation.
  double NextLognormalByMoments(double mean, double scv);
  /// Bernoulli trial: true with probability p.
  bool NextBernoulli(double p);
  /// Samples an index from a discrete distribution given by `weights`
  /// (not necessarily normalized; must have at least one positive entry).
  int NextDiscrete(const double* weights, int n);

  /// Returns an independent generator derived from this one's stream;
  /// advances this generator.
  Rng Split();

  /// The full generator state (the four xoshiro256** words). Saving and
  /// later restoring the state reproduces the exact tail of the stream —
  /// the primitive the checkpoint/resume subsystem builds on.
  std::array<uint64_t, 4> SaveState() const { return s_; }
  void RestoreState(const std::array<uint64_t, 4>& state) { s_ = state; }

 private:
  std::array<uint64_t, 4> s_;
};

}  // namespace wfms

#endif  // WFMS_COMMON_RANDOM_H_

#include "service/protocol.h"

#include <cmath>

namespace wfms::service {

const char* OpName(Op op) {
  switch (op) {
    case Op::kPing: return "ping";
    case Op::kAssess: return "assess";
    case Op::kRecommend: return "recommend";
    case Op::kAutotune: return "autotune";
  }
  return "unknown";
}

const char* DispositionName(Disposition d) {
  switch (d) {
    case Disposition::kCompleted: return "completed";
    case Disposition::kDegraded: return "degraded";
    case Disposition::kRejectedOverloaded: return "rejected-overloaded";
    case Disposition::kDeadlineExceeded: return "deadline-exceeded";
    case Disposition::kError: return "error";
  }
  return "unknown";
}

Result<Request> ParseRequest(std::string_view line) {
  WFMS_ASSIGN_OR_RETURN(Json doc, Json::Parse(line));
  if (!doc.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  Request req;
  req.id = doc.GetString("id", "");
  const std::string op = doc.GetString("op", "");
  if (op == "ping") {
    req.op = Op::kPing;
  } else if (op == "assess") {
    req.op = Op::kAssess;
  } else if (op == "recommend") {
    req.op = Op::kRecommend;
  } else if (op == "autotune") {
    req.op = Op::kAutotune;
  } else {
    return Status::InvalidArgument(
        "bad op '" + op + "' (ping|assess|recommend|autotune)");
  }
  req.tenant = doc.GetString("tenant", "");
  req.scenario = doc.GetString("scenario", "ep");
  if (const Json* config = doc.Find("config")) {
    if (!config->is_array()) {
      return Status::InvalidArgument("'config' must be an array of integers");
    }
    for (const Json& item : config->items()) {
      if (!item.is_number() ||
          item.number() != std::floor(item.number())) {
        return Status::InvalidArgument(
            "'config' must be an array of integers");
      }
      req.config.push_back(static_cast<int>(item.number()));
    }
  }
  if (const Json* site_config = doc.Find("site_config")) {
    if (!site_config->is_array()) {
      return Status::InvalidArgument(
          "'site_config' must be an array of integers");
    }
    for (const Json& item : site_config->items()) {
      if (!item.is_number() ||
          item.number() != std::floor(item.number())) {
        return Status::InvalidArgument(
            "'site_config' must be an array of integers");
      }
      req.site_config.push_back(static_cast<int>(item.number()));
    }
  }
  req.max_wait = doc.GetNumber("max_wait", req.max_wait);
  req.min_avail = doc.GetNumber("min_avail", req.min_avail);
  req.survive_sites =
      static_cast<int>(doc.GetNumber("survive_sites", req.survive_sites));
  req.survive_partitions =
      doc.GetBool("survive_partitions", req.survive_partitions);
  req.degraded_max_wait =
      doc.GetNumber("degraded_max_wait", req.degraded_max_wait);
  req.degraded_min_avail =
      doc.GetNumber("degraded_min_avail", req.degraded_min_avail);
  req.method = doc.GetString("method", req.method);
  req.max_replicas =
      static_cast<int>(doc.GetNumber("max_replicas", req.max_replicas));
  req.iterations =
      static_cast<int>(doc.GetNumber("iterations", req.iterations));
  req.deadline_seconds =
      doc.GetNumber("deadline_seconds", req.deadline_seconds);
  req.duration = doc.GetNumber("duration", req.duration);
  req.epoch = doc.GetNumber("epoch", req.epoch);
  req.max_turnaround = doc.GetNumber("max_turnaround", req.max_turnaround);
  if (const Json* tr = doc.Find("trace")) {
    // Tolerant: a malformed trace object degrades to "no context" (the
    // server mints one) rather than failing an otherwise valid request.
    if (tr->is_object()) {
      req.trace_id = tr->GetString("trace_id", "");
      req.parent_span_id = tr->GetString("parent_span_id", "");
    }
  }
  return req;
}

std::string Response::Render() const {
  Json doc = Json::Object();
  doc.Set("id", Json::Str(id));
  doc.Set("status", Json::Str(DispositionName(disposition)));
  doc.Set("degraded", Json::Bool(disposition == Disposition::kDegraded));
  if (!degrade_reason.empty()) {
    doc.Set("degrade_reason", Json::Str(degrade_reason));
  }
  if (!error.empty()) doc.Set("error", Json::Str(error));
  doc.Set("result", result);
  doc.Set("elapsed_seconds", Json::Number(elapsed_seconds));
  if (!trace_id.empty()) doc.Set("trace_id", Json::Str(trace_id));
  return doc.Dump();
}

}  // namespace wfms::service

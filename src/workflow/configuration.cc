#include "workflow/configuration.h"

#include <sstream>

namespace wfms::workflow {

Configuration Configuration::FromSiteCounts(std::vector<int> counts,
                                            size_t num_sites) {
  Configuration config;
  if (num_sites > 0 && counts.size() % num_sites == 0) {
    const size_t num_types = counts.size() / num_sites;
    config.replicas.resize(num_types, 0);
    for (size_t x = 0; x < num_types; ++x) {
      for (size_t a = 0; a < num_sites; ++a) {
        config.replicas[x] += counts[x * num_sites + a];
      }
    }
  }
  config.site_counts = std::move(counts);
  return config;
}

Status Configuration::Validate(size_t num_types) const {
  if (replicas.size() != num_types) {
    return Status::InvalidArgument(
        "configuration has " + std::to_string(replicas.size()) +
        " entries, expected " + std::to_string(num_types));
  }
  for (size_t x = 0; x < replicas.size(); ++x) {
    if (replicas[x] < 1) {
      return Status::InvalidArgument("server type " + std::to_string(x) +
                                     " needs at least one replica");
    }
  }
  return Status::OK();
}

Status Configuration::ValidateSites(size_t num_types,
                                    size_t num_sites) const {
  WFMS_RETURN_NOT_OK(Validate(num_types));
  if (num_sites == 0) {
    return Status::InvalidArgument(
        "site-placed configuration in an environment without sites");
  }
  if (site_counts.size() != num_types * num_sites) {
    return Status::InvalidArgument(
        "site placement has " + std::to_string(site_counts.size()) +
        " entries, expected " + std::to_string(num_types * num_sites) + " (" +
        std::to_string(num_types) + " types x " + std::to_string(num_sites) +
        " sites)");
  }
  for (size_t x = 0; x < num_types; ++x) {
    int total = 0;
    for (size_t a = 0; a < num_sites; ++a) {
      const int n = site_counts[x * num_sites + a];
      if (n < 0) {
        return Status::InvalidArgument(
            "server type " + std::to_string(x) + " has negative count at "
            "site " + std::to_string(a));
      }
      total += n;
    }
    if (total != replicas[x]) {
      return Status::InvalidArgument(
          "server type " + std::to_string(x) + ": site counts sum to " +
          std::to_string(total) + " but Y_x = " +
          std::to_string(replicas[x]));
    }
  }
  return Status::OK();
}

std::vector<int> Configuration::CacheKey() const {
  if (site_counts.empty()) return replicas;
  std::vector<int> key = replicas;
  key.push_back(-1);
  key.insert(key.end(), site_counts.begin(), site_counts.end());
  return key;
}

std::string Configuration::ToString() const {
  std::ostringstream os;
  const size_t s = num_sites();
  os << "(";
  for (size_t i = 0; i < replicas.size(); ++i) {
    if (i > 0) os << ",";
    if (has_sites() && s > 0) {
      for (size_t a = 0; a < s; ++a) {
        if (a > 0) os << "/";
        os << site_counts[i * s + a];
      }
    } else {
      os << replicas[i];
    }
  }
  os << ")";
  return os.str();
}

}  // namespace wfms::workflow

// Shared test fixture: the electronic purchase (EP) workflow of Fig. 3 of
// the paper, expressed in the statechart DSL. The residence times and
// branch probabilities are our concretization of the paper's "fictitious
// for mere illustration" values (documented in EXPERIMENTS.md); all model
// time is in minutes.
#ifndef WFMS_TESTS_TEST_CHARTS_H_
#define WFMS_TESTS_TEST_CHARTS_H_

namespace wfms::testing {

inline constexpr char kEpChartsDsl[] = R"(
# Electronic purchase workflow (paper Fig. 3), top-level chart.
chart EP
  state NewOrder activity=new_order residence=5
  state CreditCardCheck activity=cc_check residence=1
  compound Shipment subcharts=Notify,Delivery
  state SendInvoice activity=send_invoice residence=2
  state CollectPayment activity=collect_payment residence=1440
  state ChargeCreditCard activity=charge_cc residence=1
  state EPExit activity=finish residence=0.5
  initial NewOrder
  final EPExit
  trans NewOrder -> CreditCardCheck prob=0.5 event=NewOrder_DONE cond=PayByCreditCard action=st!(cc_check)
  trans NewOrder -> Shipment prob=0.5 event=NewOrder_DONE cond=!PayByCreditCard
  trans CreditCardCheck -> EPExit prob=0.1 event=CreditCardCheck_DONE cond=CardInvalid
  trans CreditCardCheck -> Shipment prob=0.9 event=CreditCardCheck_DONE cond=!CardInvalid
  trans Shipment -> ChargeCreditCard prob=0.5 cond=PayByCreditCard
  trans Shipment -> SendInvoice prob=0.5 cond=!PayByCreditCard
  trans SendInvoice -> CollectPayment prob=1 event=SendInvoice_DONE action=st!(collect_payment)
  trans CollectPayment -> SendInvoice prob=0.2 event=PaymentOverdue action=st!(send_invoice)
  trans CollectPayment -> EPExit prob=0.8 event=PaymentReceived
  trans ChargeCreditCard -> EPExit prob=1 event=ChargeCreditCard_DONE
end

# Orthogonal component 1 of the Shipment state (paper: Notify_SC).
chart Notify
  state PrepareNotice activity=prepare_notice residence=1
  state SendNotice activity=send_notice residence=2
  initial PrepareNotice
  final SendNotice
  trans PrepareNotice -> SendNotice prob=1 event=PrepareNotice_DONE
end

# Orthogonal component 2 of the Shipment state (paper: Delivery_SC).
chart Delivery
  state PickItems activity=pick_items residence=30
  state PackItems activity=pack_items residence=20
  state ShipItems activity=ship_items residence=2880
  initial PickItems
  final ShipItems
  trans PickItems -> PackItems prob=1 event=PickItems_DONE
  trans PackItems -> PickItems prob=0.1 cond=ItemsMissing
  trans PackItems -> ShipItems prob=0.9 cond=!ItemsMissing
end
)";

/// Hand-computed reference values for the EP fixture (see the derivations
/// in tests using them).
inline constexpr double kDeliveryTurnaround = 50.0 / 0.9 + 2880.0;
inline constexpr double kNotifyTurnaround = 3.0;

}  // namespace wfms::testing

#endif  // WFMS_TESTS_TEST_CHARTS_H_

#include <gtest/gtest.h>

#include <cmath>

#include "configtool/tool.h"
#include "perf/performance_model.h"
#include "queueing/mg1.h"
#include "workflow/scenarios.h"

namespace wfms::configtool {
namespace {

using workflow::Configuration;
using workflow::Environment;

Environment MakeEnv(double rate = 1.0) {
  auto env = workflow::EpEnvironment(rate);
  EXPECT_TRUE(env.ok());
  return *std::move(env);
}

Goals StrictGoals() {
  Goals goals;
  goals.max_waiting_time = 0.05;
  goals.min_availability = 0.999999;
  return goals;
}

TEST(BranchAndBoundTest, MatchesExhaustiveOptimum) {
  const Environment env = MakeEnv(1.0);
  auto tool = ConfigurationTool::Create(env);
  ASSERT_TRUE(tool.ok());
  SearchConstraints constraints;
  constraints.max_replicas = {3, 3, 4};
  auto bnb = tool->BranchAndBoundMinCost(StrictGoals(), constraints);
  auto exhaustive = tool->ExhaustiveMinCost(StrictGoals(), constraints);
  ASSERT_TRUE(bnb.ok()) << bnb.status();
  ASSERT_TRUE(exhaustive.ok());
  ASSERT_TRUE(bnb->satisfied);
  EXPECT_DOUBLE_EQ(bnb->cost, exhaustive->cost);
  // On this small 3-type box the incumbent-pruned exhaustive sweep is
  // already competitive; best-first only needs to stay within the lattice
  // size (3*3*4 = 36 + the feasibility probe). The 5-type test below
  // shows the real gap.
  EXPECT_LE(bnb->evaluations, 37);
}

TEST(BranchAndBoundTest, InfeasibleDetectedInOneEvaluation) {
  const Environment env = MakeEnv(1.0);
  auto tool = ConfigurationTool::Create(env);
  ASSERT_TRUE(tool.ok());
  SearchConstraints tight;
  tight.max_replicas = {1, 1, 1};
  auto result = tool->BranchAndBoundMinCost(StrictGoals(), tight);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->satisfied);
  EXPECT_EQ(result->evaluations, 1);  // pruned at the all-max bound
}

TEST(BranchAndBoundTest, LaxGoalsReturnMinimalConfig) {
  const Environment env = MakeEnv(0.3);
  auto tool = ConfigurationTool::Create(env);
  ASSERT_TRUE(tool.ok());
  Goals lax;
  lax.max_waiting_time = 60.0;
  lax.min_availability = 0.5;
  auto result = tool->BranchAndBoundMinCost(lax);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->satisfied);
  EXPECT_EQ(result->config, Configuration({1, 1, 1}));
}

TEST(BranchAndBoundTest, WeightedCostsRespected) {
  const Environment env = MakeEnv(1.0);
  auto tool = ConfigurationTool::Create(env);
  ASSERT_TRUE(tool.ok());
  SearchConstraints constraints;
  constraints.max_replicas = {3, 3, 4};
  CostModel pricey;
  pricey.per_server_cost = {1.0, 1.0, 100.0};
  auto bnb = tool->BranchAndBoundMinCost(StrictGoals(), constraints, pricey);
  auto exhaustive =
      tool->ExhaustiveMinCost(StrictGoals(), constraints, pricey);
  ASSERT_TRUE(bnb.ok());
  ASSERT_TRUE(exhaustive.ok());
  EXPECT_DOUBLE_EQ(bnb->cost, exhaustive->cost);
}

TEST(BranchAndBoundTest, FiveTypeScenario) {
  auto env = workflow::BenchmarkEnvironment(0.6, 0.2, 0.1);
  ASSERT_TRUE(env.ok());
  auto tool = ConfigurationTool::Create(*env);
  ASSERT_TRUE(tool.ok());
  Goals goals;
  goals.max_waiting_time = 0.1;
  goals.min_availability = 0.9999;
  SearchConstraints constraints;
  constraints.max_replicas.assign(5, 4);
  auto bnb = tool->BranchAndBoundMinCost(goals, constraints);
  auto exhaustive = tool->ExhaustiveMinCost(goals, constraints);
  ASSERT_TRUE(bnb.ok());
  ASSERT_TRUE(exhaustive.ok());
  EXPECT_DOUBLE_EQ(bnb->cost, exhaustive->cost);
  EXPECT_LT(bnb->evaluations, exhaustive->evaluations);
}

TEST(PerInstanceDelayTest, MatchesHandComputation) {
  const Environment env = MakeEnv(1.0);
  auto model = perf::PerformanceModel::Create(env);
  ASSERT_TRUE(model.ok());
  const Configuration config({2, 2, 2});
  auto delays = model->PerInstanceQueueingDelay(config);
  auto report = model->EvaluateWaitingTimes(config);
  ASSERT_TRUE(delays.ok());
  ASSERT_TRUE(report.ok());
  double expected = 0.0;
  for (size_t x = 0; x < 3; ++x) {
    expected += model->workflows()[0].expected_requests[x] *
                report->servers[x].mean_waiting_time;
  }
  ASSERT_EQ(delays->size(), 1u);
  EXPECT_NEAR((*delays)[0], expected, 1e-12);
  // Queueing delay is a small fraction of the EP turnaround (which is
  // dominated by human/business latencies) — the paper's architecture
  // rationale.
  EXPECT_LT((*delays)[0], model->workflows()[0].turnaround_time * 0.01);
}

TEST(PerInstanceDelayTest, SaturationYieldsInfinity) {
  const Environment env = MakeEnv(3.0);
  auto model = perf::PerformanceModel::Create(env);
  ASSERT_TRUE(model.ok());
  auto delays = model->PerInstanceQueueingDelay(Configuration({1, 1, 1}));
  ASSERT_TRUE(delays.ok());
  EXPECT_TRUE(std::isinf((*delays)[0]));
}

TEST(PerInstanceDelayTest, ReplicationShrinksDelay) {
  const Environment env = MakeEnv(1.0);
  auto model = perf::PerformanceModel::Create(env);
  ASSERT_TRUE(model.ok());
  auto small = model->PerInstanceQueueingDelay(Configuration({1, 1, 1}));
  auto large = model->PerInstanceQueueingDelay(Configuration({2, 3, 3}));
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_LT((*large)[0], (*small)[0]);
}

}  // namespace
}  // namespace wfms::configtool

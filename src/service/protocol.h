// Wire protocol of the wfmsd assessment service: newline-delimited JSON
// over a plain TCP stream (one request object per line, one response
// object per line; responses carry the request's `id` so a pipelining
// client can match them). The same listening socket also answers
// `GET /metrics` and `GET /metrics.json` HTTP requests with the live
// metrics registry, so one port serves both the protocol and scraping.
//
// Request:
//   {"id": "r1", "op": "assess", "scenario": "ep", "tenant": "teamA",
//    "config": [2,2,3], "max_wait": 0.05, "min_avail": 0.99999,
//    "method": "greedy", "max_replicas": 8, "deadline_seconds": 5.0,
//    "trace": {"trace_id": "<32 hex>", "parent_span_id": "<16 hex>"}}
//
// `trace` (optional) is the client's distributed-tracing context
// (DESIGN.md §13): a 128-bit trace id plus the span id of the client-side
// span issuing the request. The server adopts it — or mints a fresh trace
// id when the field is absent or malformed — and echoes the trace id
// top-level in the response, so a client can find the request in the
// server's /debug/requests flight recorder and its server-side spans in a
// merged trace export.
//
// Response:
//   {"id": "r1", "status": "completed", "degraded": false,
//    "result": {...}, "elapsed_seconds": 0.012,
//    "trace_id": "<32 hex>"}
//
// `status` is the request's terminal disposition — exactly one of:
//   completed          full-fidelity answer
//   degraded           answered under degradation (downgraded strategy,
//                      tightened budget, or cache-only); `degrade_reason`
//                      says which rung
//   rejected-overloaded  shed by admission control (queue full or tenant
//                      over quota); carries no result
//   deadline-exceeded  the per-request deadline expired (in queue or
//                      mid-solve); best-so-far is NOT returned — the
//                      answer would be nondeterministic
//   error              malformed or invalid request
//
// Everything inside `result` is deterministic for a given (scenario,
// request): derived only from solver output, never from wall-clock or
// cache state. Nondeterministic observability (elapsed time) stays at the
// top level, so chaos tests can compare `result` byte-for-byte across
// cold and warm-restarted daemons.
#ifndef WFMS_SERVICE_PROTOCOL_H_
#define WFMS_SERVICE_PROTOCOL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "service/json.h"

namespace wfms::service {

enum class Op {
  kPing,       // liveness probe; answered inline, never queued
  kAssess,
  kRecommend,
  kAutotune,
};

const char* OpName(Op op);

struct Request {
  std::string id;
  Op op = Op::kPing;
  std::string tenant;      // quota key; empty = the shared default tenant
  std::string scenario;    // "ep" | "benchmark" | inline scenario text
  std::vector<int> config;  // replication vector (assess, autotune initial)
  // Per-site placement (type-major, num_types * num_sites entries). When
  // non-empty it overrides `config` for assess: the configuration is built
  // with Configuration::FromSiteCounts, so latency inflation and the
  // site-level CTMC dimensions apply. Requires a scenario with a sites
  // section.
  std::vector<int> site_config;
  double max_wait = 0.05;
  double min_avail = 0.99999;
  // Survivability goals (multi-site scenarios only; see configtool::Goals).
  int survive_sites = 0;          // 0 or 1: tolerate any single site loss
  bool survive_partitions = false;  // tolerate any two-way partition
  double degraded_max_wait = 0.0;   // <= 0: inherit max_wait
  double degraded_min_avail = -1.0;  // < 0: inherit min_avail
  std::string method = "greedy";  // recommend/autotune search strategy
  int max_replicas = 8;
  int iterations = 2000;          // annealing
  double deadline_seconds = 0.0;  // <= 0: server default
  // Autotune horizon (model minutes).
  double duration = 4000.0;
  double epoch = 1000.0;
  double max_turnaround = 0.0;
  // Client-supplied trace context ("trace" object); empty trace_id when
  // the request carried none. Validated/minted by the server, never
  // trusted as-is (see trace::TraceContext::WithRemoteParent).
  std::string trace_id;          // 32 hex chars (as sent; unvalidated)
  std::string parent_span_id;    // 16 hex chars (as sent; unvalidated)
};

/// Parses one request line. A missing/unknown `op` or a non-object
/// document is an error; unknown members are ignored (forward
/// compatibility).
Result<Request> ParseRequest(std::string_view line);

/// Terminal disposition of a request (see file comment).
enum class Disposition {
  kCompleted,
  kDegraded,
  kRejectedOverloaded,
  kDeadlineExceeded,
  kError,
};

const char* DispositionName(Disposition d);

struct Response {
  std::string id;
  Disposition disposition = Disposition::kCompleted;
  std::string degrade_reason;  // non-empty iff kDegraded
  std::string error;           // non-empty for rejected/deadline/error
  Json result = Json::Null();  // deterministic payload (or null)
  double elapsed_seconds = 0.0;
  /// Server-side trace id for the request (32 hex chars; adopted from the
  /// request or minted). Top-level like elapsed_seconds — never inside
  /// `result`, which must stay deterministic.
  std::string trace_id;

  /// One response line (no trailing newline).
  std::string Render() const;
};

}  // namespace wfms::service

#endif  // WFMS_SERVICE_PROTOCOL_H_

file(REMOVE_RECURSE
  "libwfms_perf.a"
)

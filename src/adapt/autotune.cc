#include "adapt/autotune.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <thread>
#include <utility>

#include "adapt/audit_stream.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/trace.h"

namespace wfms::adapt {

namespace {

/// Re-timestamps epoch-local audit records (the per-epoch simulator's
/// clock restarts at zero) into run-global model time before forwarding.
class OffsetSink : public workflow::AuditSink {
 public:
  OffsetSink(workflow::AuditSink* inner, double offset)
      : inner_(inner), offset_(offset) {}

  void OnStateVisit(const workflow::StateVisitRecord& record) override {
    workflow::StateVisitRecord shifted = record;
    shifted.enter_time += offset_;
    shifted.leave_time += offset_;
    inner_->OnStateVisit(shifted);
  }
  void OnService(const workflow::ServiceRecord& record) override {
    workflow::ServiceRecord shifted = record;
    shifted.time += offset_;
    inner_->OnService(shifted);
  }
  void OnArrival(const workflow::ArrivalRecord& record) override {
    workflow::ArrivalRecord shifted = record;
    shifted.arrival_time += offset_;
    inner_->OnArrival(shifted);
  }
  void OnCompletion(const workflow::CompletionRecord& record) override {
    workflow::CompletionRecord shifted = record;
    shifted.start_time += offset_;
    shifted.end_time += offset_;
    inner_->OnCompletion(shifted);
  }
  void OnServerCount(const workflow::ServerCountRecord& record) override {
    workflow::ServerCountRecord shifted = record;
    shifted.time += offset_;
    inner_->OnServerCount(shifted);
  }

 private:
  workflow::AuditSink* inner_;
  double offset_;
};

metrics::Counter& EpochsCounter() {
  static metrics::Counter& counter = metrics::MetricsRegistry::Global()
      .GetCounter("wfms_adapt_epochs_total");
  return counter;
}

}  // namespace

std::string AutotuneReport::ToString() const {
  std::ostringstream os;
  os << "autotune: " << epochs.size() << " epochs, " << reconfigurations
     << " reconfigurations, final config " << final_config.ToString() << "\n";
  for (const EpochReport& epoch : epochs) {
    os << "  epoch " << epoch.index << " [" << epoch.start << ", "
       << epoch.end << ") config " << epoch.config.ToString() << " rates (";
    for (size_t i = 0; i < epoch.scheduled_rates.size(); ++i) {
      os << (i ? "," : "") << epoch.scheduled_rates[i];
    }
    os << ") turnaround " << epoch.observed_turnaround << " -> "
       << epoch.decision.reason << "\n";
  }
  return os.str();
}

Result<AutotuneReport> RunAutotune(const workflow::Environment& env,
                                   const AutotuneOptions& options) {
  trace::TraceSpan span("adapt/autotune", "adapt", options.trace);
  if (options.duration <= 0.0 || options.epoch <= 0.0) {
    return Status::InvalidArgument(
        "autotune requires positive duration and epoch length");
  }
  if (options.epoch > options.duration) {
    return Status::InvalidArgument(
        "autotune epoch length exceeds the total duration");
  }
  WFMS_RETURN_NOT_OK(env.Validate());
  WFMS_RETURN_NOT_OK(options.initial.Validate(env.num_server_types()));
  WFMS_RETURN_NOT_OK(options.load.Validate(env.workflows.size()));

  std::vector<double> base_rates;
  base_rates.reserve(env.workflows.size());
  for (const auto& wf : env.workflows) base_rates.push_back(wf.arrival_rate);

  ControllerOptions controller_options = options.controller;
  controller_options.trace = span.context();
  ReconfigurationController controller(&env, options.initial,
                                       controller_options,
                                       options.calibrator);
  AutotuneReport report;
  Rng seed_rng(options.seed);

  const int num_epochs = static_cast<int>(
      std::ceil(options.duration / options.epoch - 1e-9));
  for (int e = 0; e < num_epochs; ++e) {
    const double t0 = static_cast<double>(e) * options.epoch;
    const double t1 = std::min(options.duration, t0 + options.epoch);
    const uint64_t epoch_seed = seed_rng.Next();
    EpochsCounter().Increment();

    EpochReport epoch;
    epoch.index = e;
    epoch.start = t0;
    epoch.end = t1;
    epoch.config = controller.current_config();

    // The world this epoch: base rates advanced through the schedule to
    // t0, plus the in-epoch slice replayed on the epoch-local clock.
    WFMS_ASSIGN_OR_RETURN(epoch.scheduled_rates,
                          options.load.RatesAt(t0, base_rates));
    workflow::Environment epoch_env = env;
    for (size_t i = 0; i < epoch_env.workflows.size(); ++i) {
      epoch_env.workflows[i].arrival_rate = epoch.scheduled_rates[i];
    }

    sim::SimulationOptions sim_options;
    sim_options.config = controller.current_config();
    sim_options.dispatch = options.dispatch;
    sim_options.duration = t1 - t0;
    sim_options.warmup = 0.0;
    sim_options.seed = epoch_seed;
    sim_options.enable_failures = options.enable_failures;
    sim_options.exponential_residence = options.exponential_residence;
    sim_options.load = options.load.Slice(t0, t1);
    sim_options.trace = span.context();

    AuditStream stream(options.stream_capacity, AuditStream::Overflow::kBlock);
    OffsetSink offset_sink(&stream, t0);
    sim_options.sink = &offset_sink;

    WFMS_ASSIGN_OR_RETURN(sim::Simulator simulator,
                          sim::Simulator::Create(epoch_env, sim_options));

    // Producer: the simulation, publishing (with backpressure) into the
    // stream. Consumer: this thread, feeding the controller in FIFO order.
    Result<sim::SimulationResult> sim_result =
        Status::Internal("simulation thread did not run");
    std::thread producer([&simulator, &sim_result, &stream] {
      sim_result = simulator.Run();
      stream.Close();
    });
    std::vector<AuditEvent> batch;
    while (true) {
      batch.clear();
      if (stream.WaitDrain(&batch) == 0) break;
      for (const AuditEvent& event : batch) controller.Observe(event);
    }
    producer.join();
    WFMS_RETURN_NOT_OK(sim_result.status());

    epoch.events = stream.published();
    report.events_total += stream.published();
    report.dropped_total += stream.dropped();

    double turnaround_sum = 0.0;
    int64_t turnaround_count = 0;
    for (const auto& [name, wf_result] : sim_result->workflows) {
      turnaround_sum +=
          wf_result.turnaround.sum();
      turnaround_count += wf_result.turnaround.count();
    }
    epoch.observed_turnaround =
        turnaround_count > 0
            ? turnaround_sum / static_cast<double>(turnaround_count)
            : 0.0;

    WFMS_ASSIGN_OR_RETURN(epoch.decision, controller.Evaluate(t1));
    if (epoch.decision.reconfigured) ++report.reconfigurations;
    report.epochs.push_back(std::move(epoch));
  }

  report.final_config = controller.current_config();
  return report;
}

}  // namespace wfms::adapt

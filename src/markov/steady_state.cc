#include "markov/steady_state.h"

#include <cmath>
#include <string>

#include "linalg/dense_matrix.h"
#include "linalg/iterative_solver.h"
#include "linalg/lu_solver.h"

namespace wfms::markov {

using linalg::DenseMatrix;
using linalg::SparseMatrix;
using linalg::Vector;

namespace {

/// Initial iterate for the iterative methods: the caller's warm-start
/// guess when it is usable (right size, positive finite mass), else the
/// uniform distribution.
Vector InitialIterate(const Ctmc& chain, const SteadyStateOptions& options) {
  const size_t n = chain.num_states();
  if (options.initial_guess != nullptr &&
      options.initial_guess->size() == n) {
    double sum = 0.0;
    bool nonnegative = true;
    for (double v : *options.initial_guess) {
      if (v < 0.0) {
        nonnegative = false;
        break;
      }
      sum += v;
    }
    if (nonnegative && sum > 0.0 && std::isfinite(sum)) {
      Vector pi = *options.initial_guess;
      linalg::Scale(1.0 / sum, &pi);
      return pi;
    }
  }
  return Vector(n, 1.0 / static_cast<double>(n));
}

/// Residual check: max_j |(pi Q)_j| must be small relative to the rates.
Status ValidateSolution(const Ctmc& chain, const Vector& pi,
                        double tolerance) {
  double min_entry = 1.0;
  for (double v : pi) min_entry = std::min(min_entry, v);
  if (min_entry < -1e-9) {
    return Status::NumericError(
        "steady-state vector has negative entries; chain may be reducible");
  }
  // (pi Q)_j = sum_{i != j} pi_i q_ij - pi_j * exit_j.
  const Vector inflow = chain.rates().MultiplyTransposed(pi);
  const double scale = std::max(chain.MaxExitRate(), 1.0);
  for (size_t j = 0; j < pi.size(); ++j) {
    const double residual = inflow[j] - pi[j] * chain.exit_rates()[j];
    if (std::fabs(residual) > tolerance * scale * 1e3) {
      return Status::NumericError("steady-state residual too large at state " +
                                  std::to_string(j));
    }
  }
  return Status::OK();
}

Result<SteadyStateResult> SolveLu(const Ctmc& chain,
                                  const SteadyStateOptions& options) {
  const size_t n = chain.num_states();
  // A x = b with A = Q^T except the last row is the normalization
  // constraint sum(pi) = 1.
  DenseMatrix a(n, n);
  const auto& offsets = chain.rates().row_offsets();
  const auto& cols = chain.rates().col_indices();
  const auto& values = chain.rates().values();
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = offsets[i]; k < offsets[i + 1]; ++k) {
      const size_t j = cols[k];
      if (j != n - 1) a.At(j, i) += values[k];
    }
    if (i != n - 1) a.At(i, i) -= chain.exit_rates()[i];
  }
  for (size_t i = 0; i < n; ++i) a.At(n - 1, i) = 1.0;
  Vector b(n, 0.0);
  b[n - 1] = 1.0;

  auto solved = linalg::LuSolve(a, b);
  if (!solved.ok()) {
    return solved.status().WithContext(
        "steady-state direct solve (is the chain irreducible?)");
  }
  SteadyStateResult result;
  result.pi = *std::move(solved);
  WFMS_RETURN_NOT_OK(ValidateSolution(chain, result.pi, options.tolerance));
  return result;
}

Result<SteadyStateResult> SolveGaussSeidel(const Ctmc& chain,
                                           const SteadyStateOptions& options) {
  const size_t n = chain.num_states();
  for (size_t j = 0; j < n; ++j) {
    if (chain.exit_rates()[j] <= 0.0) {
      return Status::InvalidArgument(
          "state " + std::to_string(j) +
          " has zero exit rate; chain is not ergodic");
    }
  }
  // Column access: transpose once so incoming rates of j are row j.
  const SparseMatrix incoming = chain.rates().Transposed();
  const auto& offsets = incoming.row_offsets();
  const auto& cols = incoming.col_indices();
  const auto& values = incoming.values();

  SteadyStateResult result;
  Vector pi = InitialIterate(chain, options);
  Vector prev(n);  // scratch, reused across sweeps
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    prev = pi;
    for (size_t j = 0; j < n; ++j) {
      double inflow = 0.0;
      for (size_t k = offsets[j]; k < offsets[j + 1]; ++k) {
        inflow += values[k] * pi[cols[k]];
      }
      pi[j] = inflow / chain.exit_rates()[j];
    }
    const double sum = linalg::Sum(pi);
    if (!(sum > 0.0) || !std::isfinite(sum)) {
      return Status::NumericError("Gauss-Seidel steady state diverged");
    }
    linalg::Scale(1.0 / sum, &pi);
    result.iterations = iter;
    if (linalg::MaxAbsDiff(pi, prev) < options.tolerance) {
      result.pi = std::move(pi);
      WFMS_RETURN_NOT_OK(
          ValidateSolution(chain, result.pi, options.tolerance));
      return result;
    }
  }
  return Status::NumericError("Gauss-Seidel steady state did not converge");
}

Result<SteadyStateResult> SolvePower(const Ctmc& chain,
                                     const SteadyStateOptions& options) {
  SteadyStateResult result;
  result.pi = InitialIterate(chain, options);
  linalg::IterativeOptions opts;
  opts.max_iterations = options.max_iterations;
  opts.tolerance = options.tolerance;
  auto stats = linalg::PowerIterationStationary(chain.UniformizedMatrix(),
                                                &result.pi, opts);
  if (!stats.ok()) return stats.status();
  if (!stats->converged) {
    return Status::NumericError("power iteration did not converge");
  }
  result.iterations = stats->iterations;
  WFMS_RETURN_NOT_OK(ValidateSolution(chain, result.pi, options.tolerance));
  return result;
}

}  // namespace

Result<SteadyStateResult> SolveSteadyState(const Ctmc& chain,
                                           const SteadyStateOptions& options) {
  switch (options.method) {
    case SteadyStateMethod::kLu:
      return SolveLu(chain, options);
    case SteadyStateMethod::kGaussSeidel:
      return SolveGaussSeidel(chain, options);
    case SteadyStateMethod::kPower:
      return SolvePower(chain, options);
    case SteadyStateMethod::kAuto: {
      auto gs = SolveGaussSeidel(chain, options);
      if (gs.ok()) return gs;
      auto power = SolvePower(chain, options);
      if (power.ok()) {
        power->used_fallback = true;
        return power;
      }
      return gs.status().WithContext("kAuto: Gauss-Seidel and power failed");
    }
  }
  return Status::Internal("unknown steady-state method");
}

}  // namespace wfms::markov

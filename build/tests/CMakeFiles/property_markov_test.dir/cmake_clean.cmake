file(REMOVE_RECURSE
  "CMakeFiles/property_markov_test.dir/property_markov_test.cc.o"
  "CMakeFiles/property_markov_test.dir/property_markov_test.cc.o.d"
  "property_markov_test"
  "property_markov_test.pdb"
  "property_markov_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_markov_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "workflow/environment.h"

#include <set>

namespace wfms::workflow {

const char* ServerKindToString(ServerKind kind) {
  switch (kind) {
    case ServerKind::kCommunicationServer:
      return "communication-server";
    case ServerKind::kWorkflowEngine:
      return "workflow-engine";
    case ServerKind::kApplicationServer:
      return "application-server";
  }
  return "unknown";
}

Result<size_t> ServerTypeRegistry::AddServerType(ServerType type) {
  if (type.name.empty()) {
    return Status::InvalidArgument("server type name must not be empty");
  }
  if (index_.count(type.name) > 0) {
    return Status::AlreadyExists("server type '" + type.name +
                                 "' already registered");
  }
  const size_t idx = types_.size();
  index_[type.name] = idx;
  types_.push_back(std::move(type));
  return idx;
}

Result<size_t> ServerTypeRegistry::IndexOf(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("no server type named '" + name + "'");
  }
  return it->second;
}

Status ServerTypeRegistry::Validate() const {
  if (types_.empty()) {
    return Status::InvalidArgument("no server types registered");
  }
  for (const ServerType& t : types_) {
    WFMS_RETURN_NOT_OK(queueing::ValidateMoments(t.service)
                           .WithContext("server type '" + t.name + "'"));
    if (!(t.failure_rate > 0.0) || !(t.repair_rate > 0.0)) {
      return Status::InvalidArgument("server type '" + t.name +
                                     "' needs positive failure/repair rates");
    }
  }
  return Status::OK();
}

Status ActivityLoadTable::SetLoad(const std::string& activity,
                                  linalg::Vector requests) {
  if (activity.empty()) {
    return Status::InvalidArgument("activity name must not be empty");
  }
  for (double r : requests) {
    if (r < 0.0) {
      return Status::InvalidArgument("negative request count for activity '" +
                                     activity + "'");
    }
  }
  loads_[activity] = std::move(requests);
  return Status::OK();
}

linalg::Vector ActivityLoadTable::LoadOf(const std::string& activity,
                                         size_t num_types) const {
  const auto it = loads_.find(activity);
  if (it == loads_.end()) return linalg::Vector(num_types, 0.0);
  return it->second;
}

bool ActivityLoadTable::HasActivity(const std::string& activity) const {
  return loads_.count(activity) > 0;
}

std::vector<std::string> ActivityLoadTable::Activities() const {
  std::vector<std::string> names;
  names.reserve(loads_.size());
  for (const auto& [name, load] : loads_) names.push_back(name);
  return names;
}

Status ActivityLoadTable::Validate(size_t num_types) const {
  for (const auto& [name, load] : loads_) {
    if (load.size() != num_types) {
      return Status::InvalidArgument(
          "load vector of activity '" + name + "' has " +
          std::to_string(load.size()) + " entries, expected " +
          std::to_string(num_types));
    }
  }
  return Status::OK();
}

Status Environment::Validate() const {
  WFMS_RETURN_NOT_OK(servers.Validate());
  WFMS_RETURN_NOT_OK(loads.Validate(servers.size()));
  WFMS_RETURN_NOT_OK(charts.ValidateReferences());
  if (workflows.empty()) {
    return Status::InvalidArgument("environment declares no workflow types");
  }
  std::set<std::string> names;
  for (const WorkflowTypeSpec& w : workflows) {
    if (!names.insert(w.name).second) {
      return Status::InvalidArgument("duplicate workflow type '" + w.name +
                                     "'");
    }
    if (!charts.Contains(w.chart)) {
      return Status::NotFound("workflow type '" + w.name +
                              "' references unknown chart '" + w.chart + "'");
    }
    if (w.arrival_rate < 0.0) {
      return Status::InvalidArgument("workflow type '" + w.name +
                                     "' has negative arrival rate");
    }
  }
  WFMS_RETURN_NOT_OK(topology.Validate().WithContext("site topology"));
  return Status::OK();
}

}  // namespace wfms::workflow

# Empty compiler generated dependencies file for configtool_test.
# This may be replaced when dependencies are built.

#include "sim/checkpoint.h"

#include <chrono>
#include <cstring>
#include <sstream>

#include "common/metrics.h"
#include "common/snapshot.h"
#include "workflow/environment_io.h"

namespace wfms::sim {

namespace {

constexpr uint32_t kTagFingerprint = 1;
constexpr uint32_t kTagEventsExecuted = 2;
constexpr uint32_t kTagSimTime = 3;
constexpr uint32_t kTagNextInstanceId = 4;
constexpr uint32_t kTagPendingEvents = 5;
constexpr uint32_t kTagMasterRng = 6;
constexpr uint32_t kTagPoolCount = 7;
constexpr uint32_t kTagPoolRng = 8;
constexpr uint32_t kTagPoolUp = 9;
constexpr uint32_t kTagPoolBusy = 10;
constexpr uint32_t kTagPoolParked = 11;

std::string HexU64(uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

}  // namespace

uint64_t SimulationFingerprint(const workflow::Environment& env,
                               const SimulationOptions& options) {
  SnapshotWriter w;
  w.Str(1, workflow::SerializeEnvironment(env));
  w.VecI32(2, options.config.replicas);
  w.U32(3, static_cast<uint32_t>(options.dispatch));
  w.F64(4, options.duration);
  w.F64(5, options.warmup);
  w.U64(6, options.seed);
  w.U32(7, (options.enable_failures ? 1u : 0u) |
               (options.exponential_residence ? 2u : 0u));
  // Site fields are written only where they apply so that legacy
  // (single-site, non-overlay) scenarios hash to exactly what they did
  // before the geo extension — their old checkpoints stay resumable.
  if (!options.config.site_counts.empty()) {
    w.VecI32(16, options.config.site_counts);
  }
  for (const FaultEvent& event : options.faults.events) {
    w.F64(8, event.time);
    w.U32(9, static_cast<uint32_t>(event.action));
    w.U64(10, event.server_type);
    w.I64(11, event.server_index);
    if (IsSiteAction(event.action)) {
      w.U64(17, event.site_a);
      w.U64(18, event.site_b);
    }
  }
  if (options.faults.overlay) w.U32(19, 1u);
  for (const LoadEvent& event : options.load.events) {
    w.F64(12, event.time);
    w.U32(13, static_cast<uint32_t>(event.action));
    w.U64(14, event.workflow);
    w.F64(15, event.value);
  }
  return Fnv1a64(w.payload());
}

Status WriteSimulationCheckpoint(const std::string& path,
                                 const SimulationCheckpoint& state) {
  auto& registry = metrics::MetricsRegistry::Global();
  static metrics::Counter& writes =
      registry.GetCounter("wfms_sim_checkpoint_writes_total");
  static metrics::Histogram& write_seconds =
      registry.GetHistogram("wfms_sim_checkpoint_write_seconds");
  writes.Increment();
  const auto start = std::chrono::steady_clock::now();
  SnapshotWriter w;
  w.U64(kTagFingerprint, state.fingerprint);
  w.I64(kTagEventsExecuted, state.events_executed);
  w.F64(kTagSimTime, state.sim_time);
  w.I64(kTagNextInstanceId, state.next_instance_id);
  w.U64(kTagPendingEvents, state.pending_events);
  w.VecU64(kTagMasterRng, state.master_rng.data(), state.master_rng.size());
  w.U64(kTagPoolCount, state.pool_rngs.size());
  for (const auto& rng : state.pool_rngs) {
    w.VecU64(kTagPoolRng, rng.data(), rng.size());
  }
  w.VecI32(kTagPoolUp, state.pool_up);
  w.VecI32(kTagPoolBusy, state.pool_busy);
  w.VecI32(kTagPoolParked, state.pool_parked);
  Status status =
      WriteSnapshotFile(path, SnapshotKind::kSimulationCheckpoint,
                        w.payload())
          .WithContext("writing simulation checkpoint");
  write_seconds.Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  return status;
}

Result<SimulationCheckpoint> ReadSimulationCheckpoint(const std::string& path,
                                                      uint64_t fingerprint) {
  WFMS_ASSIGN_OR_RETURN(
      const std::string payload,
      ReadSnapshotFile(path, SnapshotKind::kSimulationCheckpoint));
  SnapshotReader r(payload);
  SimulationCheckpoint state;
  WFMS_ASSIGN_OR_RETURN(state.fingerprint, r.U64(kTagFingerprint));
  if (state.fingerprint != fingerprint) {
    return Status::FailedPrecondition(
        "stale simulation checkpoint '" + path +
        "': scenario/options hash mismatch (checkpoint 0x" +
        HexU64(state.fingerprint) + ", current 0x" + HexU64(fingerprint) +
        ") — it was taken under a different environment, configuration, "
        "seed, or fault schedule");
  }
  WFMS_ASSIGN_OR_RETURN(state.events_executed, r.I64(kTagEventsExecuted));
  WFMS_ASSIGN_OR_RETURN(state.sim_time, r.F64(kTagSimTime));
  WFMS_ASSIGN_OR_RETURN(state.next_instance_id, r.I64(kTagNextInstanceId));
  WFMS_ASSIGN_OR_RETURN(state.pending_events, r.U64(kTagPendingEvents));
  WFMS_ASSIGN_OR_RETURN(std::vector<uint64_t> master,
                        r.VecU64(kTagMasterRng));
  if (master.size() != 4) {
    return Status::ParseError("simulation checkpoint '" + path +
                              "' has a malformed master RNG state");
  }
  std::memcpy(state.master_rng.data(), master.data(), 4 * sizeof(uint64_t));
  WFMS_ASSIGN_OR_RETURN(uint64_t pool_count, r.U64(kTagPoolCount));
  state.pool_rngs.reserve(pool_count);
  for (uint64_t i = 0; i < pool_count; ++i) {
    WFMS_ASSIGN_OR_RETURN(std::vector<uint64_t> words, r.VecU64(kTagPoolRng));
    if (words.size() != 4) {
      return Status::ParseError("simulation checkpoint '" + path +
                                "' has a malformed pool RNG state");
    }
    std::array<uint64_t, 4> rng;
    std::memcpy(rng.data(), words.data(), 4 * sizeof(uint64_t));
    state.pool_rngs.push_back(rng);
  }
  WFMS_ASSIGN_OR_RETURN(state.pool_up, r.VecI32(kTagPoolUp));
  WFMS_ASSIGN_OR_RETURN(state.pool_busy, r.VecI32(kTagPoolBusy));
  WFMS_ASSIGN_OR_RETURN(state.pool_parked, r.VecI32(kTagPoolParked));
  if (!r.AtEnd()) {
    return Status::ParseError("simulation checkpoint '" + path +
                              "' has trailing bytes after the last field");
  }
  return state;
}

namespace {

Status Diverged(const char* field, const std::string& saved,
                const std::string& replayed) {
  return Status::FailedPrecondition(
      "replay diverged from the checkpointed run at field '" +
      std::string(field) + "' (checkpoint " + saved + ", replay " + replayed +
      ") — the checkpoint was taken under a different build or an "
      "undetected option change");
}

std::string RngToString(const std::array<uint64_t, 4>& s) {
  return "0x" + HexU64(s[0]) + ":" + HexU64(s[1]) + ":" + HexU64(s[2]) + ":" +
         HexU64(s[3]);
}

template <typename T>
std::string VecToString(const std::vector<T>& v) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < v.size(); ++i) os << (i ? "," : "") << v[i];
  os << "]";
  return os.str();
}

}  // namespace

Status VerifyReplayCursor(const SimulationCheckpoint& saved,
                          const SimulationCheckpoint& replayed) {
  if (saved.events_executed != replayed.events_executed) {
    return Diverged("events_executed", std::to_string(saved.events_executed),
                    std::to_string(replayed.events_executed));
  }
  // Bit-exact comparison: deterministic replay reproduces the clock to the
  // last ulp, so any drift at all is a divergence.
  if (saved.sim_time != replayed.sim_time) {
    return Diverged("sim_time", std::to_string(saved.sim_time),
                    std::to_string(replayed.sim_time));
  }
  if (saved.next_instance_id != replayed.next_instance_id) {
    return Diverged("next_instance_id",
                    std::to_string(saved.next_instance_id),
                    std::to_string(replayed.next_instance_id));
  }
  if (saved.pending_events != replayed.pending_events) {
    return Diverged("pending_events", std::to_string(saved.pending_events),
                    std::to_string(replayed.pending_events));
  }
  if (saved.master_rng != replayed.master_rng) {
    return Diverged("master_rng", RngToString(saved.master_rng),
                    RngToString(replayed.master_rng));
  }
  if (saved.pool_rngs != replayed.pool_rngs) {
    for (size_t i = 0;
         i < saved.pool_rngs.size() && i < replayed.pool_rngs.size(); ++i) {
      if (saved.pool_rngs[i] != replayed.pool_rngs[i]) {
        return Diverged(("pool_rng[" + std::to_string(i) + "]").c_str(),
                        RngToString(saved.pool_rngs[i]),
                        RngToString(replayed.pool_rngs[i]));
      }
    }
    return Diverged("pool_rngs", std::to_string(saved.pool_rngs.size()),
                    std::to_string(replayed.pool_rngs.size()));
  }
  if (saved.pool_up != replayed.pool_up) {
    return Diverged("pool_up", VecToString(saved.pool_up),
                    VecToString(replayed.pool_up));
  }
  if (saved.pool_busy != replayed.pool_busy) {
    return Diverged("pool_busy", VecToString(saved.pool_busy),
                    VecToString(replayed.pool_busy));
  }
  if (saved.pool_parked != replayed.pool_parked) {
    return Diverged("pool_parked", VecToString(saved.pool_parked),
                    VecToString(replayed.pool_parked));
  }
  return Status::OK();
}

}  // namespace wfms::sim

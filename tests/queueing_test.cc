#include <gtest/gtest.h>

#include <cmath>

#include "queueing/distributions.h"
#include "queueing/mg1.h"

namespace wfms::queueing {
namespace {

TEST(DistributionsTest, ExponentialMoments) {
  const ServiceMoments m = ExponentialService(2.0);
  EXPECT_DOUBLE_EQ(m.mean, 2.0);
  EXPECT_DOUBLE_EQ(m.second_moment, 8.0);
  EXPECT_DOUBLE_EQ(m.scv(), 1.0);
  EXPECT_DOUBLE_EQ(m.variance(), 4.0);
}

TEST(DistributionsTest, DeterministicMoments) {
  const ServiceMoments m = DeterministicService(3.0);
  EXPECT_DOUBLE_EQ(m.second_moment, 9.0);
  EXPECT_DOUBLE_EQ(m.scv(), 0.0);
}

TEST(DistributionsTest, ErlangScv) {
  auto m = ErlangService(4, 2.0);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->mean, 2.0);
  EXPECT_NEAR(m->scv(), 0.25, 1e-12);
  EXPECT_FALSE(ErlangService(0, 2.0).ok());
}

TEST(DistributionsTest, FromMeanScv) {
  auto m = ServiceFromMeanScv(0.05, 2.0);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->mean, 0.05);
  EXPECT_NEAR(m->scv(), 2.0, 1e-12);
  EXPECT_FALSE(ServiceFromMeanScv(0.0, 1.0).ok());
  EXPECT_FALSE(ServiceFromMeanScv(1.0, -0.5).ok());
}

TEST(DistributionsTest, MixtureMoments) {
  // Equal mix of Exp(1) and Exp(3): mean 2, E[X^2] = (2 + 18)/2 = 10.
  auto mixed = MixServices({1.0, 1.0},
                           {ExponentialService(1.0), ExponentialService(3.0)});
  ASSERT_TRUE(mixed.ok());
  EXPECT_DOUBLE_EQ(mixed->mean, 2.0);
  EXPECT_DOUBLE_EQ(mixed->second_moment, 10.0);
  // Mixtures are more variable than either component.
  EXPECT_GT(mixed->scv(), 1.0);
}

TEST(DistributionsTest, MixtureValidation) {
  EXPECT_FALSE(MixServices({}, {}).ok());
  EXPECT_FALSE(MixServices({1.0}, {}).ok());
  EXPECT_FALSE(
      MixServices({-1.0, 2.0},
                  {ExponentialService(1.0), ExponentialService(1.0)})
          .ok());
  EXPECT_FALSE(
      MixServices({0.0, 0.0},
                  {ExponentialService(1.0), ExponentialService(1.0)})
          .ok());
}

TEST(DistributionsTest, ValidateMoments) {
  EXPECT_TRUE(ValidateMoments(ExponentialService(1.0)).ok());
  EXPECT_FALSE(ValidateMoments({0.0, 0.0}).ok());
  EXPECT_FALSE(ValidateMoments({2.0, 1.0}).ok());  // E[X^2] < mean^2
}

TEST(Mg1Test, MatchesMm1ClosedForm) {
  // For exponential service, W = rho * b / (1 - rho).
  const double lambda = 0.5;
  const double b = 1.0;
  auto m = Mg1Metrics(lambda, ExponentialService(b));
  ASSERT_TRUE(m.ok());
  const double rho = lambda * b;
  EXPECT_NEAR(m->utilization, rho, 1e-12);
  EXPECT_NEAR(m->mean_waiting_time, rho * b / (1 - rho), 1e-12);
  EXPECT_NEAR(m->mean_response_time, m->mean_waiting_time + b, 1e-12);
  // Little's law.
  EXPECT_NEAR(m->mean_queue_length, lambda * m->mean_waiting_time, 1e-12);
}

TEST(Mg1Test, DeterministicHalvesWaiting) {
  // P-K: W_D = W_M / 2 at identical utilization.
  const double lambda = 0.8;
  auto exp_m = Mg1Metrics(lambda, ExponentialService(1.0));
  auto det_m = Mg1Metrics(lambda, DeterministicService(1.0));
  ASSERT_TRUE(exp_m.ok());
  ASSERT_TRUE(det_m.ok());
  EXPECT_NEAR(det_m->mean_waiting_time, exp_m->mean_waiting_time / 2.0,
              1e-12);
}

TEST(Mg1Test, WaitingGrowsWithVariability) {
  const double lambda = 0.5;
  double prev = 0.0;
  for (double scv : {0.5, 1.0, 2.0, 5.0}) {
    auto m = Mg1Metrics(lambda, *ServiceFromMeanScv(1.0, scv));
    ASSERT_TRUE(m.ok());
    EXPECT_GT(m->mean_waiting_time, prev);
    prev = m->mean_waiting_time;
  }
}

TEST(Mg1Test, SaturationRejected) {
  EXPECT_EQ(Mg1Metrics(1.0, ExponentialService(1.0)).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Mg1Metrics(2.0, ExponentialService(1.0)).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(Mg1Test, ZeroArrivalsZeroWaiting) {
  auto m = Mg1Metrics(0.0, ExponentialService(1.0));
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->mean_waiting_time, 0.0);
  EXPECT_DOUBLE_EQ(m->utilization, 0.0);
}

TEST(Mg1Test, NegativeArrivalRejected) {
  EXPECT_FALSE(Mg1Metrics(-0.1, ExponentialService(1.0)).ok());
}

TEST(ErlangCTest, SingleServerIsUtilization) {
  // For c=1, P(wait) = rho.
  auto p = ErlangC(0.6, 1);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 0.6, 1e-12);
}

TEST(ErlangCTest, KnownValue) {
  // Classic check: a = 2 Erlang, c = 3 servers -> C(3, 2) = 4/9.
  auto p = ErlangC(2.0, 3);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 4.0 / 9.0, 1e-12);
}

TEST(ErlangCTest, Validation) {
  EXPECT_FALSE(ErlangC(1.0, 0).ok());
  EXPECT_FALSE(ErlangC(-1.0, 2).ok());
  EXPECT_FALSE(ErlangC(3.0, 3).ok());
}

TEST(MmcTest, ReducesToMm1) {
  auto mmc = MmcMetrics(0.5, 1.0, 1);
  auto mm1 = Mm1Metrics(0.5, 1.0);
  ASSERT_TRUE(mmc.ok());
  ASSERT_TRUE(mm1.ok());
  EXPECT_NEAR(mmc->mean_waiting_time, mm1->mean_waiting_time, 1e-12);
}

TEST(MmcTest, SharedQueueBeatsPartitionedQueues) {
  // A single M/M/2 with total rate lambda beats two M/M/1 each with
  // lambda/2 — the scaling argument behind replication trade-offs.
  const double lambda = 1.6;
  const double b = 1.0;
  auto shared = MmcMetrics(lambda, b, 2);
  auto split = Mm1Metrics(lambda / 2.0, b);
  ASSERT_TRUE(shared.ok());
  ASSERT_TRUE(split.ok());
  EXPECT_LT(shared->mean_waiting_time, split->mean_waiting_time);
}

TEST(MmcTest, SaturationRejected) {
  EXPECT_FALSE(MmcMetrics(2.0, 1.0, 2).ok());
  EXPECT_TRUE(MmcMetrics(1.9, 1.0, 2).ok());
}

}  // namespace
}  // namespace wfms::queueing

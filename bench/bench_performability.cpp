// E6 — §6 performability: the expected waiting-time vector W^Y with
// failure-induced degradation, compared with the failure-free waiting
// time of the full configuration, plus the probabilities of the system
// being down, saturated (up but overloaded after failures), or degraded.

#include <cmath>
#include <cstdio>

#include "common/time_units.h"
#include "performability/performability_model.h"
#include "workflow/scenarios.h"

int main() {
  using namespace wfms;
  auto env = workflow::EpEnvironment(/*arrival_rate=*/1.5);
  if (!env.ok()) return 1;
  auto model = performability::PerformabilityModel::Create(*env);
  if (!model.ok()) return 1;

  std::printf("E6: performability W^Y (EP at 1.5 workflows/min)\n\n");
  std::printf("%-10s %14s %14s %12s %12s %12s\n", "config",
              "maxW failurefree", "maxW perform.", "P(down)", "P(saturated)",
              "P(degraded)");
  const workflow::Configuration configs[] = {
      workflow::Configuration({1, 1, 1}), workflow::Configuration({1, 2, 2}),
      workflow::Configuration({2, 2, 2}), workflow::Configuration({2, 2, 3}),
      workflow::Configuration({2, 3, 3}), workflow::Configuration({3, 3, 3}),
      workflow::Configuration({3, 3, 4}),
  };
  for (const auto& config : configs) {
    auto report = model->Evaluate(config);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    double full_max = 0.0;
    for (double w : report->full_config_waiting) {
      full_max = std::max(full_max, w);
    }
    std::printf("%-10s %14s %14s %12.2e %12.2e %12.2e\n",
                config.ToString().c_str(),
                std::isinf(full_max) ? "saturated"
                                     : FormatMinutes(full_max).c_str(),
                std::isinf(report->max_expected_waiting)
                    ? "saturated"
                    : FormatMinutes(report->max_expected_waiting).c_str(),
                report->prob_down, report->prob_saturated,
                report->prob_degraded);
  }
  std::printf("\nexpected shape: W^Y >= failure-free waiting; the gap and "
              "P(saturated) shrink with replication, P(down) falls by "
              "orders of magnitude.\n");
  return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/reconfiguration_monitoring.dir/reconfiguration_monitoring.cpp.o"
  "CMakeFiles/reconfiguration_monitoring.dir/reconfiguration_monitoring.cpp.o.d"
  "reconfiguration_monitoring"
  "reconfiguration_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconfiguration_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#!/usr/bin/env bash
# Runs every bench_* experiment binary and archives machine-readable
# results: each suite's output lands in <outdir>/BENCH_<name>.json, ready
# for cross-commit comparison.
#
# The bench binaries are self-contained experiment programs, not a
# benchmark framework: each prints its table to stdout, and those that
# support it (e.g. bench_config_search) emit JSON when passed
# --benchmark_format=json. This script always asks for JSON; if a suite's
# output already parses as JSON it is archived verbatim, otherwise the
# table text is wrapped as {"benchmark": ..., "format": "text",
# "lines": [...]} so every BENCH_<name>.json is valid JSON either way.
#
# usage: run_benches.sh [build-dir] [outdir] [extra benchmark args...]
#
# BENCH_FILTER (env var, shell glob, default '*') selects which suites
# run by suite name (without the bench_ prefix), e.g.
#   BENCH_FILTER=config_search tools/run_benches.sh build
set -u

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-$BUILD_DIR/bench_results}"
BENCH_FILTER="${BENCH_FILTER:-*}"
shift $(( $# > 2 ? 2 : $# ))

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "no $BUILD_DIR/bench directory — configure with WFMS_BUILD_BENCHMARKS=ON" >&2
  exit 1
fi
mkdir -p "$OUT_DIR"

# Provenance stamped into every archive's "context" field so results from
# different commits, build types, and machines compare honestly.
REPO_DIR="$(cd "$(dirname "$0")/.." && pwd)"
BENCH_GIT_SHA="$(git -C "$REPO_DIR" rev-parse HEAD 2> /dev/null || echo unknown)"
BENCH_GIT_DIRTY=0
if ! git -C "$REPO_DIR" diff --quiet HEAD 2> /dev/null; then
  BENCH_GIT_DIRTY=1
fi
BENCH_BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
    "$BUILD_DIR/CMakeCache.txt" 2> /dev/null | head -n 1)"
BENCH_HOST="$(hostname 2> /dev/null || echo unknown)"
BENCH_KERNEL="$(uname -sr 2> /dev/null || echo unknown)"
BENCH_CPUS="$(nproc 2> /dev/null || echo 0)"
BENCH_TIMESTAMP="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
export BENCH_GIT_SHA BENCH_GIT_DIRTY BENCH_BUILD_TYPE BENCH_HOST \
    BENCH_KERNEL BENCH_CPUS BENCH_TIMESTAMP

failures=0
ran=0
for bench in "$BUILD_DIR"/bench/bench_*; do
  [ -f "$bench" ] && [ -x "$bench" ] || continue
  name=$(basename "$bench")
  # shellcheck disable=SC2254  # BENCH_FILTER is deliberately a glob
  case "${name#bench_}" in
    $BENCH_FILTER) ;;
    *) continue ;;
  esac
  out="$OUT_DIR/BENCH_${name#bench_}.json"
  echo "== $name -> $out"
  if ! "$bench" --benchmark_format=json "$@" > "$out.raw"; then
    echo "FAILED: $name" >&2
    rm -f "$out.raw"
    failures=$((failures + 1))
    continue
  fi
  if ! python3 - "$name" "$out.raw" "$out" << 'PYEOF'
import json, os, sys
name, raw_path, out_path = sys.argv[1:4]
raw = open(raw_path, encoding="utf-8", errors="replace").read()
try:
    doc = json.loads(raw)
except ValueError:
    doc = {"benchmark": name, "format": "text", "lines": raw.splitlines()}
if not isinstance(doc, dict):
    doc = {"benchmark": name, "results": doc}
doc["context"] = {
    "git_sha": os.environ.get("BENCH_GIT_SHA", "unknown"),
    "git_dirty": os.environ.get("BENCH_GIT_DIRTY", "0") == "1",
    "build_type": os.environ.get("BENCH_BUILD_TYPE", "") or "unspecified",
    "timestamp": os.environ.get("BENCH_TIMESTAMP", "unknown"),
    "host": {
        "name": os.environ.get("BENCH_HOST", "unknown"),
        "kernel": os.environ.get("BENCH_KERNEL", "unknown"),
        "cpus": int(os.environ.get("BENCH_CPUS", "0") or 0),
    },
}
with open(out_path, "w", encoding="utf-8") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
PYEOF
  then
    echo "FAILED to archive: $name" >&2
    rm -f "$out.raw"
    failures=$((failures + 1))
    continue
  fi
  rm -f "$out.raw"
  ran=$((ran + 1))
done

if [ "$ran" -eq 0 ]; then
  echo "no benchmark binaries found under $BUILD_DIR/bench" >&2
  exit 1
fi

# The config-search suite doubles as the repo's perf trajectory file:
# a copy always lands at the repo root (gitignored) so tooling that
# diffs BENCH_config_search.json across commits finds it in a fixed
# place regardless of the build/out directories in use.
if [ -f "$OUT_DIR/BENCH_config_search.json" ]; then
  cp "$OUT_DIR/BENCH_config_search.json" "$REPO_DIR/BENCH_config_search.json"
  echo "trajectory copy: $REPO_DIR/BENCH_config_search.json"
fi

# The large-chain suite is the solver engine's perf trajectory; its copy
# at the repo root is *committed* (see .gitignore exception) so the CI
# perf-smoke job can diff fresh runs against the pinned numbers.
if [ -f "$OUT_DIR/BENCH_large_chain.json" ]; then
  cp "$OUT_DIR/BENCH_large_chain.json" "$REPO_DIR/BENCH_large_chain.json"
  echo "trajectory copy: $REPO_DIR/BENCH_large_chain.json"
fi

# The geo placement-search suite tracks the multi-site search's cost and
# wall-clock trajectory; like the config-search copy it lands at the repo
# root (gitignored) for cross-commit diffing.
if [ -f "$OUT_DIR/BENCH_geo_search.json" ]; then
  cp "$OUT_DIR/BENCH_geo_search.json" "$REPO_DIR/BENCH_geo_search.json"
  echo "trajectory copy: $REPO_DIR/BENCH_geo_search.json"
fi

# The corpus pipeline trajectory (generate/compile/build/assess wall time
# vs workflow size) is committed, like the large-chain one, so a compile-
# or solve-path regression shows up as a diff at the repo root.
if [ -f "$OUT_DIR/BENCH_corpus.json" ]; then
  cp "$OUT_DIR/BENCH_corpus.json" "$REPO_DIR/BENCH_corpus.json"
  echo "trajectory copy: $REPO_DIR/BENCH_corpus.json"
fi

echo "$ran suite(s) written to $OUT_DIR ($failures failure(s))"
[ "$failures" -eq 0 ]

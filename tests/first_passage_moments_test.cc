#include "markov/first_passage_moments.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "common/statistics.h"
#include "linalg/dense_matrix.h"
#include "markov/first_passage.h"

namespace wfms::markov {
namespace {

using linalg::DenseMatrix;
using linalg::Vector;

AbsorbingCtmc MakeChain(DenseMatrix p, Vector h,
                        std::vector<std::string> names) {
  auto chain =
      AbsorbingCtmc::Create(std::move(p), std::move(h), std::move(names), 0,
                            names.size() - 1);
  EXPECT_TRUE(chain.ok()) << chain.status();
  return *std::move(chain);
}

TEST(FirstPassageMomentsTest, SingleExponentialStage) {
  // T ~ Exp(1/H): E[T] = H, E[T^2] = 2H^2, SCV = 1.
  const double h = 3.0;
  auto chain = MakeChain(DenseMatrix{{0, 1}, {0, 0}},
                         {h, kInfiniteResidence}, {"w", "A"});
  auto moments = TurnaroundTimeMoments(chain);
  ASSERT_TRUE(moments.ok()) << moments.status();
  EXPECT_NEAR(moments->mean, h, 1e-12);
  EXPECT_NEAR(moments->second_moment, 2.0 * h * h, 1e-10);
  EXPECT_NEAR(moments->scv(), 1.0, 1e-10);
}

TEST(FirstPassageMomentsTest, TwoStageSumOfExponentials) {
  // T = Exp(1/h0) + Exp(1/h1): Var = h0^2 + h1^2.
  const double h0 = 2.0;
  const double h1 = 5.0;
  auto chain = MakeChain(DenseMatrix{{0, 1, 0}, {0, 0, 1}, {0, 0, 0}},
                         {h0, h1, kInfiniteResidence}, {"a", "b", "A"});
  auto moments = TurnaroundTimeMoments(chain);
  ASSERT_TRUE(moments.ok());
  EXPECT_NEAR(moments->mean, h0 + h1, 1e-12);
  EXPECT_NEAR(moments->variance(), h0 * h0 + h1 * h1, 1e-9);
  // Erlang-like chains have SCV < 1.
  EXPECT_LT(moments->scv(), 1.0);
}

TEST(FirstPassageMomentsTest, GeometricLoopMatchesMonteCarlo) {
  // Loop chain: s0 -> s1, s1 -> s0 w.p. q, -> A w.p. 1-q.
  const double q = 0.4;
  const double h0 = 1.0;
  const double h1 = 2.0;
  auto chain = MakeChain(DenseMatrix{{0, 1, 0}, {q, 0, 1 - q}, {0, 0, 0}},
                         {h0, h1, kInfiniteResidence}, {"a", "b", "A"});
  auto moments = TurnaroundTimeMoments(chain);
  ASSERT_TRUE(moments.ok());

  Rng rng(404);
  RunningStats observed;
  for (int i = 0; i < 400000; ++i) {
    double t = 0.0;
    int state = 0;
    while (state != 2) {
      t += rng.NextExponential(state == 0 ? 1.0 / h0 : 1.0 / h1);
      state = state == 0 ? 1 : (rng.NextBernoulli(q) ? 0 : 2);
    }
    observed.Add(t);
  }
  EXPECT_NEAR(moments->mean, observed.mean(), 0.02 * observed.mean());
  EXPECT_NEAR(moments->second_moment, observed.second_moment(),
              0.03 * observed.second_moment());
}

TEST(FirstPassageMomentsTest, MeanVectorMatchesFirstPassage) {
  auto chain = MakeChain(
      DenseMatrix{{0, 0.5, 0.5, 0}, {0.2, 0, 0, 0.8}, {0, 0, 0, 1},
                  {0, 0, 0, 0}},
      {1.0, 2.0, 3.0, kInfiniteResidence}, {"a", "b", "c", "A"});
  auto vectors = FirstPassageMoments(chain);
  auto means = MeanFirstPassageTimes(chain);
  ASSERT_TRUE(vectors.ok());
  ASSERT_TRUE(means.ok());
  for (size_t i = 0; i < chain.num_states(); ++i) {
    EXPECT_NEAR(vectors->mean[i], (*means)[i], 1e-12);
    // Jensen: E[T^2] >= (E[T])^2.
    EXPECT_GE(vectors->second_moment[i],
              vectors->mean[i] * vectors->mean[i] - 1e-9);
  }
}

TEST(FirstPassageMomentsTest, ChebyshevTailBound) {
  TurnaroundMoments moments;
  moments.mean = 10.0;
  moments.second_moment = 120.0;  // variance 20
  EXPECT_DOUBLE_EQ(moments.TailBound(5.0), 1.0);   // below the mean
  EXPECT_DOUBLE_EQ(moments.TailBound(10.0), 1.0);  // at the mean
  EXPECT_NEAR(moments.TailBound(20.0), 20.0 / 100.0, 1e-12);
  EXPECT_NEAR(moments.TailBound(110.0), 20.0 / 10000.0, 1e-12);
  EXPECT_NEAR(moments.stddev(), std::sqrt(20.0), 1e-12);
}

}  // namespace
}  // namespace wfms::markov

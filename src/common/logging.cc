#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>

namespace wfms {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

bool EqualsIgnoreCase(const char* a, const char* b) {
  for (; *a != '\0' && *b != '\0'; ++a, ++b) {
    if (std::tolower(static_cast<unsigned char>(*a)) !=
        std::tolower(static_cast<unsigned char>(*b))) {
      return false;
    }
  }
  return *a == '\0' && *b == '\0';
}

// Applies WFMS_LOG_LEVEL before main() runs.
[[maybe_unused]] const bool g_env_level_applied = []() {
  InitLogLevelFromEnv();
  return true;
}();

}  // namespace

LogLevel GetLogLevel() { return g_log_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(level, std::memory_order_relaxed);
}

void InitLogLevelFromEnv() {
  const char* env = std::getenv("WFMS_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return;
  struct Alias {
    const char* name;
    LogLevel level;
  };
  static constexpr Alias kAliases[] = {
      {"debug", LogLevel::kDebug},  {"0", LogLevel::kDebug},
      {"info", LogLevel::kInfo},    {"1", LogLevel::kInfo},
      {"warning", LogLevel::kWarning}, {"warn", LogLevel::kWarning},
      {"2", LogLevel::kWarning},    {"error", LogLevel::kError},
      {"3", LogLevel::kError},      {"fatal", LogLevel::kFatal},
      {"4", LogLevel::kFatal},
  };
  for (const Alias& alias : kAliases) {
    if (EqualsIgnoreCase(env, alias.name)) {
      SetLogLevel(alias.level);
      return;
    }
  }
  // Invalid values are ignored rather than fatal: a bad env var must not
  // take down an otherwise healthy run.
}

namespace internal {

int ThreadTag() {
  static std::atomic<int> next_tag{0};
  thread_local const int tag = next_tag.fetch_add(1) + 1;
  return tag;
}

double MonotonicSeconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point origin = Clock::now();
  return std::chrono::duration<double>(Clock::now() - origin).count();
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(level >= GetLogLevel() || level == LogLevel::kFatal) {
  if (enabled_) {
    char timestamp[32];
    std::snprintf(timestamp, sizeof(timestamp), "%.6f", MonotonicSeconds());
    stream_ << "[" << LevelName(level) << " " << timestamp << " t"
            << ThreadTag() << " " << file << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace wfms

#include "common/trace.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "common/logging.h"

namespace wfms::trace {

namespace {

std::atomic<bool> g_enabled{false};

struct Event {
  std::string name;
  const char* category;  // string literal, stored by pointer
  double ts_us;          // since process start (monotonic)
  double dur_us;         // 0 for instant events
  int tid;
  char phase;  // 'X' complete, 'i' instant
};

// One per live recording thread. The buffer's own mutex is uncontended in
// steady state (only its owner touches it) and taken by the exporter or by
// thread teardown; both also hold the collector mutex, always acquired
// first, so lock order is collector -> buffer.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<Event> events;
};

class Collector {
 public:
  static Collector& Get() {
    // Leaked: thread_local destructors of late-exiting threads run after
    // static destructors and must still find the collector alive.
    static Collector* const collector = new Collector();
    return *collector;
  }

  ThreadBuffer* Register() {
    auto buffer = std::make_unique<ThreadBuffer>();
    ThreadBuffer* raw = buffer.get();
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_.push_back(std::move(buffer));
    return raw;
  }

  // Called from a thread_local destructor when a recording thread exits:
  // its events move to the orphan list so they survive until export.
  void Orphan(ThreadBuffer* buffer) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = buffers_.begin(); it != buffers_.end(); ++it) {
      if (it->get() != buffer) continue;
      {
        std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
        orphans_.insert(orphans_.end(),
                        std::make_move_iterator(buffer->events.begin()),
                        std::make_move_iterator(buffer->events.end()));
      }
      buffers_.erase(it);
      return;
    }
  }

  std::vector<Event> CopyAll() const {
    std::vector<Event> out;
    std::lock_guard<std::mutex> lock(mutex_);
    out = orphans_;
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      out.insert(out.end(), buffer->events.begin(), buffer->events.end());
    }
    return out;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    orphans_.clear();
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      buffer->events.clear();
    }
  }

  size_t EventCount() const {
    std::lock_guard<std::mutex> lock(mutex_);
    size_t n = orphans_.size();
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      n += buffer->events.size();
    }
    return n;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::vector<Event> orphans_;
};

// Thread-local handle whose destructor orphans the buffer on thread exit.
struct TlsHandle {
  ThreadBuffer* buffer = nullptr;
  ~TlsHandle() {
    if (buffer != nullptr) Collector::Get().Orphan(buffer);
  }
};

ThreadBuffer& LocalBuffer() {
  thread_local TlsHandle handle;
  if (handle.buffer == nullptr) handle.buffer = Collector::Get().Register();
  return *handle.buffer;
}

void Record(Event event) {
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(std::move(event));
}

void AppendJsonEscaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void AppendMicros(std::string& out, double us) {
  if (!std::isfinite(us) || us < 0.0) us = 0.0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  out += buf;
}

}  // namespace

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool IsEnabled() { return g_enabled.load(std::memory_order_relaxed); }

TraceSpan::TraceSpan(std::string_view name, const char* category) {
  if (!IsEnabled()) return;
  name_ = std::string(name);
  category_ = category;
  start_us_ = internal::MonotonicSeconds() * 1e6;
}

TraceSpan::~TraceSpan() {
  if (start_us_ < 0.0) return;  // was disabled at construction
  const double end_us = internal::MonotonicSeconds() * 1e6;
  Record(Event{std::move(name_), category_, start_us_,
               std::max(0.0, end_us - start_us_), internal::ThreadTag(),
               'X'});
}

void Instant(std::string_view name, const char* category) {
  if (!IsEnabled()) return;
  Record(Event{std::string(name), category,
               internal::MonotonicSeconds() * 1e6, 0.0,
               internal::ThreadTag(), 'i'});
}

std::string ExportJson() {
  std::vector<Event> events = Collector::Get().CopyAll();
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     return a.ts_us < b.ts_us;
                   });
  std::string out;
  out.reserve(64 + events.size() * 96);
  out += "{\n\"traceEvents\": [";
  bool first = true;
  for (const Event& event : events) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"name\": \"";
    AppendJsonEscaped(out, event.name);
    out += "\", \"cat\": \"";
    AppendJsonEscaped(out, event.category != nullptr ? event.category
                                                     : "wfms");
    out += "\", \"ph\": \"";
    out += event.phase;
    out += "\", \"ts\": ";
    AppendMicros(out, event.ts_us);
    if (event.phase == 'X') {
      out += ", \"dur\": ";
      AppendMicros(out, event.dur_us);
    } else {
      out += ", \"s\": \"t\"";  // instant events: thread scope
    }
    out += ", \"pid\": 1, \"tid\": " + std::to_string(event.tid) + "}";
  }
  out += first ? "],\n" : "\n],\n";
  out += "\"displayTimeUnit\": \"ms\"\n}\n";
  return out;
}

Status WriteJson(const std::string& path) {
  const std::string json = ExportJson();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::Internal("cannot open trace output file: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool closed = std::fclose(file) == 0;
  if (written != json.size() || !closed) {
    return Status::Internal("short write to trace output file: " + path);
  }
  return Status::OK();
}

void Clear() { Collector::Get().Clear(); }

size_t event_count() { return Collector::Get().EventCount(); }

}  // namespace wfms::trace

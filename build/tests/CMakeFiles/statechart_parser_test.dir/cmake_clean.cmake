file(REMOVE_RECURSE
  "CMakeFiles/statechart_parser_test.dir/statechart_parser_test.cc.o"
  "CMakeFiles/statechart_parser_test.dir/statechart_parser_test.cc.o.d"
  "statechart_parser_test"
  "statechart_parser_test.pdb"
  "statechart_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statechart_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

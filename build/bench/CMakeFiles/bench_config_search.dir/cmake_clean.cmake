file(REMOVE_RECURSE
  "CMakeFiles/bench_config_search.dir/bench_config_search.cpp.o"
  "CMakeFiles/bench_config_search.dir/bench_config_search.cpp.o.d"
  "bench_config_search"
  "bench_config_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_config_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_performability.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/performability_test.dir/performability_test.cc.o"
  "CMakeFiles/performability_test.dir/performability_test.cc.o.d"
  "performability_test"
  "performability_test.pdb"
  "performability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/performability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include <gtest/gtest.h>

#include <cmath>

#include "avail/availability_model.h"
#include "markov/ctmc_transient.h"
#include "workflow/scenarios.h"

namespace wfms::avail {
namespace {

using workflow::Configuration;

AvailabilityModel MakeModel() {
  auto env = workflow::EpEnvironment();
  EXPECT_TRUE(env.ok());
  auto model = AvailabilityModel::Create(env->servers);
  EXPECT_TRUE(model.ok());
  return *std::move(model);
}

TEST(CtmcTransientTest, TwoStateClosedForm) {
  // Up/down chain: failure rate a, repair rate b. Starting up:
  //   P(up at t) = b/(a+b) + a/(a+b) * exp(-(a+b) t).
  const double a = 0.2;
  const double b = 0.5;
  markov::CtmcBuilder builder(2);
  ASSERT_TRUE(builder.AddTransition(0, 1, a).ok());  // 0 = up, 1 = down
  ASSERT_TRUE(builder.AddTransition(1, 0, b).ok());
  auto chain = builder.Build();
  ASSERT_TRUE(chain.ok());
  for (double t : {0.0, 0.5, 2.0, 10.0, 50.0}) {
    auto pt = markov::CtmcTransientDistribution(*chain, {1.0, 0.0}, t);
    ASSERT_TRUE(pt.ok()) << pt.status();
    const double expected =
        b / (a + b) + a / (a + b) * std::exp(-(a + b) * t);
    EXPECT_NEAR((*pt)[0], expected, 1e-9) << "t=" << t;
    EXPECT_NEAR((*pt)[0] + (*pt)[1], 1.0, 1e-9);
  }
}

TEST(CtmcTransientTest, MatrixFreePathMatchesMaterialized) {
  // A ring with heterogeneous rates plus shortcut arcs; forcing the
  // large-chain threshold down runs the matrix-free uniformization step,
  // which must agree with the materialized-P path to solver tolerance.
  constexpr size_t kStates = 40;
  markov::CtmcBuilder builder(kStates);
  for (size_t i = 0; i < kStates; ++i) {
    ASSERT_TRUE(
        builder.AddTransition(i, (i + 1) % kStates, 0.3 + 0.01 * i).ok());
    ASSERT_TRUE(
        builder.AddTransition(i, (i + 7) % kStates, 0.05 + 0.002 * i).ok());
  }
  auto chain = builder.Build();
  ASSERT_TRUE(chain.ok());
  linalg::Vector p0(kStates, 0.0);
  p0[3] = 1.0;
  markov::CtmcTransientOptions matrix_free;
  matrix_free.large_chain_threshold = 1;
  ThreadPool pool(3);
  markov::CtmcTransientOptions pooled = matrix_free;
  pooled.pool = &pool;
  for (double t : {0.1, 2.0, 25.0}) {
    auto reference = markov::CtmcTransientDistribution(*chain, p0, t);
    auto free_path =
        markov::CtmcTransientDistribution(*chain, p0, t, matrix_free);
    auto pooled_path =
        markov::CtmcTransientDistribution(*chain, p0, t, pooled);
    ASSERT_TRUE(reference.ok());
    ASSERT_TRUE(free_path.ok());
    ASSERT_TRUE(pooled_path.ok());
    for (size_t i = 0; i < kStates; ++i) {
      EXPECT_NEAR((*free_path)[i], (*reference)[i], 1e-12) << "t=" << t;
      EXPECT_NEAR((*pooled_path)[i], (*reference)[i], 1e-12) << "t=" << t;
    }
  }
}

TEST(CtmcTransientTest, Validation) {
  markov::CtmcBuilder builder(2);
  ASSERT_TRUE(builder.AddTransition(0, 1, 1.0).ok());
  ASSERT_TRUE(builder.AddTransition(1, 0, 1.0).ok());
  auto chain = builder.Build();
  ASSERT_TRUE(chain.ok());
  linalg::Vector good{1.0, 0.0};
  EXPECT_FALSE(markov::CtmcTransientDistribution(*chain, {1.0}, 1.0).ok());
  EXPECT_FALSE(
      markov::CtmcTransientDistribution(*chain, {0.6, 0.6}, 1.0).ok());
  EXPECT_FALSE(markov::CtmcTransientDistribution(*chain, good, -1.0).ok());
}

TEST(TransientAvailabilityTest, StartsAtOne) {
  const AvailabilityModel model = MakeModel();
  auto a0 = model.PointAvailability(Configuration({2, 2, 2}), 0.0);
  ASSERT_TRUE(a0.ok());
  EXPECT_DOUBLE_EQ(*a0, 1.0);
}

TEST(TransientAvailabilityTest, DecreasesTowardSteadyState) {
  const AvailabilityModel model = MakeModel();
  const Configuration config({1, 1, 1});
  auto steady = model.Evaluate(config);
  ASSERT_TRUE(steady.ok());
  double prev = 1.0;
  for (double t : {10.0, 100.0, 1000.0, 20000.0}) {
    auto at = model.PointAvailability(config, t);
    ASSERT_TRUE(at.ok()) << at.status();
    EXPECT_LE(*at, prev + 1e-12) << "t=" << t;
    EXPECT_GE(*at, steady->availability - 1e-9) << "t=" << t;
    prev = *at;
  }
  // By 20000 minutes (>> 1/mu = 10) the transient has settled.
  EXPECT_NEAR(prev, steady->availability, 1e-6);
}

TEST(TransientAvailabilityTest, ShortMissionsAreSafeEvenUnreplicated) {
  // Over a 60-minute mission window, even the unreplicated system is very
  // likely to stay up (MTTFs are >= a day) — the transient metric reveals
  // what the steady-state number hides.
  const AvailabilityModel model = MakeModel();
  auto mission = model.PointAvailability(Configuration({1, 1, 1}), 60.0);
  auto steady = model.Evaluate(Configuration({1, 1, 1}));
  ASSERT_TRUE(mission.ok());
  ASSERT_TRUE(steady.ok());
  EXPECT_GT(*mission, 0.99);
  EXPECT_GT(*mission, steady->availability);
}

TEST(TransientAvailabilityTest, ReplicationLiftsTheWholeCurve) {
  const AvailabilityModel model = MakeModel();
  for (double t : {100.0, 5000.0}) {
    auto one = model.PointAvailability(Configuration({1, 1, 1}), t);
    auto two = model.PointAvailability(Configuration({2, 2, 2}), t);
    ASSERT_TRUE(one.ok());
    ASSERT_TRUE(two.ok());
    EXPECT_GT(*two, *one) << "t=" << t;
  }
}

}  // namespace
}  // namespace wfms::avail

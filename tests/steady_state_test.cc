#include "markov/steady_state.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "markov/birth_death.h"
#include "markov/ctmc.h"

namespace wfms::markov {
namespace {

using linalg::Vector;

Ctmc MakeTwoState(double up_rate, double down_rate) {
  CtmcBuilder builder(2);
  EXPECT_TRUE(builder.AddTransition(0, 1, up_rate).ok());
  EXPECT_TRUE(builder.AddTransition(1, 0, down_rate).ok());
  auto chain = builder.Build();
  EXPECT_TRUE(chain.ok());
  return *std::move(chain);
}

TEST(CtmcBuilderTest, RejectsBadTransitions) {
  CtmcBuilder builder(2);
  EXPECT_FALSE(builder.AddTransition(0, 0, 1.0).ok());   // self loop
  EXPECT_FALSE(builder.AddTransition(0, 5, 1.0).ok());   // out of range
  EXPECT_FALSE(builder.AddTransition(0, 1, 0.0).ok());   // non-positive
  EXPECT_FALSE(builder.AddTransition(0, 1, -2.0).ok());
}

TEST(CtmcBuilderTest, AccumulatesParallelTransitions) {
  CtmcBuilder builder(2);
  ASSERT_TRUE(builder.AddTransition(0, 1, 1.0).ok());
  ASSERT_TRUE(builder.AddTransition(0, 1, 2.0).ok());
  ASSERT_TRUE(builder.AddTransition(1, 0, 1.0).ok());
  auto chain = builder.Build();
  ASSERT_TRUE(chain.ok());
  EXPECT_DOUBLE_EQ(chain->RateAt(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(chain->exit_rates()[0], 3.0);
}

TEST(CtmcTest, UniformizedMatrixRowsSumToOne) {
  const Ctmc chain = MakeTwoState(2.0, 5.0);
  const auto u = chain.UniformizedMatrix();
  const auto dense = u.ToDense();
  for (size_t r = 0; r < 2; ++r) {
    EXPECT_NEAR(dense.At(r, 0) + dense.At(r, 1), 1.0, 1e-12);
  }
  // Margin keeps a positive self-loop even in the fastest state.
  EXPECT_GT(dense.At(1, 1), 0.0);
}

TEST(SteadyStateTest, TwoStateClosedForm) {
  // pi_0 * up = pi_1 * down  ->  pi = (down, up) / (up + down).
  const Ctmc chain = MakeTwoState(3.0, 7.0);
  for (auto method : {SteadyStateMethod::kLu, SteadyStateMethod::kGaussSeidel,
                      SteadyStateMethod::kPower, SteadyStateMethod::kAuto}) {
    SteadyStateOptions opts;
    opts.method = method;
    auto result = SolveSteadyState(chain, opts);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_NEAR(result->pi[0], 0.7, 1e-9);
    EXPECT_NEAR(result->pi[1], 0.3, 1e-9);
  }
}

TEST(SteadyStateTest, MatchesBirthDeathClosedForm) {
  // 5-state birth-death chain with varying rates.
  const Vector births{4.0, 3.0, 2.0, 1.0};
  const Vector deaths{1.0, 2.0, 5.0, 3.0};
  CtmcBuilder builder(5);
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(builder.AddTransition(i, i + 1, births[i]).ok());
    ASSERT_TRUE(builder.AddTransition(i + 1, i, deaths[i]).ok());
  }
  auto chain = builder.Build();
  ASSERT_TRUE(chain.ok());
  auto closed = BirthDeathSteadyState(births, deaths);
  ASSERT_TRUE(closed.ok());
  auto solved = SolveSteadyState(*chain);
  ASSERT_TRUE(solved.ok());
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(solved->pi[i], (*closed)[i], 1e-9);
  }
}

class RandomErgodicChainTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomErgodicChainTest, AllMethodsAgree) {
  const auto n = static_cast<size_t>(GetParam());
  Rng rng(500 + n);
  CtmcBuilder builder(n);
  // Ring structure guarantees irreducibility; extra random edges add bulk.
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(
        builder.AddTransition(i, (i + 1) % n, rng.NextDouble(0.5, 2.0)).ok());
    ASSERT_TRUE(
        builder
            .AddTransition((i + 1) % n, i, rng.NextDouble(0.5, 2.0))
            .ok());
    for (int extra = 0; extra < 3; ++extra) {
      const size_t j = rng.NextUint64(n);
      if (j != i && rng.NextBernoulli(0.4)) {
        ASSERT_TRUE(builder.AddTransition(i, j, rng.NextDouble(0.1, 1.0)).ok());
      }
    }
  }
  auto chain = builder.Build();
  ASSERT_TRUE(chain.ok());

  SteadyStateOptions lu_opts;
  lu_opts.method = SteadyStateMethod::kLu;
  auto lu = SolveSteadyState(*chain, lu_opts);
  ASSERT_TRUE(lu.ok()) << lu.status();

  for (auto method :
       {SteadyStateMethod::kGaussSeidel, SteadyStateMethod::kPower}) {
    SteadyStateOptions opts;
    opts.method = method;
    auto result = SolveSteadyState(*chain, opts);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_GT(result->iterations, 0);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(result->pi[i], lu->pi[i], 1e-8)
          << "state " << i << " method " << static_cast<int>(method);
    }
  }
  // Probabilities sum to one.
  EXPECT_NEAR(linalg::Sum(lu->pi), 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomErgodicChainTest,
                         ::testing::Values(2, 5, 12, 40, 120));

TEST(SteadyStateTest, AbsorbingChainRejectedByGaussSeidel) {
  CtmcBuilder builder(2);
  ASSERT_TRUE(builder.AddTransition(0, 1, 1.0).ok());
  // State 1 has no way out: zero exit rate.
  auto chain = builder.Build();
  ASSERT_TRUE(chain.ok());
  SteadyStateOptions opts;
  opts.method = SteadyStateMethod::kGaussSeidel;
  EXPECT_FALSE(SolveSteadyState(*chain, opts).ok());
}

TEST(SteadyStateTest, EmptyBuilderRejected) {
  CtmcBuilder builder(0);
  EXPECT_FALSE(builder.Build().ok());
}

}  // namespace
}  // namespace wfms::markov

// Request execution backend of wfmsd: maps scenarios to long-lived
// ConfigurationTool instances whose memoization caches are shared across
// requests, applies degradation, and persists the caches as a
// SnapshotKind::kServiceCache snapshot so a SIGKILL'd daemon restarts
// warm (see DESIGN.md "Service architecture").
//
// Cache key discipline: each scenario's cache entries are valid only for
// (environment, solver options) — the `ServiceFingerprint`. The snapshot
// stores the fingerprint and the serialized environment per scenario; on
// load, a scenario whose stored fingerprint does not match the
// fingerprint recomputed under the *current* daemon options is rejected
// with a clean per-scenario error (it starts cold) instead of poisoning
// answers with stale reports. Because assessments are pure functions of
// (environment, options, replication vector), a warm answer is
// byte-identical to the cold answer it replaces — the PR-1 invariant the
// chaos test pins.
#ifndef WFMS_SERVICE_BACKEND_H_
#define WFMS_SERVICE_BACKEND_H_

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/trace.h"
#include "configtool/tool.h"
#include "performability/performability_model.h"
#include "service/flight_recorder.h"
#include "service/protocol.h"
#include "workflow/environment.h"

namespace wfms::service {

struct BackendOptions {
  /// LRU budget applied to every scenario's assessment cache.
  configtool::ConfigurationTool::CacheLimits cache_limits{
      /*max_entries=*/4096, /*max_bytes=*/64u << 20};
  /// Non-empty: the shared caches persist here (atomic snapshot writes).
  std::string snapshot_path;
  /// Daemon-wide solver options; part of the cache fingerprint.
  performability::PerformabilityOptions tool_options;
  /// Deadline applied when a request does not carry one; <= 0 = none.
  double default_deadline_seconds = 0.0;
};

/// Fingerprint of everything a cached report's validity depends on: the
/// serialized environment plus the solver-relevant tool options.
uint64_t ServiceFingerprint(
    const workflow::Environment& env,
    const performability::PerformabilityOptions& options);

class Backend {
 public:
  explicit Backend(const BackendOptions& options);
  ~Backend();
  Backend(const Backend&) = delete;
  Backend& operator=(const Backend&) = delete;

  /// Executes one admitted request under `degrade_level` (0/1/2, see
  /// service/admission.h). `admitted_at` anchors the request's deadline:
  /// queue wait before Handle ran is already charged against it. Never
  /// returns kRejectedOverloaded except from degraded cache-only misses
  /// and degraded sheds; transport-level rejections happen before Handle.
  /// `telemetry` (optional) carries the request's trace context in — the
  /// handler span and everything under it parent there — and per-phase
  /// durations, cache-hit and solver-rung facts out, for the server's
  /// flight recorder (DESIGN.md §13).
  Response Handle(const Request& req, int degrade_level,
                  std::chrono::steady_clock::time_point admitted_at,
                  RequestTelemetry* telemetry = nullptr);

  /// Persists every scenario's cache to `snapshot_path` (atomic
  /// temp+rename). OK no-op when no path is configured.
  Status SaveCacheSnapshot() const;

  struct SnapshotLoadStats {
    size_t scenarios = 0;
    size_t reports = 0;
    size_t failures = 0;
    /// One clean error per scenario whose fingerprint was stale under the
    /// current daemon options (that scenario starts cold).
    std::vector<std::string> rejected;
  };
  /// Warm-restart: loads `snapshot_path` and prefills per-scenario
  /// caches. NotFound (first boot) yields empty stats, not an error;
  /// torn/corrupt files surface the snapshot layer's Status.
  Result<SnapshotLoadStats> LoadCacheSnapshot();

  /// Total memoized reports across scenarios (for the stats endpoint and
  /// tests).
  size_t TotalCachedReports() const;

 private:
  struct ScenarioState;

  Result<ScenarioState*> GetScenario(const std::string& scenario);
  /// `trace` is the handler span's context (children of the op attach
  /// under it); `telemetry` may be null.
  Response HandleAssess(const Request& req, ScenarioState& state,
                        int degrade_level, double remaining_seconds,
                        const trace::TraceContext& trace,
                        RequestTelemetry* telemetry);
  Response HandleRecommend(const Request& req, ScenarioState& state,
                           int degrade_level, double remaining_seconds,
                           const trace::TraceContext& trace,
                           RequestTelemetry* telemetry);
  Response HandleAutotune(const Request& req, ScenarioState& state,
                          int degrade_level, double remaining_seconds,
                          const trace::TraceContext& trace,
                          RequestTelemetry* telemetry);

  BackendOptions options_;
  mutable std::mutex mutex_;  // guards the maps' shape, not the tools
  /// Keyed by the canonical serialized environment, so aliases of one
  /// environment share one tool (and its cache).
  std::map<std::string, std::unique_ptr<ScenarioState>> scenarios_;
  /// Request scenario string ("ep", inline text, ...) -> canonical key.
  std::map<std::string, std::string> aliases_;
};

}  // namespace wfms::service

#endif  // WFMS_SERVICE_BACKEND_H_

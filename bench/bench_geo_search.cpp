// Geo placement search (DESIGN.md §12): GreedySiteMinCost on the
// two-site EP scenario, with and without survivability goals, cold vs
// replayed on the warmed assessment cache, at 1 lane and the pool's
// default lane count. Reports recommended placement, cost, evaluations,
// cache hits, and wall-clock time.
//
// Usage: bench_geo_search [--benchmark_format=json]
// The JSON mode emits one machine-readable object per measurement on
// stdout (an array), for regression tracking.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "configtool/tool.h"
#include "workflow/scenarios.h"

namespace {

double MillisSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct Measurement {
  std::string goals;
  std::string mode;
  std::string config;
  double cost = 0.0;
  int evaluations = 0;
  int cache_hits = 0;
  bool satisfied = false;
  double wall_ms = 0.0;
};

void EmitJson(const std::vector<Measurement>& measurements) {
  std::printf("[\n");
  for (size_t i = 0; i < measurements.size(); ++i) {
    const Measurement& m = measurements[i];
    std::printf("  {\"scenario\": \"geo-ep-2\", \"goals\": \"%s\", "
                "\"mode\": \"%s\", \"method\": \"greedy-site\", "
                "\"config\": \"%s\", \"cost\": %.1f, \"evaluations\": %d, "
                "\"cache_hits\": %d, \"satisfied\": %s, \"wall_ms\": %.3f}%s\n",
                m.goals.c_str(), m.mode.c_str(), m.config.c_str(), m.cost,
                m.evaluations, m.cache_hits, m.satisfied ? "true" : "false",
                m.wall_ms, i + 1 < measurements.size() ? "," : "");
  }
  std::printf("]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wfms;

  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--benchmark_format=json") == 0) json = true;
  }

  auto env = workflow::GeoEpEnvironment();
  if (!env.ok()) {
    std::fprintf(stderr, "environment: %s\n", env.status().ToString().c_str());
    return 1;
  }
  auto tool = configtool::ConfigurationTool::Create(*env);
  if (!tool.ok()) {
    std::fprintf(stderr, "tool: %s\n", tool.status().ToString().c_str());
    return 1;
  }

  struct GoalLevel {
    const char* name;
    bool survivability;
  };
  const GoalLevel levels[] = {{"steady-state", false}, {"survive-1", true}};
  const size_t lanes = ThreadPool::DefaultThreadCount();
  std::vector<Measurement> measurements;

  if (!json) {
    std::printf("geo placement search (EP on EU/US, greedy-site)\n");
    std::printf("%-14s %-14s %-16s %5s %6s %5s %9s\n", "goals", "mode",
                "config", "cost", "evals", "hits", "time[ms]");
  }
  for (const GoalLevel& level : levels) {
    configtool::Goals goals;
    goals.max_waiting_time = 0.2;
    goals.min_availability = 0.999;
    if (level.survivability) {
      goals.survive_sites = 1;
      goals.survive_partitions = true;
      goals.degraded_max_waiting_time = 0.2;
      goals.degraded_min_availability = 0.995;
    }

    struct Mode {
      std::string name;
      size_t threads;
      bool clear_cache;
    };
    const Mode modes[] = {{"cold/1-lane", 1, true},
                          {"cold/" + std::to_string(lanes) + "-lane", lanes,
                           true},
                          {"warm-cache", lanes, false}};
    for (const Mode& mode : modes) {
      tool->set_num_threads(mode.threads);
      if (mode.clear_cache) tool->ClearAssessmentCache();
      const auto t0 = std::chrono::steady_clock::now();
      auto result = tool->GreedySiteMinCost(goals);
      const double ms = MillisSince(t0);
      if (!result.ok()) {
        std::fprintf(stderr, "%s %s failed: %s\n", level.name,
                     mode.name.c_str(), result.status().ToString().c_str());
        continue;
      }
      measurements.push_back({level.name, mode.name,
                              result->config.ToString(), result->cost,
                              result->evaluations, result->cache_hits,
                              result->satisfied, ms});
      if (!json) {
        std::printf("%-14s %-14s %-16s %5.0f %6d %5d %9.1f%s\n", level.name,
                    mode.name.c_str(), result->config.ToString().c_str(),
                    result->cost, result->evaluations, result->cache_hits,
                    ms, result->satisfied ? "" : "  (goals unreachable)");
      }
    }
  }
  if (json) EmitJson(measurements);
  return 0;
}

#include "corpus/generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "corpus/compile.h"
#include "corpus/importer.h"
#include "workflow/environment_io.h"

namespace wfms::corpus {
namespace {

TEST(CorpusGeneratorTest, PatternNamesRoundTrip) {
  for (const Pattern p : {Pattern::kChain, Pattern::kForkJoin,
                          Pattern::kDiamondLadder, Pattern::kTreeReduce}) {
    const auto back = PatternFromName(PatternName(p));
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(*back, p);
  }
  EXPECT_FALSE(PatternFromName("zigzag").ok());
  for (const ServiceDist d : {ServiceDist::kLognormal, ServiceDist::kPareto}) {
    const auto back = ServiceDistFromName(ServiceDistName(d));
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(*back, d);
  }
  EXPECT_FALSE(ServiceDistFromName("uniform").ok());
}

TEST(CorpusGeneratorTest, RecipeValidateRejectsBadParameters) {
  Recipe r;
  r.num_tasks = 0;
  EXPECT_FALSE(r.Validate().ok());
  r = Recipe{};
  r.service_mean = 0.0;
  EXPECT_FALSE(r.Validate().ok());
  r = Recipe{};
  r.service_scv = -1.0;
  EXPECT_FALSE(r.Validate().ok());
  r = Recipe{};
  r.fan_out_min = 5;
  r.fan_out_max = 2;
  EXPECT_FALSE(r.Validate().ok());
  r = Recipe{};
  r.fan_out_min = 0;
  EXPECT_FALSE(r.Validate().ok());
  r = Recipe{};
  r.data_mean_bytes = -1.0;
  EXPECT_FALSE(r.Validate().ok());
  EXPECT_TRUE(Recipe{}.Validate().ok());
}

Recipe SeededRecipe(uint64_t seed) {
  Recipe r;
  r.pattern = static_cast<Pattern>(seed % 4);
  r.seed = seed;
  r.num_tasks = 8 + seed % 57;
  r.service_scv = (seed % 3 == 0) ? 1.0 : 4.0;
  r.service_dist =
      (seed % 2 == 0) ? ServiceDist::kLognormal : ServiceDist::kPareto;
  r.fan_out_min = 2;
  r.fan_out_max = 2 + seed % 7;
  // Exercise the depth cap on a third of the population.
  if (seed % 3 == 1) r.max_depth = 4 + seed % 8;
  return r;
}

// The 100-seed property sweep: every generated DAG validates (so it is
// acyclic), respects the task-count floor, the depth cap, and the fan-out
// bound, and regenerating from the same recipe is byte-identical both at
// the WfCommons layer and after compilation to an environment.
TEST(CorpusGeneratorTest, HundredSeedsSatisfyStructuralProperties) {
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    const Recipe recipe = SeededRecipe(seed);
    const auto dag = GenerateDag(recipe);
    ASSERT_TRUE(dag.ok()) << "seed " << seed << ": " << dag.status();
    EXPECT_TRUE(dag->Validate().ok()) << "seed " << seed;
    if (recipe.max_depth == 0) {
      EXPECT_GE(dag->tasks.size(), recipe.num_tasks) << "seed " << seed;
    }
    const auto depth = dag->Depth();
    ASSERT_TRUE(depth.ok()) << "seed " << seed << ": " << depth.status();
    if (recipe.max_depth > 0) {
      EXPECT_LE(*depth, recipe.max_depth) << "seed " << seed;
    }
    EXPECT_LE(dag->MaxFanOut(), std::max<size_t>(recipe.fan_out_max, 1))
        << "seed " << seed;
    for (const Task& t : dag->tasks) {
      EXPECT_GT(t.runtime, 0.0) << "seed " << seed;
      EXPECT_GE(t.runtime_scv, 0.0) << "seed " << seed;
      EXPECT_GE(t.data_bytes, 0.0) << "seed " << seed;
    }
  }
}

TEST(CorpusGeneratorTest, HundredSeedsRegenerateByteIdentically) {
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    const Recipe recipe = SeededRecipe(seed);
    const auto first = GenerateDag(recipe);
    const auto second = GenerateDag(recipe);
    ASSERT_TRUE(first.ok() && second.ok()) << "seed " << seed;
    EXPECT_EQ(EmitWfCommons(*first), EmitWfCommons(*second))
        << "seed " << seed;
    const auto env_a = CompileDag(*first);
    const auto env_b = CompileDag(*second);
    ASSERT_TRUE(env_a.ok()) << "seed " << seed << ": " << env_a.status();
    ASSERT_TRUE(env_b.ok()) << "seed " << seed << ": " << env_b.status();
    EXPECT_EQ(workflow::SerializeEnvironment(*env_a),
              workflow::SerializeEnvironment(*env_b))
        << "seed " << seed;
  }
}

TEST(CorpusGeneratorTest, DistinctSeedsProduceDistinctRuntimes) {
  Recipe a = SeededRecipe(8);  // chain, lognormal
  Recipe b = a;
  b.seed = 12;
  const auto dag_a = GenerateDag(a);
  const auto dag_b = GenerateDag(b);
  ASSERT_TRUE(dag_a.ok() && dag_b.ok());
  ASSERT_EQ(dag_a->tasks.size(), dag_b->tasks.size());
  EXPECT_NE(dag_a->tasks[0].runtime, dag_b->tasks[0].runtime);
}

TEST(CorpusGeneratorTest, EmittedJsonRoundTripsThroughImporter) {
  const Recipe recipe = SeededRecipe(6);  // diamond ladder
  const auto dag = GenerateDag(recipe);
  ASSERT_TRUE(dag.ok()) << dag.status();
  const auto imported = ParseWfCommons(EmitWfCommons(*dag));
  ASSERT_TRUE(imported.ok()) << imported.status();
  ASSERT_EQ(imported->tasks.size(), dag->tasks.size());
  for (size_t i = 0; i < dag->tasks.size(); ++i) {
    EXPECT_EQ(imported->tasks[i].name, dag->tasks[i].name);
    EXPECT_EQ(imported->tasks[i].parents, dag->tasks[i].parents);
    EXPECT_DOUBLE_EQ(imported->tasks[i].runtime, dag->tasks[i].runtime);
    EXPECT_DOUBLE_EQ(imported->tasks[i].runtime_scv,
                     dag->tasks[i].runtime_scv);
    EXPECT_DOUBLE_EQ(imported->tasks[i].data_bytes, dag->tasks[i].data_bytes);
  }
}

TEST(CorpusGeneratorTest, ChainPatternIsASingleChain) {
  Recipe r;
  r.pattern = Pattern::kChain;
  r.num_tasks = 12;
  const auto dag = GenerateDag(r);
  ASSERT_TRUE(dag.ok()) << dag.status();
  ASSERT_EQ(dag->tasks.size(), 12u);
  EXPECT_EQ(dag->MaxFanOut(), 1u);
  const auto depth = dag->Depth();
  ASSERT_TRUE(depth.ok());
  EXPECT_EQ(*depth, 12u);
}

TEST(CorpusGeneratorTest, TreeReduceEndsInSingleRoot) {
  Recipe r;
  r.pattern = Pattern::kTreeReduce;
  r.num_tasks = 40;
  r.seed = 3;
  const auto dag = GenerateDag(r);
  ASSERT_TRUE(dag.ok()) << dag.status();
  // Exactly one sink: the reduction root.
  const auto children = dag->Children();
  size_t sinks = 0;
  for (const auto& c : children) sinks += c.empty() ? 1 : 0;
  EXPECT_EQ(sinks, 1u);
}

}  // namespace
}  // namespace wfms::corpus

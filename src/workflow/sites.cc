#include "workflow/sites.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

namespace wfms::workflow {
namespace {

// Tolerance for the symmetry check of the latency matrix: entries may come
// from a text scenario with limited precision, so a relative slack is
// allowed before an asymmetry is flagged as an authoring error.
constexpr double kSymmetryTolerance = 1e-9;

std::string FormatEntry(const SiteTopology& topo, size_t a, size_t b) {
  std::ostringstream os;
  os << "latency[" << topo.sites[a].name << "][" << topo.sites[b].name << "]";
  return os.str();
}

}  // namespace

Result<size_t> SiteTopology::IndexOf(const std::string& name) const {
  for (size_t a = 0; a < sites.size(); ++a) {
    if (sites[a].name == name) return a;
  }
  return Status::NotFound("unknown site '" + name + "'");
}

Status SiteTopology::Validate() const {
  if (sites.empty()) {
    if (!latency.empty() || partition_rate != 0.0 || heal_rate != 0.0) {
      return Status::InvalidArgument(
          "site topology has latency/partition data but no sites");
    }
    return Status::OK();
  }
  const size_t s = sites.size();
  if (s > kMaxSites) {
    std::ostringstream os;
    os << "too many sites: " << s << " (max " << kMaxSites << ")";
    return Status::InvalidArgument(os.str());
  }
  std::set<std::string> names;
  for (const Site& site : sites) {
    if (site.name.empty()) {
      return Status::InvalidArgument("site with empty name");
    }
    if (!names.insert(site.name).second) {
      return Status::InvalidArgument("duplicate site name '" + site.name +
                                     "'");
    }
    if (!std::isfinite(site.failure_rate) || site.failure_rate < 0.0) {
      return Status::InvalidArgument("site '" + site.name +
                                     "': failure rate must be finite and "
                                     ">= 0");
    }
    if (!std::isfinite(site.repair_rate) || site.repair_rate < 0.0) {
      return Status::InvalidArgument(
          "site '" + site.name + "': repair rate must be finite and >= 0");
    }
    if (site.failure_rate > 0.0 && site.repair_rate == 0.0) {
      return Status::InvalidArgument(
          "site '" + site.name +
          "': a failing site needs a positive repair rate");
    }
  }
  if (latency.size() != s * s) {
    std::ostringstream os;
    os << "latency matrix is not " << s << "x" << s << ": got "
       << latency.size() << " entries for " << s << " sites";
    return Status::InvalidArgument(os.str());
  }
  for (size_t a = 0; a < s; ++a) {
    for (size_t b = 0; b < s; ++b) {
      const double v = Latency(a, b);
      if (!std::isfinite(v) || v < 0.0) {
        std::ostringstream os;
        os << FormatEntry(*this, a, b) << " = " << v
           << ": latency must be finite and >= 0";
        return Status::InvalidArgument(os.str());
      }
      if (a == b && v != 0.0) {
        std::ostringstream os;
        os << FormatEntry(*this, a, b) << " = " << v
           << ": diagonal latency must be zero";
        return Status::InvalidArgument(os.str());
      }
      if (a < b) {
        const double w = Latency(b, a);
        const double scale = std::max({1.0, std::abs(v), std::abs(w)});
        if (std::abs(v - w) > kSymmetryTolerance * scale) {
          std::ostringstream os;
          os << "asymmetric latency: " << FormatEntry(*this, a, b) << " = "
             << v << " but " << FormatEntry(*this, b, a) << " = " << w;
          return Status::InvalidArgument(os.str());
        }
      }
    }
  }
  if (!std::isfinite(partition_rate) || partition_rate < 0.0) {
    return Status::InvalidArgument("partition rate must be finite and >= 0");
  }
  if (!std::isfinite(heal_rate) || heal_rate < 0.0) {
    return Status::InvalidArgument("heal rate must be finite and >= 0");
  }
  if (partition_rate > 0.0 && heal_rate == 0.0) {
    return Status::InvalidArgument(
        "a positive partition rate needs a positive heal rate");
  }
  return Status::OK();
}

size_t PairIndex(size_t a, size_t b, size_t num_sites) {
  // Lexicographic index of (a, b), a < b, among all unordered pairs.
  return a * num_sites - a * (a + 1) / 2 + (b - a - 1);
}

uint64_t ServingComponent(size_t num_types, size_t num_sites,
                          const int* up_counts, uint64_t up_sites,
                          uint64_t partitioned_pairs) {
  // Union-find over the up sites; an edge (a, b) exists iff both endpoints
  // are up and the pair is not partitioned.
  size_t parent[SiteTopology::kMaxSites];
  for (size_t a = 0; a < num_sites; ++a) parent[a] = a;
  const auto find = [&](size_t a) {
    while (parent[a] != a) a = parent[a] = parent[parent[a]];
    return a;
  };
  for (size_t a = 0; a + 1 < num_sites; ++a) {
    if ((up_sites & (uint64_t{1} << a)) == 0) continue;
    for (size_t b = a + 1; b < num_sites; ++b) {
      if ((up_sites & (uint64_t{1} << b)) == 0) continue;
      if (partitioned_pairs & (uint64_t{1} << PairIndex(a, b, num_sites))) {
        continue;
      }
      const size_t ra = find(a);
      const size_t rb = find(b);
      if (ra != rb) parent[std::max(ra, rb)] = std::min(ra, rb);
    }
  }
  // Scan components in order of their root (== lowest member index), which
  // resolves the tie-break "lowest minimum site index" for free: the first
  // component with the maximal replica total wins.
  uint64_t best_mask = 0;
  long best_total = -1;
  for (size_t root = 0; root < num_sites; ++root) {
    if ((up_sites & (uint64_t{1} << root)) == 0) continue;
    if (find(root) != root) continue;
    uint64_t mask = 0;
    for (size_t a = root; a < num_sites; ++a) {
      if ((up_sites & (uint64_t{1} << a)) != 0 && find(a) == root) {
        mask |= uint64_t{1} << a;
      }
    }
    bool covers = true;
    long total = 0;
    for (size_t x = 0; x < num_types && covers; ++x) {
      long type_total = 0;
      for (size_t a = 0; a < num_sites; ++a) {
        if (mask & (uint64_t{1} << a)) {
          type_total += up_counts[x * num_sites + a];
        }
      }
      if (type_total == 0) covers = false;
      total += type_total;
    }
    if (covers && total > best_total) {
      best_total = total;
      best_mask = mask;
    }
  }
  return best_mask;
}

double MeanCrossSiteLatency(const SiteTopology& topology,
                            const std::vector<int>& site_counts,
                            size_t type_index) {
  const size_t s = topology.num_sites();
  if (s == 0) return 0.0;
  long total = 0;
  for (size_t a = 0; a < s; ++a) {
    total += site_counts[type_index * s + a];
  }
  if (total == 0) return 0.0;
  // Origin site uniform over sites, serving replica proportional to the
  // placement: lambda_bar = sum_a sum_b (n_xa / Y_x) * (1/s) * L(b, a).
  double mean = 0.0;
  for (size_t a = 0; a < s; ++a) {
    const double weight =
        static_cast<double>(site_counts[type_index * s + a]) /
        static_cast<double>(total);
    if (weight == 0.0) continue;
    for (size_t b = 0; b < s; ++b) {
      mean += weight * topology.Latency(b, a) / static_cast<double>(s);
    }
  }
  return mean;
}

}  // namespace wfms::workflow

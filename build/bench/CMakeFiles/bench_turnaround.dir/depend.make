# Empty dependencies file for bench_turnaround.
# This may be replaced when dependencies are built.

// The architectural model of §2 of the paper: abstract server types
// (communication servers, workflow engines, application servers), the
// per-activity service-request load matrix of §4.2 (Fig. 1: an activity
// induces a fixed number of requests on each involved server type), and
// the workflow environment bundling charts, server types, loads, and
// workflow types with their arrival rates.
#ifndef WFMS_WORKFLOW_ENVIRONMENT_H_
#define WFMS_WORKFLOW_ENVIRONMENT_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "linalg/vector.h"
#include "queueing/distributions.h"
#include "statechart/model.h"
#include "workflow/sites.h"

namespace wfms::workflow {

enum class ServerKind {
  kCommunicationServer,  // ORB-style middleware
  kWorkflowEngine,
  kApplicationServer,
};

const char* ServerKindToString(ServerKind kind);

/// One abstract server type. Replication degrees are *not* part of the
/// environment — they form the Configuration that the models assess.
struct ServerType {
  std::string name;
  ServerKind kind = ServerKind::kWorkflowEngine;
  /// First two moments of the per-request service time (model time units).
  queueing::ServiceMoments service;
  /// Failure rate lambda (1/MTTF) and repair rate mu (1/MTTR) of a single
  /// server of this type (§2).
  double failure_rate = 0.0;
  double repair_rate = 0.0;
};

class ServerTypeRegistry {
 public:
  /// Returns the index of the newly added type.
  Result<size_t> AddServerType(ServerType type);

  size_t size() const { return types_.size(); }
  const ServerType& type(size_t i) const { return types_[i]; }
  ServerType& mutable_type(size_t i) { return types_[i]; }
  Result<size_t> IndexOf(const std::string& name) const;

  Status Validate() const;

 private:
  std::vector<ServerType> types_;
  std::map<std::string, size_t> index_;
};

/// L^t of §4.2, keyed by activity type: the number of service requests an
/// execution of one activity instance induces on each server type.
class ActivityLoadTable {
 public:
  /// Sets the full load vector of an activity (size = #server types).
  Status SetLoad(const std::string& activity, linalg::Vector requests);

  /// Load vector of an activity; an activity with no entry induces no load
  /// (e.g. pure control states) and yields a zero vector of size k.
  linalg::Vector LoadOf(const std::string& activity, size_t num_types) const;

  bool HasActivity(const std::string& activity) const;
  std::vector<std::string> Activities() const;

  /// All vectors must match the registry size and be non-negative.
  Status Validate(size_t num_types) const;

 private:
  std::map<std::string, linalg::Vector> loads_;
};

/// A workflow type as seen by the models: its chart plus the arrival rate
/// xi_t of new instances (Poisson, §4.3).
struct WorkflowTypeSpec {
  std::string name;
  std::string chart;
  double arrival_rate = 0.0;
};

/// Everything the assessment models need about the application, exclusive
/// of the configuration (replication degrees) under evaluation.
struct Environment {
  statechart::ChartRegistry charts;
  ServerTypeRegistry servers;
  ActivityLoadTable loads;
  std::vector<WorkflowTypeSpec> workflows;
  /// Optional multi-site topology (DESIGN.md §12); empty for the classic
  /// single-site model.
  SiteTopology topology;

  size_t num_server_types() const { return servers.size(); }

  /// Cross-checks: charts referenced by workflows exist, registry
  /// references validate, loads match the server count, rates are sane.
  Status Validate() const;
};

}  // namespace wfms::workflow

#endif  // WFMS_WORKFLOW_ENVIRONMENT_H_

#include "markov/lumping.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace wfms::markov {

using linalg::SparseMatrix;
using linalg::Vector;

namespace {

inline uint64_t BitsOf(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

inline uint64_t Fnv1a64(uint64_t hash, uint64_t token) {
  constexpr uint64_t kPrime = 1099511628211ull;
  for (int b = 0; b < 8; ++b) {
    hash ^= (token >> (b * 8)) & 0xffu;
    hash *= kPrime;
  }
  return hash;
}

/// Accumulates one adjacency row (outgoing or incoming) into per-block rate
/// sums and folds the sorted (block, sum) pairs into `hash`. Sums are
/// accumulated in CSR entry order and compared via their bit patterns, so
/// "equal" means bit-for-bit equal — a conservative, reproducible notion of
/// lumpability that never merges states whose rate sums differ even in the
/// last ulp.
class BlockSumFolder {
 public:
  explicit BlockSumFolder(size_t num_blocks) : acc_(num_blocks, 0.0) {}

  void EnsureBlocks(size_t num_blocks) {
    if (acc_.size() < num_blocks) acc_.resize(num_blocks, 0.0);
  }

  uint64_t Fold(uint64_t hash, const SparseMatrix& m,
                const std::vector<uint32_t>& block_of, size_t row) {
    const auto& offsets = m.row_offsets();
    const auto& cols = m.col_indices();
    const auto& values = m.values();
    touched_.clear();
    for (size_t k = offsets[row]; k < offsets[row + 1]; ++k) {
      const uint32_t b = block_of[cols[k]];
      if (acc_[b] == 0.0) touched_.push_back(b);
      acc_[b] += values[k];
    }
    std::sort(touched_.begin(), touched_.end());
    for (uint32_t b : touched_) {
      hash = Fnv1a64(hash, b);
      hash = Fnv1a64(hash, BitsOf(acc_[b]));
      acc_[b] = 0.0;
    }
    return hash;
  }

 private:
  std::vector<double> acc_;
  std::vector<uint32_t> touched_;
};

/// Renumbers arbitrary labels into dense block ids ordered by each block's
/// smallest member state, and fills block sizes. Returns the block count.
size_t Densify(const std::vector<uint64_t>& keys,
               std::vector<uint32_t>* block_of,
               std::vector<uint32_t>* block_size) {
  const size_t n = keys.size();
  std::vector<uint32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return keys[a] != keys[b] ? keys[a] < keys[b] : a < b;
  });
  // First pass: group consecutive equal keys; remember each group's
  // smallest state (the first seen, since ties sort by state id).
  std::vector<uint32_t> group_of(n);
  std::vector<uint32_t> group_min;
  for (size_t idx = 0; idx < n; ++idx) {
    if (idx == 0 || keys[order[idx]] != keys[order[idx - 1]]) {
      group_min.push_back(order[idx]);
    }
    group_of[order[idx]] = static_cast<uint32_t>(group_min.size() - 1);
  }
  // Second pass: rank groups by smallest member so ids are deterministic
  // and independent of the hash values themselves.
  std::vector<uint32_t> rank(group_min.size());
  std::vector<uint32_t> by_min(group_min.size());
  for (size_t g = 0; g < by_min.size(); ++g) {
    by_min[g] = static_cast<uint32_t>(g);
  }
  std::sort(by_min.begin(), by_min.end(), [&](uint32_t a, uint32_t b) {
    return group_min[a] < group_min[b];
  });
  for (size_t r = 0; r < by_min.size(); ++r) rank[by_min[r]] = r;

  block_of->resize(n);
  block_size->assign(group_min.size(), 0);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t b = rank[group_of[i]];
    (*block_of)[i] = b;
    ++(*block_size)[b];
  }
  return group_min.size();
}

}  // namespace

double LumpingPartition::reduction_ratio() const {
  if (num_states() == 0) return 1.0;
  return static_cast<double>(num_blocks()) /
         static_cast<double>(num_states());
}

Result<LumpingPartition> FindLumpablePartition(const Ctmc& chain,
                                               const SparseMatrix& incoming,
                                               const LumpingOptions& options) {
  const size_t n = chain.num_states();
  if (incoming.rows() != n || incoming.cols() != n) {
    return Status::InvalidArgument(
        "lumping: incoming matrix does not match the chain");
  }
  if (options.seed_labels != nullptr && options.seed_labels->size() != n) {
    return Status::InvalidArgument(
        "lumping: seed label count does not match the chain");
  }

  LumpingPartition partition;
  // Initial partition: the seed labels (one block without seeds). The
  // total exit rate is deliberately NOT part of the key: it accumulates in
  // per-state insertion order, so two genuinely symmetric states can
  // differ in the last ulp of their exit sums while every *per-block* rate
  // sum — which only ever combines equal values for such states — stays
  // bit-identical. Per-block sums carry all the information (the exit rate
  // is their total), so refinement below splits everything that must
  // split.
  std::vector<uint64_t> keys(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t h = 14695981039346656037ull;
    if (options.seed_labels != nullptr) {
      h = Fnv1a64(h, (*options.seed_labels)[i]);
    }
    keys[i] = h;
  }
  size_t num_blocks = Densify(keys, &partition.block_of,
                              &partition.block_size);

  // Signature refinement: each pass re-labels every state by the bit-exact
  // (block, rate-sum) profile of its outgoing *and* incoming transitions
  // with respect to the current partition, then splits groups whose
  // profiles differ. The pass count is bounded by the lattice height (each
  // pass strictly increases the block count or terminates); the 64-bit
  // profile hash can in principle collide and under-split, which the
  // caller's full-chain residual validation turns into a fallback rather
  // than a wrong answer.
  BlockSumFolder folder(num_blocks);
  for (int pass = 0; pass < options.max_passes; ++pass) {
    folder.EnsureBlocks(num_blocks);
    for (size_t i = 0; i < n; ++i) {
      uint64_t h = Fnv1a64(14695981039346656037ull, partition.block_of[i]);
      h = folder.Fold(h, chain.rates(), partition.block_of, i);
      h = Fnv1a64(h, ~uint64_t{0});  // separator: outgoing vs incoming
      h = folder.Fold(h, incoming, partition.block_of, i);
      keys[i] = h;
    }
    const size_t next_blocks = Densify(keys, &partition.block_of,
                                       &partition.block_size);
    if (next_blocks == num_blocks) break;  // stable partition reached
    num_blocks = next_blocks;
  }
  return partition;
}

Result<Ctmc> BuildQuotient(const Ctmc& chain,
                           const LumpingPartition& partition) {
  const size_t n = chain.num_states();
  if (partition.block_of.size() != n) {
    return Status::InvalidArgument("quotient: partition does not match chain");
  }
  const size_t m = partition.num_blocks();
  // Representative = smallest member of each block (block ids are ordered
  // by smallest member, so the first state seen per block is it).
  std::vector<uint32_t> representative(m, 0);
  std::vector<bool> seen(m, false);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t b = partition.block_of[i];
    if (!seen[b]) {
      seen[b] = true;
      representative[b] = static_cast<uint32_t>(i);
    }
  }
  CtmcBuilder builder(m);
  const auto& offsets = chain.rates().row_offsets();
  const auto& cols = chain.rates().col_indices();
  const auto& values = chain.rates().values();
  std::vector<double> acc(m, 0.0);
  std::vector<uint32_t> touched;
  size_t nnz_hint = 0;
  for (size_t b = 0; b < m; ++b) {
    const size_t r = representative[b];
    nnz_hint += offsets[r + 1] - offsets[r];
  }
  builder.Reserve(nnz_hint);
  for (size_t b = 0; b < m; ++b) {
    const size_t r = representative[b];
    touched.clear();
    for (size_t k = offsets[r]; k < offsets[r + 1]; ++k) {
      const uint32_t c = partition.block_of[cols[k]];
      if (c == b) continue;  // within-block arcs vanish in the quotient
      if (acc[c] == 0.0) touched.push_back(c);
      acc[c] += values[k];
    }
    std::sort(touched.begin(), touched.end());
    for (uint32_t c : touched) {
      WFMS_RETURN_NOT_OK(builder.AddTransition(b, c, acc[c]));
      acc[c] = 0.0;
    }
  }
  return builder.Build();
}

Vector ExpandUniform(const LumpingPartition& partition,
                     const Vector& quotient_pi) {
  WFMS_CHECK_EQ(quotient_pi.size(), partition.num_blocks());
  Vector pi(partition.num_states());
  for (size_t i = 0; i < pi.size(); ++i) {
    const uint32_t b = partition.block_of[i];
    pi[i] = quotient_pi[b] / static_cast<double>(partition.block_size[b]);
  }
  return pi;
}

Vector RestrictToQuotient(const LumpingPartition& partition,
                          const Vector& full) {
  WFMS_CHECK_EQ(full.size(), partition.num_states());
  Vector q(partition.num_blocks(), 0.0);
  for (size_t i = 0; i < full.size(); ++i) {
    q[partition.block_of[i]] += full[i];
  }
  return q;
}

}  // namespace wfms::markov

#include "markov/transient.h"

#include <cmath>

#include "linalg/dense_matrix.h"
#include "markov/dtmc.h"

namespace wfms::markov {

using linalg::DenseMatrix;
using linalg::Vector;

Result<RewardResult> ExpectedRewardUntilAbsorption(
    const AbsorbingCtmc& chain, const Vector& entry_rewards,
    const RewardOptions& options) {
  const size_t n = chain.num_states();
  if (entry_rewards.size() != n) {
    return Status::InvalidArgument("entry reward vector size mismatch");
  }
  if (options.residual_mass_threshold <= 0.0 ||
      options.residual_mass_threshold >= 1.0) {
    return Status::InvalidArgument(
        "residual mass threshold must be in (0, 1)");
  }
  const size_t a = chain.absorbing_state();
  const size_t s0 = chain.initial_state();

  // Uniformized one-step matrix restricted to taboo of the absorbing state:
  // we simply never propagate mass out of column/row A, so the state vector
  // u(z) carries exactly the taboo probabilities \bar p_{0a}(z).
  const DenseMatrix u_matrix = chain.UniformizedTransitionMatrix();

  // Per-state expected one-step reward: g_a = sum_{b != A, b != a}
  // \bar p_ab * l_b. Note (1/v) q_ab == \bar p_ab for b != a, so the
  // paper's (1/v) sum q_ab l_b equals this inner product.
  Vector step_reward(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    if (i == a) continue;
    double g = 0.0;
    for (size_t b = 0; b < n; ++b) {
      if (b == a || b == i) continue;
      g += u_matrix.At(i, b) * entry_rewards[b];
    }
    step_reward[i] = g;
  }

  RewardResult result;
  result.expected_reward = entry_rewards[s0];

  Vector u(n, 0.0);  // taboo distribution over non-absorbing states
  u[s0] = 1.0;
  double mass = 1.0;
  for (int z = 0; z < options.max_steps && mass > options.residual_mass_threshold;
       ++z) {
    // Accumulate this step's expected reward.
    double reward = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (u[i] != 0.0) reward += u[i] * step_reward[i];
    }
    result.expected_reward += reward;
    result.steps = z + 1;

    // Advance: u(z+1)_b = sum_{c != A} u(z)_c * \bar p_cb for b != A.
    Vector next(n, 0.0);
    for (size_t c = 0; c < n; ++c) {
      if (c == a || u[c] == 0.0) continue;
      for (size_t b = 0; b < n; ++b) {
        if (b == a) continue;
        next[b] += u[c] * u_matrix.At(c, b);
      }
    }
    u.swap(next);
    mass = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (i != a) mass += u[i];
    }
  }
  result.residual_mass = mass;
  if (mass > options.residual_mass_threshold) {
    // The caller asked for more precision than the step cap allowed.
    return Status::NumericError(
        "reward summation truncated with residual mass " +
        std::to_string(mass));
  }
  return result;
}

Result<Vector> ExpectedStateVisits(const AbsorbingCtmc& chain) {
  WFMS_ASSIGN_OR_RETURN(Dtmc embedded, chain.EmbeddedChain());
  return embedded.ExpectedVisitsUntilAbsorption(chain.initial_state());
}

Result<int> AbsorptionStepBound(const AbsorbingCtmc& chain, double confidence,
                                int max_steps) {
  if (confidence <= 0.0 || confidence >= 1.0) {
    return Status::InvalidArgument("confidence must be in (0, 1)");
  }
  const size_t n = chain.num_states();
  const size_t a = chain.absorbing_state();
  const DenseMatrix u_matrix = chain.UniformizedTransitionMatrix();
  Vector u(n, 0.0);
  u[chain.initial_state()] = 1.0;
  const double threshold = 1.0 - confidence;
  double mass = 1.0;
  for (int z = 0; z < max_steps; ++z) {
    if (mass <= threshold) return z;
    Vector next(n, 0.0);
    for (size_t c = 0; c < n; ++c) {
      if (c == a || u[c] == 0.0) continue;
      for (size_t b = 0; b < n; ++b) {
        if (b == a) continue;
        next[b] += u[c] * u_matrix.At(c, b);
      }
    }
    u.swap(next);
    mass = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (i != a) mass += u[i];
    }
  }
  return Status::NumericError("absorption step bound exceeds max_steps");
}

}  // namespace wfms::markov

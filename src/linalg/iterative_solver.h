// Iterative linear solvers on CSR matrices: Jacobi, Gauss-Seidel (the
// method the paper prescribes for both the first-passage and steady-state
// systems), and SOR. Also power iteration for the dominant left eigenvector
// of a stochastic matrix, used as the robust fallback for steady-state
// analysis of large availability CTMCs.
#ifndef WFMS_LINALG_ITERATIVE_SOLVER_H_
#define WFMS_LINALG_ITERATIVE_SOLVER_H_

#include <string>

#include "common/result.h"
#include "linalg/sparse_matrix.h"
#include "linalg/vector.h"

namespace wfms::linalg {

struct IterativeOptions {
  int max_iterations = 20000;
  /// Convergence when the infinity norm of the iterate change and of the
  /// residual both drop below this.
  double tolerance = 1e-12;
  /// SOR relaxation factor in (0, 2); 1.0 degenerates to Gauss-Seidel.
  double omega = 1.0;
};

struct IterativeStats {
  bool converged = false;
  int iterations = 0;
  double final_residual_inf = 0.0;
};

/// Solves A x = b by Jacobi iteration. A must have nonzero diagonal.
/// `x` carries the initial guess in and the solution out.
Result<IterativeStats> JacobiSolve(const SparseMatrix& a, const Vector& b,
                                   Vector* x,
                                   const IterativeOptions& options = {});

/// Solves A x = b by Gauss-Seidel (forward sweeps).
Result<IterativeStats> GaussSeidelSolve(const SparseMatrix& a, const Vector& b,
                                        Vector* x,
                                        const IterativeOptions& options = {});

/// Solves A x = b by successive over-relaxation with options.omega.
Result<IterativeStats> SorSolve(const SparseMatrix& a, const Vector& b,
                                Vector* x,
                                const IterativeOptions& options = {});

/// Computes the stationary distribution pi = pi P of a row-stochastic
/// matrix P by power iteration with L1 renormalization. `pi` carries the
/// initial guess (need not be normalized; must have a nonzero sum).
Result<IterativeStats> PowerIterationStationary(
    const SparseMatrix& p, Vector* pi, const IterativeOptions& options = {});

}  // namespace wfms::linalg

#endif  // WFMS_LINALG_ITERATIVE_SOLVER_H_

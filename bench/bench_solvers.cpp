// E11 — solver micro-benchmarks (google-benchmark): the linear-algebra
// cores that every model evaluation exercises. Compares the paper's
// Gauss-Seidel prescription against the LU and power-iteration
// alternatives on availability CTMCs of growing state-space size, and
// times the first-passage and Markov-reward analyses on Erlang-expanded
// workflow chains.

#include <benchmark/benchmark.h>

#include "avail/availability_model.h"
#include "markov/ctmc.h"
#include "markov/first_passage.h"
#include "markov/phase_type.h"
#include "markov/steady_state.h"
#include "markov/transient.h"
#include "performability/performability_model.h"
#include "statechart/to_ctmc.h"
#include "workflow/scenarios.h"

namespace {

using namespace wfms;

/// Availability CTMC of `types` server types, `replicas` each (state
/// space (replicas+1)^types).
markov::Ctmc MakeAvailabilityChain(int types, int replicas) {
  std::vector<int> bounds(static_cast<size_t>(types), replicas);
  auto space = markov::MixedRadixSpace::Create(bounds);
  markov::CtmcBuilder builder(space->size());
  for (size_t i = 0; i < space->size(); ++i) {
    for (size_t x = 0; x < static_cast<size_t>(types); ++x) {
      const int up = space->Component(i, x);
      const double lambda = 1.0 / (100.0 * (x + 1));
      if (up > 0) {
        (void)builder.AddTransition(i, space->Neighbor(i, x, -1),
                                    up * lambda);
      }
      if (up < replicas) {
        (void)builder.AddTransition(i, space->Neighbor(i, x, +1),
                                    (replicas - up) * 0.1);
      }
    }
  }
  return *builder.Build();
}

void BM_SteadyState(benchmark::State& state, markov::SteadyStateMethod method) {
  const int types = static_cast<int>(state.range(0));
  const int replicas = static_cast<int>(state.range(1));
  const markov::Ctmc chain = MakeAvailabilityChain(types, replicas);
  markov::SteadyStateOptions options;
  options.method = method;
  for (auto _ : state) {
    auto result = markov::SolveSteadyState(chain, options);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(std::to_string(chain.num_states()) + " states");
}

void SteadyStateArgs(benchmark::internal::Benchmark* bench) {
  bench->Args({3, 2})->Args({3, 4})->Args({5, 3})->Args({6, 3});
}

BENCHMARK_CAPTURE(BM_SteadyState, gauss_seidel,
                  markov::SteadyStateMethod::kGaussSeidel)
    ->Apply(SteadyStateArgs)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_SteadyState, power, markov::SteadyStateMethod::kPower)
    ->Apply(SteadyStateArgs)
    ->Unit(benchmark::kMicrosecond);
// LU is dense O(n^3); cap it at the smaller spaces.
BENCHMARK_CAPTURE(BM_SteadyState, lu, markov::SteadyStateMethod::kLu)
    ->Args({3, 2})
    ->Args({3, 4})
    ->Args({5, 3})
    ->Unit(benchmark::kMicrosecond);

void BM_FirstPassage(benchmark::State& state,
                     markov::FirstPassageMethod method) {
  auto env = workflow::EpEnvironment();
  auto mapped = statechart::MapChartToCtmc(env->charts, "EP");
  // Erlang-expand every transient state to grow the chain realistically.
  const int stages_per_state = static_cast<int>(state.range(0));
  std::vector<int> stages(mapped->chain.num_states(), stages_per_state);
  stages[mapped->chain.absorbing_state()] = 1;
  auto expanded = markov::ExpandErlangStages(mapped->chain, stages);
  for (auto _ : state) {
    auto result = markov::MeanTurnaroundTime(expanded->chain, method);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(std::to_string(expanded->chain.num_states()) + " states");
}

BENCHMARK_CAPTURE(BM_FirstPassage, lu, markov::FirstPassageMethod::kLu)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_FirstPassage, gauss_seidel,
                  markov::FirstPassageMethod::kGaussSeidel)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void BM_MarkovReward(benchmark::State& state) {
  auto env = workflow::EpEnvironment();
  auto mapped = statechart::MapChartToCtmc(env->charts, "EP");
  linalg::Vector rewards(mapped->chain.num_states(), 1.0);
  rewards[mapped->chain.absorbing_state()] = 0.0;
  markov::RewardOptions options;
  options.residual_mass_threshold =
      1.0 / static_cast<double>(state.range(0));
  for (auto _ : state) {
    auto result = markov::ExpectedRewardUntilAbsorption(mapped->chain,
                                                        rewards, options);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
}

BENCHMARK(BM_MarkovReward)
    ->Arg(100)          // the paper's 99% absorption bound
    ->Arg(1000000)
    ->Arg(1000000000)
    ->Unit(benchmark::kMicrosecond);

void BM_FullPerformabilityEvaluation(benchmark::State& state) {
  auto env = workflow::EpEnvironment(1.0);
  auto model = performability::PerformabilityModel::Create(*env);
  const int replicas = static_cast<int>(state.range(0));
  const workflow::Configuration config =
      workflow::Configuration::Uniform(3, replicas);
  for (auto _ : state) {
    auto result = model->Evaluate(config);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
}

BENCHMARK(BM_FullPerformabilityEvaluation)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();

// The end-to-end closed loop: simulate → monitor → calibrate → assess →
// reconfigure, in control periods ("epochs").
//
// The one-shot simulator cannot change its configuration mid-run, so the
// loop runs one simulation per epoch: epoch e covers model time
// [e*epoch, (e+1)*epoch) under the configuration the controller currently
// recommends, with arrival rates taken from the scripted load schedule
// (base rates at the epoch start, the schedule slice within the epoch).
// The simulation thread publishes every audit record into a bounded
// AuditStream (blocking mode — lossless, so estimates are exact); the
// loop thread drains the stream into the ReconfigurationController and
// evaluates it at the epoch boundary.
//
// Determinism: each epoch's simulation seed is derived from the master
// seed by a SplitMix-seeded draw per epoch, the stream is FIFO, and the
// controller is single-threaded — the whole loop is a pure function of
// (environment, options), bit-identical across runs and machines
// regardless of thread scheduling.
#ifndef WFMS_ADAPT_AUTOTUNE_H_
#define WFMS_ADAPT_AUTOTUNE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "adapt/controller.h"
#include "common/result.h"
#include "sim/simulator.h"

namespace wfms::adapt {

struct AutotuneOptions {
  workflow::Configuration initial;
  /// Total model time and control-period length (model minutes).
  double duration = 20000.0;
  double epoch = 2000.0;
  uint64_t seed = 1;
  sim::DispatchPolicy dispatch = sim::DispatchPolicy::kRoundRobin;
  bool enable_failures = true;
  bool exponential_residence = true;
  /// Scripted load phases over the *whole* run (absolute times).
  sim::LoadSchedule load;
  /// Bounded stream between the simulation thread and the loop thread.
  size_t stream_capacity = 4096;
  ControllerOptions controller;
  OnlineCalibratorOptions calibrator;
  /// Request-trace context (DESIGN.md §13): parents the autotune span and
  /// flows into each epoch's simulation and the controller's searches.
  trace::TraceContext trace;
};

/// One control period of the run.
struct EpochReport {
  int index = 0;
  double start = 0.0;
  double end = 0.0;
  /// Configuration the epoch ran under.
  workflow::Configuration config;
  /// Arrival rates in force at the epoch start (schedule ground truth).
  std::vector<double> scheduled_rates;
  uint64_t events = 0;
  /// Mean observed turnaround across workflow types this epoch (simulator
  /// ground truth, not the estimator view).
  double observed_turnaround = 0.0;
  ControllerDecision decision;
};

struct AutotuneReport {
  std::vector<EpochReport> epochs;
  workflow::Configuration final_config;
  int reconfigurations = 0;
  uint64_t events_total = 0;
  uint64_t dropped_total = 0;

  std::string ToString() const;
};

/// Runs the closed loop over `env` (the designed model; also the source of
/// the base arrival rates the load schedule modulates).
Result<AutotuneReport> RunAutotune(const workflow::Environment& env,
                                   const AutotuneOptions& options);

}  // namespace wfms::adapt

#endif  // WFMS_ADAPT_AUTOTUNE_H_

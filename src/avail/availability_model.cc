#include "avail/availability_model.h"

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <tuple>

#include "common/metrics.h"
#include "common/time_units.h"
#include "common/trace.h"
#include "markov/birth_death.h"
#include "markov/ctmc_transient.h"
#include "markov/ctmc.h"

namespace wfms::avail {

using linalg::Vector;
using markov::MixedRadixSpace;
using markov::StateVector;
using workflow::Configuration;

Result<AvailabilityModel> AvailabilityModel::Create(
    const workflow::ServerTypeRegistry& servers,
    const AvailabilityOptions& options) {
  WFMS_RETURN_NOT_OK(servers.Validate());
  Vector failures(servers.size()), repairs(servers.size());
  for (size_t x = 0; x < servers.size(); ++x) {
    failures[x] = servers.type(x).failure_rate;
    repairs[x] = servers.type(x).repair_rate;
  }
  return AvailabilityModel(std::move(failures), std::move(repairs), options);
}

Result<Vector> AvailabilityModel::PerTypeDistribution(size_t type_index,
                                                      int replicas) const {
  if (type_index >= num_types()) {
    return Status::OutOfRange("server type index out of range");
  }
  const double lambda = failure_rates_[type_index];
  const double mu = repair_rates_[type_index];
  if (options_.repair_policy == RepairPolicy::kIndependent) {
    return markov::ReplicatedServerAvailability(replicas, lambda, mu);
  }
  // Single crew: births (repairs) at constant mu, deaths at (j+1)*lambda.
  const auto y = static_cast<size_t>(replicas);
  Vector births(y), deaths(y);
  for (size_t j = 0; j < y; ++j) {
    births[j] = mu;
    deaths[j] = static_cast<double>(j + 1) * lambda;
  }
  return markov::BirthDeathSteadyState(births, deaths);
}

Result<Vector> AvailabilityModel::ProductFormStateProbabilities(
    const Configuration& config, const MixedRadixSpace& space) const {
  const size_t k = num_types();
  std::vector<Vector> per_type(k);
  for (size_t x = 0; x < k; ++x) {
    WFMS_ASSIGN_OR_RETURN(per_type[x],
                          PerTypeDistribution(x, config.replicas[x]));
  }
  Vector pi(space.size(), 1.0);
  for (size_t i = 0; i < space.size(); ++i) {
    for (size_t x = 0; x < k; ++x) {
      pi[i] *= per_type[x][static_cast<size_t>(space.Component(i, x))];
    }
  }
  return pi;
}

Result<markov::Ctmc> AvailabilityModel::BuildCtmc(
    const Configuration& config, const MixedRadixSpace& space) const {
  const size_t k = num_types();
  WFMS_RETURN_NOT_OK(config.Validate(k));
  // Generator over the mixed-radix state space (§5.2).
  markov::CtmcBuilder builder(space.size());
  builder.Reserve(space.size() * 2 * k);  // <= one failure + one repair arc per type
  for (size_t i = 0; i < space.size(); ++i) {
    for (size_t x = 0; x < k; ++x) {
      const int up = space.Component(i, x);
      if (up > 0) {
        // One of the `up` servers of type x fails.
        const size_t j = space.Neighbor(i, x, -1);
        WFMS_RETURN_NOT_OK(
            builder.AddTransition(i, j, up * failure_rates_[x]));
      }
      const int down = config.replicas[x] - up;
      if (down > 0) {
        const size_t j = space.Neighbor(i, x, +1);
        const double rate =
            options_.repair_policy == RepairPolicy::kIndependent
                ? down * repair_rates_[x]
                : repair_rates_[x];
        WFMS_RETURN_NOT_OK(builder.AddTransition(i, j, rate));
      }
    }
  }
  return builder.Build();
}

Result<double> AvailabilityModel::PointAvailability(
    const Configuration& config, double t) const {
  const size_t k = num_types();
  WFMS_RETURN_NOT_OK(config.Validate(k));
  WFMS_ASSIGN_OR_RETURN(MixedRadixSpace space,
                        MixedRadixSpace::Create(config.replicas));
  WFMS_ASSIGN_OR_RETURN(markov::Ctmc chain, BuildCtmc(config, space));
  Vector p0(space.size(), 0.0);
  markov::StateVector full(config.replicas.begin(), config.replicas.end());
  p0[space.EncodeUnchecked(full)] = 1.0;
  WFMS_ASSIGN_OR_RETURN(Vector pt,
                        markov::CtmcTransientDistribution(chain, p0, t));
  double up_probability = 0.0;
  for (size_t i = 0; i < space.size(); ++i) {
    bool up = true;
    for (size_t x = 0; x < k; ++x) {
      if (space.Component(i, x) == 0) {
        up = false;
        break;
      }
    }
    if (up) up_probability += pt[i];
  }
  return up_probability;
}

Result<AvailabilityReport> AvailabilityModel::Evaluate(
    const Configuration& config, const linalg::Vector* steady_state_guess,
    const markov::SteadyStateOptions* solver_override) const {
  auto& registry = metrics::MetricsRegistry::Global();
  static metrics::Counter& evaluations =
      registry.GetCounter("wfms_avail_evaluations_total");
  static metrics::Counter& product_form =
      registry.GetCounter("wfms_avail_product_form_total");
  static metrics::Counter& ctmc_solves =
      registry.GetCounter("wfms_avail_ctmc_solves_total");
  static metrics::Histogram& evaluate_seconds =
      registry.GetHistogram("wfms_avail_evaluate_seconds");
  evaluations.Increment();
  trace::TraceSpan span("avail/evaluate", "avail");
  const auto start = std::chrono::steady_clock::now();
  const auto observe_elapsed = [&start]() {
    evaluate_seconds.Observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count());
  };

  const size_t k = num_types();
  WFMS_RETURN_NOT_OK(config.Validate(k));
  WFMS_ASSIGN_OR_RETURN(MixedRadixSpace space,
                        MixedRadixSpace::Create(config.replicas));

  AvailabilityReport report;
  Vector pi;
  if (options_.use_product_form) {
    product_form.Increment();
    WFMS_ASSIGN_OR_RETURN(pi, ProductFormStateProbabilities(config, space));
  } else {
    ctmc_solves.Increment();
    WFMS_ASSIGN_OR_RETURN(markov::Ctmc chain, BuildCtmc(config, space));
    markov::SteadyStateOptions solver_options =
        solver_override != nullptr ? *solver_override : options_.solver;
    solver_options.initial_guess = steady_state_guess;
    // Seed the lumping pass with canonical orbits of exchangeable server
    // types: dimensions whose (failure rate, repair rate, replica count)
    // coincide bit-for-bit have permutation-invariant dynamics, so states
    // differing only by such a permutation are lumping candidates.
    std::vector<uint32_t> seed_storage;
    if (solver_options.lumping != markov::LumpingMode::kOff &&
        solver_options.lumping_seed == nullptr && k > 1) {
      std::map<std::tuple<uint64_t, uint64_t, int>, uint64_t> sig_ids;
      std::vector<uint64_t> signature(k);
      for (size_t x = 0; x < k; ++x) {
        uint64_t failure_bits, repair_bits;
        std::memcpy(&failure_bits, &failure_rates_[x], sizeof(double));
        std::memcpy(&repair_bits, &repair_rates_[x], sizeof(double));
        const auto [it, inserted] = sig_ids.emplace(
            std::make_tuple(failure_bits, repair_bits, config.replicas[x]),
            sig_ids.size());
        signature[x] = it->second;
      }
      auto labels = markov::ExchangeableStateLabels(space, signature);
      if (labels.ok()) {
        seed_storage = *std::move(labels);
        solver_options.lumping_seed = &seed_storage;
      }
    }
    auto solved = markov::SolveSteadyState(chain, solver_options);
    if (!solved.ok()) {
      return solved.status().WithContext("availability CTMC for " +
                                         config.ToString());
    }
    pi = std::move(solved->pi);
    report.solver_iterations = solved->iterations;
    report.solver_method = solved->method_used;
    report.solver_diagnostics = solved->diagnostics;
    report.solver_attempts = std::move(solved->attempts);
    report.lumping_applied = solved->lumping_applied;
    report.lumped_states = solved->lumped_states;
  }

  // Aggregate: available iff all types have at least one server up.
  double available = 0.0;
  Vector expected_up(k, 0.0);
  for (size_t i = 0; i < space.size(); ++i) {
    bool up = true;
    for (size_t x = 0; x < k; ++x) {
      const int count = space.Component(i, x);
      expected_up[x] += pi[i] * count;
      if (count == 0) up = false;
    }
    if (up) available += pi[i];
  }

  report.availability = available;
  report.unavailability = 1.0 - available;
  report.downtime_minutes_per_year =
      UnavailabilityToDowntimeMinutesPerYear(1.0 - available);
  report.state_probabilities = std::move(pi);
  report.space = std::move(space);
  report.expected_up_servers = std::move(expected_up);
  observe_elapsed();
  return report;
}

}  // namespace wfms::avail

file(REMOVE_RECURSE
  "libwfms_configtool.a"
)

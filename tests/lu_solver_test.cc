#include "linalg/lu_solver.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace wfms::linalg {
namespace {

TEST(LuSolverTest, Solves2x2) {
  DenseMatrix a{{2, 1}, {1, 3}};
  const auto x = LuSolve(a, {5, 10});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(LuSolverTest, RequiresSquare) {
  DenseMatrix a(2, 3);
  EXPECT_FALSE(LuDecomposition::Compute(a).ok());
}

TEST(LuSolverTest, DetectsSingular) {
  DenseMatrix a{{1, 2}, {2, 4}};
  const auto lu = LuDecomposition::Compute(a);
  ASSERT_FALSE(lu.ok());
  EXPECT_EQ(lu.status().code(), StatusCode::kNumericError);
}

TEST(LuSolverTest, PivotingHandlesZeroLeadingEntry) {
  DenseMatrix a{{0, 1}, {1, 0}};
  const auto x = LuSolve(a, {3, 7});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 7.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(LuSolverTest, RandomSystemsResidualSmall) {
  Rng rng(97);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 5 + static_cast<size_t>(rng.NextUint64(20));
    DenseMatrix a(n, n);
    Vector b(n);
    for (size_t r = 0; r < n; ++r) {
      b[r] = rng.NextDouble(-5, 5);
      for (size_t c = 0; c < n; ++c) a.At(r, c) = rng.NextDouble(-1, 1);
      a.At(r, r) += 3.0;  // keep well-conditioned
    }
    const auto x = LuSolve(a, b);
    ASSERT_TRUE(x.ok());
    const Vector ax = a.Multiply(*x);
    for (size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);
  }
}

TEST(LuSolverTest, Determinant) {
  DenseMatrix a{{2, 0}, {0, 3}};
  auto lu = LuDecomposition::Compute(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(lu->Determinant(), 6.0, 1e-12);

  // Permutation sign: swapping rows flips the determinant.
  DenseMatrix b{{0, 1}, {1, 0}};
  auto lub = LuDecomposition::Compute(b);
  ASSERT_TRUE(lub.ok());
  EXPECT_NEAR(lub->Determinant(), -1.0, 1e-12);
}

TEST(LuSolverTest, InverseTimesMatrixIsIdentity) {
  DenseMatrix a{{4, 2, 0}, {1, 5, 1}, {0, 3, 6}};
  auto lu = LuDecomposition::Compute(a);
  ASSERT_TRUE(lu.ok());
  auto inv = lu->Inverse();
  ASSERT_TRUE(inv.ok());
  const DenseMatrix prod = a.Multiply(*inv);
  EXPECT_LT(prod.MaxAbsDiff(DenseMatrix::Identity(3)), 1e-12);
}

TEST(LuSolverTest, MultiRhsSolve) {
  DenseMatrix a{{3, 1}, {1, 2}};
  DenseMatrix b{{9, 1}, {8, 0}};
  auto lu = LuDecomposition::Compute(a);
  ASSERT_TRUE(lu.ok());
  auto x = lu->Solve(b);
  ASSERT_TRUE(x.ok());
  const DenseMatrix ax = a.Multiply(*x);
  EXPECT_LT(ax.MaxAbsDiff(b), 1e-12);
}

TEST(LuSolverTest, RhsSizeMismatchRejected) {
  DenseMatrix a{{1, 0}, {0, 1}};
  auto lu = LuDecomposition::Compute(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_FALSE(lu->Solve(Vector{1, 2, 3}).ok());
}

}  // namespace
}  // namespace wfms::linalg

// Performability goals (§7.1): administrators specify (1) a tolerance
// threshold for the mean waiting time of service requests and (2) a
// minimum availability level; both can be refined per server type.
#ifndef WFMS_CONFIGTOOL_GOALS_H_
#define WFMS_CONFIGTOOL_GOALS_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace wfms::configtool {

struct Goals {
  /// Tolerance threshold on every entry of the performability waiting-time
  /// vector W^Y (model time units).
  double max_waiting_time = 1.0;
  /// Minimum steady-state availability of the entire WFMS.
  double min_availability = 0.999;
  /// Optional per-server-type waiting-time thresholds; an entry <= 0 means
  /// "use the global threshold". Empty means all-global.
  std::vector<double> per_type_max_waiting;
  /// Upper bound on the probability that some server type is saturated in
  /// an operational state (1.0 disables the check, matching the paper's
  /// two-goal formulation).
  double max_saturation_probability = 1.0;
  /// §7.1's workflow-type-specific refinement: an upper bound on the
  /// expected total queueing delay one instance of the named workflow
  /// type accumulates across all its service requests,
  /// D_t = sum_x r_{x,t} * W^Y_x. Unlisted workflow types are unbounded.
  std::map<std::string, double> max_instance_delay;

  // --- Survivability goals (multi-site environments, DESIGN.md §12) ---
  /// Number of simultaneous whole-site losses the goals must survive:
  /// 1 re-assesses every single-site-loss contingency against the
  /// degraded goals below (0 disables; only 0 and 1 are supported).
  int survive_sites = 0;
  /// Re-assess every two-way partition contingency against the degraded
  /// goals.
  bool survive_partitions = false;
  /// Goal thresholds applied *under a contingency*; <= 0 means "inherit
  /// the corresponding base goal". Operators typically relax these — a
  /// region loss may justify slower responses, not an outage.
  double degraded_max_waiting_time = 0.0;
  double degraded_min_availability = -1.0;

  bool wants_survivability() const {
    return survive_sites > 0 || survive_partitions;
  }
  double DegradedWaitingThreshold() const {
    return degraded_max_waiting_time > 0.0 ? degraded_max_waiting_time
                                           : max_waiting_time;
  }
  double DegradedAvailabilityGoal() const {
    return degraded_min_availability >= 0.0 ? degraded_min_availability
                                            : min_availability;
  }

  Status Validate(size_t num_types) const;
  /// Effective threshold for server type x.
  double WaitingThreshold(size_t x) const;
};

/// Cost of a configuration (§7.1): proportional to the total number of
/// servers by default, refinable per server type.
struct CostModel {
  /// Cost of one server of each type; empty means unit cost for all.
  std::vector<double> per_server_cost;

  static CostModel Uniform() { return CostModel{}; }

  double Cost(const std::vector<int>& replicas) const;
  Status Validate(size_t num_types) const;
};

}  // namespace wfms::configtool

#endif  // WFMS_CONFIGTOOL_GOALS_H_

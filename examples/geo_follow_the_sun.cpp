// Follow-the-sun load on a two-region deployment: the load_schedule DSL
// shifts the EP arrival rate through a business-day cycle (quiet nights,
// EU morning ramp, US afternoon peak) while the simulator measures what
// the symmetric EU/US placement actually delivers.
//
// Build & run:  ./build/examples/geo_follow_the_sun

#include <cstdio>

#include "sim/load_schedule.h"
#include "sim/simulator.h"
#include "workflow/configuration.h"
#include "workflow/scenarios.h"

int main() {
  using namespace wfms;

  auto env = workflow::GeoEpEnvironment(/*arrival_rate=*/0.3);
  if (!env.ok()) {
    std::fprintf(stderr, "environment: %s\n", env.status().ToString().c_str());
    return 1;
  }

  // Two business days (times in minutes): the mix triples when the EU
  // comes online, peaks when the US overlaps, and drops back at night.
  auto schedule = sim::ParseLoadSchedule(
      "# day 1\n"
      "at 480  scale-all 3\n"   // 08:00 EU morning
      "at 840  scale-all 2\n"   // 14:00 EU+US overlap peak
      "at 1320 rate EP 0.3\n"   // 22:00 back to the night rate
      "# day 2\n"
      "at 1920 scale-all 3\n"
      "at 2280 scale-all 2\n"
      "at 2760 rate EP 0.3\n",
      env->workflows);
  if (!schedule.ok()) {
    std::fprintf(stderr, "load schedule: %s\n",
                 schedule.status().ToString().c_str());
    return 1;
  }

  sim::SimulationOptions options;
  options.config = workflow::Configuration::FromSiteCounts({1, 1, 1, 1, 2, 2}, 2);
  options.duration = 2880.0;  // two days
  options.warmup = 120.0;
  options.seed = 42;
  options.load = *schedule;

  auto simulator = sim::Simulator::Create(*env, options);
  if (!simulator.ok()) {
    std::fprintf(stderr, "simulator: %s\n",
                 simulator.status().ToString().c_str());
    return 1;
  }
  auto result = simulator->Run();
  if (!result.ok()) {
    std::fprintf(stderr, "run: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("Placement %s over a 2-day follow-the-sun cycle:\n",
              options.config.ToString().c_str());
  for (size_t x = 0; x < result->servers.size(); ++x) {
    std::printf("  %-8s completed %6lld, mean waiting %.4f min, "
                "utilization %.3f\n",
                env->servers.type(x).name.c_str(),
                static_cast<long long>(result->servers[x].completed_requests),
                result->servers[x].waiting_time.mean(),
                result->utilization[x]);
  }
  for (const auto& [name, wf] : result->workflows) {
    std::printf("  workflow %-8s completed %5lld, mean turnaround %.3f min\n",
                name.c_str(), static_cast<long long>(wf.completed),
                wf.turnaround.mean());
  }
  std::printf("  observed availability %.6f\n",
              result->observed_availability);
  return 0;
}

// Scripted fault injection for the simulator: a deterministic schedule of
// timed crash/repair/whole-type-outage events that *overrides* the
// exponential failure/repair processes (when a schedule is non-empty the
// random processes are disabled entirely, so the same schedule + seed is
// bit-identical across runs). The schedule doubles as an analytic object:
// PrescribedAvailability replays it symbolically, giving the exact
// availability the simulator must observe — the cross-validation hook
// between the simulator and the availability model's bookkeeping.
//
// Text DSL (one event per line; blank lines and '#' comments ignored):
//
//   at <time> crash   <server-type> [replica-index]
//   at <time> repair  <server-type> [replica-index]
//   at <time> outage  <server-type>     # whole type down
//   at <time> restore <server-type>     # whole type back up
//
// Times are simulation minutes; replica-index defaults to 0. Events firing
// at the same instant apply in schedule order.
#ifndef WFMS_SIM_FAULT_SCHEDULE_H_
#define WFMS_SIM_FAULT_SCHEDULE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "workflow/configuration.h"
#include "workflow/environment.h"

namespace wfms::sim {

enum class FaultAction {
  kCrash,       // one replica down (no-op if already down)
  kRepair,      // one replica up (no-op if already up)
  kTypeOutage,  // every replica of the type down
  kTypeRestore  // every replica of the type up
};

const char* FaultActionName(FaultAction action);

struct FaultEvent {
  double time = 0.0;
  FaultAction action = FaultAction::kCrash;
  /// Index into the environment's server-type registry.
  size_t server_type = 0;
  /// Replica within the type; ignored by the whole-type actions.
  int server_index = 0;
};

struct FaultSchedule {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  /// Checks every event against the configuration: finite non-negative
  /// times, known server types, replica indices within the replication
  /// degree.
  Status Validate(const workflow::Configuration& config,
                  size_t num_types) const;

  /// Events sorted by time (stable: same-instant events keep schedule
  /// order) — the order the simulator applies them in.
  std::vector<FaultEvent> Sorted() const;

  /// Exact availability a failure-free simulator run under this schedule
  /// must observe: the fraction of [warmup, duration) in which every
  /// server type has at least one replica up, obtained by replaying the
  /// schedule symbolically over per-type up-counts. This is the same
  /// "available iff every type has >= 1 server up" structure function the
  /// §5 availability CTMC aggregates — evaluated on the prescribed
  /// trajectory instead of the stationary distribution.
  Result<double> PrescribedAvailability(const workflow::Configuration& config,
                                        size_t num_types, double warmup,
                                        double duration) const;
};

/// Parses the text DSL above, resolving server types by name against the
/// registry. Errors carry the 1-based line number.
Result<FaultSchedule> ParseFaultSchedule(
    const std::string& text, const workflow::ServerTypeRegistry& servers);

}  // namespace wfms::sim

#endif  // WFMS_SIM_FAULT_SCHEDULE_H_

file(REMOVE_RECURSE
  "CMakeFiles/wfms_queueing.dir/distributions.cc.o"
  "CMakeFiles/wfms_queueing.dir/distributions.cc.o.d"
  "CMakeFiles/wfms_queueing.dir/mg1.cc.o"
  "CMakeFiles/wfms_queueing.dir/mg1.cc.o.d"
  "libwfms_queueing.a"
  "libwfms_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfms_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

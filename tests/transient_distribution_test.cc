#include "markov/transient_distribution.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "linalg/dense_matrix.h"
#include "markov/first_passage.h"

namespace wfms::markov {
namespace {

using linalg::DenseMatrix;
using linalg::Vector;

AbsorbingCtmc MakeSingleState(double h) {
  DenseMatrix p{{0, 1}, {0, 0}};
  auto chain = AbsorbingCtmc::Create(p, {h, kInfiniteResidence}, {"w", "A"},
                                     0, 1);
  EXPECT_TRUE(chain.ok());
  return *std::move(chain);
}

AbsorbingCtmc MakeTwoStage(double h0, double h1) {
  DenseMatrix p{{0, 1, 0}, {0, 0, 1}, {0, 0, 0}};
  auto chain = AbsorbingCtmc::Create(
      p, {h0, h1, kInfiniteResidence}, {"a", "b", "A"}, 0, 2);
  EXPECT_TRUE(chain.ok());
  return *std::move(chain);
}

TEST(TransientDistributionTest, TimeZeroIsInitialState) {
  const AbsorbingCtmc chain = MakeSingleState(2.0);
  auto p = TransientDistribution(chain, 0.0);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ((*p)[0], 1.0);
  EXPECT_DOUBLE_EQ((*p)[1], 0.0);
}

TEST(TransientDistributionTest, SingleStateIsExponential) {
  // One Exp(1/H) stage: P(done by t) = 1 - exp(-t/H).
  const double h = 3.0;
  const AbsorbingCtmc chain = MakeSingleState(h);
  for (double t : {0.5, 1.0, 3.0, 10.0, 30.0}) {
    auto prob = CompletionProbabilityByTime(chain, t);
    ASSERT_TRUE(prob.ok()) << prob.status();
    EXPECT_NEAR(*prob, 1.0 - std::exp(-t / h), 1e-9) << "t=" << t;
  }
}

TEST(TransientDistributionTest, TwoEqualStagesAreErlang2) {
  // Two Exp(1) stages: P(done by t) = 1 - e^-t (1 + t).
  const AbsorbingCtmc chain = MakeTwoStage(1.0, 1.0);
  for (double t : {0.5, 1.0, 2.0, 5.0}) {
    auto prob = CompletionProbabilityByTime(chain, t);
    ASSERT_TRUE(prob.ok());
    EXPECT_NEAR(*prob, 1.0 - std::exp(-t) * (1.0 + t), 1e-9) << "t=" << t;
  }
}

TEST(TransientDistributionTest, DistributionSumsToOne) {
  const AbsorbingCtmc chain = MakeTwoStage(2.0, 5.0);
  for (double t : {0.1, 1.0, 10.0, 100.0, 10000.0}) {
    auto p = TransientDistribution(chain, t);
    ASSERT_TRUE(p.ok()) << "t=" << t << ": " << p.status();
    double sum = 0.0;
    for (double v : *p) {
      EXPECT_GE(v, -1e-12);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << "t=" << t;
  }
}

TEST(TransientDistributionTest, CompletionMonotoneInTime) {
  const AbsorbingCtmc chain = MakeTwoStage(1.0, 4.0);
  double prev = 0.0;
  for (double t = 0.5; t < 40.0; t *= 2.0) {
    auto prob = CompletionProbabilityByTime(chain, t);
    ASSERT_TRUE(prob.ok());
    EXPECT_GE(*prob, prev);
    prev = *prob;
  }
  EXPECT_GT(prev, 0.99);
}

TEST(TransientDistributionTest, LargeVtStaysStable) {
  // Fast state (residence 0.01) + slow deadline => vt ~ 1e5: the Poisson
  // summation must remain numerically stable.
  const AbsorbingCtmc chain = MakeTwoStage(0.01, 10.0);
  auto prob = CompletionProbabilityByTime(chain, 1000.0);
  ASSERT_TRUE(prob.ok()) << prob.status();
  EXPECT_NEAR(*prob, 1.0, 1e-6);
}

TEST(TransientDistributionTest, MeanFromDistributionMatchesFirstPassage) {
  // E[T] = integral of (1 - F(t)) dt, approximated by the trapezoid rule,
  // must match the first-passage mean turnaround.
  const AbsorbingCtmc chain = MakeTwoStage(2.0, 3.0);
  auto mean = MeanTurnaroundTime(chain);
  ASSERT_TRUE(mean.ok());
  double integral = 0.0;
  const double dt = 0.05;
  for (double t = 0.0; t < 120.0; t += dt) {
    auto f0 = CompletionProbabilityByTime(chain, t);
    auto f1 = CompletionProbabilityByTime(chain, t + dt);
    ASSERT_TRUE(f0.ok());
    ASSERT_TRUE(f1.ok());
    integral += 0.5 * ((1.0 - *f0) + (1.0 - *f1)) * dt;
  }
  EXPECT_NEAR(integral, *mean, 0.02 * *mean);
}

TEST(TurnaroundQuantileTest, MatchesExponentialQuantiles) {
  const double h = 2.0;
  const AbsorbingCtmc chain = MakeSingleState(h);
  for (double q : {0.5, 0.9, 0.99}) {
    auto t = TurnaroundQuantile(chain, q, 1e-4);
    ASSERT_TRUE(t.ok());
    EXPECT_NEAR(*t, -h * std::log(1.0 - q), 1e-3) << "q=" << q;
  }
}

TEST(TurnaroundQuantileTest, QuantilesAreMonotone) {
  const AbsorbingCtmc chain = MakeTwoStage(1.0, 5.0);
  auto p50 = TurnaroundQuantile(chain, 0.5);
  auto p95 = TurnaroundQuantile(chain, 0.95);
  ASSERT_TRUE(p50.ok());
  ASSERT_TRUE(p95.ok());
  EXPECT_LT(*p50, *p95);
}

TEST(TransientDistributionTest, Validation) {
  const AbsorbingCtmc chain = MakeSingleState(1.0);
  EXPECT_FALSE(TransientDistribution(chain, -1.0).ok());
  EXPECT_FALSE(
      TransientDistribution(chain,
                            std::numeric_limits<double>::infinity())
          .ok());
  EXPECT_FALSE(TurnaroundQuantile(chain, 0.0).ok());
  EXPECT_FALSE(TurnaroundQuantile(chain, 1.0).ok());
  EXPECT_FALSE(TurnaroundQuantile(chain, 0.5, 0.0).ok());
}

}  // namespace
}  // namespace wfms::markov

// Minimal leveled logging and check macros used throughout the library.
//
// Each line is prefixed with the level, a monotonic timestamp (seconds
// since process start), a small per-thread tag, and the call site:
//   [INFO 12.345678 t3 steady_state.cc:142] ...
// The minimum level defaults to warning and can be set at startup via the
// WFMS_LOG_LEVEL environment variable (debug|info|warning|error|fatal, or
// 0-4) or at runtime via SetLogLevel().
#ifndef WFMS_COMMON_LOGGING_H_
#define WFMS_COMMON_LOGGING_H_

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace wfms {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Process-wide minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Re-reads WFMS_LOG_LEVEL and applies it (no-op when unset or invalid).
/// Runs automatically at process start; exposed for tests.
void InitLogLevelFromEnv();

namespace internal {

/// Small dense tag for the calling thread (1, 2, 3, ... in first-use
/// order) — stable for the thread's lifetime, reused nowhere. Used in log
/// prefixes and as the trace-event tid.
int ThreadTag();

/// Seconds since process start on the monotonic clock.
double MonotonicSeconds();

/// Accumulates one log line and emits it (to stderr) on destruction.
/// Fatal messages abort the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

/// Discards everything streamed into it; used for disabled DCHECKs.
class NullLog {
 public:
  template <typename T>
  NullLog& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace wfms

#define WFMS_LOG(level)                                              \
  ::wfms::internal::LogMessage(::wfms::LogLevel::k##level, __FILE__, \
                               __LINE__)

/// Emits on the 1st, (n+1)th, (2n+1)th, ... execution of the statement —
/// lets solver inner loops log without flooding. Each textual occurrence
/// has its own counter (the lambda's static is unique per expansion).
/// Expands to a single statement, so it is safe in unbraced if/else.
#define WFMS_LOG_EVERY_N(level, n)                                        \
  for (bool wfms_log_every_n_fire = ([&]() -> bool {                      \
         static ::std::atomic<unsigned long long> wfms_occurrences{0};    \
         return wfms_occurrences.fetch_add(                               \
                    1, ::std::memory_order_relaxed) %                     \
                    static_cast<unsigned long long>((n)) ==               \
                0;                                                        \
       })();                                                              \
       wfms_log_every_n_fire; wfms_log_every_n_fire = false)              \
  WFMS_LOG(level)

/// Aborts with a message when `condition` is false. Active in all builds:
/// the checks guard numerical invariants whose violation would silently
/// corrupt model results.
#define WFMS_CHECK(condition)                                        \
  (condition) ? static_cast<void>(0)                                 \
              : static_cast<void>(                                   \
                    WFMS_LOG(Fatal) << "Check failed: " #condition " ")

#define WFMS_CHECK_BINOP(lhs, rhs, op)                                   \
  ((lhs)op(rhs)) ? static_cast<void>(0)                                  \
                 : static_cast<void>(WFMS_LOG(Fatal)                     \
                                     << "Check failed: " #lhs " " #op    \
                                        " " #rhs " (" << (lhs) << " vs " \
                                     << (rhs) << ") ")

#define WFMS_CHECK_EQ(lhs, rhs) WFMS_CHECK_BINOP(lhs, rhs, ==)
#define WFMS_CHECK_NE(lhs, rhs) WFMS_CHECK_BINOP(lhs, rhs, !=)
#define WFMS_CHECK_LT(lhs, rhs) WFMS_CHECK_BINOP(lhs, rhs, <)
#define WFMS_CHECK_LE(lhs, rhs) WFMS_CHECK_BINOP(lhs, rhs, <=)
#define WFMS_CHECK_GT(lhs, rhs) WFMS_CHECK_BINOP(lhs, rhs, >)
#define WFMS_CHECK_GE(lhs, rhs) WFMS_CHECK_BINOP(lhs, rhs, >=)

#ifdef NDEBUG
#define WFMS_DCHECK(condition) \
  while (false) ::wfms::internal::NullLog() << !(condition)
#else
#define WFMS_DCHECK(condition) WFMS_CHECK(condition)
#endif

#endif  // WFMS_COMMON_LOGGING_H_

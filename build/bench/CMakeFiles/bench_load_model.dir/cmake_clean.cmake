file(REMOVE_RECURSE
  "CMakeFiles/bench_load_model.dir/bench_load_model.cpp.o"
  "CMakeFiles/bench_load_model.dir/bench_load_model.cpp.o.d"
  "bench_load_model"
  "bench_load_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_load_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

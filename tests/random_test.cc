#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/statistics.h"

namespace wfms {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 3);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformDoubleRange) {
  Rng rng(7);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.NextDouble(2.0, 6.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 6.0);
    stats.Add(u);
  }
  EXPECT_NEAR(stats.mean(), 4.0, 0.05);
}

TEST(RngTest, NextUint64Bounds) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) {
    const uint64_t v = rng.NextUint64(10);
    ASSERT_LT(v, 10u);
    ++counts[static_cast<size_t>(v)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 5000, 350);  // ~5 sigma for a fair die
  }
}

TEST(RngTest, ExponentialMoments) {
  Rng rng(13);
  const double rate = 0.25;
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.NextExponential(rate));
  EXPECT_NEAR(stats.mean(), 1.0 / rate, 0.05);
  // Exponential SCV is 1.
  EXPECT_NEAR(stats.scv(), 1.0, 0.05);
}

TEST(RngTest, ErlangMoments) {
  Rng rng(17);
  const int k = 4;
  const double rate = 2.0;
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.NextErlang(k, rate));
  EXPECT_NEAR(stats.mean(), k / rate, 0.02);
  // Erlang-k SCV is 1/k.
  EXPECT_NEAR(stats.scv(), 1.0 / k, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(19);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.NextNormal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.variance(), 1.0, 0.03);
}

TEST(RngTest, LognormalByMomentsMatchesTargets) {
  Rng rng(23);
  const double mean = 3.0;
  const double scv = 2.0;
  RunningStats stats;
  for (int i = 0; i < 400000; ++i) {
    stats.Add(rng.NextLognormalByMoments(mean, scv));
  }
  EXPECT_NEAR(stats.mean(), mean, 0.05);
  EXPECT_NEAR(stats.scv(), scv, 0.15);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, DiscreteDistribution) {
  Rng rng(31);
  const double weights[] = {1.0, 2.0, 3.0, 4.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<size_t>(rng.NextDiscrete(weights, 4))];
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(counts[static_cast<size_t>(i)] / static_cast<double>(n), (i + 1) / 10.0, 0.01);
  }
}

TEST(RngTest, DiscreteSkipsZeroWeight) {
  Rng rng(37);
  const double weights[] = {0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(rng.NextDiscrete(weights, 3), 1);
}

TEST(RngTest, SplitStreamsAreIndependentish) {
  Rng parent(101);
  Rng child = parent.Split();
  // The child stream should not replicate the parent stream.
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (parent.Next() == child.Next());
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace wfms

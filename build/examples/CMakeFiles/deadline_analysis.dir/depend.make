# Empty dependencies file for deadline_analysis.
# This may be replaced when dependencies are built.

#include "configtool/tool.h"

#include <algorithm>
#include <queue>
#include <set>
#include <cmath>
#include <sstream>

#include "common/random.h"
#include "common/time_units.h"

namespace wfms::configtool {

using workflow::Configuration;

Status SearchConstraints::Validate(size_t num_types) const {
  if (!min_replicas.empty() && min_replicas.size() != num_types) {
    return Status::InvalidArgument("min_replicas size mismatch");
  }
  if (!max_replicas.empty() && max_replicas.size() != num_types) {
    return Status::InvalidArgument("max_replicas size mismatch");
  }
  for (size_t x = 0; x < num_types; ++x) {
    if (MinFor(x) < 1) {
      return Status::InvalidArgument("minimum replication must be >= 1");
    }
    if (MaxFor(x) < MinFor(x)) {
      return Status::InvalidArgument(
          "max replication below min for server type " + std::to_string(x));
    }
  }
  return Status::OK();
}

Result<ConfigurationTool> ConfigurationTool::Create(
    const workflow::Environment& env,
    const performability::PerformabilityOptions& options) {
  WFMS_ASSIGN_OR_RETURN(performability::PerformabilityModel model,
                        performability::PerformabilityModel::Create(env,
                                                                    options));
  return ConfigurationTool(&env, std::move(model));
}

Result<Assessment> ConfigurationTool::Assess(const Configuration& config,
                                             const Goals& goals,
                                             const CostModel& cost) const {
  const size_t k = env_->num_server_types();
  WFMS_RETURN_NOT_OK(goals.Validate(k));
  WFMS_RETURN_NOT_OK(cost.Validate(k));
  WFMS_ASSIGN_OR_RETURN(performability::PerformabilityReport report,
                        model_.Evaluate(config));
  Assessment assessment{config,
                        std::move(report),
                        cost.Cost(config.replicas),
                        true,
                        false,
                        false,
                        true,
                        {}};
  for (size_t x = 0; x < k; ++x) {
    const double w = assessment.performability.expected_waiting[x];
    if (!(w <= goals.WaitingThreshold(x))) {  // NaN/inf fail too
      assessment.meets_waiting_goal = false;
    }
  }
  assessment.meets_availability_goal =
      assessment.performability.availability >= goals.min_availability;
  assessment.meets_saturation_goal =
      assessment.performability.prob_saturated <=
      goals.max_saturation_probability;

  // §7.1's workflow-type-specific refinement: per-instance queueing delay
  // under the performability waiting times W^Y.
  const auto& workflows = model_.performance().workflows();
  assessment.instance_delays.assign(workflows.size(), 0.0);
  for (size_t t = 0; t < workflows.size(); ++t) {
    double delay = 0.0;
    for (size_t x = 0; x < k; ++x) {
      const double requests = workflows[t].expected_requests[x];
      if (requests > 0.0) {
        delay += requests * assessment.performability.expected_waiting[x];
      }
    }
    assessment.instance_delays[t] = delay;
    const auto bound = goals.max_instance_delay.find(
        workflows[t].workflow_type);
    if (bound != goals.max_instance_delay.end() &&
        !(delay <= bound->second)) {
      assessment.meets_instance_delay_goal = false;
    }
  }
  return assessment;
}

double ConfigurationTool::ViolationMeasure(const Assessment& assessment,
                                           const Goals& goals) const {
  double violation = 0.0;
  const size_t k = env_->num_server_types();
  for (size_t x = 0; x < k; ++x) {
    const double w = assessment.performability.expected_waiting[x];
    const double threshold = goals.WaitingThreshold(x);
    if (std::isinf(w) || std::isnan(w)) {
      violation += 10.0;
    } else if (w > threshold) {
      violation += (w - threshold) / threshold;
    }
  }
  const double unavail_goal = 1.0 - goals.min_availability;
  const double unavail = 1.0 - assessment.performability.availability;
  if (unavail > unavail_goal && unavail_goal > 0.0) {
    violation += std::log10(unavail / unavail_goal);
  }
  if (assessment.performability.prob_saturated >
      goals.max_saturation_probability) {
    violation += assessment.performability.prob_saturated -
                 goals.max_saturation_probability;
  }
  const auto& workflows = model_.performance().workflows();
  for (size_t t = 0; t < workflows.size() &&
                     t < assessment.instance_delays.size();
       ++t) {
    const auto bound =
        goals.max_instance_delay.find(workflows[t].workflow_type);
    if (bound == goals.max_instance_delay.end()) continue;
    const double delay = assessment.instance_delays[t];
    if (std::isinf(delay) || std::isnan(delay)) {
      violation += 10.0;
    } else if (delay > bound->second) {
      violation += (delay - bound->second) / bound->second;
    }
  }
  return violation;
}

namespace {

Configuration MinimalConfig(const SearchConstraints& constraints, size_t k) {
  Configuration config;
  config.replicas.resize(k);
  for (size_t x = 0; x < k; ++x) config.replicas[x] = constraints.MinFor(x);
  return config;
}

}  // namespace

Result<SearchResult> ConfigurationTool::GreedyMinCost(
    const Goals& goals, const SearchConstraints& constraints,
    const CostModel& cost) const {
  const size_t k = env_->num_server_types();
  WFMS_RETURN_NOT_OK(constraints.Validate(k));
  Configuration config = MinimalConfig(constraints, k);

  int budget = 0;  // total replicas that can still be added
  for (size_t x = 0; x < k; ++x) {
    budget += constraints.MaxFor(x) - constraints.MinFor(x);
  }

  SearchResult result;
  result.evaluations = 0;
  WFMS_ASSIGN_OR_RETURN(Assessment assessment, Assess(config, goals, cost));
  ++result.evaluations;

  // §7.2: consider the availability and the performability criterion in an
  // interleaved manner, re-evaluating after every added replica so the
  // configuration is never oversized.
  while (!assessment.Satisfies() && budget > 0) {
    bool added = false;

    if (!assessment.meets_availability_goal) {
      // Most critical type for availability: the one whose probability of
      // being completely down is largest (i.e. the weakest link).
      double worst = -1.0;
      size_t pick = SIZE_MAX;
      for (size_t x = 0; x < k; ++x) {
        if (config.replicas[x] >= constraints.MaxFor(x)) continue;
        auto dist = model_.availability().PerTypeDistribution(
            x, config.replicas[x]);
        if (!dist.ok()) return dist.status();
        const double down = (*dist)[0];
        if (down > worst) {
          worst = down;
          pick = x;
        }
      }
      if (pick != SIZE_MAX) {
        ++config.replicas[pick];
        --budget;
        added = true;
        WFMS_ASSIGN_OR_RETURN(assessment, Assess(config, goals, cost));
        ++result.evaluations;
        if (assessment.Satisfies()) break;
      }
    }

    if (!assessment.meets_waiting_goal || !assessment.meets_saturation_goal ||
        !assessment.meets_instance_delay_goal) {
      // Most critical type for responsiveness: the one with the largest
      // relative waiting-time violation (saturated types first, then by
      // utilization). A pure instance-delay violation steers toward the
      // type contributing the most delay to the violating workflows.
      const auto& workflows = model_.performance().workflows();
      double worst = -1.0;
      size_t pick = SIZE_MAX;
      for (size_t x = 0; x < k; ++x) {
        if (config.replicas[x] >= constraints.MaxFor(x)) continue;
        const double w = assessment.performability.expected_waiting[x];
        double score =
            std::isinf(w) || std::isnan(w)
                ? 1e12 + assessment.performability.full_config_waiting[x]
                : w / goals.WaitingThreshold(x);
        if (!assessment.meets_instance_delay_goal && std::isfinite(w)) {
          for (size_t t = 0; t < workflows.size(); ++t) {
            const auto bound = goals.max_instance_delay.find(
                workflows[t].workflow_type);
            if (bound == goals.max_instance_delay.end()) continue;
            if (assessment.instance_delays[t] <= bound->second) continue;
            score += workflows[t].expected_requests[x] * w / bound->second;
          }
        }
        if (score > worst) {
          worst = score;
          pick = x;
        }
      }
      if (pick != SIZE_MAX) {
        ++config.replicas[pick];
        --budget;
        added = true;
        WFMS_ASSIGN_OR_RETURN(assessment, Assess(config, goals, cost));
        ++result.evaluations;
      }
    }

    if (!added) break;  // every critical type is capped
  }

  result.config = config;
  result.cost = cost.Cost(config.replicas);
  result.satisfied = assessment.Satisfies();
  result.assessment = std::move(assessment);
  return result;
}

Result<SearchResult> ConfigurationTool::ExhaustiveMinCost(
    const Goals& goals, const SearchConstraints& constraints,
    const CostModel& cost) const {
  const size_t k = env_->num_server_types();
  WFMS_RETURN_NOT_OK(constraints.Validate(k));

  SearchResult result;
  bool have_best = false;
  Configuration best;
  double best_cost = 0.0;

  Configuration current = MinimalConfig(constraints, k);
  Assessment best_assessment;
  best_assessment.config = current;
  Assessment last_assessment = best_assessment;

  for (;;) {
    const double current_cost = cost.Cost(current.replicas);
    // Skip candidates that cannot beat the incumbent.
    if (!have_best || current_cost < best_cost) {
      WFMS_ASSIGN_OR_RETURN(Assessment assessment,
                            Assess(current, goals, cost));
      ++result.evaluations;
      last_assessment = assessment;
      if (assessment.Satisfies() &&
          (!have_best || current_cost < best_cost)) {
        have_best = true;
        best = current;
        best_cost = current_cost;
        best_assessment = std::move(assessment);
      }
    }
    // Mixed-radix increment over the constrained space.
    size_t x = 0;
    for (; x < k; ++x) {
      if (current.replicas[x] < constraints.MaxFor(x)) {
        ++current.replicas[x];
        for (size_t y = 0; y < x; ++y) {
          current.replicas[y] = constraints.MinFor(y);
        }
        break;
      }
    }
    if (x == k) break;  // wrapped: enumeration done
  }

  if (have_best) {
    result.config = best;
    result.cost = best_cost;
    result.satisfied = true;
    result.assessment = std::move(best_assessment);
  } else {
    result.config = MinimalConfig(constraints, k);
    result.cost = cost.Cost(result.config.replicas);
    result.satisfied = false;
    result.assessment = std::move(last_assessment);
  }
  return result;
}

Result<SearchResult> ConfigurationTool::AnnealingMinCost(
    const Goals& goals, const SearchConstraints& constraints,
    const CostModel& cost, const AnnealingOptions& annealing) const {
  const size_t k = env_->num_server_types();
  WFMS_RETURN_NOT_OK(constraints.Validate(k));
  Rng rng(annealing.seed);

  const auto objective = [&](const Assessment& assessment) {
    return assessment.cost +
           annealing.infeasibility_penalty *
               ViolationMeasure(assessment, goals);
  };

  SearchResult result;
  Configuration current = MinimalConfig(constraints, k);
  WFMS_ASSIGN_OR_RETURN(Assessment current_assessment,
                        Assess(current, goals, cost));
  ++result.evaluations;
  double current_objective = objective(current_assessment);

  bool have_best = current_assessment.Satisfies();
  Configuration best = current;
  double best_cost = current_assessment.cost;
  Assessment best_assessment = current_assessment;

  double temperature = annealing.initial_temperature;
  for (int iter = 0; iter < annealing.iterations; ++iter) {
    // Propose: move one random type up or down within bounds.
    Configuration proposal = current;
    const size_t x = rng.NextUint64(k);
    const int delta = rng.NextBernoulli(0.5) ? 1 : -1;
    proposal.replicas[x] += delta;
    if (proposal.replicas[x] < constraints.MinFor(x) ||
        proposal.replicas[x] > constraints.MaxFor(x)) {
      continue;
    }
    WFMS_ASSIGN_OR_RETURN(Assessment assessment,
                          Assess(proposal, goals, cost));
    ++result.evaluations;
    const double proposal_objective = objective(assessment);
    const double diff = proposal_objective - current_objective;
    if (diff <= 0.0 ||
        rng.NextDouble() < std::exp(-diff / std::max(temperature, 1e-9))) {
      current = proposal;
      current_objective = proposal_objective;
      if (assessment.Satisfies() &&
          (!have_best || assessment.cost < best_cost)) {
        have_best = true;
        best = proposal;
        best_cost = assessment.cost;
        best_assessment = assessment;
      }
      current_assessment = std::move(assessment);
    }
    temperature *= annealing.cooling;
  }

  if (have_best) {
    result.config = best;
    result.cost = best_cost;
    result.satisfied = true;
    result.assessment = std::move(best_assessment);
  } else {
    result.config = current;
    result.cost = current_assessment.cost;
    result.satisfied = false;
    result.assessment = std::move(current_assessment);
  }
  return result;
}

Result<SearchResult> ConfigurationTool::BranchAndBoundMinCost(
    const Goals& goals, const SearchConstraints& constraints,
    const CostModel& cost) const {
  const size_t k = env_->num_server_types();
  WFMS_RETURN_NOT_OK(constraints.Validate(k));
  SearchResult result;

  // Feasibility bound: if the most generous configuration fails, nothing
  // in the box can succeed (goals are monotone in replication).
  Configuration max_config;
  max_config.replicas.resize(k);
  for (size_t x = 0; x < k; ++x) max_config.replicas[x] = constraints.MaxFor(x);
  WFMS_ASSIGN_OR_RETURN(Assessment max_assessment,
                        Assess(max_config, goals, cost));
  ++result.evaluations;
  if (!max_assessment.Satisfies()) {
    result.config = max_config;
    result.cost = max_assessment.cost;
    result.satisfied = false;
    result.assessment = std::move(max_assessment);
    return result;
  }

  // Best-first search in cost order over the lattice of configurations.
  // Each node expands by adding one replica to one type; because the cost
  // model is additive with positive per-server costs, nodes are dequeued
  // in nondecreasing cost, so the first satisfying node is optimal.
  struct Node {
    double cost;
    std::vector<int> replicas;
    bool operator>(const Node& other) const { return cost > other.cost; }
  };
  std::priority_queue<Node, std::vector<Node>, std::greater<Node>> frontier;
  std::set<std::vector<int>> visited;
  const Configuration minimal = MinimalConfig(constraints, k);
  frontier.push({cost.Cost(minimal.replicas), minimal.replicas});
  visited.insert(minimal.replicas);

  while (!frontier.empty()) {
    const Node node = frontier.top();
    frontier.pop();
    Configuration candidate(node.replicas);
    WFMS_ASSIGN_OR_RETURN(Assessment assessment,
                          Assess(candidate, goals, cost));
    ++result.evaluations;
    if (assessment.Satisfies()) {
      result.config = std::move(candidate);
      result.cost = assessment.cost;
      result.satisfied = true;
      result.assessment = std::move(assessment);
      return result;
    }
    for (size_t x = 0; x < k; ++x) {
      if (node.replicas[x] >= constraints.MaxFor(x)) continue;
      std::vector<int> next = node.replicas;
      ++next[x];
      if (visited.insert(next).second) {
        frontier.push({cost.Cost(next), std::move(next)});
      }
    }
  }
  return Status::Internal(
      "branch-and-bound exhausted the lattice despite a feasible maximum");
}

std::string ConfigurationTool::RenderRecommendation(
    const SearchResult& result) const {
  std::ostringstream os;
  os << (result.satisfied ? "Recommended configuration "
                          : "No satisfying configuration found; best "
                            "candidate ")
     << result.config.ToString() << " (cost " << result.cost << ", "
     << result.evaluations << " evaluations)\n";
  for (size_t x = 0; x < env_->num_server_types(); ++x) {
    os << "  " << env_->servers.type(x).name << ": " << result.config.replicas[x]
       << " server(s), W = ";
    const double w = result.assessment.performability.expected_waiting[x];
    if (std::isinf(w)) {
      os << "saturated";
    } else {
      os << FormatMinutes(w);
    }
    os << "\n";
  }
  os << "  availability: "
     << result.assessment.performability.availability << " (downtime "
     << FormatMinutes(UnavailabilityToDowntimeMinutesPerYear(
            1.0 - result.assessment.performability.availability))
     << "/year)\n";
  return os.str();
}

}  // namespace wfms::configtool

#include "markov/first_passage_moments.h"

#include <cmath>
#include <vector>

#include "linalg/dense_matrix.h"
#include "linalg/lu_solver.h"
#include "markov/first_passage.h"

namespace wfms::markov {

using linalg::DenseMatrix;
using linalg::Vector;

double TurnaroundMoments::stddev() const {
  return std::sqrt(std::max(0.0, variance()));
}

double TurnaroundMoments::scv() const {
  return mean > 0.0 ? variance() / (mean * mean) : 0.0;
}

double TurnaroundMoments::TailBound(double t) const {
  if (t <= mean) return 1.0;
  const double deviation = t - mean;
  return std::min(1.0, variance() / (deviation * deviation));
}

Result<FirstPassageMomentVectors> FirstPassageMoments(
    const AbsorbingCtmc& chain) {
  const size_t n = chain.num_states();
  const size_t a = chain.absorbing_state();
  WFMS_ASSIGN_OR_RETURN(Vector mean, MeanFirstPassageTimes(chain));

  // Compact transient states and solve (I - P_T) s = c.
  std::vector<size_t> transient;
  std::vector<size_t> compact(n, SIZE_MAX);
  for (size_t i = 0; i < n; ++i) {
    if (i == a) continue;
    compact[i] = transient.size();
    transient.push_back(i);
  }
  const size_t m = transient.size();
  DenseMatrix system(m, m);
  Vector rhs(m, 0.0);
  for (size_t row = 0; row < m; ++row) {
    const size_t i = transient[row];
    const double vi = chain.DepartureRate(i);
    double mean_next = 0.0;  // sum_j p_ij m_j over all j (m_A = 0)
    for (size_t j = 0; j < n; ++j) {
      const double pij = chain.transition_probabilities().At(i, j);
      if (pij == 0.0) continue;
      mean_next += pij * mean[j];
      if (j != a) system.At(row, compact[j]) -= pij;
    }
    system.At(row, row) += 1.0;
    rhs[row] = 2.0 / (vi * vi) + (2.0 / vi) * mean_next;
  }
  auto solved = linalg::LuSolve(system, rhs);
  if (!solved.ok()) {
    return solved.status().WithContext("first-passage second moments");
  }

  FirstPassageMomentVectors result;
  result.mean = std::move(mean);
  result.second_moment.assign(n, 0.0);
  for (size_t row = 0; row < m; ++row) {
    if ((*solved)[row] < 0.0) {
      return Status::NumericError("negative second moment; ill-conditioned");
    }
    result.second_moment[transient[row]] = (*solved)[row];
  }
  return result;
}

Result<TurnaroundMoments> TurnaroundTimeMoments(const AbsorbingCtmc& chain) {
  WFMS_ASSIGN_OR_RETURN(FirstPassageMomentVectors vectors,
                        FirstPassageMoments(chain));
  TurnaroundMoments moments;
  moments.mean = vectors.mean[chain.initial_state()];
  moments.second_moment = vectors.second_moment[chain.initial_state()];
  return moments;
}

}  // namespace wfms::markov

// Task-graph core of the corpus engine (DESIGN.md §14): a validated
// directed acyclic graph of workflow tasks with per-task runtime moments
// and data volumes. TaskDags come from two producers — the WfCommons-style
// importer (importer.h) and the parameterized generator (generator.h) —
// and feed one consumer, the environment compiler (compile.h), which turns
// them into the statechart/server-type/load-matrix model the assessment
// stack understands.
#ifndef WFMS_CORPUS_DAG_H_
#define WFMS_CORPUS_DAG_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"

namespace wfms::corpus {

/// One workflow task. Parents are indices into TaskDag::tasks — producers
/// resolve names to indices up front so the compiler never touches string
/// lookups on the hot path.
struct Task {
  std::string name;
  /// Mean runtime in model time units (minutes). The importer converts
  /// from WfCommons' runtimeInSeconds.
  double runtime = 0.0;
  /// Squared coefficient of variation of the runtime across executions
  /// (1 = exponential, the CTMC default).
  double runtime_scv = 1.0;
  /// Total bytes of files this task reads and writes; drives the
  /// communication-server request count in the compiled load matrix.
  double data_bytes = 0.0;
  std::vector<size_t> parents;
};

/// A named task DAG. Invariants are established by Validate(), which every
/// producer calls before handing the DAG to the compiler.
struct TaskDag {
  std::string name;
  std::vector<Task> tasks;

  /// Structural validation with task-named errors:
  ///  - task names non-empty, unique, made of [A-Za-z0-9_] (they become
  ///    statechart state and activity identifiers), and none of the
  ///    reserved control-state names ("init", "done", "exit");
  ///  - runtimes finite and > 0; runtime SCVs finite and >= 0; data bytes
  ///    finite and >= 0;
  ///  - parent indices in range, no self-loops, no duplicate edges;
  ///  - the graph is acyclic (a violation names a task on the cycle).
  Status Validate() const;

  /// Longest-path level of every task (roots are level 0). Requires an
  /// acyclic graph; a cycle fails with a task-named ParseError.
  Result<std::vector<size_t>> Levels() const;

  /// Number of levels on the longest root-to-leaf path (0 for an empty
  /// DAG).
  Result<size_t> Depth() const;

  /// Largest in- or out-degree over all tasks.
  size_t MaxFanOut() const;

  /// children[i] = indices of the tasks listing i as a parent, in task
  /// order.
  std::vector<std::vector<size_t>> Children() const;
};

}  // namespace wfms::corpus

#endif  // WFMS_CORPUS_DAG_H_

# Empty dependencies file for property_markov_test.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/markov/absorbing_ctmc.cc" "src/markov/CMakeFiles/wfms_markov.dir/absorbing_ctmc.cc.o" "gcc" "src/markov/CMakeFiles/wfms_markov.dir/absorbing_ctmc.cc.o.d"
  "/root/repo/src/markov/birth_death.cc" "src/markov/CMakeFiles/wfms_markov.dir/birth_death.cc.o" "gcc" "src/markov/CMakeFiles/wfms_markov.dir/birth_death.cc.o.d"
  "/root/repo/src/markov/ctmc.cc" "src/markov/CMakeFiles/wfms_markov.dir/ctmc.cc.o" "gcc" "src/markov/CMakeFiles/wfms_markov.dir/ctmc.cc.o.d"
  "/root/repo/src/markov/ctmc_transient.cc" "src/markov/CMakeFiles/wfms_markov.dir/ctmc_transient.cc.o" "gcc" "src/markov/CMakeFiles/wfms_markov.dir/ctmc_transient.cc.o.d"
  "/root/repo/src/markov/dtmc.cc" "src/markov/CMakeFiles/wfms_markov.dir/dtmc.cc.o" "gcc" "src/markov/CMakeFiles/wfms_markov.dir/dtmc.cc.o.d"
  "/root/repo/src/markov/first_passage.cc" "src/markov/CMakeFiles/wfms_markov.dir/first_passage.cc.o" "gcc" "src/markov/CMakeFiles/wfms_markov.dir/first_passage.cc.o.d"
  "/root/repo/src/markov/first_passage_moments.cc" "src/markov/CMakeFiles/wfms_markov.dir/first_passage_moments.cc.o" "gcc" "src/markov/CMakeFiles/wfms_markov.dir/first_passage_moments.cc.o.d"
  "/root/repo/src/markov/phase_type.cc" "src/markov/CMakeFiles/wfms_markov.dir/phase_type.cc.o" "gcc" "src/markov/CMakeFiles/wfms_markov.dir/phase_type.cc.o.d"
  "/root/repo/src/markov/state_space.cc" "src/markov/CMakeFiles/wfms_markov.dir/state_space.cc.o" "gcc" "src/markov/CMakeFiles/wfms_markov.dir/state_space.cc.o.d"
  "/root/repo/src/markov/steady_state.cc" "src/markov/CMakeFiles/wfms_markov.dir/steady_state.cc.o" "gcc" "src/markov/CMakeFiles/wfms_markov.dir/steady_state.cc.o.d"
  "/root/repo/src/markov/transient.cc" "src/markov/CMakeFiles/wfms_markov.dir/transient.cc.o" "gcc" "src/markov/CMakeFiles/wfms_markov.dir/transient.cc.o.d"
  "/root/repo/src/markov/transient_distribution.cc" "src/markov/CMakeFiles/wfms_markov.dir/transient_distribution.cc.o" "gcc" "src/markov/CMakeFiles/wfms_markov.dir/transient_distribution.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/wfms_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wfms_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

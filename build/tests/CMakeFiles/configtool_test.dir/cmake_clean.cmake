file(REMOVE_RECURSE
  "CMakeFiles/configtool_test.dir/configtool_test.cc.o"
  "CMakeFiles/configtool_test.dir/configtool_test.cc.o.d"
  "configtool_test"
  "configtool_test.pdb"
  "configtool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/configtool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// The central notion of §2: a system configuration is the vector of
// replication degrees (Y_1, ..., Y_k), one per server type.
#ifndef WFMS_WORKFLOW_CONFIGURATION_H_
#define WFMS_WORKFLOW_CONFIGURATION_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace wfms::workflow {

struct Configuration {
  /// replicas[x] = Y_x, the number of servers of server type x.
  std::vector<int> replicas;
  /// Optional per-site placement for geo-distributed environments
  /// (DESIGN.md §12), type-major: site_counts[x * s + a] = number of
  /// replicas of server type x placed at site a. Empty for the classic
  /// single-site model. When present, each type's row must sum to
  /// replicas[x].
  std::vector<int> site_counts;

  Configuration() = default;
  explicit Configuration(std::vector<int> y) : replicas(std::move(y)) {}
  /// Builds a site-placed configuration from the type-major placement;
  /// replicas[x] is derived as the row sum.
  static Configuration FromSiteCounts(std::vector<int> counts,
                                      size_t num_sites);
  /// The minimal configuration: one server of each of `num_types` types.
  static Configuration Ones(size_t num_types) {
    return Configuration(std::vector<int>(num_types, 1));
  }
  /// Uniform replication of every server type.
  static Configuration Uniform(size_t num_types, int degree) {
    return Configuration(std::vector<int>(num_types, degree));
  }

  size_t num_types() const { return replicas.size(); }
  int total_servers() const {
    int total = 0;
    for (int y : replicas) total += y;
    return total;
  }

  bool has_sites() const { return !site_counts.empty(); }
  size_t num_sites() const {
    return replicas.empty() ? 0 : site_counts.size() / replicas.size();
  }
  /// Replicas of type x at site a (requires has_sites()).
  int SiteCount(size_t x, size_t a) const {
    return site_counts[x * num_sites() + a];
  }

  /// All Y_x >= 1 and the type count matches.
  Status Validate(size_t num_types) const;
  /// Additionally: placement shape is num_types x num_sites, entries are
  /// >= 0, and each type's row sums to replicas[x].
  Status ValidateSites(size_t num_types, size_t num_sites) const;

  /// Memoization-cache key: the replica vector for single-site configs;
  /// site-placed configs append a -1 sentinel (impossible in a valid
  /// replica vector) followed by the placement so the two spaces never
  /// collide in the shared cache.
  std::vector<int> CacheKey() const;

  /// "(2,1,3)"; site-placed configs show per-site splits: "(1/1,1/0,2/1)".
  std::string ToString() const;

  bool operator==(const Configuration& other) const {
    return replicas == other.replicas && site_counts == other.site_counts;
  }
  bool operator<(const Configuration& other) const {
    if (replicas != other.replicas) return replicas < other.replicas;
    return site_counts < other.site_counts;
  }
};

}  // namespace wfms::workflow

#endif  // WFMS_WORKFLOW_CONFIGURATION_H_

file(REMOVE_RECURSE
  "libwfms_sim.a"
)

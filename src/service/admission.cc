#include "service/admission.h"

#include "common/metrics.h"

namespace wfms::service {

namespace {

metrics::Counter& ShedTotal() {
  static metrics::Counter& counter = metrics::MetricsRegistry::Global()
      .GetCounter("wfms_service_shed_total");
  return counter;
}

metrics::Counter& TenantThrottledTotal() {
  static metrics::Counter& counter = metrics::MetricsRegistry::Global()
      .GetCounter("wfms_service_tenant_throttled_total");
  return counter;
}

metrics::Gauge& DegradeLevelGauge() {
  static metrics::Gauge& gauge = metrics::MetricsRegistry::Global()
      .GetGauge("wfms_service_degrade_level");
  return gauge;
}

}  // namespace

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options) {}

AdmissionDecision AdmissionController::Admit(
    const std::string& tenant, size_t queue_depth,
    std::chrono::steady_clock::time_point now) {
  AdmissionDecision decision;

  // Tenant quota first: an over-quota tenant is shed even on an idle
  // server, so the quota is meaningful protection for the other tenants.
  if (options_.tenant_rate > 0.0) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = buckets_.find(tenant);
    if (it == buckets_.end()) {
      it = buckets_
               .emplace(tenant, TokenBucket(options_.tenant_rate,
                                            options_.tenant_burst, now))
               .first;
    }
    if (!it->second.TryAcquire(now)) {
      TenantThrottledTotal().Increment();
      ShedTotal().Increment();
      decision.admitted = false;
      decision.reason = "tenant '" + tenant + "' over quota (" +
                        std::to_string(options_.tenant_rate) + " req/s, burst " +
                        std::to_string(options_.tenant_burst) + ")";
      return decision;
    }
  }

  if (options_.max_queue == 0) return decision;  // ladder disabled (tests)

  const double load = static_cast<double>(queue_depth) /
                      static_cast<double>(options_.max_queue);
  if (queue_depth >= options_.max_queue) {
    // The worker queue is full; the ThreadPool bound would reject the
    // Submit anyway — shed here with the explicit admission reason.
    ShedTotal().Increment();
    decision.admitted = false;
    decision.reason = "worker queue full (" + std::to_string(queue_depth) +
                      " of " + std::to_string(options_.max_queue) +
                      " slots)";
    DegradeLevelGauge().Set(2.0);
    return decision;
  }
  if (load >= options_.level2_fraction) {
    decision.degrade_level = 2;
    decision.reason = "queue load " + std::to_string(load) +
                      " >= " + std::to_string(options_.level2_fraction) +
                      ": cache-only";
  } else if (load >= options_.level1_fraction) {
    decision.degrade_level = 1;
    decision.reason = "queue load " + std::to_string(load) +
                      " >= " + std::to_string(options_.level1_fraction) +
                      ": downgraded strategy and tightened budget";
  }
  DegradeLevelGauge().Set(static_cast<double>(decision.degrade_level));
  return decision;
}

}  // namespace wfms::service

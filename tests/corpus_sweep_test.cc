#include "corpus/sweep.h"

#include <gtest/gtest.h>

#include <string>

namespace wfms::corpus {
namespace {

constexpr uint64_t kSeedMask = (1ull << 53) - 1;

TEST(CorpusSweepTest, GenerateManifestShape) {
  const Manifest m = GenerateManifest(10, 42, 256);
  ASSERT_EQ(m.entries.size(), 10u);
  EXPECT_EQ(m.seed, 42u);
  EXPECT_EQ(m.entries.front().id, "env-0000");
  EXPECT_EQ(m.entries.back().id, "env-0009");
  EXPECT_EQ(m.entries.front().recipe.num_tasks, 8u);
  // The ramp ends exactly at max_tasks so a sweep always contains its
  // largest advertised environment.
  EXPECT_EQ(m.entries.back().recipe.num_tasks, 256u);
  for (const ManifestEntry& e : m.entries) {
    EXPECT_FALSE(e.is_import());
    EXPECT_TRUE(e.recipe.Validate().ok());
    // Seeds fit in 53 bits so the JSON double round-trip is lossless.
    EXPECT_EQ(e.recipe.seed & ~kSeedMask, 0u);
  }
}

TEST(CorpusSweepTest, GenerateManifestIsDeterministic) {
  EXPECT_EQ(ManifestToJson(GenerateManifest(12, 7, 128)),
            ManifestToJson(GenerateManifest(12, 7, 128)));
}

TEST(CorpusSweepTest, ManifestJsonRoundTrips) {
  const Manifest m = GenerateManifest(8, 9, 64);
  const std::string text = ManifestToJson(m);
  const auto back = ManifestFromJson(text);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(ManifestToJson(*back), text);
}

TEST(CorpusSweepTest, ManifestFromJsonRejectsGarbage) {
  EXPECT_FALSE(ManifestFromJson("not json").ok());
  EXPECT_FALSE(ManifestFromJson("{}").ok());
  EXPECT_FALSE(ManifestFromJson(R"({"environments": []})").ok());
}

TEST(CorpusSweepTest, RejectsEmptyManifest) {
  const Manifest empty;
  SweepOptions options;
  EXPECT_FALSE(RunSweep(empty, options).ok());
}

// The determinism contract: the serialized report (timings stripped) is
// byte-identical whatever the sweep-level thread count.
TEST(CorpusSweepTest, ReportIsByteIdenticalAcrossThreadCounts) {
  const Manifest m = GenerateManifest(6, 123, 48);
  SweepOptions options;
  options.include_timings = false;

  options.num_threads = 1;
  const auto serial = RunSweep(m, options);
  ASSERT_TRUE(serial.ok()) << serial.status();

  options.num_threads = 4;
  const auto parallel = RunSweep(m, options);
  ASSERT_TRUE(parallel.ok()) << parallel.status();

  EXPECT_EQ(ReportToJson(*serial, false).Dump(),
            ReportToJson(*parallel, false).Dump());
}

TEST(CorpusSweepTest, AssessModeEvaluatesEveryEnvironment) {
  const Manifest m = GenerateManifest(5, 11, 32);
  SweepOptions options;
  options.num_threads = 2;
  const auto report = RunSweep(m, options);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->results.size(), 5u);
  EXPECT_EQ(report->error_count, 0u);
  for (const EnvironmentResult& r : report->results) {
    EXPECT_TRUE(r.error.empty()) << r.id << ": " << r.error;
    EXPECT_GT(r.tasks, 0u) << r.id;
    EXPECT_GT(r.chart_states, 0u) << r.id;
    EXPECT_GT(r.server_types, 0u) << r.id;
    EXPECT_GT(r.availability, 0.0) << r.id;
    EXPECT_EQ(r.evaluations, 0) << r.id;  // assess mode never searches
  }
}

TEST(CorpusSweepTest, RecommendModeSatisfiesReachableGoals) {
  const Manifest m = GenerateManifest(4, 17, 32);
  SweepOptions options;
  options.mode = SweepMode::kRecommend;
  options.goals.max_waiting_time = 5.0;
  options.goals.min_availability = 0.99;
  options.max_replicas = 6;
  const auto report = RunSweep(m, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->error_count, 0u);
  EXPECT_EQ(report->satisfied_count, 4u);
  for (const EnvironmentResult& r : report->results) {
    EXPECT_TRUE(r.satisfied) << r.id;
    EXPECT_GT(r.evaluations, 0) << r.id;
    EXPECT_LE(r.max_expected_waiting, 5.0) << r.id;
    EXPECT_GE(r.availability, 0.99) << r.id;
  }
}

TEST(CorpusSweepTest, ImportEntriesSweepAlongsideRecipes) {
  Manifest m = GenerateManifest(2, 5, 16);
  ManifestEntry import_entry;
  import_entry.id = "env-import";
  import_entry.wfcommons_path =
      std::string(WFMS_TEST_DATA_DIR) + "/wfcommons_mixed.json";
  m.entries.push_back(import_entry);

  SweepOptions options;
  options.include_timings = false;
  const auto report = RunSweep(m, options);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->results.size(), 3u);
  const EnvironmentResult& imported = report->results.back();
  EXPECT_TRUE(imported.error.empty()) << imported.error;
  EXPECT_EQ(imported.pattern, "imported");
  EXPECT_EQ(imported.workflow, "seismic-mixed");
  EXPECT_EQ(imported.tasks, 8u);
}

TEST(CorpusSweepTest, MissingImportFileFailsOnlyThatEntry) {
  Manifest m = GenerateManifest(1, 5, 16);
  ManifestEntry bad;
  bad.id = "env-missing";
  bad.wfcommons_path = "/nonexistent/workflow.json";
  m.entries.push_back(bad);

  SweepOptions options;
  const auto report = RunSweep(m, options);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->results.size(), 2u);
  EXPECT_TRUE(report->results[0].error.empty());
  EXPECT_FALSE(report->results[1].error.empty());
  EXPECT_EQ(report->error_count, 1u);
}

}  // namespace
}  // namespace wfms::corpus

#include "markov/dtmc.h"

#include <gtest/gtest.h>

namespace wfms::markov {
namespace {

using linalg::DenseMatrix;
using linalg::Vector;

Dtmc MakeGamblersRuin() {
  // States 0..3; 0 and 3 absorbing; fair coin between them.
  DenseMatrix p{{1, 0, 0, 0},
                {0.5, 0, 0.5, 0},
                {0, 0.5, 0, 0.5},
                {0, 0, 0, 1}};
  auto dtmc = Dtmc::Create(std::move(p), {"ruin", "one", "two", "win"});
  EXPECT_TRUE(dtmc.ok());
  return *std::move(dtmc);
}

TEST(DtmcTest, CreateRejectsNonSquare) {
  EXPECT_FALSE(Dtmc::Create(DenseMatrix(2, 3), {"a", "b"}).ok());
}

TEST(DtmcTest, CreateRejectsNameMismatch) {
  EXPECT_FALSE(Dtmc::Create(DenseMatrix::Identity(2), {"a"}).ok());
}

TEST(DtmcTest, CreateRejectsBadRowSum) {
  DenseMatrix p{{0.5, 0.4}, {0, 1}};
  EXPECT_FALSE(Dtmc::Create(std::move(p), {"a", "b"}).ok());
}

TEST(DtmcTest, CreateRejectsNegativeProbability) {
  DenseMatrix p{{1.5, -0.5}, {0, 1}};
  EXPECT_FALSE(Dtmc::Create(std::move(p), {"a", "b"}).ok());
}

TEST(DtmcTest, CreateRenormalizesWithinTolerance) {
  DenseMatrix p{{0.3 + 1e-12, 0.7}, {0, 1}};
  auto dtmc = Dtmc::Create(std::move(p), {"a", "b"});
  ASSERT_TRUE(dtmc.ok());
  double row = dtmc->transition_matrix().At(0, 0) +
               dtmc->transition_matrix().At(0, 1);
  EXPECT_DOUBLE_EQ(row, 1.0);
}

TEST(DtmcTest, StateLookup) {
  const Dtmc chain = MakeGamblersRuin();
  auto idx = chain.StateIndex("two");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 2u);
  EXPECT_FALSE(chain.StateIndex("nope").ok());
  EXPECT_EQ(chain.state_name(3), "win");
}

TEST(DtmcTest, AbsorbingDetection) {
  const Dtmc chain = MakeGamblersRuin();
  EXPECT_TRUE(chain.IsAbsorbing(0));
  EXPECT_FALSE(chain.IsAbsorbing(1));
  EXPECT_TRUE(chain.IsAbsorbing(3));
  const auto abs = chain.AbsorbingStates();
  ASSERT_EQ(abs.size(), 2u);
  EXPECT_EQ(abs[0], 0u);
  EXPECT_EQ(abs[1], 3u);
}

TEST(DtmcTest, GamblersRuinAbsorptionProbabilities) {
  const Dtmc chain = MakeGamblersRuin();
  auto probs = chain.AbsorptionProbabilities(1);
  ASSERT_TRUE(probs.ok());
  // From state i of N=3, P(win) = i/3.
  EXPECT_NEAR((*probs)[3], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR((*probs)[0], 2.0 / 3.0, 1e-12);
  auto probs2 = chain.AbsorptionProbabilities(2);
  ASSERT_TRUE(probs2.ok());
  EXPECT_NEAR((*probs2)[3], 2.0 / 3.0, 1e-12);
}

TEST(DtmcTest, AbsorptionFromAbsorbingState) {
  const Dtmc chain = MakeGamblersRuin();
  auto probs = chain.AbsorptionProbabilities(3);
  ASSERT_TRUE(probs.ok());
  EXPECT_DOUBLE_EQ((*probs)[3], 1.0);
  EXPECT_DOUBLE_EQ((*probs)[0], 0.0);
}

TEST(DtmcTest, GamblersRuinExpectedVisits) {
  const Dtmc chain = MakeGamblersRuin();
  auto visits = chain.ExpectedVisitsUntilAbsorption(1);
  ASSERT_TRUE(visits.ok());
  // Fundamental matrix for the fair ruin on {1,2}:
  // N = (I - [[0, .5], [.5, 0]])^-1 = [[4/3, 2/3], [2/3, 4/3]].
  EXPECT_NEAR((*visits)[1], 4.0 / 3.0, 1e-12);
  EXPECT_NEAR((*visits)[2], 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ((*visits)[0], 0.0);
  EXPECT_DOUBLE_EQ((*visits)[3], 0.0);
}

TEST(DtmcTest, VisitsFromAbsorbingStateAreZero) {
  const Dtmc chain = MakeGamblersRuin();
  auto visits = chain.ExpectedVisitsUntilAbsorption(0);
  ASSERT_TRUE(visits.ok());
  for (double v : *visits) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(DtmcTest, GeometricLoopVisits) {
  // s0 -> s1 (p=1); s1 -> s0 with prob 0.25, -> absorbing with 0.75.
  DenseMatrix p{{0, 1, 0}, {0.25, 0, 0.75}, {0, 0, 1}};
  auto chain = Dtmc::Create(std::move(p), {"a", "b", "done"});
  ASSERT_TRUE(chain.ok());
  auto visits = chain->ExpectedVisitsUntilAbsorption(0);
  ASSERT_TRUE(visits.ok());
  // Expected number of loop traversals: 1/(1 - 0.25) = 4/3 visits to each.
  EXPECT_NEAR((*visits)[0], 4.0 / 3.0, 1e-12);
  EXPECT_NEAR((*visits)[1], 4.0 / 3.0, 1e-12);
}

TEST(DtmcTest, NoAbsorptionPathIsError) {
  // Two states cycling forever: no absorbing state at all.
  DenseMatrix p{{0, 1}, {1, 0}};
  auto chain = Dtmc::Create(std::move(p), {"a", "b"});
  ASSERT_TRUE(chain.ok());
  EXPECT_FALSE(chain->ExpectedVisitsUntilAbsorption(0).ok());
}

TEST(DtmcTest, DistributionAfterSteps) {
  DenseMatrix p{{0, 1}, {1, 0}};
  auto chain = Dtmc::Create(std::move(p), {"a", "b"});
  ASSERT_TRUE(chain.ok());
  Vector d1 = chain->DistributionAfter(0, 1);
  EXPECT_DOUBLE_EQ(d1[0], 0.0);
  EXPECT_DOUBLE_EQ(d1[1], 1.0);
  Vector d2 = chain->DistributionAfter(0, 2);
  EXPECT_DOUBLE_EQ(d2[0], 1.0);
  Vector d0 = chain->DistributionAfter(0, 0);
  EXPECT_DOUBLE_EQ(d0[0], 1.0);
}

TEST(DtmcTest, OutOfRangeStart) {
  const Dtmc chain = MakeGamblersRuin();
  EXPECT_FALSE(chain.ExpectedVisitsUntilAbsorption(99).ok());
  EXPECT_FALSE(chain.AbsorptionProbabilities(99).ok());
}

}  // namespace
}  // namespace wfms::markov

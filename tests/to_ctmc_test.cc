#include "statechart/to_ctmc.h"

#include <gtest/gtest.h>

#include <cmath>

#include "markov/first_passage.h"
#include "markov/transient.h"
#include "statechart/builder.h"
#include "statechart/parser.h"
#include "tests/test_charts.h"

namespace wfms::statechart {
namespace {

using wfms::testing::kDeliveryTurnaround;
using wfms::testing::kEpChartsDsl;
using wfms::testing::kNotifyTurnaround;

ChartRegistry ParseEp() {
  auto registry = ParseCharts(kEpChartsDsl);
  EXPECT_TRUE(registry.ok()) << registry.status();
  return *std::move(registry);
}

TEST(ToCtmcTest, EpChainHasPaperStructure) {
  const ChartRegistry registry = ParseEp();
  auto mapped = MapChartToCtmc(registry, "EP");
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  // Paper Fig. 4: seven states plus the absorbing state s_A.
  EXPECT_EQ(mapped->chain.num_states(), 8u);
  EXPECT_EQ(mapped->states.size(), 7u);
  EXPECT_EQ(mapped->chain.state_name(7), "s_A");
  EXPECT_EQ(mapped->chain.absorbing_state(), 7u);
  EXPECT_EQ(mapped->chain.state_name(mapped->chain.initial_state()),
            "NewOrder");
}

TEST(ToCtmcTest, DeliverySubchartTurnaround) {
  // Delivery: Pick(30) -> Pack(20) with a 10% rework loop -> Ship(2880).
  // Visits(Pick) = Visits(Pack) = 1/0.9; R = 50/0.9 + 2880.
  const ChartRegistry registry = ParseEp();
  auto mapped = MapChartToCtmc(registry, "Delivery");
  ASSERT_TRUE(mapped.ok());
  EXPECT_NEAR(mapped->turnaround_time, kDeliveryTurnaround, 1e-6);
}

TEST(ToCtmcTest, CompositeResidenceIsMaxOfSubcharts) {
  const ChartRegistry registry = ParseEp();
  auto mapped = MapChartToCtmc(registry, "EP");
  ASSERT_TRUE(mapped.ok());
  const auto& states = mapped->states;
  const auto shipment =
      std::find_if(states.begin(), states.end(),
                   [](const MappedState& s) { return s.name == "Shipment"; });
  ASSERT_NE(shipment, states.end());
  EXPECT_NEAR(shipment->residence_time,
              std::max(kDeliveryTurnaround, kNotifyTurnaround), 1e-6);
  // Both subcharts recorded with their turnarounds.
  ASSERT_EQ(mapped->subchart_turnarounds.count("Notify"), 1u);
  ASSERT_EQ(mapped->subchart_turnarounds.count("Delivery"), 1u);
  EXPECT_NEAR(mapped->subchart_turnarounds.at("Notify"), kNotifyTurnaround,
              1e-9);
  EXPECT_NEAR(mapped->subchart_turnarounds.at("Delivery"),
              kDeliveryTurnaround, 1e-6);
}

TEST(ToCtmcTest, EpTurnaroundMatchesHandComputation) {
  // Visit counts: NewOrder 1, CCCheck .5, Shipment .5 + .45 = .95,
  // ChargeCC .475, SendInvoice = CollectPayment = .475 * 1/(1-0.2)
  // = 0.59375, EPExit 1.
  const ChartRegistry registry = ParseEp();
  auto mapped = MapChartToCtmc(registry, "EP");
  ASSERT_TRUE(mapped.ok());
  const double shipment_h = std::max(kDeliveryTurnaround, kNotifyTurnaround);
  const double expected = 1.0 * 5.0 + 0.5 * 1.0 + 0.95 * shipment_h +
                          0.475 * 1.0 + 0.59375 * (2.0 + 1440.0) + 1.0 * 0.5;
  EXPECT_NEAR(mapped->turnaround_time, expected, 1e-6);
}

TEST(ToCtmcTest, EpVisitCountsMatchHandComputation) {
  const ChartRegistry registry = ParseEp();
  auto mapped = MapChartToCtmc(registry, "EP");
  ASSERT_TRUE(mapped.ok());
  auto visits = markov::ExpectedStateVisits(mapped->chain);
  ASSERT_TRUE(visits.ok());
  const auto idx = [&](const char* name) {
    return *mapped->chain.StateIndex(name);
  };
  EXPECT_NEAR((*visits)[idx("NewOrder")], 1.0, 1e-9);
  EXPECT_NEAR((*visits)[idx("CreditCardCheck")], 0.5, 1e-9);
  EXPECT_NEAR((*visits)[idx("Shipment")], 0.95, 1e-9);
  EXPECT_NEAR((*visits)[idx("ChargeCreditCard")], 0.475, 1e-9);
  EXPECT_NEAR((*visits)[idx("SendInvoice")], 0.59375, 1e-9);
  EXPECT_NEAR((*visits)[idx("CollectPayment")], 0.59375, 1e-9);
  EXPECT_NEAR((*visits)[idx("EPExit")], 1.0, 1e-9);
}

TEST(ToCtmcTest, StandaloneChartMapping) {
  auto chart = ChartBuilder("Solo")
                   .AddActivityState("Work", "work", 10.0)
                   .AddSimpleState("Done", 1.0)
                   .SetInitial("Work")
                   .SetFinal("Done")
                   .AddTransition("Work", "Done", 1.0)
                   .Build();
  ASSERT_TRUE(chart.ok());
  auto mapped = MapChartToCtmc(*chart);
  ASSERT_TRUE(mapped.ok());
  EXPECT_NEAR(mapped->turnaround_time, 11.0, 1e-9);
}

TEST(ToCtmcTest, StandaloneRejectsComposite) {
  const ChartRegistry registry = ParseEp();
  const StateChart& ep = **registry.GetChart("EP");
  EXPECT_FALSE(MapChartToCtmc(ep).ok());
}

TEST(ToCtmcTest, ZeroResidenceClampedToMinimum) {
  auto chart = ChartBuilder("Z")
                   .AddSimpleState("Instant", 0.0)
                   .AddSimpleState("Done", 1.0)
                   .SetInitial("Instant")
                   .SetFinal("Done")
                   .AddTransition("Instant", "Done", 1.0)
                   .Build();
  ASSERT_TRUE(chart.ok());
  MappingOptions options;
  options.min_residence_time = 1e-6;
  auto mapped = MapChartToCtmc(*chart, options);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_NEAR(mapped->turnaround_time, 1.0 + 1e-6, 1e-9);
}

TEST(ToCtmcTest, MissingChartNameFails) {
  const ChartRegistry registry = ParseEp();
  EXPECT_FALSE(MapChartToCtmc(registry, "NoSuch").ok());
}

TEST(ToCtmcTest, SharedSubchartMappedOnce) {
  // Two composite states embedding the same subchart must agree on its
  // turnaround (memoization must not corrupt results).
  auto registry = ParseCharts(R"(
chart Sub
  state W activity=w residence=7
  state D residence=1
  initial W
  final D
  trans W -> D prob=1
end
chart Top
  compound C1 subcharts=Sub
  compound C2 subcharts=Sub
  state Done residence=1
  initial C1
  final Done
  trans C1 -> C2 prob=1
  trans C2 -> Done prob=1
end
)");
  ASSERT_TRUE(registry.ok()) << registry.status();
  auto mapped = MapChartToCtmc(*registry, "Top");
  ASSERT_TRUE(mapped.ok());
  // R = 8 + 8 + 1.
  EXPECT_NEAR(mapped->turnaround_time, 17.0, 1e-6);
}

}  // namespace
}  // namespace wfms::statechart

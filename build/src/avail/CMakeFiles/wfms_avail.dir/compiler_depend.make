# Empty compiler generated dependencies file for wfms_avail.
# This may be replaced when dependencies are built.

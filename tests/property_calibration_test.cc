// Property tests for the §7.1 calibration component: audit trails are
// synthesized from *known* ground-truth parameters and the estimators
// must recover those parameters within normal-approximation confidence
// bounds, across several seeded parameter draws. Degenerate inputs
// (empty trail, a single record) must leave the designed model intact.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/random.h"
#include "statechart/parser.h"
#include "workflow/audit_trail.h"
#include "workflow/calibration.h"
#include "workflow/scenarios.h"

namespace wfms::workflow {
namespace {

statechart::StateChart MakeBranchChart() {
  auto chart = statechart::ParseSingleChart(R"(
chart Branch
  state A residence=10
  state B residence=20
  state Done residence=1
  initial A
  final Done
  trans A -> B prob=0.5
  trans A -> Done prob=0.5
  trans B -> Done prob=1
end
)");
  EXPECT_TRUE(chart.ok()) << chart.status();
  return *std::move(chart);
}

double ResidenceOf(const statechart::StateChart& chart,
                   const std::string& state) {
  return chart.state(*chart.StateIndex(state)).residence_time;
}

// Transition frequencies from Bernoulli draws with known p must land
// within the binomial confidence interval around p (plus the Laplace
// smoothing shift, which is < 1/n).
TEST(PropertyCalibrationTest, TransitionProbabilitiesWithinBinomialBounds) {
  const statechart::StateChart chart = MakeBranchChart();
  Rng rng(2024);
  const int kVisits = 2000;
  for (double p : {0.1, 0.35, 0.5, 0.8, 0.95}) {
    AuditTrail trail;
    for (int i = 0; i < kVisits; ++i) {
      const char* next = rng.NextBernoulli(p) ? "B" : "Done";
      trail.RecordStateVisit({"Branch", i, "A", 10.0 * i, 10.0 * i + 1, next});
    }
    auto calibrated = CalibrateChart(chart, trail);
    ASSERT_TRUE(calibrated.ok()) << calibrated.status();
    double estimated = 0.0;
    for (const auto* t : calibrated->OutgoingTransitions("A")) {
      if (t->to == "B") estimated = t->probability;
    }
    // 4-sigma binomial bound plus the smoothing shift: deterministic seed,
    // so a failure means estimation is wrong, not that we got unlucky.
    const double bound =
        4.0 * std::sqrt(p * (1.0 - p) / kVisits) + 1.0 / kVisits;
    EXPECT_NEAR(estimated, p, bound) << "p=" << p;
  }
}

// Mean residence times estimated from exponential samples with known mean
// must recover the mean within 4 standard errors (sigma = mean for the
// exponential).
TEST(PropertyCalibrationTest, ResidenceTimesWithinConfidenceBounds) {
  const statechart::StateChart chart = MakeBranchChart();
  Rng rng(7);
  const int kVisits = 1500;
  for (double mean : {0.5, 3.0, 12.0, 40.0}) {
    AuditTrail trail;
    double t = 0.0;
    for (int i = 0; i < kVisits; ++i) {
      const double residence = rng.NextExponential(1.0 / mean);
      trail.RecordStateVisit({"Branch", i, "A", t, t + residence, "Done"});
      t += residence + 1.0;
    }
    auto calibrated = CalibrateChart(chart, trail);
    ASSERT_TRUE(calibrated.ok()) << calibrated.status();
    const double bound = 4.0 * mean / std::sqrt(static_cast<double>(kVisits));
    EXPECT_NEAR(ResidenceOf(*calibrated, "A"), mean, bound) << "mean=" << mean;
    // Unobserved states keep the design.
    EXPECT_DOUBLE_EQ(ResidenceOf(*calibrated, "B"), 20.0);
  }
}

// Service-time first and second moments from lognormal samples with known
// moments; both must land within 4 standard errors of the truth.
TEST(PropertyCalibrationTest, ServiceMomentsWithinConfidenceBounds) {
  auto env = EpEnvironment(0.5);
  ASSERT_TRUE(env.ok());
  Rng rng(99);
  const int kSamples = 4000;
  const double mean = 0.08;
  const double scv = 1.5;  // squared coefficient of variation
  AuditTrail trail;
  for (int i = 0; i < kSamples; ++i) {
    trail.RecordService({1, rng.NextLognormalByMoments(mean, scv), i * 0.1});
  }
  auto calibrated = CalibrateEnvironment(*env, trail);
  ASSERT_TRUE(calibrated.ok()) << calibrated.status();
  const auto& service = calibrated->servers.type(1).service;
  const double variance = scv * mean * mean;
  const double mean_bound = 4.0 * std::sqrt(variance / kSamples);
  EXPECT_NEAR(service.mean, mean, mean_bound);
  // E[X^2] = mean^2 (1 + scv); its sampling error involves the fourth
  // moment — use a generous relative bound.
  const double second = mean * mean * (1.0 + scv);
  EXPECT_NEAR(service.second_moment, second, 0.25 * second);
  // Server types with no observations keep the design.
  EXPECT_DOUBLE_EQ(calibrated->servers.type(0).service.mean,
                   env->servers.type(0).service.mean);
}

// Poisson arrival streams with known rate: the estimated rate must fall
// within the 4-sigma Poisson bound sqrt(n)/T around the truth.
TEST(PropertyCalibrationTest, ArrivalRatesWithinPoissonBounds) {
  auto env = EpEnvironment(0.5);
  ASSERT_TRUE(env.ok());
  Rng rng(5);
  for (double rate : {0.2, 1.0, 4.0}) {
    AuditTrail trail;
    double t = 0.0;
    int64_t count = 0;
    while (t < 2000.0) {
      t += rng.NextExponential(rate);
      if (t >= 2000.0) break;
      trail.RecordArrival({"EP", t});
      ++count;
    }
    ASSERT_GE(count, 100);
    auto calibrated = CalibrateEnvironment(*env, trail);
    ASSERT_TRUE(calibrated.ok()) << calibrated.status();
    const double bound = 4.0 * std::sqrt(static_cast<double>(count)) / 2000.0;
    EXPECT_NEAR(calibrated->workflows[0].arrival_rate, rate, bound)
        << "rate=" << rate;
  }
}

// Edge case: an empty trail is not an error — every parameter keeps its
// designed value and the result still validates.
TEST(PropertyCalibrationTest, EmptyTrailKeepsDesignedModel) {
  auto env = EpEnvironment(0.5);
  ASSERT_TRUE(env.ok());
  AuditTrail trail;
  CalibrationReport report;
  auto calibrated = CalibrateEnvironment(*env, trail, {}, &report);
  ASSERT_TRUE(calibrated.ok()) << calibrated.status();
  EXPECT_EQ(report.states_recalibrated, 0);
  EXPECT_EQ(report.server_types_recalibrated, 0);
  EXPECT_EQ(report.workflow_types_recalibrated, 0);
  EXPECT_DOUBLE_EQ(calibrated->workflows[0].arrival_rate, 0.5);
  for (size_t i = 0; i < env->servers.size(); ++i) {
    EXPECT_DOUBLE_EQ(calibrated->servers.type(i).service.mean,
                     env->servers.type(i).service.mean);
  }
  EXPECT_TRUE(calibrated->Validate().ok());
}

// Edge case: one record of each kind sits below min_observations — the
// design survives untouched, no matter how extreme the observations.
TEST(PropertyCalibrationTest, SingleRecordBelowMinObservationsIsIgnored) {
  auto env = EpEnvironment(0.5);
  ASSERT_TRUE(env.ok());
  AuditTrail trail;
  trail.RecordStateVisit({"EP", 0, "NewOrder", 0.0, 99999.0, "Shipment"});
  trail.RecordService({1, 99999.0, 0.0});
  trail.RecordArrival({"EP", 0.001});  // would imply a huge rate
  CalibrationOptions options;
  options.min_observations = 10;
  CalibrationReport report;
  auto calibrated = CalibrateEnvironment(*env, trail, options, &report);
  ASSERT_TRUE(calibrated.ok()) << calibrated.status();
  EXPECT_EQ(report.states_recalibrated, 0);
  EXPECT_EQ(report.server_types_recalibrated, 0);
  const auto* ep = *calibrated->charts.GetChart("EP");
  EXPECT_DOUBLE_EQ(ep->state(*ep->StateIndex("NewOrder")).residence_time,
                   5.0);
  EXPECT_DOUBLE_EQ(calibrated->servers.type(1).service.mean,
                   env->servers.type(1).service.mean);
  EXPECT_TRUE(calibrated->Validate().ok());
}

}  // namespace
}  // namespace wfms::workflow

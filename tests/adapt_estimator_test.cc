// Online estimators and drift detection for the adaptive loop: decayed
// moments, windowed rates/samples, failure/repair estimation, the
// Page–Hinkley detector, and environment rebuilding from a live window.
#include "adapt/online_estimator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "adapt/drift.h"
#include "common/random.h"
#include "workflow/scenarios.h"

namespace wfms::adapt {
namespace {

using workflow::Environment;

Environment Ep(double rate = 0.5) {
  auto env = workflow::EpEnvironment(rate);
  EXPECT_TRUE(env.ok()) << env.status();
  return *std::move(env);
}

TEST(DecayedMomentsTest, ConstantSeriesRecoversValue) {
  DecayedMoments moments(100.0);
  for (int i = 0; i < 50; ++i) moments.Add(i, 4.0);
  EXPECT_NEAR(moments.mean(), 4.0, 1e-12);
  EXPECT_NEAR(moments.variance(), 0.0, 1e-9);
  EXPECT_GT(moments.effective_samples(), 10.0);
  EXPECT_LE(moments.effective_samples(), 50.0);
}

TEST(DecayedMomentsTest, RecentObservationsDominate) {
  DecayedMoments moments(50.0);
  for (int i = 0; i < 100; ++i) moments.Add(i, 1.0);
  // Regime change: same number of samples at the new level, but they are
  // recent — the decayed mean must sit well above the global mean.
  for (int i = 100; i < 200; ++i) moments.Add(i, 3.0);
  EXPECT_GT(moments.mean(), 2.5);
  EXPECT_LE(moments.mean(), 3.0);
}

TEST(DecayedMomentsTest, EffectiveSamplesDecayWithSilence) {
  DecayedMoments moments(10.0);
  for (int i = 0; i < 20; ++i) moments.Add(i, 1.0);
  const double at_last = moments.effective_samples();
  EXPECT_NEAR(moments.effective_samples(19.0 + 10.0),
              at_last * std::exp(-1.0), 1e-9);
  moments.Reset();
  EXPECT_EQ(moments.effective_samples(), 0.0);
  EXPECT_EQ(moments.mean(), 0.0);
}

TEST(DecayedMomentsTest, ConfidenceShrinksWithData) {
  DecayedMoments few(1000.0);
  DecayedMoments many(1000.0);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) few.Add(i, rng.NextDouble());
  for (int i = 0; i < 1000; ++i) many.Add(i, rng.NextDouble());
  EXPECT_GT(few.ConfidenceHalfWidth(), many.ConfidenceHalfWidth());
}

TEST(WindowedRateTest, RecoversPoissonRateWithinConfidence) {
  const double true_rate = 2.0;
  WindowedRate estimator(500.0);
  Rng rng(7);
  double t = 0.0;
  while (t < 2000.0) {
    t += rng.NextExponential(true_rate);
    estimator.AddEvent(t);
  }
  const double estimate = estimator.rate(2000.0);
  const double half_width = estimator.ConfidenceHalfWidth(2000.0, 0.99);
  EXPECT_GT(half_width, 0.0);
  EXPECT_NEAR(estimate, true_rate, 3.0 * half_width);
}

TEST(WindowedRateTest, WindowForgetsOldPhases) {
  WindowedRate estimator(100.0);
  // Dense phase long in the past, sparse recent phase.
  for (int i = 0; i < 1000; ++i) estimator.AddEvent(i * 0.1);  // rate 10
  for (int i = 0; i < 10; ++i) estimator.AddEvent(400.0 + i * 10.0);  // rate .1
  EXPECT_LT(estimator.rate(500.0), 0.5);
  // Window is (now - window, now]: the event at exactly 400 is out.
  EXPECT_EQ(estimator.count(500.0), 9);
}

TEST(WindowedRateTest, EarlyEstimateUsesElapsedTime) {
  WindowedRate estimator(1000.0);
  for (int i = 1; i <= 10; ++i) estimator.AddEvent(i);  // 10 events in 10 min
  // Dividing by the full window would deflate the rate 100x.
  EXPECT_NEAR(estimator.rate(10.0), 1.0, 1e-9);
}

TEST(WindowedSampleTest, StatsOverWindowOnly) {
  WindowedSample sample(100.0);
  for (int i = 0; i < 50; ++i) sample.Add(i, 100.0);       // forgotten
  for (int i = 0; i < 10; ++i) sample.Add(200.0 + i, 7.0);
  EXPECT_EQ(sample.count(210.0), 10);
  EXPECT_NEAR(sample.mean(210.0), 7.0, 1e-12);
  EXPECT_NEAR(sample.stddev(210.0), 0.0, 1e-12);
  EXPECT_EQ(sample.ConfidenceHalfWidth(210.0), 0.0);  // zero variance
}

TEST(FailureRepairEstimatorTest, RecoversRatesFromTransitions) {
  // One server alternating 90 minutes up, 10 minutes down:
  // lambda = 1/90, mu = 1/10.
  FailureRepairEstimator estimator;
  double t = 0.0;
  estimator.Observe({0, 1, 1, t});
  for (int cycle = 0; cycle < 50; ++cycle) {
    t += 90.0;
    estimator.Observe({0, 0, 1, t});
    t += 10.0;
    estimator.Observe({0, 1, 1, t});
  }
  auto failure = estimator.FailureRate(10);
  auto repair = estimator.RepairRate(10);
  ASSERT_TRUE(failure.ok()) << failure.status();
  ASSERT_TRUE(repair.ok()) << repair.status();
  EXPECT_NEAR(*failure, 1.0 / 90.0, 1e-9);
  EXPECT_NEAR(*repair, 1.0 / 10.0, 1e-9);
  EXPECT_EQ(estimator.failures(), 50);
  EXPECT_EQ(estimator.repairs(), 50);
}

TEST(FailureRepairEstimatorTest, ThinDataIsRefused) {
  FailureRepairEstimator estimator;
  estimator.Observe({0, 2, 2, 0.0});
  estimator.Observe({0, 1, 2, 100.0});
  EXPECT_FALSE(estimator.FailureRate(10).ok());
  EXPECT_FALSE(estimator.RepairRate(1).ok());  // no repair seen at all
}

TEST(PageHinkleyTest, NoAlarmOnStationaryNoise) {
  PageHinkleyOptions options;
  options.delta = 0.05;
  options.lambda = 1.0;
  PageHinkleyDetector detector(options);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    detector.Add(1.0 + 0.02 * (rng.NextDouble() - 0.5));
  }
  EXPECT_FALSE(detector.triggered());
  EXPECT_LT(detector.score(), 1.0);
}

TEST(PageHinkleyTest, DetectsUpwardAndDownwardShifts) {
  PageHinkleyOptions options;
  options.delta = 0.05;
  options.lambda = 0.5;
  PageHinkleyDetector up(options);
  for (int i = 0; i < 10; ++i) up.Add(1.0);
  for (int i = 0; i < 20 && !up.triggered(); ++i) up.Add(2.0);
  EXPECT_TRUE(up.triggered());
  EXPECT_GE(up.score(), 1.0);

  PageHinkleyDetector down(options);
  for (int i = 0; i < 10; ++i) down.Add(1.0);
  for (int i = 0; i < 20 && !down.triggered(); ++i) down.Add(0.4);
  EXPECT_TRUE(down.triggered());

  // The latch holds until Reset.
  up.Add(1.0);
  EXPECT_TRUE(up.triggered());
  up.Reset();
  EXPECT_FALSE(up.triggered());
  EXPECT_EQ(up.samples(), 0);
}

TEST(PageHinkleyTest, MinSamplesSuppressesEarlyAlarms) {
  PageHinkleyOptions options;
  options.delta = 0.0;
  options.lambda = 0.01;
  options.min_samples = 10;
  PageHinkleyDetector detector(options);
  for (int i = 0; i < 9; ++i) detector.Add(i % 2 ? 5.0 : 1.0);
  EXPECT_FALSE(detector.triggered());
}

TEST(DriftMonitorTest, NormalizesAgainstBaseline) {
  DriftMonitor monitor;
  monitor.name = "arrival:EP";
  monitor.baseline = 0.5;
  monitor.detector = PageHinkleyDetector({0.05, 0.5, 3});
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(monitor.Observe(0.5));
  bool triggered = false;
  for (int i = 0; i < 20 && !triggered; ++i) triggered = monitor.Observe(1.0);
  EXPECT_TRUE(triggered);
}

TEST(OnlineCalibratorTest, TracksArrivalsTurnaroundAndClock) {
  const Environment env = Ep(0.5);
  OnlineCalibratorOptions options;
  options.window = 1000.0;
  OnlineCalibrator calibrator(&env, options);

  for (int i = 0; i < 100; ++i) {
    const double t = i * 1.0;  // rate 1/min, not the designed 0.5
    calibrator.Consume(workflow::ArrivalRecord{"EP", t});
    calibrator.Consume(workflow::CompletionRecord{"EP", t, t + 30.0});
  }
  EXPECT_EQ(calibrator.events_consumed(), 200);
  EXPECT_NEAR(calibrator.now(), 129.0, 1e-9);
  const WorkflowEstimate estimate = calibrator.EstimateFor("EP");
  EXPECT_EQ(estimate.arrivals, 100);
  EXPECT_NEAR(estimate.arrival_rate, 100.0 / 129.0, 1e-9);
  EXPECT_NEAR(estimate.turnaround_mean, 30.0, 1e-9);
  EXPECT_EQ(estimate.completions, 100);
  // Unknown workflow types yield an empty estimate, not a crash.
  EXPECT_EQ(calibrator.EstimateFor("nope").arrivals, 0);
}

TEST(OnlineCalibratorTest, ObservedAvailabilityIntegratesDowntime) {
  const Environment env = Ep();
  OnlineCalibratorOptions options;
  options.window = 1000.0;
  OnlineCalibrator calibrator(&env, options);
  EXPECT_DOUBLE_EQ(calibrator.ObservedAvailability(), 1.0);

  calibrator.Consume(workflow::ServerCountRecord{0, 1, 1, 0.0});
  calibrator.Consume(workflow::ServerCountRecord{0, 0, 1, 800.0});  // down
  calibrator.Consume(workflow::ServerCountRecord{0, 1, 1, 900.0});  // back
  calibrator.Consume(workflow::ArrivalRecord{"EP", 1000.0});  // advance clock
  // 100 of the trailing 1000 minutes down.
  EXPECT_NEAR(calibrator.ObservedAvailability(), 0.9, 1e-9);
}

TEST(OnlineCalibratorTest, RebuildOverridesArrivalAndFailureRates) {
  const Environment env = Ep(0.5);
  OnlineCalibratorOptions options;
  options.window = 2000.0;
  options.min_observations = 10;
  OnlineCalibrator calibrator(&env, options);

  // Window-anchored arrivals at rate 2/min over [0, 200).
  for (int i = 0; i < 400; ++i) {
    calibrator.Consume(workflow::ArrivalRecord{"EP", i * 0.5});
  }
  // Failure/repair cycles on server type 0 over the same span: up 9.5
  // minutes, down 0.5 — keeps the clock inside the arrival burst so the
  // windowed rate stays honest.
  double t = 0.0;
  calibrator.Consume(workflow::ServerCountRecord{0, 1, 1, t});
  for (int cycle = 0; cycle < 20; ++cycle) {
    t += 9.5;
    calibrator.Consume(workflow::ServerCountRecord{0, 0, 1, t});
    t += 0.5;
    calibrator.Consume(workflow::ServerCountRecord{0, 1, 1, t});
  }
  auto rebuilt = calibrator.RebuildEnvironment();
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  EXPECT_NEAR(rebuilt->workflows[0].arrival_rate, 2.0, 0.1);
  EXPECT_NEAR(rebuilt->servers.type(0).failure_rate, 1.0 / 9.5, 1e-6);
  EXPECT_NEAR(rebuilt->servers.type(0).repair_rate, 1.0 / 0.5, 1e-6);
  // Types without observations keep their designed rates.
  EXPECT_DOUBLE_EQ(rebuilt->servers.type(1).failure_rate,
                   env.servers.type(1).failure_rate);
  EXPECT_TRUE(rebuilt->Validate().ok());
}

TEST(OnlineCalibratorTest, RebuildFromEmptyWindowKeepsDesign) {
  const Environment env = Ep(0.5);
  OnlineCalibrator calibrator(&env, {});
  auto rebuilt = calibrator.RebuildEnvironment();
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  EXPECT_DOUBLE_EQ(rebuilt->workflows[0].arrival_rate, 0.5);
  EXPECT_TRUE(rebuilt->Validate().ok());
}

TEST(OnlineCalibratorTest, ResetEstimatorsKeepsClockDropsState) {
  const Environment env = Ep();
  OnlineCalibrator calibrator(&env, {});
  for (int i = 0; i < 50; ++i) {
    calibrator.Consume(workflow::ArrivalRecord{"EP", i * 1.0});
    calibrator.Consume(workflow::ServiceRecord{0, 0.02, i * 1.0});
  }
  EXPECT_GT(calibrator.EstimateFor("EP").arrivals, 0);
  calibrator.ResetEstimators();
  EXPECT_EQ(calibrator.EstimateFor("EP").arrivals, 0);
  EXPECT_EQ(calibrator.ServiceMoments(0).effective_samples(), 0.0);
  EXPECT_NEAR(calibrator.now(), 49.0, 1e-9);
}

}  // namespace
}  // namespace wfms::adapt

// E13 — sparse-first solver engine scalability: synthetic availability
// CTMCs from 10^3 to 10^6 states (k exchangeable server types, 9 replicas
// each, so the state space is 10^k). For each size the chain is built and
// solved end-to-end through the steady-state engine, once with lumping off
// (up to --unlumped_max_states) and once with lumping auto-seeded by the
// canonical orbits of the exchangeable dimensions. Every solve is
// cross-checked against the product-form closed solution, and the peak RSS
// is recorded, so the committed trajectory pins both speed and memory.
//
// Usage: bench_large_chain [--benchmark_format=json] [--max_states=N]
//                          [--unlumped_max_states=N]
// JSON mode emits a machine-readable array on stdout (one object per
// measurement) for regression tracking; the CI perf-smoke job runs the
// sweep capped at 10^4 states and compares solve times against the
// committed BENCH_large_chain.json.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "avail/availability_model.h"
#include "markov/ctmc.h"
#include "markov/state_space.h"
#include "markov/steady_state.h"
#include "workflow/environment.h"

namespace {

using wfms::avail::AvailabilityModel;
using wfms::avail::AvailabilityOptions;

constexpr int kReplicasPerType = 9;  // (9 + 1)^k states
constexpr double kFailureRate = 0.001;
constexpr double kRepairRate = 0.1;

double MillisSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Peak resident set size of this process in MiB (VmHWM, Linux; 0 when
/// unavailable). Monotone over the process lifetime, so later rows
/// dominate earlier ones.
double PeakRssMiB() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0.0;
  char line[256];
  long kib = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %ld kB", &kib) == 1) break;
  }
  std::fclose(f);
  return static_cast<double>(kib) / 1024.0;
}

struct Measurement {
  int dims = 0;
  size_t states = 0;
  size_t nnz = 0;
  std::string lumping;
  double build_ms = 0.0;
  double solve_ms = 0.0;
  std::string method;
  int iterations = 0;
  bool lumping_applied = false;
  size_t lumped_states = 0;
  double availability = 0.0;
  /// |availability - product-form availability|: the correctness
  /// cross-check (the product form is exact for this model).
  double product_form_delta = 0.0;
  double peak_rss_mib = 0.0;
};

wfms::Result<wfms::workflow::ServerTypeRegistry> MakeRegistry(int dims) {
  wfms::workflow::ServerTypeRegistry registry;
  for (int x = 0; x < dims; ++x) {
    wfms::workflow::ServerType type;
    type.name = "srv" + std::to_string(x);
    type.service.mean = 1.0;
    type.service.second_moment = 2.0;
    type.failure_rate = kFailureRate;
    type.repair_rate = kRepairRate;
    WFMS_RETURN_NOT_OK(registry.AddServerType(type).status());
  }
  return registry;
}

wfms::Result<Measurement> RunOne(int dims, wfms::markov::LumpingMode lumping) {
  WFMS_ASSIGN_OR_RETURN(wfms::workflow::ServerTypeRegistry registry,
                        MakeRegistry(dims));
  const wfms::workflow::Configuration config(
      std::vector<int>(dims, kReplicasPerType));
  WFMS_ASSIGN_OR_RETURN(
      wfms::markov::MixedRadixSpace space,
      wfms::markov::MixedRadixSpace::Create(config.replicas));

  AvailabilityOptions options;
  options.solver.method = wfms::markov::SteadyStateMethod::kCascade;
  options.solver.lumping = lumping;
  options.solver.budget.max_wall_time_seconds = 300.0;
  WFMS_ASSIGN_OR_RETURN(AvailabilityModel model,
                        AvailabilityModel::Create(registry, options));

  Measurement m;
  m.dims = dims;
  m.states = space.size();
  m.lumping = wfms::markov::LumpingModeName(lumping);

  const auto build_start = std::chrono::steady_clock::now();
  WFMS_ASSIGN_OR_RETURN(wfms::markov::Ctmc chain,
                        model.BuildCtmc(config, space));
  m.build_ms = MillisSince(build_start);
  m.nnz = chain.rates().num_nonzeros();

  const auto solve_start = std::chrono::steady_clock::now();
  WFMS_ASSIGN_OR_RETURN(wfms::avail::AvailabilityReport report,
                        model.Evaluate(config));
  m.solve_ms = MillisSince(solve_start);
  m.method = wfms::markov::SteadyStateMethodName(report.solver_method);
  m.iterations = report.solver_iterations;
  m.lumping_applied = report.lumping_applied;
  m.lumped_states = report.lumped_states;
  m.availability = report.availability;

  // Exact closed-form cross-check (per-type birth-death product).
  double product_availability = 1.0;
  for (int x = 0; x < dims; ++x) {
    WFMS_ASSIGN_OR_RETURN(
        wfms::linalg::Vector per_type,
        model.PerTypeDistribution(static_cast<size_t>(x), kReplicasPerType));
    product_availability *= 1.0 - per_type[0];
  }
  m.product_form_delta = std::abs(report.availability - product_availability);
  m.peak_rss_mib = PeakRssMiB();
  return m;
}

void EmitJson(const std::vector<Measurement>& measurements) {
  std::printf("[\n");
  for (size_t i = 0; i < measurements.size(); ++i) {
    const Measurement& m = measurements[i];
    std::printf(
        "  {\"dims\": %d, \"states\": %zu, \"nnz\": %zu, "
        "\"lumping\": \"%s\", \"build_ms\": %.3f, \"solve_ms\": %.3f, "
        "\"method\": \"%s\", \"iterations\": %d, "
        "\"lumping_applied\": %s, \"lumped_states\": %zu, "
        "\"availability\": %.12f, \"product_form_delta\": %.3e, "
        "\"peak_rss_mib\": %.1f}%s\n",
        m.dims, m.states, m.nnz, m.lumping.c_str(), m.build_ms, m.solve_ms,
        m.method.c_str(), m.iterations, m.lumping_applied ? "true" : "false",
        m.lumped_states, m.availability, m.product_form_delta, m.peak_rss_mib,
        i + 1 < measurements.size() ? "," : "");
  }
  std::printf("]\n");
}

void EmitTable(const std::vector<Measurement>& measurements) {
  std::printf("E13 — large-chain steady-state trajectory "
              "(%d replicas/type, lambda=%g, mu=%g)\n",
              kReplicasPerType, kFailureRate, kRepairRate);
  std::printf("%8s %10s %8s %10s %10s %12s %8s %10s %12s %10s\n", "states",
              "nnz", "lumping", "build_ms", "solve_ms", "method", "iters",
              "lumped_to", "pf_delta", "rss_mib");
  for (const Measurement& m : measurements) {
    std::printf("%8zu %10zu %8s %10.1f %10.1f %12s %8d %10zu %12.3e %10.1f\n",
                m.states, m.nnz, m.lumping.c_str(), m.build_ms, m.solve_ms,
                m.method.c_str(), m.iterations,
                m.lumping_applied ? m.lumped_states : m.states,
                m.product_form_delta, m.peak_rss_mib);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  size_t max_states = 1000000;
  size_t unlumped_max_states = 100000;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--benchmark_format=json") == 0) {
      json = true;
    } else if (std::strncmp(arg, "--max_states=", 13) == 0) {
      max_states = static_cast<size_t>(std::strtoull(arg + 13, nullptr, 10));
    } else if (std::strncmp(arg, "--unlumped_max_states=", 22) == 0) {
      unlumped_max_states =
          static_cast<size_t>(std::strtoull(arg + 22, nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return 2;
    }
  }

  std::vector<Measurement> measurements;
  for (int dims = 3; dims <= 6; ++dims) {
    size_t states = 1;
    for (int x = 0; x < dims; ++x) states *= kReplicasPerType + 1;
    if (states > max_states) break;
    for (const auto lumping : {wfms::markov::LumpingMode::kOff,
                               wfms::markov::LumpingMode::kAuto}) {
      // The unlumped full solve is capped separately: it is the kernels'
      // own trajectory, and past ~10^5 states the lumped path is the one
      // this engine ships for.
      if (lumping == wfms::markov::LumpingMode::kOff &&
          states > unlumped_max_states) {
        continue;
      }
      auto measured = RunOne(dims, lumping);
      if (!measured.ok()) {
        std::fprintf(stderr, "bench_large_chain failed at %zu states (%s): %s\n",
                     states, wfms::markov::LumpingModeName(lumping),
                     measured.status().ToString().c_str());
        return 1;
      }
      measurements.push_back(*std::move(measured));
    }
  }

  if (json) {
    EmitJson(measurements);
  } else {
    EmitTable(measurements);
  }
  return 0;
}

# End-to-end CLI loop: simulate with an audit trail, calibrate from it,
# and feed the calibrated scenario back into assess.
execute_process(
  COMMAND ${WFMSCTL} simulate --scenario ep --config 1,1,1
          --duration 4000 --no-failures --seed 7
          --trail-out ${WORKDIR}/trail.csv
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "simulate failed: ${rc}")
endif()
execute_process(
  COMMAND ${WFMSCTL} calibrate --scenario ep --trail ${WORKDIR}/trail.csv
  OUTPUT_FILE ${WORKDIR}/calibrated.wfms
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "calibrate failed: ${rc}")
endif()
execute_process(
  COMMAND ${WFMSCTL} assess --scenario ${WORKDIR}/calibrated.wfms
          --config 2,2,3 --max-wait 1 --min-avail 0.99
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "assess on calibrated scenario failed: ${rc}")
endif()

// Discrete-event simulation kernel: a time-ordered event queue with
// deterministic tie-breaking (FIFO among equal-time events) and a simple
// run loop. Everything in the simulator is driven by closures scheduled
// here.
#ifndef WFMS_SIM_EVENT_QUEUE_H_
#define WFMS_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace wfms::sim {

class EventQueue {
 public:
  using Action = std::function<void()>;

  double now() const { return now_; }
  size_t pending() const { return queue_.size(); }
  /// High-water mark of pending() over the queue's lifetime.
  size_t peak_pending() const { return peak_pending_; }

  /// Schedules `action` at absolute time `time` (must be >= now).
  void ScheduleAt(double time, Action action);
  /// Schedules `action` after `delay` (must be >= 0).
  void ScheduleAfter(double delay, Action action);

  /// Runs events in time order until the queue is empty or the next event
  /// would be after `end_time`; the clock is left at min(end_time, last
  /// event time). Returns the number of events executed.
  int64_t RunUntil(double end_time);

  /// Invoked after each executed event with the cumulative count; return
  /// false to stop the loop at that event boundary (the clock then stays
  /// at the last event's time rather than advancing to `end_time`).
  using Observer = std::function<bool(int64_t executed)>;

  /// As RunUntil(end_time), but with an inter-event observation point —
  /// the hook the simulator's checkpoint/cancel machinery uses. Observing
  /// happens outside the queue (no event is scheduled for it), so the
  /// event sequence and its deterministic tie-breaking are bit-identical
  /// to an unobserved run.
  int64_t RunUntil(double end_time, const Observer& observer);

  /// Drops all pending events (used at teardown).
  void Clear();

 private:
  struct Event {
    double time;
    uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  uint64_t next_seq_ = 0;
  size_t peak_pending_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace wfms::sim

#endif  // WFMS_SIM_EVENT_QUEUE_H_

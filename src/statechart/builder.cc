#include "statechart/builder.h"

#include <cmath>
#include <queue>
#include <set>

namespace wfms::statechart {

ChartBuilder::ChartBuilder(std::string chart_name) {
  chart_.name_ = std::move(chart_name);
}

ChartBuilder& ChartBuilder::AddActivityState(const std::string& name,
                                             const std::string& activity,
                                             double residence_time) {
  ChartState s;
  s.name = name;
  s.kind = StateKind::kSimple;
  s.activity = activity;
  s.residence_time = residence_time;
  if (chart_.index_.count(name) > 0) {
    if (deferred_error_.ok()) {
      deferred_error_ = Status::AlreadyExists("duplicate state '" + name +
                                              "' in chart '" +
                                              chart_.name_ + "'");
    }
    return *this;
  }
  chart_.index_[name] = chart_.states_.size();
  chart_.states_.push_back(std::move(s));
  return *this;
}

ChartBuilder& ChartBuilder::AddSimpleState(const std::string& name,
                                           double residence_time) {
  return AddActivityState(name, "", residence_time);
}

ChartBuilder& ChartBuilder::AddCompositeState(
    const std::string& name, std::vector<std::string> subcharts) {
  AddActivityState(name, "", 0.0);
  if (deferred_error_.ok() && !chart_.states_.empty() &&
      chart_.states_.back().name == name) {
    chart_.states_.back().kind = StateKind::kComposite;
    chart_.states_.back().subcharts = std::move(subcharts);
  }
  return *this;
}

ChartBuilder& ChartBuilder::SetInitial(const std::string& name) {
  chart_.initial_ = name;
  return *this;
}

ChartBuilder& ChartBuilder::SetFinal(const std::string& name) {
  chart_.final_ = name;
  return *this;
}

ChartBuilder& ChartBuilder::AddTransition(const std::string& from,
                                          const std::string& to,
                                          double probability, EcaRule rule) {
  Transition t;
  t.from = from;
  t.to = to;
  t.probability = probability;
  t.rule = std::move(rule);
  chart_.transitions_.push_back(std::move(t));
  return *this;
}

Result<StateChart> ChartBuilder::Build() {
  WFMS_RETURN_NOT_OK(deferred_error_);
  const std::string context = "chart '" + chart_.name_ + "'";
  if (chart_.name_.empty()) {
    return Status::InvalidArgument("chart name must not be empty");
  }
  if (chart_.states_.empty()) {
    return Status::InvalidArgument(context + " has no states");
  }
  if (chart_.initial_.empty() || chart_.index_.count(chart_.initial_) == 0) {
    return Status::InvalidArgument(context +
                                   ": initial state missing or undeclared");
  }
  if (chart_.final_.empty() || chart_.index_.count(chart_.final_) == 0) {
    return Status::InvalidArgument(context +
                                   ": final state missing or undeclared");
  }
  if (chart_.initial_ == chart_.final_) {
    return Status::InvalidArgument(context +
                                   ": initial and final state must differ");
  }

  // Machine-generated charts (the corpus compiler) derive activity names
  // from task names; a repeated activity would silently merge two tasks'
  // loads, so reject it with both offending states named.
  std::map<std::string, std::string> activity_state;
  for (const ChartState& s : chart_.states_) {
    if (s.activity.empty()) continue;
    const auto [it, inserted] = activity_state.emplace(s.activity, s.name);
    if (!inserted) {
      return Status::InvalidArgument(
          context + ": activity '" + s.activity + "' is used by both '" +
          it->second + "' and '" + s.name + "'");
    }
  }

  for (const ChartState& s : chart_.states_) {
    if (s.kind == StateKind::kComposite && s.subcharts.empty()) {
      return Status::InvalidArgument(context + ": composite state '" +
                                     s.name + "' lists no subcharts");
    }
    if (s.kind == StateKind::kSimple &&
        (s.residence_time < 0.0 || !std::isfinite(s.residence_time))) {
      return Status::InvalidArgument(context + ": state '" + s.name +
                                     "' has invalid residence time");
    }
  }

  // Transition endpoints and probability normalization.
  std::map<std::string, double> outgoing_sum;
  for (Transition& t : chart_.transitions_) {
    if (chart_.index_.count(t.from) == 0 || chart_.index_.count(t.to) == 0) {
      return Status::InvalidArgument(context + ": transition " + t.from +
                                     " -> " + t.to +
                                     " references unknown state");
    }
    if (t.from == chart_.final_) {
      return Status::InvalidArgument(context + ": final state '" + t.from +
                                     "' must not have outgoing transitions");
    }
    if (!(t.probability > 0.0) || t.probability > 1.0 + 1e-9) {
      return Status::InvalidArgument(context + ": transition " + t.from +
                                     " -> " + t.to +
                                     " has probability outside (0, 1]");
    }
    outgoing_sum[t.from] += t.probability;
  }
  for (const ChartState& s : chart_.states_) {
    if (s.name == chart_.final_) continue;
    const auto it = outgoing_sum.find(s.name);
    if (it == outgoing_sum.end()) {
      return Status::InvalidArgument(context + ": non-final state '" +
                                     s.name + "' has no outgoing transition");
    }
    if (std::fabs(it->second - 1.0) > 1e-6) {
      return Status::InvalidArgument(
          context + ": outgoing probabilities of '" + s.name + "' sum to " +
          std::to_string(it->second) + ", expected 1");
    }
  }
  for (Transition& t : chart_.transitions_) {
    t.probability /= outgoing_sum[t.from];  // exact renormalization
  }

  // Reachability from the initial state.
  std::set<std::string> reachable;
  std::queue<std::string> frontier;
  reachable.insert(chart_.initial_);
  frontier.push(chart_.initial_);
  while (!frontier.empty()) {
    const std::string current = frontier.front();
    frontier.pop();
    for (const Transition& t : chart_.transitions_) {
      if (t.from == current && reachable.insert(t.to).second) {
        frontier.push(t.to);
      }
    }
  }
  for (const ChartState& s : chart_.states_) {
    if (reachable.count(s.name) == 0) {
      return Status::InvalidArgument(context + ": state '" + s.name +
                                     "' is unreachable from the initial "
                                     "state");
    }
  }

  return std::move(chart_);
}

}  // namespace wfms::statechart

#include "avail/availability_model.h"

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <tuple>

#include "common/metrics.h"
#include "common/time_units.h"
#include "common/trace.h"
#include "markov/birth_death.h"
#include "markov/ctmc_transient.h"
#include "markov/ctmc.h"

namespace wfms::avail {

using linalg::Vector;
using markov::MixedRadixSpace;
using markov::StateVector;
using workflow::Configuration;

std::string SiteContingency::ToString(
    const workflow::SiteTopology& topology) const {
  if (none()) return "baseline";
  std::string out;
  const size_t s = topology.num_sites();
  for (size_t a = 0; a < s; ++a) {
    if (down_sites & (uint64_t{1} << a)) {
      if (!out.empty()) out += ", ";
      out += "site " + topology.sites[a].name + " down";
    }
  }
  for (size_t a = 0; a + 1 < s; ++a) {
    for (size_t b = a + 1; b < s; ++b) {
      if (partitioned_pairs &
          (uint64_t{1} << workflow::PairIndex(a, b, s))) {
        if (!out.empty()) out += ", ";
        out += "partition " + topology.sites[a].name + "|" +
               topology.sites[b].name;
      }
    }
  }
  return out;
}

uint64_t SiteStateLayout::UpSites(const markov::MixedRadixSpace& space,
                                  size_t state) const {
  uint64_t mask = static_up_sites;
  for (size_t a = 0; a < num_sites; ++a) {
    if (site_dim[a] >= 0 &&
        space.Component(state, static_cast<size_t>(site_dim[a])) == 1) {
      mask |= uint64_t{1} << a;
    }
  }
  return mask;
}

uint64_t SiteStateLayout::Partitions(const markov::MixedRadixSpace& space,
                                     size_t state) const {
  uint64_t mask = static_partitions;
  for (size_t p = 0; p < pair_dim.size(); ++p) {
    if (pair_dim[p] >= 0 &&
        space.Component(state, static_cast<size_t>(pair_dim[p])) == 1) {
      mask |= uint64_t{1} << p;
    }
  }
  return mask;
}

Result<AvailabilityModel> AvailabilityModel::Create(
    const workflow::ServerTypeRegistry& servers,
    const AvailabilityOptions& options,
    const workflow::SiteTopology* topology) {
  WFMS_RETURN_NOT_OK(servers.Validate());
  Vector failures(servers.size()), repairs(servers.size());
  for (size_t x = 0; x < servers.size(); ++x) {
    failures[x] = servers.type(x).failure_rate;
    repairs[x] = servers.type(x).repair_rate;
  }
  workflow::SiteTopology topo;
  if (topology != nullptr) {
    WFMS_RETURN_NOT_OK(topology->Validate().WithContext("site topology"));
    topo = *topology;
  }
  return AvailabilityModel(std::move(failures), std::move(repairs), options,
                           std::move(topo));
}

Result<Vector> AvailabilityModel::PerTypeDistribution(size_t type_index,
                                                      int replicas) const {
  if (type_index >= num_types()) {
    return Status::OutOfRange("server type index out of range");
  }
  const double lambda = failure_rates_[type_index];
  const double mu = repair_rates_[type_index];
  if (options_.repair_policy == RepairPolicy::kIndependent) {
    return markov::ReplicatedServerAvailability(replicas, lambda, mu);
  }
  // Single crew: births (repairs) at constant mu, deaths at (j+1)*lambda.
  const auto y = static_cast<size_t>(replicas);
  Vector births(y), deaths(y);
  for (size_t j = 0; j < y; ++j) {
    births[j] = mu;
    deaths[j] = static_cast<double>(j + 1) * lambda;
  }
  return markov::BirthDeathSteadyState(births, deaths);
}

Result<Vector> AvailabilityModel::ProductFormStateProbabilities(
    const Configuration& config, const MixedRadixSpace& space) const {
  const size_t k = num_types();
  std::vector<Vector> per_type(k);
  for (size_t x = 0; x < k; ++x) {
    WFMS_ASSIGN_OR_RETURN(per_type[x],
                          PerTypeDistribution(x, config.replicas[x]));
  }
  Vector pi(space.size(), 1.0);
  for (size_t i = 0; i < space.size(); ++i) {
    for (size_t x = 0; x < k; ++x) {
      pi[i] *= per_type[x][static_cast<size_t>(space.Component(i, x))];
    }
  }
  return pi;
}

Result<markov::Ctmc> AvailabilityModel::BuildCtmc(
    const Configuration& config, const MixedRadixSpace& space) const {
  const size_t k = num_types();
  WFMS_RETURN_NOT_OK(config.Validate(k));
  // Generator over the mixed-radix state space (§5.2).
  markov::CtmcBuilder builder(space.size());
  builder.Reserve(space.size() * 2 * k);  // <= one failure + one repair arc per type
  for (size_t i = 0; i < space.size(); ++i) {
    for (size_t x = 0; x < k; ++x) {
      const int up = space.Component(i, x);
      if (up > 0) {
        // One of the `up` servers of type x fails.
        const size_t j = space.Neighbor(i, x, -1);
        WFMS_RETURN_NOT_OK(
            builder.AddTransition(i, j, up * failure_rates_[x]));
      }
      const int down = config.replicas[x] - up;
      if (down > 0) {
        const size_t j = space.Neighbor(i, x, +1);
        const double rate =
            options_.repair_policy == RepairPolicy::kIndependent
                ? down * repair_rates_[x]
                : repair_rates_[x];
        WFMS_RETURN_NOT_OK(builder.AddTransition(i, j, rate));
      }
    }
  }
  return builder.Build();
}

Result<double> AvailabilityModel::PointAvailability(
    const Configuration& config, double t) const {
  const size_t k = num_types();
  WFMS_RETURN_NOT_OK(config.Validate(k));
  WFMS_ASSIGN_OR_RETURN(MixedRadixSpace space,
                        MixedRadixSpace::Create(config.replicas));
  WFMS_ASSIGN_OR_RETURN(markov::Ctmc chain, BuildCtmc(config, space));
  Vector p0(space.size(), 0.0);
  markov::StateVector full(config.replicas.begin(), config.replicas.end());
  p0[space.EncodeUnchecked(full)] = 1.0;
  WFMS_ASSIGN_OR_RETURN(Vector pt,
                        markov::CtmcTransientDistribution(chain, p0, t));
  double up_probability = 0.0;
  for (size_t i = 0; i < space.size(); ++i) {
    bool up = true;
    for (size_t x = 0; x < k; ++x) {
      if (space.Component(i, x) == 0) {
        up = false;
        break;
      }
    }
    if (up) up_probability += pt[i];
  }
  return up_probability;
}

Result<AvailabilityReport> AvailabilityModel::Evaluate(
    const Configuration& config, const linalg::Vector* steady_state_guess,
    const markov::SteadyStateOptions* solver_override) const {
  if (site_mode(config)) {
    // Site-placed configuration: the geo path owns the state space shape;
    // warm-start guesses from replica-shaped neighbors do not apply.
    (void)steady_state_guess;
    return EvaluateSites(config, SiteContingency{}, solver_override);
  }
  auto& registry = metrics::MetricsRegistry::Global();
  static metrics::Counter& evaluations =
      registry.GetCounter("wfms_avail_evaluations_total");
  static metrics::Counter& product_form =
      registry.GetCounter("wfms_avail_product_form_total");
  static metrics::Counter& ctmc_solves =
      registry.GetCounter("wfms_avail_ctmc_solves_total");
  static metrics::Histogram& evaluate_seconds =
      registry.GetHistogram("wfms_avail_evaluate_seconds");
  evaluations.Increment();
  trace::TraceSpan span("avail/evaluate", "avail");
  const auto start = std::chrono::steady_clock::now();
  const auto observe_elapsed = [&start]() {
    evaluate_seconds.Observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count());
  };

  const size_t k = num_types();
  WFMS_RETURN_NOT_OK(config.Validate(k));
  WFMS_ASSIGN_OR_RETURN(MixedRadixSpace space,
                        MixedRadixSpace::Create(config.replicas));

  AvailabilityReport report;
  Vector pi;
  if (options_.use_product_form) {
    product_form.Increment();
    WFMS_ASSIGN_OR_RETURN(pi, ProductFormStateProbabilities(config, space));
  } else {
    ctmc_solves.Increment();
    WFMS_ASSIGN_OR_RETURN(markov::Ctmc chain, BuildCtmc(config, space));
    markov::SteadyStateOptions solver_options =
        solver_override != nullptr ? *solver_override : options_.solver;
    solver_options.initial_guess = steady_state_guess;
    // Seed the lumping pass with canonical orbits of exchangeable server
    // types: dimensions whose (failure rate, repair rate, replica count)
    // coincide bit-for-bit have permutation-invariant dynamics, so states
    // differing only by such a permutation are lumping candidates.
    std::vector<uint32_t> seed_storage;
    if (solver_options.lumping != markov::LumpingMode::kOff &&
        solver_options.lumping_seed == nullptr && k > 1) {
      std::map<std::tuple<uint64_t, uint64_t, int>, uint64_t> sig_ids;
      std::vector<uint64_t> signature(k);
      for (size_t x = 0; x < k; ++x) {
        uint64_t failure_bits, repair_bits;
        std::memcpy(&failure_bits, &failure_rates_[x], sizeof(double));
        std::memcpy(&repair_bits, &repair_rates_[x], sizeof(double));
        const auto [it, inserted] = sig_ids.emplace(
            std::make_tuple(failure_bits, repair_bits, config.replicas[x]),
            sig_ids.size());
        signature[x] = it->second;
      }
      auto labels = markov::ExchangeableStateLabels(space, signature);
      if (labels.ok()) {
        seed_storage = *std::move(labels);
        solver_options.lumping_seed = &seed_storage;
      }
    }
    auto solved = markov::SolveSteadyState(chain, solver_options);
    if (!solved.ok()) {
      return solved.status().WithContext("availability CTMC for " +
                                         config.ToString());
    }
    pi = std::move(solved->pi);
    report.solver_iterations = solved->iterations;
    report.solver_method = solved->method_used;
    report.solver_diagnostics = solved->diagnostics;
    report.solver_attempts = std::move(solved->attempts);
    report.lumping_applied = solved->lumping_applied;
    report.lumped_states = solved->lumped_states;
  }

  // Aggregate: available iff all types have at least one server up.
  double available = 0.0;
  Vector expected_up(k, 0.0);
  for (size_t i = 0; i < space.size(); ++i) {
    bool up = true;
    for (size_t x = 0; x < k; ++x) {
      const int count = space.Component(i, x);
      expected_up[x] += pi[i] * count;
      if (count == 0) up = false;
    }
    if (up) available += pi[i];
  }

  report.availability = available;
  report.unavailability = 1.0 - available;
  report.downtime_minutes_per_year =
      UnavailabilityToDowntimeMinutesPerYear(1.0 - available);
  report.state_probabilities = std::move(pi);
  report.space = std::move(space);
  report.expected_up_servers = std::move(expected_up);
  observe_elapsed();
  return report;
}

Result<Vector> AvailabilityModel::ReplicaDimDistribution(size_t type_index,
                                                         int bound) const {
  if (bound == 0) return Vector(1, 1.0);  // empty placement: always "0 up"
  return PerTypeDistribution(type_index, bound);
}

Result<AvailabilityReport> AvailabilityModel::EvaluateSites(
    const Configuration& config, const SiteContingency& contingency,
    const markov::SteadyStateOptions* solver_override) const {
  auto& registry = metrics::MetricsRegistry::Global();
  static metrics::Counter& evaluations =
      registry.GetCounter("wfms_avail_site_evaluations_total");
  static metrics::Histogram& evaluate_seconds =
      registry.GetHistogram("wfms_avail_evaluate_seconds");
  evaluations.Increment();
  trace::TraceSpan span("avail/evaluate_sites", "avail");
  const auto start = std::chrono::steady_clock::now();

  const size_t k = num_types();
  const size_t s = topology_.num_sites();
  if (s == 0) {
    return Status::FailedPrecondition(
        "EvaluateSites needs a site topology (model was created without "
        "one)");
  }
  WFMS_RETURN_NOT_OK(config.ValidateSites(k, s));
  const size_t num_pairs = workflow::PairCount(s);
  if (s < 64 && (contingency.down_sites >> s) != 0) {
    return Status::InvalidArgument("contingency names a site out of range");
  }
  if (num_pairs < 64 && (contingency.partitioned_pairs >> num_pairs) != 0) {
    return Status::InvalidArgument("contingency names a pair out of range");
  }

  // --- State-space layout -------------------------------------------------
  // Dims 0 .. k*s-1: per-(type, site) up counts. A contingency-pinned down
  // site contributes bound-0 replica dims (its replicas are masked off by
  // the structure function regardless, so dropping their dynamics is
  // exact and shrinks the space).
  SiteStateLayout layout;
  layout.active = true;
  layout.num_types = k;
  layout.num_sites = s;
  const auto site_pinned_down = [&](size_t a) {
    return (contingency.down_sites & (uint64_t{1} << a)) != 0;
  };
  std::vector<int> bounds;
  bounds.reserve(k * s + s + num_pairs);
  for (size_t x = 0; x < k; ++x) {
    for (size_t a = 0; a < s; ++a) {
      bounds.push_back(site_pinned_down(a) ? 0 : config.SiteCount(x, a));
    }
  }
  // One binary up/down dim per site that both can crash and is not pinned;
  // never-crashing sites are statically up, pinned sites statically down.
  layout.site_dim.assign(s, -1);
  for (size_t a = 0; a < s; ++a) {
    if (site_pinned_down(a)) continue;
    if (topology_.sites[a].failure_rate == 0.0) {
      layout.static_up_sites |= uint64_t{1} << a;
      continue;
    }
    layout.site_dim[a] = static_cast<int>(bounds.size());
    bounds.push_back(1);
  }
  // One binary partitioned dim per pair of live sites, unless pinned by the
  // contingency or partitions are disabled. Pairs touching a pinned-down
  // site can never carry traffic, so their partition state is irrelevant.
  layout.pair_dim.assign(num_pairs, -1);
  for (size_t a = 0; a + 1 < s; ++a) {
    for (size_t b = a + 1; b < s; ++b) {
      const size_t p = workflow::PairIndex(a, b, s);
      if (site_pinned_down(a) || site_pinned_down(b)) continue;
      if (contingency.partitioned_pairs & (uint64_t{1} << p)) {
        layout.static_partitions |= uint64_t{1} << p;
        continue;
      }
      if (topology_.partition_rate == 0.0) continue;
      layout.pair_dim[p] = static_cast<int>(bounds.size());
      bounds.push_back(1);
    }
  }
  WFMS_ASSIGN_OR_RETURN(MixedRadixSpace space,
                        MixedRadixSpace::Create(std::move(bounds)));
  const size_t num_dims = space.num_dimensions();

  // Per-dimension transition rates; every dimension is an independent
  // birth-death chain, so the generator is a pure product and correlation
  // enters only through the aggregation-time structure function.
  const auto death_rate = [&](size_t d, int value) -> double {
    if (d < k * s) return value * failure_rates_[d / s];
    for (size_t a = 0; a < s; ++a) {
      if (layout.site_dim[a] == static_cast<int>(d)) {
        return topology_.sites[a].failure_rate;  // up -> down
      }
    }
    return topology_.heal_rate;  // partitioned -> healed
  };
  const auto birth_rate = [&](size_t d, int value) -> double {
    if (d < k * s) {
      const int down = space.bound(d) - value;
      return options_.repair_policy == RepairPolicy::kIndependent
                 ? down * repair_rates_[d / s]
                 : repair_rates_[d / s];
    }
    for (size_t a = 0; a < s; ++a) {
      if (layout.site_dim[a] == static_cast<int>(d)) {
        return topology_.sites[a].repair_rate;  // down -> up
      }
    }
    return topology_.partition_rate;  // healed -> partitioned
  };

  AvailabilityReport report;
  Vector pi;
  if (options_.use_product_form) {
    // Exact: the stationary distribution factorizes over dimensions.
    std::vector<Vector> per_dim(num_dims);
    for (size_t d = 0; d < num_dims; ++d) {
      if (d < k * s) {
        WFMS_ASSIGN_OR_RETURN(per_dim[d],
                              ReplicaDimDistribution(d / s, space.bound(d)));
      } else {
        const double down = death_rate(d, 1);   // rate out of state 1
        const double up = birth_rate(d, 0);     // rate out of state 0
        per_dim[d] = Vector(2, 0.0);
        per_dim[d][0] = down / (down + up);
        per_dim[d][1] = up / (down + up);
      }
    }
    pi = Vector(space.size(), 1.0);
    for (size_t i = 0; i < space.size(); ++i) {
      for (size_t d = 0; d < num_dims; ++d) {
        pi[i] *= per_dim[d][static_cast<size_t>(space.Component(i, d))];
      }
    }
  } else {
    markov::CtmcBuilder builder(space.size());
    builder.Reserve(space.size() * 2 * num_dims);
    for (size_t i = 0; i < space.size(); ++i) {
      for (size_t d = 0; d < num_dims; ++d) {
        const int value = space.Component(i, d);
        if (value > 0) {
          WFMS_RETURN_NOT_OK(builder.AddTransition(i, space.Neighbor(i, d, -1),
                                                   death_rate(d, value)));
        }
        if (value < space.bound(d)) {
          WFMS_RETURN_NOT_OK(builder.AddTransition(i, space.Neighbor(i, d, +1),
                                                   birth_rate(d, value)));
        }
      }
    }
    WFMS_ASSIGN_OR_RETURN(markov::Ctmc chain, builder.Build());
    markov::SteadyStateOptions solver_options =
        solver_override != nullptr ? *solver_override : options_.solver;
    solver_options.initial_guess = nullptr;
    // Lumping seed over all dimension kinds: replica dims sharing (rates,
    // bound), site dims sharing (crash, repair) rates, and the identically
    // parameterized partition dims are exchangeable. The generator is a
    // product of independent per-dim chains, so permuting same-signature
    // dims is an automorphism; the refinement pass verifies regardless.
    std::vector<uint32_t> seed_storage;
    if (solver_options.lumping != markov::LumpingMode::kOff &&
        solver_options.lumping_seed == nullptr && num_dims > 1) {
      std::map<std::tuple<int, uint64_t, uint64_t, int>, uint64_t> sig_ids;
      std::vector<uint64_t> signature(num_dims);
      for (size_t d = 0; d < num_dims; ++d) {
        int kind = 0;
        double r1 = 0.0, r2 = 0.0;
        if (d < k * s) {
          kind = 0;
          r1 = failure_rates_[d / s];
          r2 = repair_rates_[d / s];
        } else {
          kind = 1;
          r1 = death_rate(d, 1);
          r2 = birth_rate(d, 0);
        }
        uint64_t r1_bits, r2_bits;
        std::memcpy(&r1_bits, &r1, sizeof(double));
        std::memcpy(&r2_bits, &r2, sizeof(double));
        const auto [it, inserted] = sig_ids.emplace(
            std::make_tuple(kind, r1_bits, r2_bits, space.bound(d)),
            sig_ids.size());
        signature[d] = it->second;
      }
      auto labels = markov::ExchangeableStateLabels(space, signature);
      if (labels.ok()) {
        seed_storage = *std::move(labels);
        solver_options.lumping_seed = &seed_storage;
      }
    }
    auto solved = markov::SolveSteadyState(chain, solver_options);
    if (!solved.ok()) {
      return solved.status().WithContext(
          "site availability CTMC for " + config.ToString() + " under " +
          contingency.ToString(topology_));
    }
    pi = std::move(solved->pi);
    report.solver_iterations = solved->iterations;
    report.solver_method = solved->method_used;
    report.solver_diagnostics = solved->diagnostics;
    report.solver_attempts = std::move(solved->attempts);
    report.lumping_applied = solved->lumping_applied;
    report.lumped_states = solved->lumped_states;
  }

  // Aggregate through the coverage structure function: available iff some
  // connected component of up sites hosts >= 1 up replica of every type.
  // expected_up counts only replicas that can actually serve (inside the
  // serving component).
  double available = 0.0;
  Vector expected_up(k, 0.0);
  std::vector<int> up_counts(k * s, 0);
  for (size_t i = 0; i < space.size(); ++i) {
    for (size_t d = 0; d < k * s; ++d) {
      up_counts[d] = space.Component(i, d);
    }
    const uint64_t up_sites = layout.UpSites(space, i);
    const uint64_t partitions = layout.Partitions(space, i);
    const uint64_t serving = workflow::ServingComponent(
        k, s, up_counts.data(), up_sites, partitions);
    if (serving == 0) continue;
    available += pi[i];
    for (size_t x = 0; x < k; ++x) {
      for (size_t a = 0; a < s; ++a) {
        if (serving & (uint64_t{1} << a)) {
          expected_up[x] += pi[i] * up_counts[x * s + a];
        }
      }
    }
  }

  report.availability = available;
  report.unavailability = 1.0 - available;
  report.downtime_minutes_per_year =
      UnavailabilityToDowntimeMinutesPerYear(1.0 - available);
  report.state_probabilities = std::move(pi);
  report.space = std::move(space);
  report.expected_up_servers = std::move(expected_up);
  report.site_layout = std::move(layout);
  evaluate_seconds.Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  return report;
}

}  // namespace wfms::avail

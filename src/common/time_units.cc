#include "common/time_units.h"

#include <cmath>
#include <cstdio>

namespace wfms {

std::string FormatMinutes(double minutes) {
  char buf[64];
  const double abs = std::fabs(minutes);
  if (abs < 1.0 / 60.0) {
    std::snprintf(buf, sizeof(buf), "%.3g ms", minutes * 60.0 * 1000.0);
  } else if (abs < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3g s", minutes * 60.0);
  } else if (abs < kMinutesPerHour) {
    std::snprintf(buf, sizeof(buf), "%.3g min", minutes);
  } else if (abs < kMinutesPerDay) {
    std::snprintf(buf, sizeof(buf), "%.3g h", minutes / kMinutesPerHour);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3g d", minutes / kMinutesPerDay);
  }
  return buf;
}

}  // namespace wfms

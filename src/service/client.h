// Blocking client for the wfmsd protocol: one TCP connection, one
// request line out, one response line back (used by `wfmsctl --connect`
// and tools/load_driver).
//
// Retry discipline: only *transport* failures are retried — connection
// refused, I/O timeout, torn connection before a full response line
// arrived — with jittered exponential backoff (deterministically seeded,
// so a fleet of load-driver threads does not retry in lockstep). A
// response the server actually sent is NEVER retried, whatever its
// disposition: `rejected-overloaded` and `deadline-exceeded` are answers,
// and retrying them would double-count work the server already refused.
// Idempotency gate: read-only protocol commands (ping, assess, recommend)
// are safe to re-send because the retry carries the same request id — the
// server computes the same pure function of the environment. Mutating
// commands (autotune) pass idempotent = false and are retried only while
// the request provably never reached the wire (connect failure); once
// bytes may have been sent, the transport error is surfaced instead.
// Every retry increments `wfms_service_client_retries_total`.
#ifndef WFMS_SERVICE_CLIENT_H_
#define WFMS_SERVICE_CLIENT_H_

#include <cstdint>
#include <random>
#include <string>

#include "common/result.h"

namespace wfms::service {

struct ClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  double connect_timeout_seconds = 5.0;
  /// Per-call cap on waiting for the response line.
  double io_timeout_seconds = 60.0;
  /// Transport-failure retries per Call (0 = single attempt).
  int max_retries = 3;
  double backoff_initial_seconds = 0.05;
  double backoff_multiplier = 2.0;
  double backoff_max_seconds = 2.0;
  /// Seed of the backoff jitter (deterministic per client).
  uint64_t jitter_seed = 1;
};

class Client {
 public:
  explicit Client(const ClientOptions& options);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&&) noexcept;
  Client& operator=(Client&&) noexcept;

  /// Sends `request_line` (newline appended) and returns the next
  /// response line. Connects lazily; reconnects between retries.
  /// Unavailable after retries are exhausted; DeadlineExceeded on I/O
  /// timeout of the final attempt. `idempotent` = false restricts retries
  /// to attempts where the request never reached the wire (see the retry
  /// discipline above).
  Result<std::string> Call(const std::string& request_line,
                           bool idempotent = true);

  /// Pipelining primitives (tools/load_driver keeps many requests in
  /// flight per connection): Send writes one request line without
  /// waiting; ReadResponse returns the next response line. Neither
  /// retries — a pipelined retry would duplicate server-side work and
  /// desynchronize the stream.
  Status Send(const std::string& request_line);
  Result<std::string> ReadResponse();

  /// Explicit connect (e.g. to fail fast before a measurement run).
  Status Connect();
  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  /// One attempt. `*maybe_sent` is set once request bytes may have
  /// reached the server (the non-idempotent retry cutoff).
  Result<std::string> CallOnce(const std::string& line, bool* maybe_sent);
  Status ReadLine(std::string* line);

  ClientOptions options_;
  int fd_ = -1;
  std::string buffer_;  // bytes read past the last returned line
  std::mt19937_64 rng_;
};

}  // namespace wfms::service

#endif  // WFMS_SERVICE_CLIENT_H_

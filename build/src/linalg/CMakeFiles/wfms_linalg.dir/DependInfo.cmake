
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/dense_matrix.cc" "src/linalg/CMakeFiles/wfms_linalg.dir/dense_matrix.cc.o" "gcc" "src/linalg/CMakeFiles/wfms_linalg.dir/dense_matrix.cc.o.d"
  "/root/repo/src/linalg/iterative_solver.cc" "src/linalg/CMakeFiles/wfms_linalg.dir/iterative_solver.cc.o" "gcc" "src/linalg/CMakeFiles/wfms_linalg.dir/iterative_solver.cc.o.d"
  "/root/repo/src/linalg/lu_solver.cc" "src/linalg/CMakeFiles/wfms_linalg.dir/lu_solver.cc.o" "gcc" "src/linalg/CMakeFiles/wfms_linalg.dir/lu_solver.cc.o.d"
  "/root/repo/src/linalg/sparse_matrix.cc" "src/linalg/CMakeFiles/wfms_linalg.dir/sparse_matrix.cc.o" "gcc" "src/linalg/CMakeFiles/wfms_linalg.dir/sparse_matrix.cc.o.d"
  "/root/repo/src/linalg/vector.cc" "src/linalg/CMakeFiles/wfms_linalg.dir/vector.cc.o" "gcc" "src/linalg/CMakeFiles/wfms_linalg.dir/vector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wfms_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

// Mixed-radix encoding of WFMS system states (§5.2 of the paper): a system
// state (X_1, ..., X_k) with 0 <= X_x <= Y_x maps to the integer
//   sum_j X_j * prod_{l<j} (Y_l + 1),
// which indexes the states of the availability CTMC.
#ifndef WFMS_MARKOV_STATE_SPACE_H_
#define WFMS_MARKOV_STATE_SPACE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "linalg/vector.h"

namespace wfms::markov {

/// Vector of per-dimension values, e.g. available servers per server type.
using StateVector = std::vector<int>;

class MixedRadixSpace {
 public:
  /// Zero-dimensional space with a single state; a placeholder for report
  /// structs that are filled in later.
  MixedRadixSpace() = default;

  /// `bounds[j]` is the maximum value of dimension j (inclusive), i.e. Y_j.
  static Result<MixedRadixSpace> Create(std::vector<int> bounds);

  size_t num_dimensions() const { return bounds_.size(); }
  int bound(size_t dim) const { return bounds_[dim]; }
  const std::vector<int>& bounds() const { return bounds_; }

  /// Total number of states: prod (Y_j + 1).
  size_t size() const { return size_; }

  /// Encodes a state vector; all entries must be within bounds.
  Result<size_t> Encode(const StateVector& state) const;
  /// Encode without validation (hot path; caller guarantees bounds).
  size_t EncodeUnchecked(const StateVector& state) const;

  /// Decodes an index into a state vector.
  Result<StateVector> Decode(size_t index) const;

  /// Returns the encoded neighbor with dimension `dim` changed by `delta`,
  /// or SIZE_MAX if that would leave the bounds. O(1).
  size_t Neighbor(size_t index, size_t dim, int delta) const;

  /// Value of dimension `dim` in the state with the given index. O(1).
  int Component(size_t index, size_t dim) const;

  std::string ToString(size_t index) const;

 private:
  explicit MixedRadixSpace(std::vector<int> bounds);

  std::vector<int> bounds_;
  std::vector<size_t> place_values_;  // prod_{l<j} (Y_l + 1)
  size_t size_ = 1;
};

/// Canonical-orbit labels used to seed the lumping pass (markov/lumping.h):
/// dimensions sharing a signature value are treated as exchangeable, and
/// each state is labelled by the canonical state obtained by sorting its
/// components within every signature class. States with equal labels are
/// *candidates* for merging — availability chains whose server types share
/// failure/repair rates and replica counts produce identical dynamics under
/// any permutation of those types, so their orbits lump; the partition
/// refinement downstream verifies rather than assumes this. Labels are
/// dense, assigned in ascending state order. Dimensions with equal
/// signatures must have equal bounds (otherwise sorting components across
/// them is meaningless) — that is an error.
Result<std::vector<uint32_t>> ExchangeableStateLabels(
    const MixedRadixSpace& space, const std::vector<uint64_t>& dim_signature);

/// Transfers a distribution over `from` onto `to` (same dimension count,
/// possibly different bounds): each target state reads the probability of
/// the source state with the same component vector, clamped into the
/// source bounds, and the result is L1-normalized. This is not a
/// stochastic mapping (mass may be duplicated before normalization); it is
/// an *initial guess* for iterative steady-state solvers when the two
/// spaces belong to configurations differing by a replica or two.
Result<linalg::Vector> ProjectDistribution(const MixedRadixSpace& from,
                                           const linalg::Vector& pi,
                                           const MixedRadixSpace& to);

}  // namespace wfms::markov

#endif  // WFMS_MARKOV_STATE_SPACE_H_

# Empty dependencies file for wfms_linalg.
# This may be replaced when dependencies are built.

// Always-on per-request forensics for wfmsd (DESIGN.md §13): a
// lock-sharded bounded ring of RequestRecords — one per protocol request,
// whatever its disposition — answering "why was p99 34 ms last night"
// after the fact. The ring is served live at `GET /debug/requests`
// (newest-first JSON) and dumped to a file next to the cache snapshot on
// SIGTERM drain; it is deliberately NOT crash-safe (a SIGKILL loses it —
// the chaos path must stay byte-identical and the recorder must never add
// I/O to the request path).
//
// Sharding mirrors the metrics registry: records are spread round-robin
// over independently locked shards, so concurrent workers committing
// records contend only 1/N of the time. A global sequence number restores
// total order at read time.
#ifndef WFMS_SERVICE_FLIGHT_RECORDER_H_
#define WFMS_SERVICE_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/trace.h"

namespace wfms::service {

/// Everything the server knows about one finished request. Filled in by
/// the backend (phases, cache/solver facts) and the server (queue wait,
/// bytes, disposition) and committed at response-write time.
struct RequestRecord {
  uint64_t seq = 0;       // assigned by the recorder; total arrival order
  std::string trace_id;   // 32 hex chars; adopted from the client or minted
  std::string tenant;
  std::string op;           // ping|assess|recommend|autotune
  std::string disposition;  // protocol DispositionName
  /// Wall-clock seconds the request sat in the worker queue before its
  /// handler started.
  double admission_wait_seconds = 0.0;
  /// Arrival-to-response wall time (superset of every phase below).
  double elapsed_seconds = 0.0;
  /// Named phase durations in execution order, pulled from the handler's
  /// span tree (e.g. queue / resolve_scenario / execute). Their sum is
  /// <= elapsed_seconds: phases are disjoint sub-intervals of the wall.
  std::vector<std::pair<std::string, double>> phases;
  bool cache_hit = false;
  /// Steady-state cascade rungs attempted while serving this request (0
  /// for cache hits, pings, and non-solving dispositions).
  int solver_rungs = 0;
  uint64_t bytes_in = 0;   // request line length
  uint64_t bytes_out = 0;  // rendered response length
};

/// In-flight accounting handed through Backend::Handle so the handler can
/// annotate the record without the server and backend sharing state.
struct RequestTelemetry {
  /// Server-side trace context of the request (accepted-or-minted).
  trace::TraceContext context;
  std::vector<std::pair<std::string, double>> phases;
  bool cache_hit = false;
  int solver_rungs = 0;
};

class FlightRecorder {
 public:
  /// Keeps the most recent ~`capacity` records (rounded up to a multiple
  /// of the shard count).
  explicit FlightRecorder(size_t capacity = 1024, size_t shards = 8);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Commits one record (assigns `seq`). Lock-sharded; never blocks on
  /// another shard's writer.
  void Record(RequestRecord record);

  /// The newest `n` records, newest first (all of them when n == 0 or
  /// exceeds the retained count).
  std::vector<RequestRecord> Newest(size_t n) const;

  /// {"schema_version": 1, "total_recorded": N, "records": [...]} with the
  /// newest `n` records, newest-first. Validated by
  /// tools/schemas/flight_recorder_schema.json.
  std::string ToJson(size_t n = 0) const;

  /// Best-effort dump of ToJson() to `path`.
  Status DumpJson(const std::string& path, size_t n = 0) const;

  /// Total records ever committed (retained or already overwritten).
  uint64_t total_recorded() const {
    return seq_.load(std::memory_order_relaxed);
  }

  size_t capacity() const { return shards_.size() * per_shard_capacity_; }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::vector<RequestRecord> ring;  // grows to per-shard capacity, then
    size_t next = 0;                  // overwrites oldest at `next`
  };

  size_t per_shard_capacity_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> seq_{0};
};

}  // namespace wfms::service

#endif  // WFMS_SERVICE_FLIGHT_RECORDER_H_

// Scripted load-phase changes: DSL parsing, symbolic rate replay, window
// slicing, and the simulator actually following the schedule.
#include "sim/load_schedule.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"
#include "workflow/scenarios.h"

namespace wfms::sim {
namespace {

using workflow::Configuration;
using workflow::Environment;

Environment Ep(double rate = 0.5) {
  auto env = workflow::EpEnvironment(rate);
  EXPECT_TRUE(env.ok()) << env.status();
  return *std::move(env);
}

SimulationResult RunSim(const Environment& env, SimulationOptions options) {
  auto sim = Simulator::Create(env, std::move(options));
  EXPECT_TRUE(sim.ok()) << sim.status();
  auto result = sim->Run();
  EXPECT_TRUE(result.ok()) << result.status();
  return *std::move(result);
}

TEST(LoadScheduleParseTest, ParsesAllActions) {
  const Environment env = Ep();
  auto schedule = ParseLoadSchedule(R"(
# phase plan
at 100 rate EP 2.5
at 200 scale EP 0.5
at 300 scale-all 2
)",
                                    env.workflows);
  ASSERT_TRUE(schedule.ok()) << schedule.status();
  ASSERT_EQ(schedule->events.size(), 3u);
  EXPECT_EQ(schedule->events[0].action, LoadAction::kSetRate);
  EXPECT_DOUBLE_EQ(schedule->events[0].time, 100.0);
  EXPECT_EQ(schedule->events[0].workflow, 0u);
  EXPECT_DOUBLE_EQ(schedule->events[0].value, 2.5);
  EXPECT_EQ(schedule->events[1].action, LoadAction::kScale);
  EXPECT_EQ(schedule->events[2].action, LoadAction::kScaleAll);
  EXPECT_TRUE(schedule->Validate(env.workflows.size()).ok());
}

TEST(LoadScheduleParseTest, ErrorsCarryLineNumbers) {
  const Environment env = Ep();
  auto unknown_wf = ParseLoadSchedule("at 5 rate Nope 1\n", env.workflows);
  ASSERT_FALSE(unknown_wf.ok());
  EXPECT_NE(unknown_wf.status().message().find("line 1"), std::string::npos);
  EXPECT_NE(unknown_wf.status().message().find("Nope"), std::string::npos);

  auto bad_verb =
      ParseLoadSchedule("\nat 5 wobble EP 1\n", env.workflows);
  ASSERT_FALSE(bad_verb.ok());
  EXPECT_NE(bad_verb.status().message().find("line 2"), std::string::npos);

  EXPECT_FALSE(ParseLoadSchedule("at x rate EP 1\n", env.workflows).ok());
  EXPECT_FALSE(ParseLoadSchedule("at 5 rate EP\n", env.workflows).ok());
  EXPECT_FALSE(
      ParseLoadSchedule("at 5 scale-all 2 extra\n", env.workflows).ok());
  EXPECT_FALSE(ParseLoadSchedule("rate EP 1\n", env.workflows).ok());
}

TEST(LoadScheduleTest, ValidateRejectsBadEvents) {
  LoadSchedule schedule;
  schedule.events = {{-1.0, LoadAction::kSetRate, 0, 1.0}};
  EXPECT_FALSE(schedule.Validate(1).ok());
  schedule.events = {{1.0, LoadAction::kSetRate, 5, 1.0}};
  EXPECT_FALSE(schedule.Validate(1).ok());
  schedule.events = {{1.0, LoadAction::kScale, 0, -2.0}};
  EXPECT_FALSE(schedule.Validate(1).ok());
  // scale-all ignores the workflow index.
  schedule.events = {{1.0, LoadAction::kScaleAll, 99, 2.0}};
  EXPECT_TRUE(schedule.Validate(1).ok());
}

TEST(LoadScheduleTest, RatesAtReplaysInOrder) {
  LoadSchedule schedule;
  schedule.events = {{300.0, LoadAction::kScaleAll, 0, 2.0},
                     {100.0, LoadAction::kSetRate, 0, 1.0},
                     {200.0, LoadAction::kScale, 0, 3.0}};
  const std::vector<double> base = {0.5};
  auto at_0 = schedule.RatesAt(0.0, base);
  ASSERT_TRUE(at_0.ok());
  EXPECT_DOUBLE_EQ((*at_0)[0], 0.5);
  auto at_150 = schedule.RatesAt(150.0, base);
  ASSERT_TRUE(at_150.ok());
  EXPECT_DOUBLE_EQ((*at_150)[0], 1.0);
  auto at_250 = schedule.RatesAt(250.0, base);
  ASSERT_TRUE(at_250.ok());
  EXPECT_DOUBLE_EQ((*at_250)[0], 3.0);
  // An event exactly at the query instant has applied.
  auto at_300 = schedule.RatesAt(300.0, base);
  ASSERT_TRUE(at_300.ok());
  EXPECT_DOUBLE_EQ((*at_300)[0], 6.0);
}

TEST(LoadScheduleTest, SliceShiftsToLocalClock) {
  LoadSchedule schedule;
  schedule.events = {{100.0, LoadAction::kSetRate, 0, 1.0},
                     {250.0, LoadAction::kScale, 0, 2.0},
                     {400.0, LoadAction::kScaleAll, 0, 0.5}};
  const LoadSchedule slice = schedule.Slice(200.0, 400.0);
  ASSERT_EQ(slice.events.size(), 1u);
  EXPECT_DOUBLE_EQ(slice.events[0].time, 50.0);
  EXPECT_EQ(slice.events[0].action, LoadAction::kScale);
  // Boundaries: `from` inclusive, `to` exclusive.
  EXPECT_EQ(schedule.Slice(100.0, 101.0).events.size(), 1u);
  EXPECT_EQ(schedule.Slice(99.0, 100.0).events.size(), 0u);
}

TEST(LoadScheduleSimTest, RateIncreaseRaisesArrivals) {
  const Environment env = Ep(0.2);
  SimulationOptions options;
  options.config = Configuration({2, 2, 3});
  options.duration = 4000.0;
  options.warmup = 0.0;
  options.seed = 11;
  options.enable_failures = false;

  const SimulationResult steady = RunSim(env, options);

  SimulationOptions shifted = options;
  shifted.load.events = {{2000.0, LoadAction::kScaleAll, 0, 5.0}};
  const SimulationResult ramped = RunSim(env, shifted);

  // 5x the rate over the second half: clearly more instances started.
  const int64_t steady_started = steady.workflows.at("EP").started;
  const int64_t ramped_started = ramped.workflows.at("EP").started;
  EXPECT_GT(ramped_started, steady_started + steady_started / 2);
}

TEST(LoadScheduleSimTest, ZeroRateStopsAndRestartsArrivals) {
  const Environment env = Ep(1.0);
  SimulationOptions options;
  options.config = Configuration({2, 2, 3});
  options.duration = 3000.0;
  options.warmup = 0.0;
  options.seed = 3;
  options.enable_failures = false;
  options.record_audit_trail = true;
  // Silence in [1000, 2000), then resume.
  options.load.events = {{1000.0, LoadAction::kSetRate, 0, 0.0},
                         {2000.0, LoadAction::kSetRate, 0, 1.0}};
  const SimulationResult result = RunSim(env, options);

  int64_t before = 0, during = 0, after = 0;
  for (const auto& arrival : result.trail.arrivals()) {
    if (arrival.arrival_time < 1000.0) {
      ++before;
    } else if (arrival.arrival_time < 2000.0) {
      ++during;
    } else {
      ++after;
    }
  }
  EXPECT_GT(before, 0);
  // At most the one interarrival already drawn when the rate dropped.
  EXPECT_LE(during, 1);
  EXPECT_GT(after, 0);
}

TEST(LoadScheduleSimTest, ScheduledRunsAreDeterministic) {
  const Environment env = Ep(0.5);
  SimulationOptions options;
  options.config = Configuration({2, 2, 3});
  options.duration = 3000.0;
  options.warmup = 500.0;
  options.seed = 42;
  options.load.events = {{1000.0, LoadAction::kScaleAll, 0, 2.0},
                         {2000.0, LoadAction::kSetRate, 0, 0.25}};
  const SimulationResult a = RunSim(env, options);
  const SimulationResult b = RunSim(env, options);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.workflows.at("EP").completed, b.workflows.at("EP").completed);
  EXPECT_DOUBLE_EQ(a.workflows.at("EP").turnaround.mean(),
                   b.workflows.at("EP").turnaround.mean());
}

}  // namespace
}  // namespace wfms::sim

#include "linalg/dense_matrix.h"

#include <gtest/gtest.h>

namespace wfms::linalg {
namespace {

TEST(DenseMatrixTest, ConstructAndAccess) {
  DenseMatrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 1.5);
  m.At(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(DenseMatrixTest, InitializerList) {
  DenseMatrix m{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m.At(2, 1), 6.0);
}

TEST(DenseMatrixTest, Identity) {
  const DenseMatrix id = DenseMatrix::Identity(3);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(id.At(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(DenseMatrixTest, MatrixVectorProduct) {
  DenseMatrix m{{1, 2}, {3, 4}};
  const Vector y = m.Multiply(Vector{1.0, -1.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
}

TEST(DenseMatrixTest, TransposedProductMatchesExplicitTranspose) {
  DenseMatrix m{{1, 2, 3}, {4, 5, 6}};
  const Vector x{1.0, 2.0};
  const Vector via_method = m.MultiplyTransposed(x);
  const Vector via_transpose = m.Transposed().Multiply(x);
  ASSERT_EQ(via_method.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(via_method[i], via_transpose[i]);
  }
}

TEST(DenseMatrixTest, MatrixMatrixProduct) {
  DenseMatrix a{{1, 2}, {3, 4}};
  DenseMatrix b{{0, 1}, {1, 0}};
  const DenseMatrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 3.0);
}

TEST(DenseMatrixTest, MultiplyByIdentityIsNoop) {
  DenseMatrix a{{1, 2}, {3, 4}};
  const DenseMatrix c = a.Multiply(DenseMatrix::Identity(2));
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(c), 0.0);
}

TEST(DenseMatrixTest, AddAndScale) {
  DenseMatrix a{{1, 2}, {3, 4}};
  DenseMatrix b{{1, 1}, {1, 1}};
  a.Add(b, 2.0);
  EXPECT_DOUBLE_EQ(a.At(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(a.At(1, 1), 6.0);
  a.Scale(0.5);
  EXPECT_DOUBLE_EQ(a.At(1, 0), 2.5);
}

TEST(DenseMatrixTest, MaxAbsDiff) {
  DenseMatrix a{{1, 2}, {3, 4}};
  DenseMatrix b{{1, 2}, {3.5, 4}};
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(b), 0.5);
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(a), 0.0);
}

TEST(VectorOpsTest, DotAxpyNorms) {
  Vector a{1, 2, 3};
  Vector b{4, 5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
  Axpy(2.0, a, &b);
  EXPECT_DOUBLE_EQ(b[0], 6.0);
  EXPECT_DOUBLE_EQ(b[2], 12.0);
  EXPECT_DOUBLE_EQ(NormInf(a), 3.0);
  EXPECT_DOUBLE_EQ(Norm2({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(Sum(a), 6.0);
}

TEST(VectorOpsTest, NormalizeL1MakesProbabilityVector) {
  Vector v{1.0, 3.0};
  NormalizeL1(&v);
  EXPECT_DOUBLE_EQ(v[0], 0.25);
  EXPECT_DOUBLE_EQ(v[1], 0.75);
}

TEST(VectorOpsTest, MaxAbsDiff) {
  EXPECT_DOUBLE_EQ(MaxAbsDiff({1, 2}, {1, 2.5}), 0.5);
}

}  // namespace
}  // namespace wfms::linalg

file(REMOVE_RECURSE
  "CMakeFiles/wfms_configtool.dir/goals.cc.o"
  "CMakeFiles/wfms_configtool.dir/goals.cc.o.d"
  "CMakeFiles/wfms_configtool.dir/tool.cc.o"
  "CMakeFiles/wfms_configtool.dir/tool.cc.o.d"
  "libwfms_configtool.a"
  "libwfms_configtool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfms_configtool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

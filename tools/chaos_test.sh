#!/usr/bin/env bash
# Kill-and-resume chaos harness for wfmsctl's crash-safe checkpointing.
#
# Baseline: an uninterrupted `wfmsctl recommend`. Chaos: run the same
# search with checkpointing and a deterministic self-SIGKILL after the
# N-th checkpoint write, then resume; N grows 1, 2, 4, ... so every
# attempt dies strictly later than the last (a fixed kill point would
# re-kill each resume at the same boundary forever). The run that
# finally outlives its kill budget must exit with the baseline's code and
# byte-identical stdout — the recommendation survives any number of
# crashes without drift or rework.
#
# usage: chaos_test.sh <wfmsctl> <workdir> <method>
set -u

WFMSCTL="$1"
WORKDIR="$2"
METHOD="${3:-greedy}"

ARGS=(recommend --scenario ep --method "$METHOD" --max-replicas 4
      --iterations 300)
BASE="$WORKDIR/chaos_${METHOD}_base.out"
RUN="$WORKDIR/chaos_${METHOD}_run.out"
ERR="$WORKDIR/chaos_${METHOD}_run.err"
CK="$WORKDIR/chaos_${METHOD}.wfsn"
rm -f "$CK"

"$WFMSCTL" "${ARGS[@]}" > "$BASE"
base_rc=$?
if [ "$base_rc" -ne 0 ] && [ "$base_rc" -ne 3 ]; then
  echo "FAIL: baseline exited $base_rc"
  exit 1
fi

n=1
kills=0
attempts=0
while :; do
  attempts=$((attempts + 1))
  if [ "$attempts" -gt 40 ]; then
    echo "FAIL: no clean exit after $attempts attempts"
    exit 1
  fi
  "$WFMSCTL" "${ARGS[@]}" --checkpoint="$CK" --checkpoint-interval=0 \
    --resume --crash-after-checkpoints "$n" > "$RUN" 2> "$ERR"
  rc=$?
  if [ "$rc" -eq 137 ]; then  # SIGKILLed mid-search, as scripted
    kills=$((kills + 1))
    if [ ! -f "$CK" ]; then
      echo "FAIL: killed after a checkpoint write but no checkpoint file"
      exit 1
    fi
    n=$((n * 2))
    continue
  fi
  break
done

if [ "$kills" -lt 1 ]; then
  echo "FAIL: the harness never managed to kill a run (checkpoints too rare?)"
  exit 1
fi
if [ "$rc" -ne "$base_rc" ]; then
  echo "FAIL: resumed run exited $rc, baseline $base_rc"
  cat "$ERR"
  exit 1
fi
if ! cmp -s "$BASE" "$RUN"; then
  echo "FAIL: resumed recommendation differs from the uninterrupted baseline"
  diff "$BASE" "$RUN"
  exit 1
fi
echo "PASS: $METHOD survived $kills SIGKILLs; final output byte-identical"

// load_driver — hammers a running wfmsd with concurrent pipelined
// requests and cross-checks the daemon's own accounting against the
// driver's ground truth (the acceptance harness of the service PR):
//
//   * every request must end in exactly one terminal disposition
//     (completed | degraded | rejected-overloaded | deadline-exceeded |
//     error) — a missing or duplicate response fails the run;
//   * the daemon's per-disposition counters, scraped from /metrics.json
//     before and after, must agree exactly with the driver's tallies;
//   * client-observed latency quantiles (p50/p90/p99/max) and the
//     daemon's wfms_service_request_seconds histogram land in a
//     machine-readable report (BENCH_daemon.json schema).
//
//   load_driver --port P [--requests 2000] [--connections 50]
//               [--pipeline 25] [--op assess] [--tenant-stripes 4]
//               [--deadline S] [--out BENCH_daemon.json]
//
// Concurrency = connections x pipeline requests in flight; the defaults
// put up to 1250 requests in flight against a worker queue of 64, so the
// run exercises admission shedding and the degradation ladder, not just
// the happy path. Exit 0 iff all invariants hold.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "common/trace.h"
#include "service/client.h"
#include "service/json.h"

namespace wfms {
namespace {

using service::Json;

struct DriverOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  int requests = 2000;
  int connections = 50;
  int pipeline = 25;  // requests in flight per connection
  std::string op = "assess";
  int tenant_stripes = 4;  // requests round-robin over this many tenants
  double deadline_seconds = 0.0;  // per-request; 0 = server default
  std::string out = "BENCH_daemon.json";
  std::string scenario = "ep";
};

struct Tally {
  uint64_t completed = 0;
  uint64_t degraded = 0;
  uint64_t rejected = 0;
  uint64_t deadline = 0;
  uint64_t error = 0;
  uint64_t transport_failures = 0;  // no response at all

  uint64_t answered() const {
    return completed + degraded + rejected + deadline + error;
  }
  void Merge(const Tally& other) {
    completed += other.completed;
    degraded += other.degraded;
    rejected += other.rejected;
    deadline += other.deadline;
    error += other.error;
    transport_failures += other.transport_failures;
  }
};

/// Minimal HTTP/1.0 GET on a throwaway socket; returns the body.
Result<std::string> HttpScrape(const std::string& host, int port,
                               const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Unavailable("socket failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Unavailable("cannot connect to " + host + ":" +
                               std::to_string(port));
  }
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: " + host + "\r\n\r\n";
  size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = ::write(fd, request.data() + off, request.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::Unavailable("scrape write failed");
    }
    off += static_cast<size_t>(n);
  }
  std::string response;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::Unavailable("scrape read failed");
    }
    if (n == 0) break;
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t body_at = response.find("\r\n\r\n");
  if (body_at == std::string::npos) {
    return Status::ParseError("scrape response has no header/body split");
  }
  if (response.compare(0, 12, "HTTP/1.1 200") != 0) {
    return Status::Unavailable("scrape answered: " +
                               response.substr(0, response.find('\r')));
  }
  return response.substr(body_at + 4);
}

/// Counter value from a parsed /metrics.json document (0 when absent).
uint64_t CounterOf(const Json& doc, const std::string& name) {
  const Json* counters = doc.Find("counters");
  if (counters == nullptr) return 0;
  const Json* value = counters->Find(name);
  return value == nullptr ? 0 : static_cast<uint64_t>(value->number());
}

std::string BuildRequestLine(const DriverOptions& options, int index,
                             std::string* trace_id_out) {
  // Cycle a small set of replication vectors so the shared cache gets
  // both hits and misses (the ep scenario has three server types).
  static const std::vector<std::vector<int>> kConfigs = {
      {1, 1, 1}, {2, 2, 3}, {1, 2, 2}, {2, 2, 2}, {3, 3, 3}, {1, 1, 2},
  };
  const std::vector<int>& config = kConfigs[static_cast<size_t>(index) %
                                            kConfigs.size()];
  Json req = Json::Object();
  // Two-step id build: GCC 12's -Wrestrict misreads the fused
  // literal+number concatenation as a potential self-overlap and -Werror
  // trips on the false positive (GCC PR105329).
  std::string id(1, 'r');
  id += std::to_string(index);
  req.Set("id", Json::Str(std::move(id)));
  req.Set("op", Json::Str(options.op));
  req.Set("scenario", Json::Str(options.scenario));
  if (options.tenant_stripes > 0) {
    req.Set("tenant", Json::Str("tenant" + std::to_string(
                                    index % options.tenant_stripes)));
  }
  Json cfg = Json::Array();
  for (int r : config) cfg.Append(Json::Number(r));
  req.Set("config", cfg);
  req.Set("max_wait", Json::Number(0.05));
  req.Set("min_avail", Json::Number(0.99));
  if (options.deadline_seconds > 0.0) {
    req.Set("deadline_seconds", Json::Number(options.deadline_seconds));
  }
  // Every request carries its own minted trace id, so a slow outlier in
  // the driver's table can be looked up verbatim in the daemon's
  // /debug/requests flight recorder.
  const trace::TraceContext ctx = trace::TraceContext::Mint();
  Json trace_field = Json::Object();
  trace_field.Set("trace_id", Json::Str(ctx.trace_id_hex()));
  req.Set("trace", trace_field);
  if (trace_id_out != nullptr) *trace_id_out = ctx.trace_id_hex();
  return req.Dump();
}

/// One answered request, kept so the slowest can be named by trace id.
struct Sample {
  double seconds = 0.0;
  std::string trace_id;
  std::string id;
};

struct WorkerResult {
  Tally tally;
  std::vector<Sample> samples;
  std::vector<std::string> failures;  // invariant violations, verbatim
};

/// One connection worker: keeps up to `pipeline` requests in flight,
/// matching (possibly reordered) responses to requests by id.
void RunWorker(const DriverOptions& options, int worker_index,
               int first_request, int request_count, WorkerResult* out) {
  service::ClientOptions copts;
  copts.host = options.host;
  copts.port = options.port;
  copts.io_timeout_seconds = 300.0;  // the hang detector of last resort
  copts.jitter_seed = 1000 + static_cast<uint64_t>(worker_index);
  service::Client client(copts);
  Status connected = client.Connect();
  if (!connected.ok()) {
    out->failures.push_back("worker " + std::to_string(worker_index) +
                            " cannot connect: " + connected.ToString());
    out->tally.transport_failures += static_cast<uint64_t>(request_count);
    return;
  }

  struct InFlight {
    std::chrono::steady_clock::time_point sent_at;
    std::string trace_id;
  };
  std::map<std::string, InFlight> in_flight;
  int sent = 0;
  int answered = 0;
  while (answered < request_count) {
    // Fill the window.
    while (sent < request_count &&
           in_flight.size() < static_cast<size_t>(options.pipeline)) {
      const int index = first_request + sent;
      std::string trace_id;
      Status pushed =
          client.Send(BuildRequestLine(options, index, &trace_id));
      if (!pushed.ok()) {
        out->failures.push_back("send failed: " + pushed.ToString());
        out->tally.transport_failures += static_cast<uint64_t>(
            request_count - answered);
        return;
      }
      // Same two-step build as BuildRequestLine (GCC PR105329).
      std::string key(1, 'r');
      key += std::to_string(index);
      in_flight.emplace(std::move(key),
                        InFlight{std::chrono::steady_clock::now(),
                                 std::move(trace_id)});
      ++sent;
    }

    Result<std::string> line = client.ReadResponse();
    if (!line.ok()) {
      out->failures.push_back("read failed with " +
                              std::to_string(in_flight.size()) +
                              " in flight: " + line.status().ToString());
      out->tally.transport_failures +=
          static_cast<uint64_t>(request_count - answered);
      return;
    }
    ++answered;
    Result<Json> parsed = Json::Parse(*line);
    if (!parsed.ok()) {
      out->failures.push_back("unparseable response: " + *line);
      out->tally.error += 1;
      continue;
    }
    const std::string id = parsed->GetString("id", "");
    auto started = in_flight.find(id);
    if (started == in_flight.end()) {
      out->failures.push_back("response for unknown/duplicate id '" + id +
                              "'");
    } else {
      Sample sample;
      sample.seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started->second.sent_at)
              .count();
      sample.trace_id = std::move(started->second.trace_id);
      sample.id = id;
      out->samples.push_back(std::move(sample));
      in_flight.erase(started);
    }
    const std::string status = parsed->GetString("status", "");
    if (status == "completed") {
      out->tally.completed += 1;
    } else if (status == "degraded") {
      out->tally.degraded += 1;
    } else if (status == "rejected-overloaded") {
      out->tally.rejected += 1;
    } else if (status == "deadline-exceeded") {
      out->tally.deadline += 1;
    } else if (status == "error") {
      out->tally.error += 1;
    } else {
      out->failures.push_back("unknown disposition '" + status + "' for '" +
                              id + "'");
    }
  }
  if (!in_flight.empty()) {
    out->failures.push_back(std::to_string(in_flight.size()) +
                            " request(s) never answered");
  }
}

double Quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

int Usage() {
  std::fprintf(stderr,
               "usage: load_driver --port P [--host H] [--requests N] "
               "[--connections C]\n"
               "  [--pipeline K] [--op assess|recommend|autotune] "
               "[--tenant-stripes T]\n"
               "  [--deadline S] [--scenario ep|benchmark] [--out FILE]\n");
  return 2;
}

int Main(int argc, char** argv) {
  DriverOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (value == nullptr) return Usage();
    ++i;
    if (arg == "--host") {
      options.host = value;
    } else if (arg == "--port") {
      if (!ParseInt(value, &options.port)) return Usage();
    } else if (arg == "--requests") {
      if (!ParseInt(value, &options.requests)) return Usage();
    } else if (arg == "--connections") {
      if (!ParseInt(value, &options.connections)) return Usage();
    } else if (arg == "--pipeline") {
      if (!ParseInt(value, &options.pipeline)) return Usage();
    } else if (arg == "--op") {
      options.op = value;
    } else if (arg == "--tenant-stripes") {
      if (!ParseInt(value, &options.tenant_stripes)) return Usage();
    } else if (arg == "--deadline") {
      if (!ParseDouble(value, &options.deadline_seconds)) return Usage();
    } else if (arg == "--scenario") {
      options.scenario = value;
    } else if (arg == "--out") {
      options.out = value;
    } else {
      return Usage();
    }
  }
  if (options.port <= 0 || options.requests < 1 ||
      options.connections < 1 || options.pipeline < 1) {
    return Usage();
  }
  options.connections = std::min(options.connections, options.requests);

  // Before-scrape: the counter baseline the run is diffed against.
  auto before = HttpScrape(options.host, options.port, "/metrics.json");
  if (!before.ok()) {
    std::fprintf(stderr, "load_driver: before-scrape failed: %s\n",
                 before.status().ToString().c_str());
    return 1;
  }
  auto before_doc = Json::Parse(*before);
  if (!before_doc.ok()) {
    std::fprintf(stderr, "load_driver: before-scrape unparseable: %s\n",
                 before_doc.status().ToString().c_str());
    return 1;
  }

  const auto run_start = std::chrono::steady_clock::now();
  std::vector<WorkerResult> results(
      static_cast<size_t>(options.connections));
  std::vector<std::thread> workers;
  const int per_worker = options.requests / options.connections;
  const int remainder = options.requests % options.connections;
  int first = 0;
  for (int w = 0; w < options.connections; ++w) {
    const int count = per_worker + (w < remainder ? 1 : 0);
    workers.emplace_back(RunWorker, options, w, first, count, &results[w]);
    first += count;
  }
  for (std::thread& worker : workers) worker.join();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    run_start)
          .count();

  Tally tally;
  std::vector<Sample> samples;
  std::vector<std::string> failures;
  for (WorkerResult& result : results) {
    tally.Merge(result.tally);
    for (Sample& s : result.samples) samples.push_back(std::move(s));
    for (const std::string& f : result.failures) failures.push_back(f);
  }
  std::vector<double> latencies;
  latencies.reserve(samples.size());
  for (const Sample& s : samples) latencies.push_back(s.seconds);
  std::sort(latencies.begin(), latencies.end());
  // Slowest first, for the forensics table and the report.
  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) {
              return a.seconds > b.seconds;
            });
  const size_t slowest_count = std::min<size_t>(10, samples.size());

  // Invariant 1: every request ended in exactly one disposition.
  const uint64_t total = static_cast<uint64_t>(options.requests);
  if (tally.answered() + tally.transport_failures != total) {
    failures.push_back(
        "accounting hole: " + std::to_string(tally.answered()) +
        " answered + " + std::to_string(tally.transport_failures) +
        " transport failures != " + std::to_string(total) + " sent");
  }
  if (tally.transport_failures > 0) {
    failures.push_back(std::to_string(tally.transport_failures) +
                       " request(s) got no response at all");
  }

  // Invariant 2: the daemon's counters moved by exactly our tallies.
  auto after = HttpScrape(options.host, options.port, "/metrics.json");
  if (!after.ok()) {
    std::fprintf(stderr,
                 "load_driver: after-scrape failed (daemon hung or "
                 "crashed?): %s\n",
                 after.status().ToString().c_str());
    return 1;
  }
  auto after_doc = Json::Parse(*after);
  if (!after_doc.ok()) {
    std::fprintf(stderr, "load_driver: after-scrape unparseable\n");
    return 1;
  }
  struct CounterCheck {
    const char* name;
    uint64_t expected;
  };
  const CounterCheck checks[] = {
      {"wfms_service_responses_completed_total", tally.completed},
      {"wfms_service_responses_degraded_total", tally.degraded},
      {"wfms_service_responses_rejected_total", tally.rejected},
      {"wfms_service_responses_deadline_total", tally.deadline},
      {"wfms_service_responses_error_total", tally.error},
  };
  Json server_counters = Json::Object();
  for (const CounterCheck& check : checks) {
    const uint64_t delta = CounterOf(*after_doc, check.name) -
                           CounterOf(*before_doc, check.name);
    server_counters.Set(check.name,
                        Json::Number(static_cast<double>(delta)));
    if (delta != check.expected) {
      failures.push_back(std::string("counter ") + check.name +
                         " moved by " + std::to_string(delta) +
                         ", driver counted " +
                         std::to_string(check.expected));
    }
  }

  // Report (BENCH_daemon.json).
  Json report = Json::Object();
  report.Set("benchmark", Json::Str("wfmsd_load"));
  report.Set("schema_version", Json::Number(1));
  report.Set("requests", Json::Number(options.requests));
  report.Set("connections", Json::Number(options.connections));
  report.Set("pipeline", Json::Number(options.pipeline));
  report.Set("concurrency",
             Json::Number(options.connections * options.pipeline));
  report.Set("op", Json::Str(options.op));
  report.Set("wall_seconds", Json::Number(wall_seconds));
  report.Set("throughput_rps",
             Json::Number(wall_seconds > 0.0
                              ? static_cast<double>(total) / wall_seconds
                              : 0.0));
  Json dispositions = Json::Object();
  dispositions.Set("completed",
                   Json::Number(static_cast<double>(tally.completed)));
  dispositions.Set("degraded",
                   Json::Number(static_cast<double>(tally.degraded)));
  dispositions.Set("rejected_overloaded",
                   Json::Number(static_cast<double>(tally.rejected)));
  dispositions.Set("deadline_exceeded",
                   Json::Number(static_cast<double>(tally.deadline)));
  dispositions.Set("error", Json::Number(static_cast<double>(tally.error)));
  dispositions.Set("transport_failures",
                   Json::Number(static_cast<double>(
                       tally.transport_failures)));
  report.Set("dispositions", dispositions);
  Json latency = Json::Object();
  latency.Set("count",
              Json::Number(static_cast<double>(latencies.size())));
  latency.Set("p50_seconds", Json::Number(Quantile(latencies, 0.50)));
  latency.Set("p90_seconds", Json::Number(Quantile(latencies, 0.90)));
  latency.Set("p99_seconds", Json::Number(Quantile(latencies, 0.99)));
  latency.Set("max_seconds",
              Json::Number(latencies.empty() ? 0.0 : latencies.back()));
  report.Set("client_latency", latency);
  // The slowest requests by name: feed a trace_id to
  // `curl SERVER/debug/requests` to see the server-side phase breakdown.
  Json slowest = Json::Array();
  for (size_t i = 0; i < slowest_count; ++i) {
    Json entry = Json::Object();
    entry.Set("trace_id", Json::Str(samples[i].trace_id));
    entry.Set("id", Json::Str(samples[i].id));
    entry.Set("op", Json::Str(options.op));
    entry.Set("latency_seconds", Json::Number(samples[i].seconds));
    slowest.Append(std::move(entry));
  }
  report.Set("slowest", slowest);
  report.Set("server_counter_deltas", server_counters);
  // The daemon's own latency view of the same port, for offline
  // cross-checks.
  if (const Json* histograms = after_doc->Find("histograms")) {
    if (const Json* h = histograms->Find("wfms_service_request_seconds")) {
      Json server_latency = Json::Object();
      server_latency.Set("p50_seconds",
                         Json::Number(h->GetNumber("p50", 0.0)));
      server_latency.Set("p99_seconds",
                         Json::Number(h->GetNumber("p99", 0.0)));
      server_latency.Set("count", Json::Number(h->GetNumber("count", 0.0)));
      report.Set("server_latency", server_latency);
    }
  }
  report.Set("invariants_ok", Json::Bool(failures.empty()));

  if (!options.out.empty()) {
    std::ofstream out(options.out, std::ios::binary);
    if (out) {
      out << report.Dump() << "\n";
    } else {
      std::fprintf(stderr, "load_driver: cannot write %s\n",
                   options.out.c_str());
      return 1;
    }
  }

  std::printf(
      "load_driver: %d requests over %d connection(s) x %d pipelined in "
      "%.2fs (%.0f req/s)\n",
      options.requests, options.connections, options.pipeline, wall_seconds,
      wall_seconds > 0.0 ? static_cast<double>(total) / wall_seconds : 0.0);
  std::printf(
      "  completed %llu, degraded %llu, rejected %llu, deadline %llu, "
      "error %llu\n",
      static_cast<unsigned long long>(tally.completed),
      static_cast<unsigned long long>(tally.degraded),
      static_cast<unsigned long long>(tally.rejected),
      static_cast<unsigned long long>(tally.deadline),
      static_cast<unsigned long long>(tally.error));
  std::printf(
      "  latency p50 %.1f ms, p90 %.1f ms, p99 %.1f ms, max %.1f ms\n",
      Quantile(latencies, 0.5) * 1e3, Quantile(latencies, 0.9) * 1e3,
      Quantile(latencies, 0.99) * 1e3,
      (latencies.empty() ? 0.0 : latencies.back()) * 1e3);
  if (slowest_count > 0) {
    std::printf("  slowest %zu request(s):\n", slowest_count);
    std::printf("    %-32s %-10s %-10s %s\n", "trace_id", "id", "op",
                "latency_ms");
    for (size_t i = 0; i < slowest_count; ++i) {
      std::printf("    %-32s %-10s %-10s %.1f\n",
                  samples[i].trace_id.c_str(), samples[i].id.c_str(),
                  options.op.c_str(), samples[i].seconds * 1e3);
    }
  }
  for (const std::string& failure : failures) {
    std::fprintf(stderr, "load_driver: INVARIANT VIOLATION: %s\n",
                 failure.c_str());
  }
  return failures.empty() ? 0 : 1;
}

}  // namespace
}  // namespace wfms

int main(int argc, char** argv) { return wfms::Main(argc, argv); }

# Empty dependencies file for wfms_markov.
# This may be replaced when dependencies are built.

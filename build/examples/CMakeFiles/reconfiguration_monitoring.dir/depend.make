# Empty dependencies file for reconfiguration_monitoring.
# This may be replaced when dependencies are built.

#include "service/backend.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "adapt/autotune.h"
#include "common/metrics.h"
#include "common/snapshot.h"
#include "common/trace.h"
#include "configtool/checkpoint.h"
#include "workflow/environment_io.h"
#include "workflow/scenarios.h"

namespace wfms::service {

namespace {

// Service-cache snapshot payload tags (top level; per-entry tags come
// from the checkpoint codec and live in disjoint ranges).
constexpr uint32_t kTagScenarioCount = 1;
constexpr uint32_t kTagEnvText = 2;
constexpr uint32_t kTagFingerprint = 3;
constexpr uint32_t kTagReportCount = 4;
constexpr uint32_t kTagFailureCount = 5;

// Degraded (level 1) searches get at most this much wall clock, however
// generous the request's own deadline is.
constexpr double kDegradedSearchBudgetSeconds = 2.0;
// Autotune horizon clamps: the daemon is an assessment service, not a
// batch simulation farm.
constexpr double kMaxAutotuneDuration = 50000.0;

metrics::Counter& CacheOnlyHitsTotal() {
  static metrics::Counter& counter = metrics::MetricsRegistry::Global()
      .GetCounter("wfms_service_cache_only_hits_total");
  return counter;
}

metrics::Counter& SnapshotWritesTotal() {
  static metrics::Counter& counter = metrics::MetricsRegistry::Global()
      .GetCounter("wfms_service_snapshot_writes_total");
  return counter;
}

metrics::Counter& SnapshotLoadsTotal() {
  static metrics::Counter& counter = metrics::MetricsRegistry::Global()
      .GetCounter("wfms_service_snapshot_loads_total");
  return counter;
}

Response ErrorResponse(const Request& req, Status cause) {
  Response resp;
  resp.id = req.id;
  resp.disposition = Disposition::kError;
  resp.error = cause.ToString();
  return resp;
}

Response ShedResponse(const Request& req, std::string reason) {
  Response resp;
  resp.id = req.id;
  resp.disposition = Disposition::kRejectedOverloaded;
  resp.error = std::move(reason);
  return resp;
}

Response DeadlineResponse(const Request& req, std::string detail) {
  Response resp;
  resp.id = req.id;
  resp.disposition = Disposition::kDeadlineExceeded;
  resp.error = std::move(detail);
  return resp;
}

configtool::Goals GoalsOf(const Request& req) {
  configtool::Goals goals;
  goals.max_waiting_time = req.max_wait;
  goals.min_availability = req.min_avail;
  goals.survive_sites = req.survive_sites;
  goals.survive_partitions = req.survive_partitions;
  goals.degraded_max_waiting_time = req.degraded_max_wait;
  goals.degraded_min_availability = req.degraded_min_avail;
  return goals;
}

Json VectorJson(const std::vector<double>& values) {
  Json array = Json::Array();
  for (double v : values) array.Append(Json::Number(v));
  return array;
}

Json ReplicasJson(const std::vector<int>& replicas) {
  Json array = Json::Array();
  for (int r : replicas) array.Append(Json::Number(r));
  return array;
}

/// Per-contingency survivability verdicts (multi-site assessments with
/// survive goals only).
Json ContingenciesJson(const configtool::Assessment& assessment) {
  Json table = Json::Array();
  for (const configtool::ContingencyAssessment& c :
       assessment.contingencies) {
    Json entry = Json::Object();
    entry.Set("contingency", Json::Str(c.label));
    entry.Set("availability", Json::Number(c.availability));
    entry.Set("max_waiting", Json::Number(c.max_expected_waiting));
    entry.Set("satisfied", Json::Bool(c.satisfied));
    table.Append(std::move(entry));
  }
  return table;
}

/// The deterministic assess payload: pure solver output, no wall-clock,
/// no cache accounting.
Json AssessmentJson(const configtool::Assessment& assessment) {
  Json result = Json::Object();
  result.Set("config", ReplicasJson(assessment.config.replicas));
  result.Set("cost", Json::Number(assessment.cost));
  result.Set("satisfies", Json::Bool(assessment.Satisfies()));
  result.Set("availability",
             Json::Number(assessment.performability.availability));
  result.Set("max_waiting",
             Json::Number(assessment.performability.max_expected_waiting));
  result.Set("expected_waiting",
             VectorJson(assessment.performability.expected_waiting));
  result.Set("prob_saturated",
             Json::Number(assessment.performability.prob_saturated));
  result.Set("prob_degraded",
             Json::Number(assessment.performability.prob_degraded));
  result.Set("meets_waiting_goal", Json::Bool(assessment.meets_waiting_goal));
  result.Set("meets_availability_goal",
             Json::Bool(assessment.meets_availability_goal));
  if (assessment.config.has_sites()) {
    result.Set("site_config", ReplicasJson(assessment.config.site_counts));
  }
  if (!assessment.contingencies.empty()) {
    result.Set("contingencies", ContingenciesJson(assessment));
    result.Set("meets_survivability_goal",
               Json::Bool(assessment.meets_survivability_goal));
  }
  return result;
}

}  // namespace

struct Backend::ScenarioState {
  std::unique_ptr<workflow::Environment> env;
  std::string env_text;  // canonical serialized form (the map key)
  uint64_t fingerprint = 0;
  std::unique_ptr<configtool::ConfigurationTool> tool;
};

uint64_t ServiceFingerprint(
    const workflow::Environment& env,
    const performability::PerformabilityOptions& options) {
  // Everything that changes what a cached report means. Same TLV-then-FNV
  // scheme as configtool::SearchFingerprint, but over solver options
  // instead of search inputs: the service cache is goal-independent (the
  // memoized report is; goals are applied per request).
  SnapshotWriter w;
  w.Str(1, workflow::SerializeEnvironment(env));
  const markov::SteadyStateOptions& solver = options.availability.solver;
  w.U32(2, static_cast<uint32_t>(solver.method));
  w.I64(3, solver.max_iterations);
  w.F64(4, solver.tolerance);
  w.F64(5, solver.sor_omega);
  w.U64(6, solver.max_dense_states);
  w.U32(7, static_cast<uint32_t>(solver.lumping));
  w.U64(8, solver.lumping_min_states);
  w.U32(9, static_cast<uint32_t>(options.saturation_policy));
  w.F64(10, options.penalty_waiting_time);
  return Fnv1a64(w.payload());
}

Backend::Backend(const BackendOptions& options) : options_(options) {}
Backend::~Backend() = default;

Result<Backend::ScenarioState*> Backend::GetScenario(
    const std::string& scenario) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Fast path: this exact request string resolved before (builtin name,
  // canonical text, or previously seen inline text).
  if (auto alias = aliases_.find(scenario); alias != aliases_.end()) {
    return scenarios_.at(alias->second).get();
  }

  Result<workflow::Environment> parsed = [&]() {
    if (scenario == "ep") return workflow::EpEnvironment();
    if (scenario == "geo") return workflow::GeoEpEnvironment();
    if (scenario == "benchmark") return workflow::BenchmarkEnvironment();
    return workflow::ParseEnvironment(scenario);
  }();
  if (!parsed.ok()) {
    return parsed.status().WithContext("resolving scenario");
  }

  auto state = std::make_unique<ScenarioState>();
  state->env = std::make_unique<workflow::Environment>(*std::move(parsed));
  state->env_text = workflow::SerializeEnvironment(*state->env);

  // States are keyed by the canonical serialization, so two request
  // strings naming the same environment (a builtin name and its exported
  // text, say) share one tool — and one cache.
  auto it = scenarios_.find(state->env_text);
  if (it == scenarios_.end()) {
    state->fingerprint =
        ServiceFingerprint(*state->env, options_.tool_options);
    WFMS_ASSIGN_OR_RETURN(
        configtool::ConfigurationTool tool,
        configtool::ConfigurationTool::Create(*state->env,
                                              options_.tool_options));
    state->tool =
        std::make_unique<configtool::ConfigurationTool>(std::move(tool));
    // Single-lane tools: request-level parallelism comes from the server's
    // worker pool; inline assessment keeps each request deterministic and
    // makes the degradation ladder's queue depth meaningful.
    state->tool->set_num_threads(1);
    state->tool->set_cache_limits(options_.cache_limits);
    const std::string key = state->env_text;
    it = scenarios_.emplace(key, std::move(state)).first;
  }
  aliases_.emplace(scenario, it->first);
  return it->second.get();
}

Response Backend::Handle(const Request& req, int degrade_level,
                         std::chrono::steady_clock::time_point admitted_at,
                         RequestTelemetry* telemetry) {
  const auto start = std::chrono::steady_clock::now();
  // The request's trace context rides the telemetry struct (explicitly —
  // never a thread-local — so pool workers cannot mix contexts).
  std::string span_name = "service/";
  span_name += OpName(req.op);
  trace::TraceSpan span(span_name, "service",
                        telemetry != nullptr ? telemetry->context
                                             : trace::TraceContext{});
  const trace::TraceContext handler_ctx = span.context();
  const auto phase_seconds = [](std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  Response resp = [&]() -> Response {
    if (req.op == Op::kPing) {
      Response pong;
      pong.id = req.id;
      Json result = Json::Object();
      result.Set("pong", Json::Bool(true));
      pong.result = std::move(result);
      return pong;
    }

    double deadline_seconds = req.deadline_seconds > 0.0
                                  ? req.deadline_seconds
                                  : options_.default_deadline_seconds;
    const bool has_deadline = deadline_seconds > 0.0;
    const auto deadline_point =
        admitted_at + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(
                              has_deadline ? deadline_seconds : 0.0));
    double remaining = std::numeric_limits<double>::infinity();
    if (has_deadline) {
      remaining = std::chrono::duration<double>(deadline_point - start)
                      .count();
      if (remaining <= 0.0) {
        // Expired while queued: answer immediately instead of burning a
        // solve on a request nobody is waiting for.
        return DeadlineResponse(
            req, "deadline of " + std::to_string(deadline_seconds) +
                     "s expired in queue");
      }
    }

    const auto resolve_start = std::chrono::steady_clock::now();
    auto scenario = GetScenario(req.scenario);
    if (telemetry != nullptr) {
      telemetry->phases.emplace_back("resolve_scenario",
                                     phase_seconds(resolve_start));
    }
    if (!scenario.ok()) return ErrorResponse(req, scenario.status());
    ScenarioState& state = **scenario;

    const auto execute_start = std::chrono::steady_clock::now();
    Response out = [&]() -> Response {
      switch (req.op) {
        case Op::kAssess:
          return HandleAssess(req, state, degrade_level, remaining,
                              handler_ctx, telemetry);
        case Op::kRecommend:
          return HandleRecommend(req, state, degrade_level, remaining,
                                 handler_ctx, telemetry);
        case Op::kAutotune:
          return HandleAutotune(req, state, degrade_level, remaining,
                                handler_ctx, telemetry);
        case Op::kPing:
          break;  // handled above
      }
      return ErrorResponse(req, Status::Internal("unhandled op"));
    }();
    if (telemetry != nullptr) {
      telemetry->phases.emplace_back("execute",
                                     phase_seconds(execute_start));
    }

    // Uniform deadline enforcement: a request that overshot its deadline
    // reports deadline-exceeded no matter which op or rung it took. The
    // (deterministic) result is dropped — a half-time answer under a
    // violated deadline would be misleading.
    if (has_deadline && out.disposition == Disposition::kCompleted &&
        std::chrono::steady_clock::now() > deadline_point) {
      return DeadlineResponse(
          req, "deadline of " + std::to_string(deadline_seconds) +
                   "s exceeded while solving");
    }
    return out;
  }();

  resp.id = req.id;
  resp.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return resp;
}

Response Backend::HandleAssess(const Request& req, ScenarioState& state,
                               int degrade_level, double remaining_seconds,
                               const trace::TraceContext& trace,
                               RequestTelemetry* telemetry) {
  workflow::Configuration config;
  if (!req.site_config.empty()) {
    const size_t num_sites = state.env->topology.num_sites();
    if (num_sites == 0) {
      return ErrorResponse(
          req, Status::InvalidArgument(
                   "'site_config' requires a scenario with a sites section"));
    }
    config =
        workflow::Configuration::FromSiteCounts(req.site_config, num_sites);
    if (Status valid =
            config.ValidateSites(state.env->num_server_types(), num_sites);
        !valid.ok()) {
      return ErrorResponse(req, valid.WithContext("bad 'site_config'"));
    }
  } else {
    config.replicas = req.config;
    if (Status valid = config.Validate(state.env->num_server_types());
        !valid.ok()) {
      return ErrorResponse(req, valid.WithContext("bad 'config'"));
    }
  }

  const bool was_cached = state.tool->HasCachedAssessment(config.CacheKey());
  if (telemetry != nullptr) telemetry->cache_hit = was_cached;
  if (degrade_level >= 2 && !was_cached) {
    // Cache-only rung: answers come from the memoization cache alone; a
    // miss is shed rather than starting a solve under heavy load.
    return ShedResponse(req,
                        "cache-only degraded mode and this configuration "
                        "is not cached");
  }

  Result<configtool::Assessment> assessed = [&]() {
    if (std::isfinite(remaining_seconds)) {
      return state.tool->AssessWithDeadline(
          config, GoalsOf(req),
          std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(remaining_seconds)),
          configtool::CostModel::Uniform(), trace);
    }
    if (trace.valid()) {
      // No deadline, but a traced request: the epoch deadline_point means
      // "unbounded" to the deadline machinery while the context still
      // rides SearchOptions::trace down into the solver spans.
      return state.tool->AssessWithDeadline(
          config, GoalsOf(req), std::chrono::steady_clock::time_point{},
          configtool::CostModel::Uniform(), trace);
    }
    return state.tool->Assess(config, GoalsOf(req));
  }();
  if (!assessed.ok()) return ErrorResponse(req, assessed.status());
  if (telemetry != nullptr && !was_cached) {
    telemetry->solver_rungs = assessed->performability.solver_rungs;
  }
  if (!assessed->error.ok()) {
    if (assessed->error.code() == StatusCode::kDeadlineExceeded) {
      return DeadlineResponse(req, assessed->error.ToString());
    }
    return ErrorResponse(req, assessed->error);
  }

  Response resp;
  resp.id = req.id;
  resp.result = AssessmentJson(*assessed);
  if (degrade_level >= 2) {
    CacheOnlyHitsTotal().Increment();
    resp.disposition = Disposition::kDegraded;
    resp.degrade_reason = "cache-only";
  } else if (degrade_level == 1) {
    // Assess is already a single bounded solve; level 1 only labels the
    // response so clients see the server is shedding fidelity elsewhere.
    resp.disposition = Disposition::kDegraded;
    resp.degrade_reason = "degraded load level 1";
  }
  return resp;
}

Response Backend::HandleRecommend(const Request& req, ScenarioState& state,
                                  int degrade_level,
                                  double remaining_seconds,
                                  const trace::TraceContext& trace,
                                  RequestTelemetry* telemetry) {
  if (degrade_level >= 2) {
    return ShedResponse(req, "recommend shed in cache-only degraded mode");
  }

  std::string method = req.method;
  std::string degrade_reason;
  if (degrade_level >= 1) {
    // greedy-site is already the cheapest multi-site strategy (and the
    // classic greedy cannot place sites), so it is not downgraded.
    if (method != "greedy" && method != "greedy-site") {
      degrade_reason = "strategy downgraded " + method + " -> greedy";
      method = "greedy";
    }
    if (!(remaining_seconds < kDegradedSearchBudgetSeconds)) {
      remaining_seconds = kDegradedSearchBudgetSeconds;
      degrade_reason += degrade_reason.empty() ? "" : "; ";
      degrade_reason += "search budget tightened to " +
                        std::to_string(kDegradedSearchBudgetSeconds) + "s";
    }
  }

  configtool::SearchConstraints constraints;
  constraints.max_replicas.assign(state.env->num_server_types(),
                                  std::max(1, req.max_replicas));
  configtool::SearchOptions search;
  search.trace = trace;
  if (std::isfinite(remaining_seconds)) {
    search.deadline_seconds = remaining_seconds;
  }
  const configtool::Goals goals = GoalsOf(req);
  const configtool::CostModel cost = configtool::CostModel::Uniform();
  configtool::AnnealingOptions annealing;
  annealing.iterations = std::max(1, req.iterations);

  Result<configtool::SearchResult> result =
      Status::InvalidArgument("bad method '" + method +
                              "' (greedy|greedy-site|exhaustive|annealing|"
                              "bnb)");
  if (method == "greedy") {
    result = state.tool->GreedyMinCost(goals, constraints, cost, search);
  } else if (method == "greedy-site") {
    configtool::SiteSearchConstraints site_constraints;
    site_constraints.max_per_type = std::max(1, req.max_replicas);
    result = state.tool->GreedySiteMinCost(goals, site_constraints, cost,
                                           search);
  } else if (method == "exhaustive") {
    result = state.tool->ExhaustiveMinCost(goals, constraints, cost, search);
  } else if (method == "annealing") {
    result = state.tool->AnnealingMinCost(goals, constraints, cost, annealing,
                                          search);
  } else if (method == "bnb") {
    result = state.tool->BranchAndBoundMinCost(goals, constraints, cost,
                                               search);
  }
  if (!result.ok()) return ErrorResponse(req, result.status());
  if (result->termination.code() == StatusCode::kDeadlineExceeded) {
    return DeadlineResponse(req, result->termination.ToString());
  }
  if (!result->termination.ok()) {
    return ErrorResponse(req, result->termination);
  }
  if (telemetry != nullptr) {
    // The winner's solve cost stands in for the whole search (per-candidate
    // rungs live in the trace, not the flight record).
    telemetry->solver_rungs = result->assessment.performability.solver_rungs;
  }

  Response resp;
  resp.id = req.id;
  Json payload = Json::Object();
  payload.Set("config", ReplicasJson(result->config.replicas));
  if (result->config.has_sites()) {
    payload.Set("site_config", ReplicasJson(result->config.site_counts));
  }
  payload.Set("cost", Json::Number(result->cost));
  payload.Set("satisfied", Json::Bool(result->satisfied));
  payload.Set("method", Json::Str(method));
  payload.Set("evaluations", Json::Number(result->evaluations));
  payload.Set("failed_candidates",
              Json::Number(static_cast<double>(
                  result->failed_candidates.size())));
  if (result->assessment.error.ok() &&
      !result->assessment.performability.expected_waiting.empty()) {
    payload.Set("availability",
                Json::Number(result->assessment.performability.availability));
    payload.Set(
        "max_waiting",
        Json::Number(result->assessment.performability.max_expected_waiting));
  }
  if (!result->assessment.contingencies.empty()) {
    payload.Set("contingencies", ContingenciesJson(result->assessment));
    payload.Set(
        "meets_survivability_goal",
        Json::Bool(result->assessment.meets_survivability_goal));
  }
  resp.result = std::move(payload);
  if (!degrade_reason.empty()) {
    resp.disposition = Disposition::kDegraded;
    resp.degrade_reason = degrade_reason;
  }
  return resp;
}

Response Backend::HandleAutotune(const Request& req, ScenarioState& state,
                                 int degrade_level,
                                 double remaining_seconds,
                                 const trace::TraceContext& trace,
                                 RequestTelemetry* telemetry) {
  (void)telemetry;  // autotune's cost shows up in its trace spans
  if (degrade_level >= 1) {
    // Autotune simulates whole control horizons — the most expensive op
    // by far. It is the first thing the ladder sheds.
    return ShedResponse(req, "autotune shed under degraded load");
  }

  adapt::AutotuneOptions options;
  options.trace = trace;
  if (!req.config.empty()) {
    options.initial.replicas = req.config;
    if (Status valid =
            options.initial.Validate(state.env->num_server_types());
        !valid.ok()) {
      return ErrorResponse(req, valid.WithContext("bad 'config'"));
    }
  } else {
    options.initial =
        workflow::Configuration::Ones(state.env->num_server_types());
  }
  options.duration =
      std::clamp(req.duration, 100.0, kMaxAutotuneDuration);
  options.epoch = std::clamp(req.epoch, 100.0, options.duration);
  options.controller.goals = GoalsOf(req);
  options.controller.constraints.max_replicas.assign(
      state.env->num_server_types(), std::max(1, req.max_replicas));
  options.controller.max_turnaround = req.max_turnaround;
  auto method = adapt::ParseSearchMethod(req.method);
  if (!method.ok()) return ErrorResponse(req, method.status());
  options.controller.method = *method;
  if (std::isfinite(remaining_seconds)) {
    options.controller.search_deadline_seconds = remaining_seconds;
  }

  auto report = adapt::RunAutotune(*state.env, options);
  if (!report.ok()) return ErrorResponse(req, report.status());

  Response resp;
  resp.id = req.id;
  Json payload = Json::Object();
  payload.Set("final_config", ReplicasJson(report->final_config.replicas));
  payload.Set("reconfigurations", Json::Number(report->reconfigurations));
  payload.Set("epochs",
              Json::Number(static_cast<double>(report->epochs.size())));
  payload.Set("events_total",
              Json::Number(static_cast<double>(report->events_total)));
  resp.result = std::move(payload);
  return resp;
}

Status Backend::SaveCacheSnapshot() const {
  if (options_.snapshot_path.empty()) return Status::OK();
  trace::TraceSpan span("service/snapshot_write", "service");

  // Stable iteration order (map key = scenario string / env text) keeps
  // the snapshot deterministic for a deterministic request history.
  std::vector<ScenarioState*> states;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    states.reserve(scenarios_.size());
    for (const auto& [key, state] : scenarios_) {
      if (state != nullptr && state->tool != nullptr) {
        states.push_back(state.get());
      }
    }
  }

  SnapshotWriter w;
  w.U64(kTagScenarioCount, states.size());
  for (ScenarioState* state : states) {
    const configtool::ConfigurationTool::CacheDump dump =
        state->tool->DumpAssessmentCache();
    w.Str(kTagEnvText, state->env_text);
    w.U64(kTagFingerprint, state->fingerprint);
    w.U64(kTagReportCount, dump.reports.size());
    for (const auto& [replicas, report] : dump.reports) {
      configtool::EncodeCachedReport(&w, replicas, report);
    }
    w.U64(kTagFailureCount, dump.failures.size());
    for (const auto& [replicas, failure] : dump.failures) {
      configtool::EncodeCachedFailure(&w, replicas, failure);
    }
  }
  Status written = WriteSnapshotFile(options_.snapshot_path,
                                     SnapshotKind::kServiceCache, w.payload())
                       .WithContext("writing service cache snapshot");
  if (written.ok()) SnapshotWritesTotal().Increment();
  return written;
}

Result<Backend::SnapshotLoadStats> Backend::LoadCacheSnapshot() {
  SnapshotLoadStats stats;
  if (options_.snapshot_path.empty()) return stats;
  auto payload =
      ReadSnapshotFile(options_.snapshot_path, SnapshotKind::kServiceCache);
  if (payload.status().code() == StatusCode::kNotFound) {
    return stats;  // first boot: cold start, not an error
  }
  WFMS_RETURN_NOT_OK(payload.status());

  SnapshotReader r(*payload);
  WFMS_ASSIGN_OR_RETURN(uint64_t scenario_count, r.U64(kTagScenarioCount));
  for (uint64_t s = 0; s < scenario_count; ++s) {
    WFMS_ASSIGN_OR_RETURN(std::string env_text, r.Str(kTagEnvText));
    WFMS_ASSIGN_OR_RETURN(uint64_t stored_fingerprint,
                          r.U64(kTagFingerprint));

    // Decode the entry's cache unconditionally (the reader is positional)
    // and decide afterwards whether it may be used.
    configtool::ConfigurationTool::CacheDump dump;
    WFMS_ASSIGN_OR_RETURN(uint64_t report_count, r.U64(kTagReportCount));
    dump.reports.reserve(report_count);
    for (uint64_t i = 0; i < report_count; ++i) {
      WFMS_ASSIGN_OR_RETURN(auto entry, configtool::DecodeCachedReport(&r));
      dump.reports.push_back(std::move(entry));
    }
    WFMS_ASSIGN_OR_RETURN(uint64_t failure_count, r.U64(kTagFailureCount));
    dump.failures.reserve(failure_count);
    for (uint64_t i = 0; i < failure_count; ++i) {
      WFMS_ASSIGN_OR_RETURN(auto entry, configtool::DecodeCachedFailure(&r));
      dump.failures.push_back(std::move(entry));
    }

    auto parsed = workflow::ParseEnvironment(env_text);
    if (!parsed.ok()) {
      stats.rejected.push_back(
          "snapshot scenario " + std::to_string(s) +
          " rejected: " + parsed.status().ToString());
      continue;
    }
    const uint64_t current_fingerprint =
        ServiceFingerprint(*parsed, options_.tool_options);
    if (current_fingerprint != stored_fingerprint) {
      // Clean staleness error: the snapshot was taken under different
      // solver options (or an incompatible environment encoding). The
      // scenario starts cold instead of mixing in reports that no longer
      // mean the same thing.
      stats.rejected.push_back(
          "snapshot scenario " + std::to_string(s) +
          " rejected: fingerprint mismatch (snapshot " +
          std::to_string(stored_fingerprint) + ", current " +
          std::to_string(current_fingerprint) +
          ") — taken under different solver options; starting cold");
      continue;
    }

    WFMS_ASSIGN_OR_RETURN(ScenarioState * state, GetScenario(env_text));
    state->tool->RestoreAssessmentCache(dump);
    ++stats.scenarios;
    stats.reports += dump.reports.size();
    stats.failures += dump.failures.size();
  }
  if (!r.AtEnd()) {
    return Status::ParseError("service cache snapshot has trailing bytes");
  }
  SnapshotLoadsTotal().Increment();
  return stats;
}

size_t Backend::TotalCachedReports() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t total = 0;
  for (const auto& [key, state] : scenarios_) {
    if (state != nullptr && state->tool != nullptr) {
      total += state->tool->cache_stats().entries;
    }
  }
  return total;
}

}  // namespace wfms::service

file(REMOVE_RECURSE
  "libwfms_queueing.a"
)

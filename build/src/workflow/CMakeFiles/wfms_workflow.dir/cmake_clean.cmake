file(REMOVE_RECURSE
  "CMakeFiles/wfms_workflow.dir/audit_trail.cc.o"
  "CMakeFiles/wfms_workflow.dir/audit_trail.cc.o.d"
  "CMakeFiles/wfms_workflow.dir/calibration.cc.o"
  "CMakeFiles/wfms_workflow.dir/calibration.cc.o.d"
  "CMakeFiles/wfms_workflow.dir/configuration.cc.o"
  "CMakeFiles/wfms_workflow.dir/configuration.cc.o.d"
  "CMakeFiles/wfms_workflow.dir/environment.cc.o"
  "CMakeFiles/wfms_workflow.dir/environment.cc.o.d"
  "CMakeFiles/wfms_workflow.dir/environment_io.cc.o"
  "CMakeFiles/wfms_workflow.dir/environment_io.cc.o.d"
  "CMakeFiles/wfms_workflow.dir/scenarios.cc.o"
  "CMakeFiles/wfms_workflow.dir/scenarios.cc.o.d"
  "libwfms_workflow.a"
  "libwfms_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfms_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

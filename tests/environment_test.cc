#include "workflow/environment.h"

#include <gtest/gtest.h>

#include "workflow/configuration.h"
#include "workflow/scenarios.h"

namespace wfms::workflow {
namespace {

TEST(ServerTypeRegistryTest, AddAndLookup) {
  ServerTypeRegistry registry;
  auto idx = registry.AddServerType({"comm", ServerKind::kCommunicationServer,
                                     queueing::ExponentialService(0.01), 0.001,
                                     0.1});
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 0u);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.type(0).name, "comm");
  ASSERT_TRUE(registry.IndexOf("comm").ok());
  EXPECT_FALSE(registry.IndexOf("missing").ok());
}

TEST(ServerTypeRegistryTest, RejectsDuplicatesAndEmptyNames) {
  ServerTypeRegistry registry;
  ASSERT_TRUE(registry
                  .AddServerType({"a", ServerKind::kWorkflowEngine,
                                  queueing::ExponentialService(1), 0.1, 0.1})
                  .ok());
  EXPECT_EQ(registry
                .AddServerType({"a", ServerKind::kWorkflowEngine,
                                queueing::ExponentialService(1), 0.1, 0.1})
                .status()
                .code(),
            StatusCode::kAlreadyExists);
  EXPECT_FALSE(registry
                   .AddServerType({"", ServerKind::kWorkflowEngine,
                                   queueing::ExponentialService(1), 0.1, 0.1})
                   .ok());
}

TEST(ServerTypeRegistryTest, ValidateChecksRates) {
  ServerTypeRegistry registry;
  ASSERT_TRUE(registry
                  .AddServerType({"a", ServerKind::kWorkflowEngine,
                                  queueing::ExponentialService(1), 0.0, 0.1})
                  .ok());
  EXPECT_FALSE(registry.Validate().ok());
  ServerTypeRegistry empty;
  EXPECT_FALSE(empty.Validate().ok());
}

TEST(ServerKindTest, Names) {
  EXPECT_STREQ(ServerKindToString(ServerKind::kCommunicationServer),
               "communication-server");
  EXPECT_STREQ(ServerKindToString(ServerKind::kWorkflowEngine),
               "workflow-engine");
  EXPECT_STREQ(ServerKindToString(ServerKind::kApplicationServer),
               "application-server");
}

TEST(ActivityLoadTableTest, SetAndGet) {
  ActivityLoadTable table;
  ASSERT_TRUE(table.SetLoad("act", {2, 3, 3}).ok());
  const linalg::Vector load = table.LoadOf("act", 3);
  EXPECT_DOUBLE_EQ(load[1], 3.0);
  EXPECT_TRUE(table.HasActivity("act"));
  EXPECT_FALSE(table.HasActivity("other"));
  // Unknown activities induce no load.
  const linalg::Vector zero = table.LoadOf("other", 3);
  for (double v : zero) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ActivityLoadTableTest, Validation) {
  ActivityLoadTable table;
  EXPECT_FALSE(table.SetLoad("", {1}).ok());
  EXPECT_FALSE(table.SetLoad("x", {-1, 2}).ok());
  ASSERT_TRUE(table.SetLoad("x", {1, 2}).ok());
  EXPECT_TRUE(table.Validate(2).ok());
  EXPECT_FALSE(table.Validate(3).ok());
}

TEST(ConfigurationTest, Basics) {
  Configuration c({2, 1, 3});
  EXPECT_EQ(c.num_types(), 3u);
  EXPECT_EQ(c.total_servers(), 6);
  EXPECT_EQ(c.ToString(), "(2,1,3)");
  EXPECT_TRUE(c.Validate(3).ok());
  EXPECT_FALSE(c.Validate(2).ok());
  EXPECT_FALSE(Configuration({1, 0}).Validate(2).ok());
  EXPECT_EQ(Configuration::Ones(3), Configuration({1, 1, 1}));
  EXPECT_EQ(Configuration::Uniform(2, 3), Configuration({3, 3}));
  EXPECT_LT(Configuration({1, 1}), Configuration({1, 2}));
}

TEST(ScenarioTest, EpEnvironmentIsValid) {
  auto env = EpEnvironment();
  ASSERT_TRUE(env.ok()) << env.status();
  EXPECT_EQ(env->num_server_types(), 3u);
  EXPECT_EQ(env->workflows.size(), 1u);
  EXPECT_EQ(env->charts.size(), 3u);
  // §5.2 rates are wired through.
  const size_t comm = *env->servers.IndexOf("comm");
  const size_t engine = *env->servers.IndexOf("engine");
  const size_t app = *env->servers.IndexOf("app");
  EXPECT_DOUBLE_EQ(env->servers.type(comm).failure_rate, 1.0 / 43200.0);
  EXPECT_DOUBLE_EQ(env->servers.type(engine).failure_rate, 1.0 / 10080.0);
  EXPECT_DOUBLE_EQ(env->servers.type(app).failure_rate, 1.0 / 1440.0);
  EXPECT_DOUBLE_EQ(env->servers.type(app).repair_rate, 0.1);
}

TEST(ScenarioTest, EpLoadsFollowFig1Pattern) {
  auto env = EpEnvironment();
  ASSERT_TRUE(env.ok());
  // Automated activity: 3 requests at the engine, 2 at the comm server,
  // 3 at the app server (Fig. 1).
  const linalg::Vector auto_load = env->loads.LoadOf("cc_check", 3);
  EXPECT_DOUBLE_EQ(auto_load[0], 2.0);  // comm
  EXPECT_DOUBLE_EQ(auto_load[1], 3.0);  // engine
  EXPECT_DOUBLE_EQ(auto_load[2], 3.0);  // app
  // Interactive activity: no application server involvement.
  const linalg::Vector inter_load = env->loads.LoadOf("new_order", 3);
  EXPECT_DOUBLE_EQ(inter_load[2], 0.0);
}

TEST(ScenarioTest, EveryEpActivityHasALoadVector) {
  auto env = EpEnvironment();
  ASSERT_TRUE(env.ok());
  for (const std::string& chart_name : env->charts.ChartNames()) {
    const auto* chart = *env->charts.GetChart(chart_name);
    for (const auto& state : chart->states()) {
      if (!state.activity.empty()) {
        EXPECT_TRUE(env->loads.HasActivity(state.activity))
            << "missing load for activity " << state.activity;
      }
    }
  }
}

TEST(ScenarioTest, BenchmarkEnvironmentIsValid) {
  auto env = BenchmarkEnvironment();
  ASSERT_TRUE(env.ok()) << env.status();
  EXPECT_EQ(env->num_server_types(), 5u);
  EXPECT_EQ(env->workflows.size(), 3u);
  EXPECT_EQ(env->charts.size(), 7u);
  for (const std::string& chart_name : env->charts.ChartNames()) {
    const auto* chart = *env->charts.GetChart(chart_name);
    for (const auto& state : chart->states()) {
      if (!state.activity.empty()) {
        EXPECT_TRUE(env->loads.HasActivity(state.activity))
            << "missing load for activity " << state.activity;
      }
    }
  }
}

TEST(EnvironmentTest, ValidateCatchesBadWorkflowRefs) {
  auto env = EpEnvironment();
  ASSERT_TRUE(env.ok());
  env->workflows.push_back({"Ghost", "NoSuchChart", 0.1});
  EXPECT_EQ(env->Validate().code(), StatusCode::kNotFound);
}

TEST(EnvironmentTest, ValidateCatchesDuplicateWorkflow) {
  auto env = EpEnvironment();
  ASSERT_TRUE(env.ok());
  env->workflows.push_back({"EP", "EP", 0.1});
  EXPECT_FALSE(env->Validate().ok());
}

TEST(EnvironmentTest, ValidateCatchesNegativeArrivalRate) {
  auto env = EpEnvironment();
  ASSERT_TRUE(env.ok());
  env->workflows[0].arrival_rate = -1.0;
  EXPECT_FALSE(env->Validate().ok());
}

}  // namespace
}  // namespace wfms::workflow

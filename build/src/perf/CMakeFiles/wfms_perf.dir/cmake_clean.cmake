file(REMOVE_RECURSE
  "CMakeFiles/wfms_perf.dir/performance_model.cc.o"
  "CMakeFiles/wfms_perf.dir/performance_model.cc.o.d"
  "CMakeFiles/wfms_perf.dir/workflow_analysis.cc.o"
  "CMakeFiles/wfms_perf.dir/workflow_analysis.cc.o.d"
  "libwfms_perf.a"
  "libwfms_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfms_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Transient (time-dependent) state distribution of a generator-based
// CTMC via uniformization with Poisson weighting, on the sparse
// representation. Used for transient availability analysis: "what is the
// probability the WFMS is up t minutes after starting from the full
// configuration?" — a refinement of §5's steady-state availability.
#ifndef WFMS_MARKOV_CTMC_TRANSIENT_H_
#define WFMS_MARKOV_CTMC_TRANSIENT_H_

#include "common/result.h"
#include "common/thread_pool.h"
#include "linalg/vector.h"
#include "markov/ctmc.h"

namespace wfms::markov {

struct CtmcTransientOptions {
  double tail_tolerance = 1e-12;
  int max_terms = 5000000;
  /// Chains with at least this many states take the matrix-free
  /// uniformization step (p' = p + (p Q)/lambda on the blocked kernels,
  /// never materializing P = I + Q/lambda and reusing one scratch vector
  /// across Poisson terms). Smaller chains keep the original materialized
  /// path bit-for-bit. Same default as SteadyStateOptions.
  size_t large_chain_threshold = 65536;
  /// Non-owning thread pool for the matrix-free path's scatter kernel;
  /// null runs it sequentially.
  ThreadPool* pool = nullptr;
};

/// Distribution at time t >= 0 given the initial distribution `p0`
/// (must be a probability vector of matching size).
Result<linalg::Vector> CtmcTransientDistribution(
    const Ctmc& chain, const linalg::Vector& p0, double t,
    const CtmcTransientOptions& options = {});

}  // namespace wfms::markov

#endif  // WFMS_MARKOV_CTMC_TRANSIENT_H_

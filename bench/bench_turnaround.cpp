// E2 — Fig. 3/Fig. 4 reproduction: the EP workflow's statechart is mapped
// to its CTMC; the table reports per-state visit counts, residence times,
// and the first-passage mean turnaround, for all three charts of the
// hierarchy. Gauss-Seidel and LU first-passage solves are cross-checked.

#include <cmath>
#include <cstdio>

#include "common/time_units.h"
#include "markov/first_passage.h"
#include "markov/transient.h"
#include "statechart/to_ctmc.h"
#include "workflow/scenarios.h"

int main() {
  using namespace wfms;
  auto env = workflow::EpEnvironment();
  if (!env.ok()) return 1;

  std::printf("E2: statechart -> CTMC mapping of the EP workflow "
              "(paper Fig. 3 -> Fig. 4)\n");
  for (const char* chart : {"EP", "Notify", "Delivery"}) {
    auto mapped = statechart::MapChartToCtmc(env->charts, chart);
    if (!mapped.ok()) {
      std::fprintf(stderr, "%s\n", mapped.status().ToString().c_str());
      return 1;
    }
    auto visits = markov::ExpectedStateVisits(mapped->chain);
    if (!visits.ok()) return 1;
    std::printf("\nchart %s: %zu states + s_A, R = %s\n", chart,
                mapped->states.size(),
                FormatMinutes(mapped->turnaround_time).c_str());
    std::printf("  %-18s %10s %14s\n", "state", "E[visits]", "residence");
    for (size_t s = 0; s < mapped->states.size(); ++s) {
      std::printf("  %-18s %10.4f %14s\n", mapped->states[s].name.c_str(),
                  (*visits)[s],
                  FormatMinutes(mapped->states[s].residence_time).c_str());
    }
    // Solver cross-check (§4.1 prescribes Gauss-Seidel).
    auto lu = markov::MeanTurnaroundTime(mapped->chain,
                                         markov::FirstPassageMethod::kLu);
    auto gs = markov::MeanTurnaroundTime(
        mapped->chain, markov::FirstPassageMethod::kGaussSeidel);
    if (lu.ok() && gs.ok()) {
      std::printf("  first-passage LU vs Gauss-Seidel: |diff| = %.2e\n",
                  std::fabs(*lu - *gs));
    }
  }
  return 0;
}

#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace wfms {

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> Document() {
    WFMS_ASSIGN_OR_RETURN(Json value, Value(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::ParseError(what + " at offset " + std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\r' && c != '\n') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<Json> Value(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ObjectValue(depth);
      case '[':
        return ArrayValue(depth);
      case '"': {
        WFMS_ASSIGN_OR_RETURN(std::string s, String());
        return Json::Str(std::move(s));
      }
      case 't':
        if (ConsumeWord("true")) return Json::Bool(true);
        return Error("bad literal");
      case 'f':
        if (ConsumeWord("false")) return Json::Bool(false);
        return Error("bad literal");
      case 'n':
        if (ConsumeWord("null")) return Json::Null();
        return Error("bad literal");
      default:
        return NumberValue();
    }
  }

  Result<Json> ObjectValue(int depth) {
    Consume('{');
    Json object = Json::Object();
    SkipWhitespace();
    if (Consume('}')) return object;
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      WFMS_ASSIGN_OR_RETURN(std::string key, String());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      WFMS_ASSIGN_OR_RETURN(Json value, Value(depth + 1));
      object.Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return object;
      return Error("expected ',' or '}' in object");
    }
  }

  Result<Json> ArrayValue(int depth) {
    Consume('[');
    Json array = Json::Array();
    SkipWhitespace();
    if (Consume(']')) return array;
    for (;;) {
      WFMS_ASSIGN_OR_RETURN(Json value, Value(depth + 1));
      array.Append(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return array;
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> String() {
    Consume('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("bad hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two 3-byte sequences; the protocol is ASCII in
          // practice).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("bad escape character");
      }
    }
    return Error("unterminated string");
  }

  Result<Json> NumberValue() {
    const size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a JSON value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(value)) {
      return Error("bad number '" + token + "'");
    }
    return Json::Number(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void AppendNumber(std::string* out, double value) {
  char buffer[32];
  // JSON has no inf/nan literal; a saturated waiting time (+inf) must not
  // corrupt the response line, so non-finite values serialize as null.
  if (!std::isfinite(value)) {
    out->append("null");
    return;
  }
  // Integers dominate the protocol (replica counts, ports, counts); keep
  // them clean. Everything else uses %.17g so a reparse is bit-exact.
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      std::fabs(value) < 9.007199254740992e15) {
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  }
  out->append(buffer);
}

}  // namespace

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

const Json* Json::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::string Json::GetString(std::string_view key, std::string fallback) const {
  const Json* value = Find(key);
  return value != nullptr && value->is_string() ? value->str()
                                                : std::move(fallback);
}

double Json::GetNumber(std::string_view key, double fallback) const {
  const Json* value = Find(key);
  return value != nullptr && value->is_number() ? value->number() : fallback;
}

bool Json::GetBool(std::string_view key, bool fallback) const {
  const Json* value = Find(key);
  return value != nullptr && value->is_bool() ? value->bool_value()
                                              : fallback;
}

Json& Json::Set(std::string key, Json value) {
  type_ = Type::kObject;
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::Append(Json value) {
  type_ = Type::kArray;
  items_.push_back(std::move(value));
  return *this;
}

void Json::DumpTo(std::string* out) const {
  switch (type_) {
    case Type::kNull:
      out->append("null");
      return;
    case Type::kBool:
      out->append(bool_ ? "true" : "false");
      return;
    case Type::kNumber:
      AppendNumber(out, number_);
      return;
    case Type::kString:
      out->push_back('"');
      out->append(JsonEscape(string_));
      out->push_back('"');
      return;
    case Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Json& item : items_) {
        if (!first) out->push_back(',');
        first = false;
        item.DumpTo(out);
      }
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : members_) {
        if (!first) out->push_back(',');
        first = false;
        out->push_back('"');
        out->append(JsonEscape(key));
        out->append("\":");
        value.DumpTo(out);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

Result<Json> Json::Parse(std::string_view text) {
  return Parser(text).Document();
}

}  // namespace wfms

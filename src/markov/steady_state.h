// Steady-state analysis of an ergodic CTMC (§5.2 of the paper): solving
// pi Q = 0 with sum(pi) = 1. Methods:
//  - kGaussSeidel: the paper's prescription — sweep pi_j = (sum_{i != j}
//    pi_i q_ij) / exit_rate_j with in-place updates and per-sweep
//    renormalization (classical Gauss-Seidel for Markov chains).
//  - kSor: the same sweep with over-relaxation; omega is either fixed
//    (options.sor_omega) or derived adaptively from the observed
//    Gauss-Seidel convergence rate.
//  - kPower: power iteration on the uniformized DTMC; robust for large
//    sparse chains where Gauss-Seidel may stall.
//  - kLu: exact dense solve of the transposed system with one equation
//    replaced by the normalization constraint; the reference for tests.
//  - kCascade (and kAuto, its alias): the degradation cascade — Gauss-
//    Seidel, then SOR with adaptive relaxation, then power iteration, then
//    dense LU, falling through on stall, divergence, or failed residual
//    validation, under a shared SolveBudget. Every rung's outcome is
//    recorded in SteadyStateResult::attempts.
#ifndef WFMS_MARKOV_STEADY_STATE_H_
#define WFMS_MARKOV_STEADY_STATE_H_

#include <vector>

#include "common/result.h"
#include "common/solve_diagnostics.h"
#include "linalg/vector.h"
#include "markov/ctmc.h"

namespace wfms::markov {

enum class SteadyStateMethod { kAuto, kGaussSeidel, kSor, kLu, kPower,
                               kCascade };

/// Human-readable method name, e.g. "gauss-seidel".
const char* SteadyStateMethodName(SteadyStateMethod method);

struct SteadyStateOptions {
  SteadyStateMethod method = SteadyStateMethod::kAuto;
  /// Per-rung iteration cap for the iterative methods (further bounded by
  /// `budget`, which is shared across cascade rungs).
  int max_iterations = 100000;
  double tolerance = 1e-13;
  /// SOR relaxation factor; 0 derives omega from the observed Gauss-Seidel
  /// convergence rate (cascade) or uses 1.5 (explicit kSor).
  double sor_omega = 0.0;
  /// Total budget (wall time + iterations) shared by all cascade rungs.
  /// The terminal LU rung is iteration-free and always attempted when the
  /// chain fits `max_dense_states`, even with the budget exhausted — the
  /// cascade's contract is an exact answer as last resort. Default:
  /// unlimited.
  SolveBudget budget;
  /// Largest chain the dense LU rung will accept; 0 disables LU entirely.
  size_t max_dense_states = 4096;
  /// Stall detection for the cascade's iterative rungs: every
  /// `stall_window` iterations the iterate change must have shrunk by
  /// `stall_decay`, else the rung is abandoned. 0 means "cascade default"
  /// (200) for kCascade/kAuto and "disabled" for the explicit methods,
  /// which keep their full iteration budget.
  int stall_window = 0;
  double stall_decay = 0.5;
  /// Optional warm start for the iterative methods (ignored by kLu): a
  /// non-owning pointer to an initial guess for pi. Used by the
  /// configuration search, where neighbor configurations differ by one
  /// replica and the parent's stationary vector — projected onto the new
  /// state space — is already close to the solution. The guess must stay
  /// alive for the duration of the solve; it is L1-normalized internally
  /// and silently ignored if its size mismatches the chain or its sum is
  /// not positive and finite.
  const linalg::Vector* initial_guess = nullptr;
};

/// One rung of the degradation cascade and how it fared.
struct CascadeAttempt {
  SteadyStateMethod method = SteadyStateMethod::kGaussSeidel;
  SolveDiagnostics diagnostics;
};

struct SteadyStateResult {
  linalg::Vector pi;
  /// Total iterations consumed, summed across cascade rungs (0 for LU).
  int iterations = 0;
  /// True when the answer came from any rung after the first.
  bool used_fallback = false;
  /// The method that actually produced `pi`.
  SteadyStateMethod method_used = SteadyStateMethod::kGaussSeidel;
  /// Diagnostics of the successful solve.
  SolveDiagnostics diagnostics;
  /// Cascade only: every rung attempted, in order, including the winner.
  std::vector<CascadeAttempt> attempts;
};

/// Computes the stationary distribution. The chain must be irreducible
/// (every state positive recurrent); reducible chains yield either a
/// numerical failure or a distribution with zero entries, which is reported
/// as an error.
Result<SteadyStateResult> SolveSteadyState(
    const Ctmc& chain, const SteadyStateOptions& options = {});

}  // namespace wfms::markov

#endif  // WFMS_MARKOV_STEADY_STATE_H_

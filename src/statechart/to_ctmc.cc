#include "statechart/to_ctmc.h"

#include <algorithm>

#include "linalg/dense_matrix.h"
#include "markov/first_passage.h"
#include "markov/first_passage_moments.h"
#include "markov/phase_type.h"

namespace wfms::statechart {

namespace {

/// Recursive mapper with memoized subchart turnaround times.
class Mapper {
 public:
  Mapper(const ChartRegistry& registry, const MappingOptions& options)
      : registry_(registry), options_(options) {}

  Result<MappedWorkflow> Map(const std::string& chart_name) {
    WFMS_ASSIGN_OR_RETURN(const StateChart* chart,
                          registry_.GetChart(chart_name));
    return MapChart(*chart);
  }

  Result<MappedWorkflow> MapChart(const StateChart& chart) {
    const size_t n = chart.num_states();
    std::vector<MappedState> state_infos;
    state_infos.reserve(n);

    // Residence times; composite states recurse into their subcharts. When
    // the hierarchical phase-type decomposition is on, the dominant
    // subchart's turnaround SCV is kept per composite so the macro-state
    // can be refined into Erlang stages after the flat chain is built.
    linalg::Vector residence(n + 1, 0.0);
    std::vector<double> composite_scv(n, 1.0);
    for (size_t i = 0; i < n; ++i) {
      const ChartState& s = chart.state(i);
      MappedState info;
      info.name = s.name;
      info.activity = s.activity;
      info.subcharts = s.subcharts;
      if (s.kind == StateKind::kComposite) {
        double max_turnaround = 0.0;
        for (const std::string& sub : s.subcharts) {
          WFMS_ASSIGN_OR_RETURN(markov::TurnaroundMoments sub_m,
                                SubchartTurnaround(sub));
          if (sub_m.mean > max_turnaround) {
            max_turnaround = sub_m.mean;
            composite_scv[i] = sub_m.scv();
          }
        }
        info.residence_time = max_turnaround;
      } else {
        info.residence_time = s.residence_time;
      }
      info.residence_time =
          std::max(info.residence_time, options_.min_residence_time);
      residence[i] = info.residence_time;
      state_infos.push_back(std::move(info));
    }
    residence[n] = markov::kInfiniteResidence;

    // Transition matrix: chart transitions plus final -> s_A.
    linalg::DenseMatrix p(n + 1, n + 1);
    for (const Transition& t : chart.transitions()) {
      WFMS_ASSIGN_OR_RETURN(size_t from, chart.StateIndex(t.from));
      WFMS_ASSIGN_OR_RETURN(size_t to, chart.StateIndex(t.to));
      p.At(from, to) += t.probability;
    }
    WFMS_ASSIGN_OR_RETURN(size_t final_idx,
                          chart.StateIndex(chart.final_state()));
    p.At(final_idx, n) = 1.0;

    std::vector<std::string> names;
    names.reserve(n + 1);
    for (size_t i = 0; i < n; ++i) names.push_back(chart.state(i).name);
    names.push_back("s_A");

    WFMS_ASSIGN_OR_RETURN(size_t initial_idx,
                          chart.StateIndex(chart.initial_state()));
    auto chain = markov::AbsorbingCtmc::Create(
        std::move(p), std::move(residence), std::move(names), initial_idx, n);
    if (!chain.ok()) {
      return chain.status().WithContext("mapping chart '" + chart.name() +
                                        "'");
    }

    // Hierarchical phase-type decomposition: refine composite macro-states
    // into Erlang stages matching the dominant subchart's turnaround SCV.
    // The flat chain above stays the one and only path when the option is
    // off or no composite warrants more than one stage.
    std::vector<size_t> phase_origin;
    if (options_.phase_type_composites) {
      std::vector<int> stages(n + 1, 1);
      bool any_expanded = false;
      for (size_t i = 0; i < n; ++i) {
        if (chart.state(i).kind != StateKind::kComposite) continue;
        stages[i] = markov::ErlangStagesForScv(composite_scv[i],
                                               options_.max_phase_stages);
        state_infos[i].phase_stages = stages[i];
        any_expanded |= stages[i] > 1;
      }
      if (any_expanded) {
        auto expansion = markov::ExpandErlangStages(*chain, stages);
        if (!expansion.ok()) {
          return expansion.status().WithContext(
              "phase-type decomposition of chart '" + chart.name() + "'");
        }
        chain = std::move(expansion->chain);
        phase_origin = std::move(expansion->origin);
      }
    }

    WFMS_ASSIGN_OR_RETURN(double turnaround,
                          markov::MeanTurnaroundTime(*chain));
    return MappedWorkflow{*std::move(chain), std::move(state_infos),
                          turnaround, turnaround_cache_,
                          std::move(phase_origin)};
  }

 private:
  Result<markov::TurnaroundMoments> SubchartTurnaround(
      const std::string& name) {
    const auto it = moments_cache_.find(name);
    if (it != moments_cache_.end()) return it->second;
    WFMS_ASSIGN_OR_RETURN(const StateChart* chart, registry_.GetChart(name));
    WFMS_ASSIGN_OR_RETURN(MappedWorkflow sub, MapChart(*chart));
    WFMS_ASSIGN_OR_RETURN(markov::TurnaroundMoments moments,
                          markov::TurnaroundTimeMoments(sub.chain));
    moments_cache_[name] = moments;
    turnaround_cache_[name] = sub.turnaround_time;
    // Fold the subchart's own nested turnarounds into the cache.
    for (const auto& [sub_name, sub_r] : sub.subchart_turnarounds) {
      turnaround_cache_.emplace(sub_name, sub_r);
    }
    return moments;
  }

  const ChartRegistry& registry_;
  const MappingOptions& options_;
  std::map<std::string, double> turnaround_cache_;
  std::map<std::string, markov::TurnaroundMoments> moments_cache_;
};

}  // namespace

Result<MappedWorkflow> MapChartToCtmc(const ChartRegistry& registry,
                                      const std::string& chart_name,
                                      const MappingOptions& options) {
  WFMS_RETURN_NOT_OK(registry.ValidateReferences());
  Mapper mapper(registry, options);
  return mapper.Map(chart_name);
}

Result<MappedWorkflow> MapChartToCtmc(const StateChart& chart,
                                      const MappingOptions& options) {
  for (const ChartState& s : chart.states()) {
    if (s.kind == StateKind::kComposite) {
      return Status::InvalidArgument(
          "chart '" + chart.name() +
          "' has composite states; map it through a ChartRegistry");
    }
  }
  ChartRegistry empty;
  Mapper mapper(empty, options);
  return mapper.MapChart(chart);
}

}  // namespace wfms::statechart

file(REMOVE_RECURSE
  "CMakeFiles/wfms_avail.dir/availability_model.cc.o"
  "CMakeFiles/wfms_avail.dir/availability_model.cc.o.d"
  "libwfms_avail.a"
  "libwfms_avail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfms_avail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "adapt/audit_stream.h"

#include "common/metrics.h"

namespace wfms::adapt {

namespace {

struct EventTimeVisitor {
  double operator()(const workflow::StateVisitRecord& r) const {
    return r.leave_time;
  }
  double operator()(const workflow::ServiceRecord& r) const { return r.time; }
  double operator()(const workflow::ArrivalRecord& r) const {
    return r.arrival_time;
  }
  double operator()(const workflow::CompletionRecord& r) const {
    return r.end_time;
  }
  double operator()(const workflow::ServerCountRecord& r) const {
    return r.time;
  }
};

metrics::Counter& PublishedCounter() {
  static metrics::Counter& counter = metrics::MetricsRegistry::Global()
      .GetCounter("wfms_adapt_stream_published_total");
  return counter;
}

metrics::Counter& DroppedCounter() {
  static metrics::Counter& counter = metrics::MetricsRegistry::Global()
      .GetCounter("wfms_adapt_stream_dropped_total");
  return counter;
}

metrics::Gauge& DepthGauge() {
  static metrics::Gauge& gauge = metrics::MetricsRegistry::Global().GetGauge(
      "wfms_adapt_stream_depth_peak");
  return gauge;
}

}  // namespace

double EventTime(const AuditEvent& event) {
  return std::visit(EventTimeVisitor{}, event);
}

AuditStream::AuditStream(size_t capacity, Overflow overflow)
    : capacity_(capacity == 0 ? 1 : capacity), overflow_(overflow) {}

bool AuditStream::EnqueueLocked(std::unique_lock<std::mutex>& lock,
                                AuditEvent&& event, bool block) {
  if (block) {
    not_full_.wait(lock,
                   [this] { return closed_ || queue_.size() < capacity_; });
  }
  if (closed_ || queue_.size() >= capacity_) {
    ++dropped_;
    lock.unlock();
    CountDrop();
    return false;
  }
  queue_.push_back(std::move(event));
  ++published_;
  DepthGauge().UpdateMax(static_cast<double>(queue_.size()));
  lock.unlock();
  PublishedCounter().Increment();
  not_empty_.notify_one();
  return true;
}

void AuditStream::CountDrop() { DroppedCounter().Increment(); }

void AuditStream::Publish(AuditEvent event) {
  std::unique_lock<std::mutex> lock(mutex_);
  EnqueueLocked(lock, std::move(event), /*block=*/true);
}

bool AuditStream::TryPublish(AuditEvent event) {
  std::unique_lock<std::mutex> lock(mutex_);
  return EnqueueLocked(lock, std::move(event), /*block=*/false);
}

void AuditStream::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

size_t AuditStream::Drain(std::vector<AuditEvent>* out, size_t max_events) {
  size_t moved = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    while (moved < max_events && !queue_.empty()) {
      out->push_back(std::move(queue_.front()));
      queue_.pop_front();
      ++moved;
    }
  }
  if (moved > 0) not_full_.notify_all();
  return moved;
}

size_t AuditStream::WaitDrain(std::vector<AuditEvent>* out,
                              size_t max_events) {
  size_t moved = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    while (moved < max_events && !queue_.empty()) {
      out->push_back(std::move(queue_.front()));
      queue_.pop_front();
      ++moved;
    }
  }
  if (moved > 0) not_full_.notify_all();
  return moved;
}

size_t AuditStream::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

bool AuditStream::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

uint64_t AuditStream::published() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return published_;
}

uint64_t AuditStream::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void AuditStream::SinkPublish(AuditEvent event) {
  if (overflow_ == Overflow::kBlock) {
    Publish(std::move(event));
  } else {
    TryPublish(std::move(event));
  }
}

void AuditStream::OnStateVisit(const workflow::StateVisitRecord& record) {
  SinkPublish(record);
}
void AuditStream::OnService(const workflow::ServiceRecord& record) {
  SinkPublish(record);
}
void AuditStream::OnArrival(const workflow::ArrivalRecord& record) {
  SinkPublish(record);
}
void AuditStream::OnCompletion(const workflow::CompletionRecord& record) {
  SinkPublish(record);
}
void AuditStream::OnServerCount(const workflow::ServerCountRecord& record) {
  SinkPublish(record);
}

}  // namespace wfms::adapt

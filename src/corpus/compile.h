// DAG-to-environment compiler (DESIGN.md §14): turns a validated TaskDag
// into the workflow Environment the assessment stack consumes.
//
// Mapping, in brief (the full table lives in DESIGN.md §14):
//  - Server types. Two fixed infrastructure types — "comm"
//    (communication) and "engine" (workflow engine) — plus up to
//    `max_app_classes` application-server types "app-s0".."app-s3" formed
//    by binning tasks on runtime: class(t) = clamp(floor(log4(r_t /
//    r_min)), 0, max_app_classes - 1). Only occupied classes are emitted.
//    A class's service moments are the uniform mixture of its member
//    tasks' runtime moments (each task runs once per instance).
//  - Loads. Each task is one activity: 1 request at its app class, 1 at
//    the engine, and 1 + min(15, floor(data_bytes / comm_bytes_per_request))
//    at the communication servers.
//  - Chart. Maximal single-entry/single-exit chains are collapsed, the
//    chain graph is leveled by longest path, and the main chart walks the
//    levels: a one-chain level inlines its tasks as sequential activity
//    states; a wider level becomes a composite state whose orthogonal
//    subcharts are the level's chains — so PR 6's Erlang macro-state
//    expansion applies to fan-out/fan-in regions. Level barriers make the
//    compiled turnaround a (documented) upper bound of the DAG's; the load
//    matrix is exact.
//  - Arrival rate. `arrival_rate`, or, when 0, auto-tuned to 0.5 / max_x
//    (per-instance service demand on type x) so every type sits at 50%
//    utilization under the minimal one-server-per-type configuration.
#ifndef WFMS_CORPUS_COMPILE_H_
#define WFMS_CORPUS_COMPILE_H_

#include <cstddef>

#include "common/result.h"
#include "corpus/dag.h"
#include "workflow/environment.h"

namespace wfms::corpus {

struct CompileOptions {
  /// Workflow instance arrival rate (per minute); 0 auto-tunes (see
  /// header comment).
  double arrival_rate = 0.0;
  /// Number of runtime classes tasks are binned into (1..8).
  size_t max_app_classes = 4;
  /// Bytes of file transfer that cost one communication-server request.
  double comm_bytes_per_request = 64.0 * 1024 * 1024;
};

/// Compiles a validated DAG into an environment that passes
/// Environment::Validate(). Deterministic: the same DAG and options always
/// produce a byte-identical SerializeEnvironment() dump.
Result<workflow::Environment> CompileDag(const TaskDag& dag,
                                         const CompileOptions& options = {});

}  // namespace wfms::corpus

#endif  // WFMS_CORPUS_COMPILE_H_

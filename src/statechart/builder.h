// Programmatic construction of validated state charts.
#ifndef WFMS_STATECHART_BUILDER_H_
#define WFMS_STATECHART_BUILDER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "statechart/model.h"

namespace wfms::statechart {

/// Accumulates states and transitions, then validates on Build():
///  - exactly one initial and one final state, both declared;
///  - the final state has no outgoing transitions, all others have some;
///  - transition endpoints exist; no duplicate state names;
///  - outgoing probabilities of every non-final state sum to 1 (within
///    1e-6; renormalized exactly);
///  - every state is reachable from the initial state;
///  - simple states have non-negative residence times (the initial state
///    may have zero residence; activity states should be positive);
///  - composite states list at least one subchart (existence of the
///    subcharts is checked at registry level).
class ChartBuilder {
 public:
  explicit ChartBuilder(std::string chart_name);

  ChartBuilder& AddActivityState(const std::string& name,
                                 const std::string& activity,
                                 double residence_time);
  /// A control state with no activity (e.g. a terminal "exit" step).
  ChartBuilder& AddSimpleState(const std::string& name,
                               double residence_time);
  ChartBuilder& AddCompositeState(const std::string& name,
                                  std::vector<std::string> subcharts);
  ChartBuilder& SetInitial(const std::string& name);
  ChartBuilder& SetFinal(const std::string& name);
  ChartBuilder& AddTransition(const std::string& from, const std::string& to,
                              double probability, EcaRule rule = {});

  Result<StateChart> Build();

 private:
  StateChart chart_;
  Status deferred_error_;
};

}  // namespace wfms::statechart

#endif  // WFMS_STATECHART_BUILDER_H_

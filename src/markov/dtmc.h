// Discrete-time Markov chains. Workflow control-flow chains are small
// (tens of states), so the DTMC is dense. The key analysis for the paper is
// the *absorbing-chain* structure: expected visit counts per transient state
// via the fundamental matrix N = (I - P_T)^{-1}, which independently
// validates the uniformization-based Markov reward computation of §4.2.
#ifndef WFMS_MARKOV_DTMC_H_
#define WFMS_MARKOV_DTMC_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "linalg/dense_matrix.h"
#include "linalg/vector.h"

namespace wfms::markov {

/// A finite DTMC with named states and a dense row-stochastic transition
/// matrix.
class Dtmc {
 public:
  /// Validates that `p` is square, matches `state_names` in size, and that
  /// every row sums to 1 within `tolerance` (rows are renormalized exactly).
  static Result<Dtmc> Create(linalg::DenseMatrix p,
                             std::vector<std::string> state_names,
                             double tolerance = 1e-9);

  size_t num_states() const { return p_.rows(); }
  const linalg::DenseMatrix& transition_matrix() const { return p_; }
  const std::string& state_name(size_t i) const { return state_names_[i]; }
  Result<size_t> StateIndex(const std::string& name) const;

  /// True iff state i has p_ii == 1.
  bool IsAbsorbing(size_t i) const;
  /// Indices of all absorbing states.
  std::vector<size_t> AbsorbingStates() const;

  /// Expected number of visits to each transient state before absorption,
  /// starting from `start` (the start state's initial occupancy counts as
  /// one visit). Entries for absorbing states are 0. Fails if the chain has
  /// no absorbing state reachable from `start` (singular I - P_T).
  Result<linalg::Vector> ExpectedVisitsUntilAbsorption(size_t start) const;

  /// Probability of eventually being absorbed in each absorbing state,
  /// starting from `start`. Entries for transient states are 0.
  Result<linalg::Vector> AbsorptionProbabilities(size_t start) const;

  /// n-step transition probabilities from `start`.
  linalg::Vector DistributionAfter(size_t start, int steps) const;

 private:
  Dtmc(linalg::DenseMatrix p, std::vector<std::string> names)
      : p_(std::move(p)), state_names_(std::move(names)) {}

  linalg::DenseMatrix p_;
  std::vector<std::string> state_names_;
};

}  // namespace wfms::markov

#endif  // WFMS_MARKOV_DTMC_H_

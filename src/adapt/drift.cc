#include "adapt/drift.h"

#include <algorithm>

namespace wfms::adapt {

PageHinkleyDetector::PageHinkleyDetector(PageHinkleyOptions options)
    : options_(options) {}

bool PageHinkleyDetector::Add(double value) {
  ++samples_;
  sum_ += value;
  const double mean = sum_ / static_cast<double>(samples_);
  cum_up_ = std::max(0.0, cum_up_ + value - mean - options_.delta);
  cum_down_ = std::max(0.0, cum_down_ + mean - value - options_.delta);
  if (samples_ >= options_.min_samples &&
      (cum_up_ > options_.lambda || cum_down_ > options_.lambda)) {
    triggered_ = true;
  }
  return triggered_;
}

double PageHinkleyDetector::mean() const {
  return samples_ > 0 ? sum_ / static_cast<double>(samples_) : 0.0;
}

double PageHinkleyDetector::score() const {
  if (options_.lambda <= 0.0) return triggered_ ? 1.0 : 0.0;
  return std::max(cum_up_, cum_down_) / options_.lambda;
}

void PageHinkleyDetector::Reset() {
  samples_ = 0;
  sum_ = 0.0;
  cum_up_ = 0.0;
  cum_down_ = 0.0;
  triggered_ = false;
}

bool DriftMonitor::Observe(double estimate) {
  const double normalized =
      baseline != 0.0 ? estimate / baseline : 1.0 + estimate;
  return detector.Add(normalized);
}

}  // namespace wfms::adapt

file(REMOVE_RECURSE
  "libwfms_common.a"
)

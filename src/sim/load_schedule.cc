#include "sim/load_schedule.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace wfms::sim {

const char* LoadActionName(LoadAction action) {
  switch (action) {
    case LoadAction::kSetRate:
      return "rate";
    case LoadAction::kScale:
      return "scale";
    case LoadAction::kScaleAll:
      return "scale-all";
  }
  return "unknown";
}

Status LoadSchedule::Validate(size_t num_workflows) const {
  for (size_t i = 0; i < events.size(); ++i) {
    const LoadEvent& event = events[i];
    const std::string where = "load event " + std::to_string(i + 1);
    if (!std::isfinite(event.time) || event.time < 0.0) {
      return Status::InvalidArgument(where +
                                     ": time must be finite and >= 0");
    }
    if (!std::isfinite(event.value) || event.value < 0.0) {
      return Status::InvalidArgument(
          where + std::string(": ") + LoadActionName(event.action) +
          " value must be finite and >= 0");
    }
    if (event.action != LoadAction::kScaleAll &&
        event.workflow >= num_workflows) {
      return Status::InvalidArgument(
          where + ": workflow index " + std::to_string(event.workflow) +
          " out of range (have " + std::to_string(num_workflows) +
          " workflow types)");
    }
  }
  return Status::OK();
}

std::vector<LoadEvent> LoadSchedule::Sorted() const {
  std::vector<LoadEvent> sorted = events;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const LoadEvent& a, const LoadEvent& b) {
                     return a.time < b.time;
                   });
  return sorted;
}

Result<std::vector<double>> LoadSchedule::RatesAt(
    double time, const std::vector<double>& base_rates) const {
  WFMS_RETURN_NOT_OK(Validate(base_rates.size()));
  std::vector<double> rates = base_rates;
  for (const LoadEvent& event : Sorted()) {
    if (event.time > time) break;
    switch (event.action) {
      case LoadAction::kSetRate:
        rates[event.workflow] = event.value;
        break;
      case LoadAction::kScale:
        rates[event.workflow] *= event.value;
        break;
      case LoadAction::kScaleAll:
        for (double& rate : rates) rate *= event.value;
        break;
    }
  }
  return rates;
}

LoadSchedule LoadSchedule::Slice(double from, double to) const {
  LoadSchedule slice;
  for (const LoadEvent& event : Sorted()) {
    if (event.time < from || event.time >= to) continue;
    LoadEvent shifted = event;
    shifted.time = event.time - from;
    slice.events.push_back(shifted);
  }
  return slice;
}

Result<LoadSchedule> ParseLoadSchedule(
    const std::string& text,
    const std::vector<workflow::WorkflowTypeSpec>& workflows) {
  const auto workflow_index = [&](const std::string& name) -> int {
    for (size_t t = 0; t < workflows.size(); ++t) {
      if (workflows[t].name == name) return static_cast<int>(t);
    }
    return -1;
  };

  LoadSchedule schedule;
  const std::vector<std::string> lines = SplitString(text, '\n');
  for (size_t lineno = 0; lineno < lines.size(); ++lineno) {
    std::string_view line = StripWhitespace(lines[lineno]);
    const auto fail = [&](const std::string& why) {
      return Status::ParseError("load schedule line " +
                                std::to_string(lineno + 1) + ": " + why);
    };
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> tokens =
        SplitString(line, ' ', /*skip_empty=*/true);
    if (tokens.size() < 4 || tokens[0] != "at") {
      return fail(
          "expected 'at <time> rate|scale <workflow-type> <value>' or "
          "'at <time> scale-all <factor>'");
    }
    LoadEvent event;
    if (!ParseDouble(tokens[1], &event.time)) {
      return fail("bad time '" + tokens[1] + "'");
    }
    const std::string& verb = tokens[2];
    size_t value_token = 4;
    if (verb == "rate") {
      event.action = LoadAction::kSetRate;
    } else if (verb == "scale") {
      event.action = LoadAction::kScale;
    } else if (verb == "scale-all") {
      event.action = LoadAction::kScaleAll;
      value_token = 3;
    } else {
      return fail("unknown action '" + verb +
                  "' (want rate, scale, or scale-all)");
    }
    if (event.action != LoadAction::kScaleAll) {
      const int index = workflow_index(tokens[3]);
      if (index < 0) {
        return fail("unknown workflow type '" + tokens[3] + "'");
      }
      event.workflow = static_cast<size_t>(index);
    }
    if (tokens.size() <= value_token) {
      return fail(std::string("'") + verb + "' needs a value");
    }
    if (!ParseDouble(tokens[value_token], &event.value)) {
      return fail("bad value '" + tokens[value_token] + "'");
    }
    if (tokens.size() > value_token + 1) return fail("trailing tokens");
    schedule.events.push_back(event);
  }
  return schedule;
}

}  // namespace wfms::sim

// E9 — §6 degraded-mode performance: per-system-state waiting times
// weighted by their steady-state probabilities for a (2,2,2) EP
// configuration, ranking the states that contribute most to the
// performability gap, and a simulation check that engine failures raise
// observed engine waits.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "avail/availability_model.h"
#include "common/time_units.h"
#include "perf/performance_model.h"
#include "sim/simulator.h"
#include "workflow/scenarios.h"

int main() {
  using namespace wfms;
  auto env = workflow::EpEnvironment(/*arrival_rate=*/1.5);
  if (!env.ok()) return 1;
  auto perf_model = perf::PerformanceModel::Create(*env);
  if (!perf_model.ok()) return 1;
  auto avail_model = avail::AvailabilityModel::Create(env->servers);
  if (!avail_model.ok()) return 1;

  const workflow::Configuration config({2, 2, 2});
  auto avail = avail_model->Evaluate(config);
  if (!avail.ok()) return 1;

  struct Row {
    size_t state;
    double pi;
    double max_wait;
    bool down;
    bool saturated;
  };
  std::vector<Row> rows;
  for (size_t i = 0; i < avail->space.size(); ++i) {
    Row row{i, avail->state_probabilities[i], 0.0, false, false};
    markov::StateVector x(3);
    for (size_t d = 0; d < 3; ++d) {
      x[d] = avail->space.Component(i, d);
      if (x[d] == 0) row.down = true;
    }
    if (!row.down) {
      auto waiting = perf_model->EvaluateWaitingTimesForState(x);
      if (waiting.ok()) {
        row.saturated = waiting->any_saturated;
        row.max_wait = waiting->max_waiting_time;
      }
    }
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.pi > b.pi; });

  std::printf("E9: degraded-mode waiting per system state, config (2,2,2), "
              "EP at 1.5/min\n\n");
  std::printf("%-10s %12s %14s %s\n", "state", "pi", "max W", "note");
  double weighted = 0.0;
  double mass = 0.0;
  for (const Row& row : rows) {
    if (row.pi < 1e-10) continue;
    const char* note = row.down ? "DOWN" : (row.saturated ? "SATURATED" : "");
    std::printf("%-10s %12.3e %14s %s\n",
                avail->space.ToString(row.state).c_str(), row.pi,
                row.down ? "-"
                         : (row.saturated
                                ? "inf"
                                : FormatMinutes(row.max_wait).c_str()),
                note);
    if (!row.down && !row.saturated) {
      weighted += row.pi * row.max_wait;
      mass += row.pi;
    }
  }
  std::printf("\nconditional E[max W] over stable states: %s "
              "(vs full-up state %s)\n",
              FormatMinutes(weighted / mass).c_str(),
              FormatMinutes(rows[0].max_wait).c_str());

  // Simulation spot check: accelerated engine failures vs failure-free.
  auto failing = workflow::EpEnvironment(1.5);
  if (!failing.ok()) return 1;
  failing->servers.mutable_type(1).failure_rate = 1.0 / 200.0;
  failing->servers.mutable_type(1).repair_rate = 1.0 / 20.0;
  double waits[2] = {0.0, 0.0};
  for (int with_failures = 0; with_failures < 2; ++with_failures) {
    sim::SimulationOptions options;
    options.config = config;
    options.duration = 60000.0;
    options.warmup = 5000.0;
    options.enable_failures = with_failures == 1;
    options.seed = 17;
    auto simulator = sim::Simulator::Create(*failing, options);
    if (!simulator.ok()) return 1;
    auto result = simulator->Run();
    if (!result.ok()) return 1;
    waits[with_failures] = result->servers[1].waiting_time.mean();
  }
  std::printf("\nsimulated engine waiting: failure-free %s vs with "
              "failures %s (MTTF 200 min)\n",
              FormatMinutes(waits[0]).c_str(),
              FormatMinutes(waits[1]).c_str());
  std::printf("expected shape: degraded states dominate the tail; observed "
              "degradation mirrors the MRM weighting.\n");
  return 0;
}

// Property tests for the steady-state degradation cascade: on random
// ergodic chains the cascade must agree with the dense LU reference, and
// on ill-conditioned (nearly completely decomposable) chains it must give
// up on the iterative rungs quickly and fall through to LU.
#include "markov/steady_state.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "markov/ctmc.h"

namespace wfms::markov {
namespace {

using linalg::Vector;

// Random chain that is irreducible by construction: a directed ring plus
// random extra transitions.
Ctmc RandomErgodicChain(Rng& rng, size_t n) {
  CtmcBuilder builder(n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(
        builder.AddTransition(i, (i + 1) % n, rng.NextDouble(0.1, 10.0)).ok());
  }
  const size_t extra = n;  // sprinkle extra structure
  for (size_t e = 0; e < extra; ++e) {
    const size_t from = rng.NextUint64(n);
    size_t to = rng.NextUint64(n);
    if (to == from) to = (to + 1) % n;
    EXPECT_TRUE(
        builder.AddTransition(from, to, rng.NextDouble(0.01, 5.0)).ok());
  }
  auto chain = builder.Build();
  EXPECT_TRUE(chain.ok()) << chain.status();
  return *std::move(chain);
}

TEST(SolverCascadeTest, MatchesDenseLuOnRandomErgodicChains) {
  Rng rng(20260806);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = 2 + rng.NextUint64(19);  // 2..20 states
    const Ctmc chain = RandomErgodicChain(rng, n);

    SteadyStateOptions lu;
    lu.method = SteadyStateMethod::kLu;
    auto exact = SolveSteadyState(chain, lu);
    ASSERT_TRUE(exact.ok()) << "trial " << trial << ": " << exact.status();

    auto cascade = SolveSteadyState(chain, {});  // kAuto = cascade
    ASSERT_TRUE(cascade.ok()) << "trial " << trial << ": "
                              << cascade.status();
    ASSERT_EQ(cascade->pi.size(), exact->pi.size());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(cascade->pi[i], exact->pi[i], 1e-9)
          << "trial " << trial << " state " << i << " (method "
          << SteadyStateMethodName(cascade->method_used) << ")";
    }
    EXPECT_FALSE(cascade->attempts.empty());
    EXPECT_EQ(cascade->attempts.back().method, cascade->method_used);
  }
}

TEST(SolverCascadeTest, IllConditionedChainFallsThroughToLu) {
  // Nearly completely decomposable chain: two clusters with internal
  // rates 1e6 and cross-cluster rates 1e-6 / 1e-4 (rate ratio 1e12).
  // The iterative rungs contract the inter-cluster error by a factor of
  // roughly (1 - 1e-12) per sweep, so stall detection must abandon them
  // and the cascade must land on the exact LU rung.
  CtmcBuilder builder(4);
  ASSERT_TRUE(builder.AddTransition(0, 1, 1e6).ok());
  ASSERT_TRUE(builder.AddTransition(1, 0, 1e6).ok());
  ASSERT_TRUE(builder.AddTransition(2, 3, 1e6).ok());
  ASSERT_TRUE(builder.AddTransition(3, 2, 1e6).ok());
  ASSERT_TRUE(builder.AddTransition(1, 2, 1e-6).ok());
  ASSERT_TRUE(builder.AddTransition(2, 1, 1e-4).ok());
  auto chain = builder.Build();
  ASSERT_TRUE(chain.ok());

  auto cascade = SolveSteadyState(*chain, {});
  ASSERT_TRUE(cascade.ok()) << cascade.status();
  EXPECT_EQ(cascade->method_used, SteadyStateMethod::kLu)
      << "solved by " << SteadyStateMethodName(cascade->method_used);
  EXPECT_TRUE(cascade->used_fallback);
  EXPECT_GE(cascade->attempts.size(), 2u);
  // Stall detection must cut every iterative rung far short of its
  // 100000-iteration cap.
  SteadyStateOptions defaults;
  EXPECT_LT(cascade->iterations, defaults.max_iterations / 5);

  SteadyStateOptions lu;
  lu.method = SteadyStateMethod::kLu;
  auto exact = SolveSteadyState(*chain, lu);
  ASSERT_TRUE(exact.ok()) << exact.status();
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(cascade->pi[i], exact->pi[i], 1e-12);
  }
}

TEST(SolverCascadeTest, BudgetExhaustionStillReachesLu) {
  // With a 2-iteration budget no iterative rung can converge, but the LU
  // rung is budget-exempt: the cascade's contract is an exact answer as
  // last resort.
  Rng rng(7);
  const Ctmc chain = RandomErgodicChain(rng, 12);
  SteadyStateOptions options;
  options.budget.max_total_iterations = 2;
  auto result = SolveSteadyState(chain, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->method_used, SteadyStateMethod::kLu);
  EXPECT_TRUE(result->used_fallback);
  EXPECT_LE(result->iterations, 2);

  // Gating LU out (max_dense_states too small) turns the same starved
  // solve into a NumericError that names the attempted rungs.
  options.max_dense_states = 4;
  auto starved = SolveSteadyState(chain, options);
  ASSERT_FALSE(starved.ok());
  EXPECT_EQ(starved.status().code(), StatusCode::kNumericError);
}

TEST(SolverCascadeTest, ExplicitMethodsKeepStrictContract) {
  // An explicitly requested iterative method must not silently fall back:
  // starved of iterations it returns NumericError.
  Rng rng(11);
  const Ctmc chain = RandomErgodicChain(rng, 10);
  SteadyStateOptions options;
  options.method = SteadyStateMethod::kGaussSeidel;
  options.max_iterations = 1;
  auto result = SolveSteadyState(chain, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNumericError);
}

}  // namespace
}  // namespace wfms::markov

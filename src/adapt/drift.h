// Per-parameter drift detection for the adaptive loop: a two-sided
// Page–Hinkley test (the sequential-analysis cousin of CUSUM) over a
// stream of estimate samples. The detector answers "has the mean of this
// series shifted by more than the tolerated slack?" with O(1) state.
//
// Usage in the controller: each monitored parameter (per-type arrival
// rate, per-server-type service mean, observed turnaround) gets its own
// detector and is fed *normalized* samples — estimate / baseline — so a
// single (delta, lambda) pair is meaningful across parameters of very
// different magnitudes. After a reconfiguration (or a confirmed
// no-change decision) the detectors are Reset() to re-baseline on the
// new regime.
#ifndef WFMS_ADAPT_DRIFT_H_
#define WFMS_ADAPT_DRIFT_H_

#include <cstdint>
#include <string>

namespace wfms::adapt {

struct PageHinkleyOptions {
  /// Slack per sample: deviations below delta never accumulate. With
  /// normalized inputs, 0.05 tolerates 5% wobble around the baseline.
  double delta = 0.05;
  /// Detection threshold on the accumulated deviation. Larger lambda means
  /// fewer false alarms and slower detection.
  double lambda = 1.0;
  /// No alarm before this many samples (the running mean is noise first).
  int64_t min_samples = 5;
};

/// Two-sided Page–Hinkley: tracks cumulative deviation of the samples
/// from their running mean in both directions; alarms (and latches) when
/// either side exceeds lambda.
class PageHinkleyDetector {
 public:
  explicit PageHinkleyDetector(PageHinkleyOptions options = {});

  /// Feeds one sample; returns true when the detector is (now) triggered.
  /// Once triggered it stays triggered until Reset().
  bool Add(double value);

  bool triggered() const { return triggered_; }
  int64_t samples() const { return samples_; }
  /// Running mean of everything fed since the last Reset().
  double mean() const;
  /// Current accumulated statistic of the side closer to alarming,
  /// normalized by lambda (>= 1 once triggered) — a drift "score" for
  /// reports.
  double score() const;

  /// Re-baselines: clears the running mean, the cumulative sums, and the
  /// latch.
  void Reset();

 private:
  PageHinkleyOptions options_;
  int64_t samples_ = 0;
  double sum_ = 0.0;
  double cum_up_ = 0.0;    // cumulative (x - mean - delta), floored at 0
  double cum_down_ = 0.0;  // cumulative (mean - x - delta), floored at 0
  bool triggered_ = false;
};

/// One monitored parameter: a named detector fed normalized samples.
struct DriftMonitor {
  std::string name;
  double baseline = 1.0;
  PageHinkleyDetector detector;

  /// Feeds estimate/baseline (baseline of 0 feeds 1 + estimate so a move
  /// off zero still registers). Returns triggered state.
  bool Observe(double estimate);
};

}  // namespace wfms::adapt

#endif  // WFMS_ADAPT_DRIFT_H_


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/statechart/builder.cc" "src/statechart/CMakeFiles/wfms_statechart.dir/builder.cc.o" "gcc" "src/statechart/CMakeFiles/wfms_statechart.dir/builder.cc.o.d"
  "/root/repo/src/statechart/interpreter.cc" "src/statechart/CMakeFiles/wfms_statechart.dir/interpreter.cc.o" "gcc" "src/statechart/CMakeFiles/wfms_statechart.dir/interpreter.cc.o.d"
  "/root/repo/src/statechart/model.cc" "src/statechart/CMakeFiles/wfms_statechart.dir/model.cc.o" "gcc" "src/statechart/CMakeFiles/wfms_statechart.dir/model.cc.o.d"
  "/root/repo/src/statechart/parser.cc" "src/statechart/CMakeFiles/wfms_statechart.dir/parser.cc.o" "gcc" "src/statechart/CMakeFiles/wfms_statechart.dir/parser.cc.o.d"
  "/root/repo/src/statechart/to_ctmc.cc" "src/statechart/CMakeFiles/wfms_statechart.dir/to_ctmc.cc.o" "gcc" "src/statechart/CMakeFiles/wfms_statechart.dir/to_ctmc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/markov/CMakeFiles/wfms_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wfms_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/wfms_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

#include "corpus/generator.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/random.h"

namespace wfms::corpus {

namespace {

// Floor on sampled runtimes (minutes): keeps the binning base r_min away
// from degenerate near-zero samples a heavy-tailed draw can produce.
constexpr double kMinRuntime = 1e-3;

std::string TaskName(size_t index, size_t width) {
  std::string digits = std::to_string(index);
  std::string name = "t";
  for (size_t i = digits.size(); i < width; ++i) name.push_back('0');
  name += digits;
  return name;
}

size_t NameWidth(size_t count) {
  size_t width = 1, bound = 10;
  while (bound < count) {
    ++width;
    bound *= 10;
  }
  return std::max<size_t>(width, 4);
}

size_t SampleWidth(Rng* rng, const Recipe& r) {
  return r.fan_out_min +
         static_cast<size_t>(rng->NextUint64(r.fan_out_max - r.fan_out_min +
                                             1));
}

double SampleRuntime(Rng* rng, const Recipe& r) {
  double value = 0.0;
  switch (r.service_dist) {
    case ServiceDist::kLognormal:
      value = rng->NextLognormalByMoments(r.service_mean, r.service_scv);
      break;
    case ServiceDist::kPareto: {
      // Pareto with the requested mean and SCV: alpha from the SCV
      // (alpha = 1 + sqrt(1 + 1/scv) > 2 keeps both moments finite),
      // scale from the mean, inverse-CDF sampling.
      const double alpha = 1.0 + std::sqrt(1.0 + 1.0 / r.service_scv);
      const double x_m = r.service_mean * (alpha - 1.0) / alpha;
      const double u = rng->NextDouble();  // [0, 1)
      value = x_m * std::pow(1.0 - u, -1.0 / alpha);
      break;
    }
  }
  return std::max(value, kMinRuntime);
}

/// Structure-only skeleton: per-task parent lists.
using Skeleton = std::vector<std::vector<size_t>>;

Skeleton ChainSkeleton(const Recipe& r) {
  size_t n = r.num_tasks;
  if (r.max_depth > 0) n = std::min(n, r.max_depth);
  Skeleton parents(n);
  for (size_t i = 1; i < n; ++i) parents[i].push_back(i - 1);
  return parents;
}

Skeleton ForkJoinSkeleton(const Recipe& r, Rng* rng) {
  Skeleton parents;
  parents.emplace_back();  // entry task
  size_t barrier = 0;      // the task every next stage hangs off
  size_t depth = 1;
  while (parents.size() < r.num_tasks &&
         (r.max_depth == 0 || depth + 2 <= r.max_depth)) {
    const size_t width = SampleWidth(rng, r);
    const size_t first = parents.size();
    for (size_t j = 0; j < width; ++j) {
      parents.emplace_back();
      parents.back().push_back(barrier);
    }
    parents.emplace_back();  // join barrier
    for (size_t j = 0; j < width; ++j) {
      parents.back().push_back(first + j);
    }
    barrier = parents.size() - 1;
    depth += 2;
  }
  return parents;
}

Skeleton DiamondLadderSkeleton(const Recipe& r, Rng* rng) {
  Skeleton parents;
  parents.emplace_back();  // entry task
  std::vector<size_t> prev_rung{0};
  size_t depth = 1;
  while (parents.size() + 1 < r.num_tasks &&
         (r.max_depth == 0 || depth + 2 <= r.max_depth)) {
    const size_t width = SampleWidth(rng, r);
    std::vector<size_t> rung;
    for (size_t j = 0; j < width; ++j) {
      rung.push_back(parents.size());
      parents.emplace_back();
      parents.back() = prev_rung;  // full bipartite rung coupling
    }
    prev_rung = std::move(rung);
    ++depth;
  }
  parents.emplace_back();  // exit task joins the last rung
  parents.back() = prev_rung;
  return parents;
}

Skeleton TreeReduceSkeleton(const Recipe& r, Rng* rng) {
  // Expansion tree grown from the root, then flipped: DAG level 0 holds
  // the leaves and every reducer's parents are its expansion children.
  std::vector<size_t> level_sizes{1};
  std::vector<std::vector<size_t>> fan(1);  // fan[l][i]: children of node i
  size_t total = 1;
  while (total < r.num_tasks &&
         (r.max_depth == 0 || level_sizes.size() < r.max_depth)) {
    const size_t width = level_sizes.back();
    fan.emplace_back();
    size_t next = 0;
    for (size_t i = 0; i < width; ++i) {
      const size_t f = SampleWidth(rng, r);
      fan[level_sizes.size() - 1].push_back(f);
      next += f;
    }
    level_sizes.push_back(next);
    total += next;
  }
  // Task indices by DAG level: deepest expansion level (the leaves) first.
  const size_t levels = level_sizes.size();
  std::vector<size_t> level_base(levels, 0);  // base task index per
                                              // expansion level, leaves = 0
  size_t base = 0;
  for (size_t l = levels; l-- > 0;) {
    level_base[l] = base;
    base += level_sizes[l];
  }
  Skeleton parents(base);
  for (size_t l = 0; l + 1 < levels; ++l) {
    // Expansion level l nodes reduce the level l+1 nodes they fanned to;
    // children were assigned contiguously in parent order.
    size_t child = 0;
    for (size_t i = 0; i < level_sizes[l]; ++i) {
      const size_t reducer = level_base[l] + i;
      for (size_t j = 0; j < fan[l][i]; ++j) {
        parents[reducer].push_back(level_base[l + 1] + child);
        ++child;
      }
    }
  }
  return parents;
}

}  // namespace

const char* PatternName(Pattern pattern) {
  switch (pattern) {
    case Pattern::kChain:
      return "chain";
    case Pattern::kForkJoin:
      return "fork_join";
    case Pattern::kDiamondLadder:
      return "diamond_ladder";
    case Pattern::kTreeReduce:
      return "tree_reduce";
  }
  return "chain";
}

Result<Pattern> PatternFromName(const std::string& name) {
  if (name == "chain") return Pattern::kChain;
  if (name == "fork_join") return Pattern::kForkJoin;
  if (name == "diamond_ladder") return Pattern::kDiamondLadder;
  if (name == "tree_reduce") return Pattern::kTreeReduce;
  return Status::InvalidArgument("unknown pattern '" + name + "'");
}

const char* ServiceDistName(ServiceDist dist) {
  return dist == ServiceDist::kPareto ? "pareto" : "lognormal";
}

Result<ServiceDist> ServiceDistFromName(const std::string& name) {
  if (name == "lognormal") return ServiceDist::kLognormal;
  if (name == "pareto") return ServiceDist::kPareto;
  return Status::InvalidArgument("unknown service distribution '" + name +
                                 "'");
}

Status Recipe::Validate() const {
  if (num_tasks < 1) {
    return Status::InvalidArgument("recipe needs num_tasks >= 1");
  }
  if (fan_out_min < 1 || fan_out_max < fan_out_min) {
    return Status::InvalidArgument(
        "recipe needs 1 <= fan_out_min <= fan_out_max");
  }
  if (!std::isfinite(service_mean) || service_mean <= 0.0) {
    return Status::InvalidArgument("recipe service_mean must be positive");
  }
  if (!std::isfinite(service_scv) || service_scv < 0.0 ||
      (service_dist == ServiceDist::kPareto && service_scv <= 0.0)) {
    return Status::InvalidArgument(
        "recipe service_scv must be >= 0 (> 0 for pareto)");
  }
  if (!std::isfinite(data_mean_bytes) || data_mean_bytes < 0.0) {
    return Status::InvalidArgument("recipe data_mean_bytes must be >= 0");
  }
  return Status::OK();
}

Result<TaskDag> GenerateDag(const Recipe& recipe) {
  WFMS_RETURN_NOT_OK(recipe.Validate());
  Rng rng(recipe.seed);

  Skeleton parents;
  switch (recipe.pattern) {
    case Pattern::kChain:
      parents = ChainSkeleton(recipe);
      break;
    case Pattern::kForkJoin:
      parents = ForkJoinSkeleton(recipe, &rng);
      break;
    case Pattern::kDiamondLadder:
      parents = DiamondLadderSkeleton(recipe, &rng);
      break;
    case Pattern::kTreeReduce:
      parents = TreeReduceSkeleton(recipe, &rng);
      break;
  }

  TaskDag dag;
  dag.name = recipe.name.empty()
                 ? std::string(PatternName(recipe.pattern)) + "-" +
                       std::to_string(recipe.num_tasks) + "-s" +
                       std::to_string(recipe.seed)
                 : recipe.name;
  const size_t width = NameWidth(parents.size());
  for (size_t i = 0; i < parents.size(); ++i) {
    Task task;
    task.name = TaskName(i, width);
    task.runtime = SampleRuntime(&rng, recipe);
    task.runtime_scv = 1.0;
    task.data_bytes =
        recipe.data_mean_bytes > 0.0
            ? std::floor(rng.NextExponential(1.0 / recipe.data_mean_bytes))
            : 0.0;
    task.parents = std::move(parents[i]);
    dag.tasks.push_back(std::move(task));
  }
  WFMS_RETURN_NOT_OK(dag.Validate());
  return dag;
}

std::string EmitWfCommons(const TaskDag& dag) {
  Json tasks = Json::Array();
  for (const Task& t : dag.tasks) {
    Json parents = Json::Array();
    for (size_t p : t.parents) parents.Append(Json::Str(dag.tasks[p].name));
    Json entry = Json::Object();
    entry.Set("name", Json::Str(t.name))
        .Set("type", Json::Str("compute"))
        .Set("runtimeInSeconds", Json::Number(t.runtime * 60.0))
        .Set("runtimeScv", Json::Number(t.runtime_scv))
        .Set("parents", std::move(parents));
    if (t.data_bytes > 0.0) {
      Json file = Json::Object();
      file.Set("name", Json::Str(t.name + "_out"))
          .Set("sizeInBytes", Json::Number(t.data_bytes))
          .Set("link", Json::Str("output"));
      entry.Set("files", Json::Array().Append(std::move(file)));
    }
    tasks.Append(std::move(entry));
  }
  Json workflow = Json::Object();
  workflow.Set("tasks", std::move(tasks));
  Json doc = Json::Object();
  doc.Set("name", Json::Str(dag.name))
      .Set("schemaVersion", Json::Str("1.3"))
      .Set("workflow", std::move(workflow));
  return doc.Dump();
}

}  // namespace wfms::corpus

#include "corpus/compile.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "queueing/distributions.h"
#include "statechart/builder.h"
#include "workflow/scenarios.h"

namespace wfms::corpus {

namespace {

// Fixed per-request service times of the infrastructure types, in minutes
// (the application classes get theirs from the task runtimes). Matches the
// scale of the hand-written scenarios: a communication hop is ~0.3 s, an
// engine step ~0.6 s.
constexpr double kCommServiceMean = 0.005;
constexpr double kEngineServiceMean = 0.01;
// Cap on the per-task communication request count, so one huge transfer
// cannot dominate the load matrix.
constexpr double kMaxCommRequests = 16.0;
// Auto arrival-rate target: utilization of the busiest type under the
// one-server-per-type configuration.
constexpr double kAutoUtilization = 0.5;

std::string SanitizeName(const std::string& raw) {
  std::string out;
  for (char c : raw) {
    const bool ok = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  if (out.empty()) out = "W";
  return out;
}

/// A maximal single-entry/single-exit run of tasks, kept in path order.
struct Chain {
  std::vector<size_t> tasks;
};

}  // namespace

Result<workflow::Environment> CompileDag(const TaskDag& dag,
                                         const CompileOptions& options) {
  WFMS_RETURN_NOT_OK(dag.Validate());
  if (options.max_app_classes < 1 || options.max_app_classes > 8) {
    return Status::InvalidArgument("max_app_classes must be in [1, 8]");
  }
  if (!(options.comm_bytes_per_request > 0.0)) {
    return Status::InvalidArgument("comm_bytes_per_request must be positive");
  }
  const size_t n = dag.tasks.size();
  const std::vector<std::vector<size_t>> children = dag.Children();

  // --- Runtime binning into application-server classes. ---
  double r_min = dag.tasks[0].runtime;
  for (const Task& t : dag.tasks) r_min = std::min(r_min, t.runtime);
  std::vector<size_t> class_of(n, 0);
  std::vector<bool> occupied(options.max_app_classes, false);
  for (size_t i = 0; i < n; ++i) {
    const double ratio = dag.tasks[i].runtime / r_min;
    const double k = std::floor(std::log(ratio) / std::log(4.0));
    const size_t cls = static_cast<size_t>(std::clamp(
        k, 0.0, static_cast<double>(options.max_app_classes - 1)));
    class_of[i] = cls;
    occupied[cls] = true;
  }

  workflow::Environment env;
  WFMS_RETURN_NOT_OK(
      env.servers
          .AddServerType({"comm", workflow::ServerKind::kCommunicationServer,
                          queueing::ExponentialService(kCommServiceMean),
                          workflow::kCommFailureRate, workflow::kRepairRate})
          .status());
  WFMS_RETURN_NOT_OK(
      env.servers
          .AddServerType({"engine", workflow::ServerKind::kWorkflowEngine,
                          queueing::ExponentialService(kEngineServiceMean),
                          workflow::kEngineFailureRate, workflow::kRepairRate})
          .status());
  std::vector<size_t> type_of_class(options.max_app_classes, 0);
  for (size_t cls = 0; cls < options.max_app_classes; ++cls) {
    if (!occupied[cls]) continue;
    // Uniform mixture of the member tasks' runtime moments: every task
    // executes exactly once per workflow instance, so the classes mix with
    // equal weight per member.
    double mean_sum = 0.0, second_sum = 0.0, members = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (class_of[i] != cls) continue;
      const Task& t = dag.tasks[i];
      mean_sum += t.runtime;
      second_sum += (t.runtime_scv + 1.0) * t.runtime * t.runtime;
      members += 1.0;
    }
    queueing::ServiceMoments moments;
    moments.mean = mean_sum / members;
    moments.second_moment = second_sum / members;
    WFMS_ASSIGN_OR_RETURN(
        type_of_class[cls],
        env.servers.AddServerType(
            {"app-s" + std::to_string(cls),
             workflow::ServerKind::kApplicationServer, moments,
             workflow::kAppFailureRate, workflow::kRepairRate}));
  }
  const size_t num_types = env.servers.size();

  // --- Load matrix: one activity per task. ---
  for (size_t i = 0; i < n; ++i) {
    const Task& t = dag.tasks[i];
    linalg::Vector load(num_types, 0.0);
    load[0] = 1.0 + std::min(kMaxCommRequests - 1.0,
                             std::floor(t.data_bytes /
                                        options.comm_bytes_per_request));
    load[1] = 1.0;
    load[type_of_class[class_of[i]]] += 1.0;
    WFMS_RETURN_NOT_OK(env.loads.SetLoad(t.name, std::move(load)));
  }

  // --- Chain collapsing: maximal runs where each link is the sole child
  // of a sole-parent predecessor. ---
  std::vector<Chain> chains;
  std::vector<size_t> chain_of(n, 0);
  for (size_t i = 0; i < n; ++i) {
    const bool absorbed = dag.tasks[i].parents.size() == 1 &&
                          children[dag.tasks[i].parents[0]].size() == 1;
    if (absorbed) continue;
    Chain chain;
    size_t cur = i;
    chain.tasks.push_back(cur);
    chain_of[cur] = chains.size();
    while (children[cur].size() == 1 &&
           dag.tasks[children[cur][0]].parents.size() == 1) {
      cur = children[cur][0];
      chain.tasks.push_back(cur);
      chain_of[cur] = chains.size();
    }
    chains.push_back(std::move(chain));
  }

  // --- Level the chain graph by longest path (Kahn). ---
  const size_t num_chains = chains.size();
  std::vector<std::vector<size_t>> chain_children(num_chains);
  std::vector<size_t> chain_indegree(num_chains, 0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t p : dag.tasks[i].parents) {
      const size_t from = chain_of[p];
      const size_t to = chain_of[i];
      if (from == to) continue;
      auto& out = chain_children[from];
      if (std::find(out.begin(), out.end(), to) == out.end()) {
        out.push_back(to);
        ++chain_indegree[to];
      }
    }
  }
  std::vector<size_t> chain_level(num_chains, 0);
  std::vector<size_t> frontier;
  for (size_t c = 0; c < num_chains; ++c) {
    if (chain_indegree[c] == 0) frontier.push_back(c);
  }
  while (!frontier.empty()) {
    std::vector<size_t> next;
    for (size_t c : frontier) {
      for (size_t d : chain_children[c]) {
        chain_level[d] = std::max(chain_level[d], chain_level[c] + 1);
        if (--chain_indegree[d] == 0) next.push_back(d);
      }
    }
    frontier = std::move(next);
  }
  size_t num_levels = 0;
  for (size_t c = 0; c < num_chains; ++c) {
    num_levels = std::max(num_levels, chain_level[c] + 1);
  }
  std::vector<std::vector<size_t>> level_chains(num_levels);
  for (size_t c = 0; c < num_chains; ++c) {
    level_chains[chain_level[c]].push_back(c);  // chain-creation order
  }

  // --- Emit the charts: level barriers in the main chart, one subchart
  // per chain of a parallel level. ---
  const std::string chart_name = SanitizeName(dag.name);
  statechart::ChartBuilder main_builder(chart_name);
  main_builder.AddSimpleState("init", 0.0).SetInitial("init");
  std::string prev_exit = "init";
  std::vector<statechart::StateChart> subcharts;
  for (size_t level = 0; level < num_levels; ++level) {
    const std::vector<size_t>& members = level_chains[level];
    std::string entry, exit;
    if (members.size() == 1) {
      // Sequential region: inline the chain's tasks as activity states.
      const Chain& chain = chains[members[0]];
      for (size_t j = 0; j < chain.tasks.size(); ++j) {
        const Task& t = dag.tasks[chain.tasks[j]];
        main_builder.AddActivityState(t.name, t.name, t.runtime);
        if (j > 0) {
          main_builder.AddTransition(dag.tasks[chain.tasks[j - 1]].name,
                                     t.name, 1.0);
        }
      }
      entry = dag.tasks[chain.tasks.front()].name;
      exit = dag.tasks[chain.tasks.back()].name;
    } else {
      // Parallel region: one orthogonal subchart per chain.
      std::vector<std::string> names;
      for (size_t j = 0; j < members.size(); ++j) {
        const Chain& chain = chains[members[j]];
        const std::string sub_name = chart_name + "_L" +
                                     std::to_string(level) + "_b" +
                                     std::to_string(j);
        statechart::ChartBuilder sub(sub_name);
        for (size_t s = 0; s < chain.tasks.size(); ++s) {
          const Task& t = dag.tasks[chain.tasks[s]];
          sub.AddActivityState(t.name, t.name, t.runtime);
          if (s > 0) {
            sub.AddTransition(dag.tasks[chain.tasks[s - 1]].name, t.name,
                              1.0);
          }
        }
        sub.SetInitial(dag.tasks[chain.tasks.front()].name);
        if (chain.tasks.size() == 1) {
          // A one-state chart cannot be its own initial and final state.
          sub.AddSimpleState("exit", 0.0)
              .AddTransition(dag.tasks[chain.tasks.front()].name, "exit",
                             1.0)
              .SetFinal("exit");
        } else {
          sub.SetFinal(dag.tasks[chain.tasks.back()].name);
        }
        WFMS_ASSIGN_OR_RETURN(statechart::StateChart built, sub.Build());
        subcharts.push_back(std::move(built));
        names.push_back(sub_name);
      }
      const std::string par = "par" + std::to_string(level);
      main_builder.AddCompositeState(par, std::move(names));
      entry = par;
      exit = par;
    }
    main_builder.AddTransition(prev_exit, entry, 1.0);
    prev_exit = exit;
  }
  main_builder.AddSimpleState("done", 0.0)
      .AddTransition(prev_exit, "done", 1.0)
      .SetFinal("done");
  WFMS_ASSIGN_OR_RETURN(statechart::StateChart main_chart, main_builder.Build());
  WFMS_RETURN_NOT_OK(env.charts.AddChart(std::move(main_chart)));
  for (statechart::StateChart& sub : subcharts) {
    WFMS_RETURN_NOT_OK(env.charts.AddChart(std::move(sub)));
  }

  // --- Workflow type and arrival rate. ---
  double rate = options.arrival_rate;
  if (rate <= 0.0) {
    // Per-instance service demand on each type; every task runs once.
    linalg::Vector demand(num_types, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const linalg::Vector load = env.loads.LoadOf(dag.tasks[i].name,
                                                   num_types);
      for (size_t x = 0; x < num_types; ++x) {
        demand[x] += load[x] * env.servers.type(x).service.mean;
      }
    }
    double max_demand = 0.0;
    for (double d : demand) max_demand = std::max(max_demand, d);
    rate = kAutoUtilization / max_demand;
  }
  env.workflows.push_back({chart_name, chart_name, rate});

  WFMS_RETURN_NOT_OK(env.Validate());
  return env;
}

}  // namespace wfms::corpus

#include "service/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "service/json.h"

namespace wfms::service {

FlightRecorder::FlightRecorder(size_t capacity, size_t shards) {
  if (shards == 0) shards = 1;
  if (capacity < shards) capacity = shards;
  per_shard_capacity_ = (capacity + shards - 1) / shards;
  shards_ = std::vector<Shard>(shards);
}

void FlightRecorder::Record(RequestRecord record) {
  // The sequence number is assigned outside any shard lock, so two
  // workers never serialize on it; the shard index follows from it, which
  // spreads consecutive requests round-robin.
  const uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  record.seq = seq;
  Shard& shard = shards_[seq % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.ring.size() < per_shard_capacity_) {
    shard.ring.push_back(std::move(record));
  } else {
    shard.ring[shard.next] = std::move(record);
    shard.next = (shard.next + 1) % per_shard_capacity_;
  }
}

std::vector<RequestRecord> FlightRecorder::Newest(size_t n) const {
  std::vector<RequestRecord> all;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    all.insert(all.end(), shard.ring.begin(), shard.ring.end());
  }
  // Newest-first total order across shards via the global sequence number.
  std::sort(all.begin(), all.end(),
            [](const RequestRecord& a, const RequestRecord& b) {
              return a.seq > b.seq;
            });
  if (n > 0 && all.size() > n) all.resize(n);
  return all;
}

std::string FlightRecorder::ToJson(size_t n) const {
  Json doc = Json::Object();
  doc.Set("schema_version", Json::Number(1));
  doc.Set("total_recorded",
          Json::Number(static_cast<double>(total_recorded())));
  Json records = Json::Array();
  for (const RequestRecord& r : Newest(n)) {
    Json entry = Json::Object();
    entry.Set("seq", Json::Number(static_cast<double>(r.seq)));
    entry.Set("trace_id", Json::Str(r.trace_id));
    entry.Set("tenant", Json::Str(r.tenant));
    entry.Set("op", Json::Str(r.op));
    entry.Set("disposition", Json::Str(r.disposition));
    entry.Set("admission_wait_seconds",
              Json::Number(r.admission_wait_seconds));
    entry.Set("elapsed_seconds", Json::Number(r.elapsed_seconds));
    Json phases = Json::Array();
    for (const auto& [name, seconds] : r.phases) {
      Json phase = Json::Object();
      phase.Set("name", Json::Str(name));
      phase.Set("seconds", Json::Number(seconds));
      phases.Append(std::move(phase));
    }
    entry.Set("phases", std::move(phases));
    entry.Set("cache_hit", Json::Bool(r.cache_hit));
    entry.Set("solver_rungs", Json::Number(r.solver_rungs));
    entry.Set("bytes_in", Json::Number(static_cast<double>(r.bytes_in)));
    entry.Set("bytes_out", Json::Number(static_cast<double>(r.bytes_out)));
    records.Append(std::move(entry));
  }
  doc.Set("records", std::move(records));
  return doc.Dump();
}

Status FlightRecorder::DumpJson(const std::string& path, size_t n) const {
  const std::string body = ToJson(n);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open flight-recorder dump '" + path +
                            "'");
  }
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != body.size() || !flushed) {
    return Status::Internal("short write dumping flight recorder to '" +
                            path + "'");
  }
  return Status::OK();
}

}  // namespace wfms::service

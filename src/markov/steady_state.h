// Steady-state analysis of an ergodic CTMC (§5.2 of the paper): solving
// pi Q = 0 with sum(pi) = 1. Three methods:
//  - kGaussSeidel: the paper's prescription — sweep pi_j = (sum_{i != j}
//    pi_i q_ij) / exit_rate_j with in-place updates and per-sweep
//    renormalization (classical Gauss-Seidel for Markov chains).
//  - kLu: exact dense solve of the transposed system with one equation
//    replaced by the normalization constraint; the reference for tests.
//  - kPower: power iteration on the uniformized DTMC; robust for large
//    sparse chains where Gauss-Seidel may stall.
// kAuto picks Gauss-Seidel with a power-iteration fallback.
#ifndef WFMS_MARKOV_STEADY_STATE_H_
#define WFMS_MARKOV_STEADY_STATE_H_

#include "common/result.h"
#include "linalg/vector.h"
#include "markov/ctmc.h"

namespace wfms::markov {

enum class SteadyStateMethod { kAuto, kGaussSeidel, kLu, kPower };

struct SteadyStateOptions {
  SteadyStateMethod method = SteadyStateMethod::kAuto;
  int max_iterations = 100000;
  double tolerance = 1e-13;
  /// Optional warm start for the iterative methods (ignored by kLu): a
  /// non-owning pointer to an initial guess for pi. Used by the
  /// configuration search, where neighbor configurations differ by one
  /// replica and the parent's stationary vector — projected onto the new
  /// state space — is already close to the solution. The guess must stay
  /// alive for the duration of the solve; it is L1-normalized internally
  /// and silently ignored if its size mismatches the chain or its sum is
  /// not positive and finite.
  const linalg::Vector* initial_guess = nullptr;
};

struct SteadyStateResult {
  linalg::Vector pi;
  int iterations = 0;           // 0 for the direct method
  bool used_fallback = false;   // kAuto fell back to power iteration
};

/// Computes the stationary distribution. The chain must be irreducible
/// (every state positive recurrent); reducible chains yield either a
/// numerical failure or a distribution with zero entries, which is reported
/// as an error.
Result<SteadyStateResult> SolveSteadyState(
    const Ctmc& chain, const SteadyStateOptions& options = {});

}  // namespace wfms::markov

#endif  // WFMS_MARKOV_STEADY_STATE_H_

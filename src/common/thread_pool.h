// Fixed-size thread pool for fanning independent model evaluations out
// across cores (the configuration tool assesses whole candidate frontiers
// per step). Design constraints, in line with the rest of the codebase:
//  - no exceptions cross the pool boundary: tasks return their payload (or
//    a Result<T>) through the future; task bodies must not throw;
//  - deterministic single-thread mode: a pool of size 1 spawns no workers
//    and runs every task inline, in submission/index order — the reference
//    path the parallel searches are tested against;
//  - the worker count can be pinned via the WFMS_NUM_THREADS environment
//    variable (useful for benchmarking and for TSan runs).
#ifndef WFMS_COMMON_THREAD_POOL_H_
#define WFMS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/result.h"

namespace wfms {

class ThreadPool {
 public:
  /// A pool of `num_threads` total execution lanes. `num_threads <= 1`
  /// spawns no workers: every task runs inline on the calling thread.
  /// `num_threads = n > 1` spawns n - 1 workers; the caller participates
  /// in ParallelFor, so n lanes compute concurrently.
  ///
  /// `max_queue` bounds the Submit queue: 0 (the default) is unbounded —
  /// the original behaviour every search path relies on; > 0 makes Submit
  /// *reject* with Status::Unavailable once `max_queue` tasks are waiting
  /// instead of queueing without bound. Shed-don't-block is the admission
  /// policy of the wfmsd daemon (see src/service): a caller that cannot
  /// enqueue gets an immediate, explicit answer, never a silent stall.
  /// ParallelFor's internal helper fan-out is exempt from the bound (its
  /// tasks are drained by the calling lane regardless).
  explicit ThreadPool(size_t num_threads, size_t max_queue = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (workers + the calling thread); >= 1.
  size_t num_threads() const { return workers_.size() + 1; }

  /// Runs fn(0) ... fn(n-1), blocking until all complete. Indices are
  /// claimed atomically, so fn must be safe to call concurrently from
  /// different threads for different indices; with a single-lane pool the
  /// calls happen inline in increasing index order. Reductions over the
  /// results must be ordered by index, never by completion time.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Enqueues a task and returns a future for its return value (typically
  /// a Result<T>; the task must not throw). With a single-lane pool the
  /// task runs inline before Submit returns. After Shutdown() (or during
  /// destruction — checkpoint-on-signal paths race pool teardown) the task
  /// is NOT run and a FailedPrecondition status is returned instead; the
  /// pool never crashes on a late Submit.
  template <typename F, typename R = std::invoke_result_t<F>>
  Result<std::future<R>> Submit(F&& f) {
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    WFMS_RETURN_NOT_OK(Enqueue([task]() { (*task)(); }, /*bounded=*/true));
    return future;
  }

  /// Stops accepting new tasks, drains every task already queued, and
  /// joins the workers. Idempotent; implied by the destructor. Tasks
  /// queued before Shutdown always run to completion (their futures
  /// become ready); Submit afterwards fails with a Status.
  void Shutdown();

  /// Worker count from the WFMS_NUM_THREADS environment variable if set to
  /// a positive integer, else std::thread::hardware_concurrency (>= 1).
  static size_t DefaultThreadCount();

  /// Tasks waiting in the Submit queue right now (excludes running tasks).
  /// Also exported as the `wfms_threadpool_queue_depth` gauge, which the
  /// daemon's degradation ladder reads between requests.
  size_t queue_depth() const;

  /// The configured Submit-queue bound; 0 = unbounded.
  size_t max_queue() const { return max_queue_; }

 private:
  Status Enqueue(std::function<void()> task, bool bounded);
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  size_t max_queue_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace wfms

#endif  // WFMS_COMMON_THREAD_POOL_H_

// Ordinary-lumpability model reduction for CTMC steady-state analysis.
//
// The §5.2 mixed-radix state space grows as prod(Y_x + 1); configurations
// with many exchangeable server types blow past what even the sparse
// iterative path solves comfortably. This module shrinks such chains
// *exactly* before the solver runs: a partition-refinement pass finds the
// coarsest partition of states that is simultaneously
//
//   - ordinarily lumpable: for every pair of blocks (B, C), every state in
//     B has the same total outgoing rate into C, so the quotient process is
//     itself a CTMC whose stationary distribution gives block
//     probabilities; and
//   - exactly lumpable: every state in B also receives the same total
//     incoming rate from C, which (together with ordinary lumpability)
//     forces the stationary distribution to be *uniform within blocks* —
//     so the full-length pi is recovered from the quotient solve as
//     pi_i = pi_B / |B|, exactly, not approximately.
//
// Both conditions are checked structurally with bit-exact rate sums; the
// caller additionally validates the expanded pi against the full chain's
// residual, so a (theoretically impossible) bad merge degrades to a
// fallback, never to a wrong answer. Partitions respecting a caller-supplied
// seed labelling (e.g. canonical orbits of exchangeable state-space
// dimensions, see markov/state_space.h) start from that coarse guess and
// only split further, keeping refinement cheap on million-state chains.
#ifndef WFMS_MARKOV_LUMPING_H_
#define WFMS_MARKOV_LUMPING_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "linalg/sparse_matrix.h"
#include "linalg/vector.h"
#include "markov/ctmc.h"

namespace wfms::markov {

struct LumpingOptions {
  /// Optional initial partition: states with different labels are never
  /// merged. Size must equal the chain's state count when provided.
  /// Refinement starts from this partition and only splits.
  const std::vector<uint32_t>* seed_labels = nullptr;
  /// Safety cap on refinement passes; refinement converges when a pass
  /// leaves the block count unchanged, long before this on real chains.
  int max_passes = 256;
};

/// A partition of chain states into lumpable blocks. Block ids are dense
/// and deterministic: blocks are numbered by their smallest member state.
struct LumpingPartition {
  std::vector<uint32_t> block_of;  // state -> block id
  std::vector<uint32_t> block_size;  // block id -> member count
  size_t num_blocks() const { return block_size.size(); }
  size_t num_states() const { return block_of.size(); }
  /// True when every block is a singleton — lumping does not apply.
  bool trivial() const { return num_blocks() == num_states(); }
  /// Quotient size over original size in (0, 1]; 1 means no reduction.
  double reduction_ratio() const;
};

/// Finds the coarsest ordinarily + exactly lumpable partition refining the
/// seed labels (or the trivial one-block partition without seeds).
/// `incoming` must be chain.rates().Transposed() — callers that already
/// materialized it for Gauss-Seidel sweeps pass it in so it is built once.
Result<LumpingPartition> FindLumpablePartition(
    const Ctmc& chain, const linalg::SparseMatrix& incoming,
    const LumpingOptions& options = {});

/// Builds the quotient CTMC: one state per block, rate(B -> C) = the
/// common per-state outgoing rate sum into C (within-block transitions
/// become self-loops and are dropped).
Result<Ctmc> BuildQuotient(const Ctmc& chain,
                           const LumpingPartition& partition);

/// Expands a quotient stationary distribution to the full chain:
/// pi_i = pi_B / |B| (exact under exact lumpability).
linalg::Vector ExpandUniform(const LumpingPartition& partition,
                             const linalg::Vector& quotient_pi);

/// Aggregates a full-chain distribution onto the quotient (sums within
/// blocks). Used to carry warm-start guesses onto the quotient solve.
linalg::Vector RestrictToQuotient(const LumpingPartition& partition,
                                  const linalg::Vector& full);

}  // namespace wfms::markov

#endif  // WFMS_MARKOV_LUMPING_H_

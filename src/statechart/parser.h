// Parser for the textual state chart DSL. The format is line-based:
//
//   # comment
//   chart EP
//     state NewOrder activity=new_order residence=5
//     state Exit residence=0.5
//     compound Shipment subcharts=Notify,Delivery
//     initial NewOrder
//     final Exit
//     trans NewOrder -> Shipment prob=0.5 event=NewOrder_DONE
//           cond=!PayByCreditCard action=st!(Shipment)   (one line)
//   end
//
// Attributes are `key=value` tokens; `action=` may repeat. Multiple charts
// may appear in one document; composite states reference charts by name.
// StateChart::ToDsl() emits this format, so parse/serialize round-trips.
#ifndef WFMS_STATECHART_PARSER_H_
#define WFMS_STATECHART_PARSER_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "statechart/model.h"

namespace wfms::statechart {

/// Parses a DSL document containing one or more charts. Validates each
/// chart (via ChartBuilder) and the registry's subchart references.
Result<ChartRegistry> ParseCharts(std::string_view text);

/// Parses a document expected to contain exactly one chart.
Result<StateChart> ParseSingleChart(std::string_view text);

}  // namespace wfms::statechart

#endif  // WFMS_STATECHART_PARSER_H_

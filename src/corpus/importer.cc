#include "corpus/importer.h"

#include <cmath>
#include <map>
#include <string>

#include "common/json.h"

namespace wfms::corpus {

namespace {

constexpr double kSecondsPerMinute = 60.0;

/// Extracts a required finite number field, naming the task and field on
/// failure.
Result<double> NumberField(const Json& task, const std::string& task_name,
                           const char* field) {
  const Json* value = task.Find(field);
  if (value == nullptr || !value->is_number()) {
    return Status::ParseError("task '" + task_name + "': missing numeric '" +
                              field + "'");
  }
  if (!std::isfinite(value->number())) {
    return Status::ParseError("task '" + task_name + "': '" + field +
                              "' must be finite");
  }
  return value->number();
}

}  // namespace

Result<TaskDag> ParseWfCommons(std::string_view json_text) {
  WFMS_ASSIGN_OR_RETURN(const Json doc, Json::Parse(json_text));
  if (!doc.is_object()) {
    return Status::ParseError("WfCommons document must be a JSON object");
  }

  TaskDag dag;
  dag.name = doc.GetString("name", "");
  if (dag.name.empty()) {
    return Status::ParseError("document is missing the workflow 'name'");
  }

  const Json* workflow = doc.Find("workflow");
  if (workflow == nullptr || !workflow->is_object()) {
    return Status::ParseError("document is missing the 'workflow' object");
  }
  const Json* tasks = workflow->Find("tasks");
  if (tasks == nullptr || !tasks->is_array() || tasks->items().empty()) {
    return Status::ParseError(
        "'workflow.tasks' must be a non-empty array of task objects");
  }

  // Pass 1: task identities (parents may reference tasks declared later).
  std::map<std::string, size_t> index;
  for (size_t i = 0; i < tasks->items().size(); ++i) {
    const Json& t = tasks->items()[i];
    if (!t.is_object()) {
      return Status::ParseError("'workflow.tasks[" + std::to_string(i) +
                                "]' is not an object");
    }
    const std::string name = t.GetString("name", "");
    if (name.empty()) {
      return Status::ParseError("'workflow.tasks[" + std::to_string(i) +
                                "]' is missing its 'name'");
    }
    if (!index.emplace(name, i).second) {
      return Status::ParseError("task '" + name + "': duplicate task name");
    }
  }

  // Pass 2: runtimes, file volumes, and resolved parent edges.
  for (const Json& t : tasks->items()) {
    Task task;
    task.name = t.GetString("name", "");
    WFMS_ASSIGN_OR_RETURN(const double runtime_seconds,
                          NumberField(t, task.name, "runtimeInSeconds"));
    if (runtime_seconds <= 0.0) {
      return Status::ParseError("task '" + task.name +
                                "': 'runtimeInSeconds' must be positive");
    }
    task.runtime = runtime_seconds / kSecondsPerMinute;

    const Json* scv = t.Find("runtimeScv");
    if (scv != nullptr) {
      if (!scv->is_number() || !std::isfinite(scv->number()) ||
          scv->number() < 0.0) {
        return Status::ParseError("task '" + task.name +
                                  "': 'runtimeScv' must be a finite "
                                  "non-negative number");
      }
      task.runtime_scv = scv->number();
    }

    const Json* files = t.Find("files");
    if (files != nullptr) {
      if (!files->is_array()) {
        return Status::ParseError("task '" + task.name +
                                  "': 'files' must be an array");
      }
      for (const Json& f : files->items()) {
        if (!f.is_object()) {
          return Status::ParseError("task '" + task.name +
                                    "': 'files' entries must be objects");
        }
        WFMS_ASSIGN_OR_RETURN(const double bytes,
                              NumberField(f, task.name, "sizeInBytes"));
        if (bytes < 0.0) {
          return Status::ParseError("task '" + task.name +
                                    "': 'sizeInBytes' must be >= 0");
        }
        task.data_bytes += bytes;
      }
    }

    const Json* parents = t.Find("parents");
    if (parents != nullptr) {
      if (!parents->is_array()) {
        return Status::ParseError("task '" + task.name +
                                  "': 'parents' must be an array of task "
                                  "names");
      }
      for (const Json& p : parents->items()) {
        if (!p.is_string()) {
          return Status::ParseError("task '" + task.name +
                                    "': 'parents' entries must be strings");
        }
        const auto it = index.find(p.str());
        if (it == index.end()) {
          return Status::ParseError("task '" + task.name +
                                    "': parent '" + p.str() +
                                    "' is not a declared task");
        }
        task.parents.push_back(it->second);
      }
    }
    dag.tasks.push_back(std::move(task));
  }

  WFMS_RETURN_NOT_OK(dag.Validate());
  return dag;
}

}  // namespace wfms::corpus

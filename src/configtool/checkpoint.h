// Crash-safe checkpoint/resume for the configuration search (see
// DESIGN.md "Checkpointing and recovery").
//
// The durable progress of every search strategy is the assessment
// memoization cache: each memoized performability report (and each
// negatively cached terminal failure) is a CTMC construction + solve a
// resumed search does not repeat. Because all four strategies are
// deterministic given (environment, goals, constraints, cost model,
// strategy options) and produce results independent of cache state (the
// PR-1 invariant), restoring the cache and re-running the search
// fast-forwards through pure cache hits to the first unassessed candidate
// and finishes with a recommendation bit-identical to an uninterrupted
// run — no frontier or annealing cursor needs to survive the crash.
//
// A checkpoint is therefore: a fingerprint of everything the cache
// contents depend on, the strategy name, the externalized cache, and (for
// operator display) the best-so-far at save time. The fingerprint is
// validated on load so a checkpoint taken under a different environment,
// goal set, cost model, constraint box, or strategy is rejected with a
// descriptive FailedPrecondition — never silently mixed in. Torn or
// corrupted files are rejected by the snapshot layer's CRC/length checks.
#ifndef WFMS_CONFIGTOOL_CHECKPOINT_H_
#define WFMS_CONFIGTOOL_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/snapshot.h"
#include "configtool/tool.h"
#include "workflow/environment.h"

namespace wfms::configtool {

/// What a loaded checkpoint reports back (everything except the cache
/// contents, which go straight into the tool).
struct CheckpointMetadata {
  std::string strategy;
  uint64_t fingerprint = 0;
  /// SearchResult::evaluations at save time (informational; the resumed
  /// search recounts from the start of its deterministic replay).
  int64_t evaluations = 0;
  size_t cached_reports = 0;
  size_t cached_failures = 0;
  /// Best-so-far at save time, when the saver had one.
  bool have_best = false;
  workflow::Configuration best_config;
  double best_cost = 0.0;
  bool best_satisfied = false;
};

/// Hash of everything the checkpointed cache depends on: the serialized
/// environment, the goals, the constraint box, the cost model, the
/// strategy name, and (for annealing) the annealing options. Two searches
/// agree on this value iff a checkpoint of one is a valid resume point for
/// the other.
uint64_t SearchFingerprint(const workflow::Environment& env,
                           const Goals& goals,
                           const SearchConstraints& constraints,
                           const CostModel& cost, std::string_view strategy,
                           const AnnealingOptions* annealing = nullptr);

/// Atomically writes the tool's assessment cache plus metadata to `path`.
/// `best_so_far` may be null (periodic mid-search checkpoints pass null;
/// the final on-signal checkpoint passes the partial SearchResult).
Status WriteSearchCheckpoint(const std::string& path,
                             const ConfigurationTool& tool,
                             uint64_t fingerprint, std::string_view strategy,
                             const SearchResult* best_so_far = nullptr);

/// Loads `path`, validates integrity (CRC, framing, version) and
/// freshness (fingerprint and strategy must match), and prefills the
/// tool's assessment cache. On success the caller re-runs the same search
/// and gets a bit-identical recommendation without re-assessing any
/// restored replication vector.
Result<CheckpointMetadata> ResumeSearchFrom(const ConfigurationTool& tool,
                                            const std::string& path,
                                            uint64_t fingerprint,
                                            std::string_view strategy);

/// The TLV codec for one memoized (replicas -> report) cache entry — the
/// same field encoding the search checkpoint payload uses, exposed so the
/// wfmsd service-cache snapshot (SnapshotKind::kServiceCache) stores
/// reports byte-compatibly instead of inventing a second format.
void EncodeCachedReport(SnapshotWriter* w, const std::vector<int>& replicas,
                        const performability::PerformabilityReport& report);
Result<std::pair<std::vector<int>, performability::PerformabilityReport>>
DecodeCachedReport(SnapshotReader* r);

/// Same, for one negatively cached terminal failure.
void EncodeCachedFailure(SnapshotWriter* w, const std::vector<int>& replicas,
                         const ConfigurationTool::CachedFailure& failure);
Result<std::pair<std::vector<int>, ConfigurationTool::CachedFailure>>
DecodeCachedFailure(SnapshotReader* r);

}  // namespace wfms::configtool

#endif  // WFMS_CONFIGTOOL_CHECKPOINT_H_

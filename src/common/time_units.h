// Time-unit helpers. All model rates in this library are expressed per
// *minute* (the paper quotes failure rates as (43200 min)^-1 etc.); these
// helpers convert human-readable durations to and from model time.
#ifndef WFMS_COMMON_TIME_UNITS_H_
#define WFMS_COMMON_TIME_UNITS_H_

#include <string>

namespace wfms {

inline constexpr double kMinutesPerHour = 60.0;
inline constexpr double kMinutesPerDay = 1440.0;
inline constexpr double kMinutesPerWeek = 10080.0;
inline constexpr double kMinutesPerMonth = 43200.0;  // 30-day month, as in the paper
inline constexpr double kMinutesPerYear = 525960.0;  // 365.25 days

constexpr double HoursToMinutes(double h) { return h * kMinutesPerHour; }
constexpr double DaysToMinutes(double d) { return d * kMinutesPerDay; }
constexpr double SecondsToMinutes(double s) { return s / 60.0; }
constexpr double MinutesToSeconds(double m) { return m * 60.0; }
constexpr double MinutesToHours(double m) { return m / kMinutesPerHour; }

/// Converts a steady-state unavailability (probability in [0,1]) to the
/// expected downtime in minutes per year.
constexpr double UnavailabilityToDowntimeMinutesPerYear(double unavailability) {
  return unavailability * kMinutesPerYear;
}

/// Formats a duration given in minutes as a human-readable string, choosing
/// seconds/minutes/hours/days as appropriate (e.g. "71.2 h", "10.4 s").
std::string FormatMinutes(double minutes);

}  // namespace wfms

#endif  // WFMS_COMMON_TIME_UNITS_H_

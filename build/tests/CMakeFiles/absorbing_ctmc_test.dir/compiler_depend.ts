# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for absorbing_ctmc_test.

// Service-time distributions summarized by their first two moments — all
// the M/G/1 analysis of §4.4 needs. Helpers build common shapes and
// mixtures (used when several server types share one computer).
#ifndef WFMS_QUEUEING_DISTRIBUTIONS_H_
#define WFMS_QUEUEING_DISTRIBUTIONS_H_

#include <vector>

#include "common/result.h"

namespace wfms::queueing {

/// First two moments of a non-negative service-time distribution.
struct ServiceMoments {
  double mean = 0.0;
  double second_moment = 0.0;

  /// Variance = E[X^2] - E[X]^2.
  double variance() const { return second_moment - mean * mean; }
  /// Squared coefficient of variation; 0 for a deterministic time.
  double scv() const {
    return mean > 0.0 ? variance() / (mean * mean) : 0.0;
  }
};

/// Exponential service with the given mean: E[X^2] = 2 mean^2.
ServiceMoments ExponentialService(double mean);
/// Deterministic service: E[X^2] = mean^2.
ServiceMoments DeterministicService(double mean);
/// Erlang-k service: SCV = 1/k.
Result<ServiceMoments> ErlangService(int stages, double mean);
/// From mean and squared coefficient of variation.
Result<ServiceMoments> ServiceFromMeanScv(double mean, double scv);

/// Shifts a service time by a deterministic constant d >= 0 (e.g. the mean
/// cross-site network latency a geo-distributed request pays before
/// reaching its serving replica): X' = X + d, so mean' = mean + d and
/// E[X'^2] = E[X^2] + 2 d mean + d^2.
ServiceMoments ShiftService(const ServiceMoments& moments, double shift);

/// Probability mixture of services: requests arrive as a superposition and
/// each request is of class i with probability weights[i]/sum(weights).
/// Moments mix linearly. Used for §4.4's multiple-server-types-per-computer
/// aggregation.
Result<ServiceMoments> MixServices(const std::vector<double>& weights,
                                   const std::vector<ServiceMoments>& parts);

/// Validates mean > 0 and E[X^2] >= mean^2 (Cauchy-Schwarz).
Status ValidateMoments(const ServiceMoments& moments);

}  // namespace wfms::queueing

#endif  // WFMS_QUEUEING_DISTRIBUTIONS_H_

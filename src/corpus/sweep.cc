#include "corpus/sweep.h"

#include <chrono>
#include <cmath>
#include <fstream>
#include <mutex>
#include <sstream>
#include <utility>

#include "common/random.h"
#include "common/thread_pool.h"
#include "configtool/tool.h"
#include "corpus/compile.h"
#include "corpus/importer.h"
#include "perf/workflow_analysis.h"

namespace wfms::corpus {

namespace {

std::string PadId(size_t i) {
  std::string digits = std::to_string(i);
  std::string id = "env-";
  for (size_t k = digits.size(); k < 4; ++k) id.push_back('0');
  return id + digits;
}

double MillisBetween(std::chrono::steady_clock::time_point a,
                     std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

Json RecipeToJson(const Recipe& r) {
  Json j = Json::Object();
  j.Set("pattern", Json::Str(PatternName(r.pattern)))
      .Set("num_tasks", Json::Number(static_cast<double>(r.num_tasks)))
      .Set("seed", Json::Number(static_cast<double>(r.seed)))
      .Set("service_dist", Json::Str(ServiceDistName(r.service_dist)))
      .Set("service_mean", Json::Number(r.service_mean))
      .Set("service_scv", Json::Number(r.service_scv))
      .Set("fan_out_min", Json::Number(static_cast<double>(r.fan_out_min)))
      .Set("fan_out_max", Json::Number(static_cast<double>(r.fan_out_max)))
      .Set("max_depth", Json::Number(static_cast<double>(r.max_depth)))
      .Set("data_mean_bytes", Json::Number(r.data_mean_bytes));
  if (!r.name.empty()) j.Set("name", Json::Str(r.name));
  return j;
}

Result<Recipe> RecipeFromJson(const Json& j, const std::string& id) {
  Recipe r;
  const std::string context = "manifest entry '" + id + "': ";
  WFMS_ASSIGN_OR_RETURN(r.pattern,
                        PatternFromName(j.GetString("pattern", "chain")));
  WFMS_ASSIGN_OR_RETURN(
      r.service_dist,
      ServiceDistFromName(j.GetString("service_dist", "lognormal")));
  const double tasks = j.GetNumber("num_tasks", 16.0);
  const double seed = j.GetNumber("seed", 42.0);
  const double fan_min = j.GetNumber("fan_out_min", 2.0);
  const double fan_max = j.GetNumber("fan_out_max", 8.0);
  const double depth = j.GetNumber("max_depth", 0.0);
  if (tasks < 1.0 || fan_min < 1.0 || fan_max < fan_min || depth < 0.0 ||
      seed < 0.0) {
    return Status::ParseError(context + "invalid recipe shape parameters");
  }
  r.num_tasks = static_cast<size_t>(tasks);
  r.seed = static_cast<uint64_t>(seed);
  r.fan_out_min = static_cast<size_t>(fan_min);
  r.fan_out_max = static_cast<size_t>(fan_max);
  r.max_depth = static_cast<size_t>(depth);
  r.service_mean = j.GetNumber("service_mean", 2.0);
  r.service_scv = j.GetNumber("service_scv", 4.0);
  r.data_mean_bytes = j.GetNumber("data_mean_bytes", 16.0 * 1024 * 1024);
  r.name = j.GetString("name", "");
  WFMS_RETURN_NOT_OK(r.Validate());
  return r;
}

Result<TaskDag> LoadEntryDag(const ManifestEntry& entry) {
  if (!entry.is_import()) return GenerateDag(entry.recipe);
  std::ifstream in(entry.wfcommons_path);
  if (!in) {
    return Status::NotFound("cannot open WfCommons file '" +
                            entry.wfcommons_path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseWfCommons(buffer.str());
}

EnvironmentResult EvaluateEntry(const ManifestEntry& entry,
                                const SweepOptions& options) {
  EnvironmentResult result;
  result.id = entry.id;
  result.pattern = entry.is_import() ? std::string("imported")
                                     : PatternName(entry.recipe.pattern);
  const auto started = std::chrono::steady_clock::now();
  const auto fail = [&](const Status& status) {
    result.error = status.ToString();
    result.solve_ms =
        MillisBetween(started, std::chrono::steady_clock::now());
    return result;
  };

  const Result<TaskDag> dag = LoadEntryDag(entry);
  if (!dag.ok()) return fail(dag.status());
  result.workflow = dag->name;
  result.tasks = dag->tasks.size();

  const Result<workflow::Environment> env = CompileDag(*dag);
  if (!env.ok()) return fail(env.status());
  result.server_types = env->servers.size();
  for (const std::string& name : env->charts.ChartNames()) {
    result.chart_states += (*env->charts.GetChart(name))->num_states();
  }

  performability::PerformabilityOptions popts;
  popts.availability.solver.lumping = options.lumping;
  popts.analysis.mapping.phase_type_composites =
      options.phase_type_composites;
  // Exact expected-visit loads instead of uniformized reward summation:
  // the summation needs ~(max rate / min rate) * chart-size steps, and
  // corpus charts are stiff by construction (heavy-tailed runtimes plus
  // near-zero control states), so it truncates long before converging.
  popts.analysis.method = perf::LoadMethod::kEmbeddedChain;
  Result<configtool::ConfigurationTool> tool =
      configtool::ConfigurationTool::Create(*env, popts);
  if (!tool.ok()) return fail(tool.status());
  // One lane per environment: the sweep parallelizes across environments,
  // and a single-lane tool is the bit-deterministic reference mode.
  tool->set_num_threads(1);

  workflow::Configuration config =
      workflow::Configuration::Ones(env->servers.size());
  if (options.mode == SweepMode::kRecommend) {
    configtool::SearchConstraints constraints;
    constraints.max_replicas.assign(env->servers.size(),
                                    options.max_replicas);
    const Result<configtool::SearchResult> search =
        tool->GreedyMinCost(options.goals, constraints);
    if (!search.ok()) return fail(search.status());
    config = search->config;
    result.evaluations = search->evaluations;
  }

  const Result<configtool::Assessment> assessment =
      tool->Assess(config, options.goals);
  if (!assessment.ok()) return fail(assessment.status());
  if (!assessment->error.ok()) return fail(assessment->error);
  result.config = config.replicas;
  result.satisfied = assessment->Satisfies();
  result.max_expected_waiting =
      assessment->performability.max_expected_waiting;
  result.availability = assessment->performability.availability;
  result.cost = assessment->cost;

  // The performability report does not expose the lumping verdict, so ask
  // the availability model directly (cheap at corpus replica counts).
  const Result<avail::AvailabilityReport> avail_report =
      tool->model().availability().Evaluate(config);
  if (avail_report.ok()) {
    result.avail_states = avail_report->state_probabilities.size();
    result.lumping_applied = avail_report->lumping_applied;
    result.lumped_states = avail_report->lumped_states;
  }

  result.solve_ms = MillisBetween(started, std::chrono::steady_clock::now());
  return result;
}

}  // namespace

Manifest GenerateManifest(size_t count, uint64_t seed, size_t max_tasks) {
  Manifest manifest;
  manifest.seed = seed;
  Rng rng(seed);
  const double lo = 8.0;
  const double hi = static_cast<double>(max_tasks < 8 ? 8 : max_tasks);
  constexpr Pattern kPatterns[] = {Pattern::kChain, Pattern::kForkJoin,
                                   Pattern::kDiamondLadder,
                                   Pattern::kTreeReduce};
  constexpr double kScvs[] = {1.0, 4.0, 16.0};
  for (size_t i = 0; i < count; ++i) {
    ManifestEntry entry;
    entry.id = PadId(i);
    Recipe& r = entry.recipe;
    r.pattern = kPatterns[i % 4];
    const double frac =
        count > 1 ? static_cast<double>(i) / static_cast<double>(count - 1)
                  : 1.0;
    r.num_tasks = static_cast<size_t>(
        std::llround(lo * std::pow(hi / lo, frac)));
    // Masked to 53 bits so the seed survives the JSON double round-trip
    // exactly.
    r.seed = rng.Next() & ((uint64_t{1} << 53) - 1);
    r.service_dist =
        (i % 2 == 0) ? ServiceDist::kLognormal : ServiceDist::kPareto;
    r.service_scv = kScvs[i % 3];
    r.fan_out_min = 2;
    r.fan_out_max = 2 + i % 7;
    manifest.entries.push_back(std::move(entry));
  }
  return manifest;
}

std::string ManifestToJson(const Manifest& manifest) {
  Json entries = Json::Array();
  for (const ManifestEntry& entry : manifest.entries) {
    Json e = Json::Object();
    e.Set("id", Json::Str(entry.id));
    if (entry.is_import()) {
      e.Set("wfcommons", Json::Str(entry.wfcommons_path));
    } else {
      e.Set("recipe", RecipeToJson(entry.recipe));
    }
    entries.Append(std::move(e));
  }
  Json doc = Json::Object();
  doc.Set("seed", Json::Number(static_cast<double>(manifest.seed)))
      .Set("count",
           Json::Number(static_cast<double>(manifest.entries.size())))
      .Set("environments", std::move(entries));
  return doc.Dump();
}

Result<Manifest> ManifestFromJson(std::string_view text) {
  WFMS_ASSIGN_OR_RETURN(const Json doc, Json::Parse(text));
  if (!doc.is_object()) {
    return Status::ParseError("manifest must be a JSON object");
  }
  Manifest manifest;
  manifest.seed = static_cast<uint64_t>(doc.GetNumber("seed", 0.0));
  const Json* entries = doc.Find("environments");
  if (entries == nullptr || !entries->is_array() ||
      entries->items().empty()) {
    return Status::ParseError(
        "manifest 'environments' must be a non-empty array");
  }
  for (size_t i = 0; i < entries->items().size(); ++i) {
    const Json& e = entries->items()[i];
    if (!e.is_object()) {
      return Status::ParseError("manifest entry " + std::to_string(i) +
                                " is not an object");
    }
    ManifestEntry entry;
    entry.id = e.GetString("id", PadId(i));
    entry.wfcommons_path = e.GetString("wfcommons", "");
    const Json* recipe = e.Find("recipe");
    if (entry.is_import() == (recipe != nullptr)) {
      return Status::ParseError("manifest entry '" + entry.id +
                                "' needs exactly one of 'recipe' or "
                                "'wfcommons'");
    }
    if (recipe != nullptr) {
      WFMS_ASSIGN_OR_RETURN(entry.recipe,
                            RecipeFromJson(*recipe, entry.id));
    }
    manifest.entries.push_back(std::move(entry));
  }
  return manifest;
}

Result<SweepReport> RunSweep(const Manifest& manifest,
                             const SweepOptions& options) {
  if (manifest.entries.empty()) {
    return Status::InvalidArgument("manifest has no environments");
  }
  SweepReport report;
  report.seed = manifest.seed;
  report.mode = options.mode;
  report.results.resize(manifest.entries.size());

  const auto started = std::chrono::steady_clock::now();
  const size_t lanes = options.num_threads > 0
                           ? options.num_threads
                           : ThreadPool::DefaultThreadCount();
  ThreadPool pool(lanes);
  std::mutex progress_mutex;
  size_t done = 0;
  pool.ParallelFor(manifest.entries.size(), [&](size_t i) {
    EnvironmentResult result =
        EvaluateEntry(manifest.entries[i], options);
    {
      std::lock_guard<std::mutex> lock(progress_mutex);
      ++done;
      if (options.progress) {
        options.progress(result, done, manifest.entries.size());
      }
    }
    report.results[i] = std::move(result);
  });

  for (const EnvironmentResult& r : report.results) {
    if (!r.error.empty()) {
      ++report.error_count;
    } else if (r.satisfied) {
      ++report.satisfied_count;
    }
  }
  report.total_ms =
      MillisBetween(started, std::chrono::steady_clock::now());
  return report;
}

Json ReportToJson(const SweepReport& report, bool include_timings) {
  Json environments = Json::Array();
  for (const EnvironmentResult& r : report.results) {
    Json e = Json::Object();
    e.Set("id", Json::Str(r.id));
    if (!r.error.empty()) {
      e.Set("error", Json::Str(r.error));
      environments.Append(std::move(e));
      continue;
    }
    Json config = Json::Array();
    for (int y : r.config) {
      config.Append(Json::Number(static_cast<double>(y)));
    }
    e.Set("workflow", Json::Str(r.workflow))
        .Set("pattern", Json::Str(r.pattern))
        .Set("tasks", Json::Number(static_cast<double>(r.tasks)))
        .Set("chart_states",
             Json::Number(static_cast<double>(r.chart_states)))
        .Set("server_types",
             Json::Number(static_cast<double>(r.server_types)))
        .Set("avail_states",
             Json::Number(static_cast<double>(r.avail_states)))
        .Set("lumping_applied", Json::Bool(r.lumping_applied))
        .Set("lumped_states",
             Json::Number(static_cast<double>(r.lumped_states)))
        .Set("config", std::move(config))
        .Set("satisfied", Json::Bool(r.satisfied))
        .Set("max_expected_waiting", Json::Number(r.max_expected_waiting))
        .Set("availability", Json::Number(r.availability))
        .Set("cost", Json::Number(r.cost))
        .Set("evaluations",
             Json::Number(static_cast<double>(r.evaluations)));
    if (include_timings) e.Set("solve_ms", Json::Number(r.solve_ms));
    environments.Append(std::move(e));
  }
  Json summary = Json::Object();
  summary
      .Set("environments",
           Json::Number(static_cast<double>(report.results.size())))
      .Set("satisfied",
           Json::Number(static_cast<double>(report.satisfied_count)))
      .Set("errors", Json::Number(static_cast<double>(report.error_count)));
  if (include_timings) summary.Set("total_ms", Json::Number(report.total_ms));
  Json doc = Json::Object();
  doc.Set("report", Json::Str("corpus_sweep"))
      .Set("mode", Json::Str(report.mode == SweepMode::kRecommend
                                 ? "recommend"
                                 : "assess"))
      .Set("seed", Json::Number(static_cast<double>(report.seed)))
      .Set("environments", std::move(environments))
      .Set("summary", std::move(summary));
  return doc;
}

}  // namespace wfms::corpus

#include "markov/steady_state.h"

#include <chrono>
#include <cmath>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "linalg/dense_matrix.h"
#include "linalg/iterative_solver.h"
#include "linalg/lu_solver.h"
#include "linalg/spmv.h"
#include "markov/lumping.h"

namespace wfms::markov {

using linalg::DenseMatrix;
using linalg::SparseMatrix;
using linalg::Vector;

namespace {

constexpr int kDefaultCascadeStallWindow = 200;

/// Initial iterate for the iterative methods: the caller's warm-start
/// guess when it is usable (right size, positive finite mass), else the
/// uniform distribution.
Vector InitialIterate(const Ctmc& chain, const SteadyStateOptions& options) {
  const size_t n = chain.num_states();
  if (options.initial_guess != nullptr &&
      options.initial_guess->size() == n) {
    double sum = 0.0;
    bool nonnegative = true;
    for (double v : *options.initial_guess) {
      if (v < 0.0) {
        nonnegative = false;
        break;
      }
      sum += v;
    }
    if (nonnegative && sum > 0.0 && std::isfinite(sum)) {
      Vector pi = *options.initial_guess;
      linalg::Scale(1.0 / sum, &pi);
      return pi;
    }
  }
  return Vector(n, 1.0 / static_cast<double>(n));
}

/// Residual check: max_j |(pi Q)_j| must be small relative to the rates.
/// `pool` (nullable) parallelizes the inflow scatter on large chains; the
/// sequential path is bit-identical to the historical implementation.
Status ValidateSolution(const Ctmc& chain, const Vector& pi,
                        double tolerance, ThreadPool* pool = nullptr,
                        linalg::SpmvWorkspace* workspace = nullptr) {
  double min_entry = 1.0;
  for (double v : pi) min_entry = std::min(min_entry, v);
  if (min_entry < -1e-9) {
    return Status::NumericError(
        "steady-state vector has negative entries; chain may be reducible");
  }
  // (pi Q)_j = sum_{i != j} pi_i q_ij - pi_j * exit_j.
  Vector inflow;
  linalg::BlockedMultiplyTransposed(chain.rates(), pi, &inflow, workspace,
                                    pool);
  const double scale = std::max(chain.MaxExitRate(), 1.0);
  for (size_t j = 0; j < pi.size(); ++j) {
    const double residual = inflow[j] - pi[j] * chain.exit_rates()[j];
    if (std::fabs(residual) > tolerance * scale * 1e3) {
      return Status::NumericError("steady-state residual too large at state " +
                                  std::to_string(j));
    }
  }
  return Status::OK();
}

Status CheckErgodicExitRates(const Ctmc& chain) {
  for (size_t j = 0; j < chain.num_states(); ++j) {
    if (chain.exit_rates()[j] <= 0.0) {
      return Status::InvalidArgument(
          "state " + std::to_string(j) +
          " has zero exit rate; chain is not ergodic");
    }
  }
  return Status::OK();
}

Result<SteadyStateResult> SolveLu(const Ctmc& chain,
                                  const SteadyStateOptions& options) {
  const size_t n = chain.num_states();
  const auto start = std::chrono::steady_clock::now();
  // A x = b with A = Q^T except the last row is the normalization
  // constraint sum(pi) = 1.
  DenseMatrix a(n, n);
  const auto& offsets = chain.rates().row_offsets();
  const auto& cols = chain.rates().col_indices();
  const auto& values = chain.rates().values();
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = offsets[i]; k < offsets[i + 1]; ++k) {
      const size_t j = cols[k];
      if (j != n - 1) a.At(j, i) += values[k];
    }
    if (i != n - 1) a.At(i, i) -= chain.exit_rates()[i];
  }
  for (size_t i = 0; i < n; ++i) a.At(n - 1, i) = 1.0;
  Vector b(n, 0.0);
  b[n - 1] = 1.0;

  auto solved = linalg::LuSolve(a, b);
  if (!solved.ok()) {
    return solved.status().WithContext(
        "steady-state direct solve (is the chain irreducible?)");
  }
  SteadyStateResult result;
  result.pi = *std::move(solved);
  WFMS_RETURN_NOT_OK(ValidateSolution(chain, result.pi, options.tolerance));
  result.method_used = SteadyStateMethod::kLu;
  result.diagnostics.converged = true;
  result.diagnostics.wall_time_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

/// Outcome of one Markov sweep run (Gauss-Seidel when omega == 1, SOR
/// otherwise). Numerical trouble is data in `diag`; only structural
/// problems surface as Status errors (checked by the caller beforehand).
struct SweepOutcome {
  SolveDiagnostics diag;
  /// Observed per-iteration contraction of the iterate change near the end
  /// of the run (0 when fewer than two iterations ran); feeds the adaptive
  /// SOR omega.
  double observed_rate = 0.0;
};

/// Runs the renormalized Markov sweep pi_j <- (1-omega) pi_j +
/// omega * inflow_j / exit_j on `pi` in place. `incoming` is the
/// transposed rate matrix (incoming rates of j on row j). The per-state
/// inflow accumulation goes through the shared CSR row kernel
/// (linalg::CsrRowDot), which is bit-identical to the naive loop.
///
/// `alternate_directions` (the large-chain locality mode) runs every even
/// iteration as a *backward* sweep: the sweep revisits the row tail the
/// forward pass just touched while it is still cache-resident, and the
/// symmetric-Gauss-Seidel-style alternation also damps the one-directional
/// error transport of pure forward sweeps. It changes iterate rounding, so
/// callers enable it only at or above the large-chain threshold.
SweepOutcome MarkovSweep(const Ctmc& chain, const SparseMatrix& incoming,
                         Vector* pi, double omega, int max_iterations,
                         double tolerance, int stall_window,
                         double stall_decay, double max_wall_seconds,
                         bool alternate_directions = false) {
  const size_t n = chain.num_states();
  const auto& offsets = incoming.row_offsets();
  const auto& cols = incoming.col_indices();
  const auto& values = incoming.values();
  const double* exit_rates = chain.exit_rates().data();
  const auto start = std::chrono::steady_clock::now();
  const int check_every = stall_window > 0 ? stall_window : 64;

  SweepOutcome out;
  Vector prev(n);  // scratch, reused across sweeps
  double prev_change = 0.0;
  double checkpoint_change = 0.0;
  bool have_checkpoint = false;
  for (int iter = 1; iter <= max_iterations; ++iter) {
    prev = *pi;
    double* p = pi->data();
    const bool backward = alternate_directions && iter % 2 == 0;
    if (backward) {
      for (size_t j = n; j-- > 0;) {
        const double inflow = linalg::CsrRowDot(
            values.data(), cols.data(), offsets[j], offsets[j + 1], p);
        const double gs_value = inflow / exit_rates[j];
        p[j] += omega * (gs_value - p[j]);
      }
    } else {
      for (size_t j = 0; j < n; ++j) {
        const double inflow = linalg::CsrRowDot(
            values.data(), cols.data(), offsets[j], offsets[j + 1], p);
        const double gs_value = inflow / exit_rates[j];
        p[j] += omega * (gs_value - p[j]);
      }
    }
    const double sum = linalg::Sum(*pi);
    out.diag.iterations = iter;
    if (!(sum > 0.0) || !std::isfinite(sum)) {
      out.diag.diverged = true;
      break;
    }
    linalg::Scale(1.0 / sum, pi);
    const double change = linalg::MaxAbsDiff(*pi, prev);
    out.diag.final_residual = change;
    if (!std::isfinite(change)) {
      out.diag.diverged = true;
      break;
    }
    if (prev_change > 0.0 && change > 0.0) {
      out.observed_rate = change / prev_change;
    }
    prev_change = change;
    if (change < tolerance) {
      out.diag.converged = true;
      break;
    }
    if (iter % check_every == 0) {
      WFMS_LOG_EVERY_N(Debug, 16)
          << "markov sweep: iter " << iter << " omega " << omega
          << " change " << change;
      if (stall_window > 0) {
        if (have_checkpoint && !(change < stall_decay * checkpoint_change)) {
          out.diag.stalled = true;
          break;
        }
        checkpoint_change = change;
        have_checkpoint = true;
      }
      if (max_wall_seconds > 0.0 &&
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
                  .count() >= max_wall_seconds) {
        break;
      }
    }
  }
  out.diag.wall_time_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return out;
}

/// SOR relaxation factor from the observed Gauss-Seidel contraction rate
/// rho: the classical optimum 2 / (1 + sqrt(1 - rho)), clamped away from
/// the (0, 2) stability boundary. Falls back to 1.5 without a usable rate.
double AdaptiveOmega(double observed_rate) {
  if (!(observed_rate > 0.0) || observed_rate >= 1.0 ||
      !std::isfinite(observed_rate)) {
    return 1.5;
  }
  const double omega = 2.0 / (1.0 + std::sqrt(1.0 - observed_rate));
  return std::min(1.95, std::max(1.05, omega));
}

/// Power-iteration rung on the uniformized DTMC. Numerical trouble is
/// reported in the diagnostics; Status is reserved for structural errors.
Result<SolveDiagnostics> PowerRung(const Ctmc& chain, Vector* pi,
                                   int max_iterations, double tolerance,
                                   int stall_window, double stall_decay,
                                   double max_wall_seconds) {
  linalg::IterativeOptions opts;
  opts.max_iterations = max_iterations;
  opts.tolerance = tolerance;
  opts.stall_window = stall_window;
  opts.stall_decay = stall_decay;
  opts.max_wall_time_seconds = max_wall_seconds;
  WFMS_ASSIGN_OR_RETURN(
      linalg::IterativeStats stats,
      linalg::PowerIterationStationary(chain.UniformizedMatrix(), pi, opts));
  return stats;
}

/// Matrix-free variant of the power rung for large chains: applies
/// pi P = pi + (pi Q) / lambda directly from the generator's off-diagonal
/// CSR and exit rates — P = I + Q/lambda is never materialized, saving a
/// full copy of the generator (hundreds of MB at 10^6 states). The inflow
/// scatter runs on the blocked kernels, pool-parallel when one is
/// supplied; results are deterministic for a given chain independent of
/// the lane count (fixed panel decomposition, see linalg/spmv.h).
SolveDiagnostics MatrixFreePowerRung(const Ctmc& chain, Vector* pi,
                                     int max_iterations, double tolerance,
                                     int stall_window, double stall_decay,
                                     double max_wall_seconds,
                                     ThreadPool* pool,
                                     linalg::SpmvWorkspace* workspace) {
  const size_t n = chain.num_states();
  // Same lambda as Ctmc::UniformizedMatrix's default: a 5% margin keeps
  // every self-loop probability positive, guaranteeing aperiodicity.
  const double lambda = chain.UniformizationRate();
  const double* exit_rates = chain.exit_rates().data();
  const auto start = std::chrono::steady_clock::now();
  const int check_every = stall_window > 0 ? stall_window : 64;

  SolveDiagnostics diag;
  linalg::NormalizeL1(pi);
  Vector inflow;
  double checkpoint_change = 0.0;
  bool have_checkpoint = false;
  for (int iter = 1; iter <= max_iterations; ++iter) {
    linalg::BlockedMultiplyTransposed(chain.rates(), *pi, &inflow, workspace,
                                      pool);
    double sum = 0.0;
    double* next = inflow.data();
    const double* p = pi->data();
    for (size_t j = 0; j < n; ++j) {
      next[j] = p[j] + (next[j] - p[j] * exit_rates[j]) / lambda;
      sum += next[j];
    }
    diag.iterations = iter;
    if (!(sum > 0.0) || !std::isfinite(sum)) {
      diag.diverged = true;
      break;
    }
    double change = 0.0;
    const double inv = 1.0 / sum;
    for (size_t j = 0; j < n; ++j) {
      next[j] *= inv;
      change = std::max(change, std::fabs(next[j] - p[j]));
    }
    pi->swap(inflow);
    diag.final_residual = change;
    if (!std::isfinite(change)) {
      diag.diverged = true;
      break;
    }
    if (change < tolerance) {
      diag.converged = true;
      break;
    }
    if (iter % check_every == 0) {
      if (stall_window > 0) {
        if (have_checkpoint && !(change < stall_decay * checkpoint_change)) {
          diag.stalled = true;
          break;
        }
        checkpoint_change = change;
        have_checkpoint = true;
      }
      if (max_wall_seconds > 0.0 &&
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
                  .count() >= max_wall_seconds) {
        break;
      }
    }
  }
  diag.wall_time_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return diag;
}

/// True when the chain is large enough to engage the locality / parallel
/// paths (alternating sweeps, matrix-free power, pooled kernels). Below
/// the threshold everything runs the exact legacy code path.
bool LargeChain(const Ctmc& chain, const SteadyStateOptions& options) {
  return chain.num_states() >= options.large_chain_threshold;
}

Result<SteadyStateResult> SolveGaussSeidel(const Ctmc& chain,
                                           const SteadyStateOptions& options,
                                           double omega,
                                           SteadyStateMethod method) {
  WFMS_RETURN_NOT_OK(CheckErgodicExitRates(chain));
  const bool large = LargeChain(chain, options);
  ThreadPool* pool = large ? options.pool : nullptr;
  linalg::SpmvWorkspace workspace;
  const SparseMatrix incoming = chain.rates().Transposed();
  Vector pi = InitialIterate(chain, options);
  BudgetTracker tracker(options.budget);
  SweepOutcome out = MarkovSweep(
      chain, incoming, &pi, omega,
      tracker.RemainingIterations(options.max_iterations), options.tolerance,
      options.stall_window, options.stall_decay, tracker.RemainingSeconds(),
      /*alternate_directions=*/large);
  if (out.diag.diverged) {
    return Status::NumericError(
        std::string(SteadyStateMethodName(method)) +
        " steady state diverged");
  }
  if (!out.diag.converged) {
    return Status::NumericError(
        std::string(SteadyStateMethodName(method)) +
        " steady state did not converge: " + out.diag.ToString());
  }
  SteadyStateResult result;
  result.pi = std::move(pi);
  WFMS_RETURN_NOT_OK(ValidateSolution(chain, result.pi, options.tolerance,
                                      pool, &workspace));
  result.iterations = out.diag.iterations;
  result.method_used = method;
  result.diagnostics = out.diag;
  return result;
}

Result<SteadyStateResult> SolvePower(const Ctmc& chain,
                                     const SteadyStateOptions& options) {
  const bool large = LargeChain(chain, options);
  ThreadPool* pool = large ? options.pool : nullptr;
  linalg::SpmvWorkspace workspace;
  SteadyStateResult result;
  result.pi = InitialIterate(chain, options);
  BudgetTracker tracker(options.budget);
  SolveDiagnostics diag;
  if (large) {
    diag = MatrixFreePowerRung(
        chain, &result.pi, tracker.RemainingIterations(options.max_iterations),
        options.tolerance, options.stall_window, options.stall_decay,
        tracker.RemainingSeconds(), pool, &workspace);
  } else {
    WFMS_ASSIGN_OR_RETURN(
        diag,
        PowerRung(chain, &result.pi,
                  tracker.RemainingIterations(options.max_iterations),
                  options.tolerance, options.stall_window, options.stall_decay,
                  tracker.RemainingSeconds()));
  }
  if (!diag.converged) {
    return Status::NumericError("power iteration did not converge: " +
                                diag.ToString());
  }
  result.iterations = diag.iterations;
  result.method_used = SteadyStateMethod::kPower;
  result.diagnostics = diag;
  WFMS_RETURN_NOT_OK(ValidateSolution(chain, result.pi, options.tolerance,
                                      pool, &workspace));
  return result;
}

/// The degradation cascade: Gauss-Seidel -> SOR (adaptive omega) -> power
/// iteration -> dense LU, under a shared budget. A rung "fails" on stall,
/// divergence, iteration/wall exhaustion, or a residual-validation miss;
/// the next rung then runs with whatever budget remains. The LU rung is
/// iteration-free and is attempted regardless of the remaining budget as
/// long as the chain fits options.max_dense_states.
Result<SteadyStateResult> SolveCascade(const Ctmc& chain,
                                       const SteadyStateOptions& options) {
  WFMS_RETURN_NOT_OK(CheckErgodicExitRates(chain));
  const int stall_window = options.stall_window > 0
                               ? options.stall_window
                               : kDefaultCascadeStallWindow;
  const bool large = LargeChain(chain, options);
  ThreadPool* pool = large ? options.pool : nullptr;
  linalg::SpmvWorkspace workspace;
  BudgetTracker tracker(options.budget);
  SteadyStateResult result;
  const SparseMatrix incoming = chain.rates().Transposed();
  Vector pi = InitialIterate(chain, options);
  const Vector initial = pi;  // for restarting after a diverged rung

  auto finish = [&](SteadyStateMethod method, const SolveDiagnostics& diag,
                    Vector solution) -> Result<SteadyStateResult> {
    result.pi = std::move(solution);
    result.method_used = method;
    result.diagnostics = diag;
    result.iterations = static_cast<int>(tracker.consumed_iterations());
    result.used_fallback = method != SteadyStateMethod::kGaussSeidel;
    return std::move(result);
  };

  // Rung 1: Gauss-Seidel (the paper's method — almost always wins).
  double observed_rate = 0.0;
  {
    const int cap = tracker.RemainingIterations(options.max_iterations);
    if (cap > 0) {
      SweepOutcome out = MarkovSweep(chain, incoming, &pi, 1.0, cap,
                                     options.tolerance, stall_window,
                                     options.stall_decay,
                                     tracker.RemainingSeconds(),
                                     /*alternate_directions=*/large);
      tracker.Charge(out.diag.iterations);
      observed_rate = out.observed_rate;
      result.attempts.push_back({SteadyStateMethod::kGaussSeidel, out.diag});
      if (out.diag.converged &&
          ValidateSolution(chain, pi, options.tolerance, pool, &workspace)
              .ok()) {
        return finish(SteadyStateMethod::kGaussSeidel, out.diag,
                      std::move(pi));
      }
      if (out.diag.diverged) pi = initial;
    }
  }

  // Rung 2: SOR, omega from the observed Gauss-Seidel contraction rate.
  // Warm-started from the stalled Gauss-Seidel iterate (still a valid
  // distribution after renormalization).
  {
    const int cap = tracker.RemainingIterations(options.max_iterations);
    if (cap > 0) {
      const double omega = options.sor_omega > 0.0 ? options.sor_omega
                                                   : AdaptiveOmega(
                                                         observed_rate);
      SweepOutcome out = MarkovSweep(chain, incoming, &pi, omega, cap,
                                     options.tolerance, stall_window,
                                     options.stall_decay,
                                     tracker.RemainingSeconds(),
                                     /*alternate_directions=*/large);
      tracker.Charge(out.diag.iterations);
      result.attempts.push_back({SteadyStateMethod::kSor, out.diag});
      if (out.diag.converged &&
          ValidateSolution(chain, pi, options.tolerance, pool, &workspace)
              .ok()) {
        return finish(SteadyStateMethod::kSor, out.diag, std::move(pi));
      }
      if (out.diag.diverged) pi = initial;
    }
  }

  // Rung 3: power iteration on the uniformized chain — unconditionally
  // stable, so it recovers from over-relaxation blow-ups.
  {
    const int cap = tracker.RemainingIterations(options.max_iterations);
    if (cap > 0) {
      SolveDiagnostics diag;
      if (large) {
        // Matrix-free uniformized power: never builds P = I + Q/lambda,
        // which would double the generator's footprint at this size.
        diag = MatrixFreePowerRung(chain, &pi, cap, options.tolerance,
                                   stall_window, options.stall_decay,
                                   tracker.RemainingSeconds(), pool,
                                   &workspace);
      } else {
        auto rung = PowerRung(chain, &pi, cap, options.tolerance, stall_window,
                              options.stall_decay, tracker.RemainingSeconds());
        WFMS_RETURN_NOT_OK(rung.status());
        diag = *rung;
      }
      tracker.Charge(diag.iterations);
      result.attempts.push_back({SteadyStateMethod::kPower, diag});
      if (diag.converged &&
          ValidateSolution(chain, pi, options.tolerance, pool, &workspace)
              .ok()) {
        return finish(SteadyStateMethod::kPower, diag, std::move(pi));
      }
      if (diag.diverged) pi = initial;
    }
  }

  // Rung 4: dense LU — exact, iteration-free, the terminal answer.
  if (options.max_dense_states > 0 &&
      chain.num_states() <= options.max_dense_states) {
    auto lu = SolveLu(chain, options);
    if (lu.ok()) {
      result.attempts.push_back({SteadyStateMethod::kLu, lu->diagnostics});
      return finish(SteadyStateMethod::kLu, lu->diagnostics,
                    std::move(lu->pi));
    }
    return lu.status().WithContext("steady-state cascade: terminal LU rung");
  }

  std::string summary = "steady-state cascade exhausted (";
  for (size_t i = 0; i < result.attempts.size(); ++i) {
    if (i > 0) summary += "; ";
    summary += SteadyStateMethodName(result.attempts[i].method);
    summary += ": ";
    summary += result.attempts[i].diagnostics.ToString();
  }
  summary += result.attempts.empty() ? "budget exhausted before any rung"
                                     : "";
  summary += ") and the chain (" + std::to_string(chain.num_states()) +
             " states) exceeds the dense-LU cap of " +
             std::to_string(options.max_dense_states);
  return Status::NumericError(summary);
}

// Per-rung attempt/win counters, keyed by the method that ran. Handles are
// resolved once; recording a solve is then pure atomic adds.
metrics::Counter& RungAttempts(SteadyStateMethod method) {
  auto& registry = metrics::MetricsRegistry::Global();
  static metrics::Counter& gs =
      registry.GetCounter("wfms_markov_rung_gauss_seidel_attempts_total");
  static metrics::Counter& sor =
      registry.GetCounter("wfms_markov_rung_sor_attempts_total");
  static metrics::Counter& power =
      registry.GetCounter("wfms_markov_rung_power_attempts_total");
  static metrics::Counter& lu =
      registry.GetCounter("wfms_markov_rung_lu_attempts_total");
  static metrics::Counter& other =
      registry.GetCounter("wfms_markov_rung_other_attempts_total");
  switch (method) {
    case SteadyStateMethod::kGaussSeidel:
      return gs;
    case SteadyStateMethod::kSor:
      return sor;
    case SteadyStateMethod::kPower:
      return power;
    case SteadyStateMethod::kLu:
      return lu;
    default:
      return other;
  }
}

metrics::Counter& RungWins(SteadyStateMethod method) {
  auto& registry = metrics::MetricsRegistry::Global();
  static metrics::Counter& gs =
      registry.GetCounter("wfms_markov_rung_gauss_seidel_wins_total");
  static metrics::Counter& sor =
      registry.GetCounter("wfms_markov_rung_sor_wins_total");
  static metrics::Counter& power =
      registry.GetCounter("wfms_markov_rung_power_wins_total");
  static metrics::Counter& lu =
      registry.GetCounter("wfms_markov_rung_lu_wins_total");
  static metrics::Counter& other =
      registry.GetCounter("wfms_markov_rung_other_wins_total");
  switch (method) {
    case SteadyStateMethod::kGaussSeidel:
      return gs;
    case SteadyStateMethod::kSor:
      return sor;
    case SteadyStateMethod::kPower:
      return power;
    case SteadyStateMethod::kLu:
      return lu;
    default:
      return other;
  }
}

/// Per-size solve-time histogram: one stream per decade of state count, so
/// the registry separates "many fast small solves" from "a few big ones"
/// (the bench harness reads these to spot large-chain regressions).
metrics::Histogram& SolveSecondsBySize(size_t num_states) {
  auto& registry = metrics::MetricsRegistry::Global();
  static metrics::Histogram& le_1k =
      registry.GetHistogram("wfms_markov_steady_solve_seconds_le_1k");
  static metrics::Histogram& le_10k =
      registry.GetHistogram("wfms_markov_steady_solve_seconds_le_10k");
  static metrics::Histogram& le_100k =
      registry.GetHistogram("wfms_markov_steady_solve_seconds_le_100k");
  static metrics::Histogram& le_1m =
      registry.GetHistogram("wfms_markov_steady_solve_seconds_le_1m");
  static metrics::Histogram& gt_1m =
      registry.GetHistogram("wfms_markov_steady_solve_seconds_gt_1m");
  if (num_states <= 1000) return le_1k;
  if (num_states <= 10000) return le_10k;
  if (num_states <= 100000) return le_100k;
  if (num_states <= 1000000) return le_1m;
  return gt_1m;
}

// Solve-level metrics, observed once per SolveSteadyState call (never per
// iteration — see DESIGN.md §8 on instrumentation granularity).
void RecordSolveMetrics(const Result<SteadyStateResult>& result,
                        size_t num_states, double wall_seconds) {
  auto& registry = metrics::MetricsRegistry::Global();
  static metrics::Counter& solves =
      registry.GetCounter("wfms_markov_steady_solves_total");
  static metrics::Counter& failures =
      registry.GetCounter("wfms_markov_steady_failures_total");
  static metrics::Counter& fallbacks =
      registry.GetCounter("wfms_markov_steady_fallbacks_total");
  static metrics::Counter& iterations =
      registry.GetCounter("wfms_markov_steady_iterations_total");
  static metrics::Histogram& solve_seconds =
      registry.GetHistogram("wfms_markov_steady_solve_seconds");
  static metrics::Histogram& residual =
      registry.GetHistogram("wfms_markov_steady_residual");

  solves.Increment();
  solve_seconds.Observe(wall_seconds);
  SolveSecondsBySize(num_states).Observe(wall_seconds);
  if (!result.ok()) {
    failures.Increment();
    return;
  }
  if (result->iterations > 0) {
    iterations.Increment(static_cast<uint64_t>(result->iterations));
  }
  if (result->used_fallback) fallbacks.Increment();
  residual.Observe(result->diagnostics.final_residual);
  if (result->attempts.empty()) {
    RungAttempts(result->method_used).Increment();
  } else {
    for (const auto& attempt : result->attempts) {
      RungAttempts(attempt.method).Increment();
    }
  }
  RungWins(result->method_used).Increment();
}

/// Direct (non-lumped) dispatch on the selected method.
Result<SteadyStateResult> SolveDirect(const Ctmc& chain,
                                      const SteadyStateOptions& options) {
  switch (options.method) {
    case SteadyStateMethod::kLu:
      return SolveLu(chain, options);
    case SteadyStateMethod::kGaussSeidel:
      return SolveGaussSeidel(chain, options, 1.0,
                              SteadyStateMethod::kGaussSeidel);
    case SteadyStateMethod::kSor:
      return SolveGaussSeidel(
          chain, options,
          options.sor_omega > 0.0 ? options.sor_omega : 1.5,
          SteadyStateMethod::kSor);
    case SteadyStateMethod::kPower:
      return SolvePower(chain, options);
    case SteadyStateMethod::kAuto:
    case SteadyStateMethod::kCascade:
      return SolveCascade(chain, options);
  }
  return Status::Internal("unknown steady-state method");
}

/// Lumping pre-pass: refine a lumpable partition, solve the quotient, and
/// expand uniformly. Any miss — trivial partition, refinement error, failed
/// quotient solve, or a full-chain residual that does not validate —
/// returns nullopt and the caller falls through to the direct path, so
/// lumping can degrade performance-wise but never correctness-wise.
std::optional<SteadyStateResult> TrySolveLumped(
    const Ctmc& chain, const SteadyStateOptions& options) {
  auto& registry = metrics::MetricsRegistry::Global();
  static metrics::Counter& attempts =
      registry.GetCounter("wfms_markov_lumping_attempts_total");
  static metrics::Counter& wins =
      registry.GetCounter("wfms_markov_lumping_wins_total");
  static metrics::Counter& trivial =
      registry.GetCounter("wfms_markov_lumping_trivial_total");
  static metrics::Counter& rejected =
      registry.GetCounter("wfms_markov_lumping_rejected_total");
  static metrics::Histogram& ratio =
      registry.GetHistogram("wfms_markov_lumping_reduction_ratio");

  trace::TraceSpan span("markov/lumping", "markov", options.budget.trace);
  attempts.Increment();
  const SparseMatrix incoming = chain.rates().Transposed();
  LumpingOptions lump_options;
  lump_options.seed_labels = options.lumping_seed;
  auto partition = FindLumpablePartition(chain, incoming, lump_options);
  if (!partition.ok()) {
    WFMS_LOG(Warning) << "lumping pass failed, solving the full chain: "
                   << partition.status().ToString();
    rejected.Increment();
    return std::nullopt;
  }
  if (partition->trivial()) {
    trivial.Increment();
    return std::nullopt;
  }
  auto quotient = BuildQuotient(chain, *partition);
  if (!quotient.ok()) {
    rejected.Increment();
    return std::nullopt;
  }

  SteadyStateOptions sub = options;
  sub.lumping = LumpingMode::kOff;
  sub.lumping_seed = nullptr;
  Vector restricted;
  if (options.initial_guess != nullptr &&
      options.initial_guess->size() == chain.num_states()) {
    restricted = RestrictToQuotient(*partition, *options.initial_guess);
    sub.initial_guess = &restricted;
  } else {
    sub.initial_guess = nullptr;
  }
  auto solved = SolveDirect(*quotient, sub);
  if (!solved.ok()) {
    rejected.Increment();
    return std::nullopt;
  }

  Vector full = ExpandUniform(*partition, solved->pi);
  linalg::SpmvWorkspace workspace;
  ThreadPool* pool = LargeChain(chain, options) ? options.pool : nullptr;
  if (!ValidateSolution(chain, full, options.tolerance, pool, &workspace)
           .ok()) {
    rejected.Increment();
    return std::nullopt;
  }
  wins.Increment();
  ratio.Observe(partition->reduction_ratio());
  SteadyStateResult result = *std::move(solved);
  result.pi = std::move(full);
  result.lumping_applied = true;
  result.lumped_states = partition->num_blocks();
  return result;
}

}  // namespace

const char* SteadyStateMethodName(SteadyStateMethod method) {
  switch (method) {
    case SteadyStateMethod::kAuto:
      return "auto";
    case SteadyStateMethod::kGaussSeidel:
      return "gauss-seidel";
    case SteadyStateMethod::kSor:
      return "sor";
    case SteadyStateMethod::kLu:
      return "lu";
    case SteadyStateMethod::kPower:
      return "power";
    case SteadyStateMethod::kCascade:
      return "cascade";
  }
  return "unknown";
}

const char* LumpingModeName(LumpingMode mode) {
  switch (mode) {
    case LumpingMode::kOff:
      return "off";
    case LumpingMode::kAuto:
      return "auto";
    case LumpingMode::kOn:
      return "on";
  }
  return "unknown";
}

Result<SteadyStateResult> SolveSteadyState(const Ctmc& chain,
                                           const SteadyStateOptions& options) {
  trace::TraceSpan span("markov/steady_state", "markov",
                        options.budget.trace);
  const auto start = std::chrono::steady_clock::now();
  const size_t n = chain.num_states();

  // Large chains get a transient pool when the caller did not supply one;
  // small chains never touch a pool (the sequential kernels are
  // bit-identical to the historical scalar path).
  SteadyStateOptions opts = options;
  // Children (the lumping pass, nested solves on the quotient chain)
  // attach under this span rather than beside it.
  opts.budget.trace = span.context();
  std::unique_ptr<ThreadPool> transient_pool;
  if (opts.pool == nullptr && n >= opts.large_chain_threshold) {
    transient_pool =
        std::make_unique<ThreadPool>(ThreadPool::DefaultThreadCount());
    opts.pool = transient_pool.get();
  }

  Result<SteadyStateResult> result = [&]() -> Result<SteadyStateResult> {
    const bool try_lumping =
        opts.lumping == LumpingMode::kOn ||
        (opts.lumping == LumpingMode::kAuto && n >= opts.lumping_min_states);
    if (try_lumping && n > 1) {
      if (auto lumped = TrySolveLumped(chain, opts)) {
        return *std::move(lumped);
      }
    }
    return SolveDirect(chain, opts);
  }();
  RecordSolveMetrics(
      result, n,
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  return result;
}

}  // namespace wfms::markov

# Empty compiler generated dependencies file for wfms_queueing.
# This may be replaced when dependencies are built.

// Scoped trace spans emitting Chrome trace_event JSON ("complete" events,
// ph:"X") that Perfetto and chrome://tracing open directly.
//
// Recording is off by default: every span checks a process-wide atomic flag
// and is a no-op (no clock read, no buffer touch) when disabled. When
// enabled, each thread appends finished spans to its own bounded buffer
// under its own mutex — uncontended except while an export is copying it —
// so spans from the parallel search lanes never serialize against each
// other. Spans past a buffer's capacity are dropped and counted in
// `wfms_trace_dropped_total` instead of growing the buffer without bound.
// Buffers of exited threads are folded into an orphan list so their spans
// survive until export.
//
// Cross-process request tracing (DESIGN.md §13): a TraceContext names a
// 128-bit trace and the span acting as the current parent. The context is
// carried *explicitly* — through the protocol `trace` field, then through
// SolveBudget / SearchOptions / SimulationOptions — never through a
// thread-local, so pooled worker threads cannot leak one request's context
// into another's spans. Spans built with a context export `args` with
// trace_id / span_id / parent_span_id, which stitches a wfmsctl client
// trace and a wfmsd server trace into one tree when the two JSON files are
// merged.
//
// Span naming convention (DESIGN.md §8): `<module>/<operation>`, e.g.
// "configtool/greedy_search", "markov/steady_state". The category string
// must be a string literal (it is stored by pointer).
#ifndef WFMS_COMMON_TRACE_H_
#define WFMS_COMMON_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace wfms::trace {

/// Turns recording on/off process-wide. Spans already open keep the state
/// they saw at construction.
void SetEnabled(bool enabled);
bool IsEnabled();

/// Identity of a distributed request: a 128-bit trace id plus the span id
/// of the current parent (0 = "root of the trace, no parent span yet").
/// Contexts are minted even while recording is disabled — the flight
/// recorder keys its records by trace id regardless of span recording.
struct TraceContext {
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t span_id = 0;

  /// A default-constructed context is invalid and propagates nothing.
  bool valid() const { return (trace_hi | trace_lo) != 0; }

  /// 32 lowercase hex characters.
  std::string trace_id_hex() const;
  /// 16 lowercase hex characters for `span_id`.
  std::string span_id_hex() const;

  /// Fresh random 128-bit trace id with no parent span. Used by clients
  /// (wfmsctl, load_driver) and by the server when a request arrives
  /// without a trace field.
  static TraceContext Mint();

  /// Adopts a trace id and parent span id received over the wire (32 and
  /// 16 lowercase/uppercase hex chars respectively; the parent may be
  /// empty). Mints a fresh trace when `trace_id_hex` does not parse, so a
  /// hostile client cannot leave a request unattributed.
  static TraceContext WithRemoteParent(std::string_view trace_id_hex,
                                       std::string_view parent_span_hex);
};

/// RAII scoped timer: records one complete event from construction to
/// destruction on the current thread's buffer. No-op while disabled.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name, const char* category = "wfms");
  /// Span linked into `parent`'s trace: the exported event carries the
  /// trace id, a fresh span id, and `parent.span_id` as the parent link.
  /// With an invalid parent this is identical to the plain constructor.
  TraceSpan(std::string_view name, const char* category,
            const TraceContext& parent);
  ~TraceSpan();

  /// Context for children of this span. While recording is disabled (or
  /// the parent was invalid) the parent context passes through unchanged,
  /// so links skip unrecorded spans instead of dangling.
  TraceContext context() const;

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  std::string name_;
  const char* category_ = nullptr;
  double start_us_ = -1.0;  // < 0 marks a disabled (no-op) span
  TraceContext parent_;
  uint64_t span_id_ = 0;  // 0 while disabled or parent invalid
};

/// Records a zero-duration instant event (ph:"i"). No-op while disabled.
void Instant(std::string_view name, const char* category = "wfms");

/// All events recorded so far as a trace_event JSON document:
/// {"traceEvents": [...], "displayTimeUnit": "ms"}. Events are sorted by
/// timestamp. Does not clear the buffers.
std::string ExportJson();

/// Writes ExportJson() to `path`.
Status WriteJson(const std::string& path);

/// Drops every recorded event (tests).
void Clear();

/// Number of events currently buffered.
size_t event_count();

/// Caps each thread's event buffer. Spans recorded once a buffer is full
/// are dropped and counted in `wfms_trace_dropped_total`. 0 restores the
/// default (65536 events per thread). Tests only; takes effect for
/// subsequent records.
void SetThreadBufferCapacity(size_t capacity);

}  // namespace wfms::trace

#endif  // WFMS_COMMON_TRACE_H_

#include "markov/absorbing_ctmc.h"

#include <cmath>
#include <queue>

#include "markov/dtmc.h"

namespace wfms::markov {

using linalg::DenseMatrix;
using linalg::Vector;

namespace {

/// Breadth-first reachability over nonzero transition probabilities.
std::vector<bool> ReachableFrom(const DenseMatrix& p, size_t start) {
  std::vector<bool> seen(p.rows(), false);
  std::queue<size_t> queue;
  seen[start] = true;
  queue.push(start);
  while (!queue.empty()) {
    const size_t i = queue.front();
    queue.pop();
    for (size_t j = 0; j < p.cols(); ++j) {
      if (p.At(i, j) > 0.0 && !seen[j]) {
        seen[j] = true;
        queue.push(j);
      }
    }
  }
  return seen;
}

}  // namespace

Result<AbsorbingCtmc> AbsorbingCtmc::Create(
    DenseMatrix p, Vector residence_times,
    std::vector<std::string> state_names, size_t initial_state,
    size_t absorbing_state) {
  const size_t n = p.rows();
  if (p.cols() != n) {
    return Status::InvalidArgument("transition matrix must be square");
  }
  if (residence_times.size() != n || state_names.size() != n) {
    return Status::InvalidArgument(
        "residence time / state name count must match matrix size");
  }
  if (initial_state >= n || absorbing_state >= n) {
    return Status::OutOfRange("initial or absorbing state out of range");
  }
  if (initial_state == absorbing_state) {
    return Status::InvalidArgument(
        "initial state must differ from the absorbing state");
  }

  for (size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (size_t j = 0; j < n; ++j) {
      if (p.At(i, j) < 0.0) {
        return Status::InvalidArgument("negative probability in row '" +
                                       state_names[i] + "'");
      }
      row_sum += p.At(i, j);
    }
    if (i == absorbing_state) {
      // Accept either an all-zero row or a pure self-loop; normalize to a
      // self-loop so the uniformized matrix is stochastic.
      const bool zero_row = row_sum == 0.0;
      const bool self_loop =
          std::fabs(p.At(i, i) - 1.0) < 1e-9 && std::fabs(row_sum - 1.0) < 1e-9;
      if (!zero_row && !self_loop) {
        return Status::InvalidArgument(
            "absorbing state row must be zero or a self-loop");
      }
      for (size_t j = 0; j < n; ++j) p.At(i, j) = 0.0;
      p.At(i, i) = 1.0;
      continue;
    }
    if (p.At(i, i) != 0.0) {
      return Status::InvalidArgument("jump chain must have p_ii = 0 (state '" +
                                     state_names[i] + "')");
    }
    if (std::fabs(row_sum - 1.0) > 1e-9) {
      return Status::InvalidArgument("row '" + state_names[i] + "' sums to " +
                                     std::to_string(row_sum) + ", expected 1");
    }
    for (size_t j = 0; j < n; ++j) p.At(i, j) /= row_sum;
  }

  for (size_t i = 0; i < n; ++i) {
    if (i == absorbing_state) {
      residence_times[i] = kInfiniteResidence;
      continue;
    }
    if (!(residence_times[i] > 0.0) || std::isinf(residence_times[i])) {
      return Status::InvalidArgument(
          "transient state '" + state_names[i] +
          "' must have a positive finite residence time");
    }
  }

  // Every state reachable from the start must reach absorption; otherwise
  // turnaround times are infinite and the workflow never terminates.
  const std::vector<bool> from_start = ReachableFrom(p, initial_state);
  if (!from_start[absorbing_state]) {
    return Status::InvalidArgument(
        "absorbing state unreachable from the initial state");
  }
  // Reverse reachability: states that can reach absorption.
  DenseMatrix pt = p.Transposed();
  const std::vector<bool> reaches_absorbing =
      ReachableFrom(pt, absorbing_state);
  for (size_t i = 0; i < n; ++i) {
    if (from_start[i] && !reaches_absorbing[i]) {
      return Status::InvalidArgument("state '" + state_names[i] +
                                     "' cannot reach the absorbing state");
    }
  }

  return AbsorbingCtmc(std::move(p), std::move(residence_times),
                       std::move(state_names), initial_state, absorbing_state);
}

Result<size_t> AbsorbingCtmc::StateIndex(const std::string& name) const {
  for (size_t i = 0; i < state_names_.size(); ++i) {
    if (state_names_[i] == name) return i;
  }
  return Status::NotFound("no state named '" + name + "'");
}

double AbsorbingCtmc::DepartureRate(size_t i) const {
  if (i == absorbing_state_) return 0.0;
  return 1.0 / h_[i];
}

double AbsorbingCtmc::UniformizationRate() const {
  double v = 0.0;
  for (size_t i = 0; i < num_states(); ++i) {
    v = std::max(v, DepartureRate(i));
  }
  return v;
}

double AbsorbingCtmc::TransitionRate(size_t i, size_t j) const {
  return DepartureRate(i) * p_.At(i, j);
}

DenseMatrix AbsorbingCtmc::Generator() const {
  const size_t n = num_states();
  DenseMatrix q(n, n);
  for (size_t i = 0; i < n; ++i) {
    if (i == absorbing_state_) continue;  // zero row
    const double vi = DepartureRate(i);
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      q.At(i, j) = vi * p_.At(i, j);
    }
    q.At(i, i) = -vi;
  }
  return q;
}

DenseMatrix AbsorbingCtmc::UniformizedTransitionMatrix() const {
  const size_t n = num_states();
  const double v = UniformizationRate();
  DenseMatrix u(n, n);
  for (size_t i = 0; i < n; ++i) {
    if (i == absorbing_state_) {
      u.At(i, i) = 1.0;
      continue;
    }
    const double ratio = DepartureRate(i) / v;
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      u.At(i, j) = ratio * p_.At(i, j);
    }
    u.At(i, i) = 1.0 - ratio;
  }
  return u;
}

Result<Dtmc> AbsorbingCtmc::EmbeddedChain() const {
  return Dtmc::Create(p_, state_names_);
}

}  // namespace wfms::markov

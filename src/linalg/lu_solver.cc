#include "linalg/lu_solver.h"

#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace wfms::linalg {

Result<LuDecomposition> LuDecomposition::Compute(const DenseMatrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("LU requires a square matrix");
  }
  const size_t n = a.rows();
  DenseMatrix lu = a;
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), size_t{0});
  int sign = 1;

  for (size_t col = 0; col < n; ++col) {
    // Partial pivoting: pick the largest magnitude entry in this column.
    size_t pivot_row = col;
    double pivot_mag = std::fabs(lu.At(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      const double mag = std::fabs(lu.At(r, col));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_mag < 1e-300) {
      return Status::NumericError("matrix is singular to working precision");
    }
    if (pivot_row != col) {
      for (size_t c = 0; c < n; ++c) {
        std::swap(lu.At(col, c), lu.At(pivot_row, c));
      }
      std::swap(perm[col], perm[pivot_row]);
      sign = -sign;
    }
    const double pivot = lu.At(col, col);
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = lu.At(r, col) / pivot;
      lu.At(r, col) = factor;
      if (factor == 0.0) continue;
      for (size_t c = col + 1; c < n; ++c) {
        lu.At(r, c) -= factor * lu.At(col, c);
      }
    }
  }
  return LuDecomposition(std::move(lu), std::move(perm), sign);
}

Result<Vector> LuDecomposition::Solve(const Vector& b) const {
  const size_t n = size();
  if (b.size() != n) {
    return Status::InvalidArgument("right-hand side size mismatch");
  }
  Vector x(n);
  // Apply the permutation, then forward substitution (L has unit diagonal).
  for (size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  for (size_t i = 0; i < n; ++i) {
    double sum = x[i];
    for (size_t j = 0; j < i; ++j) sum -= lu_.At(i, j) * x[j];
    x[i] = sum;
  }
  // Backward substitution with U.
  for (size_t ii = n; ii-- > 0;) {
    double sum = x[ii];
    for (size_t j = ii + 1; j < n; ++j) sum -= lu_.At(ii, j) * x[j];
    x[ii] = sum / lu_.At(ii, ii);
  }
  return x;
}

Result<DenseMatrix> LuDecomposition::Solve(const DenseMatrix& b) const {
  const size_t n = size();
  if (b.rows() != n) {
    return Status::InvalidArgument("right-hand side row count mismatch");
  }
  DenseMatrix x(n, b.cols());
  Vector col(n);
  for (size_t c = 0; c < b.cols(); ++c) {
    for (size_t r = 0; r < n; ++r) col[r] = b.At(r, c);
    WFMS_ASSIGN_OR_RETURN(Vector sol, Solve(col));
    for (size_t r = 0; r < n; ++r) x.At(r, c) = sol[r];
  }
  return x;
}

Result<DenseMatrix> LuDecomposition::Inverse() const {
  return Solve(DenseMatrix::Identity(size()));
}

double LuDecomposition::Determinant() const {
  double det = perm_sign_;
  for (size_t i = 0; i < size(); ++i) det *= lu_.At(i, i);
  return det;
}

Result<Vector> LuSolve(const DenseMatrix& a, const Vector& b) {
  WFMS_ASSIGN_OR_RETURN(LuDecomposition lu, LuDecomposition::Compute(a));
  return lu.Solve(b);
}

}  // namespace wfms::linalg

#include "linalg/iterative_solver.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "linalg/lu_solver.h"

namespace wfms::linalg {
namespace {

/// Builds a random diagonally dominant system (guaranteed convergence for
/// Jacobi/GS/SOR) and returns it with a right-hand side.
struct TestSystem {
  DenseMatrix dense;
  SparseMatrix sparse;
  Vector b;
};

TestSystem MakeDominantSystem(size_t n, uint64_t seed) {
  Rng rng(seed);
  DenseMatrix d(n, n);
  Vector b(n);
  for (size_t r = 0; r < n; ++r) {
    b[r] = rng.NextDouble(-3, 3);
    double off_sum = 0.0;
    for (size_t c = 0; c < n; ++c) {
      if (c == r) continue;
      if (rng.NextBernoulli(0.3)) {
        d.At(r, c) = rng.NextDouble(-1, 1);
        off_sum += std::fabs(d.At(r, c));
      }
    }
    d.At(r, r) = off_sum + rng.NextDouble(0.5, 1.5);
  }
  return {d, SparseMatrix::FromDense(d), b};
}

class SweepSolverTest : public ::testing::TestWithParam<int> {};

TEST_P(SweepSolverTest, MatchesLuOnDominantSystems) {
  const auto n = static_cast<size_t>(GetParam());
  const TestSystem sys = MakeDominantSystem(n, 1000 + n);
  const auto exact = LuSolve(sys.dense, sys.b);
  ASSERT_TRUE(exact.ok());

  for (int method = 0; method < 3; ++method) {
    Vector x(n, 0.0);
    IterativeOptions opts;
    opts.omega = 1.2;
    Result<IterativeStats> stats = Status::OK();
    switch (method) {
      case 0:
        stats = JacobiSolve(sys.sparse, sys.b, &x, opts);
        break;
      case 1:
        stats = GaussSeidelSolve(sys.sparse, sys.b, &x, opts);
        break;
      default:
        stats = SorSolve(sys.sparse, sys.b, &x, opts);
    }
    ASSERT_TRUE(stats.ok()) << stats.status();
    EXPECT_TRUE(stats->converged) << "method " << method;
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x[i], (*exact)[i], 1e-8) << "method " << method;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SweepSolverTest,
                         ::testing::Values(3, 10, 50, 200));

TEST(IterativeSolverTest, GaussSeidelConvergesFasterThanJacobi) {
  const TestSystem sys = MakeDominantSystem(100, 7);
  Vector xj(100, 0.0), xg(100, 0.0);
  const auto js = JacobiSolve(sys.sparse, sys.b, &xj);
  const auto gs = GaussSeidelSolve(sys.sparse, sys.b, &xg);
  ASSERT_TRUE(js.ok());
  ASSERT_TRUE(gs.ok());
  ASSERT_TRUE(js->converged);
  ASSERT_TRUE(gs->converged);
  EXPECT_LE(gs->iterations, js->iterations);
}

TEST(IterativeSolverTest, ZeroDiagonalRejected) {
  SparseMatrixBuilder b(2, 2);
  b.Add(0, 1, 1.0);
  b.Add(1, 0, 1.0);
  const SparseMatrix m = b.Build();
  Vector x(2, 0.0);
  Vector rhs{1.0, 1.0};
  const auto st = GaussSeidelSolve(m, rhs, &x);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.status().code(), StatusCode::kNumericError);
}

TEST(IterativeSolverTest, DimensionMismatchRejected) {
  const TestSystem sys = MakeDominantSystem(4, 3);
  Vector x(3, 0.0);
  EXPECT_FALSE(GaussSeidelSolve(sys.sparse, sys.b, &x).ok());
}

TEST(IterativeSolverTest, BadOmegaRejected) {
  const TestSystem sys = MakeDominantSystem(4, 3);
  Vector x(4, 0.0);
  IterativeOptions opts;
  opts.omega = 2.5;
  EXPECT_FALSE(SorSolve(sys.sparse, sys.b, &x, opts).ok());
}

TEST(IterativeSolverTest, ReportsNonConvergenceOnIterationBudget) {
  const TestSystem sys = MakeDominantSystem(50, 11);
  Vector x(50, 0.0);
  IterativeOptions opts;
  opts.max_iterations = 1;
  opts.tolerance = 1e-15;
  const auto st = JacobiSolve(sys.sparse, sys.b, &x, opts);
  ASSERT_TRUE(st.ok());
  EXPECT_FALSE(st->converged);
  EXPECT_EQ(st->iterations, 1);
}

TEST(PowerIterationTest, TwoStateChain) {
  // P = [[0.9, 0.1], [0.5, 0.5]] has stationary distribution (5/6, 1/6).
  DenseMatrix p{{0.9, 0.1}, {0.5, 0.5}};
  Vector pi{0.5, 0.5};
  const auto st = PowerIterationStationary(SparseMatrix::FromDense(p), &pi);
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(st->converged);
  EXPECT_NEAR(pi[0], 5.0 / 6.0, 1e-9);
  EXPECT_NEAR(pi[1], 1.0 / 6.0, 1e-9);
}

TEST(PowerIterationTest, StationaryOfDoublyStochasticIsUniform) {
  DenseMatrix p{{0.2, 0.3, 0.5}, {0.5, 0.2, 0.3}, {0.3, 0.5, 0.2}};
  Vector pi{1.0, 0.0, 0.0};
  const auto st = PowerIterationStationary(SparseMatrix::FromDense(p), &pi);
  ASSERT_TRUE(st.ok());
  for (double v : pi) EXPECT_NEAR(v, 1.0 / 3.0, 1e-9);
}

TEST(PowerIterationTest, RejectsZeroStart) {
  DenseMatrix p{{1.0}};
  Vector pi{0.0};
  EXPECT_FALSE(PowerIterationStationary(SparseMatrix::FromDense(p), &pi).ok());
}

}  // namespace
}  // namespace wfms::linalg

#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace wfms {

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> SplitString(std::string_view s, char sep,
                                     bool skip_empty) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      if (i > start || !skip_empty) {
        out.emplace_back(s.substr(start, i - start));
      }
      start = i + 1;
    }
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool ParseDouble(std::string_view s, double* out) {
  s = StripWhitespace(s);
  if (s.empty()) return false;
  // std::from_chars for double is available in GCC >= 11.
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last;
}

bool ParseInt(std::string_view s, int* out) {
  s = StripWhitespace(s);
  if (s.empty()) return false;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

}  // namespace wfms

// Minimal JSON value type, parser, and serializer, shared by the wfmsd
// wire protocol (newline-delimited JSON over TCP; see
// src/service/protocol.h) and the workflow corpus engine (WfCommons-style
// documents, manifests, and sweep reports; see src/corpus). Self-contained
// on purpose — neither consumer may pull in an external JSON dependency.
//
// Properties the consumers rely on:
//  - Deterministic serialization: object members keep insertion order and
//    numbers format reproducibly, so the same logical document is the
//    same byte sequence every time (the daemon chaos test compares
//    warm-restart answers byte-for-byte against a cold baseline; the
//    corpus generator re-emits byte-identical documents per seed).
//  - Defensive parsing: depth-limited recursive descent with descriptive
//    ParseError statuses; a hostile or corrupt input line can never
//    crash or hang the process.
#ifndef WFMS_COMMON_JSON_H_
#define WFMS_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace wfms {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}

  static Json Null() { return Json(); }
  static Json Bool(bool value) {
    Json j;
    j.type_ = Type::kBool;
    j.bool_ = value;
    return j;
  }
  static Json Number(double value) {
    Json j;
    j.type_ = Type::kNumber;
    j.number_ = value;
    return j;
  }
  static Json Str(std::string value) {
    Json j;
    j.type_ = Type::kString;
    j.string_ = std::move(value);
    return j;
  }
  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_bool() const { return type_ == Type::kBool; }

  /// Value accessors; meaningful only for the matching type (a mismatch
  /// returns the type's zero value, never traps).
  bool bool_value() const { return type_ == Type::kBool && bool_; }
  double number() const { return type_ == Type::kNumber ? number_ : 0.0; }
  const std::string& str() const { return string_; }
  const std::vector<Json>& items() const { return items_; }
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  /// Object lookup; nullptr when absent or not an object.
  const Json* Find(std::string_view key) const;

  /// Typed convenience lookups with fallbacks, for flat request objects.
  std::string GetString(std::string_view key, std::string fallback) const;
  double GetNumber(std::string_view key, double fallback) const;
  bool GetBool(std::string_view key, bool fallback) const;

  /// Object member append (no dedup — callers control keys); returns
  /// *this for chaining.
  Json& Set(std::string key, Json value);
  /// Array element append.
  Json& Append(Json value);

  /// Serializes deterministically (members in insertion order; integers
  /// within 2^53 print without a decimal point, everything else %.17g so
  /// doubles round-trip bit-exactly). No whitespace.
  std::string Dump() const;

  /// Parses one JSON document; the whole input must be consumed (trailing
  /// non-whitespace is an error). Nesting is limited to 64 levels.
  static Result<Json> Parse(std::string_view text);

 private:
  void DumpTo(std::string* out) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// Escapes `text` as a JSON string literal body (no surrounding quotes).
std::string JsonEscape(std::string_view text);

}  // namespace wfms

#endif  // WFMS_COMMON_JSON_H_
